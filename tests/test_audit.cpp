// The MPC model-conformance auditor: conformant pipelines audit clean with
// byte-identical metering, and every detector fires on a seeded violation
// with the offending round and machine id.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>

#include "core/batch.hpp"
#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/audit.hpp"
#include "mpc/cluster.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd::mpc {
namespace {

Bytes payload_of(std::uint32_t v) {
  ByteWriter w;
  w.put(v);
  return std::move(w).take();
}

ClusterConfig audited_config(std::size_t workers = 1) {
  ClusterConfig config;
  config.workers = workers;
  // These tests exercise the shared-address-space detectors (canary pads,
  // poison, schedule-dependent shared state), which only exist — and whose
  // planted violations only manifest — on the thread backend.  Pin it so
  // an MPCSD_BACKEND=process environment doesn't discharge them.
  config.backend = BackendKind::kThread;
  config.audit.enabled = true;
  config.audit.fail_fast = false;
  return config;
}

/// A conformant round body: reads the input, emits a derived value.
void echo_body(MachineContext& ctx) {
  auto r = ctx.reader();
  const auto v = r.get<std::uint32_t>();
  ctx.charge_work(1);
  ByteWriter w;
  w.put(v * 3 + 1);
  ctx.emit(0, std::move(w).take());
}

TEST(Audit, ConformantRoundsAuditCleanAndMeteringNeutral) {
  auto run = [](bool audited) {
    ClusterConfig config;
    config.workers = 2;
    config.seed = 9;
    config.audit.enabled = audited;
    Cluster cluster(config);
    std::vector<Bytes> inputs;
    for (std::uint32_t i = 0; i < 16; ++i) inputs.push_back(payload_of(i));
    const Mail mail = cluster.run_round("echo", inputs, echo_body);
    return std::make_pair(gather_view(mail, 0).to_bytes(),
                          cluster.trace().structural_hash());
  };
  const auto plain = run(false);
  const auto audited = run(true);
  EXPECT_EQ(plain.first, audited.first);   // same routed bytes
  EXPECT_EQ(plain.second, audited.second); // same metered trace
}

TEST(Audit, CleanReportCountsRoundsAndReplays) {
  Cluster cluster(audited_config(2));
  std::vector<Bytes> inputs{payload_of(1), payload_of(2)};
  cluster.run_round("r0", inputs, echo_body);
  cluster.run_round("r1", inputs, echo_body);
  const AuditReport& report = cluster.audit_report();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.rounds_audited, 2u);
  EXPECT_EQ(report.replays_run, 2u);
}

TEST(Audit, DetectsScheduleDependentBody) {
  // The classic leak: machines share a mutable counter, so each machine's
  // output encodes its execution order.  The serial main run hands out
  // 0,1,2,... in machine order; the permuted replay hands them out in
  // permutation order — the fingerprints diverge.
  Cluster cluster(audited_config(1));
  std::atomic<std::uint32_t> counter{0};
  std::vector<Bytes> inputs(8);
  cluster.run_round("leaky", inputs, [&](MachineContext& ctx) {
    ByteWriter w;
    w.put(counter.fetch_add(1));
    ctx.emit(0, std::move(w).take());
  });
  const AuditReport& report = cluster.audit_report();
  ASSERT_FALSE(report.clean());
  bool found = false;
  for (const AuditViolation& v : report.violations) {
    if (v.kind == AuditViolationKind::kScheduleDependence) {
      found = true;
      EXPECT_EQ(v.round, 0u);
      EXPECT_EQ(v.round_label, "leaky");
      EXPECT_LT(v.machine, 8u);  // the offending machine is identified
    }
  }
  EXPECT_TRUE(found);
}

TEST(Audit, FailFastThrowsAuditErrorWithViolation) {
  ClusterConfig config = audited_config(1);
  config.audit.fail_fast = true;
  Cluster cluster(config);
  std::atomic<std::uint32_t> counter{0};
  std::vector<Bytes> inputs(8);
  try {
    cluster.run_round("leaky", inputs, [&](MachineContext& ctx) {
      ByteWriter w;
      w.put(counter.fetch_add(1));
      ctx.emit(0, std::move(w).take());
    });
    FAIL() << "expected AuditError";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation().kind, AuditViolationKind::kScheduleDependence);
    EXPECT_EQ(e.violation().round_label, "leaky");
    EXPECT_NE(std::string(e.what()).find("leaky"), std::string::npos);
  }
}

TEST(Audit, DetectsInputMutation) {
  ClusterConfig config = audited_config(1);
  config.audit.replay = false;  // isolate the guard detector
  Cluster cluster(config);
  std::vector<Bytes> inputs{payload_of(7), payload_of(8), payload_of(9)};
  cluster.run_round("scribbler", inputs, [](MachineContext& ctx) {
    if (ctx.machine_id() == 1) {
      const ByteSpan part = ctx.input().parts()[0];
      const_cast<std::byte*>(part.data())[0] = std::byte{0xFF};
    }
  });
  const AuditReport& report = cluster.audit_report();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, AuditViolationKind::kInputMutation);
  EXPECT_EQ(report.violations[0].machine, 1u);
  EXPECT_EQ(report.violations[0].round_label, "scribbler");
}

TEST(Audit, DetectsOutOfFragmentWrite) {
  ClusterConfig config = audited_config(1);
  config.audit.replay = false;
  Cluster cluster(config);
  std::vector<Bytes> inputs{payload_of(7), payload_of(8)};
  cluster.run_round("overflower", inputs, [](MachineContext& ctx) {
    if (ctx.machine_id() == 0) {
      // One byte past the fragment: in an unaudited run this lands in
      // whatever storage the router placed next to this inbox.
      const ByteSpan part = ctx.input().parts()[0];
      const_cast<std::byte*>(part.data())[part.size()] = std::byte{0xFF};
    }
  });
  const AuditReport& report = cluster.audit_report();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, AuditViolationKind::kGuardBreach);
  EXPECT_EQ(report.violations[0].machine, 0u);
}

TEST(Audit, DetectsUnaccountedCommunication) {
  ClusterConfig config = audited_config(1);
  config.audit.inject_after_round = [](std::size_t round, std::size_t machine,
                                       std::vector<Envelope>& outbox) {
    if (round == 0 && machine == 2) {
      outbox.push_back(Envelope{0, Bytes(3, std::byte{0x42})});
    }
  };
  Cluster cluster(config);
  std::vector<Bytes> inputs(4);
  for (std::uint32_t i = 0; i < 4; ++i) inputs[i] = payload_of(i);
  cluster.run_round("injected", inputs, echo_body);
  const AuditReport& report = cluster.audit_report();
  ASSERT_EQ(report.violations.size(), 1u);
  const AuditViolation& v = report.violations[0];
  EXPECT_EQ(v.kind, AuditViolationKind::kCommAccounting);
  EXPECT_EQ(v.round, 0u);
  EXPECT_EQ(v.machine, AuditViolation::kNoMachine);
  // 4 machines × 4 accounted bytes, plus 3 injected phantom bytes.
  EXPECT_NE(v.detail.find("19"), std::string::npos);
  EXPECT_NE(v.detail.find("16"), std::string::npos);
}

TEST(Audit, StaleInboxViewReadsPoisonNotLiveMail) {
  // A machine that stashes its inbox view and reads it in a later round
  // must see loud 0xA5 poison, never the (possibly recycled) live storage.
  Cluster cluster(audited_config(1));
  ByteSpan stashed;
  std::vector<Bytes> inputs{payload_of(0xDEADBEEF)};
  cluster.run_round("stash", inputs, [&](MachineContext& ctx) {
    stashed = ctx.input().parts()[0];
  });
  std::byte seen{};
  cluster.run_round("stale-read", inputs, [&](MachineContext& ctx) {
    (void)ctx;
    seen = stashed[0];
  });
  EXPECT_EQ(seen, std::byte{0xA5});
}

// ---------------------------------------------------------------------------
// The real pipelines are model-conformant: auditing them end to end finds
// nothing and does not perturb a single metered byte.
// ---------------------------------------------------------------------------

TEST(Audit, UlamPipelineConformsUnderAudit) {
  const auto s = core::random_permutation(400, 3);
  const auto t = core::plant_edits(s, 24, 4, true).text;
  ulam_mpc::UlamMpcParams params;
  params.workers = 2;
  const auto plain = ulam_mpc::ulam_distance_mpc(s, t, params);
  params.audit.enabled = true;  // fail_fast: a violation would throw
  const auto audited = ulam_mpc::ulam_distance_mpc(s, t, params);
  EXPECT_EQ(plain.distance, audited.distance);
  EXPECT_EQ(plain.trace.structural_hash(), audited.trace.structural_hash());
}

TEST(Audit, EditPipelineConformsUnderAudit) {
  const auto s = core::random_string(300, 8, 5);
  const auto t = core::plant_edits(s, 18, 6, false).text;
  edit_mpc::EditMpcParams params;
  params.workers = 2;
  const auto plain = edit_mpc::edit_distance_mpc(s, t, params);
  params.audit.enabled = true;
  const auto audited = edit_mpc::edit_distance_mpc(s, t, params);
  EXPECT_EQ(plain.distance, audited.distance);
  EXPECT_EQ(plain.trace.structural_hash(), audited.trace.structural_hash());
}

TEST(Audit, BatchPipelinesConformUnderAudit) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kEdit;
  request.mode = core::BatchMode::kThroughput;
  // Auditing the *plan* requires the plan to run; a routed-away batch
  // would make this test vacuous under MPCSD_ROUTER=auto.
  request.router = core::RouterPolicy::kOff;
  for (std::uint64_t q = 0; q < 3; ++q) {
    const auto s = core::random_string(200, 6, 10 + q);
    core::BatchQuery query;
    query.s = s;
    query.t = core::plant_edits(s, 10, 20 + q, false).text;
    request.queries.push_back(std::move(query));
  }
  const auto plain = core::distance_batch(request);
  request.edit.audit.enabled = true;
  const auto audited = core::distance_batch(request);
  ASSERT_EQ(plain.queries.size(), audited.queries.size());
  for (std::size_t q = 0; q < plain.queries.size(); ++q) {
    EXPECT_EQ(plain.queries[q].distance, audited.queries[q].distance);
  }
  EXPECT_EQ(plain.trace.structural_hash(), audited.trace.structural_hash());
}

}  // namespace
}  // namespace mpcsd::mpc
