// Candidate geometry for the edit-distance MPC algorithm (Figures 4 and 5)
// and the Lemma 5 cover property against explicit optimal alignments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "edit_mpc/graph_tau.hpp"
#include "seq/alignment.hpp"
#include "seq/edit_distance.hpp"

namespace mpcsd::edit_mpc {
namespace {

CandidateGeometry geometry(std::int64_t n, std::int64_t n_bar, std::int64_t block,
                           std::int64_t guess, double eps = 0.1) {
  CandidateGeometry geo;
  geo.eps_prime = eps;
  geo.n = n;
  geo.n_bar = n_bar;
  geo.block_size = block;
  geo.delta_guess = guess;
  return geo;
}

TEST(EditCandidates, MakeBlocksPartition) {
  const auto blocks = make_blocks(100, 30);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0], (Interval{0, 30}));
  EXPECT_EQ(blocks[3], (Interval{90, 100}));
}

TEST(EditCandidates, StartGapFormula) {
  // G = max(floor(eps' * guess * B / n), 1) = eps' * n^{delta - y}.
  const auto geo = geometry(10000, 10000, 1000, 500, 0.1);
  // eps'*guess*B/n = 0.1*500*1000/10000 = 5.
  EXPECT_EQ(start_gap(geo), 5);
  const auto tiny = geometry(10000, 10000, 10, 50, 0.1);
  EXPECT_EQ(start_gap(tiny), 1);  // floor < 1 clamps to 1
}

TEST(EditCandidates, StartsAreGriddedAndCoverTheRange) {
  const auto geo = geometry(10000, 10000, 1000, 500, 0.1);
  const auto starts = candidate_starts(3000, geo);
  ASSERT_FALSE(starts.empty());
  const auto gap = start_gap(geo);
  for (const auto sp : starts) {
    EXPECT_EQ(sp % gap, 0);
    EXPECT_GE(sp, 3000 - 500);
    EXPECT_LE(sp, 3000 + 500 + gap);  // one boundary gap (Lemma 5 cover)
  }
  // Every grid point in range present (plus at most the boundary point).
  const auto base_count = static_cast<std::size_t>((3500 - 2500) / gap + 1);
  EXPECT_GE(starts.size(), base_count);
  EXPECT_LE(starts.size(), base_count + 1);
}

TEST(EditCandidates, StartsClampedAtBoundaries) {
  const auto geo = geometry(1000, 1000, 100, 400, 0.1);
  const auto starts = candidate_starts(50, geo);
  for (const auto sp : starts) {
    EXPECT_GE(sp, 0);
    EXPECT_LT(sp, 1000);
  }
}

TEST(EditCandidates, EndsClusterGeometricallyAroundDiagonal) {
  const auto geo = geometry(10000, 10000, 1000, 2000, 0.1);
  const auto ends = candidate_ends(3000, 1000, geo);
  ASSERT_FALSE(ends.empty());
  EXPECT_TRUE(std::is_sorted(ends.begin(), ends.end()));
  EXPECT_TRUE(std::find(ends.begin(), ends.end(), 4000) != ends.end());
  // Bounded count: Õ_eps(1) endpoints.
  EXPECT_LT(ends.size(), 260u);
  for (const auto ep : ends) {
    EXPECT_GT(ep, 3000);
    // Max length B/eps'.
    EXPECT_LE(ep - 3000, static_cast<std::int64_t>(1000.0 / 0.1) + 1);
  }
}

TEST(EditCandidates, Lemma5CoverProperty) {
  // For a guess >= ed(s,t), every block whose opt image satisfies the size
  // gate has a candidate meeting conditions (3) and (4).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::int64_t n = 600;
    const auto s = core::random_string(n, 4, seed);
    const auto t = core::plant_edits(s, 25, seed + 5, false).text;
    const auto exact = seq::edit_distance(s, t);
    const std::int64_t guess = exact + 5;
    const std::int64_t bsize = 100;
    const auto geo = geometry(n, static_cast<std::int64_t>(t.size()), bsize, guess, 0.1);
    const auto blocks = make_blocks(n, bsize);
    const auto images = seq::block_images(s, t, blocks);
    const std::int64_t gap = start_gap(geo);
    const double fine = 0.1 * static_cast<double>(guess) * bsize / n;  // eps'*n^{delta-y}

    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const Interval img = images[i];
      // Lemma 5 gate: alpha + G + eps'B < beta <= alpha + B/eps'.
      if (img.length() <= gap + static_cast<std::int64_t>(0.1 * bsize)) continue;
      if (img.length() > static_cast<std::int64_t>(bsize / 0.1)) continue;
      const auto ed_block =
          seq::edit_distance(subview(s, blocks[i]), subview(t, img));
      const double end_slack = fine + 0.1 * static_cast<double>(ed_block);
      const auto windows = candidate_windows(blocks[i].begin, blocks[i].length(), geo);
      const bool covered = std::any_of(windows.begin(), windows.end(), [&](Interval w) {
        return w.begin >= img.begin &&
               static_cast<double>(w.begin) <= static_cast<double>(img.begin) + fine + 1 &&
               w.end <= img.end &&
               static_cast<double>(w.end) >= static_cast<double>(img.end) - end_slack - 1;
      });
      EXPECT_TRUE(covered) << "seed=" << seed << " block=" << i
                           << " img=[" << img.begin << "," << img.end << ")";
    }
  }
}

TEST(GraphTau, UniverseDedupsCandidates) {
  const auto geo = geometry(1000, 1000, 100, 900, 0.25);
  const auto universe = build_universe(geo);
  EXPECT_EQ(universe.blocks.size(), 10u);
  ASSERT_FALSE(universe.cs.empty());
  // No duplicate windows.
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const Interval& c : universe.cs) {
    EXPECT_TRUE(seen.emplace(c.begin, c.end).second);
  }
  // Every block's candidate ids are valid and deduped.
  for (const auto& cands : universe.block_cands) {
    EXPECT_FALSE(cands.empty());
    std::set<std::int32_t> ids(cands.begin(), cands.end());
    EXPECT_EQ(ids.size(), cands.size());
    for (const auto id : cands) {
      ASSERT_GE(id, 0);
      ASSERT_LT(static_cast<std::size_t>(id), universe.cs.size());
    }
  }
}

TEST(GraphTau, TauGridAndMinIndex) {
  const auto grid = tau_grid(100, 0.5);
  EXPECT_EQ(grid.front(), 0);
  EXPECT_EQ(grid.back(), 100);
  EXPECT_EQ(min_tau_index(grid, 0), 0u);
  for (std::int64_t v = 1; v <= 100; v += 13) {
    const auto j = min_tau_index(grid, v);
    ASSERT_LT(j, grid.size());
    EXPECT_GE(grid[j], v);
    if (j > 0) {
      EXPECT_LT(grid[j - 1], v);
    }
  }
  EXPECT_EQ(min_tau_index(grid, 101), grid.size());
}

TEST(GraphTau, NodeIdLayout) {
  const auto geo = geometry(500, 500, 100, 450, 0.25);
  const auto universe = build_universe(geo);
  EXPECT_TRUE(universe.is_block(0));
  EXPECT_TRUE(universe.is_block(universe.blocks.size() - 1));
  EXPECT_FALSE(universe.is_block(universe.blocks.size()));
  EXPECT_EQ(universe.node_interval(0), universe.blocks[0]);
  EXPECT_EQ(universe.node_interval(universe.blocks.size()), universe.cs[0]);
}

}  // namespace
}  // namespace mpcsd::edit_mpc
