// The tuple-combine DP (Algorithms 2 and 4): fast solvers vs the naive
// reference, validity (output is a realizable transformation cost), and the
// overlap extension of Section 5.2.3.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/workload.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

std::vector<Tuple> random_tuples(std::int64_t n, std::int64_t n_bar,
                                 std::size_t count, std::uint64_t seed) {
  Pcg32 rng = derive_stream(seed, 0x70);
  std::vector<Tuple> tuples;
  for (std::size_t i = 0; i < count; ++i) {
    Tuple t;
    t.block_begin = rng.uniform(0, n - 1);
    t.block_end = rng.uniform(t.block_begin + 1, n);
    t.window_begin = rng.uniform(0, n_bar);
    t.window_end = rng.uniform(t.window_begin, n_bar);
    t.distance = rng.uniform(0, 30);
    tuples.push_back(t);
  }
  return tuples;
}

TEST(Combine, EmptyTupleSetGivesTrivialCost) {
  CombineOptions max_opts{GapCost::kMax, true, false};
  CombineOptions sum_opts{GapCost::kSum, true, false};
  EXPECT_EQ(combine_tuples({}, 10, 14, max_opts), 14);
  EXPECT_EQ(combine_tuples({}, 10, 14, sum_opts), 24);
}

TEST(Combine, SingleTuple) {
  // Block [2,5) -> window [3,7), distance 1, n=10, n_bar=12.
  const std::vector<Tuple> tuples{{2, 5, 3, 7, 1}};
  CombineOptions opts{GapCost::kMax, true, false};
  // max(2,3) + 1 + max(10-5, 12-7) = 3 + 1 + 5 = 9.
  EXPECT_EQ(combine_tuples(tuples, 10, 12, opts), 9);
  opts.gap = GapCost::kSum;
  // (2+3) + 1 + (5+5) = 16, but the trivial bound is 10+12 = 22 > 16.
  EXPECT_EQ(combine_tuples(tuples, 10, 12, opts), 16);
}

TEST(Combine, PrefersCheaperChain) {
  // Two adjacent blocks covering everything exactly.
  const std::vector<Tuple> tuples{{0, 5, 0, 5, 1}, {5, 10, 5, 10, 2}};
  CombineOptions opts{GapCost::kMax, true, false};
  EXPECT_EQ(combine_tuples(tuples, 10, 10, opts), 3);
}

TEST(Combine, RespectsMonotonicity) {
  // Tuples with crossing windows cannot chain.
  const std::vector<Tuple> tuples{{0, 5, 6, 10, 0}, {5, 10, 0, 5, 0}};
  CombineOptions opts{GapCost::kMax, true, false};
  // Using one tuple: max(0,6)+0+max(5,0)=11  or  max(5,0)+0+max(0,5)=10.
  EXPECT_EQ(combine_tuples(tuples, 10, 10, opts), 10);
}

class CombineFuzz : public ::testing::TestWithParam<std::tuple<int, GapCost>> {};

TEST_P(CombineFuzz, FastMatchesNaive) {
  const auto [count, gap] = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const std::int64_t n = 40;
    const std::int64_t n_bar = 46;
    const auto tuples = random_tuples(n, n_bar, static_cast<std::size_t>(count), seed);
    CombineOptions fast{gap, true, false};
    CombineOptions naive{gap, false, false};
    const auto f = combine_tuples(tuples, n, n_bar, fast);
    const auto s = combine_tuples_naive(tuples, n, n_bar, naive);
    ASSERT_EQ(f, s) << "seed=" << seed << " count=" << count
                    << " gap=" << static_cast<int>(gap);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CountsAndGapModes, CombineFuzz,
    ::testing::Combine(::testing::Values(0, 1, 2, 5, 20, 100, 400),
                       ::testing::Values(GapCost::kMax, GapCost::kSum)));

TEST(Combine, ExactTuplesUpperBoundTrueDistance) {
  // Tuples built from exact block distances to aligned windows: the combine
  // result must be >= ed(s, t) (realizability) and, with perfectly aligned
  // exact tuples, usually close to it.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto s = core::random_string(80, 4, seed);
    const auto t = core::plant_edits(s, 8, seed + 3, false).text;
    const auto n = static_cast<std::int64_t>(s.size());
    const auto n_bar = static_cast<std::int64_t>(t.size());
    std::vector<Tuple> tuples;
    for (std::int64_t b = 0; b < n; b += 20) {
      const std::int64_t be = std::min<std::int64_t>(n, b + 20);
      for (std::int64_t shift = -4; shift <= 4; shift += 2) {
        const std::int64_t wb = std::clamp<std::int64_t>(b + shift, 0, n_bar);
        const std::int64_t we = std::clamp<std::int64_t>(be + shift, wb, n_bar);
        const auto d = edit_distance(subview(s, {b, be}), subview(t, {wb, we}));
        tuples.push_back(Tuple{b, be, wb, we, d});
      }
    }
    const auto exact = edit_distance(s, t);
    for (const GapCost gap : {GapCost::kMax, GapCost::kSum}) {
      const auto result = combine_tuples(tuples, n, n_bar, CombineOptions{gap, true, false});
      ASSERT_GE(result, exact) << "seed=" << seed;
      ASSERT_LE(result, n + n_bar);
    }
  }
}

TEST(Combine, OverlapExtensionNeverWorseThanWithout) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto tuples = random_tuples(30, 30, 40, seed);
    CombineOptions no_overlap{GapCost::kSum, false, false};
    CombineOptions with_overlap{GapCost::kSum, false, true};
    EXPECT_LE(combine_tuples_naive(tuples, 30, 30, with_overlap),
              combine_tuples_naive(tuples, 30, 30, no_overlap))
        << "seed=" << seed;
  }
}

TEST(Combine, OverlapStillUpperBoundsTrueDistance) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto s = core::random_string(60, 4, seed);
    const auto t = core::plant_edits(s, 6, seed + 11, false).text;
    const auto n = static_cast<std::int64_t>(s.size());
    const auto n_bar = static_cast<std::int64_t>(t.size());
    std::vector<Tuple> tuples;
    for (std::int64_t b = 0; b < n; b += 15) {
      const std::int64_t be = std::min<std::int64_t>(n, b + 15);
      // Deliberately overlapping windows.
      const std::int64_t wb = std::clamp<std::int64_t>(b - 3, 0, n_bar);
      const std::int64_t we = std::clamp<std::int64_t>(be + 3, wb, n_bar);
      const auto d = edit_distance(subview(s, {b, be}), subview(t, {wb, we}));
      tuples.push_back(Tuple{b, be, wb, we, d});
    }
    const auto result = combine_tuples_naive(
        tuples, n, n_bar, CombineOptions{GapCost::kSum, false, true});
    EXPECT_GE(result, edit_distance(s, t)) << "seed=" << seed;
  }
}

TEST(Combine, RejectsInvalidTuples) {
  const std::vector<Tuple> bad{{5, 3, 0, 2, 1}};  // empty block
  EXPECT_THROW((void)combine_tuples(bad, 10, 10), ContractViolation);
  const std::vector<Tuple> oob{{0, 3, 0, 20, 1}};  // window out of range
  EXPECT_THROW((void)combine_tuples(oob, 10, 10), ContractViolation);
}

TEST(Combine, WorkMeterFastBelowNaive) {
  const auto tuples = random_tuples(100, 100, 500, 3);
  std::uint64_t fast_work = 0;
  std::uint64_t naive_work = 0;
  (void)combine_tuples(tuples, 100, 100, CombineOptions{GapCost::kMax, true, false},
                       &fast_work);
  (void)combine_tuples_naive(tuples, 100, 100,
                             CombineOptions{GapCost::kMax, false, false}, &naive_work);
  EXPECT_LT(fast_work, naive_work);
}

}  // namespace
}  // namespace mpcsd::seq
