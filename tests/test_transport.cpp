// The transport layer: frame header validation, wire-record round trips
// (barrier / hello / assign / machine results), FrameStream over real fds,
// the EINTR-safe io helpers, host:port parsing, and the standalone socket
// worker's control-frame protocol against a mock coordinator.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "common/io.hpp"
#include "mpc/stats.hpp"
#include "mpc/transport.hpp"
#include "mpc/transport_socket.hpp"

namespace mpcsd::mpc {
namespace {

Bytes header_bytes(FrameTag tag, std::uint64_t payload_bytes) {
  ByteWriter w;
  encode_frame_header(w, tag, payload_bytes);
  return std::move(w).take();
}

TEST(Frame, HeaderRoundTripsEveryTag) {
  for (const auto tag :
       {FrameTag::kHello, FrameTag::kAssign, FrameTag::kResults,
        FrameTag::kBarrier, FrameTag::kError, FrameTag::kShutdown,
        FrameTag::kPing, FrameTag::kPong}) {
    const Bytes raw = header_bytes(tag, 12345);
    ASSERT_EQ(raw.size(), kFrameHeaderBytes);
    const FrameHeader h = decode_frame_header(raw.data(), raw.size());
    EXPECT_EQ(h.tag, tag);
    EXPECT_EQ(h.payload_bytes, 12345u);
  }
}

TEST(Frame, TruncatedHeaderThrows) {
  const Bytes raw = header_bytes(FrameTag::kHello, 0);
  for (std::size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_THROW((void)decode_frame_header(raw.data(), n), FrameError) << n;
  }
}

TEST(Frame, BadMagicThrows) {
  Bytes raw = header_bytes(FrameTag::kHello, 0);
  raw[0] ^= std::byte{0xFF};
  EXPECT_THROW((void)decode_frame_header(raw.data(), raw.size()), FrameError);
}

TEST(Frame, UnsupportedVersionThrows) {
  Bytes raw = header_bytes(FrameTag::kHello, 0);
  raw[4] = std::byte{kFrameVersion + 1};
  EXPECT_THROW((void)decode_frame_header(raw.data(), raw.size()), FrameError);
}

TEST(Frame, UnknownTagThrows) {
  for (const std::uint8_t tag : {std::uint8_t{0}, std::uint8_t{9},
                                 std::uint8_t{0xFF}}) {
    Bytes raw = header_bytes(FrameTag::kHello, 0);
    raw[5] = std::byte{tag};
    EXPECT_THROW((void)decode_frame_header(raw.data(), raw.size()), FrameError)
        << unsigned(tag);
  }
}

TEST(Frame, OversizedPayloadThrows) {
  const Bytes raw = header_bytes(FrameTag::kResults, kMaxFramePayload + 1);
  EXPECT_THROW((void)decode_frame_header(raw.data(), raw.size()), FrameError);
  // The cap itself is allowed.
  const Bytes ok = header_bytes(FrameTag::kResults, kMaxFramePayload);
  EXPECT_EQ(decode_frame_header(ok.data(), ok.size()).payload_bytes,
            kMaxFramePayload);
}

TEST(Records, BarrierRoundTripsAndIsPinnedTo17Bytes) {
  const BarrierRecord in{kWorkerBodyThrew, 987654321, 1.5};
  ByteWriter w;
  encode_barrier(w, in);
  // The former process-backend pipe barrier layout, byte for byte.
  ASSERT_EQ(w.bytes().size(), kBarrierRecordBytes);
  ByteReader r(w.bytes().data(), w.bytes().size());
  const BarrierRecord out = decode_barrier(r);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.result_bytes, in.result_bytes);
  EXPECT_EQ(out.body_seconds, in.body_seconds);
}

TEST(Records, BarrierRejectsUnknownStatus) {
  ByteWriter w;
  encode_barrier(w, BarrierRecord{});
  Bytes raw(w.bytes().begin(), w.bytes().end());
  raw[0] = std::byte{kWorkerPublishFailed + 1};
  ByteReader r(raw.data(), raw.size());
  EXPECT_THROW((void)decode_barrier(r), FrameError);
}

TEST(Records, HelloAndAssignRoundTrip) {
  ByteWriter w;
  encode_hello(w, HelloRecord{7, 1, 42});
  ByteReader r(w.bytes().data(), w.bytes().size());
  const HelloRecord hello = decode_hello(r);
  EXPECT_EQ(hello.slot, 7u);
  EXPECT_EQ(hello.body_affinity, 1);
  EXPECT_EQ(hello.round, 42u);

  ByteWriter w2;
  encode_assign(w2, AssignRecord{42, 0xDEADBEEF, 3, 11});
  ByteReader r2(w2.bytes().data(), w2.bytes().size());
  const AssignRecord assign = decode_assign(r2);
  EXPECT_EQ(assign.round, 42u);
  EXPECT_EQ(assign.seed, 0xDEADBEEFu);
  EXPECT_EQ(assign.begin, 3u);
  EXPECT_EQ(assign.end, 11u);
}

TEST(Records, HelloRejectsBadAffinityAssignRejectsInvertedRange) {
  ByteWriter w;
  encode_hello(w, HelloRecord{1, 1, 0});
  Bytes raw(w.bytes().begin(), w.bytes().end());
  raw[4] = std::byte{2};  // affinity is a boolean on the wire
  ByteReader r(raw.data(), raw.size());
  EXPECT_THROW((void)decode_hello(r), FrameError);

  ByteWriter w2;
  encode_assign(w2, AssignRecord{0, 0, /*begin=*/9, /*end=*/3});
  ByteReader r2(w2.bytes().data(), w2.bytes().size());
  EXPECT_THROW((void)decode_assign(r2), FrameError);
}

TEST(Records, MachineResultRoundTrips) {
  MachineReport report;
  report.input_bytes = 100;
  report.output_bytes = 200;
  report.scratch_bytes = 300;
  report.work = 400;
  Bytes stash{std::byte{1}, std::byte{2}, std::byte{3}};
  std::vector<Envelope> outbox;
  for (std::uint32_t i = 0; i < 5; ++i) {
    outbox.push_back(Envelope{i * 7, Bytes(i, std::byte{0xAB})});
  }
  ByteWriter w;
  encode_machine_result(w, report, stash, outbox);

  MachineReport report2;
  Bytes stash2;
  std::vector<Envelope> outbox2;
  ByteReader r(w.bytes().data(), w.bytes().size());
  decode_machine_result(r, &report2, &stash2, &outbox2);
  EXPECT_EQ(report2.input_bytes, report.input_bytes);
  EXPECT_EQ(report2.output_bytes, report.output_bytes);
  EXPECT_EQ(report2.scratch_bytes, report.scratch_bytes);
  EXPECT_EQ(report2.work, report.work);
  EXPECT_EQ(stash2, stash);
  ASSERT_EQ(outbox2.size(), outbox.size());
  for (std::size_t i = 0; i < outbox.size(); ++i) {
    EXPECT_EQ(outbox2[i].dest, outbox[i].dest) << i;
    EXPECT_EQ(outbox2[i].payload, outbox[i].payload) << i;
  }
}

TEST(Records, MachineResultRejectsTruncationWithoutHugeAllocation) {
  // A corrupt outbox count must fail on reader underflow, not allocate.
  MachineReport report;
  ByteWriter w;
  w.put(report);
  w.put_vector(Bytes{});
  w.put<std::uint64_t>(std::uint64_t{1} << 60);  // absurd envelope count
  Bytes raw(w.bytes().begin(), w.bytes().end());
  MachineReport report2;
  Bytes stash2;
  std::vector<Envelope> outbox2;
  ByteReader r(raw.data(), raw.size());
  EXPECT_THROW(decode_machine_result(r, &report2, &stash2, &outbox2),
               ContractViolation);
}

TEST(FrameStream, RoundTripsOverAPipeAndMeters) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  TransportCounters tx;
  TransportCounters rx;
  FrameStream writer(fds[1], &tx);
  FrameStream reader(fds[0], &rx);

  ByteWriter payload;
  payload.put_string("the payload");
  ASSERT_TRUE(writer.send(FrameTag::kPing, ByteSpan(payload.bytes())));
  const auto frame = reader.recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->tag, FrameTag::kPing);
  ByteReader r(frame->payload);
  EXPECT_EQ(r.get_string(), "the payload");

  EXPECT_EQ(tx.frames_sent, 1u);
  EXPECT_EQ(tx.bytes_sent, kFrameHeaderBytes + payload.bytes().size());
  EXPECT_EQ(tx.flushes, 1u);
  EXPECT_EQ(rx.frames_received, 1u);
  EXPECT_EQ(rx.bytes_received, kFrameHeaderBytes + payload.bytes().size());

  // Peer closing before a header is a clean EOF, not an error.
  io::close_fd(fds[1]);
  EXPECT_FALSE(reader.recv().has_value());
  io::close_fd(fds[0]);
}

TEST(FrameStream, PayloadCutShortIsAFrameError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  // A header promising 64 bytes, then only 3 bytes before EOF.
  const Bytes head = header_bytes(FrameTag::kResults, 64);
  ASSERT_TRUE(io::write_full(fds[1], head.data(), head.size()));
  const char partial[3] = {'a', 'b', 'c'};
  ASSERT_TRUE(io::write_full(fds[1], partial, sizeof(partial)));
  io::close_fd(fds[1]);
  FrameStream reader(fds[0]);
  EXPECT_THROW((void)reader.recv(), FrameError);
  io::close_fd(fds[0]);
}

TEST(FrameStream, MalformedHeaderOnTheWireIsAFrameError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  Bytes head = header_bytes(FrameTag::kResults, 8);
  head[0] ^= std::byte{0x55};  // corrupt the magic
  ASSERT_TRUE(io::write_full(fds[1], head.data(), head.size()));
  io::close_fd(fds[1]);
  FrameStream reader(fds[0]);
  EXPECT_THROW((void)reader.recv(), FrameError);
  io::close_fd(fds[0]);
}

TEST(Io, ReadFullAssemblesDribbledWrites) {
  // read_full must keep reading across short reads until the request is
  // filled; a writer thread dribbles the bytes a few at a time.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  Bytes sent(10000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = std::byte(i * 131);
  }
  std::thread writer([&] {
    std::size_t off = 0;
    while (off < sent.size()) {
      const std::size_t n = std::min<std::size_t>(97, sent.size() - off);
      ASSERT_TRUE(io::write_full(fds[1], sent.data() + off, n));
      off += n;
    }
    io::close_fd(fds[1]);
  });
  Bytes got(sent.size());
  EXPECT_TRUE(io::read_full(fds[0], got.data(), got.size()));
  EXPECT_EQ(got, sent);
  // Stream exhausted: the next read hits EOF and reports failure.
  std::byte one;
  EXPECT_FALSE(io::read_full(fds[0], &one, 1));
  writer.join();
  io::close_fd(fds[0]);
  EXPECT_EQ(fds[0], -1);  // close_fd resets the stored fd
}

TEST(HostPort, ParsesSinglesAndLists) {
  const auto one = parse_host_port_list("127.0.0.1:7000");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].host, "127.0.0.1");
  EXPECT_EQ(one[0].port, 7000);

  const auto many = parse_host_port_list("localhost:0, 10.0.0.2:65535");
  ASSERT_EQ(many.size(), 2u);
  EXPECT_EQ(many[0].host, "localhost");
  EXPECT_EQ(many[0].port, 0);
  EXPECT_EQ(many[1].host, "10.0.0.2");
  EXPECT_EQ(many[1].port, 65535);
}

TEST(HostPort, RejectsMalformedEntries) {
  for (const char* bad : {"", "nocolon", ":7000", "host:", "host:abc",
                          "host:70000", "a:1,,b:2", "a:1,"}) {
    EXPECT_THROW((void)parse_host_port_list(bad), std::invalid_argument)
        << "'" << bad << "'";
  }
}

TEST(SocketWorker, SpeaksTheControlProtocolWithACoordinator) {
  // Mock coordinator: accept the standalone worker, check its hello
  // (no body affinity, no slot), ping it, then shut it down with a reason.
  SocketTransport coordinator(HostPort{"127.0.0.1", 0});
  coordinator.ensure_listening();
  ASSERT_NE(coordinator.address().port, 0);  // ephemeral port resolved
  EXPECT_STREQ(coordinator.name(), "tcp");

  std::FILE* log = std::tmpfile();
  ASSERT_NE(log, nullptr);
  int worker_rc = -1;
  std::thread worker([&] {
    worker_rc = run_socket_worker({coordinator.address()}, log);
  });

  int fd = -1;
  for (int tries = 0; tries < 100 && fd < 0; ++tries) {
    fd = coordinator.accept_connection(100);
  }
  ASSERT_GE(fd, 0) << "worker never connected";
  FrameStream stream(fd, &coordinator.counters(),
                     FrameStream::Medium::kSocket);

  const auto hello_frame = stream.recv();
  ASSERT_TRUE(hello_frame.has_value());
  ASSERT_EQ(hello_frame->tag, FrameTag::kHello);
  ByteReader hr(hello_frame->payload);
  const HelloRecord hello = decode_hello(hr);
  EXPECT_EQ(hello.slot, kWorkerSlotNone);
  EXPECT_EQ(hello.body_affinity, 0);

  ByteWriter ping;
  ping.put<std::uint64_t>(0xFEEDFACE);
  ASSERT_TRUE(stream.send(FrameTag::kPing, ByteSpan(ping.bytes())));
  const auto pong = stream.recv();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->tag, FrameTag::kPong);
  ByteReader pr(pong->payload);
  EXPECT_EQ(pr.get<std::uint64_t>(), 0xFEEDFACEu);

  ByteWriter reason;
  reason.put_string("round over");
  ASSERT_TRUE(stream.send(FrameTag::kShutdown, ByteSpan(reason.bytes())));
  worker.join();
  EXPECT_EQ(worker_rc, 0);
  io::close_fd(fd);
  std::fclose(log);

  // The coordinator's transport metered the exchange.
  EXPECT_GE(coordinator.counters().frames_received, 2u);  // hello + pong
  EXPECT_GE(coordinator.counters().frames_sent, 2u);      // ping + shutdown
}

TEST(SocketTransport, AcceptTimesOutAndConnectFailsCleanly) {
  SocketTransport coordinator(HostPort{"localhost", 0});
  coordinator.ensure_listening();
  EXPECT_EQ(coordinator.accept_connection(10), -1);  // nobody connecting
  // A connect to a port nobody listens on fails with -1, not an exception.
  EXPECT_EQ(SocketTransport::connect_to(HostPort{"127.0.0.1", 1}), -1);
  // An unresolvable host is also a clean failure.
  EXPECT_EQ(SocketTransport::connect_to(HostPort{"not-an-address", 9}), -1);
}

}  // namespace
}  // namespace mpcsd::mpc
