// The MPC simulator: round semantics, deterministic mail routing, memory
// accounting and caps, work metering, and trace composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "common/rng.hpp"
#include "mpc/cluster.hpp"
#include "mpc/stats.hpp"

namespace mpcsd::mpc {
namespace {

Bytes payload_of(std::int64_t v) {
  ByteWriter w;
  w.put(v);
  return std::move(w).take();
}

// Copying gather, local to this test: the library routes mailboxes through
// `gather_view`; tests still want owned bytes to compare payloads directly.
Bytes gather(const Mail& mail, std::uint32_t dest) {
  return gather_view(mail, dest).to_bytes();
}

TEST(Cluster, SingleRoundEcho) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs{payload_of(1), payload_of(2), payload_of(3)};
  const auto mail = cluster.run_round("echo", inputs, [](MachineContext& ctx) {
    auto r = ctx.reader();
    const auto v = r.get<std::int64_t>();
    ByteWriter w;
    w.put(v * 10);
    ctx.emit(0, std::move(w).take());
  });
  const Bytes merged = gather(mail, 0);
  ByteReader r(merged);
  EXPECT_EQ(r.get<std::int64_t>(), 10);
  EXPECT_EQ(r.get<std::int64_t>(), 20);
  EXPECT_EQ(r.get<std::int64_t>(), 30);
  EXPECT_EQ(cluster.trace().round_count(), 1u);
  EXPECT_EQ(cluster.trace().rounds()[0].machines, 3u);
}

TEST(Cluster, MailOrderIsDeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(ClusterConfig{.memory_limit_bytes = UINT64_MAX,
                                  .strict_memory = false,
                                  .workers = 4,
                                  .seed = 5});
    std::vector<Bytes> inputs;
    for (std::int64_t i = 0; i < 50; ++i) inputs.push_back(payload_of(i));
    const auto mail = cluster.run_round("m", inputs, [](MachineContext& ctx) {
      auto r = ctx.reader();
      ByteWriter w;
      w.put(r.get<std::int64_t>());
      ctx.emit(0, std::move(w).take());
    });
    return gather(mail, 0);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Cluster, MachineRngIsDeterministicPerMachine) {
  auto sample = [](std::size_t workers) {
    Cluster cluster(ClusterConfig{.memory_limit_bytes = UINT64_MAX,
                                  .strict_memory = false,
                                  .workers = workers,
                                  .seed = 42});
    std::vector<Bytes> inputs(8);
    std::vector<std::uint32_t> values(8);
    cluster.run_round("rng", inputs, [&](MachineContext& ctx) {
      values[ctx.machine_id()] = ctx.rng().next();
    });
    return values;
  };
  EXPECT_EQ(sample(1), sample(4));  // independent of scheduling
}

TEST(Cluster, MemoryAccountingCountsInputAndOutput) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs{Bytes(100)};
  cluster.run_round("mem", inputs, [](MachineContext& ctx) {
    ctx.emit(0, Bytes(40));
    ctx.charge_scratch(60);
  });
  const RoundReport& r = cluster.trace().rounds()[0];
  EXPECT_EQ(r.max_machine_memory, 200u);
  EXPECT_EQ(r.total_comm_bytes, 40u);
  EXPECT_EQ(r.total_input_bytes, 100u);
}

TEST(Cluster, StrictMemoryThrows) {
  Cluster cluster(ClusterConfig{.memory_limit_bytes = 50,
                                .strict_memory = true,
                                .workers = 1,
                                .seed = 0});
  std::vector<Bytes> inputs{Bytes(100)};
  EXPECT_THROW(cluster.run_round("boom", inputs, [](MachineContext&) {}),
               MemoryLimitExceeded);
}

TEST(Cluster, NonStrictMemoryRecordsViolation) {
  Cluster cluster(ClusterConfig{.memory_limit_bytes = 50,
                                .strict_memory = false,
                                .workers = 1,
                                .seed = 0});
  std::vector<Bytes> inputs{Bytes(100), Bytes(10)};
  cluster.run_round("soft", inputs, [](MachineContext&) {});
  EXPECT_EQ(cluster.trace().rounds()[0].memory_violations, 1u);
}

TEST(Cluster, WorkMetering) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs(3);
  cluster.run_round("work", inputs, [](MachineContext& ctx) {
    ctx.charge_work(10 * (ctx.machine_id() + 1));
  });
  const RoundReport& r = cluster.trace().rounds()[0];
  EXPECT_EQ(r.total_work, 60u);
  EXPECT_EQ(r.max_machine_work, 30u);
}

TEST(Cluster, MultipleMailboxes) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs(4);
  const auto mail = cluster.run_round("route", inputs, [](MachineContext& ctx) {
    ByteWriter w;
    w.put<std::uint64_t>(ctx.machine_id());
    ctx.emit(static_cast<std::uint32_t>(ctx.machine_id() % 2), std::move(w).take());
  });
  EXPECT_EQ(mail.at(0).size(), 2u);
  EXPECT_EQ(mail.at(1).size(), 2u);
  EXPECT_TRUE(gather(mail, 99).empty());
}

TEST(Cluster, ParallelRouterMatchesStableSortByteExact) {
  // The radix router (per-chunk counting histograms + stable scatter) must
  // keep `Mail` byte-identical to a global std::stable_sort of the
  // emissions: same envelope order, same payload bytes, same per-dest
  // spans — across worker counts, skewed dest distributions, and envelope
  // counts straddling the radix-route threshold (512).  The reference is
  // rebuilt here from the deterministic emission schedule, independent of
  // any Cluster code path.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const std::size_t machines : {40u, 200u, 700u}) {
      ClusterConfig serial_cfg;
      serial_cfg.workers = 1;
      serial_cfg.seed = 99;
      ClusterConfig parallel_cfg;
      parallel_cfg.workers = 5;
      parallel_cfg.seed = 99;
      Cluster serial(serial_cfg);
      Cluster parallel(parallel_cfg);

      std::vector<Bytes> inputs;
      for (std::size_t i = 0; i < machines; ++i) {
        inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
      }
      // Each machine emits a deterministic skewed burst: most messages
      // pile onto a handful of hot mailboxes, the tail spreads out.
      const auto body = [&](MachineContext& ctx) {
        auto r = ctx.reader();
        const auto id = r.get<std::int64_t>();
        Pcg32 rng(seed * 1000003u + static_cast<std::uint64_t>(id), 54u);
        const std::size_t burst = 1 + rng.next() % 7;
        for (std::size_t m = 0; m < burst; ++m) {
          const bool hot = rng.next() % 4 != 0;  // 3/4 of traffic to 3 dests
          const auto dest = hot ? static_cast<std::uint32_t>(rng.next() % 3)
                                : static_cast<std::uint32_t>(rng.next() % 64);
          ByteWriter w;
          w.put(id);
          w.put(static_cast<std::int64_t>(m));
          ctx.emit(dest, std::move(w).take());
        }
      };
      // Independent reference: replay the emission schedule in (machine,
      // emission) order and globally stable-sort by destination.
      std::vector<Envelope> ref;
      for (std::size_t id = 0; id < machines; ++id) {
        Pcg32 rng(seed * 1000003u + id, 54u);
        const std::size_t burst = 1 + rng.next() % 7;
        for (std::size_t m = 0; m < burst; ++m) {
          const bool hot = rng.next() % 4 != 0;
          const auto dest = hot ? static_cast<std::uint32_t>(rng.next() % 3)
                                : static_cast<std::uint32_t>(rng.next() % 64);
          ByteWriter w;
          w.put(static_cast<std::int64_t>(id));
          w.put(static_cast<std::int64_t>(m));
          ref.push_back(Envelope{dest, std::move(w).take()});
        }
      }
      std::stable_sort(ref.begin(), ref.end(),
                       [](const Envelope& a, const Envelope& b) {
                         return a.dest < b.dest;
                       });

      const auto want = serial.run_round("route", inputs, body);
      const auto got = parallel.run_round("route", inputs, body);

      ASSERT_EQ(want.message_count(), ref.size())
          << "seed " << seed << " machines " << machines;
      ASSERT_EQ(got.message_count(), ref.size())
          << "seed " << seed << " machines " << machines;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(want.all()[i].dest, ref[i].dest) << "envelope " << i;
        ASSERT_EQ(want.all()[i].payload, ref[i].payload) << "envelope " << i;
        ASSERT_EQ(got.all()[i].dest, ref[i].dest) << "envelope " << i;
        ASSERT_EQ(got.all()[i].payload, ref[i].payload) << "envelope " << i;
      }
      for (std::uint32_t dest = 0; dest < 64; ++dest) {
        ASSERT_EQ(gather(got, dest), gather(want, dest)) << "dest " << dest;
      }
    }
  }
}

TEST(Cluster, RadixRouterWideDestsTwoPass) {
  // Destinations past 2^16 force the router's second (high-bits) radix
  // pass; sparse, clustered, and boundary-adjacent dest values must still
  // come out exactly stable-sorted.  Also covers payload-size skew: one
  // machine emits megabyte-class payloads so the byte-weighted chunk
  // balancing path runs.
  for (const std::size_t workers : {1u, 5u}) {
    ClusterConfig cfg;
    cfg.workers = workers;
    Cluster cluster(cfg);
    const std::size_t machines = 300;
    std::vector<Bytes> inputs;
    for (std::size_t i = 0; i < machines; ++i) {
      inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
    }
    const auto body = [](MachineContext& ctx) {
      auto r = ctx.reader();
      const auto id = r.get<std::int64_t>();
      Pcg32 rng(7u + static_cast<std::uint64_t>(id), 11u);
      const std::size_t burst = 2 + rng.next() % 4;
      for (std::size_t m = 0; m < burst; ++m) {
        // Mix of low dests, dests straddling the 16-bit pass boundary, and
        // sparse high dests up to ~2^20.
        const std::uint64_t pick = rng.next() % 3;
        std::uint32_t dest = 0;
        if (pick == 0) {
          dest = static_cast<std::uint32_t>(rng.next() % 8);
        } else if (pick == 1) {
          dest = 65534 + static_cast<std::uint32_t>(rng.next() % 4);
        } else {
          dest = static_cast<std::uint32_t>(rng.next() % (1u << 20));
        }
        ByteWriter w;
        w.put(id);
        w.put(static_cast<std::int64_t>(m));
        if (id == 17) w.put_vector(Bytes(1 << 20, std::byte{0x5a}));
        ctx.emit(dest, std::move(w).take());
      }
    };
    const auto mail = cluster.run_round("wide", inputs, body);

    std::vector<Envelope> ref;
    for (std::size_t id = 0; id < machines; ++id) {
      Pcg32 rng(7u + id, 11u);
      const std::size_t burst = 2 + rng.next() % 4;
      for (std::size_t m = 0; m < burst; ++m) {
        const std::uint64_t pick = rng.next() % 3;
        std::uint32_t dest = 0;
        if (pick == 0) {
          dest = static_cast<std::uint32_t>(rng.next() % 8);
        } else if (pick == 1) {
          dest = 65534 + static_cast<std::uint32_t>(rng.next() % 4);
        } else {
          dest = static_cast<std::uint32_t>(rng.next() % (1u << 20));
        }
        ByteWriter w;
        w.put(static_cast<std::int64_t>(id));
        w.put(static_cast<std::int64_t>(m));
        if (id == 17) w.put_vector(Bytes(1 << 20, std::byte{0x5a}));
        ref.push_back(Envelope{dest, std::move(w).take()});
      }
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.dest < b.dest;
                     });

    ASSERT_EQ(mail.message_count(), ref.size()) << "workers " << workers;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(mail.all()[i].dest, ref[i].dest)
          << "workers " << workers << " envelope " << i;
      ASSERT_EQ(mail.all()[i].payload, ref[i].payload)
          << "workers " << workers << " envelope " << i;
    }
  }
}

TEST(Cluster, RadixRouterExactly16BitDestRangeSinglePass) {
  // Exactly 65536 distinct destinations: bit_width of the dest OR is 16,
  // the single-pass boundary of the radix router.  Every dest in the full
  // low-16-bit space gets one envelope, and dest 0 additionally gets one
  // per machine (machine order pins stability).  Byte-identical to a
  // global stable sort of the emission schedule.
  for (const std::size_t workers : {1u, 4u}) {
    ClusterConfig cfg;
    cfg.workers = workers;
    Cluster cluster(cfg);
    const std::size_t machines = 128;
    const std::size_t span = 65536 / machines;
    std::vector<Bytes> inputs;
    for (std::size_t i = 0; i < machines; ++i) {
      inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
    }
    const auto emit_plan = [&](std::int64_t id, auto&& sink) {
      for (std::size_t k = 0; k < span; ++k) {
        ByteWriter w;
        w.put(id);
        w.put(static_cast<std::int64_t>(k));
        sink(static_cast<std::uint32_t>(static_cast<std::size_t>(id) * span + k),
             std::move(w).take());
      }
      ByteWriter w;
      w.put(id);
      w.put<std::int64_t>(-1);
      sink(0, std::move(w).take());
    };
    const auto mail =
        cluster.run_round("route:16bit", inputs, [&](MachineContext& ctx) {
          auto r = ctx.reader();
          const auto id = r.get<std::int64_t>();
          emit_plan(id, [&](std::uint32_t dest, Bytes payload) {
            ctx.emit(dest, std::move(payload));
          });
        });

    std::vector<Envelope> ref;
    for (std::size_t id = 0; id < machines; ++id) {
      emit_plan(static_cast<std::int64_t>(id),
                [&](std::uint32_t dest, Bytes payload) {
                  ref.push_back(Envelope{dest, std::move(payload)});
                });
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.dest < b.dest;
                     });

    ASSERT_EQ(mail.message_count(), ref.size()) << "workers " << workers;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(mail.all()[i].dest, ref[i].dest)
          << "workers " << workers << " envelope " << i;
      ASSERT_EQ(mail.all()[i].payload, ref[i].payload)
          << "workers " << workers << " envelope " << i;
    }
    // Payloads are two int64s (16 bytes).  Dest 0 is the hot destination
    // (one per machine plus machine 0's span slot); 65535 is the top of
    // the covered range.
    EXPECT_EQ(gather(mail, 0).size(), (machines + 1) * 16);
    EXPECT_EQ(gather(mail, 65535).size(), 16u);
  }
}

TEST(Cluster, RadixRouterDest65536TriggersSecondPassByteExact) {
  // One envelope to dest 65536 pushes the dest OR past 16 bits, flipping
  // the router into its two-pass (high-bits) mode for the whole round; the
  // result must stay byte-identical to the stable-sort reference.
  for (const std::size_t workers : {1u, 4u}) {
    ClusterConfig cfg;
    cfg.workers = workers;
    Cluster cluster(cfg);
    const std::size_t machines = 600;  // above the radix-route threshold
    std::vector<Bytes> inputs;
    for (std::size_t i = 0; i < machines; ++i) {
      inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
    }
    const auto dest_of = [](std::int64_t id) {
      if (id == 299) return std::uint32_t{65536};  // the boundary breaker
      return static_cast<std::uint32_t>((id * 131) % 65536);
    };
    const auto mail =
        cluster.run_round("route:65536", inputs, [&](MachineContext& ctx) {
          auto r = ctx.reader();
          const auto id = r.get<std::int64_t>();
          ByteWriter w;
          w.put(id);
          ctx.emit(dest_of(id), std::move(w).take());
        });

    std::vector<Envelope> ref;
    for (std::size_t id = 0; id < machines; ++id) {
      ByteWriter w;
      w.put(static_cast<std::int64_t>(id));
      ref.push_back(Envelope{dest_of(static_cast<std::int64_t>(id)),
                             std::move(w).take()});
    }
    std::stable_sort(ref.begin(), ref.end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.dest < b.dest;
                     });

    ASSERT_EQ(mail.message_count(), ref.size()) << "workers " << workers;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(mail.all()[i].dest, ref[i].dest)
          << "workers " << workers << " envelope " << i;
      ASSERT_EQ(mail.all()[i].payload, ref[i].payload)
          << "workers " << workers << " envelope " << i;
    }
    EXPECT_EQ(gather(mail, 65536).size(), sizeof(std::int64_t));
  }
}

TEST(Cluster, ArenaCapacityDecaysAfterBurstRound) {
  // Round-scoped arenas (outbox slots, route scratch) grow to a burst
  // round's high-water mark and used to stay there for the cluster's
  // lifetime.  After sustained low usage they must be released.
  ClusterConfig cfg;
  cfg.workers = 2;
  Cluster cluster(cfg);
  std::vector<Bytes> inputs;
  for (std::size_t i = 0; i < 4; ++i) {
    inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
  }
  // Burst: one machine emits tens of thousands of envelopes, pinning
  // megabyte-class slot capacity that a plain clear() keeps allocated.
  cluster.run_round("burst", inputs, [](MachineContext& ctx) {
    auto r = ctx.reader();
    const auto id = r.get<std::int64_t>();
    if (id != 0) return;
    for (std::int64_t m = 0; m < 50000; ++m) {
      ByteWriter w;
      w.put(m);
      ctx.emit(static_cast<std::uint32_t>(m % 7), std::move(w).take());
    }
  });
  const std::size_t after_burst = cluster.arena_footprint_bytes();
  const auto lean = [](MachineContext& ctx) {
    auto r = ctx.reader();
    const auto id = r.get<std::int64_t>();
    ByteWriter w;
    w.put(id);
    ctx.emit(0, std::move(w).take());
  };
  // Longer than the decay window of consecutive low-usage rounds.
  for (int round = 0; round < 12; ++round) {
    cluster.run_round("lean", inputs, lean);
  }
  EXPECT_LT(cluster.arena_footprint_bytes(), after_burst / 4);
}

TEST(Cluster, RouterZeroEnvelopeRound) {
  // A round where no machine emits anything: empty mail, empty gathers,
  // and no crash in either routing path.
  for (const std::size_t workers : {1u, 4u}) {
    ClusterConfig cfg;
    cfg.workers = workers;
    Cluster cluster(cfg);
    std::vector<Bytes> inputs;
    for (std::size_t i = 0; i < 9; ++i) {
      inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
    }
    const auto mail =
        cluster.run_round("route:silent", inputs, [](MachineContext& ctx) {
          auto r = ctx.reader();
          (void)r.get<std::int64_t>();
          ctx.charge_work(1);
        });
    EXPECT_EQ(mail.message_count(), 0u);
    EXPECT_TRUE(mail.all().empty());
    EXPECT_TRUE(gather(mail, 0).empty());
  }
}

TEST(Cluster, RouterSingleDestinationKeepsEmissionOrder) {
  // Every envelope lands on one mailbox, with enough of them to engage the
  // radix path: the routed order must equal the (machine, emission) order,
  // i.e. stable-sort with a constant key is the identity.
  for (const std::size_t workers : {1u, 4u}) {
    ClusterConfig cfg;
    cfg.workers = workers;
    Cluster cluster(cfg);
    const std::size_t machines = 700;  // above the radix-route threshold
    std::vector<Bytes> inputs;
    for (std::size_t i = 0; i < machines; ++i) {
      inputs.push_back(payload_of(static_cast<std::int64_t>(i)));
    }
    const auto mail =
        cluster.run_round("route:onedest", inputs, [](MachineContext& ctx) {
          auto r = ctx.reader();
          const auto id = r.get<std::int64_t>();
          for (std::int64_t m = 0; m < 2; ++m) {
            ByteWriter w;
            w.put(id);
            w.put(m);
            ctx.emit(3, std::move(w).take());
          }
        });
    ASSERT_EQ(mail.message_count(), 2 * machines);
    for (std::size_t i = 0; i < 2 * machines; ++i) {
      ASSERT_EQ(mail.all()[i].dest, 3u);
      ByteReader r(mail.all()[i].payload);
      EXPECT_EQ(r.get<std::int64_t>(), static_cast<std::int64_t>(i / 2));
      EXPECT_EQ(r.get<std::int64_t>(), static_cast<std::int64_t>(i % 2));
    }
  }
}

TEST(Trace, SequentialAppend) {
  ExecutionTrace a;
  a.add_round(RoundReport{.label = "r1", .machines = 3, .max_machine_memory = 10,
                          .total_comm_bytes = 5, .total_input_bytes = 7,
                          .total_work = 100, .max_machine_work = 50,
                          .wall_seconds = 0, .memory_violations = 0});
  ExecutionTrace b;
  b.add_round(RoundReport{.label = "r2", .machines = 5, .max_machine_memory = 20,
                          .total_comm_bytes = 6, .total_input_bytes = 8,
                          .total_work = 200, .max_machine_work = 60,
                          .wall_seconds = 0, .memory_violations = 1});
  a.append_sequential(b);
  EXPECT_EQ(a.round_count(), 2u);
  EXPECT_EQ(a.max_machines(), 5u);
  EXPECT_EQ(a.total_work(), 300u);
  EXPECT_EQ(a.critical_path_work(), 110u);
  EXPECT_EQ(a.memory_violations(), 1u);
}

TEST(Trace, ParallelMerge) {
  ExecutionTrace a;
  a.add_round(RoundReport{.label = "x", .machines = 3, .max_machine_memory = 10,
                          .total_comm_bytes = 5, .total_input_bytes = 0,
                          .total_work = 100, .max_machine_work = 50,
                          .wall_seconds = 0, .memory_violations = 0});
  ExecutionTrace b;
  b.add_round(RoundReport{.label = "y", .machines = 4, .max_machine_memory = 30,
                          .total_comm_bytes = 2, .total_input_bytes = 0,
                          .total_work = 10, .max_machine_work = 9,
                          .wall_seconds = 0, .memory_violations = 0});
  b.add_round(RoundReport{.label = "y2", .machines = 1, .max_machine_memory = 1,
                          .total_comm_bytes = 1, .total_input_bytes = 0,
                          .total_work = 1, .max_machine_work = 1,
                          .wall_seconds = 0, .memory_violations = 0});
  a.merge_parallel(b);
  ASSERT_EQ(a.round_count(), 2u);  // padded to the longer trace
  EXPECT_EQ(a.rounds()[0].machines, 7u);
  EXPECT_EQ(a.rounds()[0].max_machine_memory, 30u);
  EXPECT_EQ(a.rounds()[0].total_work, 110u);
  EXPECT_EQ(a.rounds()[1].machines, 1u);
}

TEST(Trace, SummaryMentionsRoundsAndViolations) {
  ExecutionTrace tr;
  tr.add_round(RoundReport{.label = "only", .machines = 2, .max_machine_memory = 8,
                           .total_comm_bytes = 3, .total_input_bytes = 4,
                           .total_work = 9, .max_machine_work = 5,
                           .wall_seconds = 0, .memory_violations = 2});
  const std::string s = tr.summary();
  EXPECT_NE(s.find("rounds=1"), std::string::npos);
  EXPECT_NE(s.find("MEMORY_VIOLATIONS=2"), std::string::npos);
}

TEST(Trace, CsvExport) {
  ExecutionTrace tr;
  tr.add_round(RoundReport{.label = "phase1", .machines = 2, .max_machine_memory = 8,
                           .total_comm_bytes = 3, .total_input_bytes = 4,
                           .total_work = 9, .max_machine_work = 5,
                           .wall_seconds = 0, .memory_violations = 0});
  const std::string csv = tr.to_csv();
  EXPECT_NE(csv.find("round,label,machines"), std::string::npos);
  EXPECT_NE(csv.find("1,phase1,2,8,3,4,9,5,"), std::string::npos);
  // header + one row
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Cluster, ZeroMachinesRound) {
  Cluster cluster(ClusterConfig{});
  const auto mail = cluster.run_round("empty", {}, [](MachineContext&) {});
  EXPECT_TRUE(mail.empty());
  EXPECT_EQ(cluster.trace().rounds()[0].machines, 0u);
}

// ---- Zero-copy routing: equivalence with the contiguous-inputs path. ----

// A body exercising everything a machine can do: read, compute, charge,
// and emit to several interleaved mailboxes.
void busy_body(MachineContext& ctx) {
  auto r = ctx.reader();
  const auto v = r.get<std::int64_t>();
  ctx.charge_work(static_cast<std::uint64_t>(3 * v + 1));
  ctx.charge_scratch(16);
  ByteWriter w1;
  w1.put<std::int64_t>(v + 100);
  ctx.emit(static_cast<std::uint32_t>(v % 3), std::move(w1).take());
  ByteWriter w2;
  w2.put<std::int64_t>(-v);
  ctx.emit(7, std::move(w2).take());
}

TEST(Cluster, ViewsPathMatchesBytesPathByteExact) {
  std::vector<Bytes> inputs;
  for (std::int64_t i = 0; i < 20; ++i) inputs.push_back(payload_of(i));

  Cluster c1(ClusterConfig{});
  const auto mail_bytes = c1.run_round("r", inputs, busy_body);

  // Same storage, but each 8-byte input handed over as two fragments.
  std::vector<ByteChain> chains(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    chains[i].add(ByteSpan(inputs[i].data(), 3));
    chains[i].add(ByteSpan(inputs[i].data() + 3, inputs[i].size() - 3));
  }
  Cluster c2(ClusterConfig{});
  const auto mail_views = c2.run_round_views("r", chains, busy_body);

  // Mail must be byte-exact, envelope by envelope.
  ASSERT_EQ(mail_bytes.message_count(), mail_views.message_count());
  for (std::size_t i = 0; i < mail_bytes.all().size(); ++i) {
    EXPECT_EQ(mail_bytes.all()[i].dest, mail_views.all()[i].dest) << "envelope " << i;
    EXPECT_EQ(mail_bytes.all()[i].payload, mail_views.all()[i].payload) << "envelope " << i;
  }
  for (const std::uint32_t dest : {0u, 1u, 2u, 7u, 99u}) {
    EXPECT_EQ(gather(mail_bytes, dest), gather(mail_views, dest)) << "dest=" << dest;
  }

  // RoundReport metering must be identical (wall time excepted).
  const RoundReport& a = c1.trace().rounds()[0];
  const RoundReport& b = c2.trace().rounds()[0];
  EXPECT_EQ(a.machines, b.machines);
  EXPECT_EQ(a.max_machine_memory, b.max_machine_memory);
  EXPECT_EQ(a.total_comm_bytes, b.total_comm_bytes);
  EXPECT_EQ(a.total_input_bytes, b.total_input_bytes);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.max_machine_work, b.max_machine_work);
  EXPECT_EQ(a.memory_violations, b.memory_violations);
}

TEST(Cluster, FlatRoutingMatchesMapReference) {
  // Reference semantics: the seed's map-of-vectors merge — ascending dest,
  // within a dest ascending machine id, then emission order.
  std::vector<Bytes> inputs;
  for (std::int64_t i = 0; i < 17; ++i) inputs.push_back(payload_of(i));
  Cluster cluster(ClusterConfig{});
  const auto mail = cluster.run_round("route", inputs, [](MachineContext& ctx) {
    auto r = ctx.reader();
    const auto v = r.get<std::int64_t>();
    for (std::int64_t e = 0; e < 3; ++e) {
      ByteWriter w;
      w.put<std::int64_t>(v * 10 + e);
      ctx.emit(static_cast<std::uint32_t>((v + e) % 4), std::move(w).take());
    }
  });

  std::map<std::uint32_t, std::vector<Bytes>> reference;
  for (std::int64_t v = 0; v < 17; ++v) {
    for (std::int64_t e = 0; e < 3; ++e) {
      ByteWriter w;
      w.put<std::int64_t>(v * 10 + e);
      reference[static_cast<std::uint32_t>((v + e) % 4)].push_back(std::move(w).take());
    }
  }
  std::size_t i = 0;
  for (const auto& [dest, payloads] : reference) {
    const auto span = mail.at(dest);
    ASSERT_EQ(span.size(), payloads.size()) << "dest=" << dest;
    for (std::size_t j = 0; j < payloads.size(); ++j, ++i) {
      EXPECT_EQ(span[j].payload, payloads[j]) << "dest=" << dest << " j=" << j;
      EXPECT_EQ(mail.all()[i].dest, dest);
      EXPECT_EQ(mail.all()[i].payload, payloads[j]);
    }
  }
  EXPECT_EQ(i, mail.message_count());
}

TEST(Cluster, StrictMemoryThrowsOnViewsPath) {
  Cluster cluster(ClusterConfig{.memory_limit_bytes = 50,
                                .strict_memory = true,
                                .workers = 1,
                                .seed = 0});
  const Bytes big(100);
  std::vector<ByteChain> chains(1);
  chains[0].add(ByteSpan(big));
  EXPECT_THROW(cluster.run_round_views("boom", chains, [](MachineContext&) {}),
               MemoryLimitExceeded);
}

TEST(Cluster, GrainConfigDoesNotChangeResults) {
  auto run_with_grain = [](std::size_t grain) {
    Cluster cluster(ClusterConfig{.memory_limit_bytes = UINT64_MAX,
                                  .strict_memory = false,
                                  .workers = 4,
                                  .seed = 5,
                                  .grain = grain});
    std::vector<Bytes> inputs;
    for (std::int64_t i = 0; i < 100; ++i) inputs.push_back(payload_of(i));
    const auto mail = cluster.run_round("g", inputs, [](MachineContext& ctx) {
      auto r = ctx.reader();
      ByteWriter w;
      w.put<std::int64_t>(r.get<std::int64_t>() * 2);
      ctx.emit(0, std::move(w).take());
    });
    return gather(mail, 0);
  };
  const auto baseline = run_with_grain(1);
  EXPECT_EQ(run_with_grain(0), baseline);   // auto
  EXPECT_EQ(run_with_grain(7), baseline);
  EXPECT_EQ(run_with_grain(64), baseline);
}

TEST(Cluster, GatherViewMatchesGather) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs{payload_of(1), payload_of(2), payload_of(3)};
  const auto mail = cluster.run_round("gv", inputs, [](MachineContext& ctx) {
    auto r = ctx.reader();
    ByteWriter w;
    w.put<std::int64_t>(r.get<std::int64_t>());
    ctx.emit(0, std::move(w).take());
  });
  const ByteChain view = gather_view(mail, 0);
  EXPECT_EQ(view.to_bytes(), gather(mail, 0));
  EXPECT_EQ(view.parts().size(), 3u);  // one fragment per payload, no copy
  EXPECT_TRUE(gather_view(mail, 42).empty());
}

}  // namespace
}  // namespace mpcsd::mpc
