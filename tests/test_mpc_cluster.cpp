// The MPC simulator: round semantics, deterministic mail routing, memory
// accounting and caps, work metering, and trace composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mpc/cluster.hpp"
#include "mpc/stats.hpp"

namespace mpcsd::mpc {
namespace {

Bytes payload_of(std::int64_t v) {
  ByteWriter w;
  w.put(v);
  return std::move(w).take();
}

TEST(Cluster, SingleRoundEcho) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs{payload_of(1), payload_of(2), payload_of(3)};
  const auto mail = cluster.run_round("echo", inputs, [](MachineContext& ctx) {
    ByteReader r = ctx.reader();
    const auto v = r.get<std::int64_t>();
    ByteWriter w;
    w.put(v * 10);
    ctx.emit(0, std::move(w).take());
  });
  const Bytes merged = gather(mail, 0);
  ByteReader r(merged);
  EXPECT_EQ(r.get<std::int64_t>(), 10);
  EXPECT_EQ(r.get<std::int64_t>(), 20);
  EXPECT_EQ(r.get<std::int64_t>(), 30);
  EXPECT_EQ(cluster.trace().round_count(), 1u);
  EXPECT_EQ(cluster.trace().rounds()[0].machines, 3u);
}

TEST(Cluster, MailOrderIsDeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(ClusterConfig{.memory_limit_bytes = UINT64_MAX,
                                  .strict_memory = false,
                                  .workers = 4,
                                  .seed = 5});
    std::vector<Bytes> inputs;
    for (std::int64_t i = 0; i < 50; ++i) inputs.push_back(payload_of(i));
    const auto mail = cluster.run_round("m", inputs, [](MachineContext& ctx) {
      ByteReader r = ctx.reader();
      ByteWriter w;
      w.put(r.get<std::int64_t>());
      ctx.emit(0, std::move(w).take());
    });
    return gather(mail, 0);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Cluster, MachineRngIsDeterministicPerMachine) {
  auto sample = [](std::size_t workers) {
    Cluster cluster(ClusterConfig{.memory_limit_bytes = UINT64_MAX,
                                  .strict_memory = false,
                                  .workers = workers,
                                  .seed = 42});
    std::vector<Bytes> inputs(8);
    std::vector<std::uint32_t> values(8);
    cluster.run_round("rng", inputs, [&](MachineContext& ctx) {
      values[ctx.machine_id()] = ctx.rng().next();
    });
    return values;
  };
  EXPECT_EQ(sample(1), sample(4));  // independent of scheduling
}

TEST(Cluster, MemoryAccountingCountsInputAndOutput) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs{Bytes(100)};
  cluster.run_round("mem", inputs, [](MachineContext& ctx) {
    ctx.emit(0, Bytes(40));
    ctx.charge_scratch(60);
  });
  const RoundReport& r = cluster.trace().rounds()[0];
  EXPECT_EQ(r.max_machine_memory, 200u);
  EXPECT_EQ(r.total_comm_bytes, 40u);
  EXPECT_EQ(r.total_input_bytes, 100u);
}

TEST(Cluster, StrictMemoryThrows) {
  Cluster cluster(ClusterConfig{.memory_limit_bytes = 50,
                                .strict_memory = true,
                                .workers = 1,
                                .seed = 0});
  std::vector<Bytes> inputs{Bytes(100)};
  EXPECT_THROW(cluster.run_round("boom", inputs, [](MachineContext&) {}),
               MemoryLimitExceeded);
}

TEST(Cluster, NonStrictMemoryRecordsViolation) {
  Cluster cluster(ClusterConfig{.memory_limit_bytes = 50,
                                .strict_memory = false,
                                .workers = 1,
                                .seed = 0});
  std::vector<Bytes> inputs{Bytes(100), Bytes(10)};
  cluster.run_round("soft", inputs, [](MachineContext&) {});
  EXPECT_EQ(cluster.trace().rounds()[0].memory_violations, 1u);
}

TEST(Cluster, WorkMetering) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs(3);
  cluster.run_round("work", inputs, [](MachineContext& ctx) {
    ctx.charge_work(10 * (ctx.machine_id() + 1));
  });
  const RoundReport& r = cluster.trace().rounds()[0];
  EXPECT_EQ(r.total_work, 60u);
  EXPECT_EQ(r.max_machine_work, 30u);
}

TEST(Cluster, MultipleMailboxes) {
  Cluster cluster(ClusterConfig{});
  std::vector<Bytes> inputs(4);
  const auto mail = cluster.run_round("route", inputs, [](MachineContext& ctx) {
    ByteWriter w;
    w.put<std::uint64_t>(ctx.machine_id());
    ctx.emit(static_cast<std::uint32_t>(ctx.machine_id() % 2), std::move(w).take());
  });
  EXPECT_EQ(mail.at(0).size(), 2u);
  EXPECT_EQ(mail.at(1).size(), 2u);
  EXPECT_TRUE(gather(mail, 99).empty());
}

TEST(Trace, SequentialAppend) {
  ExecutionTrace a;
  a.add_round(RoundReport{.label = "r1", .machines = 3, .max_machine_memory = 10,
                          .total_comm_bytes = 5, .total_input_bytes = 7,
                          .total_work = 100, .max_machine_work = 50,
                          .wall_seconds = 0, .memory_violations = 0});
  ExecutionTrace b;
  b.add_round(RoundReport{.label = "r2", .machines = 5, .max_machine_memory = 20,
                          .total_comm_bytes = 6, .total_input_bytes = 8,
                          .total_work = 200, .max_machine_work = 60,
                          .wall_seconds = 0, .memory_violations = 1});
  a.append_sequential(b);
  EXPECT_EQ(a.round_count(), 2u);
  EXPECT_EQ(a.max_machines(), 5u);
  EXPECT_EQ(a.total_work(), 300u);
  EXPECT_EQ(a.critical_path_work(), 110u);
  EXPECT_EQ(a.memory_violations(), 1u);
}

TEST(Trace, ParallelMerge) {
  ExecutionTrace a;
  a.add_round(RoundReport{.label = "x", .machines = 3, .max_machine_memory = 10,
                          .total_comm_bytes = 5, .total_input_bytes = 0,
                          .total_work = 100, .max_machine_work = 50,
                          .wall_seconds = 0, .memory_violations = 0});
  ExecutionTrace b;
  b.add_round(RoundReport{.label = "y", .machines = 4, .max_machine_memory = 30,
                          .total_comm_bytes = 2, .total_input_bytes = 0,
                          .total_work = 10, .max_machine_work = 9,
                          .wall_seconds = 0, .memory_violations = 0});
  b.add_round(RoundReport{.label = "y2", .machines = 1, .max_machine_memory = 1,
                          .total_comm_bytes = 1, .total_input_bytes = 0,
                          .total_work = 1, .max_machine_work = 1,
                          .wall_seconds = 0, .memory_violations = 0});
  a.merge_parallel(b);
  ASSERT_EQ(a.round_count(), 2u);  // padded to the longer trace
  EXPECT_EQ(a.rounds()[0].machines, 7u);
  EXPECT_EQ(a.rounds()[0].max_machine_memory, 30u);
  EXPECT_EQ(a.rounds()[0].total_work, 110u);
  EXPECT_EQ(a.rounds()[1].machines, 1u);
}

TEST(Trace, SummaryMentionsRoundsAndViolations) {
  ExecutionTrace tr;
  tr.add_round(RoundReport{.label = "only", .machines = 2, .max_machine_memory = 8,
                           .total_comm_bytes = 3, .total_input_bytes = 4,
                           .total_work = 9, .max_machine_work = 5,
                           .wall_seconds = 0, .memory_violations = 2});
  const std::string s = tr.summary();
  EXPECT_NE(s.find("rounds=1"), std::string::npos);
  EXPECT_NE(s.find("MEMORY_VIOLATIONS=2"), std::string::npos);
}

TEST(Trace, CsvExport) {
  ExecutionTrace tr;
  tr.add_round(RoundReport{.label = "phase1", .machines = 2, .max_machine_memory = 8,
                           .total_comm_bytes = 3, .total_input_bytes = 4,
                           .total_work = 9, .max_machine_work = 5,
                           .wall_seconds = 0, .memory_violations = 0});
  const std::string csv = tr.to_csv();
  EXPECT_NE(csv.find("round,label,machines"), std::string::npos);
  EXPECT_NE(csv.find("1,phase1,2,8,3,4,9,5,"), std::string::npos);
  // header + one row
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Cluster, ZeroMachinesRound) {
  Cluster cluster(ClusterConfig{});
  const auto mail = cluster.run_round("empty", {}, [](MachineContext&) {});
  EXPECT_TRUE(mail.empty());
  EXPECT_EQ(cluster.trace().rounds()[0].machines, 0u);
}

}  // namespace
}  // namespace mpcsd::mpc
