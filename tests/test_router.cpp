// Query router: policy resolution, prefilter lower bounds (proven, never
// above the exact distance), cost-model budget shape, and routing
// decisions including censored probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>

#include "core/router.hpp"
#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"
#include "seq/types.hpp"

namespace mpcsd::core {
namespace {

TEST(RouterPolicyNames, ParseAndPrintRoundTrip) {
  EXPECT_EQ(router_policy_from_string("off"), RouterPolicy::kOff);
  EXPECT_EQ(router_policy_from_string("auto"), RouterPolicy::kAuto);
  EXPECT_EQ(router_policy_from_string("always-seq"), RouterPolicy::kAlwaysSeq);
  EXPECT_EQ(router_policy_from_string("on"), std::nullopt);
  EXPECT_EQ(router_policy_from_string(""), std::nullopt);
  EXPECT_EQ(router_policy_from_string("default"), std::nullopt);
  for (const RouterPolicy p :
       {RouterPolicy::kOff, RouterPolicy::kAuto, RouterPolicy::kAlwaysSeq}) {
    EXPECT_EQ(router_policy_from_string(router_policy_name(p)), p);
  }
  EXPECT_STREQ(router_policy_name(RouterPolicy::kDefault), "default");
}

TEST(RouterPolicyResolution, ExplicitRequestWinsOverEnv) {
  for (const RouterPolicy p :
       {RouterPolicy::kOff, RouterPolicy::kAuto, RouterPolicy::kAlwaysSeq}) {
    const auto r = resolve_router_policy(p, "always-seq");
    EXPECT_EQ(r.policy, p);
    EXPECT_TRUE(r.recognised);
  }
}

TEST(RouterPolicyResolution, DefaultResolvesEnv) {
  EXPECT_EQ(resolve_router_policy(RouterPolicy::kDefault, nullptr).policy,
            RouterPolicy::kOff);
  EXPECT_EQ(resolve_router_policy(RouterPolicy::kDefault, "auto").policy,
            RouterPolicy::kAuto);
  EXPECT_EQ(resolve_router_policy(RouterPolicy::kDefault, "always-seq").policy,
            RouterPolicy::kAlwaysSeq);
  EXPECT_EQ(resolve_router_policy(RouterPolicy::kDefault, "off").policy,
            RouterPolicy::kOff);
  const auto bad = resolve_router_policy(RouterPolicy::kDefault, "maybe");
  EXPECT_EQ(bad.policy, RouterPolicy::kOff);
  EXPECT_FALSE(bad.recognised);
}

TEST(Prefilter, EqualAndTrim) {
  const auto s = core::random_string(300, 8, 1);
  const auto eq = prefilter_query(s, s);
  EXPECT_TRUE(eq.equal);
  EXPECT_EQ(eq.core_n_bar, 0);
  EXPECT_EQ(eq.lower_bound, 0);

  auto t = s;
  t[150] = t[150] + 1;  // one substitution in the middle
  const auto pf = prefilter_query(s, t);
  EXPECT_FALSE(pf.equal);
  EXPECT_EQ(pf.prefix, 150);
  EXPECT_EQ(pf.suffix, 149);
  EXPECT_EQ(pf.core_n, 1);
  EXPECT_EQ(pf.core_n_bar, 1);
  EXPECT_GE(pf.lower_bound, 1);
}

TEST(Prefilter, LengthGapAndHistogramBounds) {
  // Pure-insertion pair: lower bound must reach the length gap.
  const auto s = core::random_string(64, 4, 3);
  const auto t = core::random_string(64 + 40, 4, 9);
  EXPECT_GE(prefilter_query(s, t).lower_bound, 40);

  // Same lengths, disjoint symbol counts: the histogram bound fires where
  // the gap bound is zero.  [1 x 8] vs [2 x 8]: every count moves by 8.
  const SymString ones(8, Symbol{1});
  const SymString twos(8, Symbol{2});
  const auto pf = prefilter_query(ones, twos);
  EXPECT_EQ(pf.lower_bound, 8);  // = ceil((8 + 8) / 2), and exact here
}

TEST(Prefilter, LowerBoundNeverExceedsExactDistance) {
  // The property that makes rung-skipping sound.
  for (std::uint64_t c = 0; c < 2000; ++c) {
    const auto sigma = static_cast<Symbol>(2 + (c * 37) % 2000);
    const auto na = static_cast<std::int64_t>((c * 131) % 100);
    const auto nb = static_cast<std::int64_t>((c * 61 + 31) % 100);
    const auto a = core::random_string(na, sigma, c);
    const auto b = c % 3 == 0
                       ? core::plant_edits(a, nb / 8 + 1, c + 1, false, sigma).text
                       : core::random_string(nb, sigma, c + 999);
    const auto pf = prefilter_query(a, b);
    const auto exact = seq::edit_distance(a, b);
    ASSERT_LE(pf.lower_bound, exact) << "case=" << c;
    if (exact == 0) {
      ASSERT_TRUE(pf.equal) << "case=" << c;
    }
    if (pf.equal) {
      ASSERT_EQ(exact, 0) << "case=" << c;
    }
  }
}

TEST(RouterBudgetModel, ShapeAndMonotonicity) {
  const auto base = router_budget(2000, 2000, 32, 4);
  EXPECT_GT(base.plan_ns, 0.0);
  EXPECT_GE(base.k_cap, 0);
  EXPECT_LE(base.k_cap, 2000);

  // A busier batch amortises the shared pass cost over more queries, and
  // more workers make the plan cheaper per query: both shrink (or hold)
  // the sequential budget, never grow it.
  EXPECT_LE(router_budget(2000, 2000, 64, 4).k_cap, base.k_cap + 1);
  EXPECT_LE(router_budget(2000, 2000, 32, 16).k_cap, base.k_cap);

  // Small queries: one plan rung costs far more than solving outright, so
  // the budget covers the whole string.
  EXPECT_EQ(router_budget(2000, 2000, 1, 1).k_cap, 2000);
  // Huge queries: the budget is a narrow band, not the whole string.
  EXPECT_LT(router_budget(1000000, 1000000, 32, 8).k_cap, 10000);
}

TEST(RouteQuery, OffIsInert) {
  const auto s = core::random_string(100, 4, 1);
  const auto t = core::random_string(100, 4, 2);
  for (const RouterPolicy p : {RouterPolicy::kOff, RouterPolicy::kDefault}) {
    const auto d = route_query(s, t, p, 8, 4);
    EXPECT_FALSE(d.retire);
    EXPECT_FALSE(d.probed);
    EXPECT_EQ(d.lower_bound, 0);
  }
}

TEST(RouteQuery, DegeneratePairsRetireFree) {
  const auto s = core::random_string(500, 4, 7);
  const auto eq = route_query(s, s, RouterPolicy::kAuto, 8, 4);
  EXPECT_TRUE(eq.retire);
  EXPECT_EQ(eq.distance, 0);

  // t = s + tail: the prefix trim empties one core, distance = |tail|.
  auto t = s;
  const auto tail = core::random_string(37, 4, 8);
  t.insert(t.end(), tail.begin(), tail.end());
  const auto ext = route_query(s, t, RouterPolicy::kAuto, 8, 4);
  EXPECT_TRUE(ext.retire);
  EXPECT_EQ(ext.distance, 37);
  EXPECT_FALSE(ext.probed);  // no DP needed
}

TEST(RouteQuery, AlwaysSeqIsExact) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto s = core::random_string(200, 6, seed);
    const auto t = core::plant_edits(s, static_cast<std::int64_t>(seed), seed + 1,
                                     false, 6)
                       .text;
    const auto d = route_query(s, t, RouterPolicy::kAlwaysSeq, 8, 4);
    EXPECT_TRUE(d.retire);
    EXPECT_EQ(d.distance, seq::edit_distance(s, t)) << "seed=" << seed;
  }
}

TEST(RouteQuery, AutoRetiresNearDuplicatesExactly) {
  const auto s = core::random_string(2000, 4, 11);
  const auto t = core::plant_edits(s, 5, 12, false, 4).text;
  const auto d = route_query(s, t, RouterPolicy::kAuto, 32, 4);
  EXPECT_TRUE(d.retire);
  EXPECT_EQ(d.distance, seq::edit_distance(s, t));
}

TEST(RouteQuery, AutoCensoredProbeProvesLowerBound) {
  // Far pair, long enough that the cost model caps the probe well below
  // the true distance: the censored probe must convert into ed > k_cap.
  const auto s = core::random_string(200000, 2, 21);
  const auto t = core::random_string(200000, 2, 22);
  const auto d = route_query(s, t, RouterPolicy::kAuto, 32, 8);
  if (!d.retire) {
    EXPECT_GT(d.k_cap, 0);
    // Either the probe censored (lb = cap + 1) or the prefilters already
    // proved a bound past the cap; both hand the ladder a real floor.
    EXPECT_GT(d.lower_bound, d.k_cap);
    if (d.probed) {
      EXPECT_EQ(d.lower_bound, d.k_cap + 1);
    }
  } else {
    // Machine fast enough that the model solved it outright — still exact.
    EXPECT_EQ(d.distance, seq::edit_distance_fast(s, t));
  }
}

TEST(RouteQuery, AutoSkipsProbeWhenPrefilterAlreadyExceedsCap) {
  // Huge length gap with unequal cores: lb = gap > k_cap, so no DP runs.
  auto s = core::random_string(1000, 1000, 31);
  auto t = core::random_string(200000, 1000, 32);
  s.front() = Symbol{-1};  // block prefix trim
  t.front() = Symbol{-2};
  s.back() = Symbol{-3};  // block suffix trim
  t.back() = Symbol{-4};
  const auto d = route_query(s, t, RouterPolicy::kAuto, 4, 4);
  ASSERT_FALSE(d.retire);
  EXPECT_FALSE(d.probed);
  EXPECT_GE(d.lower_bound, 199000);
  EXPECT_GT(d.lower_bound, d.k_cap);
}

TEST(RouteQuery, AutoDecisionsAreSoundOnRandomCases) {
  // retire => exact; !retire => the lower bound never exceeds the truth.
  for (std::uint64_t c = 0; c < 400; ++c) {
    const auto sigma = static_cast<Symbol>(2 + (c * 13) % 500);
    const auto n = static_cast<std::int64_t>(20 + (c * 97) % 300);
    const auto s = core::random_string(n, sigma, c);
    const auto t = c % 2 == 0
                       ? core::plant_edits(s, static_cast<std::int64_t>(c % 40),
                                           c + 3, false, sigma)
                             .text
                       : core::random_string(n + 5, sigma, c + 777);
    const auto d = route_query(s, t, RouterPolicy::kAuto,
                               1 + c % 64, 1 + c % 8);
    const auto exact = seq::edit_distance(s, t);
    if (d.retire) {
      ASSERT_EQ(d.distance, exact) << "case=" << c;
    } else {
      ASSERT_LE(d.lower_bound, exact) << "case=" << c;
    }
  }
}

}  // namespace
}  // namespace mpcsd::core
