// The declarative round-plan layer: wire codecs, typed channels, stage
// order validation, per-stage metering, and RoundOptions (per-machine caps
// + report export) used by the batch driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "mpc/plan.hpp"

namespace mpcsd::mpc {
namespace {

template <typename T>
Bytes encode(const T& value) {
  ByteWriter w;
  Codec<T>::encode(w, value);
  return std::move(w).take();
}

template <typename T>
T roundtrip(const T& value) {
  const Bytes bytes = encode(value);
  ByteReader r(bytes);
  return Codec<T>::decode(r);
}

// ---- codecs ----

TEST(PlanCodec, PodMatchesByteWriterPut) {
  const std::int64_t v = -1234567890123LL;
  ByteWriter w;
  w.put(v);
  EXPECT_EQ(encode(v), std::move(w).take());
  EXPECT_EQ(roundtrip(v), v);
}

TEST(PlanCodec, PodVectorMatchesPutVector) {
  const std::vector<std::int64_t> v{1, -2, 3, 1LL << 40};
  ByteWriter w;
  w.put_vector(v);
  EXPECT_EQ(encode(v), std::move(w).take());
  EXPECT_EQ(roundtrip(v), v);
}

TEST(PlanCodec, StringRoundtrip) {
  const std::string s = "plan layer";
  EXPECT_EQ(roundtrip(s), s);
}

struct WirePoint {
  std::int32_t id = 0;
  std::vector<std::int64_t> coords;

  static constexpr auto fields() {
    return std::make_tuple(&WirePoint::id, &WirePoint::coords);
  }
  friend bool operator==(const WirePoint&, const WirePoint&) = default;
};

TEST(PlanCodec, WireStructEncodesFieldsInOrder) {
  const WirePoint p{7, {10, 20, 30}};
  // Field order on the wire: id then coords, exactly as a hand-rolled
  // put + put_vector sequence.
  ByteWriter w;
  w.put(p.id);
  w.put_vector(p.coords);
  EXPECT_EQ(encode(p), std::move(w).take());
  EXPECT_EQ(roundtrip(p), p);
}

TEST(PlanCodec, NestedStructVector) {
  const std::vector<WirePoint> v{{1, {2}}, {3, {}}, {4, {5, 6}}};
  EXPECT_EQ(roundtrip(v), v);
  // Composite vectors carry a u64 count prefix.
  const Bytes bytes = encode(v);
  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::uint64_t>(), 3u);
}

TEST(PlanCodec, VariantTagIsAlternativeIndex) {
  using V = std::variant<std::int64_t, WirePoint>;
  const V a = std::int64_t{42};
  const V b = WirePoint{9, {1}};
  {
    const Bytes bytes = encode(a);
    ByteReader r(bytes);
    EXPECT_EQ(r.get<std::uint8_t>(), 0);
  }
  {
    const Bytes bytes = encode(b);
    ByteReader r(bytes);
    EXPECT_EQ(r.get<std::uint8_t>(), 1);
  }
  EXPECT_EQ(roundtrip(a), a);
  EXPECT_EQ(roundtrip(b), b);
}

TEST(PlanCodec, InboxDecodesWholeMailbox) {
  ByteWriter w;
  Codec<std::int64_t>::encode(w, 1);
  Codec<std::int64_t>::encode(w, 2);
  Codec<std::int64_t>::encode(w, 3);
  const Bytes bytes = std::move(w).take();
  ByteReader r(bytes);
  const auto inbox = Codec<Inbox<std::int64_t>>::decode(r);
  EXPECT_EQ(inbox.messages, (std::vector<std::int64_t>{1, 2, 3}));
}

// ---- driver ----

struct Ping {
  std::int64_t value = 0;

  static constexpr auto fields() { return std::make_tuple(&Ping::value); }
};

Plan two_stage_plan() {
  return Plan{"test",
              {
                  {"stage:a", "Ping", "ints"},
                  {"stage:b", "Inbox<int>", "-"},
              }};
}

constexpr Channel<std::int64_t> kInts{0, "ints"};

TEST(PlanDriver, RunsDeclaredStagesAndMetersGlue) {
  Driver driver(two_stage_plan(), ClusterConfig{});
  const Stage<Ping> a{"stage:a", [](StageContext<Ping>& ctx) {
                        ctx.send(kInts, ctx.in().value * 2);
                      }};
  const auto mail =
      driver.run(a, Driver::shard<Ping>({Ping{10}, Ping{20}, Ping{30}}));
  EXPECT_EQ(driver.receive(mail, kInts), (std::vector<std::int64_t>{20, 40, 60}));

  // The inbox contents come back through the stash channel rather than a
  // captured host variable, so the test holds under every backend (forked
  // workers cannot write host memory).
  const Stage<Inbox<std::int64_t>> b{
      "stage:b", [](StageContext<Inbox<std::int64_t>>& ctx) {
        ctx.stash(ctx.in().messages);
      }};
  std::vector<Bytes> stash;
  RoundOptions b_options;
  b_options.machine_stash = &stash;
  driver.run_views(b, {gather_view(mail, kInts.mailbox)}, b_options);
  driver.finish();

  ASSERT_EQ(stash.size(), 1u);
  EXPECT_EQ(unstash<std::vector<std::int64_t>>(stash[0]),
            (std::vector<std::int64_t>{20, 40, 60}));
  ASSERT_EQ(driver.trace().round_count(), 2u);
  EXPECT_EQ(driver.trace().rounds()[0].label, "stage:a");
  EXPECT_EQ(driver.trace().rounds()[1].label, "stage:b");
  // Driver glue time (sharding/routing between rounds) is stamped.
  EXPECT_GE(driver.trace().rounds()[0].driver_seconds, 0.0);
}

TEST(PlanDriver, RejectsWrongStageLabel) {
  Driver driver(two_stage_plan(), ClusterConfig{});
  const Stage<Ping> wrong{"stage:b", [](StageContext<Ping>&) {}};
  EXPECT_THROW(driver.run(wrong, Driver::shard<Ping>({Ping{1}})), PlanError);
}

TEST(PlanDriver, RejectsStagePastEndOfPlan) {
  Driver driver(Plan{"one", {{"only", "-", "-"}}}, ClusterConfig{});
  const Stage<Ping> only{"only", [](StageContext<Ping>&) {}};
  driver.run(only, Driver::shard<Ping>({Ping{1}}));
  EXPECT_THROW(driver.run(only, Driver::shard<Ping>({Ping{1}})), PlanError);
}

TEST(PlanDriver, FinishRequiresAllStages) {
  Driver driver(two_stage_plan(), ClusterConfig{});
  EXPECT_THROW(driver.finish(), PlanError);
}

TEST(PlanDriver, DescribeListsStages) {
  const std::string d = two_stage_plan().describe();
  EXPECT_NE(d.find("stage:a"), std::string::npos);
  EXPECT_NE(d.find("stage:b"), std::string::npos);
}

// ---- RoundOptions: per-machine caps + report export ----

TEST(RoundOptions, PerMachineLimitsOverrideClusterCap) {
  ClusterConfig config;
  config.memory_limit_bytes = UINT64_MAX;  // cluster-wide: unlimited
  Cluster cluster(config);

  std::vector<Bytes> inputs(2);
  {
    ByteWriter w0;
    w0.put<std::int64_t>(1);
    inputs[0] = std::move(w0).take();
    ByteWriter w1;
    w1.put<std::int64_t>(2);
    inputs[1] = std::move(w1).take();
  }
  // Machine 0 gets a cap its scratch will blow; machine 1 gets headroom.
  const std::vector<std::uint64_t> limits{16, 1 << 20};
  std::vector<MachineReport> reports;
  RoundOptions options;
  options.machine_memory_limits = &limits;
  options.machine_reports = &reports;
  cluster.run_round(
      "capped", inputs,
      [](MachineContext& ctx) { ctx.charge_scratch(1024); }, options);

  ASSERT_EQ(cluster.trace().round_count(), 1u);
  EXPECT_EQ(cluster.trace().rounds()[0].memory_violations, 1u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].scratch_bytes, 1024u);
  EXPECT_EQ(reports[0].input_bytes, 8u);
  EXPECT_EQ(reports[1].scratch_bytes, 1024u);
}

TEST(RoundOptions, StrictModeThrowsOnPerMachineCap) {
  ClusterConfig config;
  config.strict_memory = true;
  Cluster cluster(config);
  const std::vector<std::uint64_t> limits{4};
  RoundOptions options;
  options.machine_memory_limits = &limits;
  EXPECT_THROW(cluster.run_round(
                   "strict", std::vector<Bytes>(1),
                   [](MachineContext& ctx) { ctx.charge_scratch(64); }, options),
               MemoryLimitExceeded);
}

TEST(RoundOptions, MismatchedLimitCountIsAnError) {
  Cluster cluster(ClusterConfig{});
  const std::vector<std::uint64_t> limits{1, 2, 3};
  RoundOptions options;
  options.machine_memory_limits = &limits;
  EXPECT_THROW(cluster.run_round("mismatch", std::vector<Bytes>(2),
                                 [](MachineContext&) {}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpcsd::mpc
