// The pluggable execution-backend layer: kind parsing / resolution policy,
// thread/process/socket byte equivalence on raw cluster rounds, the
// unmetered stash side channel, and worker-failure propagation from forked
// bodies (via shared-memory arenas and TCP frames alike).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/thread_pool.hpp"
#include "mpc/backend.hpp"
#include "mpc/cluster.hpp"
#include "mpc/plan.hpp"

namespace mpcsd::mpc {
namespace {

Bytes payload_of(std::uint64_t v) {
  ByteWriter w;
  w.put(v);
  return std::move(w).take();
}

TEST(Backend, KindParsingRoundTrips) {
  for (const auto kind : {BackendKind::kAuto, BackendKind::kThread,
                          BackendKind::kProcess, BackendKind::kSocket}) {
    const auto parsed = backend_from_string(backend_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(backend_from_string("fork").has_value());
  EXPECT_FALSE(backend_from_string("tcp").has_value());
  EXPECT_FALSE(backend_from_string("Thread").has_value());
  EXPECT_FALSE(backend_from_string("").has_value());
}

TEST(Backend, ResolutionPolicy) {
  // An explicit request wins outright; the environment is not consulted.
  for (const char* env : {static_cast<const char*>(nullptr), "process",
                          "thread", "socket", "bogus"}) {
    EXPECT_EQ(resolve_backend(BackendKind::kThread, env).kind,
              BackendKind::kThread);
    EXPECT_EQ(resolve_backend(BackendKind::kProcess, env).kind,
              BackendKind::kProcess);
    EXPECT_EQ(resolve_backend(BackendKind::kSocket, env).kind,
              BackendKind::kSocket);
    EXPECT_TRUE(resolve_backend(BackendKind::kProcess, env).recognised);
    EXPECT_TRUE(resolve_backend(BackendKind::kSocket, env).recognised);
  }
  // kAuto resolves through the environment, defaulting to thread.
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, nullptr).kind,
            BackendKind::kThread);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, "process").kind,
            BackendKind::kProcess);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, "socket").kind,
            BackendKind::kSocket);
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, "thread").kind,
            BackendKind::kThread);
  // An unrecognised env value falls back to thread and is flagged so the
  // caller can warn instead of silently ignoring it.
  const BackendResolution bogus = resolve_backend(BackendKind::kAuto, "forky");
  EXPECT_EQ(bogus.kind, BackendKind::kThread);
  EXPECT_FALSE(bogus.recognised);
  // "auto" in the environment is itself not a resolution; it means default.
  EXPECT_EQ(resolve_backend(BackendKind::kAuto, "auto").kind,
            BackendKind::kThread);
}

TEST(Backend, MakeBackendReportsIsolation) {
  auto pool = std::make_shared<ThreadPool>(2);
  const auto thread_backend =
      make_backend(BackendKind::kThread, pool, nullptr);
  EXPECT_STREQ(thread_backend->name(), "thread");
  EXPECT_FALSE(thread_backend->isolates_machine_memory());
  const auto process_backend =
      make_backend(BackendKind::kProcess, pool, nullptr);
  EXPECT_STREQ(process_backend->name(), "process");
  EXPECT_TRUE(process_backend->isolates_machine_memory());
  const auto socket_backend = make_backend(BackendKind::kSocket, pool, nullptr);
  EXPECT_STREQ(socket_backend->name(), "socket");
  EXPECT_TRUE(socket_backend->isolates_machine_memory());
}

TEST(Backend, BackendsExposeTheirTransport) {
  // Every backend owns a metered transport; the names pin the wire each
  // one uses (see docs/BACKENDS.md).
  auto pool = std::make_shared<ThreadPool>(2);
  EXPECT_STREQ(
      make_backend(BackendKind::kThread, pool, nullptr)->transport().name(),
      "inproc");
  EXPECT_STREQ(
      make_backend(BackendKind::kProcess, pool, nullptr)->transport().name(),
      "shm");
  EXPECT_STREQ(
      make_backend(BackendKind::kSocket, pool, nullptr)->transport().name(),
      "tcp");
}

TEST(Backend, ProcessRoundByteIdenticalToThreadRound) {
  // Same round plan on both backends: routed mail (order, destinations,
  // payload bytes), stash bytes, and the metered trace hash must match.
  auto run = [](BackendKind backend, std::size_t workers) {
    ClusterConfig cfg;
    cfg.workers = workers;
    cfg.backend = backend;
    Cluster cluster(cfg);
    std::vector<Bytes> inputs;
    for (std::uint64_t i = 0; i < 64; ++i) inputs.push_back(payload_of(i));
    std::vector<Bytes> stash;
    RoundOptions options;
    options.machine_stash = &stash;
    const Mail mail = cluster.run_round(
        "scatter", inputs,
        [](MachineContext& ctx) {
          auto r = ctx.reader();
          const auto v = r.get<std::uint64_t>();
          ctx.charge_work(static_cast<std::uint64_t>(v % 7));
          for (std::uint64_t k = 0; k < 3; ++k) {
            ByteWriter w;
            w.put(v * 100 + k);
            ctx.emit(static_cast<std::uint32_t>((v + k) % 16),
                     std::move(w).take());
          }
          ByteWriter s;
          s.put(v * 31);
          ctx.stash_append(std::move(s).take());
        },
        options);
    Bytes flat;
    for (const Envelope& e : mail.all()) {
      ByteWriter w;
      w.put(e.dest);
      flat.insert(flat.end(), e.payload.begin(), e.payload.end());
      const Bytes head = std::move(w).take();
      flat.insert(flat.end(), head.begin(), head.end());
    }
    return std::make_tuple(std::move(flat), std::move(stash),
                           cluster.trace().structural_hash());
  };
  const auto base = run(BackendKind::kThread, 1);
  for (const auto backend : {BackendKind::kThread, BackendKind::kProcess,
                             BackendKind::kSocket}) {
    for (const std::size_t workers : {1ul, 3ul, 8ul}) {
      const auto got = run(backend, workers);
      EXPECT_EQ(std::get<0>(got), std::get<0>(base))
          << backend_kind_name(backend) << " x " << workers;
      EXPECT_EQ(std::get<1>(got), std::get<1>(base))
          << backend_kind_name(backend) << " x " << workers;
      EXPECT_EQ(std::get<2>(got), std::get<2>(base))
          << backend_kind_name(backend) << " x " << workers;
    }
  }
}

TEST(Backend, StashRoundTripThroughPlanDriver) {
  for (const auto backend : {BackendKind::kThread, BackendKind::kProcess,
                             BackendKind::kSocket}) {
    ClusterConfig cfg;
    cfg.workers = 2;
    cfg.backend = backend;
    Driver driver(Plan{"stash-demo", {{"stage:stash", "-", "-"}}}, cfg);
    const Stage<std::uint64_t> stage{
        "stage:stash", [](StageContext<std::uint64_t>& ctx) {
          ctx.stash(ctx.in() * 3 + 1);
          ctx.stash(std::string("m") + std::to_string(ctx.machine_id()));
        }};
    std::vector<Bytes> stash;
    RoundOptions options;
    options.machine_stash = &stash;
    driver.run(stage, Driver::shard<std::uint64_t>({10, 20}), options);
    driver.finish();
    ASSERT_EQ(stash.size(), 2u) << backend_kind_name(backend);
    for (std::size_t m = 0; m < 2; ++m) {
      ByteReader r(stash[m]);
      EXPECT_EQ(Codec<std::uint64_t>::decode(r), (m + 1) * 10 * 3 + 1);
      EXPECT_EQ(Codec<std::string>::decode(r), "m" + std::to_string(m));
    }
  }
}

TEST(Backend, IsolatingBackendsPropagateBodyFailure) {
  // A body exception inside a forked worker must surface host-side with
  // the same message whether the record travelled through a shared-memory
  // arena (process) or a TCP frame (socket).
  for (const auto backend : {BackendKind::kProcess, BackendKind::kSocket}) {
    ClusterConfig cfg;
    cfg.workers = 2;
    cfg.backend = backend;
    Cluster cluster(cfg);
    std::vector<Bytes> inputs;
    for (std::uint64_t i = 0; i < 8; ++i) inputs.push_back(payload_of(i));
    try {
      cluster.run_round("doomed", inputs, [](MachineContext& ctx) {
        auto r = ctx.reader();
        if (r.get<std::uint64_t>() == 5) {
          throw std::runtime_error("machine 5 exploded");
        }
      });
      FAIL() << "expected the worker failure to propagate on "
             << backend_kind_name(backend);
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("machine body failed in worker process"),
                std::string::npos)
          << backend_kind_name(backend) << ": " << what;
      EXPECT_NE(what.find("machine 5 exploded"), std::string::npos)
          << backend_kind_name(backend) << ": " << what;
    }
  }
}

TEST(Backend, IsolatedWritesToCapturedHostStateAreInvisible) {
  // The documented isolation property: a body that scribbles on captured
  // host memory has no effect on the host (on the thread backend this same
  // body would be a model violation the auditor has to catch with
  // canaries; fork isolation makes it physically inert).
  for (const auto backend : {BackendKind::kProcess, BackendKind::kSocket}) {
    ClusterConfig cfg;
    cfg.workers = 2;
    cfg.backend = backend;
    Cluster cluster(cfg);
    std::vector<Bytes> inputs{payload_of(1), payload_of(2)};
    std::uint64_t host_state = 42;
    cluster.run_round("scribble", inputs, [&host_state](MachineContext& ctx) {
      (void)ctx;
      host_state = 999;  // lands in the child's COW copy only
    });
    EXPECT_EQ(host_state, 42u) << backend_kind_name(backend);
  }
}

}  // namespace
}  // namespace mpcsd::mpc
