// Table 1 exponents and the log-log slope fitter used by the benches.
#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"

namespace mpcsd::core {
namespace {

TEST(Theory, Table1RowsMatchPaper) {
  const auto rows = table1_rows(0.25);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].rounds, 2);
  EXPECT_DOUBLE_EQ(rows[0].machines_exponent, 0.25);
  EXPECT_DOUBLE_EQ(rows[0].work_exponent, 1.0);
  EXPECT_EQ(rows[1].rounds, 4);
  EXPECT_DOUBLE_EQ(rows[1].machines_exponent, 0.45);
  EXPECT_EQ(rows[2].rounds, 2);
  EXPECT_DOUBLE_EQ(rows[2].machines_exponent, 0.5);
}

TEST(Theory, EditWorkExponentBreakpoint) {
  // min((1-x)/6, 2x/5): the crossover is at x = 5/17.
  const double x_star = 5.0 / 17.0;
  EXPECT_NEAR(edit_work_exponent(x_star), 2.0 - (1.0 - x_star) / 6.0, 1e-12);
  EXPECT_NEAR(edit_work_exponent(x_star), 2.0 - 2.0 * x_star / 5.0, 1e-12);
  // Below the crossover 2x/5 binds.
  EXPECT_DOUBLE_EQ(edit_work_exponent(0.1), 2.0 - 0.04);
  // Above it (1-x)/6 binds.
  EXPECT_DOUBLE_EQ(edit_work_exponent(0.5), 2.0 - 0.5 / 6.0);
}

TEST(Theory, HeadlineNumbers) {
  // "using Õ(n^{5/17}) machines, total time O(n^{1.883}) and parallel time
  // O(n^{1.353})" (Section 1).
  const double x = 5.0 / 17.0;
  EXPECT_NEAR(edit_work_exponent(x), 1.883, 0.001);
  EXPECT_NEAR(edit_parallel_exponent(x), 1.353, 0.001);
}

TEST(Theory, MachineImprovementFactor) {
  // Ours vs [20]: n^{2x} / n^{(9/5)x} = n^{x/5}.
  const double x = 0.25;
  EXPECT_NEAR(hss_machines_exponent(x) - edit_machines_exponent(x), x / 5.0, 1e-12);
}

TEST(Theory, FitExponentRecoversSlope) {
  std::vector<double> n;
  std::vector<double> y;
  for (double v = 1000; v <= 64000; v *= 2) {
    n.push_back(v);
    y.push_back(3.7 * std::pow(v, 1.25));
  }
  EXPECT_NEAR(fit_exponent(n, y), 1.25, 1e-9);
}

TEST(Theory, FitExponentConstantSeries) {
  std::vector<double> n{100, 200, 400, 800};
  std::vector<double> y{5, 5, 5, 5};
  EXPECT_NEAR(fit_exponent(n, y), 0.0, 1e-9);
}

}  // namespace
}  // namespace mpcsd::core
