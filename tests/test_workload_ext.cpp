// Extended workload generators: rotations, Zipf text, burst edits.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/lis.hpp"

namespace mpcsd::core {
namespace {

TEST(RotateBy, BasicAndWrap) {
  const SymString base{0, 1, 2, 3, 4};
  EXPECT_EQ(rotate_by(base, 2), (SymString{2, 3, 4, 0, 1}));
  EXPECT_EQ(rotate_by(base, 0), base);
  EXPECT_EQ(rotate_by(base, 5), base);
  EXPECT_EQ(rotate_by(base, -1), (SymString{4, 0, 1, 2, 3}));
  EXPECT_TRUE(rotate_by(SymString{}, 3).empty());
}

TEST(RotateBy, DistanceBoundedByTwiceShift) {
  const auto base = random_permutation(500, 1);
  const auto rotated = rotate_by(base, 40);
  EXPECT_LE(seq::edit_distance(base, rotated), 80);
  EXPECT_GT(seq::edit_distance(base, rotated), 0);
}

TEST(ZipfText, SkewConcentratesMass) {
  const auto text = zipf_text(20000, 100, 1.2, 3);
  std::map<Symbol, int> freq;
  for (const Symbol v : text) ++freq[v];
  // Rank-0 symbol should dominate any deep-tail symbol by a wide margin.
  EXPECT_GT(freq[0], 20 * std::max(freq[90], 1));
  for (const Symbol v : text) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
  }
}

TEST(ZipfText, ZeroSkewIsRoughlyUniform) {
  const auto text = zipf_text(50000, 10, 0.0, 4);
  std::map<Symbol, int> freq;
  for (const Symbol v : text) ++freq[v];
  for (const auto& [sym, count] : freq) {
    EXPECT_NEAR(count, 5000, 600) << "symbol " << sym;
  }
}

TEST(ZipfText, Deterministic) {
  EXPECT_EQ(zipf_text(1000, 50, 1.0, 9), zipf_text(1000, 50, 1.0, 9));
  EXPECT_NE(zipf_text(1000, 50, 1.0, 9), zipf_text(1000, 50, 1.0, 10));
}

TEST(BurstEdits, BoundsDistanceAndCountsOps) {
  const auto base = random_string(800, 4, 5);
  const auto burst = burst_edits(base, 4, 10, 6, false);
  EXPECT_EQ(burst.edits_applied, 40);
  EXPECT_LE(seq::edit_distance(base, burst.text), 40);
}

TEST(BurstEdits, RepeatFreePreserved) {
  const auto base = random_permutation(600, 7);
  const auto burst = burst_edits(base, 5, 8, 8, true);
  EXPECT_TRUE(seq::is_repeat_free(burst.text));
}

TEST(BurstEdits, EditsAreLocalised) {
  // With 1 burst, the changed region should be a narrow window: the prefix
  // and suffix outside it must match the base exactly.
  const auto base = random_string(2000, 1000, 11);
  const auto burst = burst_edits(base, 1, 12, 12, false, 1000);
  // Longest common prefix + suffix should cover all but O(burst) symbols.
  std::size_t prefix = 0;
  while (prefix < base.size() && prefix < burst.text.size() &&
         base[prefix] == burst.text[prefix]) {
    ++prefix;
  }
  std::size_t suffix = 0;
  while (suffix + prefix < base.size() && suffix + prefix < burst.text.size() &&
         base[base.size() - 1 - suffix] == burst.text[burst.text.size() - 1 - suffix]) {
    ++suffix;
  }
  const auto uncovered = static_cast<std::int64_t>(base.size() - prefix - suffix);
  EXPECT_LE(uncovered, 3 * 12 + 4);
}

TEST(BurstEdits, ZeroBurstsIdentity) {
  const auto base = random_string(100, 4, 13);
  const auto burst = burst_edits(base, 0, 50, 14, false);
  EXPECT_EQ(burst.text, base);
  EXPECT_EQ(burst.edits_applied, 0);
}

TEST(NearDuplicatePairs, MixMatchesFractionAndPlantBounds) {
  const auto pairs = near_duplicate_pairs(400, 64, 0.75, 120, 17);
  ASSERT_EQ(pairs.size(), 64u);
  std::size_t near = 0;
  for (const auto& p : pairs) {
    ASSERT_EQ(p.s.size(), 400u);
    const auto exact = seq::edit_distance(p.s, p.t);
    EXPECT_LE(exact, p.planted);
    if (p.planted <= 8) ++near;
  }
  // 75% of 64 = 48 near pairs, up to rounding of the accumulator.
  EXPECT_GE(near, 47u);
  EXPECT_LE(near, 49u);
  // The near mass cycles {0, 1, 2, 8}: exact duplicates must appear.
  EXPECT_TRUE(std::any_of(pairs.begin(), pairs.end(),
                          [](const QueryPair& p) { return p.s == p.t; }));
}

TEST(NearDuplicatePairs, DeterministicAndPerPairIndependent) {
  const auto a = near_duplicate_pairs(200, 16, 0.5, 60, 23);
  const auto b = near_duplicate_pairs(200, 16, 0.5, 60, 23);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s) << i;
    EXPECT_EQ(a[i].t, b[i].t) << i;
  }
  // Per-pair seed derivation: a longer run reproduces the shorter prefix.
  const auto longer = near_duplicate_pairs(200, 32, 0.5, 60, 23);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(longer[i].s, a[i].s) << i;
    EXPECT_EQ(longer[i].t, a[i].t) << i;
  }
}

TEST(NearDuplicatePairs, ExtremeFractions) {
  const auto all_near = near_duplicate_pairs(100, 12, 1.0, 500, 29);
  for (const auto& p : all_near) EXPECT_LE(p.planted, 8);
  const auto all_tail = near_duplicate_pairs(100, 12, 0.0, 30, 31);
  for (const auto& p : all_tail) EXPECT_EQ(p.planted, 30);
}

}  // namespace
}  // namespace mpcsd::core
