// SIMD Myers kernels pinned against the scalar kernel, level by level.
//
// Every ISA level the host can run is forced in-process (force_isa) and
// differentially compared with the scalar kernel on the same inputs:
// identical distances, identical bounded verdicts, identical work meters.
// Lengths concentrate on the stripe boundaries (64/128/256/512 symbols)
// where lane-carry and cross-word-shift bugs live.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/cpu.hpp"
#include "core/workload.hpp"
#include "seq/myers.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

/// Restores the entry ISA level when a test scope ends, pass or fail.
struct IsaGuard {
  Isa saved = active_isa();
  ~IsaGuard() { force_isa(saved); }
};

std::vector<Isa> host_levels() {
  std::vector<Isa> levels = {Isa::kScalar};
  if (detected_isa() >= Isa::kAvx2) levels.push_back(Isa::kAvx2);
  if (detected_isa() >= Isa::kAvx512) levels.push_back(Isa::kAvx512);
  return levels;
}

/// One deterministic differential case: pattern/text lengths and alphabet
/// derived from the case index, biased toward word-stripe boundaries.
struct Case {
  SymString a;
  SymString b;
  std::int64_t bound;
};

Case make_case(std::uint64_t i) {
  // Boundary-biased pattern lengths: walk +-2 around 64/128/256/512, with
  // a sprinkle of arbitrary lengths in between.
  static constexpr std::int64_t kAnchors[] = {64, 128, 256, 512};
  std::int64_t m = 0;
  if (i % 3 != 0) {
    m = kAnchors[(i / 3) % 4] + static_cast<std::int64_t>(i % 5) - 2;
  } else {
    m = 1 + static_cast<std::int64_t>((i * 37) % 600);
  }
  const std::int64_t sigma_pool[] = {2, 3, 4, 16, 1000};
  const std::int64_t sigma = sigma_pool[i % 5];
  const auto a = core::random_string(m, sigma, i);
  SymString b;
  if (i % 2 == 0) {
    // Correlated text: planted edits, so distances are small and bounded
    // runs exercise both accept and abort columns.
    b = core::plant_edits(a, static_cast<std::int64_t>(i % 40), i + 1, false,
                          sigma)
            .text;
  } else {
    const std::int64_t n =
        std::max<std::int64_t>(1, m + static_cast<std::int64_t>(i % 31) - 15);
    b = core::random_string(n, sigma, i + 7777);
  }
  const std::int64_t bound = static_cast<std::int64_t>(i % 64);
  return Case{a, b, bound};
}

constexpr std::uint64_t kCases = 10000;

TEST(SeqSimd, DifferentialAgainstScalarPerHostLevel) {
  IsaGuard guard;
  for (const Isa level : host_levels()) {
    if (level == Isa::kScalar) continue;
    ASSERT_EQ(force_isa(level), level);
    std::uint64_t simd_hits = 0;
    for (std::uint64_t i = 0; i < kCases; ++i) {
      const Case c = make_case(i);
      if (myers_dispatch_isa(c.a.size()) == level) ++simd_hits;

      force_isa(Isa::kScalar);
      std::uint64_t ref_work = 0;
      const std::int64_t ref = edit_distance_myers(c.a, c.b, &ref_work);
      std::uint64_t ref_bwork = 0;
      const std::optional<std::int64_t> ref_bounded =
          edit_distance_myers_bounded(c.a, c.b, c.bound, &ref_bwork);

      force_isa(level);
      std::uint64_t got_work = 0;
      const std::int64_t got = edit_distance_myers(c.a, c.b, &got_work);
      std::uint64_t got_bwork = 0;
      const std::optional<std::int64_t> got_bounded =
          edit_distance_myers_bounded(c.a, c.b, c.bound, &got_bwork);

      ASSERT_EQ(got, ref) << "case " << i << " level " << isa_name(level);
      ASSERT_EQ(got_work, ref_work)
          << "work meter diverged, case " << i << " level " << isa_name(level);
      ASSERT_EQ(got_bounded, ref_bounded)
          << "bounded verdict, case " << i << " level " << isa_name(level);
      ASSERT_EQ(got_bwork, ref_bwork)
          << "bounded work meter, case " << i << " level " << isa_name(level);
    }
    // The sweep must actually exercise the forced SIMD kernel, not
    // dispatch everything below its min-blocks profitability floor (the
    // AVX-512 floor is 512 symbols, so only the large-anchor slice of the
    // case mix reaches it — still thousands of cases).
    EXPECT_GT(simd_hits, kCases / 8) << isa_name(level);
  }
}

TEST(SeqSimd, DispatchRespectsProfitabilityFloor) {
  IsaGuard guard;
  for (const Isa level : host_levels()) {
    ASSERT_EQ(force_isa(level), level);
    // Single-word patterns always take the scalar kernel: lane parallelism
    // has nothing to feed below two blocks.
    EXPECT_EQ(myers_dispatch_isa(40), Isa::kScalar);
    // Huge patterns dispatch to exactly the forced level.
    EXPECT_EQ(myers_dispatch_isa(4096), level);
  }
}

TEST(SeqSimd, ForceIsaClampsToDetected) {
  IsaGuard guard;
  EXPECT_EQ(force_isa(Isa::kAvx512),
            std::min(Isa::kAvx512, detected_isa()));
  EXPECT_EQ(force_isa(Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(active_isa(), Isa::kScalar);
}

TEST(SeqSimd, IsaNamesRoundTrip) {
  for (const Isa level : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    EXPECT_EQ(isa_from_string(isa_name(level)), level);
  }
  EXPECT_FALSE(isa_from_string("sse9").has_value());
  EXPECT_FALSE(isa_from_string("").has_value());
}

/// Long-pattern spot checks: multiple stripes (>64 words) so the stripe
/// carry chain itself is crossed, not just the lane boundaries inside one.
TEST(SeqSimd, MultiStripePatterns) {
  IsaGuard guard;
  for (const std::int64_t m : {64 * 64 - 1, 64 * 64, 64 * 64 + 65}) {
    const auto a = core::random_string(m, 4, static_cast<std::uint64_t>(m));
    const auto b = core::plant_edits(a, 100, 9, false, 4).text;
    force_isa(Isa::kScalar);
    const std::int64_t ref = edit_distance_myers(a, b);
    for (const Isa level : host_levels()) {
      force_isa(level);
      ASSERT_EQ(edit_distance_myers(a, b), ref)
          << "m=" << m << " level " << isa_name(level);
    }
  }
}

}  // namespace
}  // namespace mpcsd::seq
