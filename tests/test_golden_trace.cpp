// Golden-trace regression test: pins the full ExecutionTrace of every MPC
// driver (round labels, machine counts, work, communication and memory
// metering) on fixed seeds across a sweep of (n, x, eps).
//
// The table below was captured from the seed drivers BEFORE they were
// ported onto the mpc::Plan/Driver layer; the ported drivers must reproduce
// it field-for-field, which proves the refactor kept RoundReport metering
// byte-identical.  It also catches any later metering drift (a changed
// payload layout, a forgotten charge_work, a re-ordered round).
//
// Regenerating (only when a metering change is *intentional*):
//   MPCSD_GOLDEN_DUMP=1 ./test_golden_trace | less
// and paste the emitted table over kGolden.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace {

using namespace mpcsd;

struct TraceRow {
  std::string label;
  std::size_t machines;
  std::uint64_t total_work;
  std::uint64_t total_comm_bytes;
  std::uint64_t total_input_bytes;
  std::uint64_t max_machine_memory;
  std::uint64_t max_machine_work;
  std::size_t memory_violations;
};

struct Scenario {
  const char* name;
  std::vector<TraceRow> rows;
};

std::vector<TraceRow> flatten(const mpc::ExecutionTrace& trace) {
  std::vector<TraceRow> rows;
  for (const mpc::RoundReport& r : trace.rounds()) {
    rows.push_back(TraceRow{r.label, r.machines, r.total_work,
                            r.total_comm_bytes, r.total_input_bytes,
                            r.max_machine_memory, r.max_machine_work,
                            r.memory_violations});
  }
  return rows;
}

// ---- scenario runners (fixed seeds; sweep of n, x, eps) ----

mpc::ExecutionTrace run_ulam(std::int64_t n, double x, double eps,
                             std::uint64_t seed, bool in_model) {
  const auto s = core::random_permutation(n, seed);
  const auto t = core::plant_edits(s, n / 16, seed + 1, true).text;
  ulam_mpc::UlamMpcParams params;
  params.x = x;
  params.epsilon = eps;
  params.seed = seed;
  params.workers = 1;
  params.in_model_position_map = in_model;
  return ulam_mpc::ulam_distance_mpc(s, t, params).trace;
}

mpc::ExecutionTrace run_small(std::int64_t n, double x, double eps_prime,
                              std::int64_t guess, edit_mpc::DistanceUnit unit,
                              std::uint64_t seed) {
  const auto s = core::random_string(n, 8, seed);
  const auto t = core::plant_edits(s, guess / 2, seed + 1, false).text;
  edit_mpc::SmallDistanceParams sp;
  sp.x = x;
  sp.eps_prime = eps_prime;
  sp.delta_guess = guess;
  sp.unit = unit;
  sp.seed = seed;
  sp.workers = 1;
  edit_mpc::EditMpcParams cap;
  cap.x = x;
  sp.memory_cap_bytes = edit_mpc::edit_memory_cap_bytes(n, cap);
  return edit_mpc::run_small_distance(s, t, sp).trace;
}

mpc::ExecutionTrace run_large(std::int64_t n, double x, std::int64_t guess,
                              std::uint64_t seed) {
  const auto s = core::random_string(n, 6, seed);
  const auto t = core::plant_edits(s, guess / 2, seed + 1, false).text;
  edit_mpc::LargeDistanceParams lp;
  lp.x = x;
  lp.eps_prime = 0.2;
  lp.delta_guess = guess;
  lp.seed = seed;
  lp.workers = 1;
  edit_mpc::EditMpcParams cap;
  cap.x = x;
  lp.memory_cap_bytes = edit_mpc::edit_memory_cap_bytes(n, cap);
  return edit_mpc::run_large_distance(s, t, lp).trace;
}

mpc::ExecutionTrace run_edit(std::int64_t n, double x, double eps,
                             edit_mpc::DistanceUnit unit, std::uint64_t seed) {
  const auto s = core::random_string(n, 8, seed);
  const auto t = core::plant_edits(s, n / 12, seed + 1, false).text;
  edit_mpc::EditMpcParams params;
  params.x = x;
  params.epsilon = eps;
  params.unit = unit;
  params.seed = seed;
  params.workers = 1;
  return edit_mpc::edit_distance_mpc(s, t, params).trace;
}

mpc::ExecutionTrace run_hss(std::int64_t n, double x, double eps,
                            std::uint64_t seed) {
  const auto s = core::random_string(n, 8, seed);
  const auto t = core::plant_edits(s, n / 10, seed + 1, false).text;
  edit_mpc::HssBaselineParams params;
  params.x = x;
  params.epsilon = eps;
  params.seed = seed;
  params.workers = 1;
  return edit_mpc::hss_edit_distance_mpc(s, t, params).trace;
}

struct Case {
  const char* name;
  mpc::ExecutionTrace (*run)();
};

// The sweep.  Each entry is deterministic: fixed seed, workers=1, and all
// metered quantities are scheduling-independent by construction.
const Case kCases[] = {
    {"ulam_n256_x033_e05",
     [] { return run_ulam(256, 1.0 / 3, 0.5, 7, false); }},
    {"ulam_n512_x040_e08",
     [] { return run_ulam(512, 0.40, 0.8, 21, false); }},
    {"ulam_n384_x030_e025",
     [] { return run_ulam(384, 0.30, 0.25, 9, false); }},
    {"ulam_inmodel_n256",
     [] { return run_ulam(256, 1.0 / 3, 0.5, 7, true); }},
    {"small_exact_n320_g16",
     [] { return run_small(320, 0.25, 0.2, 16, edit_mpc::DistanceUnit::kExactBanded, 11); }},
    {"small_approx_n320_g16",
     [] { return run_small(320, 0.25, 0.2, 16, edit_mpc::DistanceUnit::kApprox3, 11); }},
    {"small_exact_n480_x030_g24",
     [] { return run_small(480, 0.30, 0.15, 24, edit_mpc::DistanceUnit::kExactBanded, 29); }},
    {"large_n400_x030_g48",
     [] { return run_large(400, 0.30, 48, 13); }},
    {"large_n560_x025_g96",
     [] { return run_large(560, 0.25, 96, 17); }},
    {"edit_n192_x025_e10",
     [] { return run_edit(192, 0.25, 1.0, edit_mpc::DistanceUnit::kApprox3, 19); }},
    {"edit_exact_n160_x025_e10",
     [] { return run_edit(160, 0.25, 1.0, edit_mpc::DistanceUnit::kExactBanded, 19); }},
    {"hss_n96_x025_e10", [] { return run_hss(96, 0.25, 1.0, 23); }},
};

// ---- golden table (generated with MPCSD_GOLDEN_DUMP=1; see header) ----
#include "test_golden_trace.inc"

void dump_all() {
  std::printf("// Generated by MPCSD_GOLDEN_DUMP=1 ./test_golden_trace\n");
  std::printf("const std::vector<Scenario> kGolden = {\n");
  for (const Case& c : kCases) {
    const auto rows = flatten(c.run());
    std::printf("    {\"%s\",\n     {\n", c.name);
    for (const TraceRow& r : rows) {
      std::printf("         {\"%s\", %zuu, %lluu, %lluu, %lluu, %lluu, %lluu, %zuu},\n",
                  r.label.c_str(), r.machines,
                  static_cast<unsigned long long>(r.total_work),
                  static_cast<unsigned long long>(r.total_comm_bytes),
                  static_cast<unsigned long long>(r.total_input_bytes),
                  static_cast<unsigned long long>(r.max_machine_memory),
                  static_cast<unsigned long long>(r.max_machine_work),
                  r.memory_violations);
    }
    std::printf("     }},\n");
  }
  std::printf("};\n");
}

TEST(GoldenTrace, MeteringIdentity) {
  if (std::getenv("MPCSD_GOLDEN_DUMP") != nullptr) {
    dump_all();
    GTEST_SKIP() << "dump mode: golden table printed to stdout";
  }
  ASSERT_EQ(kGolden.size(), std::size(kCases));
  for (std::size_t c = 0; c < std::size(kCases); ++c) {
    SCOPED_TRACE(kCases[c].name);
    const auto rows = flatten(kCases[c].run());
    const Scenario& golden = kGolden[c];
    ASSERT_EQ(rows.size(), golden.rows.size()) << "round count drifted";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(i));
      EXPECT_EQ(rows[i].label, golden.rows[i].label);
      EXPECT_EQ(rows[i].machines, golden.rows[i].machines);
      EXPECT_EQ(rows[i].total_work, golden.rows[i].total_work);
      EXPECT_EQ(rows[i].total_comm_bytes, golden.rows[i].total_comm_bytes);
      EXPECT_EQ(rows[i].total_input_bytes, golden.rows[i].total_input_bytes);
      EXPECT_EQ(rows[i].max_machine_memory, golden.rows[i].max_machine_memory);
      EXPECT_EQ(rows[i].max_machine_work, golden.rows[i].max_machine_work);
      EXPECT_EQ(rows[i].memory_violations, golden.rows[i].memory_violations);
    }
  }
}

}  // namespace
