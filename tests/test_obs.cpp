// Tests for the observability spine (src/obs/) and the trace-composition
// edge cases it leans on.
//
//   * ExecutionTrace::append_sequential / merge_parallel edge cases: empty
//     trace on either side, unequal round counts, violation propagation.
//   * Recorder/Span semantics: null and sink-less recorders are inert,
//     args chain, finish is idempotent, moves transfer ownership.
//   * Sinks: JSONL round-trip parse, Chrome trace-event schema fields,
//     aggregate rollup arithmetic.
//   * Thread safety: concurrent emission from ThreadPool::parallel_for.
//   * Metering neutrality: attaching a recorder to the ulam/edit solvers
//     and to distance_batch (both modes) cannot change structural_hash().
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/api.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"

namespace {

using namespace mpcsd;

// ---------------------------------------------------------------------------
// ExecutionTrace composition edge cases
// ---------------------------------------------------------------------------

mpc::RoundReport make_round(const char* label, std::size_t machines,
                            std::uint64_t work, std::uint64_t comm,
                            std::uint64_t mem, std::size_t violations) {
  mpc::RoundReport r;
  r.label = label;
  r.machines = machines;
  r.total_work = work;
  r.max_machine_work = work;
  r.total_comm_bytes = comm;
  r.total_input_bytes = comm;
  r.max_machine_memory = mem;
  r.memory_violations = violations;
  r.wall_seconds = 0.5;
  r.driver_seconds = 0.25;
  return r;
}

TEST(ExecutionTraceEdge, AppendSequentialEmptyEitherSide) {
  mpc::ExecutionTrace empty;
  mpc::ExecutionTrace one;
  one.add_round(make_round("a", 2, 10, 100, 64, 0));

  mpc::ExecutionTrace lhs = one;
  lhs.append_sequential(empty);
  EXPECT_EQ(lhs.round_count(), 1u);
  EXPECT_EQ(lhs.structural_hash(), one.structural_hash());

  mpc::ExecutionTrace rhs;
  rhs.append_sequential(one);
  EXPECT_EQ(rhs.round_count(), 1u);
  EXPECT_EQ(rhs.structural_hash(), one.structural_hash());

  mpc::ExecutionTrace both;
  both.append_sequential(empty);
  EXPECT_EQ(both.round_count(), 0u);
  EXPECT_EQ(both.structural_hash(), empty.structural_hash());
}

TEST(ExecutionTraceEdge, MergeParallelEmptyEitherSide) {
  mpc::ExecutionTrace one;
  one.add_round(make_round("a", 2, 10, 100, 64, 1));

  // Empty `other` must leave the trace untouched.
  mpc::ExecutionTrace lhs = one;
  lhs.merge_parallel(mpc::ExecutionTrace{});
  EXPECT_EQ(lhs.round_count(), 1u);
  EXPECT_EQ(lhs.structural_hash(), one.structural_hash());

  // Merging into an empty trace adopts the other side's rounds wholesale
  // (labels included — padding rounds take the incoming label).
  mpc::ExecutionTrace rhs;
  rhs.merge_parallel(one);
  ASSERT_EQ(rhs.round_count(), 1u);
  EXPECT_EQ(rhs.rounds()[0].label, "a");
  EXPECT_EQ(rhs.rounds()[0].machines, 2u);
  EXPECT_EQ(rhs.structural_hash(), one.structural_hash());
}

TEST(ExecutionTraceEdge, MergeParallelUnequalRoundCounts) {
  mpc::ExecutionTrace lhs;
  lhs.add_round(make_round("r1", 2, 10, 100, 64, 0));

  mpc::ExecutionTrace other;
  other.add_round(make_round("r1", 3, 20, 200, 128, 0));
  other.add_round(make_round("r2", 5, 30, 300, 256, 2));

  lhs.merge_parallel(other);
  ASSERT_EQ(lhs.round_count(), 2u);
  // Round 0 zips: counts/work/comm add, memory maxes.
  EXPECT_EQ(lhs.rounds()[0].label, "r1");  // identical labels don't repeat
  EXPECT_EQ(lhs.rounds()[0].machines, 5u);
  EXPECT_EQ(lhs.rounds()[0].total_work, 30u);
  EXPECT_EQ(lhs.rounds()[0].total_comm_bytes, 300u);
  EXPECT_EQ(lhs.rounds()[0].max_machine_memory, 128u);
  EXPECT_EQ(lhs.rounds()[0].max_machine_work, 20u);
  // Round 1 is padding on the left: it takes `other`'s row verbatim.
  EXPECT_EQ(lhs.rounds()[1].label, "r2");
  EXPECT_EQ(lhs.rounds()[1].machines, 5u);
  EXPECT_EQ(lhs.rounds()[1].total_work, 30u);

  // The longer side wins the round count symmetrically: merging the short
  // trace into the long one also yields 2 rounds.
  mpc::ExecutionTrace wide = other;
  mpc::ExecutionTrace narrow;
  narrow.add_round(make_round("r1", 2, 10, 100, 64, 0));
  wide.merge_parallel(narrow);
  EXPECT_EQ(wide.round_count(), 2u);
  EXPECT_EQ(wide.rounds()[0].machines, 5u);
}

TEST(ExecutionTraceEdge, MergeParallelLabelJoinAndViolations) {
  mpc::ExecutionTrace lhs;
  lhs.add_round(make_round("left", 1, 1, 1, 1, 1));
  mpc::ExecutionTrace rhs;
  rhs.add_round(make_round("right", 1, 1, 1, 1, 2));

  lhs.merge_parallel(rhs);
  ASSERT_EQ(lhs.round_count(), 1u);
  EXPECT_EQ(lhs.rounds()[0].label, "left|right");
  // Violations are counts of offending machines, so they add.
  EXPECT_EQ(lhs.rounds()[0].memory_violations, 3u);
  EXPECT_EQ(lhs.memory_violations(), 3u);
}

TEST(ExecutionTraceEdge, StructuralHashIgnoresWallClock) {
  mpc::ExecutionTrace a;
  a.add_round(make_round("r", 2, 10, 100, 64, 0));
  mpc::ExecutionTrace b;
  mpc::RoundReport r = make_round("r", 2, 10, 100, 64, 0);
  r.wall_seconds = 99.0;
  r.driver_seconds = 42.0;
  b.add_round(r);
  EXPECT_EQ(a.structural_hash(), b.structural_hash());

  // ...but any model-level field does change the hash.
  mpc::ExecutionTrace c;
  mpc::RoundReport rc = make_round("r", 2, 10, 100, 64, 0);
  rc.total_work += 1;
  c.add_round(rc);
  EXPECT_NE(a.structural_hash(), c.structural_hash());
}

// ---------------------------------------------------------------------------
// Recorder / Span semantics
// ---------------------------------------------------------------------------

TEST(Recorder, NullAndSinklessRecordersAreInert) {
  // Null recorder: the span never arms.
  {
    obs::Span span(nullptr, "never", "test");
    EXPECT_FALSE(static_cast<bool>(span));
    span.arg("x", 1.0);  // must be a safe no-op
    span.finish();
  }
  // Sink-less recorder: enabled() is false, nothing is dispatched.
  obs::Recorder recorder;
  EXPECT_FALSE(recorder.enabled());
  {
    obs::Span span(&recorder, "never", "test");
    EXPECT_FALSE(static_cast<bool>(span));
  }
  recorder.counter("c", "test", 1.0);
  recorder.instant("i", "test");
  recorder.flush();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Recorder, SpanArgsChainAndFinishIsIdempotent) {
  obs::Recorder recorder;
  auto sink = std::make_shared<obs::AggregateSink>();
  recorder.add_sink(sink);
  ASSERT_TRUE(recorder.enabled());

  obs::Span span(&recorder, "chained", "test");
  ASSERT_TRUE(static_cast<bool>(span));
  span.arg("a", 1.0).arg("b", 2.5);
  span.finish();
  EXPECT_FALSE(static_cast<bool>(span));
  span.finish();  // second finish must not re-emit
  recorder.flush();

  EXPECT_EQ(recorder.event_count(), 1u);
  const auto it = sink->spans().find("chained");
  ASSERT_NE(it, sink->spans().end());
  EXPECT_EQ(it->second.count, 1u);
  ASSERT_EQ(it->second.last_args.size(), 2u);
  EXPECT_EQ(it->second.last_args[0].key, "a");
  EXPECT_DOUBLE_EQ(it->second.last_args[1].value, 2.5);
}

TEST(Recorder, SpanMoveTransfersOwnership) {
  obs::Recorder recorder;
  auto sink = std::make_shared<obs::AggregateSink>();
  recorder.add_sink(sink);

  obs::Span a(&recorder, "moved", "test");
  obs::Span b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b.finish();
  a.finish();  // moved-from span is inert
  recorder.flush();
  EXPECT_EQ(recorder.event_count(), 1u);
}

// ---------------------------------------------------------------------------
// JSONL sink: round-trip parse
// ---------------------------------------------------------------------------

// Minimal extraction helpers for the flat one-object-per-line format the
// sink emits (no nesting beyond the "args" object, which is always last).
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  auto start = pos + needle.size();
  if (line[start] == '"') {
    const auto end = line.find('"', start + 1);
    return line.substr(start + 1, end - start - 1);
  }
  auto end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

TEST(JsonlSink, RoundTripParse) {
  obs::Recorder recorder;
  auto sink = std::make_shared<obs::JsonlSink>();
  recorder.add_sink(sink);

  {
    obs::Span span(&recorder, "round:demo", "round", 3);
    span.arg("machines", 7.0).arg("ratio", 0.5);
  }
  recorder.counter("mpc.comm_bytes", "mpc", 4096.0);
  recorder.instant("note \"quoted\"", "misc");
  recorder.flush();

  EXPECT_EQ(sink->event_count(), 3u);
  std::istringstream lines(sink->text());
  std::string line;

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(json_field(line, "kind"), "span");
  EXPECT_EQ(json_field(line, "name"), "round:demo");
  EXPECT_EQ(json_field(line, "cat"), "round");
  EXPECT_EQ(json_field(line, "track"), "3");
  EXPECT_EQ(json_field(line, "machines"), "7");
  EXPECT_EQ(json_field(line, "ratio"), "0.5");
  EXPECT_FALSE(json_field(line, "dur_us").empty());

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(json_field(line, "kind"), "counter");
  EXPECT_EQ(json_field(line, "name"), "mpc.comm_bytes");
  EXPECT_EQ(json_field(line, "value"), "4096");
  // Counters carry no duration field.
  EXPECT_EQ(line.find("dur_us"), std::string::npos);

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(json_field(line, "kind"), "instant");
  // The quote inside the name must be escaped on the wire...
  EXPECT_NE(line.find("note \\\"quoted\\\""), std::string::npos);
  // ...and every line must close the object it opened.
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');

  EXPECT_FALSE(std::getline(lines, line));  // exactly 3 lines
}

// ---------------------------------------------------------------------------
// Chrome trace sink: schema fields
// ---------------------------------------------------------------------------

TEST(ChromeTraceSink, SchemaFields) {
  obs::Recorder recorder;
  auto sink = std::make_shared<obs::ChromeTraceSink>();
  recorder.add_sink(sink);

  {
    obs::Span span(&recorder, "stage:emit", "stage", 2);
    span.arg("glue_seconds", 0.0);
  }
  recorder.counter("pool.peak_queue_depth", "pool", 5.0);
  recorder.instant("retired", "batch");
  recorder.flush();

  EXPECT_EQ(sink->event_count(), 3u);
  const std::string json = sink->to_string();

  // Top-level object shape.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Span -> complete event "X" on its track, with dur.
  EXPECT_NE(json.find("\"name\":\"stage:emit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0,\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  // Counter -> "C"; instant -> thread-scoped "i".
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);

  // Every event row carries name/cat/ts.
  EXPECT_NE(json.find("\"cat\":\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Aggregate sink arithmetic
// ---------------------------------------------------------------------------

TEST(AggregateSink, RollupArithmetic) {
  obs::AggregateSink sink;

  obs::TraceEvent span;
  span.kind = obs::EventKind::kSpan;
  span.name = "s";
  span.category = "test";
  span.dur_us = 10;
  sink.record(span);
  span.dur_us = 30;
  span.args = {obs::Arg{"k", 2.0}};
  sink.record(span);

  obs::TraceEvent counter;
  counter.kind = obs::EventKind::kCounter;
  counter.name = "c";
  counter.args = {obs::Arg{"value", 3.0}};
  sink.record(counter);
  counter.args = {obs::Arg{"value", 5.0}};
  sink.record(counter);

  const auto& s = sink.spans().at("s");
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.total_dur_us, 40u);
  EXPECT_EQ(s.min_dur_us, 10u);
  EXPECT_EQ(s.max_dur_us, 30u);
  ASSERT_EQ(s.last_args.size(), 1u);
  EXPECT_DOUBLE_EQ(s.last_args[0].value, 2.0);

  const auto& c = sink.counters().at("c");
  EXPECT_EQ(c.count, 2u);
  EXPECT_DOUBLE_EQ(c.last, 5.0);
  EXPECT_DOUBLE_EQ(c.sum, 8.0);

  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"name\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":40"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":8"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Thread safety under parallel_for
// ---------------------------------------------------------------------------

TEST(Recorder, ConcurrentEmissionUnderParallelFor) {
  obs::Recorder recorder;
  auto sink = std::make_shared<obs::AggregateSink>();
  recorder.add_sink(sink);

  ThreadPool pool(4);
  constexpr std::size_t kIters = 512;
  pool.parallel_for(kIters, [&recorder](std::size_t i) {
    obs::Span span(&recorder, "worker", "test", i % 7);
    span.arg("i", static_cast<double>(i));
    span.finish();
    recorder.counter("hits", "test", 1.0);
  });
  recorder.flush();

  // Every emission must have been dispatched exactly once, with no lost
  // updates (the dispatch lock serialises the sink).
  EXPECT_EQ(recorder.event_count(), 2 * kIters);
  EXPECT_EQ(sink->spans().at("worker").count, kIters);
  EXPECT_EQ(sink->counters().at("hits").count, kIters);
  EXPECT_DOUBLE_EQ(sink->counters().at("hits").sum, static_cast<double>(kIters));
}

// ---------------------------------------------------------------------------
// Metering neutrality: recorder attached vs detached
// ---------------------------------------------------------------------------

TEST(MeteringNeutrality, UlamSolver) {
  const auto s = core::random_permutation(256, 7);
  const auto t = core::plant_edits(s, 16, 8, true).text;
  ulam_mpc::UlamMpcParams params;
  params.workers = 2;
  params.seed = 7;

  const auto detached = ulam_mpc::ulam_distance_mpc(s, t, params);

  obs::Recorder recorder;
  auto sink = std::make_shared<obs::AggregateSink>();
  recorder.add_sink(sink);
  params.recorder = &recorder;
  const auto attached = ulam_mpc::ulam_distance_mpc(s, t, params);
  recorder.flush();

  EXPECT_EQ(attached.distance, detached.distance);
  EXPECT_EQ(attached.trace.structural_hash(), detached.trace.structural_hash());
  // The traced run actually emitted: solver span + round spans + counters.
  EXPECT_GT(recorder.event_count(), 0u);
  EXPECT_NE(sink->spans().find("ulam:solve"), sink->spans().end());
}

TEST(MeteringNeutrality, EditSolver) {
  const auto s = core::random_string(192, 8, 19);
  const auto t = core::plant_edits(s, 16, 20, false).text;
  edit_mpc::EditMpcParams params;
  params.workers = 2;
  params.seed = 19;

  const auto detached = edit_mpc::edit_distance_mpc(s, t, params);

  obs::Recorder recorder;
  auto sink = std::make_shared<obs::AggregateSink>();
  recorder.add_sink(sink);
  params.recorder = &recorder;
  const auto attached = edit_mpc::edit_distance_mpc(s, t, params);
  recorder.flush();

  EXPECT_EQ(attached.distance, detached.distance);
  EXPECT_EQ(attached.trace.structural_hash(), detached.trace.structural_hash());
  EXPECT_NE(sink->spans().find("edit:solve"), sink->spans().end());
  EXPECT_NE(sink->spans().find("edit:guess"), sink->spans().end());
}

core::BatchRequest make_batch_request(core::BatchMode mode) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kEdit;
  request.mode = mode;
  // The assertions below require the ladder to actually run (rung spans);
  // keep MPCSD_ROUTER from retiring the queries.
  request.router = core::RouterPolicy::kOff;
  request.edit.x = 0.25;
  request.edit.epsilon = 1.0;
  request.edit.seed = 5;
  for (std::uint64_t q = 0; q < 3; ++q) {
    const auto s = core::random_string(160, 8, 31 + q);
    const auto t = core::plant_edits(s, 6 + 2 * static_cast<std::int64_t>(q),
                                     41 + q, false)
                       .text;
    request.queries.push_back(core::BatchQuery{s, t});
  }
  return request;
}

TEST(MeteringNeutrality, DistanceBatchBothModes) {
  for (const auto mode :
       {core::BatchMode::kParallelGuess, core::BatchMode::kThroughput}) {
    SCOPED_TRACE(mode == core::BatchMode::kParallelGuess ? "parallel_guess"
                                                         : "throughput");
    auto request = make_batch_request(mode);
    const auto detached = core::distance_batch(request);

    obs::Recorder recorder;
    auto sink = std::make_shared<obs::AggregateSink>();
    recorder.add_sink(sink);
    request.recorder = &recorder;
    const auto attached = core::distance_batch(request);
    recorder.flush();

    ASSERT_EQ(attached.queries.size(), detached.queries.size());
    EXPECT_EQ(attached.trace.structural_hash(),
              detached.trace.structural_hash());
    for (std::size_t q = 0; q < attached.queries.size(); ++q) {
      EXPECT_EQ(attached.queries[q].distance, detached.queries[q].distance);
      EXPECT_EQ(attached.queries[q].trace.structural_hash(),
                detached.queries[q].trace.structural_hash());
    }
    // Per-rung attribution spans landed on the query tracks.
    EXPECT_NE(sink->spans().find("batch:edit:pass"), sink->spans().end());
    EXPECT_NE(sink->spans().find("batch:edit:rung"), sink->spans().end());
  }
}

TEST(MeteringNeutrality, UlamBatchEmitsQuerySpans) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kUlam;
  request.ulam.seed = 9;
  for (std::uint64_t q = 0; q < 2; ++q) {
    const auto s = core::random_permutation(128, 51 + q);
    const auto t = core::plant_edits(s, 8, 61 + q, true).text;
    request.queries.push_back(core::BatchQuery{s, t});
  }
  const auto detached = core::distance_batch(request);

  obs::Recorder recorder;
  auto sink = std::make_shared<obs::AggregateSink>();
  recorder.add_sink(sink);
  request.recorder = &recorder;
  const auto attached = core::distance_batch(request);
  recorder.flush();

  EXPECT_EQ(attached.trace.structural_hash(), detached.trace.structural_hash());
  const auto it = sink->spans().find("batch:ulam:query");
  ASSERT_NE(it, sink->spans().end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_NE(sink->spans().find("batch:ulam:pass"), sink->spans().end());
}

}  // namespace
