// Algorithm 1 (per-block Ulam candidate construction): tuple validity, the
// Lemma 1/2 locality structure, and the Lemma 3 cover property evaluated
// against an explicit optimal alignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "seq/alignment.hpp"
#include "seq/edit_distance.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/candidates.hpp"

namespace mpcsd::ulam_mpc {
namespace {

std::vector<std::int64_t> positions_of(SymView block, SymView t) {
  std::unordered_map<Symbol, std::int64_t> pos;
  for (std::size_t j = 0; j < t.size(); ++j) pos.emplace(t[j], static_cast<std::int64_t>(j));
  std::vector<std::int64_t> out;
  for (const Symbol v : block) {
    const auto it = pos.find(v);
    out.push_back(it == pos.end() ? -1 : it->second);
  }
  return out;
}

std::vector<Tuple> run_block(SymView s, SymView t, std::int64_t begin,
                             std::int64_t end, double eps_prime,
                             std::uint64_t seed, CandidateStats* stats = nullptr) {
  CandidateParams params;
  params.eps_prime = eps_prime;
  params.theta_constant = 8.0;
  params.n = static_cast<std::int64_t>(s.size());
  params.n_bar = static_cast<std::int64_t>(t.size());
  Pcg32 rng = derive_stream(seed, 0xCAFE);
  return build_block_candidates(begin, positions_of(subview(s, {begin, end}), t),
                                params, rng, stats);
}

TEST(UlamCandidates, TupleDistancesAreExact) {
  const auto s = core::random_permutation(400, 1);
  const auto t = core::plant_edits(s, 30, 2, true).text;
  const auto tuples = run_block(s, t, 100, 200, 0.25, 3);
  ASSERT_FALSE(tuples.empty());
  for (const Tuple& tu : tuples) {
    EXPECT_EQ(tu.block_begin, 100);
    EXPECT_EQ(tu.block_end, 200);
    ASSERT_GE(tu.window_begin, 0);
    ASSERT_LE(tu.window_end, static_cast<std::int64_t>(t.size()));
    const auto exact = seq::ulam_distance(
        subview(s, {tu.block_begin, tu.block_end}),
        subview(t, {tu.window_begin, tu.window_end}));
    ASSERT_EQ(tu.distance, exact)
        << "window [" << tu.window_begin << "," << tu.window_end << ")";
  }
}

TEST(UlamCandidates, ExactCopyBlockYieldsZeroTuple) {
  const auto t = core::random_permutation(300, 4);
  // Block 50..120 of s IS t[50..120) (identical strings).
  const auto tuples = run_block(t, t, 50, 120, 0.25, 5);
  const bool has_zero = std::any_of(tuples.begin(), tuples.end(), [](const Tuple& tu) {
    return tu.distance == 0;
  });
  EXPECT_TRUE(has_zero);
}

TEST(UlamCandidates, Lemma1LulamWindowLocality) {
  // For blocks whose opt image is close (u_i < B/2), the lulam window's
  // endpoints are within 2*u_i of the opt image endpoints.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto s = core::random_permutation(300, seed);
    const auto t = core::plant_edits(s, 12, seed + 77, true).text;
    const std::int64_t bsize = 60;
    const auto blocks = edit_mpc::make_blocks(300, bsize);
    const auto images = seq::block_images(s, t, blocks);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const SymView block = subview(s, blocks[i]);
      const auto u = seq::ulam_distance(block, subview(t, images[i]));
      if (u >= bsize / 2 || u == 0) continue;
      const auto local = seq::local_ulam(block, t);
      EXPECT_LE(std::abs(local.window.begin - images[i].begin), 2 * u)
          << "seed=" << seed << " block=" << i;
      EXPECT_LE(std::abs(local.window.end - images[i].end), 2 * u)
          << "seed=" << seed << " block=" << i;
    }
  }
}

TEST(UlamCandidates, Lemma3CoverProperty) {
  // For every block with a qualifying opt image, Algorithm 1 outputs a
  // candidate [a', b') with a_i <= a' <= a_i + eps'*u_i and
  // b_i - eps'*u_i <= b' <= b_i (conditions 1 and 2).
  const double eps_prime = 0.25;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto s = core::random_permutation(400, seed);
    const auto t = core::plant_edits(s, 20, seed + 13, true).text;
    const std::int64_t bsize = 80;
    const auto blocks = edit_mpc::make_blocks(400, bsize);
    const auto images = seq::block_images(s, t, blocks);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const SymView block = subview(s, blocks[i]);
      const auto u = seq::ulam_distance(block, subview(t, images[i]));
      if (u == 0) continue;  // handled by the exact-tuple test
      // Lemma 3 gate: small distance, or enough unchanged characters.  With
      // 20 edits on 400 symbols, u < B/2 always holds here.
      ASSERT_LT(u, bsize / 2);
      const auto tuples =
          run_block(s, t, blocks[i].begin, blocks[i].end, eps_prime, seed + i);
      const double slack = eps_prime * static_cast<double>(u);
      const bool covered = std::any_of(
          tuples.begin(), tuples.end(), [&](const Tuple& tu) {
            return tu.window_begin >= images[i].begin &&
                   static_cast<double>(tu.window_begin) <=
                       static_cast<double>(images[i].begin) + slack &&
                   tu.window_end <= images[i].end &&
                   static_cast<double>(tu.window_end) >=
                       static_cast<double>(images[i].end) - slack;
          });
      EXPECT_TRUE(covered) << "seed=" << seed << " block=" << i << " u=" << u;
    }
  }
}

TEST(UlamCandidates, HighDistanceBlockStillAnchorsViaHittingSet) {
  // Move a block far away: its opt image is distant but the characters are
  // unchanged, so the hitting-set path must anchor a candidate near the
  // block's actual location in t.
  const auto s = core::random_permutation(600, 21);
  SymString t(s.begin(), s.end());
  // Rotate by 200: every block's content now lives 200 positions away.
  std::rotate(t.begin(), t.begin() + 200, t.end());
  const std::int64_t begin = 0;
  const std::int64_t end = 150;  // block size 150, distance to its image large
  CandidateStats stats;
  const auto tuples = run_block(s, t, begin, end, 0.25, 9, &stats);
  // The block s[0,150) appears verbatim at t[400, 550): some candidate must
  // essentially find it (distance far below the trivial 150).
  const auto best = std::min_element(tuples.begin(), tuples.end(),
                                     [](const Tuple& a, const Tuple& b) {
                                       return a.distance < b.distance;
                                     });
  ASSERT_NE(best, tuples.end());
  EXPECT_EQ(best->distance, 0);
  EXPECT_EQ(best->window_begin, 400);
  EXPECT_EQ(best->window_end, 550);
}

TEST(UlamCandidates, CandidateCountIsModest) {
  // Õ_eps(1) candidates per block: assert a generous absolute budget.
  const auto s = core::random_permutation(2000, 31);
  const auto t = core::plant_edits(s, 100, 32, true).text;
  CandidateStats stats;
  const auto tuples = run_block(s, t, 500, 1000, 0.25, 33, &stats);
  EXPECT_GT(tuples.size(), 0u);
  EXPECT_LT(stats.candidates_evaluated, 20000u);
}

TEST(UlamCandidates, NoMatchesProducesOnlyTrivialCandidates) {
  // Block symbols absent from t entirely.
  SymString s(50);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = 10000 + static_cast<Symbol>(i);
  const auto t = core::random_permutation(100, 3);
  CandidateParams params;
  params.eps_prime = 0.25;
  params.n = 50;
  params.n_bar = 100;
  Pcg32 rng = derive_stream(1, 2);
  const auto tuples = build_block_candidates(0, std::vector<std::int64_t>(50, -1),
                                             params, rng);
  for (const Tuple& tu : tuples) {
    EXPECT_GE(tu.distance, 50 - (tu.window_end - tu.window_begin));
  }
}

}  // namespace
}  // namespace mpcsd::ulam_mpc
