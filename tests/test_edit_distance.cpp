// Exact edit-distance engines: Wagner–Fischer, Ukkonen band, doubling.
// The three must agree exactly on every input; the band must certify
// correctly (value iff distance <= k).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

std::int64_t ed(const std::string& a, const std::string& b) {
  return edit_distance(to_symbols(a), to_symbols(b));
}

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(ed("", ""), 0);
  EXPECT_EQ(ed("abc", ""), 3);
  EXPECT_EQ(ed("", "abc"), 3);
  EXPECT_EQ(ed("abc", "abc"), 0);
  EXPECT_EQ(ed("kitten", "sitting"), 3);
  EXPECT_EQ(ed("flaw", "lawn"), 2);
  EXPECT_EQ(ed("intention", "execution"), 5);
  // The paper's running example (Section 2).
  EXPECT_EQ(ed("elephant", "relevant"), 3);
}

TEST(EditDistance, SymmetricAndTriangle) {
  const auto a = core::random_string(60, 4, 1);
  const auto b = core::random_string(70, 4, 2);
  const auto c = core::random_string(65, 4, 3);
  EXPECT_EQ(edit_distance(a, b), edit_distance(b, a));
  EXPECT_LE(edit_distance(a, c), edit_distance(a, b) + edit_distance(b, c));
}

TEST(EditDistance, BoundedByLengths) {
  const auto a = core::random_string(40, 3, 4);
  const auto b = core::random_string(90, 3, 5);
  const auto d = edit_distance(a, b);
  EXPECT_GE(d, 50);  // length difference
  EXPECT_LE(d, 90);  // max length
}

TEST(EditDistanceBanded, AgreesWithExactWhenWithinBand) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = core::random_string(50, 4, seed);
    const auto planted = core::plant_edits(a, static_cast<std::int64_t>(seed % 8), seed + 100,
                                           false);
    const auto exact = edit_distance(a, planted.text);
    for (std::int64_t k = 0; k <= 12; ++k) {
      const auto banded = edit_distance_banded(a, planted.text, k);
      if (exact <= k) {
        ASSERT_TRUE(banded.has_value()) << "seed=" << seed << " k=" << k;
        EXPECT_EQ(*banded, exact);
      } else {
        EXPECT_FALSE(banded.has_value()) << "seed=" << seed << " k=" << k;
      }
    }
  }
}

TEST(EditDistanceBanded, LengthDifferenceShortCircuit) {
  const auto a = core::random_string(10, 4, 1);
  const auto b = core::random_string(30, 4, 2);
  EXPECT_FALSE(edit_distance_banded(a, b, 5).has_value());
}

TEST(EditDistanceBanded, ZeroBand) {
  const auto a = core::random_string(20, 4, 7);
  EXPECT_EQ(edit_distance_banded(a, a, 0), std::optional<std::int64_t>(0));
  auto b = a;
  b[3] ^= 1;
  EXPECT_FALSE(edit_distance_banded(a, b, 0).has_value());
}

TEST(EditDistanceDoubling, MatchesExactOnRandomPairs) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto n = 20 + static_cast<std::int64_t>(seed * 7);
    const auto a = core::random_string(n, 4, seed);
    const auto b = core::random_string(n + static_cast<std::int64_t>(seed % 5), 4,
                                       seed + 1000);
    EXPECT_EQ(edit_distance_doubling(a, b), edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(EditDistanceBounded, RespectsLimit) {
  const auto a = core::random_string(100, 2, 11);
  const auto b = core::random_string(100, 2, 12);
  const auto exact = edit_distance(a, b);
  ASSERT_GT(exact, 5);
  EXPECT_FALSE(edit_distance_bounded(a, b, 5).has_value());
  EXPECT_EQ(edit_distance_bounded(a, b, exact), std::optional<std::int64_t>(exact));
}

TEST(EditDistance, PlantedEditsAreUpperBound) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto base = core::random_string(200, 4, seed);
    const std::int64_t k = static_cast<std::int64_t>(seed * 3 % 40);
    const auto planted = core::plant_edits(base, k, seed + 50, false);
    EXPECT_LE(edit_distance(base, planted.text), planted.edits_applied);
  }
}

TEST(EditDistance, WorkMeterCountsCells) {
  const auto a = core::random_string(30, 4, 1);
  const auto b = core::random_string(50, 4, 2);
  std::uint64_t work = 0;
  edit_distance(a, b, &work);
  EXPECT_EQ(work, 30u * 50u);
}

TEST(EditDistanceBanded, WorkScalesWithBand) {
  const auto a = core::random_string(2000, 4, 1);
  const auto planted = core::plant_edits(a, 10, 2, false);
  std::uint64_t narrow = 0;
  std::uint64_t wide = 0;
  (void)edit_distance_banded(a, planted.text, 16, &narrow);
  (void)edit_distance_banded(a, planted.text, 256, &wide);
  EXPECT_LT(narrow * 4, wide);  // band cost ~ n*k
}

// Parameterized sweep: doubling == exact over sizes and alphabets.
class EditDistanceSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, Symbol>> {};

TEST_P(EditDistanceSweep, DoublingMatchesExact) {
  const auto [n, alphabet] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto a = core::random_string(n, alphabet, seed);
    const auto b = core::random_string(n, alphabet, seed + 77);
    ASSERT_EQ(edit_distance_doubling(a, b), edit_distance(a, b))
        << "n=" << n << " sigma=" << alphabet << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, EditDistanceSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 5, 17, 64, 130),
                       ::testing::Values<Symbol>(2, 4, 26)));

}  // namespace
}  // namespace mpcsd::seq
