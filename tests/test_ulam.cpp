// The Ulam engines.  The anchor property: Ulam distance IS edit distance on
// repeat-free strings, so the match-point chain DP (dense and sparse) must
// agree exactly with Wagner–Fischer on every repeat-free pair.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.hpp"
#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/lis.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"

namespace mpcsd::seq {
namespace {

struct UlamPair {
  SymString a;
  SymString b;
};

UlamPair planted_pair(std::int64_t n, std::int64_t k, std::uint64_t seed) {
  UlamPair p;
  p.a = core::random_permutation(n, seed);
  p.b = core::plant_edits(p.a, k, seed + 31, /*repeat_free=*/true).text;
  return p;
}

TEST(MatchPoints, BasicExtraction) {
  const SymString a{3, 1, 4};
  const SymString b{1, 4, 3};
  const auto pts = match_points(a, b);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0], (MatchPoint{0, 2}));  // symbol 3
  EXPECT_EQ(pts[1], (MatchPoint{1, 0}));  // symbol 1
  EXPECT_EQ(pts[2], (MatchPoint{2, 1}));  // symbol 4
}

TEST(MatchPoints, DisjointAlphabets) {
  const SymString a{1, 2, 3};
  const SymString b{4, 5, 6};
  EXPECT_TRUE(match_points(a, b).empty());
}

TEST(Ulam, KnownSmallCases) {
  EXPECT_EQ(ulam_distance(SymString{}, SymString{}), 0);
  EXPECT_EQ(ulam_distance(SymString{1, 2}, SymString{}), 2);
  EXPECT_EQ(ulam_distance(SymString{1, 2}, SymString{2, 1}), 2);  // 2 substitutions
  EXPECT_EQ(ulam_distance(SymString{1, 2, 3}, SymString{3, 1, 2}), 2);
  EXPECT_EQ(ulam_distance(SymString{1, 2, 3}, SymString{1, 2, 3}), 0);
  EXPECT_EQ(ulam_distance(SymString{1, 2, 3}, SymString{4, 5, 6}), 3);
}

TEST(Ulam, DenseMatchesWagnerFischerExhaustiveSmall) {
  // Every pair of small permutations with disjoint fresh-symbol edits.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto p = planted_pair(8, static_cast<std::int64_t>(seed % 10), seed);
    const auto expected = edit_distance(p.a, p.b);
    ASSERT_EQ(ulam_distance_dense(p.a, p.b), expected) << "seed=" << seed;
  }
}

TEST(Ulam, SparseMatchesDenseAndWagnerFischer) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto n = 20 + static_cast<std::int64_t>(seed * 5);
    const auto p = planted_pair(n, static_cast<std::int64_t>(seed % 25), seed);
    const auto expected = edit_distance(p.a, p.b);
    ASSERT_EQ(ulam_distance_dense(p.a, p.b), expected) << "seed=" << seed;
    ASSERT_EQ(ulam_distance(p.a, p.b), expected) << "seed=" << seed;
  }
}

TEST(Ulam, IndependentPermutations) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = core::random_permutation(50, seed);
    const auto b = core::random_permutation(50, seed + 500);
    const auto expected = edit_distance(a, b);
    ASSERT_EQ(ulam_distance(a, b), expected) << "seed=" << seed;
  }
}

TEST(Ulam, RejectsRepeats) {
  EXPECT_THROW((void)ulam_distance(SymString{1, 1}, SymString{1, 2}),
               ContractViolation);
  EXPECT_THROW((void)ulam_distance(SymString{1, 2}, SymString{2, 2}),
               ContractViolation);
}

TEST(UlamFromMatchPoints, EquivalentToViews) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto p = planted_pair(40, 8, seed);
    const auto pts = match_points(p.a, p.b);
    EXPECT_EQ(ulam_from_match_points(pts, static_cast<std::int64_t>(p.a.size()),
                                     static_cast<std::int64_t>(p.b.size())),
              ulam_distance(p.a, p.b));
  }
}

TEST(BoundedUlam, ExactWithinCapNulloptBeyond) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto p = planted_pair(30, static_cast<std::int64_t>(seed % 12), seed);
    const auto exact = ulam_distance(p.a, p.b);
    const auto pts = match_points(p.a, p.b);
    const auto na = static_cast<std::int64_t>(p.a.size());
    const auto nb = static_cast<std::int64_t>(p.b.size());
    for (std::int64_t cap = 0; cap <= exact + 3; ++cap) {
      const auto d = bounded_ulam_from_match_points(pts, na, nb, cap);
      if (exact <= cap) {
        ASSERT_TRUE(d.has_value()) << "seed=" << seed << " cap=" << cap;
        EXPECT_EQ(*d, exact);
      } else {
        EXPECT_FALSE(d.has_value()) << "seed=" << seed << " cap=" << cap;
      }
    }
  }
}

TEST(LocalUlam, MatchesBruteForceOnSmallInputs) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto t = core::random_permutation(18, seed);
    // Block: a contiguous slice of a perturbed copy.
    const auto edited = core::plant_edits(t, static_cast<std::int64_t>(seed % 6),
                                          seed + 7, true)
                            .text;
    const std::int64_t from = static_cast<std::int64_t>(seed % 5);
    const std::int64_t len = 5 + static_cast<std::int64_t>(seed % 4);
    const SymView block = subview(edited, {from, from + len});

    const auto brute = local_ulam_bruteforce(block, t);
    const auto dense = local_ulam_dense(block, t);
    const auto sparse = local_ulam(block, t);
    ASSERT_EQ(dense.distance, brute.distance) << "seed=" << seed;
    ASSERT_EQ(sparse.distance, brute.distance) << "seed=" << seed;
    // The recovered window must achieve the reported distance.
    EXPECT_EQ(ulam_distance_dense(block, subview(t, sparse.window)),
              sparse.distance)
        << "seed=" << seed;
  }
}

TEST(LocalUlam, ExactSubstringIsFound) {
  const auto t = core::random_permutation(100, 5);
  const SymView block = subview(t, {37, 59});
  const auto result = local_ulam(block, t);
  EXPECT_EQ(result.distance, 0);
  EXPECT_EQ(ulam_distance(block, subview(t, result.window)), 0);
}

TEST(LocalUlam, NoCommonCharacters) {
  const SymString block{100, 101, 102};
  const auto t = core::random_permutation(20, 1);
  const auto result = local_ulam(block, t);
  EXPECT_EQ(result.distance, 3);  // delete everything
}

TEST(LocalUlam, LowerBoundsGlobalUlam) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto p = planted_pair(40, 10, seed);
    const SymView block = subview(p.a, {10, 25});
    const auto local = local_ulam(block, p.b);
    // lulam is min over substrings, so <= ulam(block, whole string).
    EXPECT_LE(local.distance, ulam_distance(block, p.b));
  }
}

// Parameterized sweep: sparse == dense == Wagner-Fischer over (n, edits).
class UlamSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(UlamSweep, AllEnginesAgree) {
  const auto [n, k] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto p = planted_pair(n, k, seed * 13 + static_cast<std::uint64_t>(n));
    const auto expected = edit_distance(p.a, p.b);
    ASSERT_EQ(ulam_distance(p.a, p.b), expected)
        << "n=" << n << " k=" << k << " seed=" << seed;
    ASSERT_EQ(ulam_distance_dense(p.a, p.b), expected)
        << "n=" << n << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEdits, UlamSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 3, 10, 50, 120, 250),
                       ::testing::Values<std::int64_t>(0, 1, 5, 25, 80)));

TEST(UlamAlignment, ChainIsValidAndCostsMatch) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto p = planted_pair(60, static_cast<std::int64_t>(seed % 20), seed);
    const auto exact = ulam_distance(p.a, p.b);
    const auto alignment = ulam_alignment(p.a, p.b);
    ASSERT_EQ(alignment.distance, exact) << "seed=" << seed;

    // Chain must be strictly increasing in both coordinates with matching
    // symbols, and its gap-cost decomposition must reproduce the distance.
    std::int64_t cost = 0;
    std::int64_t prev_p = -1;
    std::int64_t prev_q = -1;
    for (const MatchPoint& m : alignment.chain) {
      ASSERT_GT(m.p, prev_p);
      ASSERT_GT(m.q, prev_q);
      ASSERT_EQ(p.a[static_cast<std::size_t>(m.p)], p.b[static_cast<std::size_t>(m.q)]);
      if (prev_p < 0) {
        cost += std::max(m.p, m.q);
      } else {
        cost += std::max(m.p - prev_p - 1, m.q - prev_q - 1);
      }
      prev_p = m.p;
      prev_q = m.q;
    }
    const auto na = static_cast<std::int64_t>(p.a.size());
    const auto nb = static_cast<std::int64_t>(p.b.size());
    if (prev_p < 0) {
      cost = std::max(na, nb);
    } else {
      cost += std::max(na - 1 - prev_p, nb - 1 - prev_q);
    }
    ASSERT_EQ(cost, exact) << "seed=" << seed;
  }
}

TEST(UlamAlignment, IdenticalStringsKeepEverything) {
  const auto a = core::random_permutation(40, 3);
  const auto alignment = ulam_alignment(a, a);
  EXPECT_EQ(alignment.distance, 0);
  EXPECT_EQ(alignment.chain.size(), 40u);
}

TEST(Ulam, LargeSparseStressAgainstBanded) {
  // Large similar permutations: sparse Ulam vs exact banded edit distance.
  const auto a = core::random_permutation(5000, 11);
  const auto b = core::plant_edits(a, 60, 12, true).text;
  const auto expected = edit_distance_doubling(a, b);
  EXPECT_EQ(ulam_distance(a, b), expected);
}

}  // namespace
}  // namespace mpcsd::seq
