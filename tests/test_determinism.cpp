// Worker-count independence: the simulator's metered results are a pure
// function of (input, params, seed).  Running the same ulam/edit round
// plan with 1 worker and with N workers must produce the same distance and
// a byte-identical ExecutionTrace structural hash — any divergence means a
// machine body leaked schedule order into its output or metering.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/cpu.hpp"
#include "core/batch.hpp"
#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/backend.hpp"
#include "mpc/stats.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd {
namespace {

TEST(Determinism, UlamSolverTraceIndependentOfWorkerCount) {
  const auto s = core::random_permutation(600, 11);
  const auto t = core::plant_edits(s, 40, 12, true).text;
  auto run = [&](std::size_t workers) {
    ulam_mpc::UlamMpcParams params;
    params.workers = workers;
    return ulam_mpc::ulam_distance_mpc(s, t, params);
  };
  const auto serial = run(1);
  for (const std::size_t workers : {2ul, 5ul}) {
    const auto parallel = run(workers);
    EXPECT_EQ(parallel.distance, serial.distance) << workers << " workers";
    EXPECT_EQ(parallel.trace.structural_hash(), serial.trace.structural_hash())
        << workers << " workers";
  }
}

TEST(Determinism, EditSolverTraceIndependentOfWorkerCount) {
  const auto s = core::random_string(500, 10, 13);
  const auto t = core::plant_edits(s, 30, 14, false).text;
  auto run = [&](std::size_t workers) {
    edit_mpc::EditMpcParams params;
    params.workers = workers;
    return edit_mpc::edit_distance_mpc(s, t, params);
  };
  const auto serial = run(1);
  for (const std::size_t workers : {2ul, 5ul}) {
    const auto parallel = run(workers);
    EXPECT_EQ(parallel.distance, serial.distance) << workers << " workers";
    EXPECT_EQ(parallel.accepted_guess, serial.accepted_guess)
        << workers << " workers";
    EXPECT_EQ(parallel.trace.structural_hash(), serial.trace.structural_hash())
        << workers << " workers";
  }
}

TEST(Determinism, BatchThroughputTraceIndependentOfWorkerCount) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kUlam;
  request.mode = core::BatchMode::kThroughput;
  for (std::uint64_t q = 0; q < 4; ++q) {
    const auto s = core::random_permutation(250, 30 + q);
    core::BatchQuery query;
    query.s = s;
    query.t = core::plant_edits(s, 15, 40 + q, true).text;
    request.queries.push_back(std::move(query));
  }
  auto run = [&](std::size_t workers) {
    core::BatchRequest r = request;
    r.ulam.workers = workers;
    return core::distance_batch(r);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(parallel.queries.size(), serial.queries.size());
  for (std::size_t q = 0; q < serial.queries.size(); ++q) {
    EXPECT_EQ(parallel.queries[q].distance, serial.queries[q].distance) << q;
  }
  EXPECT_EQ(parallel.trace.structural_hash(), serial.trace.structural_hash());
}

TEST(Determinism, TraceHashIndependentOfIsaLevel) {
  // Kernel ISA dispatch (scalar / AVX2 / AVX-512, whichever the host has)
  // must be invisible to results and metering: every (ISA, worker-count)
  // combination of the same solve returns the same distance and a
  // byte-identical structural trace hash.  MPCSD_FORCE_ISA drives the same
  // clamp from the environment; CI's forced-scalar leg covers that spelling
  // of this invariant out-of-process.
  struct IsaGuard {
    Isa saved = active_isa();
    ~IsaGuard() { force_isa(saved); }
  } guard;

  const auto s = core::random_string(700, 8, 21);
  const auto t = core::plant_edits(s, 35, 22, false).text;
  auto run = [&](Isa level, std::size_t workers) {
    force_isa(level);
    edit_mpc::EditMpcParams params;
    params.workers = workers;
    return edit_mpc::edit_distance_mpc(s, t, params);
  };
  const auto base = run(Isa::kScalar, 1);
  for (const Isa level : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (force_isa(level) != level) continue;  // host lacks the level
    for (const std::size_t workers : {1ul, 2ul, 5ul}) {
      const auto r = run(level, workers);
      EXPECT_EQ(r.distance, base.distance)
          << isa_name(level) << " x " << workers << " workers";
      EXPECT_EQ(r.accepted_guess, base.accepted_guess)
          << isa_name(level) << " x " << workers << " workers";
      EXPECT_EQ(r.trace.structural_hash(), base.trace.structural_hash())
          << isa_name(level) << " x " << workers << " workers";
    }
  }
}

TEST(Determinism, UlamTraceHashIndependentOfIsaLevel) {
  struct IsaGuard {
    Isa saved = active_isa();
    ~IsaGuard() { force_isa(saved); }
  } guard;

  const auto s = core::random_permutation(600, 23);
  const auto t = core::plant_edits(s, 40, 24, true).text;
  force_isa(Isa::kScalar);
  ulam_mpc::UlamMpcParams params;
  params.workers = 3;
  const auto base = ulam_mpc::ulam_distance_mpc(s, t, params);
  for (const Isa level : {Isa::kAvx2, Isa::kAvx512}) {
    if (force_isa(level) != level) continue;
    const auto r = ulam_mpc::ulam_distance_mpc(s, t, params);
    EXPECT_EQ(r.distance, base.distance) << isa_name(level);
    EXPECT_EQ(r.trace.structural_hash(), base.trace.structural_hash())
        << isa_name(level);
  }
}

TEST(Determinism, UlamTraceHashIndependentOfExecutionBackend) {
  // The execution backend (thread pool, forked worker processes, or forked
  // workers streaming TCP frames) is an implementation detail of where
  // machine bodies run; the metered model — distance, per-round stats,
  // structural trace hash — must be byte-identical across
  // {thread, process, socket} x worker counts.
  const auto s = core::random_permutation(600, 61);
  const auto t = core::plant_edits(s, 40, 62, true).text;
  auto run = [&](mpc::BackendKind backend, std::size_t workers) {
    ulam_mpc::UlamMpcParams params;
    params.workers = workers;
    params.backend = backend;
    return ulam_mpc::ulam_distance_mpc(s, t, params);
  };
  const auto base = run(mpc::BackendKind::kThread, 1);
  for (const auto backend : {mpc::BackendKind::kThread,
                             mpc::BackendKind::kProcess,
                             mpc::BackendKind::kSocket}) {
    for (const std::size_t workers : {1ul, 2ul, 5ul}) {
      const auto r = run(backend, workers);
      EXPECT_EQ(r.distance, base.distance)
          << mpc::backend_kind_name(backend) << " x " << workers;
      EXPECT_EQ(r.trace.structural_hash(), base.trace.structural_hash())
          << mpc::backend_kind_name(backend) << " x " << workers;
    }
  }
}

TEST(Determinism, EditTraceHashIndependentOfExecutionBackend) {
  const auto s = core::random_string(500, 10, 63);
  const auto t = core::plant_edits(s, 30, 64, false).text;
  auto run = [&](mpc::BackendKind backend, std::size_t workers) {
    edit_mpc::EditMpcParams params;
    params.workers = workers;
    params.backend = backend;
    return edit_mpc::edit_distance_mpc(s, t, params);
  };
  const auto base = run(mpc::BackendKind::kThread, 1);
  for (const auto backend : {mpc::BackendKind::kThread,
                             mpc::BackendKind::kProcess,
                             mpc::BackendKind::kSocket}) {
    for (const std::size_t workers : {1ul, 2ul, 5ul}) {
      const auto r = run(backend, workers);
      EXPECT_EQ(r.distance, base.distance)
          << mpc::backend_kind_name(backend) << " x " << workers;
      EXPECT_EQ(r.accepted_guess, base.accepted_guess)
          << mpc::backend_kind_name(backend) << " x " << workers;
      EXPECT_EQ(r.trace.structural_hash(), base.trace.structural_hash())
          << mpc::backend_kind_name(backend) << " x " << workers;
    }
  }
}

TEST(Determinism, BatchTraceHashIndependentOfExecutionBackend) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kEdit;
  request.mode = core::BatchMode::kThroughput;
  for (std::uint64_t q = 0; q < 3; ++q) {
    const auto s = core::random_string(220, 6, 70 + q);
    core::BatchQuery query;
    query.s = s;
    query.t = core::plant_edits(s, 12, 80 + q, false).text;
    request.queries.push_back(std::move(query));
  }
  auto run = [&](mpc::BackendKind backend) {
    core::BatchRequest r = request;
    r.edit.workers = 3;
    r.edit.backend = backend;
    return core::distance_batch(r);
  };
  const auto threaded = run(mpc::BackendKind::kThread);
  for (const auto backend :
       {mpc::BackendKind::kProcess, mpc::BackendKind::kSocket}) {
    const auto isolated = run(backend);
    ASSERT_EQ(isolated.queries.size(), threaded.queries.size())
        << mpc::backend_kind_name(backend);
    for (std::size_t q = 0; q < threaded.queries.size(); ++q) {
      EXPECT_EQ(isolated.queries[q].distance, threaded.queries[q].distance)
          << mpc::backend_kind_name(backend) << " query " << q;
    }
    EXPECT_EQ(isolated.trace.structural_hash(),
              threaded.trace.structural_hash())
        << mpc::backend_kind_name(backend);
  }
}

TEST(Determinism, StructuralHashIgnoresWallClockOnly) {
  // Two identical runs hash identically even though wall-clock fields
  // differ between them; a different input hashes differently.
  const auto s = core::random_permutation(300, 50);
  const auto t = core::plant_edits(s, 20, 51, true).text;
  ulam_mpc::UlamMpcParams params;
  params.workers = 2;
  const auto a = ulam_mpc::ulam_distance_mpc(s, t, params);
  const auto b = ulam_mpc::ulam_distance_mpc(s, t, params);
  EXPECT_EQ(a.trace.structural_hash(), b.trace.structural_hash());
  const auto t2 = core::plant_edits(s, 21, 52, true).text;
  const auto c = ulam_mpc::ulam_distance_mpc(s, t2, params);
  EXPECT_NE(a.trace.structural_hash(), c.trace.structural_hash());
}

}  // namespace
}  // namespace mpcsd
