// Worker-count independence: the simulator's metered results are a pure
// function of (input, params, seed).  Running the same ulam/edit round
// plan with 1 worker and with N workers must produce the same distance and
// a byte-identical ExecutionTrace structural hash — any divergence means a
// machine body leaked schedule order into its output or metering.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/batch.hpp"
#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/stats.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd {
namespace {

TEST(Determinism, UlamSolverTraceIndependentOfWorkerCount) {
  const auto s = core::random_permutation(600, 11);
  const auto t = core::plant_edits(s, 40, 12, true).text;
  auto run = [&](std::size_t workers) {
    ulam_mpc::UlamMpcParams params;
    params.workers = workers;
    return ulam_mpc::ulam_distance_mpc(s, t, params);
  };
  const auto serial = run(1);
  for (const std::size_t workers : {2ul, 5ul}) {
    const auto parallel = run(workers);
    EXPECT_EQ(parallel.distance, serial.distance) << workers << " workers";
    EXPECT_EQ(parallel.trace.structural_hash(), serial.trace.structural_hash())
        << workers << " workers";
  }
}

TEST(Determinism, EditSolverTraceIndependentOfWorkerCount) {
  const auto s = core::random_string(500, 10, 13);
  const auto t = core::plant_edits(s, 30, 14, false).text;
  auto run = [&](std::size_t workers) {
    edit_mpc::EditMpcParams params;
    params.workers = workers;
    return edit_mpc::edit_distance_mpc(s, t, params);
  };
  const auto serial = run(1);
  for (const std::size_t workers : {2ul, 5ul}) {
    const auto parallel = run(workers);
    EXPECT_EQ(parallel.distance, serial.distance) << workers << " workers";
    EXPECT_EQ(parallel.accepted_guess, serial.accepted_guess)
        << workers << " workers";
    EXPECT_EQ(parallel.trace.structural_hash(), serial.trace.structural_hash())
        << workers << " workers";
  }
}

TEST(Determinism, BatchThroughputTraceIndependentOfWorkerCount) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kUlam;
  request.mode = core::BatchMode::kThroughput;
  for (std::uint64_t q = 0; q < 4; ++q) {
    const auto s = core::random_permutation(250, 30 + q);
    core::BatchQuery query;
    query.s = s;
    query.t = core::plant_edits(s, 15, 40 + q, true).text;
    request.queries.push_back(std::move(query));
  }
  auto run = [&](std::size_t workers) {
    core::BatchRequest r = request;
    r.ulam.workers = workers;
    return core::distance_batch(r);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(parallel.queries.size(), serial.queries.size());
  for (std::size_t q = 0; q < serial.queries.size(); ++q) {
    EXPECT_EQ(parallel.queries[q].distance, serial.queries[q].distance) << q;
  }
  EXPECT_EQ(parallel.trace.structural_hash(), serial.trace.structural_hash());
}

TEST(Determinism, StructuralHashIgnoresWallClockOnly) {
  // Two identical runs hash identically even though wall-clock fields
  // differ between them; a different input hashes differently.
  const auto s = core::random_permutation(300, 50);
  const auto t = core::plant_edits(s, 20, 51, true).text;
  ulam_mpc::UlamMpcParams params;
  params.workers = 2;
  const auto a = ulam_mpc::ulam_distance_mpc(s, t, params);
  const auto b = ulam_mpc::ulam_distance_mpc(s, t, params);
  EXPECT_EQ(a.trace.structural_hash(), b.trace.structural_hash());
  const auto t2 = core::plant_edits(s, 21, 52, true).text;
  const auto c = ulam_mpc::ulam_distance_mpc(s, t2, params);
  EXPECT_NE(a.trace.structural_hash(), c.trace.structural_hash());
}

}  // namespace
}  // namespace mpcsd
