// Workload generators: determinism, planted-edit distance bounds, and the
// repeat-free invariant for Ulam inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/lis.hpp"

namespace mpcsd::core {
namespace {

TEST(Workload, RandomStringDeterministicAndInRange) {
  const auto a = random_string(500, 4, 7);
  const auto b = random_string(500, 4, 7);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(), [](Symbol v) { return v >= 0 && v < 4; }));
  EXPECT_NE(a, random_string(500, 4, 8));
}

TEST(Workload, RandomPermutationIsPermutation) {
  const auto p = random_permutation(300, 3);
  std::set<Symbol> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 299);
}

TEST(Workload, PlantedEditsBoundDistance) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto base = random_string(150, 4, seed);
    const std::int64_t k = static_cast<std::int64_t>(seed % 30);
    const auto planted = plant_edits(base, k, seed, false);
    EXPECT_EQ(planted.edits_applied, k);
    EXPECT_LE(seq::edit_distance(base, planted.text), k) << "seed=" << seed;
  }
}

TEST(Workload, PlantedEditsRepeatFreePreservesInvariant) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto base = random_permutation(200, seed);
    const auto planted = plant_edits(base, 40, seed + 1, true);
    EXPECT_TRUE(seq::is_repeat_free(planted.text)) << "seed=" << seed;
  }
}

TEST(Workload, PlantedZeroEditsIsIdentity) {
  const auto base = random_permutation(50, 1);
  const auto planted = plant_edits(base, 0, 2, true);
  EXPECT_EQ(planted.text, base);
  EXPECT_EQ(planted.edits_applied, 0);
}

TEST(Workload, DnaAlphabet) {
  const auto d = random_dna(1000, 5);
  EXPECT_TRUE(std::all_of(d.begin(), d.end(), [](Symbol v) { return v >= 0 && v < 4; }));
}

TEST(Workload, BlockShufflePreservesMultiset) {
  const auto base = random_string(100, 6, 9);
  const auto shuffled = block_shuffle(base, 13, 10);
  ASSERT_EQ(shuffled.size(), base.size());
  auto a = base;
  auto b = shuffled;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Workload, BlockShuffleOfPermutationStaysRepeatFree) {
  const auto base = random_permutation(128, 11);
  const auto shuffled = block_shuffle(base, 16, 12);
  EXPECT_TRUE(seq::is_repeat_free(shuffled));
}

TEST(Workload, BlockShuffleUsuallyMovesBlocksFar) {
  const auto base = random_permutation(1000, 13);
  const auto shuffled = block_shuffle(base, 100, 14);
  EXPECT_GT(seq::edit_distance(base, shuffled), 100);
}

}  // namespace
}  // namespace mpcsd::core
