// LIS / LCS engines and the repeat-free fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/workload.hpp"
#include "seq/lis.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

TEST(Lis, KnownValues) {
  EXPECT_EQ(lis_length(SymString{}), 0);
  EXPECT_EQ(lis_length(SymString{5}), 1);
  EXPECT_EQ(lis_length(SymString{1, 2, 3, 4}), 4);
  EXPECT_EQ(lis_length(SymString{4, 3, 2, 1}), 1);
  EXPECT_EQ(lis_length(SymString{3, 1, 4, 1, 5, 9, 2, 6}), 4);  // 1 4 5 6 / 3 4 5 9...
  EXPECT_EQ(lis_length(SymString{2, 2, 2}), 1);                 // strict
}

std::int64_t lis_bruteforce(SymView v) {
  const auto n = v.size();
  std::vector<std::int64_t> dp(n, 1);
  std::int64_t best = n == 0 ? 0 : 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (v[j] < v[i]) dp[i] = std::max(dp[i], dp[j] + 1);
    }
    best = std::max(best, dp[i]);
  }
  return best;
}

TEST(Lis, MatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto v = core::random_string(40, 16, seed);
    ASSERT_EQ(lis_length(v), lis_bruteforce(v)) << "seed=" << seed;
  }
}

TEST(Lcs, KnownValues) {
  EXPECT_EQ(lcs_length(to_symbols("abcde"), to_symbols("ace")), 3);
  EXPECT_EQ(lcs_length(to_symbols("abc"), to_symbols("def")), 0);
  EXPECT_EQ(lcs_length(to_symbols(""), to_symbols("abc")), 0);
}

TEST(Lcs, RepeatFreeFastPathMatchesDp) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto a = core::random_permutation(60, seed);
    const auto b = core::random_permutation(60, seed + 99);
    ASSERT_EQ(lcs_length_repeat_free(a, b), lcs_length(a, b)) << "seed=" << seed;
  }
}

TEST(Lcs, RepeatFreeDifferentAlphabets) {
  // b has symbols a doesn't and vice versa.
  SymString a{1, 3, 5, 7, 9};
  SymString b{9, 2, 3, 4, 5};
  EXPECT_EQ(lcs_length_repeat_free(a, b), lcs_length(a, b));
}

TEST(RepeatFree, Detection) {
  EXPECT_TRUE(is_repeat_free(SymString{}));
  EXPECT_TRUE(is_repeat_free(SymString{1, 2, 3}));
  EXPECT_FALSE(is_repeat_free(SymString{1, 2, 1}));
  EXPECT_TRUE(is_repeat_free(core::random_permutation(1000, 3)));
}

TEST(IndelDistance, SandwichesUlamDistance) {
  // Indel-only distance >= ulam distance (substitutions replace an
  // insert+delete pair) and <= 2 * ulam distance.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = core::random_permutation(80, seed);
    const auto b = core::plant_edits(a, 15, seed + 5, true).text;
    const auto indel = indel_distance_repeat_free(a, b);
    // ulam == edit distance; use the LCS identity directly as oracle.
    const auto lcs = lcs_length(a, b);
    ASSERT_EQ(indel,
              static_cast<std::int64_t>(a.size() + b.size()) - 2 * lcs);
    ASSERT_GE(indel, 0);
  }
}

TEST(IndelDistance, DisjointAndEqual) {
  const auto a = core::random_permutation(30, 1);
  EXPECT_EQ(indel_distance_repeat_free(a, a), 0);
  SymString b(30);
  for (int i = 0; i < 30; ++i) b[static_cast<std::size_t>(i)] = 1000 + i;
  EXPECT_EQ(indel_distance_repeat_free(a, b), 60);
}

TEST(Lis, PermutationDuality) {
  // For a permutation, LIS(p) + LIS(reverse-order view) relates to n only
  // loosely, but LIS of the identity is n and of its reverse is 1.
  SymString id(50);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_EQ(lis_length(id), 50);
  std::reverse(id.begin(), id.end());
  EXPECT_EQ(lis_length(id), 1);
}

}  // namespace
}  // namespace mpcsd::seq
