// Theorem 4 end-to-end: the two-round Ulam MPC pipeline sandwiches the
// exact distance (validity + 1+eps quality), respects the round budget and
// the per-machine memory cap, and is deterministic.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd::ulam_mpc {
namespace {

struct Workload {
  SymString s;
  SymString t;
  std::int64_t exact = 0;
};

Workload planted(std::int64_t n, std::int64_t k, std::uint64_t seed) {
  Workload w;
  w.s = core::random_permutation(n, seed);
  w.t = core::plant_edits(w.s, k, seed + 1, true).text;
  w.exact = seq::ulam_distance(w.s, w.t);
  return w;
}

TEST(UlamMpc, IdenticalStrings) {
  const auto s = core::random_permutation(500, 1);
  UlamMpcParams params;
  const auto result = ulam_distance_mpc(s, s, params);
  EXPECT_EQ(result.distance, 0);
}

TEST(UlamMpc, EmptyString) {
  const auto t = core::random_permutation(10, 2);
  EXPECT_EQ(ulam_distance_mpc(SymString{}, t).distance, 10);
}

TEST(UlamMpc, TwoRoundsAlways) {
  const auto w = planted(400, 20, 3);
  const auto result = ulam_distance_mpc(w.s, w.t);
  EXPECT_EQ(result.trace.round_count(), 2u);
}

class UlamMpcSandwich
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, double>> {};

TEST_P(UlamMpcSandwich, ValidAndWithinFactor) {
  const auto [n, k, eps] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto w = planted(n, k, seed * 31 + static_cast<std::uint64_t>(n + k));
    UlamMpcParams params;
    params.epsilon = eps;
    params.x = 1.0 / 3;
    params.seed = seed;
    const auto result = ulam_distance_mpc(w.s, w.t, params);
    ASSERT_GE(result.distance, w.exact)
        << "n=" << n << " k=" << k << " eps=" << eps << " seed=" << seed;
    ASSERT_LE(static_cast<double>(result.distance),
              (1.0 + eps) * static_cast<double>(w.exact) + 2.0)
        << "n=" << n << " k=" << k << " eps=" << eps << " seed=" << seed
        << " exact=" << w.exact;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesEditsEpsilons, UlamMpcSandwich,
    ::testing::Combine(::testing::Values<std::int64_t>(100, 500, 2000),
                       ::testing::Values<std::int64_t>(0, 3, 25, 150),
                       ::testing::Values(0.5, 1.0)));

TEST(UlamMpc, HighDistanceRegime) {
  // Completely unrelated permutations: distance ~ n.
  const auto s = core::random_permutation(600, 5);
  const auto t = core::random_permutation(600, 999);
  const auto exact = seq::ulam_distance(s, t);
  UlamMpcParams params;
  params.epsilon = 0.5;
  const auto result = ulam_distance_mpc(s, t, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance), 1.5 * static_cast<double>(exact) + 2.0);
}

TEST(UlamMpc, BlockShuffleAdversarial) {
  const auto s = core::random_permutation(800, 6);
  const auto t = core::block_shuffle(s, 100, 7);
  const auto exact = seq::ulam_distance(s, t);
  UlamMpcParams params;
  params.epsilon = 0.5;
  const auto result = ulam_distance_mpc(s, t, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance), 1.5 * static_cast<double>(exact) + 2.0);
}

TEST(UlamMpc, DeterministicGivenSeed) {
  const auto w = planted(700, 40, 8);
  UlamMpcParams params;
  params.seed = 12345;
  const auto r1 = ulam_distance_mpc(w.s, w.t, params);
  const auto r2 = ulam_distance_mpc(w.s, w.t, params);
  EXPECT_EQ(r1.distance, r2.distance);
  EXPECT_EQ(r1.tuple_count, r2.tuple_count);
}

TEST(UlamMpc, MemoryCapRespected) {
  const auto w = planted(2000, 60, 9);
  UlamMpcParams params;
  params.x = 1.0 / 3;
  params.strict_memory = true;  // throws on violation
  const auto result = ulam_distance_mpc(w.s, w.t, params);
  EXPECT_EQ(result.trace.memory_violations(), 0u);
}

TEST(UlamMpc, MemoryCapScalesAsNPowOneMinusX) {
  // The cap formula must be Õ(n^{1-x}): growing n by 16x grows the cap by
  // ~16^{1-x} up to a logarithmic factor.
  UlamMpcParams params;
  params.x = 1.0 / 3;
  const double c1 = static_cast<double>(ulam_memory_cap_bytes(4000, params));
  const double c2 = static_cast<double>(ulam_memory_cap_bytes(64000, params));
  const double growth = c2 / c1;
  const double ideal = std::pow(16.0, 1.0 - params.x);
  EXPECT_GT(growth, ideal * 0.8);
  EXPECT_LT(growth, ideal * 1.6);  // log slack
}

TEST(UlamMpc, MachineCountMatchesBlockCount) {
  const auto w = planted(1000, 10, 10);
  UlamMpcParams params;
  params.x = 0.4;
  const auto result = ulam_distance_mpc(w.s, w.t, params);
  EXPECT_EQ(result.trace.rounds()[0].machines, result.block_count);
  EXPECT_EQ(result.trace.rounds()[1].machines, 1u);
}

TEST(UlamMpc, KeepTuplesReturnsRound1Output) {
  const auto w = planted(300, 15, 11);
  UlamMpcParams params;
  params.keep_tuples = true;
  const auto result = ulam_distance_mpc(w.s, w.t, params);
  EXPECT_EQ(result.tuples.size(), result.tuple_count);
  EXPECT_GT(result.tuple_count, 0u);
}

TEST(UlamMpc, InModelPositionMapAgrees) {
  // Running the position map as an in-model hash join adds two rounds but
  // must not change the answer.
  const auto w = planted(600, 30, 21);
  UlamMpcParams driver_side;
  driver_side.seed = 5;
  UlamMpcParams in_model = driver_side;
  in_model.in_model_position_map = true;
  const auto r1 = ulam_distance_mpc(w.s, w.t, driver_side);
  const auto r2 = ulam_distance_mpc(w.s, w.t, in_model);
  EXPECT_EQ(r1.distance, r2.distance);
  EXPECT_EQ(r1.trace.round_count(), 2u);
  EXPECT_EQ(r2.trace.round_count(), 4u);
}

TEST(UlamMpc, DifferentLengthInputs) {
  // 100 deletions only: |t| = |s| - 100.
  auto s = core::random_permutation(900, 12);
  SymString t(s.begin() + 50, s.end() - 50);
  const auto exact = seq::ulam_distance(s, t);
  ASSERT_EQ(exact, 100);
  const auto result = ulam_distance_mpc(s, t);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance), 1.5 * 100.0 + 2.0);
}

}  // namespace
}  // namespace mpcsd::ulam_mpc
