// Hirschberg alignment: optimal cost, valid scripts, monotone cuts, and the
// Fig. 1 partition structure of block images.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "seq/alignment.hpp"
#include "seq/edit_distance.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

TEST(Alignment, ScriptCostEqualsEditDistance) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto n = 5 + static_cast<std::int64_t>(seed * 7);
    const auto a = core::random_string(n, 4, seed);
    const auto b = core::random_string(n + static_cast<std::int64_t>(seed % 9) - 4, 4,
                                       seed + 200);
    const auto script = edit_script(a, b);
    ASSERT_EQ(script_cost(script), edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(Alignment, ScriptReplaysToTarget) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = core::random_string(30, 3, seed);
    const auto b = core::random_string(35, 3, seed + 500);
    const auto script = edit_script(a, b);
    // Replay the script on a and check we produce b.
    SymString out;
    std::size_t i = 0;
    std::size_t j = 0;
    for (const EditOp op : script) {
      switch (op) {
        case EditOp::kMatch:
          ASSERT_EQ(a[i], b[j]);
          out.push_back(a[i]);
          ++i;
          ++j;
          break;
        case EditOp::kSubstitute:
          out.push_back(b[j]);
          ++i;
          ++j;
          break;
        case EditOp::kDelete:
          ++i;
          break;
        case EditOp::kInsert:
          out.push_back(b[j]);
          ++j;
          break;
      }
    }
    ASSERT_EQ(out, b) << "seed=" << seed;
  }
}

TEST(Alignment, EmptyCases) {
  EXPECT_TRUE(edit_script(SymString{}, SymString{}).empty());
  EXPECT_EQ(script_cost(edit_script(to_symbols("abc"), SymString{})), 3);
  EXPECT_EQ(script_cost(edit_script(SymString{}, to_symbols("xy"))), 2);
}

TEST(Alignment, CutsAreMonotoneAndComplete) {
  const auto a = core::random_string(50, 4, 3);
  const auto b = core::random_string(64, 4, 4);
  const auto script = edit_script(a, b);
  const auto cuts = alignment_cuts(script, 50, 64);
  ASSERT_EQ(cuts.size(), 51u);
  EXPECT_EQ(cuts.front(), 0);
  EXPECT_EQ(cuts.back(), 64);
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
}

TEST(Alignment, BlockImagesPartitionTarget) {
  // Fig. 1: the images of consecutive blocks of s partition s̄.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto s = core::random_string(120, 4, seed);
    const auto t = core::plant_edits(s, 15, seed + 9, false).text;
    const auto blocks = edit_mpc::make_blocks(120, 30);
    const auto images = block_images(s, t, blocks);
    ASSERT_EQ(images.size(), blocks.size());
    EXPECT_EQ(images.front().begin, 0);
    EXPECT_EQ(images.back().end, static_cast<std::int64_t>(t.size()));
    for (std::size_t i = 1; i < images.size(); ++i) {
      ASSERT_EQ(images[i].begin, images[i - 1].end) << "seed=" << seed;
    }
  }
}

TEST(Alignment, BlockImageDistancesSumToTotal) {
  // Sum over blocks of ed(block, image) <= total distance (the per-block
  // decomposition the paper's analysis uses).
  const auto s = core::random_string(200, 4, 5);
  const auto t = core::plant_edits(s, 25, 6, false).text;
  const auto blocks = edit_mpc::make_blocks(200, 40);
  const auto images = block_images(s, t, blocks);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    total += edit_distance(subview(s, blocks[i]), subview(t, images[i]));
  }
  EXPECT_LE(total, edit_distance(s, t));
  EXPECT_GE(total, 0);
}

TEST(Alignment, IdenticalStringsGiveAllMatches) {
  const auto a = core::random_string(40, 4, 1);
  const auto script = edit_script(a, a);
  EXPECT_EQ(script_cost(script), 0);
  EXPECT_EQ(script.size(), 40u);
}

}  // namespace
}  // namespace mpcsd::seq
