// Robustness and integration: scheduler independence (answers must not
// depend on the thread-pool size), moderate-scale runs, and the extended
// workload families pushed through both solvers end-to-end.
#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "seq/edit_distance.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd {
namespace {

TEST(Robustness, UlamAnswerIndependentOfWorkerCount) {
  const auto s = core::random_permutation(1500, 1);
  const auto t = core::plant_edits(s, 80, 2, true).text;
  std::int64_t reference = -1;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ulam_mpc::UlamMpcParams params;
    params.workers = workers;
    params.seed = 99;
    const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);
    if (reference < 0) reference = result.distance;
    ASSERT_EQ(result.distance, reference) << "workers=" << workers;
  }
}

TEST(Robustness, EditAnswerIndependentOfWorkerCount) {
  const auto s = core::random_string(700, 4, 3);
  const auto t = core::plant_edits(s, 30, 4, false).text;
  std::int64_t reference = -1;
  for (const std::size_t workers : {1u, 3u}) {
    edit_mpc::EditMpcParams params;
    params.workers = workers;
    params.seed = 17;
    const auto result = edit_mpc::edit_distance_mpc(s, t, params);
    if (reference < 0) reference = result.distance;
    ASSERT_EQ(result.distance, reference) << "workers=" << workers;
  }
}

TEST(Robustness, UlamAtScale) {
  // n = 100k: near-linear total work makes this comfortably fast.
  const std::int64_t n = 100000;
  const auto s = core::random_permutation(n, 5);
  const auto t = core::plant_edits(s, 1000, 6, true).text;
  ulam_mpc::UlamMpcParams params;
  params.x = 1.0 / 3;
  const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);
  const auto exact = seq::ulam_distance(s, t);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance), 1.5 * static_cast<double>(exact) + 2);
  EXPECT_EQ(result.trace.round_count(), 2u);
  EXPECT_EQ(result.trace.memory_violations(), 0u);
}

TEST(Robustness, ZipfTextThroughEditSolver) {
  // Repetitive (natural-language-like) inputs are the adversarial case for
  // alignment heuristics; validity and the factor must still hold.
  const auto s = core::zipf_text(800, 50, 1.1, 7);
  const auto t = core::plant_edits(s, 40, 8, false, 50).text;
  const auto exact = seq::edit_distance(s, t);
  edit_mpc::EditMpcParams params;
  params.unit = edit_mpc::DistanceUnit::kApprox3;
  const auto result = edit_mpc::edit_distance_mpc(s, t, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance),
            4.0 * static_cast<double>(exact) + 8.0);
}

TEST(Robustness, BurstEditsThroughUlamSolver) {
  const auto s = core::random_permutation(2000, 9);
  const auto burst = core::burst_edits(s, 3, 30, 10, true);
  const auto exact = seq::ulam_distance(s, burst.text);
  ulam_mpc::UlamMpcParams params;
  params.epsilon = 0.5;
  const auto result = ulam_mpc::ulam_distance_mpc(s, burst.text, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance), 1.5 * static_cast<double>(exact) + 2);
}

TEST(Robustness, RotationThroughUlamSolver) {
  // Rotation: every block far from home, zero character changes — the
  // hitting-set path must anchor everything.
  const auto s = core::random_permutation(3000, 11);
  const auto t = core::rotate_by(s, 700);
  const auto exact = seq::ulam_distance(s, t);
  ulam_mpc::UlamMpcParams params;
  params.epsilon = 0.5;
  const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance), 1.5 * static_cast<double>(exact) + 2);
}

TEST(Robustness, ExtremeEpsilonValues) {
  const auto s = core::random_permutation(500, 13);
  const auto t = core::plant_edits(s, 25, 14, true).text;
  const auto exact = seq::ulam_distance(s, t);
  for (const double eps : {0.1, 2.0, 8.0}) {
    ulam_mpc::UlamMpcParams params;
    params.epsilon = eps;
    const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);
    ASSERT_GE(result.distance, exact) << "eps=" << eps;
    ASSERT_LE(static_cast<double>(result.distance),
              (1.0 + eps) * static_cast<double>(exact) + 2.0)
        << "eps=" << eps;
  }
}

TEST(Robustness, TinyInputsThroughBothSolvers) {
  for (std::int64_t n = 1; n <= 6; ++n) {
    const auto s = core::random_permutation(n, static_cast<std::uint64_t>(n));
    const auto t = core::random_permutation(n, static_cast<std::uint64_t>(n) + 50);
    const auto ulam_exact = seq::ulam_distance(s, t);
    const auto r1 = ulam_mpc::ulam_distance_mpc(s, t);
    ASSERT_GE(r1.distance, ulam_exact) << "n=" << n;

    const auto ed_exact = seq::edit_distance(s, t);
    const auto r2 = edit_mpc::edit_distance_mpc(s, t);
    ASSERT_GE(r2.distance, ed_exact) << "n=" << n;
    ASSERT_LE(r2.distance, 2 * n);
  }
}

}  // namespace
}  // namespace mpcsd
