// Parameterized sweeps across the memory exponent x and workload families
// for both MPC solvers — the knobs of Table 1, exercised as tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/primitives.hpp"
#include "seq/edit_distance.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd {
namespace {

enum class Family { kPlanted, kRotated, kShuffled, kIndependent };

SymString make_partner(const SymString& s, Family family, std::uint64_t seed,
                       bool repeat_free) {
  const auto n = static_cast<std::int64_t>(s.size());
  switch (family) {
    case Family::kPlanted:
      return core::plant_edits(s, n / 25, seed, repeat_free).text;
    case Family::kRotated:
      return core::rotate_by(s, n / 5);
    case Family::kShuffled:
      return core::block_shuffle(s, n / 8, seed);
    case Family::kIndependent:
      return repeat_free ? core::random_permutation(n, seed + 777)
                         : core::random_string(n, 4, seed + 777);
  }
  return {};
}

class UlamXSweep : public ::testing::TestWithParam<std::tuple<double, Family>> {};

TEST_P(UlamXSweep, SandwichHoldsForEveryExponentAndFamily) {
  const auto [x, family] = GetParam();
  const std::int64_t n = 900;
  const auto s = core::random_permutation(n, 3);
  const auto t = make_partner(s, family, 4, /*repeat_free=*/true);
  const auto exact = seq::ulam_distance(s, t);

  ulam_mpc::UlamMpcParams params;
  params.x = x;
  params.epsilon = 0.5;
  const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);
  ASSERT_GE(result.distance, exact);
  ASSERT_LE(static_cast<double>(result.distance),
            1.5 * static_cast<double>(exact) + 2.0)
      << "x=" << x << " family=" << static_cast<int>(family);
  EXPECT_EQ(result.trace.round_count(), 2u);
  // Block size must track n^{1-x}.
  EXPECT_NEAR(static_cast<double>(result.block_size),
              std::pow(static_cast<double>(n), 1.0 - x), 2.0 + 0.02 * result.block_size);
}

INSTANTIATE_TEST_SUITE_P(
    ExponentsAndFamilies, UlamXSweep,
    ::testing::Combine(::testing::Values(0.2, 1.0 / 3, 0.45),
                       ::testing::Values(Family::kPlanted, Family::kRotated,
                                         Family::kShuffled, Family::kIndependent)));

class EditXSweep : public ::testing::TestWithParam<std::tuple<double, Family>> {};

TEST_P(EditXSweep, ValidityAndFactorForEveryExponentAndFamily) {
  const auto [x, family] = GetParam();
  const std::int64_t n = 600;
  const auto s = core::random_string(n, 4, 5);
  const auto t = make_partner(s, family, 6, /*repeat_free=*/false);
  const auto exact = seq::edit_distance(s, t);

  edit_mpc::EditMpcParams params;
  params.x = x;
  params.epsilon = 1.0;
  params.unit = edit_mpc::DistanceUnit::kExactBanded;
  const auto result = edit_mpc::edit_distance_mpc(s, t, params);
  ASSERT_GE(result.distance, exact)
      << "x=" << x << " family=" << static_cast<int>(family);
  ASSERT_LE(static_cast<double>(result.distance),
            4.0 * static_cast<double>(exact) + 4.0)
      << "x=" << x << " family=" << static_cast<int>(family);
  EXPECT_LE(result.trace.round_count(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    ExponentsAndFamilies, EditXSweep,
    ::testing::Combine(::testing::Values(0.2, 0.25, 5.0 / 17),
                       ::testing::Values(Family::kPlanted, Family::kRotated,
                                         Family::kShuffled, Family::kIndependent)));

class PrimitiveSweep : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PrimitiveSweep, SortCorrectAtEveryScaleAndMachineCount) {
  const auto [machines, size_class] = GetParam();
  const std::size_t n = size_class == 0 ? 10 : (size_class == 1 ? 500 : 8000);
  mpc::Cluster cluster(mpc::ClusterConfig{});
  std::vector<mpc::KeyValue> records;
  Pcg32 rng = derive_stream(machines, static_cast<std::uint64_t>(size_class));
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back({rng.uniform(-50, 50), static_cast<std::int64_t>(i)});
  }
  auto expected = records;
  std::sort(expected.begin(), expected.end(),
            [](const mpc::KeyValue& a, const mpc::KeyValue& b) {
              return a.key != b.key ? a.key < b.key : a.value < b.value;
            });
  EXPECT_EQ(mpc_sort(cluster, records, machines).records, expected)
      << "machines=" << machines << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    MachinesAndSizes, PrimitiveSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 16),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace mpcsd
