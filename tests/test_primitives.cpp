// MPC one-round primitives: TeraSort-style sort, hash join, and the Ulam
// position-map round, all executed through the simulator with metering.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "mpc/primitives.hpp"

namespace mpcsd::mpc {
namespace {

std::vector<KeyValue> random_records(std::size_t n, std::uint64_t seed) {
  Pcg32 rng = derive_stream(seed, 0x50F7);
  std::vector<KeyValue> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(KeyValue{rng.uniform(-1000, 1000), static_cast<std::int64_t>(i)});
  }
  return out;
}

TEST(MpcSort, SortsAndUsesFourRounds) {
  Cluster cluster(ClusterConfig{});
  auto records = random_records(5000, 1);
  auto expected = records;
  std::sort(expected.begin(), expected.end(), [](const KeyValue& a, const KeyValue& b) {
    return a.key != b.key ? a.key < b.key : a.value < b.value;
  });
  const auto result = mpc_sort(cluster, records, 8);
  EXPECT_EQ(result.records, expected);
  EXPECT_EQ(cluster.trace().round_count(), 4u);
}

TEST(MpcSort, EmptyAndSingleton) {
  Cluster cluster(ClusterConfig{});
  EXPECT_TRUE(mpc_sort(cluster, {}, 4).records.empty());
  const std::vector<KeyValue> one{{7, 0}};
  EXPECT_EQ(mpc_sort(cluster, one, 4).records, one);
}

TEST(MpcSort, BalancedPartitionsKeepMemoryLow) {
  // With sampled splitters, no partition machine should hold much more
  // than n/machines records whp.
  Cluster cluster(ClusterConfig{});
  auto records = random_records(20000, 2);
  (void)mpc_sort(cluster, records, 16);
  const auto& rounds = cluster.trace().rounds();
  ASSERT_EQ(rounds.size(), 4u);
  const auto per_machine_bytes = 20000 * sizeof(KeyValue) / 16;
  EXPECT_LT(rounds[3].max_machine_memory, 8 * per_machine_bytes);
}

TEST(MpcSort, DeterministicGivenSeed) {
  auto run = [] {
    Cluster cluster(ClusterConfig{.memory_limit_bytes = UINT64_MAX,
                                  .strict_memory = false,
                                  .workers = 3,
                                  .seed = 99});
    return mpc_sort(cluster, random_records(3000, 3), 8).records;
  };
  EXPECT_EQ(run(), run());
}

TEST(MpcHashJoin, MatchesReferenceJoin) {
  Cluster cluster(ClusterConfig{});
  std::vector<KeyValue> left;
  std::vector<KeyValue> right;
  for (std::int64_t i = 0; i < 500; ++i) left.push_back({i % 97, i});
  for (std::int64_t k = 0; k < 97; k += 2) right.push_back({k, 1000 + k});

  auto joined = mpc_hash_join(cluster, left, right, 8);
  std::unordered_map<std::int64_t, std::int64_t> rmap;
  for (const auto& kv : right) rmap.emplace(kv.key, kv.value);
  std::size_t expected = 0;
  for (const auto& kv : left) expected += rmap.count(kv.key);
  EXPECT_EQ(joined.size(), expected);
  for (const auto& j : joined) {
    EXPECT_EQ(j.right_value, rmap.at(j.key));
  }
  EXPECT_EQ(cluster.trace().round_count(), 2u);
}

TEST(MpcHashJoin, NoMatches) {
  Cluster cluster(ClusterConfig{});
  const std::vector<KeyValue> left{{1, 0}, {2, 1}};
  const std::vector<KeyValue> right{{5, 9}};
  EXPECT_TRUE(mpc_hash_join(cluster, left, right, 4).empty());
}

TEST(PositionMap, MatchesDirectComputation) {
  const auto s = core::random_permutation(800, 4);
  const auto t = core::plant_edits(s, 50, 5, true).text;
  Cluster cluster(ClusterConfig{});
  const auto positions = position_map_round(cluster, s, t, 8);
  ASSERT_EQ(positions.size(), s.size());
  std::unordered_map<Symbol, std::int64_t> expected;
  for (std::size_t j = 0; j < t.size(); ++j) expected.emplace(t[j], static_cast<std::int64_t>(j));
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto it = expected.find(s[i]);
    EXPECT_EQ(positions[i], it == expected.end() ? -1 : it->second) << "i=" << i;
  }
}

TEST(PositionMap, AllMissing) {
  SymString s{100, 101, 102};
  const auto t = core::random_permutation(50, 1);
  Cluster cluster(ClusterConfig{});
  const auto positions = position_map_round(cluster, s, t, 4);
  EXPECT_EQ(positions, (std::vector<std::int64_t>{-1, -1, -1}));
}

}  // namespace
}  // namespace mpcsd::mpc
