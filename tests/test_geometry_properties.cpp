// Property tests for the candidate geometry and threshold encoding — the
// combinatorial backbone of Theorem 9's machine counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "edit_mpc/candidates.hpp"
#include "edit_mpc/graph_tau.hpp"

namespace mpcsd::edit_mpc {
namespace {

CandidateGeometry geo(std::int64_t n, std::int64_t block, std::int64_t guess,
                      double eps = 0.2) {
  CandidateGeometry g;
  g.eps_prime = eps;
  g.n = n;
  g.n_bar = n;
  g.block_size = block;
  g.delta_guess = guess;
  return g;
}

TEST(GeometryProperties, GapMonotoneInGuess) {
  std::int64_t prev = 0;
  for (const std::int64_t guess : {10, 100, 1000, 5000}) {
    const auto g = start_gap(geo(10000, 1000, guess));
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(GeometryProperties, StartCountRoughlyInvariantInGuess) {
  // starts ~ 2*guess/G with G ~ eps*guess*B/n: the guess cancels, so the
  // count stays ~2n/(eps*B) once G > 1.
  const std::int64_t n = 100000;
  const std::int64_t b = 10000;
  std::vector<std::size_t> counts;
  for (const std::int64_t guess : {10000, 20000, 40000}) {
    counts.push_back(candidate_starts(n / 2, geo(n, b, guess)).size());
  }
  for (std::size_t i = 1; i < counts.size(); ++i) {
    const double ratio = static_cast<double>(counts[i]) / static_cast<double>(counts[0]);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
  }
}

TEST(GeometryProperties, EveryOffsetCoveredWithinGap) {
  // Cover property behind Lemma 5 condition (3): for any true image start
  // alpha in [l - guess, l + guess], some candidate start lies in
  // [alpha, alpha + G].
  const auto g = geo(5000, 500, 400);
  const auto starts = candidate_starts(2500, g);
  const auto gap = start_gap(g);
  for (std::int64_t alpha = 2100; alpha <= 2900; alpha += 7) {
    const auto it = std::lower_bound(starts.begin(), starts.end(), alpha);
    ASSERT_NE(it, starts.end()) << "alpha=" << alpha;
    EXPECT_LE(*it - alpha, gap) << "alpha=" << alpha;
  }
}

TEST(GeometryProperties, EndsBracketTheDiagonal) {
  const auto g = geo(20000, 2000, 3000);
  const auto ends = candidate_ends(5000, 2000, g);
  // kappa = start + B must be present, with ends on both sides.
  EXPECT_TRUE(std::find(ends.begin(), ends.end(), 7000) != ends.end());
  EXPECT_LT(ends.front(), 7000);
  EXPECT_GT(ends.back(), 7000);
}

TEST(GeometryProperties, EndGridIsGeometricAroundKappa) {
  const auto g = geo(20000, 2000, 3000);
  const auto ends = candidate_ends(5000, 2000, g);
  // Deltas above kappa grow at most by the (1+eps') ratio (after integer
  // rounding): consecutive gaps are non-decreasing in the upper tail.
  std::vector<std::int64_t> upper;
  for (const auto e : ends) {
    if (e > 7000) upper.push_back(e - 7000);
  }
  ASSERT_GE(upper.size(), 3u);
  for (std::size_t i = 2; i < upper.size(); ++i) {
    EXPECT_LE(static_cast<double>(upper[i]),
              (1.0 + g.eps_prime) * static_cast<double>(upper[i - 1]) + 2.0);
  }
}

TEST(GeometryProperties, CanonicalEndsCollapseToOne) {
  auto g = geo(20000, 2000, 3000);
  g.canonical_ends = true;
  const auto ends = candidate_ends(5000, 2000, g);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends.front(), 7000);
}

TEST(GeometryProperties, WindowsRespectBounds) {
  for (const std::int64_t guess : {10, 500, 4900}) {
    const auto g = geo(5000, 500, guess);
    for (const Interval& w : candidate_windows(4800, 200, g)) {
      ASSERT_GE(w.begin, 0);
      ASSERT_LE(w.end, 5000);
      ASSERT_LE(w.begin, w.end);
    }
  }
}

TEST(RepTupleSemantics, MinTauIndexEncodesAllThresholds) {
  const auto taus = tau_grid(1000, 0.2);
  // A block at distance d enters N_tau at the first tau >= d; a candidate
  // substring enters N_2tau at the first tau >= ceil(d/2).
  for (const std::int64_t d : {0, 1, 7, 64, 999}) {
    const auto jb = min_tau_index(taus, d);
    ASSERT_LT(jb, taus.size());
    EXPECT_GE(taus[jb], d);
    if (jb > 0) {
      EXPECT_LT(taus[jb - 1], d);
    }

    const auto jc = min_tau_index(taus, (d + 1) / 2);
    EXPECT_GE(2 * taus[jc], d);
    if (jc > 0) {
      EXPECT_LT(2 * taus[jc - 1], d);
    }
  }
}

TEST(RepTupleSemantics, TauGridCapsAtLimit) {
  const auto taus = tau_grid(77, 0.2);
  EXPECT_EQ(taus.back(), 77);
  EXPECT_TRUE(std::is_sorted(taus.begin(), taus.end()));
}

TEST(GeometryProperties, BlocksCoverStringExactly) {
  for (const std::int64_t n : {1, 7, 100, 101}) {
    for (const std::int64_t b : {1, 3, 50}) {
      const auto blocks = make_blocks(n, b);
      std::int64_t covered = 0;
      std::int64_t expected_begin = 0;
      for (const Interval& blk : blocks) {
        ASSERT_EQ(blk.begin, expected_begin);
        ASSERT_GT(blk.length(), 0);
        ASSERT_LE(blk.length(), b);
        covered += blk.length();
        expected_begin = blk.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

}  // namespace
}  // namespace mpcsd::edit_mpc
