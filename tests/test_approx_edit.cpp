// The CGKKS-style approximate edit-distance unit: validity (never below the
// true distance), the 3+O(eps) factor, the exact fast paths, and the
// subquadratic work profile.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/workload.hpp"
#include "seq/approx_edit.hpp"
#include "seq/edit_distance.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

double guarantee_factor(double eps) {
  // approx <= 3(1+2eps)(1+eps) * exact + small additive slack.
  return 3.0 * (1.0 + 2.0 * eps) * (1.0 + eps);
}

TEST(ApproxEdit, ExactOnSmallInputs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto a = core::random_string(60, 4, seed);
    const auto b = core::random_string(64, 4, seed + 40);
    const auto result = approx_edit_distance(a, b);
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.distance, edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(ApproxEdit, EqualStrings) {
  const auto a = core::random_string(5000, 4, 1);
  const auto result = approx_edit_distance(a, a);
  EXPECT_EQ(result.distance, 0);
  EXPECT_TRUE(result.exact);
}

TEST(ApproxEdit, EmptyStrings) {
  const auto a = core::random_string(100, 4, 1);
  EXPECT_EQ(approx_edit_distance(a, SymString{}).distance, 100);
  EXPECT_EQ(approx_edit_distance(SymString{}, a).distance, 100);
  EXPECT_EQ(approx_edit_distance(SymString{}, SymString{}).distance, 0);
}

TEST(ApproxEdit, SmallDistancesResolvedExactlyByBand) {
  // Distances below the window size take the exact banded path.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto a = core::random_string(3000, 4, seed);
    const auto b = core::plant_edits(a, 20 + static_cast<std::int64_t>(seed), seed + 5,
                                     false)
                       .text;
    const auto result = approx_edit_distance(a, b);
    EXPECT_TRUE(result.exact) << "seed=" << seed;
    EXPECT_EQ(result.distance, edit_distance_doubling(a, b)) << "seed=" << seed;
  }
}

class ApproxEditQuality
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(ApproxEditQuality, WithinGuaranteeAndNeverBelow) {
  const auto [n, edits] = GetParam();
  ApproxEditParams params;
  params.epsilon = 0.25;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto a = core::random_string(n, 8, seed + static_cast<std::uint64_t>(n));
    const auto b = core::plant_edits(a, edits, seed + 91, false, 8).text;
    const auto exact = edit_distance(a, b);
    const auto result = approx_edit_distance(a, b, params);
    ASSERT_GE(result.distance, exact) << "n=" << n << " edits=" << edits;
    const double bound =
        guarantee_factor(params.epsilon) * static_cast<double>(exact) + 12.0;
    ASSERT_LE(static_cast<double>(result.distance), bound)
        << "n=" << n << " edits=" << edits << " seed=" << seed
        << " exact=" << exact;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEdits, ApproxEditQuality,
    ::testing::Combine(::testing::Values<std::int64_t>(500, 1500, 4000),
                       ::testing::Values<std::int64_t>(0, 5, 60, 400)));

TEST(ApproxEdit, FarRandomStringsStayWithinGuarantee) {
  ApproxEditParams params;
  params.epsilon = 0.25;
  const auto a = core::random_string(2000, 4, 1);
  const auto b = core::random_string(2000, 4, 2);
  const auto exact = edit_distance(a, b);
  const auto result = approx_edit_distance(a, b, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance),
            guarantee_factor(params.epsilon) * static_cast<double>(exact) + 12.0);
}

TEST(ApproxEdit, BlockShuffleWorkload) {
  // The adversarial large-distance family: blocks of s moved far away.
  const auto a = core::random_string(2400, 6, 7);
  const auto b = core::block_shuffle(a, 300, 8);
  const auto exact = edit_distance(a, b);
  ApproxEditParams params;
  params.epsilon = 0.25;
  const auto result = approx_edit_distance(a, b, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance),
            guarantee_factor(params.epsilon) * static_cast<double>(exact) + 12.0);
}

TEST(ApproxEdit, WorkSubquadraticOnNearPairs) {
  // For planted distance ~n^0.4 the unit resolves via the exact band:
  // work ~ n * d, far below n^2.
  const std::int64_t n = 20000;
  const auto a = core::random_string(n, 4, 3);
  const auto b = core::plant_edits(a, 50, 4, false).text;
  const auto result = approx_edit_distance(a, b);
  EXPECT_LT(result.work, static_cast<std::uint64_t>(n) * n / 10);
}

TEST(ApproxEdit, RepresentativeCertificationPathStaysValid) {
  // Force the triangle-inequality machinery (normally reserved for large
  // node counts): answers must stay valid and within the guarantee.
  ApproxEditParams params;
  params.epsilon = 0.25;
  params.rep_min_nodes = 1;  // always use representatives
  const auto a = core::random_string(1000, 6, 21);
  const auto b = core::block_shuffle(a, 200, 22);
  const auto exact = edit_distance(a, b);
  const auto result = approx_edit_distance(a, b, params);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance),
            guarantee_factor(params.epsilon) * static_cast<double>(exact) + 12.0);
}

TEST(ApproxEdit, GuessLimitCensorsFarPairs) {
  const auto a = core::random_string(2000, 4, 23);
  const auto b = core::random_string(2000, 4, 24);
  const auto exact = edit_distance(a, b);
  ApproxEditParams limited;
  limited.guess_limit = exact / 8;  // far below the true distance
  const auto result = approx_edit_distance(a, b, limited);
  // The limited run may only return the trivial (or a partial) upper
  // bound, but it must remain a valid upper bound and be much cheaper.
  EXPECT_GE(result.distance, exact);
  ApproxEditParams full;
  const auto full_result = approx_edit_distance(a, b, full);
  EXPECT_LE(result.work, full_result.work);
}

TEST(ApproxEdit, DeterministicAcrossCalls) {
  const auto a = core::random_string(3000, 4, 9);
  const auto b = core::block_shuffle(a, 500, 10);
  const auto r1 = approx_edit_distance(a, b);
  const auto r2 = approx_edit_distance(a, b);
  EXPECT_EQ(r1.distance, r2.distance);
  EXPECT_EQ(r1.work, r2.work);
}

}  // namespace
}  // namespace mpcsd::seq
