// Batched multi-query execution: round-count parity with single queries,
// strict per-query memory-cap enforcement, per-query trace attribution,
// and distance guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/api.hpp"

namespace {

using namespace mpcsd;

core::BatchRequest ulam_request(std::size_t batch, std::int64_t n,
                                std::uint64_t seed) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kUlam;
  request.ulam.x = 1.0 / 3;
  request.ulam.epsilon = 0.5;
  request.ulam.seed = seed;
  request.ulam.workers = 1;
  for (std::size_t q = 0; q < batch; ++q) {
    core::BatchQuery query;
    query.s = core::random_permutation(n, seed + 10 * q);
    query.t = core::plant_edits(query.s, n / 16, seed + 10 * q + 1, true).text;
    request.queries.push_back(std::move(query));
  }
  return request;
}

core::BatchRequest edit_request(std::size_t batch, std::int64_t n,
                                std::uint64_t seed) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kEdit;
  request.edit.x = 0.25;
  request.edit.epsilon = 1.0;
  request.edit.seed = seed;
  request.edit.workers = 1;
  for (std::size_t q = 0; q < batch; ++q) {
    core::BatchQuery query;
    query.s = core::random_string(n, 8, seed + 10 * q);
    query.t = core::plant_edits(query.s, n / 16, seed + 10 * q + 1, false).text;
    request.queries.push_back(std::move(query));
  }
  return request;
}

TEST(Batch, UlamBatchUsesSameRoundsAsSingleQuery) {
  // The headline batching win: B queries share the two simulated rounds.
  const auto single = core::distance_batch(ulam_request(1, 256, 7));
  const auto batch = core::distance_batch(ulam_request(16, 256, 7));
  EXPECT_EQ(single.trace.round_count(), 2u);
  EXPECT_EQ(batch.trace.round_count(), 2u);
  EXPECT_EQ(batch.queries.size(), 16u);
}

TEST(Batch, UlamDistancesWithinGuarantee) {
  const auto request = ulam_request(8, 256, 21);
  const auto result = core::distance_batch(request);
  for (std::size_t q = 0; q < request.queries.size(); ++q) {
    const auto exact = seq::ulam_distance(SymView(request.queries[q].s),
                                          SymView(request.queries[q].t));
    // Realizable-transformation lower bound, (1+eps) whp upper bound (the
    // +2 absorbs grid rounding at toy sizes).
    EXPECT_GE(result.queries[q].distance, exact) << "query " << q;
    EXPECT_LE(result.queries[q].distance,
              static_cast<std::int64_t>(std::ceil(1.5 * double(exact))) + 2)
        << "query " << q;
  }
}

TEST(Batch, UlamMixedSizesStrictPerQueryCaps) {
  // Queries of different n carry different Õ(n^{1-x}) caps; strict mode
  // proves each machine respects its own query's cap.
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kUlam;
  request.ulam.x = 1.0 / 3;
  request.ulam.epsilon = 0.5;
  request.ulam.seed = 3;
  request.ulam.workers = 1;
  request.ulam.strict_memory = true;
  for (const std::int64_t n : {128, 384, 256, 512}) {
    core::BatchQuery query;
    query.s = core::random_permutation(n, 100 + n);
    query.t = core::plant_edits(query.s, n / 20, 101 + n, true).text;
    request.queries.push_back(std::move(query));
  }
  const auto result = core::distance_batch(request);  // must not throw
  EXPECT_EQ(result.trace.round_count(), 2u);
  for (const auto& qr : result.queries) {
    EXPECT_EQ(qr.trace.memory_violations(), 0u);
    EXPECT_LE(qr.trace.max_machine_memory(), qr.memory_cap_bytes);
  }
  // Caps really differ across the batch.
  EXPECT_LT(result.queries[0].memory_cap_bytes,
            result.queries[3].memory_cap_bytes);
}

TEST(Batch, UlamPerQueryAttributionSumsToSharedTrace) {
  const auto result = core::distance_batch(ulam_request(6, 256, 11));
  ASSERT_EQ(result.trace.round_count(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    std::uint64_t work = 0;
    std::uint64_t comm = 0;
    std::size_t machines = 0;
    for (const auto& qr : result.queries) {
      ASSERT_EQ(qr.trace.round_count(), 2u);
      work += qr.trace.rounds()[r].total_work;
      comm += qr.trace.rounds()[r].total_comm_bytes;
      machines += qr.trace.rounds()[r].machines;
    }
    EXPECT_EQ(work, result.trace.rounds()[r].total_work);
    EXPECT_EQ(comm, result.trace.rounds()[r].total_comm_bytes);
    EXPECT_EQ(machines, result.trace.rounds()[r].machines);
  }
}

TEST(Batch, UlamDegenerateQueries) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kUlam;
  request.ulam.workers = 1;
  request.queries.push_back(core::BatchQuery{});  // both empty
  core::BatchQuery half;
  half.t = core::random_permutation(32, 5);
  request.queries.push_back(std::move(half));  // s empty
  core::BatchQuery live;
  live.s = core::random_permutation(64, 6);
  live.t = core::plant_edits(live.s, 4, 7, true).text;
  request.queries.push_back(std::move(live));
  const auto result = core::distance_batch(request);
  EXPECT_EQ(result.queries[0].distance, 0);
  EXPECT_EQ(result.queries[1].distance, 32);
  EXPECT_GT(result.queries[2].distance, 0);
}

TEST(Batch, EditBatchTwoRoundsAndGuarantee) {
  const auto request = edit_request(6, 192, 19);
  const auto result = core::distance_batch(request);
  // All (query, guess) pipelines share the same two rounds; a single
  // edit_distance_mpc run reports <= 4 (its guesses merged in parallel).
  EXPECT_EQ(result.trace.round_count(), 2u);
  for (std::size_t q = 0; q < request.queries.size(); ++q) {
    const auto exact = seq::edit_distance(SymView(request.queries[q].s),
                                          SymView(request.queries[q].t));
    EXPECT_GE(result.queries[q].distance, exact) << "query " << q;
    // kApprox3 unit: 3+eps with eps=1 -> factor 4 (+2 rounding slack).
    EXPECT_LE(result.queries[q].distance, 4 * exact + 2) << "query " << q;
    EXPECT_GT(result.queries[q].accepted_guess, 0) << "query " << q;
    EXPECT_EQ(result.queries[q].trace.round_count(), 2u);
  }
}

TEST(Batch, EditStrictPerQueryCaps) {
  auto request = edit_request(4, 160, 23);
  request.edit.strict_memory = true;
  const auto result = core::distance_batch(request);  // must not throw
  for (const auto& qr : result.queries) {
    EXPECT_EQ(qr.trace.memory_violations(), 0u);
    EXPECT_LE(qr.trace.max_machine_memory(), qr.memory_cap_bytes);
  }
}

TEST(Batch, EditIdenticalStringsShortCircuit) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kEdit;
  request.edit.workers = 1;
  core::BatchQuery query;
  query.s = core::random_string(64, 8, 3);
  query.t = query.s;
  request.queries.push_back(std::move(query));
  const auto result = core::distance_batch(request);
  EXPECT_EQ(result.queries[0].distance, 0);
}

TEST(Batch, EmptyRequest) {
  const auto result = core::distance_batch(core::BatchRequest{});
  EXPECT_TRUE(result.queries.empty());
  EXPECT_EQ(result.trace.round_count(), 0u);
}

std::uint64_t trace_work(const mpc::ExecutionTrace& trace) {
  std::uint64_t work = 0;
  for (const auto& round : trace.rounds()) work += round.total_work;
  return work;
}

TEST(BatchThroughput, GuaranteeAndRoundShape) {
  auto request = edit_request(6, 192, 19);
  request.mode = core::BatchMode::kThroughput;
  request.router = core::RouterPolicy::kOff;  // asserts ladder shape
  const auto result = core::distance_batch(request);
  // Escalation runs one round-pair per pass; every live query retires on
  // the self-certifying accept, so rounds stay even and passes match.
  EXPECT_EQ(result.trace.round_count(), 2 * result.passes);
  EXPECT_GE(result.passes, 1u);
  for (std::size_t q = 0; q < request.queries.size(); ++q) {
    const auto exact = seq::edit_distance(SymView(request.queries[q].s),
                                          SymView(request.queries[q].t));
    EXPECT_GE(result.queries[q].distance, exact) << "query " << q;
    EXPECT_LE(result.queries[q].distance, 4 * exact + 2) << "query " << q;
    EXPECT_GT(result.queries[q].accepted_guess, 0) << "query " << q;
    EXPECT_GE(result.queries[q].rungs_run, 1u) << "query " << q;
    // The attributed trace carries one round-pair per rung the query ran.
    EXPECT_EQ(result.queries[q].trace.round_count(),
              2 * result.queries[q].rungs_run)
        << "query " << q;
  }
}

TEST(BatchThroughput, SameAnswersAsParallelGuessUpToAccept) {
  // Escalation executes a prefix of the same cells with the same seeds, so
  // the accepted guess and the distance at acceptance match the parallel
  // mode whenever the parallel mode's best comes from the accept prefix.
  auto parallel = edit_request(5, 160, 29);
  auto escalated = parallel;
  escalated.mode = core::BatchMode::kThroughput;
  escalated.router = core::RouterPolicy::kOff;  // asserts ladder shape
  const auto pr = core::distance_batch(parallel);
  const auto er = core::distance_batch(escalated);
  for (std::size_t q = 0; q < pr.queries.size(); ++q) {
    EXPECT_EQ(er.queries[q].accepted_guess, pr.queries[q].accepted_guess)
        << "query " << q;
    // The escalated answer comes from a subset of the parallel rungs.
    EXPECT_GE(er.queries[q].distance, pr.queries[q].distance) << "query " << q;
    EXPECT_LE(er.queries[q].rungs_run, pr.queries[q].rungs_run) << "query " << q;
  }
}

TEST(BatchThroughput, StrictlyLessWorkThanParallelGuess) {
  // The point of escalation: planted distances are small, so queries retire
  // rungs before the expensive top of the ladder ever runs.
  auto parallel = edit_request(6, 192, 31);
  auto escalated = parallel;
  escalated.mode = core::BatchMode::kThroughput;
  const auto pr = core::distance_batch(parallel);
  const auto er = core::distance_batch(escalated);
  EXPECT_LT(trace_work(er.trace), trace_work(pr.trace));
  for (std::size_t q = 0; q < pr.queries.size(); ++q) {
    EXPECT_LT(er.queries[q].rungs_run, pr.queries[q].rungs_run)
        << "query " << q;
  }
}

TEST(BatchThroughput, AttributionSumsToSharedTrace) {
  auto request = edit_request(6, 192, 37);
  request.mode = core::BatchMode::kThroughput;
  const auto result = core::distance_batch(request);
  // Every machine of every pass is owned by exactly one query, so the
  // per-query attributed totals add up to the shared physical trace.
  std::uint64_t work = 0;
  std::uint64_t comm = 0;
  for (const auto& qr : result.queries) {
    work += trace_work(qr.trace);
    for (const auto& round : qr.trace.rounds()) comm += round.total_comm_bytes;
  }
  std::uint64_t shared_comm = 0;
  for (const auto& round : result.trace.rounds()) {
    shared_comm += round.total_comm_bytes;
  }
  EXPECT_EQ(work, trace_work(result.trace));
  EXPECT_EQ(comm, shared_comm);
}

TEST(BatchThroughput, StrictPerQueryCaps) {
  auto request = edit_request(4, 160, 23);
  request.mode = core::BatchMode::kThroughput;
  request.edit.strict_memory = true;
  const auto result = core::distance_batch(request);  // must not throw
  for (const auto& qr : result.queries) {
    EXPECT_EQ(qr.trace.memory_violations(), 0u);
    EXPECT_LE(qr.trace.max_machine_memory(), qr.memory_cap_bytes);
  }
}

TEST(BatchThroughput, DegenerateQueriesRunZeroPasses) {
  core::BatchRequest request;
  request.algorithm = core::BatchAlgorithm::kEdit;
  request.mode = core::BatchMode::kThroughput;
  request.edit.workers = 1;
  request.queries.push_back(core::BatchQuery{});  // both empty
  core::BatchQuery same;
  same.s = core::random_string(64, 8, 3);
  same.t = same.s;
  request.queries.push_back(std::move(same));
  const auto result = core::distance_batch(request);
  EXPECT_EQ(result.queries[0].distance, 0);
  EXPECT_EQ(result.queries[1].distance, 0);
  EXPECT_EQ(result.passes, 0u);
  EXPECT_EQ(result.trace.round_count(), 0u);
}

TEST(BatchRouter, AutoAnswersAtLeastExactAndAtMostOff) {
  // Routed retirement is exact and rung-skipping only removes rungs that
  // could never certify, so `auto` answers stay within the same envelope:
  // >= the exact distance, <= the router-off answer.
  auto off = edit_request(6, 192, 43);
  off.mode = core::BatchMode::kThroughput;
  off.router = core::RouterPolicy::kOff;
  auto routed = off;
  routed.router = core::RouterPolicy::kAuto;
  const auto ro = core::distance_batch(off);
  const auto rr = core::distance_batch(routed);
  for (std::size_t q = 0; q < off.queries.size(); ++q) {
    const auto exact = seq::edit_distance(SymView(off.queries[q].s),
                                          SymView(off.queries[q].t));
    EXPECT_GE(rr.queries[q].distance, exact) << "query " << q;
    EXPECT_LE(rr.queries[q].distance, ro.queries[q].distance) << "query " << q;
    EXPECT_LE(rr.queries[q].rungs_run, ro.queries[q].rungs_run) << "query " << q;
  }
}

TEST(BatchRouter, AlwaysSeqRetiresEverythingExactly) {
  auto request = edit_request(5, 160, 47);
  request.mode = core::BatchMode::kThroughput;
  request.router = core::RouterPolicy::kAlwaysSeq;
  const auto result = core::distance_batch(request);
  EXPECT_EQ(result.passes, 0u);
  EXPECT_EQ(result.trace.round_count(), 0u);
  for (std::size_t q = 0; q < request.queries.size(); ++q) {
    EXPECT_EQ(result.queries[q].distance,
              seq::edit_distance(SymView(request.queries[q].s),
                                 SymView(request.queries[q].t)))
        << "query " << q;
    EXPECT_EQ(result.queries[q].accepted_guess, 0) << "query " << q;
    EXPECT_EQ(result.queries[q].rungs_run, 0u) << "query " << q;
    EXPECT_EQ(result.queries[q].trace.round_count(), 0u) << "query " << q;
  }
}

TEST(BatchRouter, RetiredQueriesOwnNoMachines) {
  // A mixed batch: near-duplicates retire, a far pair climbs the ladder.
  // Attribution must still sum exactly over the queries that ran.
  auto request = edit_request(4, 192, 53);
  request.mode = core::BatchMode::kThroughput;
  request.router = core::RouterPolicy::kAuto;
  // Make queries 0 and 2 near-duplicates the prefilter trims to nothing.
  request.queries[0].t = request.queries[0].s;
  request.queries[0].t.push_back(Symbol{1});
  request.queries[2].t = request.queries[2].s;
  const auto result = core::distance_batch(request);
  EXPECT_EQ(result.queries[0].distance, 1);
  EXPECT_EQ(result.queries[0].trace.round_count(), 0u);
  EXPECT_EQ(result.queries[2].distance, 0);
  std::uint64_t work = 0;
  for (const auto& qr : result.queries) work += trace_work(qr.trace);
  EXPECT_EQ(work, trace_work(result.trace));
}

TEST(BatchRouter, OffMatchesDefaultWhenEnvUnset) {
  if (std::getenv("MPCSD_ROUTER") != nullptr) {
    GTEST_SKIP() << "MPCSD_ROUTER is set; default is not off here";
  }
  auto off = edit_request(4, 160, 59);
  off.mode = core::BatchMode::kThroughput;
  off.router = core::RouterPolicy::kOff;
  auto def = off;
  def.router = core::RouterPolicy::kDefault;
  const auto ro = core::distance_batch(off);
  const auto rd = core::distance_batch(def);
  ASSERT_EQ(ro.queries.size(), rd.queries.size());
  for (std::size_t q = 0; q < ro.queries.size(); ++q) {
    EXPECT_EQ(ro.queries[q].distance, rd.queries[q].distance);
    EXPECT_EQ(ro.queries[q].accepted_guess, rd.queries[q].accepted_guess);
    EXPECT_EQ(ro.queries[q].rungs_run, rd.queries[q].rungs_run);
  }
  EXPECT_EQ(trace_work(ro.trace), trace_work(rd.trace));
  EXPECT_EQ(ro.trace.round_count(), rd.trace.round_count());
}

TEST(BatchThroughput, UlamIgnoresMode) {
  auto parallel = ulam_request(4, 256, 7);
  auto escalated = parallel;
  escalated.mode = core::BatchMode::kThroughput;
  const auto pr = core::distance_batch(parallel);
  const auto er = core::distance_batch(escalated);
  ASSERT_EQ(pr.queries.size(), er.queries.size());
  for (std::size_t q = 0; q < pr.queries.size(); ++q) {
    EXPECT_EQ(pr.queries[q].distance, er.queries[q].distance);
  }
  EXPECT_EQ(trace_work(pr.trace), trace_work(er.trace));
  EXPECT_EQ(pr.trace.round_count(), er.trace.round_count());
}

}  // namespace
