// Message formats: tuple batches, RepTuples, and the round-2 combine
// machine consuming raw mailbox payloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "edit_mpc/graph_tau.hpp"
#include "seq/combine.hpp"
#include "ulam_mpc/combine.hpp"

namespace mpcsd {
namespace {

TEST(TupleIo, RoundTripSingleBatch) {
  std::vector<seq::Tuple> tuples{
      {0, 10, 3, 12, 4},
      {10, 20, 12, 25, 0},
  };
  ByteWriter w;
  seq::write_tuples(w, tuples);
  const auto back = seq::read_all_tuples(w.bytes());
  EXPECT_EQ(back, tuples);
}

TEST(TupleIo, ConcatenatedBatches) {
  ByteWriter w1;
  seq::write_tuples(w1, std::vector<seq::Tuple>{{0, 5, 0, 5, 1}});
  ByteWriter w2;
  seq::write_tuples(w2, std::vector<seq::Tuple>{});
  ByteWriter w3;
  seq::write_tuples(w3, std::vector<seq::Tuple>{{5, 9, 5, 9, 2}, {2, 4, 2, 4, 0}});
  const Bytes merged = concat({w1.bytes(), w2.bytes(), w3.bytes()});
  const auto back = seq::read_all_tuples(merged);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].distance, 1);
  EXPECT_EQ(back[2].block_begin, 2);
}

TEST(TupleIo, EmptyPayload) {
  EXPECT_TRUE(seq::read_all_tuples(Bytes{}).empty());
}

TEST(RepTuple, PodRoundTrip) {
  edit_mpc::RepTuple t;
  t.node = 17;
  t.rep = 42;
  t.min_tau_index = 3;
  t.rep_distance = 999;
  ByteWriter w;
  w.put(t);
  ByteReader r(w.bytes());
  const auto back = r.get<edit_mpc::RepTuple>();
  EXPECT_EQ(back, t);
}

TEST(CombineMachine, ComputesUlamAnswerFromPayload) {
  // Two adjacent perfect tuples covering [0,10) -> [0,10).
  std::vector<seq::Tuple> tuples{{0, 5, 0, 5, 1}, {5, 10, 5, 10, 2}};
  ByteWriter w;
  seq::write_tuples(w, tuples);
  std::uint64_t work = 0;
  const auto answer = ulam_mpc::combine_machine(w.bytes(), 10, 10, &work);
  EXPECT_EQ(answer, 3);
  EXPECT_GT(work, 0u);
}

TEST(CombineMachine, EmptyPayloadGivesTrivialAnswer) {
  EXPECT_EQ(ulam_mpc::combine_machine(Bytes{}, 7, 11), 11);  // max-gap mode
}

// ---- Malformed-payload regressions (adversarial length prefixes). ----

TEST(Robustness, AdversarialVectorLengthThrows) {
  // Length prefix of 2^61 + 1 elements: n * sizeof(int64) wraps to 8 mod
  // 2^64, so a multiply-based bounds check would accept it against the 16
  // trailing bytes and allocate 2^61 elements.  The divide-based check
  // must reject it.
  ByteWriter w;
  w.put<std::uint64_t>((1ULL << 61U) + 1);
  w.put<std::int64_t>(7);
  w.put<std::int64_t>(8);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<std::int64_t>(), ContractViolation);
}

TEST(Robustness, TruncatedVectorThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(4);  // claims 4 elements...
  w.put<std::int32_t>(1);   // ...delivers one
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<std::int32_t>(), ContractViolation);
}

TEST(Robustness, TruncatedStringThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(100);
  w.put<std::uint8_t>('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), ContractViolation);
}

TEST(Robustness, OverreadScalarThrows) {
  const Bytes empty;
  ByteReader r(empty);
  EXPECT_THROW(r.get<std::int64_t>(), ContractViolation);
}

TEST(Robustness, ChainReaderAdversarialLengthThrows) {
  ByteWriter w;
  w.put<std::uint64_t>((1ULL << 61U) + 1);
  w.put<std::int64_t>(7);
  w.put<std::int64_t>(8);
  const Bytes buf = std::move(w).take();
  ByteChain chain;
  chain.add(ByteSpan(buf));
  ChainReader r(chain);
  EXPECT_THROW(r.get_vector<std::int64_t>(), ContractViolation);
}

// ---- ChainReader: zero-copy inbox reading. ----

TEST(ChainIo, ReaderSpansFragmentBoundaries) {
  ByteWriter w;
  w.put<std::int64_t>(-42);
  w.put_vector(std::vector<std::int32_t>{1, 2, 3, 4, 5});
  w.put_string("hello chain");
  w.put<std::uint16_t>(999);
  const Bytes whole = std::move(w).take();

  // Every two-way split: values must read back even when they straddle the
  // fragment boundary.
  for (std::size_t split = 0; split <= whole.size(); ++split) {
    ByteChain chain;
    chain.add(ByteSpan(whole.data(), split));
    chain.add(ByteSpan(whole.data() + split, whole.size() - split));
    ChainReader r(chain);
    ASSERT_EQ(r.get<std::int64_t>(), -42) << "split=" << split;
    ASSERT_EQ(r.get_vector<std::int32_t>(), (std::vector<std::int32_t>{1, 2, 3, 4, 5}));
    ASSERT_EQ(r.get_string(), "hello chain");
    ASSERT_EQ(r.get<std::uint16_t>(), 999);
    ASSERT_TRUE(r.exhausted());
  }

  // Fine fragmentation: three-byte shards.
  ByteChain shards;
  for (std::size_t off = 0; off < whole.size(); off += 3) {
    shards.add(ByteSpan(whole.data() + off, std::min<std::size_t>(3, whole.size() - off)));
  }
  ChainReader r(shards);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get_vector<std::int32_t>(), (std::vector<std::int32_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.get_string(), "hello chain");
  EXPECT_EQ(r.get<std::uint16_t>(), 999);
  EXPECT_TRUE(r.exhausted());
}

TEST(ChainIo, ToBytesMatchesConcat) {
  ByteWriter w1;
  w1.put<std::int64_t>(1);
  ByteWriter w2;
  w2.put<std::int64_t>(2);
  const Bytes b1 = std::move(w1).take();
  const Bytes b2 = std::move(w2).take();
  ByteChain chain;
  chain.add(ByteSpan(b1));
  chain.add(ByteSpan(b2));
  EXPECT_EQ(chain.to_bytes(), concat({b1, b2}));
  EXPECT_EQ(chain.total_bytes(), b1.size() + b2.size());
}

TEST(ChainIo, EmptyFragmentsDropped) {
  ByteChain chain;
  chain.add(ByteSpan{});
  EXPECT_TRUE(chain.empty());
  EXPECT_TRUE(chain.parts().empty());
  const Bytes b(4);
  chain.add(ByteSpan(b));
  chain.add(ByteSpan{});
  EXPECT_EQ(chain.parts().size(), 1u);
  EXPECT_EQ(chain.total_bytes(), 4u);
}

TEST(TupleIo, ChainOfBatchesMatchesConcat) {
  ByteWriter w1;
  seq::write_tuples(w1, std::vector<seq::Tuple>{{0, 5, 0, 5, 1}});
  ByteWriter w2;
  seq::write_tuples(w2, std::vector<seq::Tuple>{});
  ByteWriter w3;
  seq::write_tuples(w3, std::vector<seq::Tuple>{{5, 9, 5, 9, 2}, {2, 4, 2, 4, 0}});
  const Bytes b1 = std::move(w1).take();
  const Bytes b2 = std::move(w2).take();
  const Bytes b3 = std::move(w3).take();
  ByteChain chain;
  chain.add(ByteSpan(b1));
  chain.add(ByteSpan(b2));
  chain.add(ByteSpan(b3));
  EXPECT_EQ(seq::read_all_tuples(chain), seq::read_all_tuples(concat({b1, b2, b3})));
}

}  // namespace
}  // namespace mpcsd
