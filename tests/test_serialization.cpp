// Message formats: tuple batches, RepTuples, and the round-2 combine
// machine consuming raw mailbox payloads.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "edit_mpc/graph_tau.hpp"
#include "seq/combine.hpp"
#include "ulam_mpc/combine.hpp"

namespace mpcsd {
namespace {

TEST(TupleIo, RoundTripSingleBatch) {
  std::vector<seq::Tuple> tuples{
      {0, 10, 3, 12, 4},
      {10, 20, 12, 25, 0},
  };
  ByteWriter w;
  seq::write_tuples(w, tuples);
  const auto back = seq::read_all_tuples(w.bytes());
  EXPECT_EQ(back, tuples);
}

TEST(TupleIo, ConcatenatedBatches) {
  ByteWriter w1;
  seq::write_tuples(w1, std::vector<seq::Tuple>{{0, 5, 0, 5, 1}});
  ByteWriter w2;
  seq::write_tuples(w2, std::vector<seq::Tuple>{});
  ByteWriter w3;
  seq::write_tuples(w3, std::vector<seq::Tuple>{{5, 9, 5, 9, 2}, {2, 4, 2, 4, 0}});
  const Bytes merged = concat({w1.bytes(), w2.bytes(), w3.bytes()});
  const auto back = seq::read_all_tuples(merged);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].distance, 1);
  EXPECT_EQ(back[2].block_begin, 2);
}

TEST(TupleIo, EmptyPayload) {
  EXPECT_TRUE(seq::read_all_tuples(Bytes{}).empty());
}

TEST(RepTuple, PodRoundTrip) {
  edit_mpc::RepTuple t;
  t.node = 17;
  t.rep = 42;
  t.min_tau_index = 3;
  t.rep_distance = 999;
  ByteWriter w;
  w.put(t);
  ByteReader r(w.bytes());
  const auto back = r.get<edit_mpc::RepTuple>();
  EXPECT_EQ(back, t);
}

TEST(CombineMachine, ComputesUlamAnswerFromPayload) {
  // Two adjacent perfect tuples covering [0,10) -> [0,10).
  std::vector<seq::Tuple> tuples{{0, 5, 0, 5, 1}, {5, 10, 5, 10, 2}};
  ByteWriter w;
  seq::write_tuples(w, tuples);
  std::uint64_t work = 0;
  const auto answer = ulam_mpc::combine_machine(w.bytes(), 10, 10, &work);
  EXPECT_EQ(answer, 3);
  EXPECT_GT(work, 0u);
}

TEST(CombineMachine, EmptyPayloadGivesTrivialAnswer) {
  EXPECT_EQ(ulam_mpc::combine_machine(Bytes{}, 7, 11), 11);  // max-gap mode
}

}  // namespace
}  // namespace mpcsd
