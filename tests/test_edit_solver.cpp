// Theorem 9 end-to-end (guess driver over both pipelines) and the HSS [20]
// baseline: sandwich bounds, round budgets, machine-count comparison.
#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "edit_mpc/hss_baseline.hpp"
#include "edit_mpc/solver.hpp"
#include "seq/edit_distance.hpp"

namespace mpcsd::edit_mpc {
namespace {

TEST(EditSolver, IdenticalStringsDetectedSeparately) {
  const auto s = core::random_string(1000, 4, 1);
  const auto result = edit_distance_mpc(s, s);
  EXPECT_EQ(result.distance, 0);
  EXPECT_EQ(result.guesses_run, 0u);
}

TEST(EditSolver, EmptyInputs) {
  const auto s = core::random_string(50, 4, 2);
  EXPECT_EQ(edit_distance_mpc(s, SymString{}).distance, 50);
  EXPECT_EQ(edit_distance_mpc(SymString{}, s).distance, 50);
}

class EditSolverSandwich
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(EditSolverSandwich, ValidAndWithinFactor) {
  const auto [n, k] = GetParam();
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const auto s = core::random_string(n, 4, seed + static_cast<std::uint64_t>(n));
    const auto t = core::plant_edits(s, k, seed + 7, false).text;
    const auto exact = seq::edit_distance(s, t);
    EditMpcParams params;
    params.x = 0.25;
    params.epsilon = 1.0;
    params.unit = DistanceUnit::kExactBanded;  // isolates the MPC machinery
    const auto result = edit_distance_mpc(s, t, params);
    ASSERT_GE(result.distance, exact) << "n=" << n << " k=" << k;
    // Exact unit: the guess grid + sum gaps give a small constant factor.
    ASSERT_LE(static_cast<double>(result.distance),
              3.0 * static_cast<double>(exact) + 4.0)
        << "n=" << n << " k=" << k << " exact=" << exact
        << " got=" << result.distance;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEdits, EditSolverSandwich,
    ::testing::Combine(::testing::Values<std::int64_t>(300, 900),
                       ::testing::Values<std::int64_t>(1, 10, 60)));

TEST(EditSolver, Approx3UnitStaysWithinAdvertisedFactor) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto s = core::random_string(800, 4, seed + 90);
    const auto t = core::plant_edits(s, 25, seed + 91, false).text;
    const auto exact = seq::edit_distance(s, t);
    EditMpcParams params;
    params.epsilon = 1.0;
    params.unit = DistanceUnit::kApprox3;
    params.approx.epsilon = 0.25;
    const auto result = edit_distance_mpc(s, t, params);
    ASSERT_GE(result.distance, exact);
    ASSERT_LE(static_cast<double>(result.distance),
              (3.0 + params.epsilon) * static_cast<double>(exact) + 8.0)
        << "seed=" << seed << " exact=" << exact;
  }
}

TEST(EditSolver, AtMostFourRounds) {
  const auto s = core::random_string(600, 4, 5);
  const auto t = core::block_shuffle(s, 150, 6);
  EditMpcParams params;
  params.unit = DistanceUnit::kExactBanded;
  const auto result = edit_distance_mpc(s, t, params);
  EXPECT_LE(result.trace.round_count(), 4u);
  EXPECT_GE(result.trace.round_count(), 2u);
}

TEST(EditSolver, LargeDistanceWorkloadUsesLargePipeline) {
  // At bench scales the early-exit accept fires before the guesses reach
  // the large regime (the boundary n^{1-x/5} is close to n); kAll runs the
  // full parallel guess set, which includes the large pipeline.
  const auto s = core::random_string(600, 4, 7);
  const auto t = core::block_shuffle(s, 100, 8);
  const auto exact = seq::edit_distance(s, t);
  EditMpcParams params;
  params.x = 0.25;
  params.unit = DistanceUnit::kExactBanded;
  params.guess_mode = GuessMode::kAll;
  const auto result = edit_distance_mpc(s, t, params);
  const bool used_large = std::any_of(result.per_guess.begin(), result.per_guess.end(),
                                      [](const GuessOutcome& g) { return g.large_pipeline; });
  EXPECT_TRUE(used_large);
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(result.trace.round_count(), 4u);
}

TEST(EditSolver, GuessModesAgreeOnValidity) {
  const auto s = core::random_string(400, 4, 9);
  const auto t = core::plant_edits(s, 30, 10, false).text;
  const auto exact = seq::edit_distance(s, t);
  EditMpcParams early;
  early.unit = DistanceUnit::kExactBanded;
  early.guess_mode = GuessMode::kEarlyExit;
  EditMpcParams all = early;
  all.guess_mode = GuessMode::kAll;
  const auto re = edit_distance_mpc(s, t, early);
  const auto ra = edit_distance_mpc(s, t, all);
  EXPECT_GE(re.distance, exact);
  EXPECT_GE(ra.distance, exact);
  EXPECT_LE(ra.distance, re.distance);  // kAll sees every guess
  EXPECT_GE(ra.guesses_run, re.guesses_run);
}

TEST(HssBaseline, SandwichWithTightFactor) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto s = core::random_string(500, 4, seed + 20);
    const auto t = core::plant_edits(s, 20, seed + 21, false).text;
    const auto exact = seq::edit_distance(s, t);
    HssBaselineParams params;
    params.x = 0.25;
    params.epsilon = 1.0;
    const auto result = hss_edit_distance_mpc(s, t, params);
    ASSERT_GE(result.distance, exact);
    ASSERT_LE(static_cast<double>(result.distance),
              2.0 * static_cast<double>(exact) + 4.0)
        << "seed=" << seed << " exact=" << exact;
    EXPECT_EQ(result.trace.round_count(), 2u);
  }
}

TEST(HssBaseline, UsesMoreMachinesThanOurs) {
  // The headline Table 1 comparison: [20] uses ~n^{2x} machines, ours
  // ~n^{(9/5)x}; at equal guesses the unbatched layout must use strictly
  // more round-1 machines.
  const auto s = core::random_string(2000, 4, 30);
  const auto t = core::plant_edits(s, 60, 31, false).text;

  EditMpcParams ours;
  ours.x = 0.3;
  ours.unit = DistanceUnit::kExactBanded;
  const auto r_ours = edit_distance_mpc(s, t, ours);

  HssBaselineParams baseline;
  baseline.x = 0.3;
  const auto r_base = hss_edit_distance_mpc(s, t, baseline);

  EXPECT_GT(r_base.trace.max_machines(), r_ours.trace.max_machines());
}

TEST(EditSolver, PerGuessRecordKeeping) {
  const auto s = core::random_string(300, 4, 40);
  const auto t = core::plant_edits(s, 12, 41, false).text;
  EditMpcParams params;
  params.unit = DistanceUnit::kExactBanded;
  const auto result = edit_distance_mpc(s, t, params);
  EXPECT_EQ(result.per_guess.size(), result.guesses_run);
  ASSERT_FALSE(result.per_guess.empty());
  for (std::size_t i = 1; i < result.per_guess.size(); ++i) {
    EXPECT_GT(result.per_guess[i].guess, result.per_guess[i - 1].guess);
  }
}

}  // namespace
}  // namespace mpcsd::edit_mpc
