// The two-round small-distance pipeline (Lemma 6): validity for every
// guess, quality when the guess is right, unit ablation, round/memory
// discipline.
#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "edit_mpc/small_distance.hpp"
#include "edit_mpc/solver.hpp"
#include "seq/edit_distance.hpp"

namespace mpcsd::edit_mpc {
namespace {

SmallDistanceParams base_params(std::int64_t guess, DistanceUnit unit) {
  SmallDistanceParams p;
  p.eps_prime = 0.2;
  p.x = 0.3;
  p.delta_guess = guess;
  p.unit = unit;
  return p;
}

TEST(EditSmall, ExactUnitSandwichAtRightGuess) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto s = core::random_string(500, 4, seed);
    const auto t = core::plant_edits(s, 15, seed + 2, false).text;
    const auto exact = seq::edit_distance(s, t);
    const auto result =
        run_small_distance(s, t, base_params(exact + 2, DistanceUnit::kExactBanded));
    ASSERT_GE(result.distance, exact) << "seed=" << seed;
    // Exact unit + sum gaps: within 1+O(eps') of exact once covered.
    ASSERT_LE(static_cast<double>(result.distance),
              1.5 * static_cast<double>(exact) + 2.0)
        << "seed=" << seed << " exact=" << exact;
  }
}

TEST(EditSmall, ValidUpperBoundEvenForWrongGuess) {
  const auto s = core::random_string(400, 4, 3);
  const auto t = core::plant_edits(s, 40, 4, false).text;
  const auto exact = seq::edit_distance(s, t);
  for (const std::int64_t guess : {1L, 5L, 20L, 200L}) {
    const auto result =
        run_small_distance(s, t, base_params(guess, DistanceUnit::kExactBanded));
    ASSERT_GE(result.distance, exact) << "guess=" << guess;
    ASSERT_LE(result.distance,
              static_cast<std::int64_t>(s.size() + t.size())) << "guess=" << guess;
  }
}

TEST(EditSmall, Approx3UnitWithinConstantFactor) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto s = core::random_string(600, 4, seed + 50);
    const auto t = core::plant_edits(s, 20, seed + 51, false).text;
    const auto exact = seq::edit_distance(s, t);
    auto params = base_params(exact + 2, DistanceUnit::kApprox3);
    params.approx.epsilon = 0.25;
    const auto result = run_small_distance(s, t, params);
    ASSERT_GE(result.distance, exact);
    ASSERT_LE(static_cast<double>(result.distance),
              5.0 * static_cast<double>(exact) + 8.0)
        << "seed=" << seed << " exact=" << exact;
  }
}

TEST(EditSmall, TwoRounds) {
  const auto s = core::random_string(300, 4, 9);
  const auto t = core::plant_edits(s, 10, 10, false).text;
  const auto result = run_small_distance(s, t, base_params(20, DistanceUnit::kExactBanded));
  EXPECT_EQ(result.trace.round_count(), 2u);
}

TEST(EditSmall, IdenticalStringsZeroAtAnyGuess) {
  const auto s = core::random_string(400, 4, 11);
  const auto result = run_small_distance(s, s, base_params(8, DistanceUnit::kExactBanded));
  EXPECT_EQ(result.distance, 0);
}

TEST(EditSmall, BatchingReducesMachinesVsBaselineLayout) {
  const auto s = core::random_string(600, 4, 12);
  const auto t = core::plant_edits(s, 30, 13, false).text;
  auto batched = base_params(50, DistanceUnit::kExactBanded);
  auto single = batched;
  single.batch_starts = false;
  const auto rb = run_small_distance(s, t, batched);
  const auto rs = run_small_distance(s, t, single);
  EXPECT_LT(rb.machines_round1, rs.machines_round1);
  EXPECT_EQ(rb.distance, rs.distance);  // same tuples, same combine
}

TEST(EditSmall, MemoryCapHolds) {
  const auto s = core::random_string(2000, 4, 14);
  const auto t = core::plant_edits(s, 30, 15, false).text;
  EditMpcParams cap_params;
  cap_params.x = 0.3;
  cap_params.epsilon = 2.2;  // eps' = 0.1
  auto params = base_params(40, DistanceUnit::kExactBanded);
  params.memory_cap_bytes = edit_memory_cap_bytes(2000, cap_params);
  params.strict_memory = true;
  const auto result = run_small_distance(s, t, params);
  EXPECT_EQ(result.trace.memory_violations(), 0u);
}

TEST(EditSmall, DeterministicGivenSeed) {
  const auto s = core::random_string(500, 4, 16);
  const auto t = core::plant_edits(s, 25, 17, false).text;
  auto params = base_params(30, DistanceUnit::kApprox3);
  const auto r1 = run_small_distance(s, t, params);
  const auto r2 = run_small_distance(s, t, params);
  EXPECT_EQ(r1.distance, r2.distance);
  EXPECT_EQ(r1.tuple_count, r2.tuple_count);
}

}  // namespace
}  // namespace mpcsd::edit_mpc
