// The four-round large-distance pipeline (Lemma 8): validity, the
// representative/extension machinery, round discipline.
#include <gtest/gtest.h>

#include "core/workload.hpp"
#include "edit_mpc/large_distance.hpp"
#include "seq/edit_distance.hpp"

namespace mpcsd::edit_mpc {
namespace {

LargeDistanceParams base_params(std::int64_t guess) {
  LargeDistanceParams p;
  p.eps_prime = 0.25;
  p.x = 0.25;
  p.delta_guess = guess;
  p.rep_constant = 4.0;       // generous sampling at test sizes
  p.sample_constant = 4.0;
  p.max_representatives = 16; // keep round-1 cost sane at toy scale
  return p;
}

TEST(EditLarge, FourRounds) {
  const auto s = core::random_string(400, 4, 1);
  const auto t = core::block_shuffle(s, 100, 2);
  const auto result = run_large_distance(s, t, base_params(300));
  EXPECT_EQ(result.trace.round_count(), 4u);
}

TEST(EditLarge, ValidUpperBound) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto s = core::random_string(500, 4, seed);
    const auto t = core::block_shuffle(s, 125, seed + 9);
    const auto exact = seq::edit_distance(s, t);
    for (const std::int64_t guess : {100L, 300L, 500L}) {
      const auto result = run_large_distance(s, t, base_params(guess));
      ASSERT_GE(result.distance, exact) << "seed=" << seed << " guess=" << guess;
      ASSERT_LE(result.distance, static_cast<std::int64_t>(s.size() + t.size()));
    }
  }
}

TEST(EditLarge, QualityAtRightGuessOnShuffledBlocks) {
  // Block shuffles are the large-distance showcase: blocks are far from
  // their diagonal but identical to some window, so representative pairing
  // plus extension should find near-zero-cost tuples.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto s = core::random_string(600, 6, seed + 30);
    const auto t = core::block_shuffle(s, 150, seed + 31);
    const auto exact = seq::edit_distance(s, t);
    if (exact == 0) continue;
    auto params = base_params(exact + 10);
    const auto result = run_large_distance(s, t, params);
    ASSERT_GE(result.distance, exact) << "seed=" << seed;
    ASSERT_LE(static_cast<double>(result.distance),
              4.0 * static_cast<double>(exact) + 10.0)
        << "seed=" << seed << " exact=" << exact;
  }
}

TEST(EditLarge, RandomUnrelatedStrings) {
  const auto s = core::random_string(400, 4, 40);
  const auto t = core::random_string(400, 4, 41);
  const auto exact = seq::edit_distance(s, t);
  const auto result = run_large_distance(s, t, base_params(exact + 5));
  EXPECT_GE(result.distance, exact);
  EXPECT_LE(static_cast<double>(result.distance),
            4.0 * static_cast<double>(exact) + 10.0);
}

TEST(EditLarge, DeterministicGivenSeed) {
  const auto s = core::random_string(500, 4, 50);
  const auto t = core::block_shuffle(s, 100, 51);
  auto params = base_params(250);
  params.seed = 777;
  const auto r1 = run_large_distance(s, t, params);
  const auto r2 = run_large_distance(s, t, params);
  EXPECT_EQ(r1.distance, r2.distance);
  EXPECT_EQ(r1.tuple_count, r2.tuple_count);
  EXPECT_EQ(r1.extension_requests, r2.extension_requests);
}

TEST(EditLarge, RepresentativesAndExtensionsActuallyFire) {
  const auto s = core::random_string(800, 6, 60);
  const auto t = core::block_shuffle(s, 100, 61);
  auto params = base_params(600);
  const auto result = run_large_distance(s, t, params);
  EXPECT_GT(result.representative_count, 0u);
  EXPECT_GT(result.tuple_count, 0u);
}

TEST(EditLarge, IdenticalStrings) {
  const auto s = core::random_string(300, 4, 70);
  const auto result = run_large_distance(s, s, base_params(100));
  // The zero-distance candidates sit on the diagonal; result must be 0 or
  // at least tiny relative to n (identical inputs short-circuit upstream in
  // the solver; the pipeline itself must still be valid).
  EXPECT_GE(result.distance, 0);
  EXPECT_LE(result.distance, 30);
}

}  // namespace
}  // namespace mpcsd::edit_mpc
