// Myers/Hyyrö bit-parallel edit distance pinned against Wagner–Fischer.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/myers.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

TEST(Myers, KnownValues) {
  EXPECT_EQ(edit_distance_myers(to_symbols("kitten"), to_symbols("sitting")), 3);
  EXPECT_EQ(edit_distance_myers(to_symbols("elephant"), to_symbols("relevant")), 3);
  EXPECT_EQ(edit_distance_myers(to_symbols("abc"), to_symbols("abc")), 0);
  EXPECT_EQ(edit_distance_myers(to_symbols("abc"), SymString{}), 3);
  EXPECT_EQ(edit_distance_myers(SymString{}, to_symbols("xy")), 2);
}

TEST(Myers, SingleBlockFuzz) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto n = 1 + static_cast<std::int64_t>(seed);
    const auto a = core::random_string(n, 4, seed);
    const auto b = core::random_string(
        std::max<std::int64_t>(0, n + static_cast<std::int64_t>(seed % 7) - 3), 4,
        seed + 400);
    ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(Myers, BlockBoundaryLengths) {
  // Pattern lengths straddling the 64-bit block boundaries.
  for (const std::int64_t m : {63, 64, 65, 127, 128, 129, 191, 192, 193}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto a = core::random_string(m, 3, seed + static_cast<std::uint64_t>(m));
      const auto b = core::random_string(m + 10, 3, seed + 900);
      ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b))
          << "m=" << m << " seed=" << seed;
    }
  }
}

TEST(Myers, MultiBlockFuzz) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto m = 100 + static_cast<std::int64_t>(seed * 23);
    const auto a = core::random_string(m, 6, seed);
    const auto b = core::plant_edits(a, static_cast<std::int64_t>(seed * 5), seed + 1,
                                     false, 6)
                       .text;
    ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(Myers, LargeAlphabet) {
  const auto a = core::random_string(500, 100000, 1);
  const auto b = core::random_string(480, 100000, 2);
  EXPECT_EQ(edit_distance_myers(a, b), edit_distance(a, b));
}

TEST(Myers, WorkMeterCountsWords) {
  const auto a = core::random_string(200, 4, 1);  // 4 blocks
  const auto b = core::random_string(300, 4, 2);
  std::uint64_t work = 0;
  edit_distance_myers(a, b, &work);
  EXPECT_EQ(work, 300u * 4u);
}

class MyersSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, Symbol>> {};

TEST_P(MyersSweep, MatchesWagnerFischer) {
  const auto [n, alphabet] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = core::random_string(n, alphabet, seed + static_cast<std::uint64_t>(n));
    const auto b = core::random_string(n, alphabet, seed + 31);
    ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b))
        << "n=" << n << " sigma=" << alphabet;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, MyersSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 64, 65, 200, 1000),
                       ::testing::Values<Symbol>(2, 4, 26, 1000)));

}  // namespace
}  // namespace mpcsd::seq
