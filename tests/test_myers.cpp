// Myers/Hyyrö bit-parallel edit distance pinned against Wagner–Fischer.
#include <gtest/gtest.h>

#include <algorithm>

#include <optional>

#include "core/workload.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"
#include "seq/edit_distance_os.hpp"
#include "seq/myers.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {
namespace {

TEST(Myers, KnownValues) {
  EXPECT_EQ(edit_distance_myers(to_symbols("kitten"), to_symbols("sitting")), 3);
  EXPECT_EQ(edit_distance_myers(to_symbols("elephant"), to_symbols("relevant")), 3);
  EXPECT_EQ(edit_distance_myers(to_symbols("abc"), to_symbols("abc")), 0);
  EXPECT_EQ(edit_distance_myers(to_symbols("abc"), SymString{}), 3);
  EXPECT_EQ(edit_distance_myers(SymString{}, to_symbols("xy")), 2);
}

TEST(Myers, SingleBlockFuzz) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto n = 1 + static_cast<std::int64_t>(seed);
    const auto a = core::random_string(n, 4, seed);
    const auto b = core::random_string(
        std::max<std::int64_t>(0, n + static_cast<std::int64_t>(seed % 7) - 3), 4,
        seed + 400);
    ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(Myers, BlockBoundaryLengths) {
  // Pattern lengths straddling the 64-bit block boundaries.
  for (const std::int64_t m : {63, 64, 65, 127, 128, 129, 191, 192, 193}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto a = core::random_string(m, 3, seed + static_cast<std::uint64_t>(m));
      const auto b = core::random_string(m + 10, 3, seed + 900);
      ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b))
          << "m=" << m << " seed=" << seed;
    }
  }
}

TEST(Myers, MultiBlockFuzz) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto m = 100 + static_cast<std::int64_t>(seed * 23);
    const auto a = core::random_string(m, 6, seed);
    const auto b = core::plant_edits(a, static_cast<std::int64_t>(seed * 5), seed + 1,
                                     false, 6)
                       .text;
    ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b)) << "seed=" << seed;
  }
}

TEST(Myers, LargeAlphabet) {
  const auto a = core::random_string(500, 100000, 1);
  const auto b = core::random_string(480, 100000, 2);
  EXPECT_EQ(edit_distance_myers(a, b), edit_distance(a, b));
}

TEST(Myers, WorkMeterCountsWords) {
  const auto a = core::random_string(200, 4, 1);  // 4 blocks
  const auto b = core::random_string(300, 4, 2);
  std::uint64_t work = 0;
  edit_distance_myers(a, b, &work);
  EXPECT_EQ(work, 300u * 4u);
}

class MyersSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, Symbol>> {};

TEST_P(MyersSweep, MatchesWagnerFischer) {
  const auto [n, alphabet] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = core::random_string(n, alphabet, seed + static_cast<std::uint64_t>(n));
    const auto b = core::random_string(n, alphabet, seed + 31);
    ASSERT_EQ(edit_distance_myers(a, b), edit_distance(a, b))
        << "n=" << n << " sigma=" << alphabet;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, MyersSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 64, 65, 200, 1000),
                       ::testing::Values<Symbol>(2, 4, 26, 1000)));

TEST(MyersBounded, KnownValues) {
  using Opt = std::optional<std::int64_t>;
  EXPECT_EQ(edit_distance_myers_bounded(to_symbols("kitten"), to_symbols("sitting"), 3),
            Opt(3));
  EXPECT_EQ(edit_distance_myers_bounded(to_symbols("kitten"), to_symbols("sitting"), 2),
            std::nullopt);
  EXPECT_EQ(edit_distance_myers_bounded(SymString{}, to_symbols("xy"), 1), std::nullopt);
  EXPECT_EQ(edit_distance_myers_bounded(SymString{}, to_symbols("xy"), 2), Opt(2));
  EXPECT_EQ(edit_distance_myers_bounded(to_symbols("abc"), to_symbols("abc"), 0), Opt(0));
}

TEST(MyersBounded, MatchesBandedAcrossAlphabetsAndLengths) {
  // Differential vs the scalar band: alphabets 2..1000, lengths 0..2000
  // straddling the 64-bit block boundaries, caps from tight to slack.
  const std::int64_t lengths[] = {0, 1, 2, 63, 64, 65, 127, 128, 129, 500, 2000};
  const Symbol alphabets[] = {2, 4, 26, 1000};
  for (const Symbol sigma : alphabets) {
    for (const std::int64_t n : lengths) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const auto a =
            core::random_string(n, sigma, seed * 7 + static_cast<std::uint64_t>(n));
        const auto b =
            seed % 2 == 0
                ? core::plant_edits(a, n / 10 + static_cast<std::int64_t>(seed),
                                    seed + 17, false, sigma)
                      .text
                : core::random_string(
                      std::max<std::int64_t>(0, n + static_cast<std::int64_t>(seed) - 1),
                      sigma, seed + 51);
        for (const std::int64_t k : {std::int64_t{0}, std::int64_t{1}, n / 16 + 1,
                                     n / 4 + 1, n + 4}) {
          ASSERT_EQ(edit_distance_myers_bounded(a, b, k), edit_distance_banded(a, b, k))
              << "sigma=" << sigma << " n=" << n << " seed=" << seed << " k=" << k;
        }
      }
    }
  }
}

TEST(MyersBounded, EarlyAbortCheapOnFarPairs) {
  // Large-alphabet random pairs are far apart: the running-score lower
  // bound must kill a tight cap long before the full column sweep.
  const auto a = core::random_string(2000, 1000, 1);
  const auto b = core::random_string(2000, 1000, 2);
  std::uint64_t full = 0;
  std::uint64_t capped = 0;
  edit_distance_myers(a, b, &full);
  EXPECT_EQ(edit_distance_myers_bounded(a, b, 16, &capped), std::nullopt);
  EXPECT_LT(capped, full / 2);
}

TEST(FastDispatch, MatchesScalarOnManyRandomCases) {
  // The acceptance differential: >= 10^4 random cases, alphabets 2..1000,
  // mixed near/far pairs, identical values AND identical modelled work.
  for (std::uint64_t c = 0; c < 10000; ++c) {
    const auto sigma = static_cast<Symbol>(2 + (c * 37) % 999);
    const auto na = static_cast<std::int64_t>((c * 131) % 120);
    const auto nb = static_cast<std::int64_t>((c * 61 + 31) % 120);
    const auto a = core::random_string(na, sigma, c);
    const auto b = c % 3 == 0
                       ? core::plant_edits(a, nb / 8 + 1, c + 1, false, sigma).text
                       : core::random_string(nb, sigma, c + 10007);
    std::uint64_t work_scalar = 0;
    std::uint64_t work_fast = 0;
    const auto d_scalar = edit_distance(a, b, &work_scalar);
    const auto d_fast = edit_distance_fast(a, b, &work_fast);
    ASSERT_EQ(d_scalar, d_fast) << "case=" << c << " sigma=" << sigma;
    ASSERT_EQ(work_scalar, work_fast) << "case=" << c;
  }
}

TEST(FastDispatch, MatchesScalarOnLargePairs) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto n = 1500 + 250 * static_cast<std::int64_t>(seed);
    const Symbol sigma = seed == 0 ? 2 : (seed == 1 ? 26 : 1000);
    const auto a = core::random_string(n, sigma, seed);
    const auto b = seed % 2 == 0
                       ? core::plant_edits(a, n / 20, seed + 5, false, sigma).text
                       : core::random_string(n - 7, sigma, seed + 9);
    ASSERT_EQ(edit_distance_fast(a, b), edit_distance(a, b)) << "n=" << n;
  }
}

TEST(FastDispatch, BandedAndBoundedAgreeWithScalar) {
  for (const std::int64_t n : {std::int64_t{64}, std::int64_t{200}, std::int64_t{1000}}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto a = core::random_string(n, 8, seed + static_cast<std::uint64_t>(n));
      const auto b =
          core::plant_edits(a, n / 8 + static_cast<std::int64_t>(seed), seed + 3, false, 8)
              .text;
      for (const std::int64_t k : {std::int64_t{1}, std::int64_t{8}, n / 4, n}) {
        ASSERT_EQ(edit_distance_banded_fast(a, b, k), edit_distance_banded(a, b, k))
            << "n=" << n << " k=" << k;
        ASSERT_EQ(edit_distance_bounded_fast(a, b, k), edit_distance_bounded(a, b, k))
            << "n=" << n << " limit=" << k;
      }
    }
  }
}

TEST(FastDispatch, KernelSelection) {
  const auto tiny_a = core::random_string(16, 4, 1);
  const auto tiny_b = core::random_string(16, 4, 2);
  EXPECT_EQ(edit_distance_fast_kernel(tiny_a, tiny_b), EditKernel::kScalar);
  const auto big_a = core::random_string(2000, 4, 3);
  const auto big_b = core::random_string(2000, 4, 4);
  EXPECT_EQ(edit_distance_fast_kernel(big_a, big_b), EditKernel::kMyers);
  // 2000 symbols = 32 blocks: a width-11 band is cheaper cell by cell, a
  // width-401 band clears the ~8-cells-per-word bar.
  EXPECT_EQ(edit_distance_banded_fast_kernel(big_a, big_b, 5),
            EditKernel::kScalarBanded);
  EXPECT_EQ(edit_distance_banded_fast_kernel(big_a, big_b, 200),
            EditKernel::kMyersBounded);
}

TEST(FastDispatch, ChargesModelledCellsNotWords) {
  const auto a = core::random_string(2000, 4, 5);
  const auto b = core::random_string(2000, 4, 6);
  std::uint64_t work = 0;
  edit_distance_fast(a, b, &work);
  EXPECT_EQ(work, 2000u * 2000u);  // full-DP cells, not ~n*blocks words
}

TEST(MyersBanded, KnownValues) {
  using Opt = std::optional<std::int64_t>;
  EXPECT_EQ(edit_distance_myers_banded(to_symbols("kitten"), to_symbols("sitting"), 3),
            Opt(3));
  EXPECT_EQ(edit_distance_myers_banded(to_symbols("kitten"), to_symbols("sitting"), 2),
            std::nullopt);
  EXPECT_EQ(edit_distance_myers_banded(to_symbols("abc"), to_symbols("abc"), 0), Opt(0));
  EXPECT_EQ(edit_distance_myers_banded(SymString{}, to_symbols("xy"), 1), std::nullopt);
  EXPECT_EQ(edit_distance_myers_banded(SymString{}, to_symbols("xy"), 2), Opt(2));
  EXPECT_EQ(edit_distance_myers_banded(to_symbols("a"), to_symbols("a"), 5), Opt(0));
}

TEST(MyersBanded, MatchesBandedAcrossAlphabetsAndLengths) {
  // The exactness argument says the windowed kernel's verdict must equal
  // the scalar band's for every cap, narrow through slack, either
  // orientation; lengths straddle the block boundaries where the window
  // slides mid-stripe.
  const std::int64_t lengths[] = {0, 1, 2, 63, 64, 65, 127, 129, 320, 1000};
  const Symbol alphabets[] = {2, 4, 26, 1000};
  for (const Symbol sigma : alphabets) {
    for (const std::int64_t n : lengths) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const auto a =
            core::random_string(n, sigma, seed * 11 + static_cast<std::uint64_t>(n));
        const auto b =
            seed % 2 == 0
                ? core::plant_edits(a, n / 12 + static_cast<std::int64_t>(seed),
                                    seed + 29, false, sigma)
                      .text
                : core::random_string(
                      std::max<std::int64_t>(0, n + static_cast<std::int64_t>(seed) - 1),
                      sigma, seed + 77);
        for (const std::int64_t k : {std::int64_t{0}, std::int64_t{1}, std::int64_t{7},
                                     n / 16 + 1, n / 3 + 1, n + 4}) {
          ASSERT_EQ(edit_distance_myers_banded(a, b, k), edit_distance_banded(a, b, k))
              << "sigma=" << sigma << " n=" << n << " seed=" << seed << " k=" << k;
        }
      }
    }
  }
}

TEST(MyersBanded, WorkIsWindowWordsAndDeterministic) {
  // A narrow band over a multi-block pattern must touch far fewer words
  // than the full-width kernel, and the count must be a pure function of
  // the shapes (re-run identical).
  const auto a = core::random_string(2000, 4, 21);
  const auto b = core::plant_edits(a, 12, 22, false, 4).text;
  std::uint64_t banded = 0;
  std::uint64_t banded2 = 0;
  std::uint64_t full = 0;
  const auto d = edit_distance_myers_banded(a, b, 64, &banded);
  edit_distance_myers_banded(a, b, 64, &banded2);
  edit_distance_myers(a, b, &full);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(banded, banded2);
  // 2000-symbol pattern = 32 blocks/column full-width; the k=64 window
  // holds <= 4 blocks.
  EXPECT_LT(banded, full / 6);
}

TEST(OutputSensitive, MatchesScalarOnManyRandomCases) {
  for (std::uint64_t c = 0; c < 3000; ++c) {
    const auto sigma = static_cast<Symbol>(2 + (c * 37) % 999);
    const auto na = static_cast<std::int64_t>((c * 131) % 150);
    const auto nb = static_cast<std::int64_t>((c * 61 + 31) % 150);
    const auto a = core::random_string(na, sigma, c);
    const auto b = c % 3 == 0
                       ? core::plant_edits(a, nb / 8 + 1, c + 1, false, sigma).text
                       : core::random_string(nb, sigma, c + 10007);
    ASSERT_EQ(edit_distance_output_sensitive(a, b), edit_distance(a, b))
        << "case=" << c << " sigma=" << sigma;
  }
}

TEST(OutputSensitive, BoundedVerdictMatchesScalar) {
  for (std::uint64_t c = 0; c < 600; ++c) {
    const auto sigma = static_cast<Symbol>(2 + (c * 13) % 200);
    const auto n = static_cast<std::int64_t>(40 + (c * 97) % 400);
    const auto a = core::random_string(n, sigma, c);
    const auto b = core::plant_edits(a, static_cast<std::int64_t>(c % 60), c + 3,
                                     false, sigma)
                       .text;
    const auto limit = static_cast<std::int64_t>(c * 31 % 80);
    ASSERT_EQ(edit_distance_output_sensitive_bounded(a, b, limit),
              edit_distance_bounded(a, b, limit))
        << "case=" << c << " limit=" << limit;
  }
}

TEST(OutputSensitive, TrimEdgeCases) {
  using Opt = std::optional<std::int64_t>;
  // Identical, shared-prefix, shared-suffix, and fully-nested pairs: the
  // trim must never change the answer.
  const auto base = core::random_string(512, 4, 5);
  EXPECT_EQ(edit_distance_output_sensitive(base, base), 0);
  EXPECT_EQ(edit_distance_output_sensitive_bounded(base, base, 0), Opt(0));
  auto ins = base;
  ins.insert(ins.begin() + 200, Symbol{99});
  EXPECT_EQ(edit_distance_output_sensitive(base, ins), 1);
  EXPECT_EQ(edit_distance_output_sensitive_bounded(base, ins, 0), std::nullopt);
  SymString prefix(base.begin(), base.begin() + 100);
  EXPECT_EQ(edit_distance_output_sensitive(base, prefix), 412);
  EXPECT_EQ(edit_distance_output_sensitive(SymString{}, SymString{}), 0);
  EXPECT_EQ(edit_distance_output_sensitive(SymString{}, base), 512);
}

TEST(OutputSensitive, NearDuplicateWorkIsOutputSensitive) {
  // The point of the ladder: on a near-duplicate pair the modelled charge
  // must be a sliver of the full DP.
  const auto a = core::random_string(4000, 4, 9);
  const auto b = core::plant_edits(a, 4, 10, false, 4).text;
  std::uint64_t work = 0;
  ASSERT_EQ(edit_distance_output_sensitive(a, b, &work), edit_distance(a, b));
  EXPECT_LT(work, 4000u * 4000u / 50u);
}

}  // namespace
}  // namespace mpcsd::seq
