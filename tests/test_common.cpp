// Unit tests for the support library: serialization, RNG, Fenwick trees,
// geometric grids, and the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "common/cpu.hpp"
#include "common/fenwick.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace mpcsd {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put<std::int64_t>(-42);
  w.put<std::uint32_t>(7);
  w.put<double>(3.25);
  const Bytes buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripVectorAndString) {
  ByteWriter w;
  const std::vector<std::int32_t> v{1, -2, 3};
  w.put_vector(v);
  w.put_string("hello");
  const Bytes buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.get_vector<std::int32_t>(), v);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, EmptyVectorRoundTrip) {
  ByteWriter w;
  w.put_vector(std::vector<std::int64_t>{});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.get_vector<std::int64_t>().empty());
}

TEST(Bytes, OverReadThrows) {
  ByteWriter w;
  w.put<std::int32_t>(1);
  ByteReader r(w.bytes());
  (void)r.get<std::int32_t>();
  EXPECT_THROW((void)r.get<std::int32_t>(), ContractViolation);
}

TEST(Bytes, ConcatPreservesOrder) {
  ByteWriter a;
  a.put<std::int32_t>(1);
  ByteWriter b;
  b.put<std::int32_t>(2);
  const Bytes merged = concat({a.bytes(), b.bytes()});
  ByteReader r(merged);
  EXPECT_EQ(r.get<std::int32_t>(), 1);
  EXPECT_EQ(r.get<std::int32_t>(), 2);
}

TEST(Rng, Deterministic) {
  Pcg32 a = derive_stream(1, 2, 3);
  Pcg32 b = derive_stream(1, 2, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer) {
  Pcg32 a = derive_stream(1, 2, 3);
  Pcg32 b = derive_stream(1, 2, 4);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Pcg32 rng(42, 54);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInclusiveRange) {
  Pcg32 rng(1, 2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(Rng, BernoulliExtremes) {
  Pcg32 rng(9, 9);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateApproximatelyCorrect) {
  Pcg32 rng(7, 8);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(FenwickMin, PrefixMinMatchesBruteForce) {
  Pcg32 rng(5, 6);
  const std::size_t n = 64;
  FenwickMin<std::int64_t> fen(n);
  std::vector<std::int64_t> ref(n, std::numeric_limits<std::int64_t>::max());
  for (int step = 0; step < 500; ++step) {
    const std::size_t i = rng.below(n);
    const auto v = static_cast<std::int64_t>(rng.below(1000)) - 500;
    fen.update(i, v);
    ref[i] = std::min(ref[i], v);
    const std::size_t q = rng.below(n);
    std::int64_t expected = std::numeric_limits<std::int64_t>::max();
    for (std::size_t k = 0; k <= q; ++k) expected = std::min(expected, ref[k]);
    ASSERT_EQ(fen.prefix_min(q), expected) << "query " << q;
  }
}

struct PayloadEntry {
  std::int64_t v;
  int tag;
  friend bool operator<(const PayloadEntry& a, const PayloadEntry& b) {
    return a.v < b.v;
  }
};

TEST(FenwickMin, CustomPayloadIdentity) {
  using Entry = PayloadEntry;
  FenwickMin<Entry> fen(8, Entry{1 << 30, -1});
  EXPECT_EQ(fen.prefix_min(7).tag, -1);
  fen.update(3, Entry{5, 42});
  fen.update(5, Entry{7, 43});
  EXPECT_EQ(fen.prefix_min(7).tag, 42);
  EXPECT_EQ(fen.prefix_min(2).tag, -1);
}

TEST(FenwickSum, RangeSums) {
  FenwickSum<std::int64_t> fen(10);
  for (std::size_t i = 0; i < 10; ++i) fen.add(i, static_cast<std::int64_t>(i));
  EXPECT_EQ(fen.prefix_sum(9), 45);
  EXPECT_EQ(fen.range_sum(3, 5), 3 + 4 + 5);
  EXPECT_EQ(fen.range_sum(5, 3), 0);
}

TEST(Grid, ContainsZeroOneAndLimit) {
  const auto g = geometric_grid(1000, 0.3);
  EXPECT_EQ(g.front(), 0);
  EXPECT_TRUE(std::find(g.begin(), g.end(), 1) != g.end());
  EXPECT_EQ(g.back(), 1000);
  EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  EXPECT_EQ(std::adjacent_find(g.begin(), g.end()), g.end()) << "duplicates";
}

TEST(Grid, CoversEveryValueWithinFactor) {
  const double eps = 0.25;
  const auto g = geometric_grid(5000, eps);
  for (std::int64_t v = 1; v <= 5000; v += 7) {
    // Some grid point in [v/(1+eps), v].
    const auto it = std::upper_bound(g.begin(), g.end(), v);
    ASSERT_NE(it, g.begin());
    const double lo = static_cast<double>(v) / (1.0 + eps) - 1.0;
    EXPECT_GE(static_cast<double>(*(it - 1)), lo) << "v=" << v;
  }
}

TEST(Grid, RoundUp) {
  const auto g = geometric_grid(100, 0.5);
  EXPECT_EQ(grid_round_up(g, 0), 0);
  for (std::int64_t v = 1; v <= 100; ++v) {
    const auto r = grid_round_up(g, v);
    EXPECT_GE(r, v);
  }
}

TEST(Grid, IntegerPowers) {
  EXPECT_EQ(ipow(1000, 0.5), 31);
  EXPECT_EQ(ipow_ceil(1000, 0.5), 32);
  EXPECT_EQ(ipow(0, 0.5), 0);
  EXPECT_EQ(ipow(1024, 1.0), 1024);
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(1000, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ZeroCountNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, GrainLargerThanCountRunsInline) {
  // count <= grain takes the serial fast path: every index still runs
  // exactly once, in order, on the calling thread.
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(
      5,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      /*grain=*/64);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, InlinePathStillPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   3,
                   [](std::size_t i) {
                     if (i == 1) throw std::runtime_error("inline boom");
                   },
                   /*grain=*/64),
               std::runtime_error);
}

TEST(ThreadPool, InlinePathCancelsAfterFirstThrow) {
  // The serial path mirrors the pool path's cancel-on-first-error
  // semantics: the FIRST exception reaches the caller and the remaining
  // iteration space is not charged for.
  ThreadPool pool(1);
  std::vector<std::size_t> ran;
  try {
    pool.parallel_for(4, [&](std::size_t i) {
      ran.push_back(i);
      throw std::out_of_range("index " + std::to_string(i));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "index 0");
  }
  EXPECT_EQ(ran, (std::vector<std::size_t>{0}));
}

TEST(ThreadPool, PoolSurvivesThrowingBodiesAndStaysUsable) {
  // A throwing body must never terminate the process or wedge a worker:
  // after an exceptional call the same pool completes later work exactly.
  ThreadPool pool(3);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                     if (i % 7 == 3) {
                                       throw std::runtime_error("worker boom");
                                     }
                                   }),
                 std::runtime_error);
    std::atomic<int> total{0};
    pool.parallel_for(128, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 128);
  }
}

TEST(ThreadPool, CancellationSkipsUnclaimedIndices) {
  // With grain 1 and an immediate throw, the cancelled call must not run
  // anywhere near the whole iteration space (already-claimed chunks may
  // finish, so allow a small overshoot proportional to workers).
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(100000,
                                 [&](std::size_t) {
                                   ran.fetch_add(1);
                                   throw std::runtime_error("first");
                                 }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 100000u);
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount) {
  // The same body over the same range must produce identical output for
  // any pool size — the invariant that lets drivers parallelize encode /
  // routing work without perturbing metered results.
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(257);
    pool.parallel_for(
        out.size(),
        [&](std::size_t i) { out[i] = i * 2654435761u + (i << 7); },
        /*grain=*/8);
    return out;
  };
  const auto reference = run(1);
  EXPECT_EQ(run(3), reference);
  EXPECT_EQ(run(7), reference);
}

TEST(Contracts, ViolationThrows) {
  EXPECT_THROW(MPCSD_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(MPCSD_EXPECTS(true));
}

// ---- ISA override resolution (MPCSD_FORCE_ISA policy) ----

TEST(Cpu, OverrideUnsetKeepsDetectedLevel) {
  const IsaOverride r = resolve_isa_override(nullptr, Isa::kAvx2);
  EXPECT_TRUE(r.recognised);
  EXPECT_EQ(r.level, Isa::kAvx2);
}

TEST(Cpu, OverrideClampsDownNeverUp) {
  // Forcing below the detected level wins; forcing above clamps to it
  // (the override can never select an illegal instruction).
  EXPECT_EQ(resolve_isa_override("scalar", Isa::kAvx512).level, Isa::kScalar);
  EXPECT_EQ(resolve_isa_override("avx512", Isa::kScalar).level, Isa::kScalar);
  EXPECT_TRUE(resolve_isa_override("avx512", Isa::kScalar).recognised);
}

TEST(Cpu, UnrecognisedOverrideFallsBackToDetectedAndFlags) {
  // "avx3" and friends used to be silently ignored; the resolver now
  // reports them so the dispatch initialiser can warn on stderr.
  for (const char* bad : {"avx3", "AVX2", "", "neon"}) {
    const IsaOverride r = resolve_isa_override(bad, Isa::kAvx2);
    EXPECT_FALSE(r.recognised) << bad;
    EXPECT_EQ(r.level, Isa::kAvx2) << bad;
  }
}

TEST(Cpu, ActiveIsaAtMostDetected) {
  EXPECT_LE(static_cast<int>(active_isa()), static_cast<int>(detected_isa()));
}

TEST(Cpu, UnrecognisedEnvValueWarnsOnStderrOnce) {
#if defined(__linux__)
  // End-to-end: a child process with a bogus MPCSD_FORCE_ISA must print
  // the warning (when its lazy dispatch init runs) and still pass on the
  // detected level.  Resolve our own binary path first — /proc/self/exe
  // inside a std::system() shell names the shell, not this test.
  char self[4096];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(len, 0);
  self[len] = '\0';
  const std::string cmd =
      std::string("MPCSD_FORCE_ISA=avx3 '") + self +
      "' --gtest_filter=Cpu.ActiveIsaAtMostDetected >/dev/null "
      "2>/tmp/mpcsd_isa_warn && "
      "grep -q \"MPCSD_FORCE_ISA='avx3'\" /tmp/mpcsd_isa_warn";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0);
#else
  GTEST_SKIP() << "self-exec probe is Linux-only";
#endif
}

}  // namespace
}  // namespace mpcsd
