// The batch TSV parser (core/tsv.*) — the CLI's fuzzable input surface.
#include <gtest/gtest.h>

#include <string>

#include "core/tsv.hpp"

namespace mpcsd::core {
namespace {

TEST(Tsv, ParseSymbolsNumericMode) {
  const SymString got = parse_symbols("3 1 4 1 5");
  EXPECT_EQ(got, (SymString{3, 1, 4, 1, 5}));
}

TEST(Tsv, ParseSymbolsTextModeFallback) {
  const SymString got = parse_symbols("ab1");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], static_cast<Symbol>('a'));
  EXPECT_EQ(got[2], static_cast<Symbol>('1'));
}

TEST(Tsv, ParsesValidPairs) {
  const auto queries = parse_batch_tsv("abc\tabd\n1 2 3\t3 2 1\n",
                                       BatchAlgorithm::kEdit);
  ASSERT_TRUE(queries.has_value());
  ASSERT_EQ(queries->size(), 2u);
  EXPECT_EQ((*queries)[0].s, (SymString{'a', 'b', 'c'}));
  EXPECT_EQ((*queries)[1].t, (SymString{3, 2, 1}));
}

TEST(Tsv, ToleratesCrlfBlankLinesAndMissingFinalNewline) {
  const auto queries = parse_batch_tsv("ab\tba\r\n\n\ncd\tdc",
                                       BatchAlgorithm::kEdit);
  ASSERT_TRUE(queries.has_value());
  EXPECT_EQ(queries->size(), 2u);
  EXPECT_EQ((*queries)[0].t, (SymString{'b', 'a'}));  // \r stripped
}

TEST(Tsv, RejectsLineWithoutTab) {
  TsvError error;
  const auto queries =
      parse_batch_tsv("ok\tok\nnotab\n", BatchAlgorithm::kEdit, &error);
  EXPECT_FALSE(queries.has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("TAB"), std::string::npos);
}

TEST(Tsv, RejectsEmptyInput) {
  TsvError error;
  EXPECT_FALSE(parse_batch_tsv("", BatchAlgorithm::kEdit, &error).has_value());
  EXPECT_EQ(error.line, 0u);
  EXPECT_FALSE(parse_batch_tsv("\n\r\n\n", BatchAlgorithm::kEdit).has_value());
}

TEST(Tsv, UlamRequiresRepeatFreeSides) {
  TsvError error;
  const auto queries =
      parse_batch_tsv("1 2 3\t3 2 1\n1 1 2\t2 1 3\n", BatchAlgorithm::kUlam,
                      &error);
  EXPECT_FALSE(queries.has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("repeat-free"), std::string::npos);
  // The same pairs are fine under edit distance.
  EXPECT_TRUE(parse_batch_tsv("1 2 3\t3 2 1\n1 1 2\t2 1 3\n",
                              BatchAlgorithm::kEdit)
                  .has_value());
}

TEST(Tsv, NullErrorPointerIsAccepted) {
  EXPECT_FALSE(parse_batch_tsv("notab\n", BatchAlgorithm::kEdit).has_value());
}

TEST(Tsv, EmptySidesParseAsEmptyStrings) {
  const auto queries = parse_batch_tsv("\tabc\n", BatchAlgorithm::kEdit);
  ASSERT_TRUE(queries.has_value());
  EXPECT_TRUE((*queries)[0].s.empty());
  EXPECT_EQ((*queries)[0].t.size(), 3u);
}

}  // namespace
}  // namespace mpcsd::core
