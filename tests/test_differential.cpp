// Differential fuzzing: every engine that computes the same quantity is
// compared on a large deterministic corpus of random instances.  This is
// the safety net under all other tests — any divergence between two
// implementations of the same function is a bug in one of them.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/lis.hpp"
#include "seq/myers.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"

namespace mpcsd::seq {
namespace {

struct Instance {
  SymString a;
  SymString b;
};

Instance random_instance(std::uint64_t seed, bool repeat_free) {
  Pcg32 rng = derive_stream(seed, 0xD1FF);
  const auto na = 1 + rng.below(120);
  Instance inst;
  if (repeat_free) {
    inst.a = core::random_permutation(na, seed * 3 + 1);
    switch (rng.below(3)) {
      case 0:
        inst.b = core::plant_edits(inst.a, rng.below(40), seed * 3 + 2, true).text;
        break;
      case 1:
        inst.b = core::random_permutation(1 + rng.below(120), seed * 3 + 2);
        break;
      default:
        inst.b = core::rotate_by(inst.a, rng.below(na));
        break;
    }
  } else {
    const Symbol sigma = 2 + static_cast<Symbol>(rng.below(8));
    inst.a = core::random_string(na, sigma, seed * 3 + 1);
    switch (rng.below(3)) {
      case 0:
        inst.b = core::plant_edits(inst.a, rng.below(40), seed * 3 + 2, false, sigma).text;
        break;
      case 1:
        inst.b = core::random_string(1 + rng.below(120), sigma, seed * 3 + 2);
        break;
      default:
        inst.b = core::block_shuffle(inst.a, 1 + rng.below(30), seed * 3 + 2);
        break;
    }
  }
  return inst;
}

TEST(Differential, EditDistanceEnginesAgree) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const auto inst = random_instance(seed, false);
    const auto reference = edit_distance(inst.a, inst.b);
    ASSERT_EQ(edit_distance_doubling(inst.a, inst.b), reference) << "seed=" << seed;
    ASSERT_EQ(edit_distance_myers(inst.a, inst.b), reference) << "seed=" << seed;
    // The band certifies exactly at the reference and refuses below it.
    ASSERT_EQ(edit_distance_banded(inst.a, inst.b, reference),
              std::optional<std::int64_t>(reference))
        << "seed=" << seed;
    if (reference > 0) {
      ASSERT_FALSE(edit_distance_banded(inst.a, inst.b, reference - 1).has_value())
          << "seed=" << seed;
    }
  }
}

TEST(Differential, UlamEnginesAgreeWithWagnerFischer) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const auto inst = random_instance(seed, true);
    const auto reference = edit_distance(inst.a, inst.b);
    ASSERT_EQ(ulam_distance(inst.a, inst.b), reference) << "seed=" << seed;
    ASSERT_EQ(ulam_distance_dense(inst.a, inst.b), reference) << "seed=" << seed;
    ASSERT_EQ(ulam_alignment(inst.a, inst.b).distance, reference) << "seed=" << seed;
  }
}

TEST(Differential, BoundedUlamConsistentWithExact) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    const auto inst = random_instance(seed, true);
    const auto reference = ulam_distance(inst.a, inst.b);
    const auto pts = match_points(inst.a, inst.b);
    const auto na = static_cast<std::int64_t>(inst.a.size());
    const auto nb = static_cast<std::int64_t>(inst.b.size());
    Pcg32 rng = derive_stream(seed, 0xCA9);
    const std::int64_t cap = rng.below(140);
    const auto bounded = bounded_ulam_from_match_points(pts, na, nb, cap);
    if (reference <= cap) {
      ASSERT_EQ(bounded, std::optional<std::int64_t>(reference)) << "seed=" << seed;
    } else {
      ASSERT_FALSE(bounded.has_value()) << "seed=" << seed;
    }
  }
}

TEST(Differential, LocalUlamEnginesAgree) {
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    Pcg32 rng = derive_stream(seed, 0x10CA);
    const auto t = core::random_permutation(10 + rng.below(25), seed + 1);
    const auto edited = core::plant_edits(t, rng.below(8), seed + 2, true).text;
    const auto from = rng.below(static_cast<std::uint32_t>(edited.size()));
    const auto len = 1 + rng.below(static_cast<std::uint32_t>(edited.size() - from));
    const SymView block = subview(edited, {static_cast<std::int64_t>(from),
                                           static_cast<std::int64_t>(from + len)});
    const auto brute = local_ulam_bruteforce(block, t);
    const auto sparse = local_ulam(block, t);
    const auto dense = local_ulam_dense(block, t);
    ASSERT_EQ(sparse.distance, brute.distance) << "seed=" << seed;
    ASSERT_EQ(dense.distance, brute.distance) << "seed=" << seed;
  }
}

TEST(Differential, CombineSolversAgreeOnAdversarialTuples) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    Pcg32 rng = derive_stream(seed, 0xC0B1);
    const std::int64_t n = 1 + rng.below(60);
    const std::int64_t n_bar = 1 + rng.below(60);
    std::vector<Tuple> tuples;
    const auto count = rng.below(60);
    for (std::uint32_t i = 0; i < count; ++i) {
      Tuple t;
      t.block_begin = rng.uniform(0, n - 1);
      t.block_end = rng.uniform(t.block_begin + 1, n);
      t.window_begin = rng.uniform(0, n_bar);
      t.window_end = rng.uniform(t.window_begin, n_bar);
      t.distance = rng.uniform(0, 10);
      tuples.push_back(t);
    }
    for (const GapCost gap : {GapCost::kMax, GapCost::kSum}) {
      const auto fast =
          combine_tuples(tuples, n, n_bar, CombineOptions{gap, true, false});
      const auto naive =
          combine_tuples_naive(tuples, n, n_bar, CombineOptions{gap, false, false});
      ASSERT_EQ(fast, naive) << "seed=" << seed << " gap=" << static_cast<int>(gap);
    }
  }
}

TEST(Differential, LcsFastPathAgreesOnMixedAlphabets) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    Pcg32 rng = derive_stream(seed, 0x1C5);
    // Partially overlapping repeat-free alphabets.
    const auto n = 1 + rng.below(80);
    SymString a(n);
    SymString b(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      a[i] = static_cast<Symbol>(i * 2);            // evens
      b[i] = static_cast<Symbol>(i * 2 + (i % 3 ? 0 : 1));  // some odds
    }
    // Shuffle both.
    for (std::size_t i = n; i > 1; --i) std::swap(a[i - 1], a[rng.below(static_cast<std::uint32_t>(i))]);
    for (std::size_t i = n; i > 1; --i) std::swap(b[i - 1], b[rng.below(static_cast<std::uint32_t>(i))]);
    ASSERT_EQ(lcs_length_repeat_free(a, b), lcs_length(a, b)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace mpcsd::seq
