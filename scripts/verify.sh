#!/usr/bin/env bash
# Tier-1 verification: build + ctest under one or more CMake presets.
# Usage: scripts/verify.sh [preset ...]   (default: release asan)
# Supported presets: default, release, asan, ubsan, tsan (tsan's test
# preset excludes the perf label — wall-clock gates are meaningless under
# TSan; ubsan builds with -fno-sanitize-recover=all so any UB aborts).
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(release asan)
fi

for preset in "${presets[@]}"; do
  echo "==> configure [$preset]"
  cmake --preset "$preset" >/dev/null
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> ctest [$preset]"
  ctest --preset "$preset" -j "$(nproc)"
done
echo "verify: all presets green (${presets[*]})"
