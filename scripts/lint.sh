#!/usr/bin/env bash
# Invariant lint for mpcsd.  Three layers:
#
#   1. grep-based repository invariants (always run, zero dependencies) —
#      rules the MPC simulation's correctness argument relies on and a
#      compiler cannot enforce;
#   2. mpcsd_verify (tools/mpcsd_verify), the token/AST conformance
#      analyzer.  When the binary exists in the build dir it supersedes
#      grep rules 3/4/6/7/8/8b/9 for src/ with lexer-accurate matching (no
#      string/comment false hits) and adds the purity and determinism
#      rules grep cannot express; the remaining grep passes of those rules
#      then only cover fuzz/ and examples/.  `--no-ast` forces the full
#      grep fallback (what a container without the built tool gets).
#   3. clang-tidy over src/ with the committed .clang-tidy profile (run
#      only when a clang-tidy binary exists; CI installs one, minimal
#      containers may not have it).
#
# Zero suppressions: a rule that needs an exception is a wrong rule.
# Usage: scripts/lint.sh [--no-ast] [build_dir]   (build dir must hold
#        compile_commands.json for the clang-tidy layer; default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

no_ast=0
if [ "${1:-}" = "--no-ast" ]; then
  no_ast=1
  shift
fi
build_dir="${1:-build}"
status=0

# Layer-2 analyzer: prefer an explicit override, else the built tool.
verify_bin="${MPCSD_VERIFY_BIN:-$build_dir/tools/mpcsd_verify/mpcsd_verify}"
ast_active=0
if [ "$no_ast" -eq 0 ] && [ -x "$verify_bin" ]; then
  ast_active=1
fi

fail() {
  echo "lint: FAIL: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  status=1
}

# Every rule scans the library and harness sources.  Tests deliberately
# violate some invariants (e.g. the auditor negative tests mutate inbox
# views), so they are out of scope.
sources=(src fuzz examples)

# Rules the analyzer supersedes for src/ scan only the harness trees when
# it is active; rules 3 and 6 are src-scoped, so the analyzer covers them
# entirely.
if [ "$ast_active" -eq 1 ]; then
  conf_sources=(fuzz examples)
else
  conf_sources=("${sources[@]}")
fi

# --- Rule 1: no C rand()/srand() — all randomness must flow through the
# seeded Pcg32 streams, or machine results depend on global hidden state.
hits=$(grep -rnE '\b(s?rand)\s*\(' "${sources[@]}" --include='*.hpp' --include='*.cpp' || true)
[ -n "$hits" ] && fail "rand()/srand() forbidden; use common/rng.hpp streams" "$hits"

# --- Rule 2: no raw new/delete — ownership goes through containers and
# smart pointers, so round arenas cannot leak across rounds.  Line comments
# are stripped before matching (prose talks about "deleting" edits).
pat='(^|[^_[:alnum:]])(new|delete(\[\])?)[[:space:]]+[A-Za-z_:<(]'
hits=$(grep -rnE "$pat" "${sources[@]}" --include='*.hpp' --include='*.cpp' \
  | sed 's#//.*##' | grep -E "$pat" || true)
[ -n "$hits" ] && fail "raw new/delete forbidden; use containers or make_unique" "$hits"

# --- Rule 3: no mutable lambdas in the simulator and drivers — a machine
# body with `mutable` captured state is exactly the cross-machine sharing
# the conformance auditor exists to catch; keep it out statically too.
# (Superseded by mpcsd_verify conf-mutable-lambda when the analyzer runs.)
if [ "$ast_active" -eq 0 ]; then
  hits=$(grep -rnE '\)[[:space:]]*mutable\b' \
    src/mpc src/ulam_mpc src/edit_mpc src/core --include='*.hpp' --include='*.cpp' || true)
  [ -n "$hits" ] && fail "mutable lambda captures forbidden in simulator/driver code" "$hits"
fi

# --- Rule 4: reinterpret_cast is confined to the serialization layer
# (common/bytes.hpp) — every cross-machine byte must go through
# ByteWriter/ByteReader so communication accounting stays exact.  The SIMD
# kernel TUs are the one other legitimate user: vector load/store
# intrinsics take __m256i* pointers over word buffers the TU itself owns
# (no wire bytes involved).
# (Superseded by mpcsd_verify conf-reinterpret-cast for src/.)
hits=$(grep -rn 'reinterpret_cast' "${conf_sources[@]}" --include='*.hpp' --include='*.cpp' \
  | grep -v '^src/common/bytes.hpp:' \
  | grep -v '^src/seq/myers_simd_' \
  | grep -v '^fuzz/' || true)
[ -n "$hits" ] && fail "reinterpret_cast outside common/bytes.hpp or the SIMD kernel TUs; route bytes through ByteWriter/ByteReader" "$hits"

# --- Rule 5: no wall-clock or nondeterministic seeds in library code —
# time only through common/timer.hpp Stopwatch, which metering excludes.
hits=$(grep -rnE 'std::random_device|time\(NULL\)|time\(nullptr\)' \
  src --include='*.hpp' --include='*.cpp' || true)
[ -n "$hits" ] && fail "nondeterministic seed source in src/; seeds must be explicit" "$hits"

# --- Rule 6: wall-clock accounting flows through the observability spine —
# RoundReport::wall_seconds is stamped exactly once (cluster.cpp, where the
# round ran) and merged in stats.cpp (merge_parallel takes the max of
# side-by-side rounds).  Any other write in src/ is a layer bypassing the
# spine; it would silently diverge from the spans/counters the obs layer
# reports for the same interval.  src/obs/ is exempt by construction (it
# renders the field, it may never fake it — but the rule keeps the door
# open for sinks that reconstruct reports).
# (Superseded by mpcsd_verify conf-wall-seconds when the analyzer runs.)
if [ "$ast_active" -eq 0 ]; then
  hits=$(grep -rnE '[.>]wall_seconds[[:space:]]*=[^=]' \
    src --include='*.hpp' --include='*.cpp' \
    | grep -v '^src/obs/' \
    | grep -v '^src/mpc/cluster.cpp:' \
    | grep -v '^src/mpc/stats.cpp:' || true)
  [ -n "$hits" ] && fail "wall_seconds written outside src/obs/, src/mpc/cluster.cpp, src/mpc/stats.cpp; route timing through the obs spine" "$hits"
fi

# --- Rule 7: intrinsics headers are confined to the per-ISA kernel TUs
# (src/seq/*_simd*.cpp) and the CPU probe (src/common/cpu.*).  Everything
# else must stay portable C++ dispatching through myers_kernel.hpp — an
# intrinsic leaking into a shared TU would tie the whole binary to one ISA
# and break the runtime-dispatch release story.
# (Superseded by mpcsd_verify conf-intrinsics for src/.)
hits=$(grep -rnE '#include[[:space:]]*<(immintrin|x86intrin|emmintrin|smmintrin|avxintrin|avx2intrin|avx512[a-z]*intrin)\.h>' \
  "${conf_sources[@]}" --include='*.hpp' --include='*.cpp' \
  | grep -v '^src/seq/[A-Za-z0-9_]*_simd[A-Za-z0-9_]*\.cpp:' \
  | grep -v '^src/common/cpu\.' || true)
[ -n "$hits" ] && fail "intrinsics header outside src/seq/*_simd*.cpp and src/common/cpu.*; keep ISA-specific code behind the dispatch boundary" "$hits"

# --- Rule 8: process-isolation primitives are confined to the process
# backend TU (src/mpc/backend_process.cpp) and the socket transport TU
# (src/mpc/transport_socket.cpp, which forks its connect-back workers).
# fork/mmap/memfd scattered through the simulator would make "bodies
# cannot touch host memory" a property of many files instead of one
# reviewable boundary, and a second fork site could silently skip the
# round-barrier/reap protocol.
# (Superseded by mpcsd_verify conf-process-primitive for src/.)
hits=$(grep -rnE '\b(fork|vfork|mmap|munmap|memfd_create|shm_open|shm_unlink)\s*\(' \
  "${conf_sources[@]}" --include='*.hpp' --include='*.cpp' \
  | grep -v '^src/mpc/backend_process\.cpp:' \
  | grep -v '^src/mpc/transport_socket\.cpp:' || true)
[ -n "$hits" ] && fail "process/shared-memory primitives outside src/mpc/backend_process.cpp and src/mpc/transport_socket.cpp; keep isolation in the backend boundary" "$hits"

# --- Rule 8b: socket primitives are confined to the socket transport TU
# (src/mpc/transport_socket.cpp) — every byte that leaves the process over
# a network fd crosses one reviewable boundary, so the frame protocol (and
# its counters) cannot be bypassed.  std::bind is the false friend here;
# it is filtered, not allowed.
# (Superseded by mpcsd_verify conf-socket-primitive for src/.)
hits=$(grep -rnE '\b(socket|bind|listen|accept4?|connect)\s*\(' \
  "${conf_sources[@]}" --include='*.hpp' --include='*.cpp' \
  | grep -v 'std::bind' \
  | grep -v '^src/mpc/transport_socket\.cpp:' || true)
[ -n "$hits" ] && fail "socket primitives outside src/mpc/transport_socket.cpp; network bytes go through the socket transport boundary" "$hits"

# --- Rule 9: router heuristics and cost-model constants are confined to
# src/core/router.* — every kRouter* knob (nanosecond coefficients, the
# probe margin, the histogram span cutoff) lives behind one reviewable
# boundary.  A kRouter identifier anywhere else is a second copy of the
# cost model drifting out of calibration, or a caller hard-coding a
# heuristic the router owns.
# (Superseded by mpcsd_verify conf-router-constant for src/.)
hits=$(grep -rnE '\bkRouter[A-Za-z0-9_]*' "${conf_sources[@]}" --include='*.hpp' --include='*.cpp' \
  | grep -v '^src/core/router\.' || true)
[ -n "$hits" ] && fail "kRouter* constant outside src/core/router.*; cost-model knobs stay in the router boundary" "$hits"

if [ $status -ne 0 ]; then
  echo "lint: invariant rules failed" >&2
  exit 1
fi
echo "lint: invariant rules OK"

# --- Layer 2: mpcsd_verify conformance analyzer (mandatory pass when the
# binary exists; supersedes rules 3/4/6/7/8/8b/9 for src/ and adds the
# purity/determinism rules).
if [ "$ast_active" -eq 1 ]; then
  echo "lint: mpcsd_verify over src/"
  "$verify_bin" --quiet --compdb "$build_dir" src || {
    echo "lint: mpcsd_verify found conformance violations (re-run without --quiet for details):" >&2
    "$verify_bin" --compdb "$build_dir" src >&2 || true
    exit 1
  }
  echo "lint: mpcsd_verify OK"
else
  echo "lint: mpcsd_verify not available; grep fallback covered rules 3/4/6/7/8/8b/9"
fi

# --- Layer 3: clang-tidy (optional tool, mandatory pass when present).
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "lint: no $build_dir/compile_commands.json; configure first (cmake --preset default)" >&2
    exit 1
  fi
  mapfile -t files < <(find src fuzz -name '*.cpp' | sort)
  echo "lint: clang-tidy over ${#files[@]} files"
  clang-tidy -p "$build_dir" --quiet "${files[@]}" || {
    echo "lint: clang-tidy failed" >&2
    exit 1
  }
  echo "lint: clang-tidy OK"
else
  echo "lint: clang-tidy not found; skipped (grep invariants still enforced)"
fi
