// Table 1, machine-count column, as a function of the memory exponent x:
// ours Õ(n^{(9/5)x}) vs the [20] baseline Õ(n^{2x}) at a fixed n — the
// crossover factor n^{x/5} grows with x.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "core/workload.hpp"
#include "edit_mpc/hss_baseline.hpp"
#include "edit_mpc/solver.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Table 1 / machine counts vs memory exponent x",
                "ours ~ n^{(9/5)x} vs [20] ~ n^{2x}; gap ~ n^{x/5} widens with x");

  const std::int64_t n = 2000;
  const auto s = core::random_string(n, 4, 11);
  const auto t = core::plant_edits(s, n / 25, 12, false).text;
  std::printf("n = %lld, planted distance ~ n/25\n\n", static_cast<long long>(n));

  bool ok = true;
  bench::row({"x", "ours_mach", "hss_mach", "measured_gap", "theory_gap"});
  for (const double x : {0.2, 0.25, 0.3}) {
    edit_mpc::EditMpcParams ours;
    ours.x = x;
    ours.unit = edit_mpc::DistanceUnit::kExactBanded;
    const auto r_ours = edit_mpc::edit_distance_mpc(s, t, ours);

    edit_mpc::HssBaselineParams hss;
    hss.x = x;
    const auto r_hss = edit_mpc::hss_edit_distance_mpc(s, t, hss);

    const double gap = static_cast<double>(r_hss.trace.max_machines()) /
                       std::max(1.0, static_cast<double>(r_ours.trace.max_machines()));
    const double theory_gap = std::pow(static_cast<double>(n), x / 5.0);
    ok &= gap >= 1.0;
    bench::row({bench::fmt(x, 2),
                bench::fmt_int(static_cast<long long>(r_ours.trace.max_machines())),
                bench::fmt_int(static_cast<long long>(r_hss.trace.max_machines())),
                bench::fmt(gap, 2), bench::fmt(theory_gap, 2)});
  }

  bench::footer(ok, "baseline never uses fewer machines; the gap tracks n^{x/5} "
                    "up to constants");
  return ok ? 0 : 1;
}
