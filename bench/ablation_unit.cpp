// DESIGN.md ablation: the per-machine distance unit of the small-distance
// pipeline.  The paper's 3+eps factor comes from swapping [20]'s exact DP
// unit for the CGKKS-style 3+eps' unit ([12]); this bench quantifies the
// trade on identical workloads: approximation achieved vs per-machine work.
#include <cstdio>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "edit_mpc/small_distance.hpp"
#include "seq/edit_distance.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Ablation / distance unit (exact banded vs CGKKS-style 3+eps')",
                "exact unit: 1+eps quality, O(B*d) per pair; approx unit: 3+eps "
                "quality, subquadratic worst case (Lemma 6's trade)");

  bool ok = true;
  bench::row({"n", "d", "exact_ed", "u=exact", "u=approx3", "ratio_e", "ratio_a",
              "work_e", "work_a"});
  for (const std::int64_t n : {1000, 3000}) {
    for (const std::int64_t k : {n / 100, n / 20}) {
      const auto s = core::random_string(n, 4, static_cast<std::uint64_t>(n + k));
      const auto t = core::plant_edits(s, k, static_cast<std::uint64_t>(n + k) + 1, false)
                         .text;
      const auto exact = seq::edit_distance(s, t);

      edit_mpc::SmallDistanceParams base;
      base.eps_prime = 0.2;
      base.x = 0.3;
      base.delta_guess = exact + 2;

      auto exact_params = base;
      exact_params.unit = edit_mpc::DistanceUnit::kExactBanded;
      auto approx_params = base;
      approx_params.unit = edit_mpc::DistanceUnit::kApprox3;
      approx_params.approx.epsilon = 0.25;

      const auto re = edit_mpc::run_small_distance(s, t, exact_params);
      const auto ra = edit_mpc::run_small_distance(s, t, approx_params);
      const double ratio_e = exact ? static_cast<double>(re.distance) / exact : 1.0;
      const double ratio_a = exact ? static_cast<double>(ra.distance) / exact : 1.0;
      ok &= re.distance >= exact && ra.distance >= exact;
      ok &= ratio_e <= 1.6 && ratio_a <= 4.0;
      bench::row({bench::fmt_int(n), bench::fmt_int(k), bench::fmt_int(exact),
                  bench::fmt_int(re.distance), bench::fmt_int(ra.distance),
                  bench::fmt(ratio_e, 3), bench::fmt(ratio_a, 3),
                  bench::fmt_int(static_cast<long long>(re.trace.total_work())),
                  bench::fmt_int(static_cast<long long>(ra.trace.total_work()))});
    }
  }

  bench::footer(ok, "both units valid; exact stays ~1+eps, approx within 3+eps");
  return ok ? 0 : 1;
}
