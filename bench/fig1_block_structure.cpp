// Figure 1: "The partitioning of s into n^y blocks of size B = n^{1-y} and
// the transformation of the blocks into their matches via opt ... matched
// substrings span s̄."
//
// We materialise an optimal alignment (Hirschberg), extract each block's
// image, and verify/report the structure: images are consecutive, start at
// 0, end at n̄ (they partition s̄), and the per-block distances sum to at
// most the total distance.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "seq/alignment.hpp"
#include "seq/edit_distance.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 1 / block partition structure",
                "blocks of s partition s; their opt images partition s̄; "
                "per-block costs decompose the optimal solution");

  bool ok = true;
  bench::row({"n", "blocks", "B", "total_ed", "sum_block_ed", "partition"});
  for (const std::int64_t n : {500, 1000, 2000}) {
    const auto s = core::random_string(n, 4, static_cast<std::uint64_t>(n));
    const auto t =
        core::plant_edits(s, n / 20, static_cast<std::uint64_t>(n) + 1, false).text;
    const std::int64_t bsize = n / 10;
    const auto blocks = edit_mpc::make_blocks(n, bsize);
    const auto images = seq::block_images(s, t, blocks);

    bool partition = images.front().begin == 0 &&
                     images.back().end == static_cast<std::int64_t>(t.size());
    for (std::size_t i = 1; i < images.size(); ++i) {
      partition &= images[i].begin == images[i - 1].end;
    }

    std::int64_t sum_block = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      sum_block += seq::edit_distance(subview(s, blocks[i]), subview(t, images[i]));
    }
    const auto total = seq::edit_distance(s, t);
    ok &= partition && sum_block <= total;

    bench::row({bench::fmt_int(n), bench::fmt_int(static_cast<long long>(blocks.size())),
                bench::fmt_int(bsize), bench::fmt_int(total), bench::fmt_int(sum_block),
                partition ? "yes" : "NO"});
  }

  bench::footer(ok, "opt block images partition s̄ and decompose the cost");
  return ok ? 0 : 1;
}
