// Figure 7 / the low-degree extension: if block s[l_i, r_i) transforms into
// s̄[gamma, kappa) in opt, then forcing every sibling block s[l_j, r_j)
// inside the same larger block (size n^{1-y'}) to transform into the
// shifted window s̄[gamma + (l_j - l_i), kappa + (r_j - r_i)) inflates the
// per-larger-block cost by at most a small constant factor (the paper
// bounds it by 2 + 3eps').
//
// We plant workloads, take each larger block's true opt images, extend from
// one block, and report the inflation factor distribution.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "seq/alignment.hpp"
#include "seq/edit_distance.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 7 / low-degree block extension",
                "extending one block's match to its siblings inflates the "
                "larger block's cost by <= 2+3eps' (plus the block's own cost)");

  bool ok = true;
  bench::row({"n", "edits", "larger_blocks", "worst_inflation", "mean_inflation"});
  for (const std::int64_t n : {800, 1600}) {
    for (const std::int64_t edits : {n / 40, n / 10}) {
      const auto s = core::random_string(n, 4, static_cast<std::uint64_t>(n + edits));
      const auto t = core::plant_edits(s, edits,
                                       static_cast<std::uint64_t>(n + edits) + 1, false)
                         .text;
      const auto n_bar = static_cast<std::int64_t>(t.size());
      const std::int64_t block = n / 16;        // normal blocks
      const std::int64_t larger = n / 4;        // larger blocks (4 siblings)
      const auto blocks = edit_mpc::make_blocks(n, block);
      const auto images = seq::block_images(s, t, blocks);

      double worst = 0.0;
      double total_inflation = 0.0;
      int larger_count = 0;
      for (std::int64_t lb = 0; lb * larger < n; ++lb) {
        // Blocks inside this larger block.
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          if (blocks[i].begin / larger == lb) members.push_back(i);
        }
        if (members.size() < 2) continue;
        ++larger_count;

        // True cost of the larger block under opt.
        std::int64_t true_cost = 0;
        for (const std::size_t i : members) {
          true_cost += seq::edit_distance(subview(s, blocks[i]), subview(t, images[i]));
        }

        // Extend from the first member's opt image to all siblings.
        const std::size_t anchor = members.front();
        const Interval aw = images[anchor];
        std::int64_t ext_cost = 0;
        for (const std::size_t j : members) {
          const std::int64_t wb = std::clamp<std::int64_t>(
              aw.begin + (blocks[j].begin - blocks[anchor].begin), 0, n_bar);
          const std::int64_t we = std::clamp<std::int64_t>(
              aw.end + (blocks[j].end - blocks[anchor].end), wb, n_bar);
          ext_cost += seq::edit_distance(subview(s, blocks[j]), subview(t, {wb, we}));
        }
        const double inflation =
            static_cast<double>(ext_cost + 1) / static_cast<double>(true_cost + 1);
        worst = std::max(worst, inflation);
        total_inflation += inflation;
      }
      const double mean = larger_count == 0 ? 1.0 : total_inflation / larger_count;
      // The paper's bound is 2+3eps' relative to the *region's* cost plus
      // the anchored block's own distance; at constant eps' we check a
      // conservative constant.
      ok &= worst <= 8.0;
      bench::row({bench::fmt_int(n), bench::fmt_int(edits), bench::fmt_int(larger_count),
                  bench::fmt(worst), bench::fmt(mean)});
    }
  }

  bench::footer(ok, "extension inflates larger-block costs by a small constant only");
  return ok ? 0 : 1;
}
