// The MPC substrate primitives (sort / hash join / position map) with their
// round and memory profile — the "constant-round black box" steps the MPC
// literature assumes.  Demonstrates that the input-distribution assumption
// behind Theorem 4's two-round count costs exactly two extra rounds when
// run in-model.
#include <cstdio>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "mpc/primitives.hpp"
#include "ulam_mpc/solver.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("MPC primitives / in-model input distribution",
                "sort = 4 rounds, hash join = 2 rounds; Theorem 4 with an "
                "in-model position map = 2 + 2 rounds, same answer");

  // Sort profile.
  {
    mpc::Cluster cluster(mpc::ClusterConfig{});
    std::vector<mpc::KeyValue> records;
    Pcg32 rng = derive_stream(3, 4);
    for (int i = 0; i < 50000; ++i) {
      records.push_back({rng.uniform(-100000, 100000), i});
    }
    const auto sorted = mpc_sort(cluster, records, 32);
    std::printf("mpc_sort (50k records, 32 machines): rounds=%zu max_mem=%lluB\n",
                cluster.trace().round_count(),
                static_cast<unsigned long long>(cluster.trace().max_machine_memory()));
  }

  // Join profile.
  {
    mpc::Cluster cluster(mpc::ClusterConfig{});
    const auto s = core::random_permutation(30000, 1);
    const auto t = core::plant_edits(s, 500, 2, true).text;
    const auto positions = mpc::position_map_round(cluster, s, t, 32);
    std::size_t found = 0;
    for (const auto p : positions) found += (p >= 0);
    std::printf("position_map (n=30k, 32 machines): rounds=%zu matched=%zu/%zu\n",
                cluster.trace().round_count(), found, positions.size());
  }

  // Theorem 4 with and without the in-model map.
  bool ok = true;
  {
    const auto s = core::random_permutation(20000, 5);
    const auto t = core::plant_edits(s, 300, 6, true).text;
    ulam_mpc::UlamMpcParams driver_side;
    ulam_mpc::UlamMpcParams in_model = driver_side;
    in_model.in_model_position_map = true;
    const auto r1 = ulam_mpc::ulam_distance_mpc(s, t, driver_side);
    const auto r2 = ulam_mpc::ulam_distance_mpc(s, t, in_model);
    std::printf("Theorem 4: driver-side map rounds=%zu, in-model rounds=%zu, "
                "answers %lld / %lld\n",
                r1.trace.round_count(), r2.trace.round_count(),
                static_cast<long long>(r1.distance),
                static_cast<long long>(r2.distance));
    ok = r1.distance == r2.distance && r1.trace.round_count() == 2 &&
         r2.trace.round_count() == 4;
  }

  bench::footer(ok, "primitives run in constant rounds and do not change answers");
  return ok ? 0 : 1;
}
