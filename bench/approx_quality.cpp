// Approximation-quality audit across both theorems:
//   Theorem 4 (Ulam):  answer ∈ [opt, (1+eps)·opt]  whp
//   Theorem 9 (edit):  answer ∈ [opt, (3+eps)·opt]
// swept over sizes, distances, eps, and workload families, reporting the
// worst observed ratio per configuration.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "seq/edit_distance.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Approximation-quality audit (Theorems 4 and 9)",
                "Ulam within 1+eps whp; edit distance within 3+eps; both always "
                ">= opt (realizable transformations)");

  bool ok = true;

  std::printf("Ulam distance (Theorem 4):\n");
  bench::row({"n", "d_planted", "eps", "worst_ratio", "bound"});
  for (const std::int64_t n : {1000, 3000}) {
    for (const std::int64_t k : {10L, n / 20, n / 6}) {
      for (const double eps : {0.5, 1.0}) {
        double worst = 1.0;
        for (std::uint64_t seed = 0; seed < 3; ++seed) {
          const auto s = core::random_permutation(n, seed + static_cast<std::uint64_t>(n + k));
          const auto t = core::plant_edits(s, k, seed + 1000, true).text;
          const auto exact = seq::ulam_distance(s, t);
          ulam_mpc::UlamMpcParams params;
          params.epsilon = eps;
          params.seed = seed;
          const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);
          if (result.distance < exact) ok = false;  // validity must never fail
          if (exact > 0) {
            worst = std::max(worst, static_cast<double>(result.distance) /
                                        static_cast<double>(exact));
          }
        }
        ok &= worst <= 1.0 + eps + 1e-9;
        bench::row({bench::fmt_int(n), bench::fmt_int(k), bench::fmt(eps, 2),
                    bench::fmt(worst, 4), bench::fmt(1.0 + eps, 2)});
      }
    }
  }

  std::printf("\nEdit distance (Theorem 9, 3+eps unit):\n");
  bench::row({"n", "d_planted", "workload", "worst_ratio", "bound"});
  for (const std::int64_t n : {400, 1200}) {
    for (const char* family : {"planted", "shuffle"}) {
      double worst = 1.0;
      std::int64_t planted = n / 25;
      for (std::uint64_t seed = 0; seed < 2; ++seed) {
        const auto s = core::random_string(n, 4, seed + static_cast<std::uint64_t>(n));
        const SymString t =
            family == std::string("planted")
                ? core::plant_edits(s, planted, seed + 5, false).text
                : core::block_shuffle(s, n / 8, seed + 6);
        const auto exact = seq::edit_distance(s, t);
        edit_mpc::EditMpcParams params;
        params.epsilon = 1.0;
        params.approx.epsilon = 0.25;
        params.seed = seed;
        const auto result = edit_mpc::edit_distance_mpc(s, t, params);
        if (result.distance < exact) ok = false;
        if (exact > 0) {
          worst = std::max(worst, static_cast<double>(result.distance) /
                                      static_cast<double>(exact));
        }
      }
      ok &= worst <= 4.0 + 1e-9;
      bench::row({bench::fmt_int(n), bench::fmt_int(planted), family,
                  bench::fmt(worst, 4), "4.00"});
    }
  }

  bench::footer(ok, "all answers valid (>= opt) and within the advertised factors");
  return ok ? 0 : 1;
}
