// Table 1, rows "Edit Distance (Theorem 9)" and "[20] baseline":
//   Thm 9: 3+eps approx, 4 rounds, mem ~ n^{1-x}, machines ~ n^{(9/5)x},
//          total work ~ n^{2-min((1-x)/6, 2x/5)};
//   [20] : 1+eps approx, 2 rounds, machines ~ n^{2x}, total work ~ n^2.
//
// Head-to-head on planted-edit workloads (small-distance regime, the
// apples-to-apples machine comparison) plus an ablation of the distance
// unit (3+eps CGKKS-style vs exact banded).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "core/workload.hpp"
#include "edit_mpc/hss_baseline.hpp"
#include "edit_mpc/solver.hpp"
#include "seq/edit_distance.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Table 1 / rows 'Edit Distance, Theorem 9' and '[20] baseline'",
                "ours: 3+eps, 4 rounds, machines ~ n^{(9/5)x}; "
                "[20]: 1+eps, 2 rounds, machines ~ n^{2x}; machine gap ~ n^{x/5}");

  const double x = 0.3;
  const double eps = 1.0;
  std::printf("x = %.2f, eps = %.1f, planted distance ~ n^{0.6}\n\n", x, eps);

  bench::row({"n", "exact", "ours", "ratio", "rounds", "machines", "work",
              "hss", "hss_mach", "mach_gap"});

  std::vector<double> ns;
  std::vector<double> ours_machines;
  std::vector<double> hss_machines;
  std::vector<double> ours_work;
  std::vector<double> ours_parallel;
  double worst_ratio = 1.0;
  bool baseline_never_fewer = true;

  for (const std::int64_t n : {1000, 2000, 4000}) {
    const auto k = static_cast<std::int64_t>(std::pow(static_cast<double>(n), 0.6));
    const auto s = core::random_string(n, 4, static_cast<std::uint64_t>(n));
    const auto t = core::plant_edits(s, k, static_cast<std::uint64_t>(n) + 3, false).text;
    const auto exact = seq::edit_distance(s, t);

    edit_mpc::EditMpcParams params;
    params.x = x;
    params.epsilon = eps;
    params.unit = edit_mpc::DistanceUnit::kApprox3;
    params.approx.epsilon = 0.25;
    // Keep the unit in one regime across the sweep (blocks at these sizes
    // are far below where the windowed machinery beats the censored band;
    // the paper's B^{1/6} unit saving is a ~2x constant here, not an
    // observable exponent).
    params.approx.exact_cutoff = 4096;
    const auto ours = edit_mpc::edit_distance_mpc(s, t, params);

    edit_mpc::HssBaselineParams hss_params;
    hss_params.x = x;
    hss_params.epsilon = eps;
    const auto hss = edit_mpc::hss_edit_distance_mpc(s, t, hss_params);

    const double ratio = exact == 0 ? 1.0
                                    : static_cast<double>(ours.distance) /
                                          static_cast<double>(exact);
    worst_ratio = std::max(worst_ratio, ratio);
    baseline_never_fewer &= hss.trace.max_machines() >= ours.trace.max_machines();

    ns.push_back(static_cast<double>(n));
    ours_machines.push_back(static_cast<double>(ours.trace.max_machines()));
    hss_machines.push_back(static_cast<double>(hss.trace.max_machines()));
    ours_work.push_back(static_cast<double>(ours.trace.total_work()));
    ours_parallel.push_back(
        static_cast<double>(std::max<std::uint64_t>(ours.trace.critical_path_work(), 1)));

    bench::row({bench::fmt_int(n), bench::fmt_int(exact), bench::fmt_int(ours.distance),
                bench::fmt(ratio),
                bench::fmt_int(static_cast<long long>(ours.trace.round_count())),
                bench::fmt_int(static_cast<long long>(ours.trace.max_machines())),
                bench::fmt_int(static_cast<long long>(ours.trace.total_work())),
                bench::fmt_int(hss.distance),
                bench::fmt_int(static_cast<long long>(hss.trace.max_machines())),
                bench::fmt(static_cast<double>(hss.trace.max_machines()) /
                           std::max<double>(1.0, static_cast<double>(ours.trace.max_machines())))});
  }

  const double ours_slope = core::fit_exponent(ns, ours_machines);
  const double hss_slope = core::fit_exponent(ns, hss_machines);
  const double work_slope = core::fit_exponent(ns, ours_work);

  std::printf("\nexponent fits (measured vs paper):\n");
  std::printf("  our machines : %.3f vs %.3f (n^{(9/5)x})\n", ours_slope,
              core::edit_machines_exponent(x));
  std::printf("  [20] machines: %.3f vs %.3f (n^{2x})\n", hss_slope,
              core::hss_machines_exponent(x));
  std::printf("  our total work: %.3f vs %.3f (n^{2-min((1-x)/6,2x/5)}); the\n"
              "    (1-x)/6 unit saving is a ~B^{1/6} ~= 2x constant at these n,\n"
              "    so the measured slope sits between the bound and 2\n",
              work_slope, core::edit_work_exponent(x));
  std::printf("  our parallel time: %.3f vs %.3f (n^{2-min((5+49x)/30,11x/5)})\n",
              core::fit_exponent(ns, ours_parallel), core::edit_parallel_exponent(x));
  std::printf("  worst approximation ratio: %.4f (bound 3+eps = %.1f)\n", worst_ratio,
              3.0 + eps);

  const bool ok = worst_ratio <= 3.0 + eps + 1e-9 && baseline_never_fewer &&
                  hss_slope > ours_slope - 0.05;
  bench::footer(ok,
                "ours within 3+eps with fewer machines than [20]; baseline "
                "exponent exceeds ours (gap ~ n^{x/5})");
  return ok ? 0 : 1;
}
