// google-benchmark micro-benchmarks for the sequential engines — the unit
// costs underlying the Table 1 work columns, plus the DESIGN.md ablations
// (dense vs sparse Ulam, naive vs fast combine, exact vs 3+eps unit).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "seq/approx_edit.hpp"
#include "seq/myers.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/ulam.hpp"

namespace {

using namespace mpcsd;

void BM_EditDistanceFullDp(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_string(n, 4, 1);
  const auto b = core::random_string(n, 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::edit_distance(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EditDistanceFullDp)->Range(256, 4096)->Complexity(benchmark::oNSquared);

void BM_EditDistanceBandedNearPair(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_string(n, 4, 1);
  const auto b = core::plant_edits(a, 32, 3, false).text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::edit_distance_doubling(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EditDistanceBandedNearPair)->Range(1024, 65536)->Complexity(benchmark::oN);

void BM_EditDistanceMyers(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_string(n, 4, 1);
  const auto b = core::random_string(n, 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::edit_distance_myers(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EditDistanceMyers)->Range(256, 16384)->Complexity(benchmark::oNSquared);

void BM_UlamSparse(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_permutation(n, 1);
  const auto b = core::plant_edits(a, n / 20, 2, true).text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::ulam_distance(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_UlamSparse)->Range(1024, 65536)->Complexity(benchmark::oNLogN);

void BM_UlamDense(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_permutation(n, 1);
  const auto b = core::plant_edits(a, n / 20, 2, true).text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::ulam_distance_dense(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_UlamDense)->Range(256, 4096)->Complexity(benchmark::oNSquared);

void BM_LocalUlam(benchmark::State& state) {
  const auto n = state.range(0);
  const auto t = core::random_permutation(n, 5);
  const auto edited = core::plant_edits(t, n / 30, 6, true).text;
  const SymView block = subview(edited, {n / 4, n / 4 + n / 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::local_ulam(block, t));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LocalUlam)->Range(1024, 32768)->Complexity(benchmark::oNLogN);

void BM_ApproxEditNear(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_string(n, 4, 7);
  const auto b = core::plant_edits(a, 48, 8, false).text;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::approx_edit_distance(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ApproxEditNear)->Range(1024, 32768)->Complexity(benchmark::oN);

void BM_ApproxEditFar(benchmark::State& state) {
  const auto n = state.range(0);
  const auto a = core::random_string(n, 4, 9);
  const auto b = core::block_shuffle(a, n / 8, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::approx_edit_distance(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ApproxEditFar)->Range(1024, 4096)->Iterations(1);

void BM_CombineFast(benchmark::State& state) {
  const auto count = state.range(0);
  Pcg32 rng = derive_stream(1, 2);
  std::vector<seq::Tuple> tuples;
  for (std::int64_t i = 0; i < count; ++i) {
    seq::Tuple t;
    t.block_begin = rng.uniform(0, 9999);
    t.block_end = rng.uniform(t.block_begin + 1, 10000);
    t.window_begin = rng.uniform(0, 10000);
    t.window_end = rng.uniform(t.window_begin, 10000);
    t.distance = rng.uniform(0, 50);
    tuples.push_back(t);
  }
  seq::CombineOptions options;
  options.gap = seq::GapCost::kMax;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::combine_tuples(tuples, 10000, 10000, options));
  }
  state.SetComplexityN(count);
}
BENCHMARK(BM_CombineFast)->Range(256, 32768)->Complexity(benchmark::oNLogN);

void BM_CombineNaive(benchmark::State& state) {
  const auto count = state.range(0);
  Pcg32 rng = derive_stream(1, 2);
  std::vector<seq::Tuple> tuples;
  for (std::int64_t i = 0; i < count; ++i) {
    seq::Tuple t;
    t.block_begin = rng.uniform(0, 9999);
    t.block_end = rng.uniform(t.block_begin + 1, 10000);
    t.window_begin = rng.uniform(0, 10000);
    t.window_end = rng.uniform(t.window_begin, 10000);
    t.distance = rng.uniform(0, 50);
    tuples.push_back(t);
  }
  seq::CombineOptions options;
  options.gap = seq::GapCost::kMax;
  options.use_fast = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::combine_tuples_naive(tuples, 10000, 10000, options));
  }
  state.SetComplexityN(count);
}
BENCHMARK(BM_CombineNaive)->Range(256, 4096)->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
