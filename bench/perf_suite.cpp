// Machine-readable performance regression suite (BENCH_PR1.json).
//
// Emits one JSON record per benchmark:
//   { "bench": ..., "n": ..., "wall_seconds": ..., "work": ..., "bytes_moved": ... }
//
//  * edit_unit_{scalar,fast}     — the unit-distance kernel (full DP) that
//    round-1 machines run per (block, window) pair; the fast variant must
//    be >= 3x the scalar at n = 2000 (hard-checked, non-smoke runs).
//  * edit_bounded_{scalar,fast}  — the capped kernel used by the small/large
//    distance pipelines on near pairs.
//  * ulam_combine_{copy,view}    — materialising the combine machine's inbox
//    from round-1 mail: seed semantics concatenate every payload into one
//    buffer (bytes_moved = inbox size); the zero-copy chain reads the
//    envelopes in place (bytes_moved = 0).
//  * ulam_e2e                    — whole Theorem 4 solve; work and
//    bytes_moved come from the execution trace.
//
// `--smoke` runs tiny sizes once, checks the emitted JSON parses, and skips
// the speedup gate — registered in ctest so the suite itself cannot rot.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/workload.hpp"
#include "mpc/cluster.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"
#include "ulam_mpc/solver.hpp"

namespace {

using namespace mpcsd;

struct Record {
  std::string bench;
  std::int64_t n = 0;
  double wall_seconds = 0.0;
  std::uint64_t work = 0;
  std::uint64_t bytes_moved = 0;
};

/// Minimum wall time over `reps` runs of `f` (first run warms caches).
template <typename F>
double time_best(F&& f, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void write_json(const std::vector<Record>& records, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"n\": " << r.n
        << ", \"wall_seconds\": " << r.wall_seconds << ", \"work\": " << r.work
        << ", \"bytes_moved\": " << r.bytes_moved << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

/// Just enough validation for the smoke gate: the file must exist, be a
/// bracket-balanced JSON array, and contain one "bench" key per record.
bool json_well_formed(const std::string& path, std::size_t expected_records) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  long depth = 0;
  std::size_t keys = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '[' || text[i] == '{') ++depth;
    if (text[i] == ']' || text[i] == '}') --depth;
    if (depth < 0) return false;
    if (text.compare(i, 8, "\"bench\":") == 0) ++keys;
  }
  return depth == 0 && keys == expected_records && !text.empty() &&
         text.front() == '[';
}

double record_wall(const std::vector<Record>& records, const std::string& bench,
                   std::int64_t n) {
  for (const Record& r : records) {
    if (r.bench == bench && r.n == n) return r.wall_seconds;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR1.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const int reps = smoke ? 1 : 5;
  const std::vector<std::int64_t> kernel_sizes =
      smoke ? std::vector<std::int64_t>{64, 128}
            : std::vector<std::int64_t>{256, 512, 1024, 2000};
  std::vector<Record> records;

  // ---- Unit-distance kernel: scalar full DP vs dispatched fast path. ----
  for (const std::int64_t n : kernel_sizes) {
    const auto a = core::random_string(n, 4, 1);
    const auto b = core::random_string(n, 4, 2);
    std::int64_t d_scalar = 0;
    std::int64_t d_fast = 0;
    Record scalar{"edit_unit_scalar", n};
    scalar.wall_seconds =
        time_best([&] { d_scalar = seq::edit_distance(a, b); }, reps);
    seq::edit_distance(a, b, &scalar.work);
    records.push_back(scalar);

    Record fast{"edit_unit_fast", n};
    fast.wall_seconds =
        time_best([&] { d_fast = seq::edit_distance_fast(a, b); }, reps);
    seq::edit_distance_fast(a, b, &fast.work);
    records.push_back(fast);
    if (d_scalar != d_fast) {
      std::fprintf(stderr, "FATAL: kernel disagreement at n=%lld: %lld vs %lld\n",
                   static_cast<long long>(n), static_cast<long long>(d_scalar),
                   static_cast<long long>(d_fast));
      return 1;
    }
  }

  // ---- Capped kernel on near pairs (the pipelines' censoring workhorse). ----
  for (const std::int64_t n : kernel_sizes) {
    const auto a = core::random_string(n, 4, 1);
    const auto b = core::plant_edits(a, std::max<std::int64_t>(4, n / 8), 3, false).text;
    const std::int64_t limit = n;
    Record scalar{"edit_bounded_scalar", n};
    scalar.wall_seconds = time_best(
        [&] { (void)seq::edit_distance_bounded(a, b, limit); }, reps);
    seq::edit_distance_bounded(a, b, limit, &scalar.work);
    records.push_back(scalar);

    Record fast{"edit_bounded_fast", n};
    fast.wall_seconds = time_best(
        [&] { (void)seq::edit_distance_bounded_fast(a, b, limit); }, reps);
    seq::edit_distance_bounded_fast(a, b, limit, &fast.work);
    records.push_back(fast);
  }

  // ---- Combine-inbox routing: concatenate-and-copy vs zero-copy chain. ----
  {
    const std::size_t machines = smoke ? 4 : 64;
    const std::size_t tuples_per_machine = smoke ? 16 : 512;
    std::vector<Bytes> inputs(machines);
    mpc::Cluster cluster({});
    const auto mail = cluster.run_round(
        "perf:emit", inputs, [&](mpc::MachineContext& ctx) {
          std::vector<seq::Tuple> tuples(tuples_per_machine);
          for (std::size_t t = 0; t < tuples.size(); ++t) {
            tuples[t] = seq::Tuple{static_cast<std::int64_t>(t),
                                   static_cast<std::int64_t>(t + 8),
                                   static_cast<std::int64_t>(t),
                                   static_cast<std::int64_t>(t + 8), 1};
          }
          ByteWriter w;
          seq::write_tuples(w, tuples);
          ctx.emit(0, std::move(w).take());
        });
    const std::int64_t total_tuples =
        static_cast<std::int64_t>(machines * tuples_per_machine);

    std::size_t parsed = 0;
    Record copy{"ulam_combine_copy", total_tuples};
    copy.wall_seconds = time_best(
        [&] {
          const Bytes inbox = mpc::gather(mail, 0);  // seed semantics: memcpy all
          parsed = seq::read_all_tuples(inbox).size();
        },
        reps);
    copy.bytes_moved = mpc::gather(mail, 0).size();
    records.push_back(copy);

    Record view{"ulam_combine_view", total_tuples};
    view.wall_seconds = time_best(
        [&] {
          const ByteChain inbox = mpc::gather_view(mail, 0);  // reads in place
          parsed = seq::read_all_tuples(inbox).size();
        },
        reps);
    view.bytes_moved = 0;
    records.push_back(view);
    if (parsed != machines * tuples_per_machine) {
      std::fprintf(stderr, "FATAL: combine inbox parsed %zu tuples, expected %zu\n",
                   parsed, machines * tuples_per_machine);
      return 1;
    }
  }

  // ---- End-to-end Theorem 4 solve. ----
  {
    const std::int64_t n = smoke ? 256 : 4096;
    const auto s = core::random_permutation(n, 11);
    const auto t = core::plant_edits(s, n / 16, 12, true).text;
    ulam_mpc::UlamMpcParams params;
    params.seed = 13;
    Record e2e{"ulam_e2e", n};
    ulam_mpc::UlamMpcResult result;
    e2e.wall_seconds = time_best(
        [&] { result = ulam_mpc::ulam_distance_mpc(s, SymView(t), params); },
        smoke ? 1 : 3);
    e2e.work = result.trace.total_work();
    e2e.bytes_moved = result.trace.total_comm_bytes();
    records.push_back(e2e);
  }

  write_json(records, out_path);
  std::printf("perf_suite: %zu records -> %s\n", records.size(), out_path.c_str());
  for (const Record& r : records) {
    std::printf("  %-22s n=%-8lld wall=%.6fs work=%llu bytes_moved=%llu\n",
                r.bench.c_str(), static_cast<long long>(r.n), r.wall_seconds,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.bytes_moved));
  }

  if (smoke) {
    if (!json_well_formed(out_path, records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out_path.c_str());
      return 1;
    }
    std::printf("smoke: JSON well-formed (%zu records)\n", records.size());
    return 0;
  }

  const double scalar_wall = record_wall(records, "edit_unit_scalar", 2000);
  const double fast_wall = record_wall(records, "edit_unit_fast", 2000);
  const double speedup = scalar_wall / fast_wall;
  std::printf("unit-distance speedup at n=2000: %.2fx (gate: >= 3x)\n", speedup);
  if (!(speedup >= 3.0)) {
    std::fprintf(stderr, "FAIL: unit-distance speedup %.2fx < 3x\n", speedup);
    return 1;
  }
  return 0;
}
