// Machine-readable performance regression suite (BENCH_PR1.json +
// BENCH_PR3.json + BENCH_PR5.json + BENCH_PR6.json + BENCH_PR7.json +
// BENCH_PR8.json + BENCH_PR10.json).
//
// BENCH_PR1 — one JSON record per kernel/routing benchmark:
//   { "bench": ..., "n": ..., "wall_seconds": ..., "work": ..., "bytes_moved": ... }
//
//  * edit_unit_{scalar,fast}     — the unit-distance kernel (full DP) that
//    round-1 machines run per (block, window) pair; the fast variant must
//    be >= 3x the scalar at n = 2000 (hard-checked, non-smoke runs).
//  * edit_bounded_{scalar,fast}  — the capped kernel used by the small/large
//    distance pipelines on near pairs.
//  * ulam_combine_{copy,view}    — materialising the combine machine's inbox
//    from round-1 mail: seed semantics concatenate every payload into one
//    buffer (bytes_moved = inbox size); the zero-copy chain reads the
//    envelopes in place (bytes_moved = 0).
//  * ulam_e2e                    — whole Theorem 4 solve; work and
//    bytes_moved come from the execution trace.
//
// BENCH_PR3 — batch throughput: queries/sec of `core::distance_batch`
// against the same B queries solved one `*_distance_mpc` call at a time:
//   { "bench": "ulam_seq"|"ulam_batch"|"edit_seq"|"edit_batch",
//     "mode": "seq"|"parallel"|"throughput", "n": ..., "batch": B,
//     "wall_seconds": ..., "qps": ..., "rounds": ..., "passes": ...,
//     "ratio_vs_seq": ... }
// Every batch record carries its BatchMode and the explicit batch-vs-seq
// throughput ratio at the same (algorithm, n, B) point.
//
// Hard gates:
//  * every tier: a kParallelGuess (and Ulam) batch uses exactly 2 simulated
//    rounds; a kThroughput batch uses 2 rounds per escalation pass (even).
//  * non-smoke, any host: edit kThroughput must hold >= 0.5x the sequential
//    early-exit solver's qps at the largest B — escalation is a *work*
//    reduction, so this holds even single-core (the PR2 parallel-guess mode
//    was ~300x slower here; the ratio is recorded for both modes).
//  * non-smoke, workers > 1: each algorithm's batch must beat sequential
//    (ratio >= 1.0x) at the largest B — the cross-query parallelism win.
//  * non-smoke, workers >= 4: ulam_batch must clear >= 1.5x at B=8.
//
// BENCH_PR5 — the same numbers through the observability spine: every
// record re-emits as a span into an AggregateSink whose rollup is written
// as BENCH_PR5.json (--out3).  All gated measurements run with a sink-less
// recorder wired through every layer — pricing the disabled recorder on the
// hot path — and `--trace-out <file>` additionally captures one traced
// batch run as a Chrome trace-event artifact.
//
// BENCH_PR6 (--out4) — ISA kernel throughput and mail routing:
//  * myers_{scalar,avx2,avx512} — the multi-word Myers kernel forced to
//    each ISA level the host supports, same inputs, distances and work
//    meters cross-checked identical.  Hard gate (non-smoke, AVX2 host):
//    the AVX2 kernel must be >= 2x the scalar kernel at n = 2000.
//  * mail_route_{stable,radix}  — the round-mail router: a flat move +
//    global std::stable_sort baseline vs the cluster's counting/radix
//    scatter, byte-identical output re-verified in-bench.
//
// BENCH_PR7 (--out5) — execution backends: the same batch workloads run
// with machine bodies on the in-process thread pool vs forked worker
// processes (shared-memory result arenas).  Distances and trace structural
// hashes are cross-checked identical in-bench — the backend may only move
// wall clock.  Hard gate (non-smoke): process-backend wall <= 2x the
// thread backend on the edit and ulam batch workloads at n = 2000.
//
// BENCH_PR10 (--out7) — the TCP socket backend: the BENCH_PR7 batch
// workloads run a third time with machine bodies in forked workers that
// stream their results back over localhost TCP frames, alongside the
// thread-backend baseline.  Distances and trace structural hashes are
// cross-checked identical against the thread run.  Hard gate (non-smoke):
// socket-backend wall <= 4x the thread backend on the edit and ulam batch
// workloads at n = 2000 — the per-round fork + connect + frame overhead on
// localhost must stay in the same ballpark as the process backend's.
//
// BENCH_PR8 (--out6) — the cost-model query router: one skewed
// near-duplicate batch (n = 2000, B = 32; 75% of pairs within edit
// distance 8, the rest ~n/8 edits away) solved in kThroughput mode with
// the router off vs auto.  Answers are cross-checked per query (a retired
// query is exact, the ladder certifies (1 + eps): exact <= auto <= off)
// and the decision counts
// (examined / retired_seq / probed / lower_bounded / to_plan) come from a
// sinked AggregateSink re-run so the gated walls still price the disabled
// recorder.  Hard gate (non-smoke): router-auto must hold >= 3x the
// router-off qps on this workload — the output-sensitive portfolio's
// reason to exist.
//
// `--smoke` runs tiny sizes once, checks the emitted JSON parses, and skips
// the speedup gates — registered in ctest so the suite itself cannot rot.
// `--full` adds the expensive points (ulam n=4096 with B up to 64, edit
// kParallelGuess at n=1024).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpu.hpp"
#include "common/thread_pool.hpp"
#include "core/batch.hpp"
#include "core/router.hpp"
#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/backend.hpp"
#include "mpc/cluster.hpp"
#include "mpc/plan.hpp"
#include "obs/recorder.hpp"
#include "obs/sinks.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"
#include "seq/edit_distance_os.hpp"
#include "seq/myers.hpp"
#include "ulam_mpc/solver.hpp"

namespace {

using namespace mpcsd;

struct Record {
  std::string bench;
  std::int64_t n = 0;
  double wall_seconds = 0.0;
  std::uint64_t work = 0;
  std::uint64_t bytes_moved = 0;
};

/// The recorder wired through every measured solver/batch run.  It carries
/// no sink during the gated measurements — which is exactly the point: the
/// ratio gates price the *disabled* recorder on the hot path, proving
/// instrumented builds cost nothing when tracing is off.  Sinks are
/// attached only after the gates, for the BENCH_PR5 aggregate and the
/// optional Chrome artifact.
obs::Recorder bench_recorder;

/// Minimum wall time over `reps` runs of `f` (first run warms caches).
template <typename F>
double time_best(F&& f, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void write_json(const std::vector<Record>& records, const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"n\": " << r.n
        << ", \"wall_seconds\": " << r.wall_seconds << ", \"work\": " << r.work
        << ", \"bytes_moved\": " << r.bytes_moved << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

/// Just enough validation for the smoke gate: the file must exist, be a
/// bracket-balanced JSON array, and contain one "bench" key per record.
bool json_well_formed(const std::string& path, std::size_t expected_records) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  long depth = 0;
  std::size_t keys = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '[' || text[i] == '{') ++depth;
    if (text[i] == ']' || text[i] == '}') --depth;
    if (depth < 0) return false;
    if (text.compare(i, 8, "\"bench\":") == 0) ++keys;
  }
  return depth == 0 && keys == expected_records && !text.empty() &&
         text.front() == '[';
}

double record_wall(const std::vector<Record>& records, const std::string& bench,
                   std::int64_t n) {
  for (const Record& r : records) {
    if (r.bench == bench && r.n == n) return r.wall_seconds;
  }
  return -1.0;
}

// ---- BENCH_PR3: batch throughput ----

struct BatchRecord {
  std::string bench;
  std::string mode;  // "seq" | "parallel" | "throughput"
  std::int64_t n = 0;
  std::size_t batch = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  std::size_t rounds = 0;
  std::size_t passes = 0;
  double ratio_vs_seq = 0.0;  // batch qps / seq qps at the same point
};

template <typename F>
double wall_of(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Median wall time over `reps` runs.  The batch-vs-seq ratio gates compare
/// two wall clocks, so one scheduler hiccup on either side could flip a
/// gate; the median of 3 absorbs a single outlier run.  Model-quantity
/// gates (rounds, passes) stay single-shot — they are deterministic.
template <typename F>
double wall_median(F&& f, int reps) {
  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) walls.push_back(wall_of(f));
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

void write_batch_json(const std::vector<BatchRecord>& records,
                      const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BatchRecord& r = records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"mode\": \"" << r.mode
        << "\", \"n\": " << r.n << ", \"batch\": " << r.batch
        << ", \"wall_seconds\": " << r.wall_seconds << ", \"qps\": " << r.qps
        << ", \"rounds\": " << r.rounds << ", \"passes\": " << r.passes
        << ", \"ratio_vs_seq\": " << r.ratio_vs_seq << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

std::vector<core::BatchQuery> make_batch_queries(std::size_t batch,
                                                 std::int64_t n, bool ulam) {
  std::vector<core::BatchQuery> queries;
  for (std::size_t q = 0; q < batch; ++q) {
    core::BatchQuery query;
    if (ulam) {
      query.s = core::random_permutation(n, 1000 + 2 * q);
      query.t = core::plant_edits(query.s, n / 16, 1001 + 2 * q, true).text;
    } else {
      query.s = core::random_string(n, 8, 2000 + 2 * q);
      query.t = core::plant_edits(query.s, n / 16, 2001 + 2 * q, false).text;
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

/// Sequential baseline: B independent `*_distance_mpc` calls.
double bench_seq_point(std::vector<BatchRecord>& records, bool ulam,
                       std::int64_t n, std::size_t b, int reps) {
  const auto queries = make_batch_queries(b, n, ulam);
  BatchRecord seq;
  seq.bench = ulam ? "ulam_seq" : "edit_seq";
  seq.mode = "seq";
  seq.n = n;
  seq.batch = b;
  std::size_t seq_rounds = 0;
  seq.wall_seconds = wall_median(
      [&] {
        for (const auto& query : queries) {
          if (ulam) {
            ulam_mpc::UlamMpcParams params;
            params.seed = 13;
            params.recorder = &bench_recorder;
            seq_rounds = ulam_mpc::ulam_distance_mpc(query.s, query.t, params)
                             .trace.round_count();
          } else {
            edit_mpc::EditMpcParams params;
            params.recorder = &bench_recorder;
            seq_rounds = edit_mpc::edit_distance_mpc(query.s, query.t, params)
                             .trace.round_count();
          }
        }
      },
      reps);
  seq.qps = double(b) / seq.wall_seconds;
  seq.rounds = seq_rounds;
  records.push_back(seq);
  return seq.qps;
}

/// One `distance_batch` execution in `mode`; records the batch-vs-seq qps
/// ratio.  Returns false on a round-shape violation: a kParallelGuess (or
/// Ulam) batch must share exactly 2 rounds, a kThroughput batch exactly
/// 2 rounds per escalation pass.
bool bench_batch_point(std::vector<BatchRecord>& records, bool ulam,
                       core::BatchMode mode, std::int64_t n, std::size_t b,
                       double seq_qps, int reps) {
  const auto queries = make_batch_queries(b, n, ulam);
  BatchRecord bat;
  bat.bench = ulam ? "ulam_batch" : "edit_batch";
  bat.mode = mode == core::BatchMode::kThroughput ? "throughput" : "parallel";
  bat.n = n;
  bat.batch = b;
  core::BatchResult result;
  bat.wall_seconds = wall_median(
      [&] {
        core::BatchRequest request;
        request.algorithm =
            ulam ? core::BatchAlgorithm::kUlam : core::BatchAlgorithm::kEdit;
        request.mode = mode;
        request.ulam.seed = 13;
        request.recorder = &bench_recorder;
        request.queries = queries;
        result = core::distance_batch(request);
      },
      reps);
  bat.qps = double(b) / bat.wall_seconds;
  bat.rounds = result.trace.round_count();
  bat.passes = result.passes;
  bat.ratio_vs_seq = seq_qps > 0.0 ? bat.qps / seq_qps : 0.0;
  records.push_back(bat);

  if (ulam || mode == core::BatchMode::kParallelGuess) {
    return bat.rounds == 2;
  }
  return bat.rounds == 2 * bat.passes && bat.passes >= 1;
}

double batch_ratio(const std::vector<BatchRecord>& records,
                   const std::string& bench, const std::string& mode,
                   std::int64_t n, std::size_t b) {
  for (const BatchRecord& r : records) {
    if (r.bench == bench && r.mode == mode && r.n == n && r.batch == b) {
      return r.ratio_vs_seq;
    }
  }
  return -1.0;
}

// ---- BENCH_PR8: the query router on a skewed near-duplicate batch ----

struct RouterRecord {
  std::string bench;  // "edit_router_off" | "edit_router_auto"
  std::int64_t n = 0;
  std::size_t batch = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  std::size_t rounds = 0;
  std::size_t passes = 0;
  double ratio_vs_off = 0.0;  // this record's qps / the router-off qps
  // Router decision counts from the sinked re-run (zero for router-off).
  std::uint64_t examined = 0;
  std::uint64_t retired_seq = 0;
  std::uint64_t probed = 0;
  std::uint64_t lower_bounded = 0;
  std::uint64_t to_plan = 0;
};

void write_router_json(const std::vector<RouterRecord>& records,
                       const std::string& path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RouterRecord& r = records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"mode\": \"throughput\""
        << ", \"n\": " << r.n << ", \"batch\": " << r.batch
        << ", \"wall_seconds\": " << r.wall_seconds << ", \"qps\": " << r.qps
        << ", \"rounds\": " << r.rounds << ", \"passes\": " << r.passes
        << ", \"ratio_vs_off\": " << r.ratio_vs_off
        << ", \"router_examined\": " << r.examined
        << ", \"router_retired_seq\": " << r.retired_seq
        << ", \"router_probed\": " << r.probed
        << ", \"router_lower_bounded\": " << r.lower_bounded
        << ", \"router_to_plan\": " << r.to_plan << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool full = false;
  std::string out_path = "BENCH_PR1.json";
  std::string out2_path = "BENCH_PR3.json";
  std::string out3_path = "BENCH_PR5.json";
  std::string out4_path = "BENCH_PR6.json";
  std::string out5_path = "BENCH_PR7.json";
  std::string out6_path = "BENCH_PR8.json";
  std::string out7_path = "BENCH_PR10.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--out2") == 0 && i + 1 < argc) out2_path = argv[++i];
    if (std::strcmp(argv[i], "--out3") == 0 && i + 1 < argc) out3_path = argv[++i];
    if (std::strcmp(argv[i], "--out4") == 0 && i + 1 < argc) out4_path = argv[++i];
    if (std::strcmp(argv[i], "--out5") == 0 && i + 1 < argc) out5_path = argv[++i];
    if (std::strcmp(argv[i], "--out6") == 0 && i + 1 < argc) out6_path = argv[++i];
    if (std::strcmp(argv[i], "--out7") == 0 && i + 1 < argc) out7_path = argv[++i];
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  if (smoke) full = false;
  // Wall-clock ratio gates compare medians of 3 runs (see wall_median);
  // smoke keeps 1 rep — it never evaluates the ratio gates.
  const int wall_reps = smoke ? 1 : 3;

  const int reps = smoke ? 1 : 5;
  const std::vector<std::int64_t> kernel_sizes =
      smoke ? std::vector<std::int64_t>{64, 128}
            : std::vector<std::int64_t>{256, 512, 1024, 2000};
  std::vector<Record> records;

  // ---- Unit-distance kernel: scalar full DP vs dispatched fast path. ----
  for (const std::int64_t n : kernel_sizes) {
    const auto a = core::random_string(n, 4, 1);
    const auto b = core::random_string(n, 4, 2);
    std::int64_t d_scalar = 0;
    std::int64_t d_fast = 0;
    Record scalar{"edit_unit_scalar", n};
    scalar.wall_seconds =
        time_best([&] { d_scalar = seq::edit_distance(a, b); }, reps);
    seq::edit_distance(a, b, &scalar.work);
    records.push_back(scalar);

    Record fast{"edit_unit_fast", n};
    fast.wall_seconds =
        time_best([&] { d_fast = seq::edit_distance_fast(a, b); }, reps);
    seq::edit_distance_fast(a, b, &fast.work);
    records.push_back(fast);
    if (d_scalar != d_fast) {
      std::fprintf(stderr, "FATAL: kernel disagreement at n=%lld: %lld vs %lld\n",
                   static_cast<long long>(n), static_cast<long long>(d_scalar),
                   static_cast<long long>(d_fast));
      return 1;
    }
  }

  // ---- Capped kernel on near pairs (the pipelines' censoring workhorse). ----
  for (const std::int64_t n : kernel_sizes) {
    const auto a = core::random_string(n, 4, 1);
    const auto b = core::plant_edits(a, std::max<std::int64_t>(4, n / 8), 3, false).text;
    const std::int64_t limit = n;
    Record scalar{"edit_bounded_scalar", n};
    scalar.wall_seconds = time_best(
        [&] { (void)seq::edit_distance_bounded(a, b, limit); }, reps);
    seq::edit_distance_bounded(a, b, limit, &scalar.work);
    records.push_back(scalar);

    Record fast{"edit_bounded_fast", n};
    fast.wall_seconds = time_best(
        [&] { (void)seq::edit_distance_bounded_fast(a, b, limit); }, reps);
    seq::edit_distance_bounded_fast(a, b, limit, &fast.work);
    records.push_back(fast);
  }

  // ---- Combine-inbox routing: concatenate-and-copy vs zero-copy chain. ----
  // The emit round runs on the plan layer (typed stage + channel, the same
  // path every library driver uses); the `Codec<std::vector<seq::Tuple>>`
  // wire format is byte-identical to the old hand-rolled `write_tuples`
  // emission.  The copy measurement materialises the inbox through
  // `ByteChain::to_bytes` — the retired copying-gather semantics.
  {
    const std::size_t machines = smoke ? 4 : 64;
    const std::size_t tuples_per_machine = smoke ? 16 : 512;
    constexpr mpc::Channel<std::vector<seq::Tuple>> kInbox{0, "inbox"};
    mpc::Driver driver(
        mpc::Plan{"perf:combine-inbox",
                  {{"perf:emit", "machine id (sharded input)", "inbox"}}},
        {});
    const mpc::Stage<std::uint32_t> emit_stage{
        "perf:emit", [&](mpc::StageContext<std::uint32_t>& ctx) {
          std::vector<seq::Tuple> tuples(tuples_per_machine);
          for (std::size_t t = 0; t < tuples.size(); ++t) {
            tuples[t] = seq::Tuple{static_cast<std::int64_t>(t),
                                   static_cast<std::int64_t>(t + 8),
                                   static_cast<std::int64_t>(t),
                                   static_cast<std::int64_t>(t + 8), 1};
          }
          ctx.send(kInbox, tuples);
        }};
    std::vector<std::uint32_t> ids(machines);
    for (std::size_t i = 0; i < machines; ++i) ids[i] = static_cast<std::uint32_t>(i);
    const auto mail = driver.run(emit_stage, mpc::Driver::shard(ids));
    driver.finish();
    const std::int64_t total_tuples =
        static_cast<std::int64_t>(machines * tuples_per_machine);

    std::size_t parsed = 0;
    Record copy{"ulam_combine_copy", total_tuples};
    copy.wall_seconds = time_best(
        [&] {
          // seed semantics: memcpy every payload into one flat buffer
          const Bytes inbox = mpc::gather_view(mail, kInbox.mailbox).to_bytes();
          parsed = seq::read_all_tuples(inbox).size();
        },
        reps);
    copy.bytes_moved = mpc::gather_view(mail, kInbox.mailbox).to_bytes().size();
    records.push_back(copy);

    Record view{"ulam_combine_view", total_tuples};
    view.wall_seconds = time_best(
        [&] {
          const ByteChain inbox = mpc::gather_view(mail, kInbox.mailbox);
          parsed = seq::read_all_tuples(inbox).size();
        },
        reps);
    view.bytes_moved = 0;
    records.push_back(view);
    if (parsed != machines * tuples_per_machine) {
      std::fprintf(stderr, "FATAL: combine inbox parsed %zu tuples, expected %zu\n",
                   parsed, machines * tuples_per_machine);
      return 1;
    }
  }

  // ---- End-to-end Theorem 4 solve. ----
  {
    const std::int64_t n = smoke ? 256 : 4096;
    const auto s = core::random_permutation(n, 11);
    const auto t = core::plant_edits(s, n / 16, 12, true).text;
    ulam_mpc::UlamMpcParams params;
    params.seed = 13;
    params.recorder = &bench_recorder;
    Record e2e{"ulam_e2e", n};
    ulam_mpc::UlamMpcResult result;
    e2e.wall_seconds = time_best(
        [&] { result = ulam_mpc::ulam_distance_mpc(s, SymView(t), params); },
        smoke ? 1 : 3);
    e2e.work = result.trace.total_work();
    e2e.bytes_moved = result.trace.total_comm_bytes();
    records.push_back(e2e);
  }

  // ---- BENCH_PR6: Myers kernel throughput per ISA level. ----
  // The same (pattern, text) pair runs through the blocked kernel forced to
  // every level the host supports; distances and work meters must agree
  // bit for bit (ISA dispatch is results- and metering-invisible), only
  // wall time may differ.
  std::vector<Record> isa_records;
  {
    const std::vector<std::int64_t> isa_sizes =
        smoke ? std::vector<std::int64_t>{128}
              : std::vector<std::int64_t>{512, 2000, 8192};
    for (const std::int64_t n : isa_sizes) {
      const auto a = core::random_string(n, 8, 71);
      const auto b = core::plant_edits(a, n / 16, 72, false).text;
      force_isa(Isa::kScalar);
      const std::int64_t d_ref = seq::edit_distance_myers(a, b);
      std::uint64_t work_ref = 0;
      seq::edit_distance_myers(a, b, &work_ref);
      for (const Isa level : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
        if (force_isa(level) != level) continue;  // host lacks this level
        std::int64_t d = 0;
        Record r{std::string("myers_") + isa_name(level), n};
        r.wall_seconds =
            time_best([&] { d = seq::edit_distance_myers(a, b); }, reps);
        seq::edit_distance_myers(a, b, &r.work);
        isa_records.push_back(r);
        if (d != d_ref || r.work != work_ref) {
          std::fprintf(stderr,
                       "FATAL: %s kernel diverged at n=%lld: d=%lld/%lld "
                       "work=%llu/%llu\n",
                       isa_name(level), static_cast<long long>(n),
                       static_cast<long long>(d), static_cast<long long>(d_ref),
                       static_cast<unsigned long long>(r.work),
                       static_cast<unsigned long long>(work_ref));
          return 1;
        }
      }
    }
    force_isa(detected_isa());
  }

  // ---- BENCH_PR6: mail routing, stable_sort baseline vs radix scatter. ----
  // One round whose machines emit a skewed burst of small envelopes; the
  // baseline is what routing used to be (flat move + one global
  // std::stable_sort of the merged mail), re-verified byte-identical to
  // what the cluster's radix router produced.
  {
    const std::size_t machines = smoke ? 32 : 512;
    const std::size_t per_machine = smoke ? 4 : 64;
    const auto fill = [&](mpc::MachineContext& ctx) {
      for (std::size_t m = 0; m < per_machine; ++m) {
        const std::uint64_t r = ctx.rng().next();
        const auto dest = r % 4 != 0
                              ? static_cast<std::uint32_t>(r % 3)
                              : static_cast<std::uint32_t>(r % (machines * 4));
        ByteWriter w;
        w.put<std::uint64_t>(ctx.machine_id());
        w.put<std::uint64_t>(m);
        ctx.emit(dest, std::move(w).take());
      }
    };
    const std::vector<Bytes> inputs(machines);
    const auto total =
        static_cast<std::int64_t>(machines * per_machine);

    mpc::ClusterConfig cfg;
    cfg.seed = 31;
    mpc::Cluster cluster(cfg);
    mpc::Mail mail;
    Record radix{"mail_route_radix", total};
    radix.wall_seconds = time_best(
        [&] { mail = cluster.run_round("bench:route", inputs, fill); }, reps);
    radix.work = mail.message_count();
    radix.bytes_moved = cluster.trace().rounds().back().total_comm_bytes;
    isa_records.push_back(radix);

    // Baseline: the envelopes in emission order, then one global sort.
    // Emission order is reconstructed from the (machine id, emission index)
    // header every payload carries, so the baseline sorts genuinely
    // unsorted input like the retired router did.
    std::vector<mpc::Envelope> flat;
    for (const mpc::Envelope& env : mail.all()) {
      flat.push_back(mpc::Envelope{env.dest, env.payload});
    }
    const auto emission_key = [](const mpc::Envelope& env) {
      std::uint64_t machine = 0;
      std::uint64_t index = 0;
      std::memcpy(&machine, env.payload.data(), sizeof machine);
      std::memcpy(&index, env.payload.data() + sizeof machine, sizeof index);
      return std::pair<std::uint64_t, std::uint64_t>(machine, index);
    };
    std::sort(flat.begin(), flat.end(),
              [&](const mpc::Envelope& x, const mpc::Envelope& y) {
                return emission_key(x) < emission_key(y);
              });
    std::vector<mpc::Envelope> sorted;
    Record stable{"mail_route_stable", total};
    stable.wall_seconds = time_best(
        [&] {
          sorted.clear();
          for (const mpc::Envelope& env : flat) {
            sorted.push_back(mpc::Envelope{env.dest, env.payload});
          }
          std::stable_sort(sorted.begin(), sorted.end(),
                           [](const mpc::Envelope& x, const mpc::Envelope& y) {
                             return x.dest < y.dest;
                           });
        },
        reps);
    stable.work = sorted.size();
    stable.bytes_moved = radix.bytes_moved;
    isa_records.push_back(stable);

    // Byte-identical check: the global stable sort of the emission-order
    // envelopes must reproduce exactly what the radix router produced.
    if (sorted.size() != mail.all().size()) {
      std::fprintf(stderr, "FATAL: routing baseline lost envelopes\n");
      return 1;
    }
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i].dest != mail.all()[i].dest ||
          sorted[i].payload != mail.all()[i].payload) {
        std::fprintf(stderr,
                     "FATAL: radix routing differs from stable sort at %zu\n", i);
        return 1;
      }
    }
  }

  // ---- Batch throughput (BENCH_PR3): distance_batch vs sequential. ----
  const std::size_t workers = ThreadPool().worker_count();
  std::vector<BatchRecord> batch_records;
  bool rounds_ok = true;
  const std::int64_t ulam_n = smoke ? 256 : (full ? 4096 : 2048);
  const std::int64_t edit_n = smoke ? 128 : 1024;
  // The kParallelGuess mode runs the whole clipped ladder for every query;
  // at n=1024 that is ~300x the early-exit work, so the default tier
  // records it at a smaller n and only --full pays for the big point.
  const std::int64_t edit_parallel_n = smoke ? 128 : (full ? 1024 : 256);
  const std::size_t max_b = smoke ? 4 : 8;
  {
    std::vector<std::size_t> ulam_batches{1, max_b};
    if (full) ulam_batches.push_back(64);
    for (const std::size_t b : ulam_batches) {
      const double seq_qps =
          bench_seq_point(batch_records, /*ulam=*/true, ulam_n, b, wall_reps);
      rounds_ok = bench_batch_point(batch_records, /*ulam=*/true,
                                    core::BatchMode::kThroughput, ulam_n, b,
                                    seq_qps, wall_reps) &&
                  rounds_ok;
    }
    for (const std::size_t b : {std::size_t{1}, max_b}) {
      const double seq_qps =
          bench_seq_point(batch_records, /*ulam=*/false, edit_n, b, wall_reps);
      rounds_ok = bench_batch_point(batch_records, /*ulam=*/false,
                                    core::BatchMode::kThroughput, edit_n, b,
                                    seq_qps, wall_reps) &&
                  rounds_ok;
    }
    // The paper-literal mode, for the record (and the smoke round gate).
    double parallel_seq_qps = 0.0;
    if (edit_parallel_n == edit_n) {
      for (const BatchRecord& r : batch_records) {
        if (r.bench == "edit_seq" && r.n == edit_n && r.batch == max_b) {
          parallel_seq_qps = r.qps;
        }
      }
    } else {
      parallel_seq_qps = bench_seq_point(batch_records, /*ulam=*/false,
                                         edit_parallel_n, max_b, wall_reps);
    }
    rounds_ok =
        bench_batch_point(batch_records, /*ulam=*/false,
                          core::BatchMode::kParallelGuess, edit_parallel_n,
                          max_b, parallel_seq_qps, wall_reps) &&
        rounds_ok;
  }

  // ---- BENCH_PR7: execution backends, thread pool vs forked processes. ----
  // The same batch workload per algorithm on both backends.  Everything
  // metered must agree bit for bit (checked here); only wall clock may
  // move, and the gate below caps how far.  The same workloads run a third
  // time on the socket backend (BENCH_PR10, --out7): the thread baseline
  // plus the socket records go into their own artifact with the same
  // bit-for-bit cross-checks.
  std::vector<Record> backend_records;
  std::vector<Record> socket_records;
  {
    const std::int64_t backend_n = smoke ? 128 : 2000;
    const std::size_t backend_b = smoke ? 2 : 4;
    for (const bool ulam : {true, false}) {
      const auto queries = make_batch_queries(backend_b, backend_n, ulam);
      const auto solve = [&](mpc::BackendKind backend) {
        core::BatchRequest request;
        request.algorithm =
            ulam ? core::BatchAlgorithm::kUlam : core::BatchAlgorithm::kEdit;
        request.mode = core::BatchMode::kThroughput;
        request.ulam.seed = 13;
        request.ulam.backend = backend;
        request.edit.backend = backend;
        request.recorder = &bench_recorder;
        request.queries = queries;
        return core::distance_batch(request);
      };
      const char* algo = ulam ? "ulam" : "edit";
      core::BatchResult threaded;
      core::BatchResult forked;
      Record thread_rec{std::string(algo) + "_batch_backend_thread", backend_n};
      thread_rec.wall_seconds = wall_median(
          [&] { threaded = solve(mpc::BackendKind::kThread); }, wall_reps);
      thread_rec.work = threaded.trace.total_work();
      thread_rec.bytes_moved = threaded.trace.total_comm_bytes();
      backend_records.push_back(thread_rec);

      Record process_rec{std::string(algo) + "_batch_backend_process",
                         backend_n};
      process_rec.wall_seconds = wall_median(
          [&] { forked = solve(mpc::BackendKind::kProcess); }, wall_reps);
      process_rec.work = forked.trace.total_work();
      process_rec.bytes_moved = forked.trace.total_comm_bytes();
      backend_records.push_back(process_rec);

      core::BatchResult socketed;
      Record socket_rec{std::string(algo) + "_batch_backend_socket",
                        backend_n};
      socket_rec.wall_seconds = wall_median(
          [&] { socketed = solve(mpc::BackendKind::kSocket); }, wall_reps);
      socket_rec.work = socketed.trace.total_work();
      socket_rec.bytes_moved = socketed.trace.total_comm_bytes();
      // BENCH_PR10 carries its thread baseline so the artifact is
      // self-contained.
      socket_records.push_back(thread_rec);
      socket_records.push_back(socket_rec);

      if (forked.trace.structural_hash() != threaded.trace.structural_hash() ||
          socketed.trace.structural_hash() !=
              threaded.trace.structural_hash()) {
        std::fprintf(stderr,
                     "FATAL: %s batch trace hash differs across backends\n",
                     algo);
        return 1;
      }
      for (std::size_t q = 0; q < queries.size(); ++q) {
        if (forked.queries[q].distance != threaded.queries[q].distance ||
            socketed.queries[q].distance != threaded.queries[q].distance) {
          std::fprintf(stderr,
                       "FATAL: %s query %zu distance differs across backends\n",
                       algo, q);
          return 1;
        }
      }
    }
  }

  // ---- BENCH_PR8: router off vs auto on a skewed near-duplicate batch. ----
  // Three quarters of the pairs sit within edit distance 8 (including exact
  // duplicates); the tail is ~n/8 edits away.  Both runs pin an explicit
  // policy — the MPCSD_ROUTER env never reaches an explicit request.
  std::vector<RouterRecord> router_records;
  {
    const std::int64_t router_n = smoke ? 128 : 2000;
    const std::size_t router_b = smoke ? 4 : 32;
    const auto pairs = core::near_duplicate_pairs(
        router_n, router_b, /*near_fraction=*/0.75,
        /*tail_edits=*/std::max<std::int64_t>(4, router_n / 8), /*seed=*/77);
    std::vector<core::BatchQuery> queries;
    queries.reserve(pairs.size());
    for (const core::QueryPair& pair : pairs) {
      core::BatchQuery query;
      query.s = pair.s;
      query.t = pair.t;
      queries.push_back(std::move(query));
    }
    const auto solve = [&](core::RouterPolicy policy, obs::Recorder* rec) {
      core::BatchRequest request;
      request.algorithm = core::BatchAlgorithm::kEdit;
      request.mode = core::BatchMode::kThroughput;
      request.router = policy;
      request.recorder = rec;
      request.queries = queries;
      return core::distance_batch(request);
    };

    core::BatchResult off_result;
    RouterRecord off;
    off.bench = "edit_router_off";
    off.n = router_n;
    off.batch = router_b;
    off.wall_seconds = wall_median(
        [&] { off_result = solve(core::RouterPolicy::kOff, &bench_recorder); },
        wall_reps);
    off.qps = double(router_b) / off.wall_seconds;
    off.rounds = off_result.trace.round_count();
    off.passes = off_result.passes;
    off.ratio_vs_off = 1.0;
    router_records.push_back(off);

    core::BatchResult routed_result;
    RouterRecord routed;
    routed.bench = "edit_router_auto";
    routed.n = router_n;
    routed.batch = router_b;
    routed.wall_seconds = wall_median(
        [&] {
          routed_result = solve(core::RouterPolicy::kAuto, &bench_recorder);
        },
        wall_reps);
    routed.qps = double(router_b) / routed.wall_seconds;
    routed.rounds = routed_result.trace.round_count();
    routed.passes = routed_result.passes;
    routed.ratio_vs_off = routed.qps / off.qps;

    // The ladder certifies a (1 + eps) upper bound; a retired query answers
    // exactly.  Routing may therefore only improve an answer, never worsen
    // it: exact <= router-auto <= router-off, query by query.
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::int64_t exact =
          seq::edit_distance_output_sensitive(queries[q].s, queries[q].t);
      const std::int64_t routed_d = routed_result.queries[q].distance;
      const std::int64_t off_d = off_result.queries[q].distance;
      if (routed_d < exact || routed_d > off_d) {
        std::fprintf(
            stderr,
            "FATAL: router broke query %zu ordering: exact=%lld auto=%lld "
            "off=%lld\n",
            q, static_cast<long long>(exact),
            static_cast<long long>(routed_d), static_cast<long long>(off_d));
        return 1;
      }
    }

    // Decision counts come from a sinked re-run on a local recorder so the
    // gated walls above keep pricing the disabled recorder on the hot path.
    obs::Recorder counted;
    const auto decisions = std::make_shared<obs::AggregateSink>();
    counted.add_sink(decisions);
    (void)solve(core::RouterPolicy::kAuto, &counted);
    counted.flush();
    const auto decision_count = [&](const char* name) -> std::uint64_t {
      const auto it = decisions->counters().find(name);
      return it == decisions->counters().end()
                 ? 0
                 : static_cast<std::uint64_t>(it->second.last);
    };
    routed.examined = decision_count("router.examined");
    routed.retired_seq = decision_count("router.retired_seq");
    routed.probed = decision_count("router.probed");
    routed.lower_bounded = decision_count("router.lower_bounded");
    routed.to_plan = decision_count("router.to_plan");
    // Degenerate pairs (equal / empty strings) resolve before the router,
    // so `examined` counts the rest — and every examined query must either
    // retire or go to the plan.
    if (routed.examined > router_b ||
        routed.retired_seq + routed.to_plan != routed.examined) {
      std::fprintf(stderr,
                   "FATAL: router decision counts inconsistent: examined=%llu "
                   "retired=%llu to_plan=%llu (B=%zu)\n",
                   static_cast<unsigned long long>(routed.examined),
                   static_cast<unsigned long long>(routed.retired_seq),
                   static_cast<unsigned long long>(routed.to_plan), router_b);
      return 1;
    }
    router_records.push_back(routed);
  }

  write_json(records, out_path);
  write_batch_json(batch_records, out2_path);
  write_json(isa_records, out4_path);
  write_json(backend_records, out5_path);
  write_json(socket_records, out7_path);
  write_router_json(router_records, out6_path);
  std::printf("perf_suite: %zu records -> %s\n", records.size(), out_path.c_str());
  for (const Record& r : records) {
    std::printf("  %-22s n=%-8lld wall=%.6fs work=%llu bytes_moved=%llu\n",
                r.bench.c_str(), static_cast<long long>(r.n), r.wall_seconds,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.bytes_moved));
  }
  std::printf("perf_suite: %zu ISA/routing records -> %s (detected: %s)\n",
              isa_records.size(), out4_path.c_str(), isa_name(detected_isa()));
  for (const Record& r : isa_records) {
    std::printf("  %-22s n=%-8lld wall=%.6fs work=%llu bytes_moved=%llu\n",
                r.bench.c_str(), static_cast<long long>(r.n), r.wall_seconds,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.bytes_moved));
  }
  std::printf("perf_suite: %zu backend records -> %s\n",
              backend_records.size(), out5_path.c_str());
  for (const Record& r : backend_records) {
    std::printf("  %-28s n=%-8lld wall=%.6fs work=%llu bytes_moved=%llu\n",
                r.bench.c_str(), static_cast<long long>(r.n), r.wall_seconds,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.bytes_moved));
  }
  std::printf("perf_suite: %zu socket-backend records -> %s\n",
              socket_records.size(), out7_path.c_str());
  for (const Record& r : socket_records) {
    std::printf("  %-28s n=%-8lld wall=%.6fs work=%llu bytes_moved=%llu\n",
                r.bench.c_str(), static_cast<long long>(r.n), r.wall_seconds,
                static_cast<unsigned long long>(r.work),
                static_cast<unsigned long long>(r.bytes_moved));
  }
  std::printf("perf_suite: %zu batch records -> %s (workers=%zu)\n",
              batch_records.size(), out2_path.c_str(), workers);
  for (const BatchRecord& r : batch_records) {
    std::printf(
        "  %-12s %-10s n=%-6lld B=%-3zu wall=%.4fs qps=%.2f rounds=%zu "
        "passes=%zu ratio=%.2f\n",
        r.bench.c_str(), r.mode.c_str(), static_cast<long long>(r.n), r.batch,
        r.wall_seconds, r.qps, r.rounds, r.passes, r.ratio_vs_seq);
  }
  std::printf("perf_suite: %zu router records -> %s\n", router_records.size(),
              out6_path.c_str());
  for (const RouterRecord& r : router_records) {
    std::printf(
        "  %-18s n=%-6lld B=%-3zu wall=%.4fs qps=%.2f passes=%zu "
        "ratio=%.2f retired=%llu probed=%llu lower_bounded=%llu to_plan=%llu\n",
        r.bench.c_str(), static_cast<long long>(r.n), r.batch, r.wall_seconds,
        r.qps, r.passes, r.ratio_vs_off,
        static_cast<unsigned long long>(r.retired_seq),
        static_cast<unsigned long long>(r.probed),
        static_cast<unsigned long long>(r.lower_bounded),
        static_cast<unsigned long long>(r.to_plan));
  }

  // ---- BENCH_PR5: the benchmark numbers through the aggregate sink. ----
  // Sinks attach only now, after every gated measurement: each record
  // re-emits as one uniquely named span, then one small traced batch run
  // adds real round/stage/pass/query events so the optional Chrome
  // artifact (--trace-out) is a faithful end-to-end trace.
  const auto aggregate = std::make_shared<obs::AggregateSink>();
  bench_recorder.add_sink(aggregate);
  std::shared_ptr<obs::ChromeTraceSink> chrome;
  if (!trace_path.empty()) {
    chrome = std::make_shared<obs::ChromeTraceSink>();
    bench_recorder.add_sink(chrome);
  }
  for (const Record& r : records) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kSpan;
    ev.name = "bench:" + r.bench + ":n=" + std::to_string(r.n);
    ev.category = "bench";
    ev.ts_us = bench_recorder.now_us();
    ev.dur_us = static_cast<std::uint64_t>(r.wall_seconds * 1e6);
    ev.args = {{"n", static_cast<double>(r.n)},
               {"wall_seconds", r.wall_seconds},
               {"work", static_cast<double>(r.work)},
               {"bytes_moved", static_cast<double>(r.bytes_moved)}};
    bench_recorder.emit(std::move(ev));
  }
  for (const BatchRecord& r : batch_records) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kSpan;
    ev.name = "bench:" + r.bench + ":" + r.mode + ":n=" + std::to_string(r.n) +
              ":B=" + std::to_string(r.batch);
    ev.category = "bench";
    ev.ts_us = bench_recorder.now_us();
    ev.dur_us = static_cast<std::uint64_t>(r.wall_seconds * 1e6);
    ev.args = {{"n", static_cast<double>(r.n)},
               {"batch", static_cast<double>(r.batch)},
               {"wall_seconds", r.wall_seconds},
               {"qps", r.qps},
               {"rounds", static_cast<double>(r.rounds)},
               {"passes", static_cast<double>(r.passes)},
               {"ratio_vs_seq", r.ratio_vs_seq}};
    bench_recorder.emit(std::move(ev));
  }
  for (const RouterRecord& r : router_records) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kSpan;
    ev.name = "bench:" + r.bench + ":n=" + std::to_string(r.n) +
              ":B=" + std::to_string(r.batch);
    ev.category = "bench";
    ev.ts_us = bench_recorder.now_us();
    ev.dur_us = static_cast<std::uint64_t>(r.wall_seconds * 1e6);
    ev.args = {{"n", static_cast<double>(r.n)},
               {"batch", static_cast<double>(r.batch)},
               {"wall_seconds", r.wall_seconds},
               {"qps", r.qps},
               {"passes", static_cast<double>(r.passes)},
               {"ratio_vs_off", r.ratio_vs_off},
               {"router_retired_seq", static_cast<double>(r.retired_seq)},
               {"router_probed", static_cast<double>(r.probed)},
               {"router_to_plan", static_cast<double>(r.to_plan)}};
    bench_recorder.emit(std::move(ev));
  }
  {
    core::BatchRequest request;
    request.algorithm = core::BatchAlgorithm::kUlam;
    request.mode = core::BatchMode::kThroughput;
    request.ulam.seed = 13;
    request.recorder = &bench_recorder;
    request.queries = make_batch_queries(2, 128, /*ulam=*/true);
    (void)core::distance_batch(request);
  }
  bench_recorder.flush();
  if (!aggregate->write_file(out3_path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out3_path.c_str());
    return 1;
  }
  std::printf("perf_suite: %zu spans + %zu counters -> %s\n",
              aggregate->spans().size(), aggregate->counters().size(),
              out3_path.c_str());
  if (chrome != nullptr) {
    if (!chrome->write_file(trace_path)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("perf_suite: %zu trace events -> %s\n", chrome->event_count(),
                trace_path.c_str());
  }

  if (!rounds_ok) {
    std::fprintf(stderr, "FAIL: a batch execution used extra simulator rounds\n");
    return 1;
  }

  if (smoke) {
    if (!json_well_formed(out_path, records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out_path.c_str());
      return 1;
    }
    if (!json_well_formed(out2_path, batch_records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out2_path.c_str());
      return 1;
    }
    if (!json_well_formed(out4_path, isa_records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out4_path.c_str());
      return 1;
    }
    if (!json_well_formed(out5_path, backend_records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out5_path.c_str());
      return 1;
    }
    if (!json_well_formed(out6_path, router_records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out6_path.c_str());
      return 1;
    }
    if (!json_well_formed(out7_path, socket_records.size())) {
      std::fprintf(stderr, "FAIL: %s is not well-formed JSON\n", out7_path.c_str());
      return 1;
    }
    // The aggregate must have seen every re-emitted record plus the traced
    // batch run's round/stage/pass spans.
    if (aggregate->spans().size() < records.size() + batch_records.size()) {
      std::fprintf(stderr, "FAIL: aggregate sink missing spans (%zu < %zu)\n",
                   aggregate->spans().size(),
                   records.size() + batch_records.size());
      return 1;
    }
    std::printf("smoke: JSON well-formed (%zu + %zu records), rounds gate held\n",
                records.size(), batch_records.size());
    return 0;
  }

  const double scalar_wall = record_wall(records, "edit_unit_scalar", 2000);
  const double fast_wall = record_wall(records, "edit_unit_fast", 2000);
  const double speedup = scalar_wall / fast_wall;
  std::printf("unit-distance speedup at n=2000: %.2fx (gate: >= 3x)\n", speedup);
  if (!(speedup >= 3.0)) {
    std::fprintf(stderr, "FAIL: unit-distance speedup %.2fx < 3x\n", speedup);
    return 1;
  }

  // ---- BENCH_PR6 kernel ISA gate: AVX2 must double scalar at n=2000. ----
  if (detected_isa() >= Isa::kAvx2) {
    const double myers_scalar = record_wall(isa_records, "myers_scalar", 2000);
    const double myers_avx2 = record_wall(isa_records, "myers_avx2", 2000);
    const double isa_speedup = myers_scalar / myers_avx2;
    std::printf("myers AVX2 speedup at n=2000: %.2fx (gate: >= 2x)\n",
                isa_speedup);
    if (!(isa_speedup >= 2.0)) {
      std::fprintf(stderr, "FAIL: AVX2 kernel speedup %.2fx < 2x\n", isa_speedup);
      return 1;
    }
    if (detected_isa() >= Isa::kAvx512) {
      const double myers_avx512 = record_wall(isa_records, "myers_avx512", 2000);
      std::printf("myers AVX-512 speedup at n=2000: %.2fx (recorded)\n",
                  myers_scalar / myers_avx512);
    }
  } else {
    std::printf("scalar-only host: ISA kernel gate skipped\n");
  }

  // ---- Batch throughput ratio gates (largest default-tier B). ----
  const double edit_ratio =
      batch_ratio(batch_records, "edit_batch", "throughput", edit_n, max_b);
  const double ulam_ratio =
      batch_ratio(batch_records, "ulam_batch", "throughput", ulam_n, max_b);

  // Escalation is a work reduction (skips the rungs past the accepted
  // guess), so edit throughput must stay within 2x of the sequential
  // early-exit solver even on a single worker.  Hard gate on every host.
  std::printf("edit_batch throughput ratio at n=%lld B=%zu: %.2fx (gate: >= 0.5x)\n",
              static_cast<long long>(edit_n), max_b, edit_ratio);
  if (!(edit_ratio >= 0.5)) {
    std::fprintf(stderr, "FAIL: edit_batch qps %.2fx sequential < 0.5x\n",
                 edit_ratio);
    return 1;
  }

  // On a multi-worker host the shared rounds expose cross-query
  // parallelism, so batching must not lose to sequential for either
  // algorithm, and Ulam (fixed 2-round pipeline, pure batching win) must
  // clear 1.5x once >= 4 workers are available.
  if (workers > 1) {
    std::printf("ratio gates (workers=%zu): edit %.2fx, ulam %.2fx (>= 1x)\n",
                workers, edit_ratio, ulam_ratio);
    if (!(edit_ratio >= 1.0) || !(ulam_ratio >= 1.0)) {
      std::fprintf(stderr,
                   "FAIL: batch below sequential qps (edit %.2fx, ulam %.2fx)\n",
                   edit_ratio, ulam_ratio);
      return 1;
    }
  } else {
    std::printf("single-worker simulator: multi-worker ratio gates skipped\n");
  }
  if (workers >= 4) {
    std::printf("ulam_batch ratio at B=%zu: %.2fx (gate: >= 1.5x)\n", max_b,
                ulam_ratio);
    if (!(ulam_ratio >= 1.5)) {
      std::fprintf(stderr, "FAIL: ulam_batch qps %.2fx sequential < 1.5x\n",
                   ulam_ratio);
      return 1;
    }
  }

  // ---- BENCH_PR7 backend gate: fork + shm round overhead stays bounded. ----
  // Forking workers and shuttling results through memfd arenas costs wall
  // time every round; on real batch workloads at n=2000 the process backend
  // must stay within 2x of the thread backend, or the isolation win has
  // priced itself out of production use.
  for (const char* algo : {"ulam", "edit"}) {
    const double thread_wall = record_wall(
        backend_records, std::string(algo) + "_batch_backend_thread", 2000);
    const double process_wall = record_wall(
        backend_records, std::string(algo) + "_batch_backend_process", 2000);
    const double overhead = process_wall / thread_wall;
    std::printf("%s process-backend overhead at n=2000: %.2fx (gate: <= 2x)\n",
                algo, overhead);
    if (!(overhead <= 2.0)) {
      std::fprintf(stderr,
                   "FAIL: %s process backend %.2fx thread backend > 2x\n", algo,
                   overhead);
      return 1;
    }
  }

  // ---- BENCH_PR10 socket gate: TCP round overhead stays bounded. ----
  // Each socket round pays fork + connect-back + framed result streaming;
  // on localhost at n=2000 that must stay within 4x of the thread backend,
  // or the wire has priced the backend out of local use entirely.
  for (const char* algo : {"ulam", "edit"}) {
    const double thread_wall = record_wall(
        socket_records, std::string(algo) + "_batch_backend_thread", 2000);
    const double socket_wall = record_wall(
        socket_records, std::string(algo) + "_batch_backend_socket", 2000);
    const double overhead = socket_wall / thread_wall;
    std::printf("%s socket-backend overhead at n=2000: %.2fx (gate: <= 4x)\n",
                algo, overhead);
    if (!(overhead <= 4.0)) {
      std::fprintf(stderr,
                   "FAIL: %s socket backend %.2fx thread backend > 4x\n", algo,
                   overhead);
      return 1;
    }
  }

  // ---- BENCH_PR8 router gate: >= 3x qps on the skewed batch. ----
  // Most of the batch retires before pass 1 (near-duplicate probes are
  // O(n + k*n/w) work), so the router must beat the full escalation ladder
  // by a wide margin or its cost model is mispriced.
  {
    double router_ratio = 0.0;
    for (const RouterRecord& r : router_records) {
      if (r.bench == "edit_router_auto") router_ratio = r.ratio_vs_off;
    }
    std::printf("router-auto qps on skewed batch (n=2000, B=32): %.2fx "
                "router-off (gate: >= 3x)\n",
                router_ratio);
    if (!(router_ratio >= 3.0)) {
      std::fprintf(stderr, "FAIL: router-auto qps %.2fx router-off < 3x\n",
                   router_ratio);
      return 1;
    }
  }
  return 0;
}
