// DESIGN.md ablation: the combine DP's gap charging.
//
// Algorithm 2 (Ulam) charges max(s-gap, s̄-gap) — substitute the paired
// part, indel the rest — while Algorithm 4 (edit distance) charges the sum
// (delete + insert).  The max-gap rule is what makes the Ulam pipeline
// 1+eps; running the same tuples through sum-gaps shows how much the
// charging rule itself contributes.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Ablation / combine gap charging (Algorithm 2 vs Algorithm 4 rule)",
                "max-gaps keep Ulam at 1+eps; sum-gaps pay deletions+insertions "
                "for every uncovered stretch");

  bool ok = true;
  bench::row({"n", "edits", "exact", "max_gap", "sum_gap", "max_ratio", "sum_ratio"});
  for (const std::int64_t n : {1000, 4000}) {
    for (const std::int64_t k : {20L, n / 10, n / 3}) {
      const auto s = core::random_permutation(n, static_cast<std::uint64_t>(n + k));
      const auto t = core::plant_edits(s, k, static_cast<std::uint64_t>(n + k) + 1, true)
                         .text;
      const auto exact = seq::ulam_distance(s, t);

      ulam_mpc::UlamMpcParams max_params;
      max_params.epsilon = 0.5;
      auto sum_params = max_params;
      sum_params.combine_gap = seq::GapCost::kSum;

      const auto rmax = ulam_mpc::ulam_distance_mpc(s, t, max_params);
      const auto rsum = ulam_mpc::ulam_distance_mpc(s, t, sum_params);
      const double ratio_max =
          exact ? static_cast<double>(rmax.distance) / exact : 1.0;
      const double ratio_sum =
          exact ? static_cast<double>(rsum.distance) / exact : 1.0;
      // max-gaps must never be worse and must stay within 1+eps.
      ok &= rmax.distance <= rsum.distance && ratio_max <= 1.5 + 1e-9;
      bench::row({bench::fmt_int(n), bench::fmt_int(k), bench::fmt_int(exact),
                  bench::fmt_int(rmax.distance), bench::fmt_int(rsum.distance),
                  bench::fmt(ratio_max, 4), bench::fmt(ratio_sum, 4)});
    }
  }

  bench::footer(ok, "Algorithm 2's max-gap rule dominates the sum-gap variant "
                    "and keeps the 1+eps band");
  return ok ? 0 : 1;
}
