// Table 1, "Memory of Each Machine" column: both algorithms must fit every
// machine inside Õ_eps(n^{1-x}).  We sweep n at two exponents, report the
// peak per-machine footprint, the configured cap, and log-log fits.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "core/workload.hpp"
#include "edit_mpc/solver.hpp"
#include "ulam_mpc/solver.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Table 1 / memory-per-machine column",
                "every machine of both algorithms fits in Õ_eps(n^{1-x})");

  bool ok = true;
  for (const double x : {0.25, 1.0 / 3}) {
    std::printf("x = %.3f (cap exponent %.3f)\n", x, 1.0 - x);
    bench::row({"n", "ulam_peakB", "ulam_capB", "edit_peakB", "edit_capB", "viol"});
    std::vector<double> ns;
    std::vector<double> peaks;
    for (const std::int64_t n : {2000, 8000, 16000}) {
      const auto s = core::random_permutation(n, static_cast<std::uint64_t>(n));
      const auto t = core::plant_edits(s, n / 40, static_cast<std::uint64_t>(n) + 1, true)
                         .text;
      ulam_mpc::UlamMpcParams up;
      up.x = x;
      const auto ur = ulam_mpc::ulam_distance_mpc(s, t, up);

      const auto a = core::random_string(n / 4, 4, static_cast<std::uint64_t>(n) + 2);
      const auto b = core::plant_edits(a, n / 100, static_cast<std::uint64_t>(n) + 3,
                                       false)
                         .text;
      edit_mpc::EditMpcParams ep;
      ep.x = x;
      ep.unit = edit_mpc::DistanceUnit::kExactBanded;
      ep.memory_slack = 12.0;  // the Õ_eps constant; default 8 sits ~1% low
                               // for the combine machine at this sweep point
      const auto er = edit_mpc::edit_distance_mpc(a, b, ep);

      const auto violations =
          ur.trace.memory_violations() + er.trace.memory_violations();
      ok &= violations == 0;
      ns.push_back(static_cast<double>(n));
      peaks.push_back(static_cast<double>(ur.trace.max_machine_memory()));
      bench::row({bench::fmt_int(n),
                  bench::fmt_int(static_cast<long long>(ur.trace.max_machine_memory())),
                  bench::fmt_int(static_cast<long long>(ur.memory_cap_bytes)),
                  bench::fmt_int(static_cast<long long>(er.trace.max_machine_memory())),
                  bench::fmt_int(static_cast<long long>(er.memory_cap_bytes)),
                  bench::fmt_int(static_cast<long long>(violations))});
    }
    std::printf("  ulam peak-memory exponent: %.3f (cap exponent %.3f; below is fine)\n\n",
                core::fit_exponent(ns, peaks), 1.0 - x);
  }

  bench::footer(ok, "zero memory violations at every (n, x)");
  return ok ? 0 : 1;
}
