// Figure 2 / Lemma 1: when ulam(block, opt image) = u_i < B/2, the local
// Ulam minimiser s̄[gamma, kappa) intersects the opt image and
// |alpha_i - gamma| <= 2 u_i, |beta_i - kappa| <= 2 u_i.
//
// We sweep planted workloads, compute opt images exactly, run lulam per
// block and report the worst endpoint error in units of u_i (must be <= 2).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "seq/alignment.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 2 / Lemma 1: lulam window locality",
                "|alpha - gamma| <= 2u and |beta - kappa| <= 2u whenever u < B/2");

  bool ok = true;
  bench::row({"n", "edits", "blocks", "eligible", "worst_err/u", "violations"});
  for (const std::int64_t n : {400, 800, 1600}) {
    for (const std::int64_t edits : {n / 50, n / 16}) {
      const auto s = core::random_permutation(n, static_cast<std::uint64_t>(n + edits));
      const auto t = core::plant_edits(s, edits,
                                       static_cast<std::uint64_t>(n + edits) + 1, true)
                         .text;
      const std::int64_t bsize = n / 8;
      const auto blocks = edit_mpc::make_blocks(n, bsize);
      const auto images = seq::block_images(s, t, blocks);

      int eligible = 0;
      int violations = 0;
      double worst = 0.0;
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        const SymView block = subview(s, blocks[i]);
        const auto u = seq::ulam_distance(block, subview(t, images[i]));
        if (u == 0 || u >= bsize / 2) continue;
        ++eligible;
        const auto local = seq::local_ulam(block, t);
        const auto err_a = std::abs(local.window.begin - images[i].begin);
        const auto err_b = std::abs(local.window.end - images[i].end);
        const double rel = static_cast<double>(std::max(err_a, err_b)) /
                           static_cast<double>(u);
        worst = std::max(worst, rel);
        if (rel > 2.0) ++violations;
      }
      ok &= violations == 0;
      bench::row({bench::fmt_int(n), bench::fmt_int(edits),
                  bench::fmt_int(static_cast<long long>(blocks.size())),
                  bench::fmt_int(eligible), bench::fmt(worst), bench::fmt_int(violations)});
    }
  }

  bench::footer(ok, "every eligible block's lulam window is within 2u of its opt image");
  return ok ? 0 : 1;
}
