// Figure 3 / Lemma 2: when u_i >= B/2 but the block still shares
// c_i >= eps'B/4 unchanged characters with its opt image, sampling each
// block character with probability theta = (8/(eps'B)) ln n hits an
// unchanged character with probability >= 1 - 1/n^2, and the window
// anchored at any unchanged character s[p] = s̄[q] satisfies
// |alpha - gamma| <= u and |beta - kappa| <= u.
//
// We plant a far-moved block (rotation) so u is large, measure the
// empirical hit rate over many trials, and check the anchored window error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/workload.hpp"
#include "seq/alignment.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 3 / Lemma 2: hitting-set anchoring",
                "theta-sampling hits an unchanged char whp; anchored window "
                "endpoints within u of the opt image");

  bool ok = true;
  bench::row({"n", "B", "theta", "trials", "hit_rate", "bound", "anchor_err/u"});
  for (const std::int64_t n : {600, 1200, 2400}) {
    const double eps_prime = 0.25;
    const std::int64_t bsize = n / 4;
    // Rotate so the first block's content moves far away: u_i ~ 2*shift but
    // all characters remain present (unchanged) somewhere in s̄.
    const auto s = core::random_permutation(n, static_cast<std::uint64_t>(n));
    SymString t(s.begin(), s.end());
    std::rotate(t.begin(), t.begin() + n / 3, t.end());

    const SymView block = subview(s, {0, bsize});
    // The block appears verbatim at offset 2n/3 in t.
    const std::int64_t true_gamma = 2 * n / 3;
    const double theta =
        std::min(1.0, 8.0 / (eps_prime * static_cast<double>(bsize)) *
                          std::log(static_cast<double>(n)));

    const int trials = 400;
    int hits = 0;
    double worst_rel = 0.0;
    const auto pts = seq::match_points(block, t);
    const auto u = seq::ulam_distance(block, subview(t, {true_gamma, true_gamma + bsize}));
    // u here is 0 (verbatim copy), so measure the anchor error against the
    // rotation distance instead: the anchored window must land exactly on
    // the copy.
    for (int trial = 0; trial < trials; ++trial) {
      Pcg32 rng = derive_stream(static_cast<std::uint64_t>(n), trial);
      bool hit = false;
      for (const auto& m : pts) {
        if (!rng.bernoulli(theta)) continue;
        hit = true;
        const std::int64_t gamma = m.q - m.p;
        const double err = std::abs(gamma - true_gamma);
        worst_rel = std::max(worst_rel, err);
      }
      hits += hit;
    }
    const double rate = static_cast<double>(hits) / trials;
    const double bound = 1.0 - 1.0 / (static_cast<double>(n) * static_cast<double>(n));
    ok &= rate >= 0.99 && worst_rel <= static_cast<double>(std::max<std::int64_t>(u, 1));
    bench::row({bench::fmt_int(n), bench::fmt_int(bsize), bench::fmt(theta, 4),
                bench::fmt_int(trials), bench::fmt(rate, 4), bench::fmt(bound, 6),
                bench::fmt(worst_rel)});
  }

  bench::footer(ok,
                "sampling hits an anchor in every trial batch and anchors land on "
                "the moved block exactly");
  return ok ? 0 : 1;
}
