// Figure 4: start points of candidate substrings lie in
// [l - n^delta, l + n^delta] on a grid of gap G = eps' n^{delta-y}, giving
// O((1/eps') n^y) starts per block.
//
// We sweep n and delta and compare the generated start counts with the
// formula 2 n^delta / G + 1 = 2 n^y / eps' + 1.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/grid.hpp"
#include "core/theory.hpp"
#include "edit_mpc/candidates.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 4 / candidate start points",
                "starts gridded with gap G = eps'*n^{delta-y} over +-n^delta: "
                "O(n^y/eps') per block, independent of delta");

  const double eps_prime = 0.1;
  const double y = 0.3;
  bool ok = true;
  bench::row({"n", "delta_guess", "gap", "starts", "predicted", "rel_err"});

  std::vector<double> ns;
  std::vector<double> counts;
  for (const std::int64_t n : {10000, 20000, 40000, 80000}) {
    const auto bsize = ipow_ceil(n, 1.0 - y);
    for (const double delta : {0.75, 0.9}) {
      const auto guess = ipow(n, delta);
      edit_mpc::CandidateGeometry geo;
      geo.eps_prime = eps_prime;
      geo.n = n;
      geo.n_bar = n;
      geo.block_size = bsize;
      geo.delta_guess = guess;
      const auto starts = edit_mpc::candidate_starts(n / 2, geo);
      const auto gap = edit_mpc::start_gap(geo);
      const double predicted = 2.0 * static_cast<double>(guess) /
                                   static_cast<double>(gap) + 1.0;
      const double rel =
          std::abs(static_cast<double>(starts.size()) - predicted) / predicted;
      ok &= rel < 0.2;
      if (delta == 0.9) {
        ns.push_back(static_cast<double>(n));
        counts.push_back(static_cast<double>(starts.size()));
      }
      bench::row({bench::fmt_int(n), bench::fmt_int(guess), bench::fmt_int(gap),
                  bench::fmt_int(static_cast<long long>(starts.size())),
                  bench::fmt(predicted, 1), bench::fmt(rel, 4)});
    }
  }

  const double slope = core::fit_exponent(ns, counts);
  std::printf("\nstart-count exponent: %.3f vs %.3f (n^y)\n", slope, y);
  ok &= std::abs(slope - y) < 0.08;
  bench::footer(ok, "start counts track 2n^y/eps' and scale as n^y");
  return ok ? 0 : 1;
}
