// Shared helpers for the table/figure reproduction harnesses: fixed-width
// table printing and common header banners.  Each bench binary regenerates
// one exhibit of the paper (see DESIGN.md's per-experiment index) and
// prints the paper's prediction next to the measured value.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mpcsd::bench {

/// Prints a banner naming the exhibit being reproduced.
inline void banner(const std::string& title, const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

/// Simple fixed-width row printer: pass pre-formatted cells.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

inline void footer(bool ok, const std::string& verdict) {
  std::printf("------------------------------------------------------------------------------\n");
  std::printf("[%s] %s\n\n", ok ? "REPRODUCED" : "CHECK", verdict.c_str());
}

}  // namespace mpcsd::bench
