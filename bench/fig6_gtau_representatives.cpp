// Figure 6 / Lemma 7: in G_tau, sampling representatives at rate
// 2 ln n / n^alpha finds, for every dense node v (degree >= n^alpha) and
// every neighbour u ∈ N_tau(v), a representative z with v ∈ N_tau(z) and
// u ∈ N_2tau(z); and every edge added through a representative has true
// distance <= 3*tau.
//
// We build G_tau explicitly at a small scale (exact all-pairs distances),
// run the sampling, and measure (a) dense-neighbourhood recovery rate and
// (b) the max stretch of added edges (must be <= 3).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/workload.hpp"
#include "edit_mpc/graph_tau.hpp"
#include "seq/edit_distance.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 6 / Lemma 7: representative sampling on G_tau",
                "dense nodes recover all tau-neighbours via reps; added edges "
                "have distance <= 3*tau");

  const std::int64_t n = 1200;
  const auto s = core::random_string(n, 4, 1);
  const auto t = core::block_shuffle(s, 100, 2);

  edit_mpc::CandidateGeometry geo;
  geo.eps_prime = 0.2;
  geo.n = n;
  geo.n_bar = static_cast<std::int64_t>(t.size());
  geo.block_size = 100;
  geo.delta_guess = 800;
  geo.canonical_ends = true;  // the pipeline's G_tau node set
  const auto universe = edit_mpc::build_universe(geo);
  const std::size_t nodes = universe.node_count();
  std::printf("nodes: %zu blocks + %zu candidate substrings\n\n",
              universe.blocks.size(), universe.cs.size());

  // Exact all-pairs distances (ground truth; feasible at this scale).
  std::vector<std::vector<std::int64_t>> dist(nodes, std::vector<std::int64_t>(nodes, 0));
  for (std::size_t u = 0; u < nodes; ++u) {
    const SymView su = universe.is_block(u) ? subview(s, universe.node_interval(u))
                                            : subview(t, universe.node_interval(u));
    for (std::size_t v = u + 1; v < nodes; ++v) {
      const SymView sv = universe.is_block(v) ? subview(s, universe.node_interval(v))
                                              : subview(t, universe.node_interval(v));
      dist[u][v] = dist[v][u] = seq::edit_distance(su, sv);
    }
  }

  bool ok = true;
  bench::row({"tau", "dense", "recov_rate", "added", "max_stretch"});
  for (const std::int64_t tau : {10, 25, 50, 100, 200}) {
    // Degrees in G_tau.
    std::vector<std::size_t> degree(nodes, 0);
    for (std::size_t u = 0; u < nodes; ++u) {
      for (std::size_t v = 0; v < nodes; ++v) {
        if (u != v && dist[u][v] <= tau) ++degree[u];
      }
    }
    const auto threshold = static_cast<std::size_t>(
        std::pow(static_cast<double>(n), 0.6 * 0.25));  // n^alpha, alpha=(3/5)x
    const double rho = std::min(
        1.0, 2.0 * std::log(static_cast<double>(n)) / static_cast<double>(threshold));

    Pcg32 rng = derive_stream(42, static_cast<std::uint64_t>(tau));
    std::vector<std::size_t> reps;
    for (std::size_t v = 0; v < nodes; ++v) {
      if (rng.bernoulli(rho)) reps.push_back(v);
    }

    // Recovery: for each dense block v and each cs-node u in N_tau(v), is
    // there a rep z with d(z,v) <= tau and d(z,u) <= 2tau?
    std::size_t dense_pairs = 0;
    std::size_t recovered = 0;
    std::size_t added = 0;
    double max_stretch = 0.0;
    for (std::size_t v = 0; v < universe.blocks.size(); ++v) {
      if (degree[v] < threshold) continue;
      for (std::size_t u = universe.blocks.size(); u < nodes; ++u) {
        if (dist[v][u] > tau) continue;
        ++dense_pairs;
        for (const std::size_t z : reps) {
          if (dist[z][v] <= tau && dist[z][u] <= 2 * tau) {
            ++recovered;
            break;
          }
        }
      }
    }
    // Added-edge stretch: every (v, u) pair some rep certifies.
    for (const std::size_t z : reps) {
      for (std::size_t v = 0; v < universe.blocks.size(); ++v) {
        if (dist[z][v] > tau) continue;
        for (std::size_t u = universe.blocks.size(); u < nodes; ++u) {
          if (dist[z][u] > 2 * tau) continue;
          ++added;
          if (tau > 0) {
            max_stretch = std::max(
                max_stretch, static_cast<double>(dist[v][u]) / static_cast<double>(tau));
          }
        }
      }
    }
    const double rate = dense_pairs == 0 ? 1.0
                                         : static_cast<double>(recovered) /
                                               static_cast<double>(dense_pairs);
    ok &= rate >= 0.95 && max_stretch <= 3.0 + 1e-9;
    bench::row({bench::fmt_int(tau), bench::fmt_int(static_cast<long long>(dense_pairs)),
                bench::fmt(rate, 4), bench::fmt_int(static_cast<long long>(added)),
                bench::fmt(max_stretch)});
  }

  bench::footer(ok, "dense neighbourhoods recovered whp; triangle-added edges <= 3*tau");
  return ok ? 0 : 1;
}
