// Figure 5: end points cluster geometrically around kappa = gamma + B as
// kappa +- (1+eps')^a, capped at length B/eps' — O(log_{1+eps'} B) = Õ(1)
// ends per start.  Lemma 5 then guarantees an approximately optimal
// candidate for every block whose image passes the size gate; we measure
// the cover rate on planted workloads (expected 100% of gated blocks).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/workload.hpp"
#include "edit_mpc/candidates.hpp"
#include "seq/alignment.hpp"
#include "seq/edit_distance.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Figure 5 / candidate end points + Lemma 5 cover",
                "ends = kappa +- (1+eps')^a capped at B/eps' (Õ(1) per start); "
                "every gated block has an approximately optimal candidate");

  const double eps_prime = 0.1;
  bool ok = true;

  // Part 1: end counts grow logarithmically with B.
  bench::row({"B", "ends", "log-bound"});
  for (const std::int64_t bsize : {100, 1000, 10000}) {
    edit_mpc::CandidateGeometry geo;
    geo.eps_prime = eps_prime;
    geo.n = bsize * 16;
    geo.n_bar = bsize * 16;
    geo.block_size = bsize;
    geo.delta_guess = bsize * 4;
    const auto ends = edit_mpc::candidate_ends(bsize * 2, bsize, geo);
    const double bound = 2.0 * std::log(static_cast<double>(bsize) / eps_prime) /
                             std::log(1.0 + eps_prime) + 4.0;
    ok &= static_cast<double>(ends.size()) <= bound;
    bench::row({bench::fmt_int(bsize),
                bench::fmt_int(static_cast<long long>(ends.size())),
                bench::fmt(bound, 1)});
  }

  // Part 2: Lemma 5 cover rate across planted workloads.
  std::printf("\nLemma 5 cover rate (gated blocks with an approx-optimal candidate):\n");
  bench::row({"n", "edits", "gated", "covered", "rate"});
  for (const std::int64_t n : {600, 1200}) {
    for (const std::int64_t edits : {n / 40, n / 16}) {
      const auto s = core::random_string(n, 4, static_cast<std::uint64_t>(n + edits));
      const auto t = core::plant_edits(s, edits,
                                       static_cast<std::uint64_t>(n + edits) + 1, false)
                         .text;
      const auto exact = seq::edit_distance(s, t);
      const std::int64_t bsize = n / 8;
      edit_mpc::CandidateGeometry geo;
      geo.eps_prime = eps_prime;
      geo.n = n;
      geo.n_bar = static_cast<std::int64_t>(t.size());
      geo.block_size = bsize;
      geo.delta_guess = exact + 2;
      const auto gap = edit_mpc::start_gap(geo);
      const double fine = eps_prime * static_cast<double>(geo.delta_guess) *
                          static_cast<double>(bsize) / static_cast<double>(n);

      const auto blocks = edit_mpc::make_blocks(n, bsize);
      const auto images = seq::block_images(s, t, blocks);
      int gated = 0;
      int covered = 0;
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        const Interval img = images[i];
        if (img.length() <= gap + static_cast<std::int64_t>(eps_prime * bsize)) continue;
        if (img.length() > static_cast<std::int64_t>(bsize / eps_prime)) continue;
        ++gated;
        const auto ed_block = seq::edit_distance(subview(s, blocks[i]), subview(t, img));
        const double end_slack = fine + eps_prime * static_cast<double>(ed_block);
        const auto windows =
            edit_mpc::candidate_windows(blocks[i].begin, blocks[i].length(), geo);
        const bool hit = std::any_of(windows.begin(), windows.end(), [&](Interval w) {
          return w.begin >= img.begin &&
                 static_cast<double>(w.begin) <= static_cast<double>(img.begin) + fine + 1 &&
                 w.end <= img.end &&
                 static_cast<double>(w.end) >= static_cast<double>(img.end) - end_slack - 1;
        });
        covered += hit;
      }
      const double rate = gated == 0 ? 1.0 : static_cast<double>(covered) / gated;
      ok &= rate >= 1.0 - 1e-12;
      bench::row({bench::fmt_int(n), bench::fmt_int(edits), bench::fmt_int(gated),
                  bench::fmt_int(covered), bench::fmt(rate, 4)});
    }
  }

  bench::footer(ok, "end counts are logarithmic in B and the Lemma 5 cover is complete");
  return ok ? 0 : 1;
}
