// Table 1, row "Ulam Distance (Theorem 4)":
//   1+eps approximation, 2 rounds, Õ_eps(n^{1-x}) memory per machine,
//   Õ_eps(n^x) machines, Õ_eps(n) total running time.
//
// We sweep n, measure (rounds, machines, max memory, total work,
// approximation ratio) of the MPC pipeline, and fit log-log slopes against
// the theoretical exponents.  Absolute constants are implementation
// artefacts; the *exponents* and the approximation band are the claim.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "core/workload.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

int main() {
  using namespace mpcsd;
  bench::banner("Table 1 / row 'Ulam Distance, Theorem 4'",
                "1+eps approx, 2 rounds, mem/machine ~ n^{1-x}, machines ~ n^x, "
                "total work ~ n (up to polylog, poly(1/eps))");

  const double x = 1.0 / 3;
  const double eps = 0.5;
  std::printf("x = %.3f, eps = %.2f, planted distance ~ n^{0.55}\n\n", x, eps);

  bench::row({"n", "exact", "mpc", "ratio", "rounds", "machines", "maxmemB",
              "total_work", "crit_path", "violations"}, 12);

  std::vector<double> ns;
  std::vector<double> machines;
  std::vector<double> memory;
  std::vector<double> work;
  double worst_ratio = 1.0;
  std::size_t violations = 0;

  for (const std::int64_t n : {2000, 4000, 8000, 16000, 32000}) {
    const auto k = static_cast<std::int64_t>(std::pow(static_cast<double>(n), 0.55));
    const auto s = core::random_permutation(n, static_cast<std::uint64_t>(n));
    const auto t = core::plant_edits(s, k, static_cast<std::uint64_t>(n) + 1, true).text;
    const auto exact = seq::ulam_distance(s, t);

    ulam_mpc::UlamMpcParams params;
    params.x = x;
    params.epsilon = eps;
    params.seed = 7;
    const auto result = ulam_mpc::ulam_distance_mpc(s, t, params);

    const double ratio = exact == 0
                             ? 1.0
                             : static_cast<double>(result.distance) /
                                   static_cast<double>(exact);
    worst_ratio = std::max(worst_ratio, ratio);
    violations += result.trace.memory_violations();

    ns.push_back(static_cast<double>(n));
    machines.push_back(static_cast<double>(result.trace.max_machines()));
    memory.push_back(static_cast<double>(result.trace.max_machine_memory()));
    work.push_back(static_cast<double>(result.trace.total_work()));

    bench::row({bench::fmt_int(n), bench::fmt_int(exact),
                bench::fmt_int(result.distance), bench::fmt(ratio),
                bench::fmt_int(static_cast<long long>(result.trace.round_count())),
                bench::fmt_int(static_cast<long long>(result.trace.max_machines())),
                bench::fmt_int(static_cast<long long>(result.trace.max_machine_memory())),
                bench::fmt_int(static_cast<long long>(result.trace.total_work())),
                bench::fmt_int(static_cast<long long>(result.trace.critical_path_work())),
                bench::fmt_int(static_cast<long long>(result.trace.memory_violations()))},
               12);
  }

  const double machines_slope = core::fit_exponent(ns, machines);
  const double memory_slope = core::fit_exponent(ns, memory);
  const double work_slope = core::fit_exponent(ns, work);

  std::printf("\nexponent fits (measured vs paper):\n");
  std::printf("  machines : %.3f vs %.3f (n^x)\n", machines_slope,
              core::ulam_machines_exponent(x));
  std::printf("  memory   : %.3f vs %.3f (n^{1-x})\n", memory_slope, 1.0 - x);
  std::printf("  work     : %.3f vs %.3f (Õ(n); polylog shows as slight excess)\n",
              work_slope, core::ulam_work_exponent(x));
  std::printf("  worst approximation ratio: %.4f (bound 1+eps = %.2f)\n",
              worst_ratio, 1.0 + eps);

  const bool ok = worst_ratio <= 1.0 + eps + 1e-9 && violations == 0 &&
                  std::abs(machines_slope - x) < 0.15 && work_slope < 1.45;
  bench::footer(ok,
                "rounds==2 always; machine/memory/work exponents track n^x, "
                "n^{1-x}, ~n; ratio within 1+eps");
  return ok ? 0 : 1;
}
