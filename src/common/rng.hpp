// Deterministic, splittable random number generation.
//
// All randomized pieces of the library (hitting sets, representative
// sampling, workload generators) draw from `SplitMix64`-seeded `Pcg32`
// streams.  Streams are derived from (seed, stream-id) pairs so that every
// simulated machine gets an independent, reproducible stream regardless of
// execution order — a requirement for a deterministic MPC simulation.
#pragma once

#include <cstdint>
#include <limits>

#include "common/contracts.hpp"

namespace mpcsd {

/// SplitMix64: used for seeding / hashing ids into statistically independent
/// stream selectors.  (Public-domain construction by Sebastiano Vigna.)
inline constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Minimal PCG32 generator (O'Neill); 64-bit state, 32-bit output.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0xdeadbeefcafef00dULL, 0xda3e39cb94b95bdbULL) {}

  constexpr Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
      : state_(0), inc_((stream << 1U) | 1U) {
    next();
    state_ += seed;
    next();
  }

  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  constexpr result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method would need
  /// 64x64 multiply; classic rejection is fine here).
  std::uint32_t below(std::uint32_t bound) noexcept {
    MPCSD_EXPECTS(bound > 0);
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32U) | next();
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    MPCSD_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next64());  // full range
    // 64-bit rejection sampling.
    const std::uint64_t threshold = (-span) % span;
    for (;;) {
      const std::uint64_t r = next64();
      if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
    }
  }

  /// Uniform double in [0,1).
  double uniform01() noexcept {
    return static_cast<double>(next64() >> 11U) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derive an independent stream for a (seed, id...) tuple.  Used to give
/// every simulated machine / round / block a reproducible private stream.
inline Pcg32 derive_stream(std::uint64_t seed, std::uint64_t a,
                           std::uint64_t b = 0, std::uint64_t c = 0) noexcept {
  const std::uint64_t s = splitmix64(seed ^ splitmix64(a));
  const std::uint64_t t = splitmix64(s ^ splitmix64(b ^ splitmix64(c)));
  return Pcg32(s, t);
}

}  // namespace mpcsd
