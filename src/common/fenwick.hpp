// Fenwick (binary indexed) trees.
//
// Two flavours are used by the library:
//   * `FenwickMin`  — prefix minimum with point updates over an arbitrary
//     ordered value type; the engine of the O(m log² m) sparse Ulam DP and
//     the O(T log T) tuple-combine DP.  The value type may carry a payload
//     (e.g. an argmin index) as long as `operator<` orders it.
//   * `FenwickSum`  — prefix sums, used by workload statistics.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/contracts.hpp"

namespace mpcsd {

/// Prefix-minimum Fenwick tree over indices [0, n).  `update(i, v)` lowers
/// position i to min(current, v); `prefix_min(i)` returns min over [0, i].
/// `identity` must compare >= every inserted value.
template <typename T>
class FenwickMin {
 public:
  FenwickMin(std::size_t n, T identity)
      : n_(n), identity_(identity), tree_(n + 1, identity) {}

  /// Convenience constructor for arithmetic types.
  explicit FenwickMin(std::size_t n)
      : FenwickMin(n, std::numeric_limits<T>::max()) {}

  void clear() { tree_.assign(n_ + 1, identity_); }

  void update(std::size_t i, T value) {
    MPCSD_EXPECTS(i < n_);
    for (std::size_t k = i + 1; k <= n_; k += k & (~k + 1)) {
      if (value < tree_[k]) tree_[k] = value;
    }
  }

  /// Minimum over [0, i] inclusive; `identity()` if the range is empty.
  [[nodiscard]] T prefix_min(std::size_t i) const {
    if (n_ == 0) return identity_;
    if (i >= n_) i = n_ - 1;
    T best = identity_;
    for (std::size_t k = i + 1; k > 0; k -= k & (~k + 1)) {
      if (tree_[k] < best) best = tree_[k];
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] const T& identity() const noexcept { return identity_; }

 private:
  std::size_t n_;
  T identity_;
  std::vector<T> tree_;
};

/// Prefix-sum Fenwick tree over indices [0, n).
template <typename T>
class FenwickSum {
 public:
  explicit FenwickSum(std::size_t n) : n_(n), tree_(n + 1, T{}) {}

  void add(std::size_t i, T delta) {
    MPCSD_EXPECTS(i < n_);
    for (std::size_t k = i + 1; k <= n_; k += k & (~k + 1)) tree_[k] += delta;
  }

  /// Sum over [0, i] inclusive.
  [[nodiscard]] T prefix_sum(std::size_t i) const {
    if (n_ == 0) return T{};
    if (i >= n_) i = n_ - 1;
    T total{};
    for (std::size_t k = i + 1; k > 0; k -= k & (~k + 1)) total += tree_[k];
    return total;
  }

  [[nodiscard]] T range_sum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return T{};
    T total = prefix_sum(hi);
    if (lo > 0) total -= prefix_sum(lo - 1);
    return total;
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::vector<T> tree_;
};

}  // namespace mpcsd
