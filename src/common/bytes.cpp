#include "common/bytes.hpp"

#include <numeric>

namespace mpcsd {

Bytes concat(const std::vector<Bytes>& parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out(total);
  std::size_t off = 0;
  for (const auto& p : parts) {
    if (p.empty()) continue;  // empty vectors may have a null data()
    std::memcpy(out.data() + off, p.data(), p.size());
    off += p.size();
  }
  return out;
}

}  // namespace mpcsd
