#include "common/bytes.hpp"

#include <numeric>

namespace mpcsd {

Bytes concat(const std::vector<Bytes>& parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace mpcsd
