#include "common/io.hpp"

#include <cerrno>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#if defined(__linux__)
#include <sys/socket.h>
#endif
#define MPCSD_HAVE_POSIX_IO 1
#endif

namespace mpcsd::io {

#if defined(MPCSD_HAVE_POSIX_IO)

bool read_full(int fd, void* data, std::size_t n) noexcept {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF: the peer died before the message ended
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_full(int fd, const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_full_nosignal(int fd, const void* data, std::size_t n) noexcept {
#if defined(__linux__)
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      // ENOTSOCK: caller handed us a pipe; finish with plain writes.
      if (errno == ENOTSOCK) return write_full(fd, p, n);
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
#else
  return write_full(fd, data, n);
#endif
}

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);  // no EINTR retry: the fd is gone either way (Linux)
    fd = -1;
  }
}

#else  // !MPCSD_HAVE_POSIX_IO

bool read_full(int, void*, std::size_t) noexcept { return false; }
bool write_full(int, const void*, std::size_t) noexcept { return false; }
bool write_full_nosignal(int, const void*, std::size_t) noexcept {
  return false;
}
void close_fd(int& fd) noexcept { fd = -1; }

#endif

}  // namespace mpcsd::io
