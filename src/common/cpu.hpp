// Runtime CPU-feature detection and ISA dispatch policy.
//
// The sequential kernels ship with up to three implementations per entry
// point — portable scalar (always compiled), AVX2, and AVX-512 — built in
// separate translation units with per-TU ISA flags (never a global
// `-march`), so one release binary runs on any x86-64 host and still uses
// the widest vector unit the machine actually has.
//
// Policy:
//   * `detected_isa()` probes the hardware once (GCC/Clang builtin CPU
//     feature tests); non-x86 targets and compilers without the probes
//     report kScalar.
//   * `active_isa()` is the level kernels dispatch on: the detected level,
//     clamped by the `MPCSD_FORCE_ISA` environment variable
//     ({scalar, avx2, avx512}, read once at first use) and by
//     `force_isa()`.  Forcing a level the host cannot run clamps *down*
//     to the detected level — the override selects among safe kernels,
//     it can never select an illegal instruction.
//   * Dispatch never affects results or metering: every kernel computes
//     identical values and charges identical modelled work, pinned by the
//     differential suite (tests/test_seq_simd.cpp) and the cross-ISA
//     determinism tests.
#pragma once

#include <optional>
#include <string_view>

namespace mpcsd {

/// Instruction-set levels the kernels dispatch across, in ascending order
/// (comparisons are meaningful: wider ISA compares greater).
enum class Isa : int {
  kScalar = 0,  ///< portable C++, always available
  kAvx2 = 1,    ///< 256-bit lanes (requires AVX2 + BMI-era x86-64)
  kAvx512 = 2,  ///< 512-bit lanes (requires AVX-512 F/BW/DQ/VL)
};

/// Widest level the running CPU supports (probed once, then cached).
[[nodiscard]] Isa detected_isa();

/// The level kernels dispatch on right now: min(detected, forced), where
/// forced starts from `MPCSD_FORCE_ISA` and can be moved by `force_isa`.
/// One relaxed atomic load — cheap enough to consult per kernel call.
[[nodiscard]] Isa active_isa();

/// Re-points `active_isa()` at `level` (clamped to `detected_isa()`).
/// For tests, benches, and the fuzz differential harness, which sweep every
/// level the host can run inside one process.  Returns the level actually
/// activated after clamping.
Isa force_isa(Isa level);

/// Lower-case level name ("scalar" | "avx2" | "avx512"), for logs/JSON.
[[nodiscard]] const char* isa_name(Isa level);

/// Parses an `MPCSD_FORCE_ISA` value; nullopt for anything unrecognised.
[[nodiscard]] std::optional<Isa> isa_from_string(std::string_view name);

/// Result of resolving an `MPCSD_FORCE_ISA` value against the detected
/// level — split out so the fallback policy is testable without touching
/// the process environment.  `recognised` is false when `env` named no
/// known level (e.g. "avx3"); the resolved level is then the detected one,
/// and the dispatch initialiser warns once on stderr instead of silently
/// ignoring the override.
struct IsaOverride {
  Isa level = Isa::kScalar;
  bool recognised = true;
};
[[nodiscard]] IsaOverride resolve_isa_override(const char* env,
                                               Isa detected) noexcept;

}  // namespace mpcsd
