// Geometric grids of the form {0} ∪ {(1+eps)^j : j ≥ 0}, rounded to
// integers and de-duplicated.  Both MPC algorithms discretise unknown
// quantities (the distance guess n^delta, the per-block Ulam distance u_i,
// the threshold tau) on such grids; the grid guarantees that any value
// v ∈ [1, limit] has a grid point g with g ≤ v ≤ (1+eps)·g.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace mpcsd {

/// All integer grid points {0, 1, ceil((1+eps)^j)} that are <= limit,
/// strictly increasing.  Always contains 0 and (if limit >= 1) 1.
inline std::vector<std::int64_t> geometric_grid(std::int64_t limit, double eps) {
  MPCSD_EXPECTS(eps > 0.0);
  std::vector<std::int64_t> grid;
  grid.push_back(0);
  if (limit < 1) return grid;
  double v = 1.0;
  std::int64_t last = 0;
  while (true) {
    const auto g = static_cast<std::int64_t>(std::ceil(v));
    if (g > limit) break;
    if (g != last) {
      grid.push_back(g);
      last = g;
    }
    v *= (1.0 + eps);
  }
  // Include the limit itself so that "round up to grid" never overshoots the
  // valid domain by more than a (1+eps) factor.
  if (grid.back() != limit) grid.push_back(limit);
  return grid;
}

/// Smallest grid point >= v (the canonical "round the guess up" operation).
inline std::int64_t grid_round_up(const std::vector<std::int64_t>& grid,
                                  std::int64_t v) {
  MPCSD_EXPECTS(!grid.empty());
  for (const auto g : grid) {
    if (g >= v) return g;
  }
  return grid.back();
}

/// floor(n^e) with guards for the small-n regimes used in tests.
inline std::int64_t ipow(std::int64_t n, double e) {
  MPCSD_EXPECTS(n >= 0);
  if (n == 0) return 0;
  const double v = std::pow(static_cast<double>(n), e);
  return static_cast<std::int64_t>(std::floor(v + 1e-9));
}

/// ceil(n^e).
inline std::int64_t ipow_ceil(std::int64_t n, double e) {
  MPCSD_EXPECTS(n >= 0);
  if (n == 0) return 0;
  const double v = std::pow(static_cast<double>(n), e);
  return static_cast<std::int64_t>(std::ceil(v - 1e-9));
}

/// ceil(a / b) for positive integers.
inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  MPCSD_EXPECTS(b > 0);
  MPCSD_EXPECTS(a >= 0);
  return (a + b - 1) / b;
}

}  // namespace mpcsd
