#include "common/env.hpp"

#include <cstdio>

namespace mpcsd {

bool warn_env_once(std::atomic<bool>& guard, const char* var,
                   const char* value, const char* expected,
                   const char* fallback) {
  if (guard.exchange(true, std::memory_order_relaxed)) return false;
  std::fprintf(stderr, "mpcsd: %s='%s' is not one of %s; %s\n", var,
               value != nullptr ? value : "", expected, fallback);
  return true;
}

}  // namespace mpcsd
