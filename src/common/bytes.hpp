// Byte-level serialization used for all inter-machine messages in the MPC
// simulator.  Forcing every payload through a byte encoding keeps the memory
// accounting honest: a machine's input size is exactly the number of bytes
// delivered to it, as in the MPC model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"

namespace mpcsd {

using Bytes = std::vector<std::byte>;

/// Appends POD values / vectors to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    if (!v.empty()) {
      const auto* p = reinterpret_cast<const std::byte*>(v.data());
      buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
    }
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }

 private:
  Bytes buf_;
};

/// Reads values back in the order they were written.  Over-reads throw.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) noexcept : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::byte* data, std::size_t size) noexcept
      : buf_(data), size_(size) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    MPCSD_EXPECTS(pos_ + sizeof(T) <= size_);
    T out;
    std::memcpy(&out, buf_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return out;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    MPCSD_EXPECTS(pos_ + n * sizeof(T) <= size_);
    std::vector<T> out(n);
    if (n > 0) std::memcpy(out.data(), buf_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    MPCSD_EXPECTS(pos_ + n <= size_);
    std::string out(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const std::byte* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Concatenates several byte buffers (a machine's inbox) into one.
Bytes concat(const std::vector<Bytes>& parts);

}  // namespace mpcsd
