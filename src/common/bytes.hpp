// Byte-level serialization used for all inter-machine messages in the MPC
// simulator.  Forcing every payload through a byte encoding keeps the memory
// accounting honest: a machine's input size is exactly the number of bytes
// delivered to it, as in the MPC model.
//
// Two reading models are provided:
//   * `ByteReader`  — a cursor over one contiguous buffer.
//   * `ChainReader` — a cursor over a `ByteChain`, an ordered list of
//     non-owning byte fragments.  A machine inbox is naturally a list of
//     payloads from different senders; reading them through a chain avoids
//     the concat-copy the old `gather` path performed every round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"

namespace mpcsd {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

/// Appends POD values / vectors to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-allocates capacity for `total` bytes.  Call once with the final
  /// (or estimated) message size before a burst of puts; incremental exact
  /// reserves would defeat the vector's geometric growth.
  void reserve(std::size_t total) { buf_.reserve(total); }

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires a trivially copyable type");
    append(reinterpret_cast<const std::byte*>(&value), sizeof(T));
  }

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    if (!v.empty()) {
      append(reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T));
    }
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    if (!s.empty()) {
      append(reinterpret_cast<const std::byte*>(s.data()), s.size());
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }

 private:
  // resize + memcpy instead of range insert: same growth behaviour, no
  // iterator plumbing on the hot path, and no GCC -O3 `-Wnonnull` false
  // positives from the libstdc++ range-insert internals.
  void append(const std::byte* data, std::size_t n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }

  Bytes buf_;
};

/// Reads values back in the order they were written.  Over-reads throw.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) noexcept : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::byte* data, std::size_t size) noexcept
      : buf_(data), size_(size) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    MPCSD_EXPECTS(sizeof(T) <= size_ - pos_);
    T out;
    std::memcpy(&out, buf_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return out;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    // Divide instead of multiplying: `n` comes off the wire, and
    // `n * sizeof(T)` can wrap for an adversarial length prefix.
    MPCSD_EXPECTS(n <= (size_ - pos_) / sizeof(T));
    std::vector<T> out(n);
    if (n > 0) std::memcpy(out.data(), buf_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    MPCSD_EXPECTS(n <= size_ - pos_);
    std::string out(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  const std::byte* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// An ordered sequence of non-owning byte fragments, logically one buffer.
/// The referenced storage (payloads in a `Mail`, machine inputs, ...) must
/// outlive the chain.  Empty fragments are dropped on insertion.
class ByteChain {
 public:
  ByteChain() = default;

  void add(ByteSpan part) {
    if (part.empty()) return;
    parts_.push_back(part);
    total_ += part.size();
  }
  // Guard against chaining a temporary buffer: the chain does not own bytes.
  void add(Bytes&&) = delete;

  void add(const ByteChain& other) {
    for (const ByteSpan p : other.parts_) add(p);
  }

  /// Drops all fragments but keeps the part-list capacity, so chains held
  /// in round-scoped arenas can be refilled without reallocating.
  void clear() noexcept {
    parts_.clear();
    total_ = 0;
  }

  [[nodiscard]] const std::vector<ByteSpan>& parts() const noexcept { return parts_; }
  [[nodiscard]] std::size_t total_bytes() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// Copies the fragments into one contiguous buffer (compat / tests).
  [[nodiscard]] Bytes to_bytes() const {
    Bytes out(total_);
    std::size_t off = 0;
    for (const ByteSpan p : parts_) {
      std::memcpy(out.data() + off, p.data(), p.size());
      off += p.size();
    }
    return out;
  }

 private:
  std::vector<ByteSpan> parts_;
  std::size_t total_ = 0;
};

/// `ByteReader` over a `ByteChain`: same API, values may straddle fragment
/// boundaries (the fast path stays within one fragment).  Over-reads throw.
class ChainReader {
 public:
  explicit ChainReader(const ByteChain& chain) noexcept
      : chain_(&chain), remaining_(chain.total_bytes()) {}
  // The reader borrows the chain; a temporary would dangle immediately.
  explicit ChainReader(ByteChain&&) = delete;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    read_raw(reinterpret_cast<std::byte*>(&out), sizeof(T));
    return out;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    MPCSD_EXPECTS(n <= remaining_ / sizeof(T));
    std::vector<T> out(n);
    if (n > 0) read_raw(reinterpret_cast<std::byte*>(out.data()), n * sizeof(T));
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    MPCSD_EXPECTS(n <= remaining_);
    std::string out(n, '\0');
    if (n > 0) read_raw(reinterpret_cast<std::byte*>(out.data()), n);
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return remaining_ == 0; }
  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }

 private:
  void read_raw(std::byte* out, std::size_t n) {
    MPCSD_EXPECTS(n <= remaining_);
    const auto& parts = chain_->parts();
    while (n > 0) {
      const ByteSpan part = parts[part_];
      const std::size_t take = std::min(n, part.size() - off_);
      std::memcpy(out, part.data() + off_, take);
      out += take;
      off_ += take;
      n -= take;
      remaining_ -= take;
      if (off_ == part.size()) {
        ++part_;
        off_ = 0;
      }
    }
  }

  const ByteChain* chain_;
  std::size_t part_ = 0;       ///< current fragment index
  std::size_t off_ = 0;        ///< offset within the current fragment
  std::size_t remaining_ = 0;  ///< bytes left across all fragments
};

/// Concatenates several byte buffers (a machine's inbox) into one.
Bytes concat(const std::vector<Bytes>& parts);

}  // namespace mpcsd
