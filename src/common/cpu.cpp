#include "common/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/env.hpp"

namespace mpcsd {

namespace {

Isa probe_isa() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  // AVX-512 kernels use foundation + byte/word + doubleword/quadword +
  // vector-length extensions; every mainstream AVX-512 server part
  // (Skylake-SP onward) has all four.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return Isa::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

Isa env_forced(Isa detected) {
  const char* env = std::getenv("MPCSD_FORCE_ISA");
  const IsaOverride resolved = resolve_isa_override(env, detected);
  if (!resolved.recognised) {
    static std::atomic<bool> warned{false};
    const std::string fallback =
        std::string("using detected level '") + isa_name(detected) + "'";
    warn_env_once(warned, "MPCSD_FORCE_ISA", env, "scalar|avx2|avx512",
                  fallback.c_str());
  }
  return resolved.level;
}

/// The dispatch level, initialised lazily from (probe, env) on first read.
/// kUnset sentinel keeps the hot-path read one relaxed load.
constexpr int kUnset = -1;
std::atomic<int> g_active{kUnset};

}  // namespace

Isa detected_isa() {
  static const Isa detected = probe_isa();
  return detected;
}

Isa active_isa() {
  const int cur = g_active.load(std::memory_order_relaxed);
  if (cur != kUnset) return static_cast<Isa>(cur);
  const Isa initial = env_forced(detected_isa());
  int expected = kUnset;
  g_active.compare_exchange_strong(expected, static_cast<int>(initial),
                                   std::memory_order_relaxed);
  return static_cast<Isa>(g_active.load(std::memory_order_relaxed));
}

Isa force_isa(Isa level) {
  const Isa detected = detected_isa();
  const Isa clamped = level < detected ? level : detected;
  g_active.store(static_cast<int>(clamped), std::memory_order_relaxed);
  return clamped;
}

const char* isa_name(Isa level) {
  switch (level) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

std::optional<Isa> isa_from_string(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  return std::nullopt;
}

IsaOverride resolve_isa_override(const char* env, Isa detected) noexcept {
  if (env == nullptr) return IsaOverride{detected, true};
  const auto parsed = isa_from_string(env);
  if (!parsed.has_value()) return IsaOverride{detected, false};
  return IsaOverride{*parsed < detected ? *parsed : detected, true};
}

}  // namespace mpcsd
