// Monotonic stopwatch used for work metering in the MPC simulator and the
// benchmark harnesses.
#pragma once

#include <chrono>

namespace mpcsd {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mpcsd
