// Deterministic non-cryptographic hashing shared by the conformance auditor
// (machine outbox fingerprints) and the trace structural hash (determinism
// regression gates).  FNV-1a over bytes, with a splitmix finisher so short
// inputs still diffuse; stable across platforms with the same endianness,
// which is all the in-process comparisons need.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace mpcsd {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte range, continuing from `state`.
inline std::uint64_t hash_bytes(const void* data, std::size_t size,
                                std::uint64_t state = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

/// Mixes one integer value into a running hash.
inline std::uint64_t hash_mix(std::uint64_t state, std::uint64_t value) noexcept {
  return splitmix64(state ^ splitmix64(value));
}

}  // namespace mpcsd
