// A small fixed-size thread pool with a blocking `parallel_for`.
//
// The MPC simulator executes all machines of a round concurrently through
// this pool; within a round machines share nothing (the MPC model forbids
// intra-round communication), so `parallel_for` over machine indices is the
// natural execution primitive.  The pool size defaults to the hardware
// concurrency but is configurable so the simulator stays deterministic and
// usable on single-core hosts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mpcsd {

/// Cumulative utilisation counters of one pool, sampled by the
/// observability spine (the cluster emits them as `pool.*` counter events
/// after every round).  All fields are monotone over the pool's lifetime.
struct PoolCounters {
  std::uint64_t parallel_for_calls = 0;  ///< calls that fanned out to workers
  std::uint64_t inline_calls = 0;        ///< serial fast-path calls
  std::uint64_t tasks_enqueued = 0;      ///< worker wakeup tasks queued
  std::uint64_t indices_claimed = 0;     ///< iteration indices dispatched
  std::uint64_t peak_queue_depth = 0;    ///< max task-queue length observed
};

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Snapshot of the cumulative queue-depth/utilisation counters.  Cheap
  /// (five relaxed loads); safe to call concurrently with parallel_for.
  [[nodiscard]] PoolCounters counters() const noexcept {
    PoolCounters c;
    c.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
    c.inline_calls = inline_calls_.load(std::memory_order_relaxed);
    c.tasks_enqueued = tasks_enqueued_.load(std::memory_order_relaxed);
    c.indices_claimed = indices_claimed_.load(std::memory_order_relaxed);
    c.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
    return c;
  }

  /// Runs body(i) for every i in [0, count), blocking until all complete.
  ///
  /// Exceptions thrown by `body` propagate to the caller: the first one is
  /// captured, the remaining iteration space is cancelled (chunks already
  /// running finish their current index; unclaimed indices never execute),
  /// and the exception is rethrown once every worker has quiesced.  A
  /// throwing body can never terminate the process or wedge the pool — the
  /// pool stays fully usable for subsequent calls.
  ///
  /// `grain` is the number of consecutive indices a worker claims per
  /// atomic fetch: grain 1 (the default) load-balances perfectly but pays
  /// one contended RMW per index, which dominates when bodies are tiny
  /// (e.g. thousands of near-empty simulated machines).  Larger grains
  /// amortise the RMW at the cost of coarser balancing.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;

  // Observability counters (see PoolCounters).  Relaxed atomics updated at
  // call granularity — never per index — so metering stays off the inner
  // loop.
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> inline_calls_{0};
  std::atomic<std::uint64_t> tasks_enqueued_{0};
  std::atomic<std::uint64_t> indices_claimed_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
};

}  // namespace mpcsd
