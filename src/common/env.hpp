// Shared handling for environment-variable overrides.
//
// Every override knob (MPCSD_FORCE_ISA, MPCSD_BACKEND, MPCSD_ROUTER, ...)
// follows one policy: a pure `resolve_*` function maps (requested value,
// env string) to an effective setting so the fallback logic is testable
// without touching the process environment, and an unrecognised value
// fails loudly exactly once per process — a typo'd override silently
// running the default would fake a CI leg that believes it exercised the
// overridden configuration.  The warn-once bookkeeping used to be copied
// into every resolver; this helper is that one pattern, extracted.
#pragma once

#include <atomic>

namespace mpcsd {

/// Prints the standard one-line diagnostic for an unrecognised
/// environment-override value, at most once per `guard` (process
/// lifetime, thread-safe):
///
///   mpcsd: VAR='value' is not one of EXPECTED; FALLBACK
///
/// `guard` lives at the call site (one per variable) so each knob warns
/// independently.  `value` may be null (prints as empty).  Returns true
/// when this call emitted the warning, false when an earlier call already
/// claimed it — callers that need side effects exactly once can branch on
/// it.
bool warn_env_once(std::atomic<bool>& guard, const char* var,
                   const char* value, const char* expected,
                   const char* fallback);

}  // namespace mpcsd
