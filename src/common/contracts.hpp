// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations throw rather
// than abort so that the test suite can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpcsd {

/// Thrown when a precondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  throw ContractViolation(os.str());
}

}  // namespace detail

}  // namespace mpcsd

/// Precondition check; always on (the checks guard algorithmic invariants,
/// not hot inner loops).
#define MPCSD_EXPECTS(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::mpcsd::detail::contract_fail("precondition", #expr, __FILE__,        \
                                     __LINE__);                              \
  } while (false)

/// Postcondition / invariant check.
#define MPCSD_ENSURES(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::mpcsd::detail::contract_fail("postcondition", #expr, __FILE__,       \
                                     __LINE__);                              \
  } while (false)
