#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace mpcsd {

namespace {

/// Shared state of one parallel_for call.  Queued worker tasks hold a
/// shared_ptr to it, so stragglers that run after the call has returned
/// (because the caller drained all indices itself) see next >= count and
/// exit immediately instead of touching dead stack frames.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancelled{false};
  std::size_t count = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* body = nullptr;  // valid while done < count
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::mutex done_mu;
  std::condition_variable done_cv;
};

void drain(const std::shared_ptr<ForState>& state) {
  for (;;) {
    const std::size_t begin = state->next.fetch_add(state->grain, std::memory_order_relaxed);
    if (begin >= state->count) return;
    const std::size_t end = std::min(state->count, begin + state->grain);
    // A thrown body cancels the call: later chunks are still claimed and
    // counted (so the caller's completion wait stays exact) but their
    // bodies no longer run — the first exception reaches the caller without
    // paying for the rest of the iteration space.
    if (!state->cancelled.load(std::memory_order_acquire)) {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*state->body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->error_mu);
          if (!state->first_error) state->first_error = std::current_exception();
          state->cancelled.store(true, std::memory_order_release);
          break;
        }
      }
    }
    const std::size_t chunk = end - begin;
    if (state->done.fetch_add(chunk, std::memory_order_acq_rel) + chunk == state->count) {
      std::lock_guard<std::mutex> lock(state->done_mu);
      state->done_cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A task must never unwind into the thread entry point — that calls
    // std::terminate and takes the whole process down.  parallel_for's
    // drain captures body exceptions itself; this guard covers the
    // remaining theoretical throws (e.g. mutex failure) so a worker thread
    // survives any task.
    try {
      task();
    } catch (...) {
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (count == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  indices_claimed_.fetch_add(count, std::memory_order_relaxed);
  if (count <= g || threads_.size() <= 1) {
    // One chunk (or one worker): run inline on the caller — same
    // cancel-on-first-error semantics as the pooled path, no queue wakeup
    // for single-machine rounds.
    inline_calls_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<ForState>();
  state->count = count;
  state->grain = g;
  state->body = &body;

  // One queued task per worker; each drains indices from the shared
  // counter, so queue pressure stays constant even for 10^5 machines.
  const std::size_t fanout = std::min((count + state->grain - 1) / state->grain,
                                      threads_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < fanout; ++i) {
      tasks_.push([state] { drain(state); });
    }
    tasks_enqueued_.fetch_add(fanout, std::memory_order_relaxed);
    const auto depth = static_cast<std::uint64_t>(tasks_.size());
    if (depth > peak_queue_depth_.load(std::memory_order_relaxed)) {
      peak_queue_depth_.store(depth, std::memory_order_relaxed);
    }
  }
  cv_.notify_all();

  // The calling thread participates too: guarantees forward progress even
  // with zero free workers and makes single-threaded pools exact.
  drain(state);

  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == count;
    });
  }
  // `body` dangles after return; stragglers must never dereference it.
  // They cannot: next >= count for every remaining queued task.
  state->body = nullptr;
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace mpcsd
