// EINTR-safe file-descriptor IO, shared by every transport that moves
// bytes across a process boundary (the process backend's round-barrier
// pipes, the socket backend's TCP frame streams).
//
// POSIX read/write may transfer fewer bytes than asked (signals, pipe
// buffers, TCP segmentation).  Before this helper existed each caller
// carried its own retry loop; a site that forgot one turned EINTR in the
// middle of a 17-byte barrier into a corrupt-barrier failure.  These are
// the only retry loops in the codebase — everything above them speaks in
// whole messages.
#pragma once

#include <cstddef>

namespace mpcsd::io {

/// Reads exactly `n` bytes into `data`, retrying on EINTR and assembling
/// partial reads.  Returns false on EOF or a read error — for our framed
/// protocols both mean the same thing: the peer is gone and the message
/// will never complete.
[[nodiscard]] bool read_full(int fd, void* data, std::size_t n) noexcept;

/// Writes exactly `n` bytes from `data`, retrying on EINTR and resuming
/// partial writes.  Returns false on a write error.
[[nodiscard]] bool write_full(int fd, const void* data, std::size_t n) noexcept;

/// `write_full` for sockets: uses send(MSG_NOSIGNAL) so a peer that closed
/// mid-message surfaces as `false` (EPIPE) instead of a process-killing
/// SIGPIPE.  Falls back to `write_full` on non-socket fds / non-Linux.
[[nodiscard]] bool write_full_nosignal(int fd, const void* data,
                                       std::size_t n) noexcept;

/// Closes `fd` if it is valid and resets it to -1.  Deliberately does NOT
/// retry on EINTR: on Linux the descriptor is released even when close()
/// reports EINTR, and a retry could close an fd another thread just
/// received from the kernel.
void close_fd(int& fd) noexcept;

}  // namespace mpcsd::io
