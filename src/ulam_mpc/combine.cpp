#include "ulam_mpc/combine.hpp"

namespace mpcsd::ulam_mpc {

std::int64_t combine_machine(const Bytes& payload, std::int64_t n,
                             std::int64_t n_bar, std::uint64_t* work) {
  auto tuples = seq::read_all_tuples(payload);
  seq::CombineOptions options;
  options.gap = seq::GapCost::kMax;  // Algorithm 2 charges max-gaps
  options.use_fast = true;
  return seq::combine_tuples(std::move(tuples), n, n_bar, options, work);
}

}  // namespace mpcsd::ulam_mpc
