#include "ulam_mpc/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/contracts.hpp"
#include "common/grid.hpp"

namespace mpcsd::ulam_mpc {

namespace {

using seq::MatchPoint;

/// Per-block evaluation context: match points of the block against s̄ in
/// both p-order and q-order, plus a dedup set so that every candidate
/// window is evaluated exactly once across all guess levels.
class BlockEvaluator {
 public:
  BlockEvaluator(std::int64_t block_begin, const std::vector<std::int64_t>& positions,
                 std::int64_t n_bar, CandidateStats* stats)
      : block_begin_(block_begin),
        block_len_(static_cast<std::int64_t>(positions.size())),
        n_bar_(n_bar),
        stats_(stats) {
    for (std::size_t p = 0; p < positions.size(); ++p) {
      if (positions[p] >= 0) {
        pts_.push_back(MatchPoint{static_cast<std::int64_t>(p), positions[p]});
      }
    }
    by_q_ = pts_;
    std::sort(by_q_.begin(), by_q_.end(),
              [](const MatchPoint& a, const MatchPoint& b) { return a.q < b.q; });
  }

  [[nodiscard]] const std::vector<MatchPoint>& points() const noexcept { return pts_; }
  [[nodiscard]] std::int64_t block_len() const noexcept { return block_len_; }
  [[nodiscard]] std::uint64_t work() const noexcept { return work_; }

  /// Evaluates candidate window [sp, ep) with the band-filtered exact
  /// engine capped at `cap`; appends a tuple when the distance is <= cap.
  void evaluate(std::int64_t sp, std::int64_t ep, std::int64_t cap,
                std::vector<Tuple>& out) {
    sp = std::clamp<std::int64_t>(sp, 0, n_bar_);
    ep = std::clamp<std::int64_t>(ep, sp, n_bar_);
    const std::uint64_t key = static_cast<std::uint64_t>(sp) * (static_cast<std::uint64_t>(n_bar_) + 2) +
                              static_cast<std::uint64_t>(ep);
    if (!seen_.insert(key).second) return;
    if (stats_ != nullptr) ++stats_->candidates_evaluated;

    // Window slice: match points with q in [sp, ep) are contiguous in
    // q-order; keep only those within the diagonal band of the cap.
    const auto lo = std::lower_bound(by_q_.begin(), by_q_.end(), sp,
                                     [](const MatchPoint& m, std::int64_t v) { return m.q < v; });
    const auto hi = std::lower_bound(by_q_.begin(), by_q_.end(), ep,
                                     [](const MatchPoint& m, std::int64_t v) { return m.q < v; });
    std::vector<MatchPoint> window;
    window.reserve(static_cast<std::size_t>(hi - lo));
    for (auto it = lo; it != hi; ++it) {
      const std::int64_t q_local = it->q - sp;
      if (std::abs(q_local - it->p) <= cap) {
        window.push_back(MatchPoint{it->p, q_local});
      }
    }
    work_ += static_cast<std::uint64_t>(hi - lo) + 1;
    std::sort(window.begin(), window.end(),
              [](const MatchPoint& a, const MatchPoint& b) { return a.p < b.p; });

    const auto d = seq::bounded_ulam_from_match_points(window, block_len_, ep - sp,
                                                       cap, &work_);
    if (!d.has_value()) {
      if (stats_ != nullptr) ++stats_->candidates_pruned;
      return;
    }
    out.push_back(Tuple{block_begin_, block_begin_ + block_len_, sp, ep, *d});
  }

 private:
  std::int64_t block_begin_;
  std::int64_t block_len_;
  std::int64_t n_bar_;
  CandidateStats* stats_;
  std::vector<MatchPoint> pts_;   // sorted by p
  std::vector<MatchPoint> by_q_;  // sorted by q
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t work_ = 0;
};

}  // namespace

std::vector<Tuple> build_block_candidates(std::int64_t block_begin,
                                          const std::vector<std::int64_t>& positions,
                                          const CandidateParams& params,
                                          Pcg32& rng, CandidateStats* stats) {
  MPCSD_EXPECTS(params.eps_prime > 0.0);
  MPCSD_EXPECTS(params.n > 0 && params.n_bar >= 0);
  std::vector<Tuple> out;
  const auto b_len = static_cast<std::int64_t>(positions.size());
  if (b_len == 0) return out;

  const double eps = params.eps_prime;
  BlockEvaluator eval(block_begin, positions, params.n_bar, stats);

  // Locate the locally best window (lulam); its distance d* lower-bounds
  // the opt-induced distance u_i of this block.
  std::uint64_t lulam_work = 0;
  const auto lul = seq::local_ulam_from_match_points(eval.points(), b_len,
                                                     params.n_bar, &lulam_work);
  const std::int64_t d_star = lul.distance;
  // Always record the lulam window itself (it is an exact, useful tuple and
  // covers the d* == 0 case of Algorithm 1 line 2).
  if (!lul.window.empty() || d_star == 0) {
    eval.evaluate(lul.window.begin, lul.window.end, std::max<std::int64_t>(d_star, 1), out);
  }

  // Guess levels u = ceil((1+eps')^j); a level can only be the one whose
  // analysis applies when u_i ∈ [u, (1+eps')u), and u_i >= d*, so levels
  // with (1+eps')u < d* are skipped.  Section 4.1 caps the levels at
  // n^{1-x} = B (blocks whose opt image is even further are covered by the
  // anchored near-diagonal candidates plus the combine DP's gap charging);
  // we keep a 2x margin.
  const std::int64_t u_max = std::min(std::max(params.n, params.n_bar), 2 * b_len);
  for (const std::int64_t u : geometric_grid(u_max, eps)) {
    if (u == 0) continue;
    const auto u_hat = static_cast<std::int64_t>(
        std::ceil((1.0 + eps) * static_cast<double>(u)));
    if (u_hat < d_star) continue;
    const std::int64_t gap = std::max<std::int64_t>(
        static_cast<std::int64_t>(eps * static_cast<double>(u)), 1);
    const std::int64_t cap = 4 * u_hat + 2;

    if (u < ceil_div(b_len, 2)) {
      // Lemma 1 regime: grid around the lulam window.
      const std::int64_t gamma = lul.window.begin;
      const std::int64_t kappa = lul.window.end;
      for (std::int64_t sp = gamma - 2 * u_hat; sp <= gamma + 2 * u_hat; sp += gap) {
        for (std::int64_t ep = kappa - 2 * u_hat; ep <= kappa + 2 * u_hat; ep += gap) {
          if (ep < sp) continue;
          eval.evaluate(sp, ep, cap, out);
        }
      }
    } else {
      // Lemma 2 regime: hitting-set anchors.
      const double theta = std::min(
          1.0, params.theta_constant *
                   std::log(static_cast<double>(std::max<std::int64_t>(params.n, 3))) /
                   (eps * static_cast<double>(b_len)));
      // Unchanged characters in the same aligned run share a diagonal and
      // hence an identical candidate set; dedupe on the diagonal.  Sorted
      // dedupe (not a hash set) so the candidate stream cannot depend on
      // the standard library's bucket order.
      std::vector<std::int64_t> anchor_diagonals;
      for (const seq::MatchPoint& m : eval.points()) {
        if (!rng.bernoulli(theta)) continue;
        if (stats != nullptr) ++stats->anchors_sampled;
        anchor_diagonals.push_back(m.q - m.p);
      }
      std::sort(anchor_diagonals.begin(), anchor_diagonals.end());
      anchor_diagonals.erase(
          std::unique(anchor_diagonals.begin(), anchor_diagonals.end()),
          anchor_diagonals.end());
      if (stats != nullptr) stats->anchors_distinct += anchor_diagonals.size();
      for (const std::int64_t diag : anchor_diagonals) {
        const std::int64_t gamma2 = diag;          // q - p
        const std::int64_t kappa2 = diag + b_len;  // exclusive end
        for (std::int64_t sp = gamma2 - u_hat; sp <= gamma2 + u_hat; sp += gap) {
          for (std::int64_t ep = std::max(kappa2 - u_hat, sp); ep <= kappa2 + u_hat;
               ep += gap) {
            eval.evaluate(sp, ep, cap, out);
          }
        }
      }
    }
  }

  if (stats != nullptr) stats->work += eval.work() + lulam_work;
  return out;
}

}  // namespace mpcsd::ulam_mpc
