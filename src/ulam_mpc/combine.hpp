// Round-2 machinery for the Ulam MPC algorithm: the single combine machine
// that runs Algorithm 2 on everything round 1 produced.  Tuple
// (de)serialization lives in seq/combine.hpp and is re-exported here.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "seq/combine.hpp"

namespace mpcsd::ulam_mpc {

using seq::read_all_tuples;
using seq::write_tuples;

/// The round-2 machine body: parse tuples, run the combine DP (Algorithm 2,
/// max-gap costs), return the approximate Ulam distance.
std::int64_t combine_machine(const Bytes& payload, std::int64_t n,
                             std::int64_t n_bar, std::uint64_t* work = nullptr);

}  // namespace mpcsd::ulam_mpc
