#include "ulam_mpc/solver.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "mpc/plan.hpp"
#include "mpc/primitives.hpp"
#include "seq/lis.hpp"
#include "ulam_mpc/combine.hpp"

namespace mpcsd::ulam_mpc {

namespace {

/// Round-1 machine input: one block of s with the t-positions of its
/// symbols (the "character position map" feed of Algorithm 1).
struct BlockTask {
  std::int64_t begin = 0;
  std::vector<std::int64_t> positions;

  static constexpr auto fields() {
    return std::make_tuple(&BlockTask::begin, &BlockTask::positions);
  }
};

/// Round-1 -> round-2 channel: each block machine sends one tuple batch
/// (the wire layout of `seq::write_tuples`: u64 count + raw tuples).
constexpr mpc::Channel<std::vector<seq::Tuple>> kTuples{0, "tuples"};
/// Round-2 output: the combined distance.
constexpr mpc::Channel<std::int64_t> kAnswer{0, "answer"};

mpc::Plan ulam_plan() {
  return mpc::Plan{
      "ulam",
      {
          {"ulam:candidates", "BlockTask (sharded input)", "tuples"},
          {"ulam:combine", "Inbox<tuples>", "answer"},
      }};
}

}  // namespace

std::uint64_t ulam_memory_cap_bytes(std::int64_t n, const UlamMpcParams& params) {
  const std::int64_t block = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - params.x));
  const double eps_prime = params.epsilon / 2.0;
  const double logn = std::log2(static_cast<double>(std::max<std::int64_t>(n, 4)));
  // Input feed: 8 bytes per block position; output: tuples of ~48 bytes
  // with poly(1/eps') multiplicity — the grids contribute (1/eps')^2 per
  // level and ~1/eps' levels matter per block (Section 4.1's Õ(1/eps'^5)
  // bound), so the cap carries a cubic 1/eps' factor.  Still
  // Õ_eps(n^{1-x}).
  const double inv = 1.0 + 1.0 / eps_prime;
  const double cap = params.memory_slack * 8.0 *
                     (static_cast<double>(block) + 64.0) * (logn + 2.0) *
                     inv * inv * inv;
  return static_cast<std::uint64_t>(cap);
}

UlamMpcResult ulam_distance_mpc(SymView s, SymView t, const UlamMpcParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.epsilon > 0.0);
  MPCSD_EXPECTS(seq::is_repeat_free(s));
  MPCSD_EXPECTS(seq::is_repeat_free(t));

  UlamMpcResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  if (n == 0) {
    result.distance = n_bar;
    return result;
  }

  const double eps_prime = params.epsilon / 2.0;
  const std::int64_t block = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - params.x));
  const std::int64_t block_count = ceil_div(n, block);
  result.block_size = block;
  result.block_count = static_cast<std::size_t>(block_count);
  result.memory_cap_bytes = ulam_memory_cap_bytes(n, params);

  mpc::ClusterConfig config;
  config.memory_limit_bytes = result.memory_cap_bytes;
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  config.backend = params.backend;
  config.audit = params.audit;
  config.recorder = params.recorder;
  mpc::Driver driver(ulam_plan(), config);
  obs::Span solve_span(params.recorder, "ulam:solve", "solver");
  solve_span.arg("n", static_cast<double>(n))
      .arg("blocks", static_cast<double>(block_count));

  // Character-position map: either an in-model MPC hash join (two extra
  // rounds on this cluster, before the declared plan stages) or the
  // equivalent driver-side routing (the paper's "input is already
  // distributed" assumption).
  std::vector<std::int64_t> all_positions;
  if (params.in_model_position_map) {
    all_positions = mpc::position_map_round(
        driver.cluster(), s, t, static_cast<std::size_t>(block_count));
  } else {
    std::unordered_map<Symbol, std::int64_t> pos_in_t;
    pos_in_t.reserve(t.size() * 2);
    for (std::size_t j = 0; j < t.size(); ++j) {
      pos_in_t.emplace(t[j], static_cast<std::int64_t>(j));
    }
    all_positions.reserve(s.size());
    for (const Symbol v : s) {
      const auto it = pos_in_t.find(v);
      all_positions.push_back(it == pos_in_t.end() ? -1 : it->second);
    }
  }

  std::vector<BlockTask> tasks;
  tasks.reserve(static_cast<std::size_t>(block_count));
  for (std::int64_t b = 0; b < block_count; ++b) {
    const std::int64_t begin = b * block;
    const std::int64_t end = std::min(n, begin + block);
    tasks.push_back(BlockTask{
        begin, std::vector<std::int64_t>(all_positions.begin() + begin,
                                         all_positions.begin() + end)});
  }
  const std::vector<Bytes> inputs = driver.shard_parallel(tasks);

  // ---- Stage 1: Algorithm 1 on every block. ----
  // Per-machine stats travel on the unmetered stash channel rather than a
  // shared host array: machine bodies may run in forked worker processes
  // whose writes to host memory are invisible (mpc/backend.hpp).
  const mpc::Stage<BlockTask> candidates_stage{
      "ulam:candidates",
      [eps_prime, n, n_bar, theta_constant = params.theta_constant](
          mpc::StageContext<BlockTask>& ctx) {
        CandidateParams cp;
        cp.eps_prime = eps_prime;
        cp.theta_constant = theta_constant;
        cp.n = n;
        cp.n_bar = n_bar;
        CandidateStats st{};
        const auto tuples = build_block_candidates(
            ctx.in().begin, ctx.in().positions, cp, ctx.rng(), &st);
        ctx.charge_work(st.work);
        ctx.charge_scratch(ctx.in().positions.size() * 32);
        ctx.send(kTuples, tuples);
        ctx.stash(st);
      }};
  std::vector<Bytes> stage1_stash;
  mpc::RoundOptions stage1_options;
  stage1_options.machine_stash = &stage1_stash;
  const auto mail = driver.run(candidates_stage, inputs, stage1_options);

  for (const Bytes& raw : stage1_stash) {
    const auto st = mpc::unstash<CandidateStats>(raw);
    result.stats.candidates_evaluated += st.candidates_evaluated;
    result.stats.candidates_pruned += st.candidates_pruned;
    result.stats.anchors_sampled += st.anchors_sampled;
    result.stats.anchors_distinct += st.anchors_distinct;
    result.stats.work += st.work;
  }

  // ---- Stage 2: Algorithm 2 on one machine. ----
  // The combine machine reads the round-1 tuple batches in place
  // (zero-copy); its metered input is still the full mailbox byte count.
  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  const mpc::Stage<TupleInbox> combine_stage{
      "ulam:combine",
      [n, n_bar, keep_tuples = params.keep_tuples,
       combine_gap = params.combine_gap](mpc::StageContext<TupleInbox>& ctx) {
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const auto tuple_count = static_cast<std::uint64_t>(tuples.size());
        std::vector<seq::Tuple> kept;
        if (keep_tuples) kept = tuples;
        seq::CombineOptions options;
        options.gap = combine_gap;
        const std::int64_t answer =
            seq::combine_tuples(std::move(tuples), n, n_bar, options, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(kAnswer, answer);
        // Diagnostics ride the stash; the answer rides the mailbox.  The
        // stash layout (count, then tuples iff keep_tuples) is decoded below.
        ctx.stash(tuple_count);
        if (keep_tuples) ctx.stash(kept);
      }};
  std::vector<Bytes> stage2_stash;
  mpc::RoundOptions stage2_options;
  stage2_options.machine_stash = &stage2_stash;
  const auto mail2 = driver.run_views(
      combine_stage, {mpc::gather_view(mail, kTuples.mailbox)}, stage2_options);
  driver.finish();

  const auto answers = driver.receive(mail2, kAnswer);
  MPCSD_ENSURES(answers.size() == 1);
  result.distance = answers.front();
  {
    ByteReader r(stage2_stash.at(0));
    result.tuple_count =
        static_cast<std::size_t>(mpc::Codec<std::uint64_t>::decode(r));
    if (params.keep_tuples) {
      result.tuples = mpc::Codec<std::vector<seq::Tuple>>::decode(r);
    }
  }
  result.trace = driver.take_trace();
  MPCSD_ENSURES(result.trace.round_count() ==
                (params.in_model_position_map ? 4u : 2u));
  MPCSD_ENSURES(result.distance >= 0);
  return result;
}

}  // namespace mpcsd::ulam_mpc
