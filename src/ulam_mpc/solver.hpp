// Theorem 4: the two-round MPC algorithm for Ulam distance.
//
// Round 1 — one machine per block of size B = n^{1-x}: each machine
//   receives its block's character positions in s̄ (Õ(n^{1-x}) bytes) and
//   emits candidate tuples (Algorithm 1).
// Round 2 — a single machine receives all Õ_eps(n^x) tuples and runs the
//   combine DP (Algorithm 2).
//
// The returned distance is the cost of a realizable transformation (always
// >= ulam(s, s̄)) and is <= (1+eps)·ulam(s, s̄) with high probability.
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/audit.hpp"
#include "mpc/backend.hpp"
#include "mpc/stats.hpp"
#include "obs/recorder.hpp"
#include "seq/combine.hpp"
#include "seq/types.hpp"
#include "ulam_mpc/candidates.hpp"

namespace mpcsd::ulam_mpc {

struct UlamMpcParams {
  double x = 1.0 / 3;          ///< memory exponent: B = n^{1-x}; needs x < 1/2
  double epsilon = 0.5;        ///< approximation slack (eps' = eps/2 internally)
  double theta_constant = 8.0; ///< hitting-set rate constant (paper: 8)
  std::uint64_t seed = 7;
  std::size_t workers = 0;     ///< simulator thread pool; 0 = hardware
  bool strict_memory = false;  ///< throw on per-machine memory violations
  double memory_slack = 8.0;   ///< constant inside the Õ_eps(n^{1-x}) cap
  bool keep_tuples = false;    ///< retain round-1 tuples in the result
  /// Build the character-position map with an in-model MPC hash join (two
  /// extra rounds) instead of driver-side routing.  The paper's two-round
  /// count assumes the input is already distributed; this flag makes that
  /// assumption itself run through the simulator.
  bool in_model_position_map = false;
  /// Gap charging of the combine DP.  Algorithm 2 uses kMax (substitute the
  /// paired stretch); kSum is the Algorithm 4 variant, exposed for the
  /// DESIGN.md ablation.
  seq::GapCost combine_gap = seq::GapCost::kMax;
  /// Execution backend for the owned cluster (see mpc/backend.hpp):
  /// kAuto honours MPCSD_BACKEND, kThread/kProcess pin it.
  mpc::BackendKind backend = mpc::BackendKind::kAuto;
  /// Model-conformance auditing of the pipeline's rounds (see mpc/audit.hpp).
  mpc::AuditOptions audit{};
  /// Observability recorder handed to the owned cluster (null = detached).
  obs::Recorder* recorder = nullptr;
};

struct UlamMpcResult {
  std::int64_t distance = 0;
  std::int64_t block_size = 0;
  std::size_t block_count = 0;
  std::size_t tuple_count = 0;
  std::uint64_t memory_cap_bytes = 0;
  mpc::ExecutionTrace trace;
  CandidateStats stats;              ///< aggregated over all round-1 machines
  std::vector<seq::Tuple> tuples;    ///< populated iff keep_tuples
};

/// Approximates ulam(s, t).  Preconditions: both strings repeat-free.
UlamMpcResult ulam_distance_mpc(SymView s, SymView t,
                                const UlamMpcParams& params = {});

/// The per-machine memory budget the solver configures: Õ_eps(n^{1-x}).
std::uint64_t ulam_memory_cap_bytes(std::int64_t n, const UlamMpcParams& params);

}  // namespace mpcsd::ulam_mpc
