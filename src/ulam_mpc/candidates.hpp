// Algorithm 1 of the paper: per-block candidate-substring construction for
// the Ulam MPC algorithm (round 1, one block per machine).
//
// Given a block s[l, r) and the position of each block character in s̄, the
// machine produces a set of tuples <[l, r), [gamma, kappa), d> where
// s̄[gamma, kappa) is a candidate substring and d its exact Ulam distance to
// the block.  Candidates come from two constructions:
//
//   * u_i < B/2  (Lemma 1): solve local Ulam (lulam) to locate the best
//     window s̄[gamma*, kappa*); grid the starting/ending points within
//     2*û of it with gap G = max(floor(eps'*u), 1).
//   * u_i >= B/2 (Lemma 2): sample a hitting set I of block characters at
//     rate theta = (theta_constant / (eps'*B)) * ln(n); every unchanged
//     character anchors a window, gridded within û of the anchor.
//
// Since u_i is unknown, all guesses u = (1+eps')^j are tried; guesses below
// the lulam optimum d* are skipped (no window can be that close, so such a
// level can never be the one whose analysis applies).  Candidates are
// deduplicated across levels and each is evaluated once with the
// band-filtered exact Ulam engine (capped at 4û so that a level's good
// candidate — at distance <= (1+2eps')u — is never pruned).
#pragma once

#include <cstdint>
#include <vector>

#include "seq/combine.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"
#include "common/rng.hpp"

namespace mpcsd::ulam_mpc {

/// Round-1 output tuples reuse the shared combine-DP tuple type.
using Tuple = seq::Tuple;

struct CandidateParams {
  double eps_prime = 0.25;       ///< eps' = eps/2
  double theta_constant = 8.0;   ///< paper uses 8; benches may lower it
  std::int64_t n = 0;            ///< |s| (drives the ln n sampling rate)
  std::int64_t n_bar = 0;        ///< |s̄|
};

struct CandidateStats {
  std::size_t candidates_evaluated = 0;
  std::size_t candidates_pruned = 0;   ///< bounded DP exceeded its cap
  std::size_t anchors_sampled = 0;     ///< |I| before diagonal dedup
  std::size_t anchors_distinct = 0;    ///< distinct (gamma, kappa) anchors
  std::uint64_t work = 0;
};

/// Runs Algorithm 1 for one block.  `block_begin` is the block's offset in
/// s; `positions[p]` is the position of block character p in s̄, or -1 if
/// the character does not occur in s̄.  Returns the candidate tuples.
std::vector<Tuple> build_block_candidates(std::int64_t block_begin,
                                          const std::vector<std::int64_t>& positions,
                                          const CandidateParams& params,
                                          Pcg32& rng, CandidateStats* stats = nullptr);

}  // namespace mpcsd::ulam_mpc
