// Optimal alignment extraction.
//
// The figure experiments (Fig. 1, 2, 3, 7) reason about the substring
// s̄[alpha_i, beta_i) that block i of s transforms into under a fixed optimal
// solution `opt`.  This module materialises such an opt: an optimal edit
// script via Hirschberg's divide-and-conquer (O(|a||b|) time, O(|a|+|b|)
// space), and the induced monotone "cut" positions that map any block
// boundary in a to a position in b.  Consecutive block images partition b —
// exactly the structure of the paper's Fig. 1.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/types.hpp"

namespace mpcsd::seq {

enum class EditOp : std::uint8_t {
  kMatch,       ///< consume one symbol of a and one equal symbol of b
  kSubstitute,  ///< consume one of each, unequal
  kDelete,      ///< consume one symbol of a
  kInsert,      ///< consume one symbol of b
};

/// An optimal (minimum-cost) edit script from a to b.  Hirschberg's
/// algorithm: O(|a||b|) time, O(|a|+|b|) working space.
std::vector<EditOp> edit_script(SymView a, SymView b);

/// Number of non-match operations (== edit distance when the script is
/// optimal; pinned by tests).
std::int64_t script_cost(const std::vector<EditOp>& script);

/// cuts[i] = number of symbols of b consumed once the first i symbols of a
/// have been processed by the script (trailing inserts are attributed to the
/// final position).  cuts.size() == |a|+1, cuts[0] == 0, cuts[|a|] == |b|,
/// and cuts is non-decreasing.
std::vector<std::int64_t> alignment_cuts(const std::vector<EditOp>& script,
                                         std::int64_t a_len, std::int64_t b_len);

/// Images of the given blocks of a under one optimal alignment: image of
/// block [l, r) is [cuts[l], cuts[r]).  Blocks must be disjoint and sorted.
std::vector<Interval> block_images(SymView a, SymView b,
                                   const std::vector<Interval>& blocks);

}  // namespace mpcsd::seq
