// Exact Ulam distance (edit distance over repeat-free strings) and the
// local Ulam distance (lulam) used by Algorithm 1 of the paper.
//
// Structure theorem (classic; pinned against Wagner–Fischer by tests):
// because every symbol occurs at most once per string, the common characters
// of a and b form a set of at most min(|a|,|b|) match points (p, q) with
// a[p] == b[q], and
//
//     ulam(a, b) = min over increasing chains of match points of
//         start-gap + sum over consecutive (j -> i) of
//             max(p_i - p_j - 1,  q_i - q_j - 1)     + end-gap,
//
// where the start/end gaps pay max(prefix, suffix) on both strings (global
// mode) or only the block-side gap (local mode, where the substring
// boundaries gamma/kappa are free).  Both a dense O(m²) reference and a
// sparse O(m log² m) divide-and-conquer engine are provided; they agree
// exactly.
//
// Local Ulam (`local_ulam`) returns, in addition to the minimal distance
// over all substrings of t, one substring t[gamma, kappa) achieving it —
// the quantity Lemma 1 of the paper reasons about.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "seq/types.hpp"

namespace mpcsd::seq {

/// A common character: a[p] == b[q] (0-based).
struct MatchPoint {
  std::int64_t p = 0;
  std::int64_t q = 0;

  friend bool operator==(const MatchPoint&, const MatchPoint&) = default;
};

/// All match points between repeat-free a and b, sorted by p (equivalently:
/// at most one per symbol).  O(|a| + |b|) expected.
std::vector<MatchPoint> match_points(SymView a, SymView b);

/// Exact Ulam distance via the sparse engine.  Preconditions: both views
/// repeat-free (checked).  O(m log² m) after match-point extraction.
std::int64_t ulam_distance(SymView a, SymView b, std::uint64_t* work = nullptr);

/// Dense O(m²) reference implementation (test oracle, small inputs).
std::int64_t ulam_distance_dense(SymView a, SymView b,
                                 std::uint64_t* work = nullptr);

/// Result of the local Ulam computation: the minimum Ulam distance between
/// `block` and any substring of `t`, plus one optimal window.
struct LocalUlamResult {
  Interval window;        ///< [gamma, kappa) in t; empty when no match helps
  std::int64_t distance = 0;
};

/// lulam(block, t) — sparse engine.  Preconditions: repeat-free (checked).
LocalUlamResult local_ulam(SymView block, SymView t, std::uint64_t* work = nullptr);

/// Dense reference for lulam.
LocalUlamResult local_ulam_dense(SymView block, SymView t,
                                 std::uint64_t* work = nullptr);

/// Brute-force lulam via trying every substring (tiny inputs; test oracle).
LocalUlamResult local_ulam_bruteforce(SymView block, SymView t);

// ---------------------------------------------------------------------------
// Match-point entry points.
//
// A simulated machine holds a block of s plus the position of each block
// character in s̄ (the paper's Õ(n^{1-x}) feed) — never s̄ itself.  Because
// the chain DP only consumes match points and the two lengths, the whole
// Ulam machinery runs on that feed directly.
// ---------------------------------------------------------------------------

/// Ulam distance from match points.  `pts` must be sorted by p with strictly
/// increasing p and pairwise distinct q; na/nb are the string lengths.
std::int64_t ulam_from_match_points(const std::vector<MatchPoint>& pts,
                                    std::int64_t na, std::int64_t nb,
                                    std::uint64_t* work = nullptr);

/// Bounded Ulam distance: returns the exact distance when it is <= cap and
/// std::nullopt otherwise.  Internally restricts the chain DP to the
/// diagonal band |p - q| <= cap (any alignment of cost <= cap stays inside
/// it), so the cost scales with the band population, not with |pts|.
std::optional<std::int64_t> bounded_ulam_from_match_points(
    const std::vector<MatchPoint>& pts, std::int64_t na, std::int64_t nb,
    std::int64_t cap, std::uint64_t* work = nullptr);

/// lulam from match points against an implicit string t of length nb.
LocalUlamResult local_ulam_from_match_points(const std::vector<MatchPoint>& pts,
                                             std::int64_t na, std::int64_t nb,
                                             std::uint64_t* work = nullptr);

/// A full optimal Ulam transformation: the chain of kept (matched)
/// characters.  Everything outside the chain is substituted/inserted/
/// deleted; the cost decomposes as
///   start-gap + sum of max-gaps between consecutive chain points + end-gap
/// and equals ulam(a, b).
struct UlamAlignment {
  std::vector<MatchPoint> chain;  ///< strictly increasing in p and q
  std::int64_t distance = 0;
};

/// Optimal chain recovery (sparse engine + predecessor tracking).
UlamAlignment ulam_alignment(SymView a, SymView b, std::uint64_t* work = nullptr);

}  // namespace mpcsd::seq
