#include "seq/lis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/contracts.hpp"

namespace mpcsd::seq {

std::int64_t lis_length(SymView values) {
  // Patience sorting: tails[k] = smallest tail of an increasing subsequence
  // of length k+1.
  std::vector<Symbol> tails;
  tails.reserve(values.size());
  for (const Symbol v : values) {
    auto it = std::lower_bound(tails.begin(), tails.end(), v);
    if (it == tails.end()) {
      tails.push_back(v);
    } else {
      *it = v;
    }
  }
  return static_cast<std::int64_t>(tails.size());
}

std::int64_t lcs_length(SymView a, SymView b) {
  const auto n = a.size();
  const auto m = b.size();
  if (n == 0 || m == 0) return 0;
  std::vector<std::int64_t> prev(m + 1, 0);
  std::vector<std::int64_t> cur(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::int64_t lcs_length_repeat_free(SymView a, SymView b) {
  MPCSD_EXPECTS(is_repeat_free(a));
  MPCSD_EXPECTS(is_repeat_free(b));
  // Map each symbol of b to its (unique) position, walk a, and take the LIS
  // of the positions: increasing position chains == common subsequences.
  std::unordered_map<Symbol, Symbol> pos_in_b;
  pos_in_b.reserve(b.size() * 2);
  for (std::size_t j = 0; j < b.size(); ++j) {
    pos_in_b.emplace(b[j], static_cast<Symbol>(j));
  }
  std::vector<Symbol> positions;
  positions.reserve(a.size());
  for (const Symbol s : a) {
    if (auto it = pos_in_b.find(s); it != pos_in_b.end()) {
      positions.push_back(it->second);
    }
  }
  return lis_length(positions);
}

std::int64_t indel_distance_repeat_free(SymView a, SymView b) {
  return static_cast<std::int64_t>(a.size() + b.size()) -
         2 * lcs_length_repeat_free(a, b);
}

bool is_repeat_free(SymView s) {
  std::unordered_set<Symbol> seen;
  seen.reserve(s.size() * 2);
  for (const Symbol v : s) {
    if (!seen.insert(v).second) return false;
  }
  return true;
}

}  // namespace mpcsd::seq
