#include "seq/combine.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"
#include "common/fenwick.hpp"

namespace mpcsd::seq {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

std::int64_t gap(GapCost g, std::int64_t ds, std::int64_t dt) {
  return g == GapCost::kMax ? std::max(ds, dt) : ds + dt;
}

void sort_tuples(std::vector<Tuple>& tuples) {
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    if (a.block_begin != b.block_begin) return a.block_begin < b.block_begin;
    if (a.window_begin != b.window_begin) return a.window_begin < b.window_begin;
    if (a.window_end != b.window_end) return a.window_end < b.window_end;
    return a.distance < b.distance;
  });
}

void validate(const std::vector<Tuple>& tuples, std::int64_t n, std::int64_t n_bar) {
  for (const Tuple& t : tuples) {
    MPCSD_EXPECTS(0 <= t.block_begin && t.block_begin < t.block_end && t.block_end <= n);
    MPCSD_EXPECTS(0 <= t.window_begin && t.window_begin <= t.window_end &&
                  t.window_end <= n_bar);
    MPCSD_EXPECTS(t.distance >= 0);
  }
}

std::int64_t finish(const std::vector<Tuple>& tuples,
                    const std::vector<std::int64_t>& dp, GapCost g,
                    std::int64_t n, std::int64_t n_bar) {
  std::int64_t best = gap(g, n, n_bar);  // use no tuple at all
  for (std::size_t a = 0; a < tuples.size(); ++a) {
    if (dp[a] >= kInf) continue;
    best = std::min(best, dp[a] + gap(g, n - tuples[a].block_end,
                                      n_bar - tuples[a].window_end));
  }
  return best;
}

/// Fast kSum solver: one Fenwick sweep in (insert by r, query by l) order.
/// Transition cost (l-r') + (gamma-kappa') decomposes as
/// (l+gamma) + (D[b] - r' - kappa'), needing r' <= l and kappa' <= gamma.
void solve_sum_fast(const std::vector<Tuple>& tuples, std::vector<std::int64_t>& dp,
                    std::uint64_t* work) {
  const std::size_t m = tuples.size();
  std::vector<std::int64_t> kappas;
  kappas.reserve(m);
  for (const Tuple& t : tuples) kappas.push_back(t.window_end);
  std::sort(kappas.begin(), kappas.end());
  kappas.erase(std::unique(kappas.begin(), kappas.end()), kappas.end());

  std::vector<std::size_t> by_end(m);
  for (std::size_t i = 0; i < m; ++i) by_end[i] = i;
  std::sort(by_end.begin(), by_end.end(), [&](std::size_t a, std::size_t b) {
    return tuples[a].block_end < tuples[b].block_end;
  });

  FenwickMin<std::int64_t> fen(kappas.size());
  std::size_t ins = 0;
  for (std::size_t a = 0; a < m; ++a) {  // tuples sorted by block_begin
    while (ins < m && tuples[by_end[ins]].block_end <= tuples[a].block_begin) {
      const std::size_t b = by_end[ins++];
      // dp[b] is final: block_begin[b] < block_end[b] <= block_begin[a]
      const auto rank = static_cast<std::size_t>(
          std::lower_bound(kappas.begin(), kappas.end(), tuples[b].window_end) -
          kappas.begin());
      fen.update(rank, dp[b] - tuples[b].block_end - tuples[b].window_end);
    }
    const auto pos = std::upper_bound(kappas.begin(), kappas.end(),
                                      tuples[a].window_begin) -
                     kappas.begin();
    if (pos > 0) {
      const std::int64_t best = fen.prefix_min(static_cast<std::size_t>(pos - 1));
      if (best < kInf) {
        dp[a] = std::min(dp[a], tuples[a].block_begin + tuples[a].window_begin +
                                    best + tuples[a].distance);
      }
    }
  }
  if (work != nullptr) *work += m * 6;
}

/// Fast kMax solver: divide-and-conquer on the block order.  The max gap
/// splits on the diagonal diag_b = r'-kappa' vs diag_a = l-gamma:
///   case A (diag_b <= diag_a): cost l - r', needs kappa' <= gamma
///     (r' <= l is implied);
///   case B (diag_b >  diag_a): cost gamma - kappa', needs r' <= l
///     (kappa' <= gamma is implied).
class MaxCombineSolver {
 public:
  MaxCombineSolver(const std::vector<Tuple>& tuples, std::vector<std::int64_t>& dp,
                   std::uint64_t* work)
      : tuples_(tuples), dp_(dp), work_(work) {
    if (!tuples_.empty()) solve(0, tuples_.size());
  }

 private:
  void solve(std::size_t lo, std::size_t hi) {
    if (hi - lo <= 1) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    solve(lo, mid);
    cross(lo, mid, hi);
    solve(mid, hi);
  }

  [[nodiscard]] std::int64_t point_diag(std::size_t b) const {
    return tuples_[b].block_end - tuples_[b].window_end;
  }
  [[nodiscard]] std::int64_t query_diag(std::size_t a) const {
    return tuples_[a].block_begin - tuples_[a].window_begin;
  }

  void cross(std::size_t lo, std::size_t mid, std::size_t hi) {
    const std::size_t len = hi - lo;
    if (work_ != nullptr) *work_ += len * 10;

    // Shared diag compression for the segment (point and query diags).
    std::vector<std::int64_t> ds;
    ds.reserve(len);
    for (std::size_t b = lo; b < mid; ++b) ds.push_back(point_diag(b));
    for (std::size_t a = mid; a < hi; ++a) ds.push_back(query_diag(a));
    std::sort(ds.begin(), ds.end());
    ds.erase(std::unique(ds.begin(), ds.end()), ds.end());
    const std::size_t ranks = ds.size();
    auto rank_of = [&](std::int64_t v) {
      return static_cast<std::size_t>(
          std::lower_bound(ds.begin(), ds.end(), v) - ds.begin());
    };

    std::vector<std::size_t> left(mid - lo);
    std::vector<std::size_t> right(hi - mid);
    for (std::size_t i = 0; i < left.size(); ++i) left[i] = lo + i;
    for (std::size_t i = 0; i < right.size(); ++i) right[i] = mid + i;

    // Case A: insert by kappa', query by gamma; prefix-min over diag.
    std::sort(left.begin(), left.end(), [&](std::size_t x, std::size_t y) {
      return tuples_[x].window_end < tuples_[y].window_end;
    });
    std::sort(right.begin(), right.end(), [&](std::size_t x, std::size_t y) {
      return tuples_[x].window_begin < tuples_[y].window_begin;
    });
    FenwickMin<std::int64_t> fen_a(ranks);
    std::size_t li = 0;
    for (const std::size_t a : right) {
      while (li < left.size() &&
             tuples_[left[li]].window_end <= tuples_[a].window_begin) {
        const std::size_t b = left[li++];
        if (dp_[b] < kInf) fen_a.update(rank_of(point_diag(b)), dp_[b] - tuples_[b].block_end);
      }
      const auto pos = std::upper_bound(ds.begin(), ds.end(), query_diag(a)) - ds.begin();
      if (pos > 0) {
        const std::int64_t best = fen_a.prefix_min(static_cast<std::size_t>(pos - 1));
        if (best < kInf) {
          dp_[a] = std::min(dp_[a], tuples_[a].block_begin + best + tuples_[a].distance);
        }
      }
    }

    // Case B: insert by r', query by l; suffix-min over diag (reversed).
    std::sort(left.begin(), left.end(), [&](std::size_t x, std::size_t y) {
      return tuples_[x].block_end < tuples_[y].block_end;
    });
    std::sort(right.begin(), right.end(), [&](std::size_t x, std::size_t y) {
      return tuples_[x].block_begin < tuples_[y].block_begin;
    });
    FenwickMin<std::int64_t> fen_b(ranks);
    li = 0;
    for (const std::size_t a : right) {
      while (li < left.size() &&
             tuples_[left[li]].block_end <= tuples_[a].block_begin) {
        const std::size_t b = left[li++];
        if (dp_[b] < kInf) {
          fen_b.update(ranks - 1 - rank_of(point_diag(b)), dp_[b] - tuples_[b].window_end);
        }
      }
      // diag_b > diag_a  <=>  reversed rank < ranks - pos, pos = upper_bound
      const auto pos = static_cast<std::size_t>(
          std::upper_bound(ds.begin(), ds.end(), query_diag(a)) - ds.begin());
      if (pos < ranks) {
        const std::int64_t best = fen_b.prefix_min(ranks - 1 - pos);
        if (best < kInf) {
          dp_[a] = std::min(dp_[a], tuples_[a].window_begin + best + tuples_[a].distance);
        }
      }
    }
  }

  const std::vector<Tuple>& tuples_;
  std::vector<std::int64_t>& dp_;
  std::uint64_t* work_;
};

}  // namespace

std::int64_t combine_tuples_naive(std::vector<Tuple> tuples, std::int64_t n,
                                  std::int64_t n_bar, const CombineOptions& options,
                                  std::uint64_t* work) {
  validate(tuples, n, n_bar);
  sort_tuples(tuples);
  const std::size_t m = tuples.size();
  std::vector<std::int64_t> dp(m, kInf);
  for (std::size_t a = 0; a < m; ++a) {
    const Tuple& ta = tuples[a];
    dp[a] = gap(options.gap, ta.block_begin, ta.window_begin) + ta.distance;
    for (std::size_t b = 0; b < a; ++b) {
      const Tuple& tb = tuples[b];
      if (tb.block_end > ta.block_begin) continue;
      std::int64_t cost;
      if (tb.window_end <= ta.window_begin) {
        cost = gap(options.gap, ta.block_begin - tb.block_end,
                   ta.window_begin - tb.window_end);
      } else if (options.allow_overlap && options.gap == GapCost::kSum &&
                 tb.window_begin <= ta.window_begin) {
        // Overlapping windows: keep both, pay for deleting the common part
        // from the earlier tuple's output (Section 5.2.3).
        cost = (ta.block_begin - tb.block_end) + (tb.window_end - ta.window_begin);
      } else {
        continue;
      }
      dp[a] = std::min(dp[a], dp[b] + cost + ta.distance);
    }
  }
  if (work != nullptr) *work += m * m + m;
  return finish(tuples, dp, options.gap, n, n_bar);
}

void write_tuples(ByteWriter& writer, std::span<const Tuple> tuples) {
  writer.reserve(writer.size() + sizeof(std::uint64_t) + tuples.size() * sizeof(Tuple));
  writer.put<std::uint64_t>(tuples.size());
  for (const Tuple& t : tuples) writer.put(t);
}

std::vector<Tuple> read_all_tuples(const Bytes& payload) {
  std::vector<Tuple> out;
  ByteReader reader(payload);
  while (!reader.exhausted()) {
    const auto count = reader.get<std::uint64_t>();
    out.reserve(out.size() + count);
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(reader.get<Tuple>());
  }
  return out;
}

std::vector<Tuple> read_all_tuples(const ByteChain& payload) {
  std::vector<Tuple> out;
  // Batches never straddle sender payloads, so nearly every read stays on
  // the reader's single-fragment fast path.
  out.reserve(payload.total_bytes() / sizeof(Tuple) + 1);
  ChainReader reader(payload);
  while (!reader.exhausted()) {
    const auto count = reader.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(reader.get<Tuple>());
  }
  return out;
}

std::int64_t combine_tuples(std::vector<Tuple> tuples, std::int64_t n,
                            std::int64_t n_bar, const CombineOptions& options,
                            std::uint64_t* work) {
  if (!options.use_fast || options.allow_overlap) {
    return combine_tuples_naive(std::move(tuples), n, n_bar, options, work);
  }
  validate(tuples, n, n_bar);
  sort_tuples(tuples);
  const std::size_t m = tuples.size();
  std::vector<std::int64_t> dp(m, kInf);
  for (std::size_t a = 0; a < m; ++a) {
    dp[a] = gap(options.gap, tuples[a].block_begin, tuples[a].window_begin) +
            tuples[a].distance;
  }
  if (options.gap == GapCost::kSum) {
    solve_sum_fast(tuples, dp, work);
  } else {
    const MaxCombineSolver solver(tuples, dp, work);
    (void)solver;
  }
  return finish(tuples, dp, options.gap, n, n_bar);
}

}  // namespace mpcsd::seq
