// AVX2 multi-word Myers kernel: 4 pattern words per 256-bit lane group.
//
// See myers_kernel.hpp for the recurrence and the lane-parallel carry
// scheme.  This TU is compiled with -mavx2 (per-TU, set in src/CMakeLists);
// the dispatcher only selects the kernel after a runtime CPU probe, so the
// binary stays portable.  When the toolchain cannot target AVX2 at all,
// the TU degrades to a nullptr registration and dispatch falls through to
// the scalar kernel.
#include "seq/myers_kernel.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mpcsd::seq::detail {

namespace {

/// Words per 256-bit chunk and chunks per carry stripe: one 64-bit scalar
/// mask holds generate/propagate/carry bits for 64 words = 16 chunks.
constexpr std::size_t kLaneWords = 4;
constexpr std::size_t kStripeChunks = 16;

/// kBit0[mask] has 1 in the low bit of lane l iff bit l of mask is set —
/// re-injects resolved carry/shift bits into lanes without crossing the
/// vector/scalar boundary per lane.
alignas(32) constexpr std::uint64_t kBit0[16][kLaneWords] = {
    {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 0, 0},
    {0, 0, 1, 0}, {1, 0, 1, 0}, {0, 1, 1, 0}, {1, 1, 1, 0},
    {0, 0, 0, 1}, {1, 0, 0, 1}, {0, 1, 0, 1}, {1, 1, 0, 1},
    {0, 0, 1, 1}, {1, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1},
};

inline __m256i bit0_lanes(std::uint64_t mask) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kBit0[mask & 0xF]));
}

/// Cross-word 1-bit left shift of `v` as a big integer, entirely in vector
/// registers: rotate lanes up (0x93 moves lane k to k+1 and lane 3 to 0),
/// take each lane's old top bit, and splice the carry word in at lane 0.
/// On return `*carry` holds the rotated top bits, so its lane 0 is this
/// chunk's carry-out — ready to be spliced into the next chunk.
inline __m256i shift1_lanes(__m256i v, __m256i* carry) {
  const __m256i tops = _mm256_srli_epi64(_mm256_permute4x64_epi64(v, 0x93), 63);
  const __m256i inj = _mm256_blend_epi32(tops, *carry, 0x03);
  *carry = tops;
  return _mm256_or_si256(_mm256_slli_epi64(v, 1), inj);
}

inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void storeu(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Sign bit (bit 63) of each 64-bit lane as a 4-bit scalar mask.
inline unsigned top_bits(__m256i v) {
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(v)));
}

std::optional<std::int64_t> run(const MyersMasks& masks, SymView b,
                                std::int64_t bound, std::uint64_t* work) {
  const std::int64_t m = masks.m;
  const auto n = static_cast<std::int64_t>(b.size());
  const std::size_t blocks = masks.blocks;
  const std::size_t chunks = (blocks + kLaneWords - 1) / kLaneWords;
  const std::size_t state_words = chunks * kLaneWords;  // <= masks.stride

  // Pv all-ones / Mv zero, including padding lanes: padding is inert (all
  // cross-word flows move upward only; see myers_kernel.hpp).
  std::vector<std::uint64_t> state(2 * state_words, 0);
  std::uint64_t* pv = state.data();
  std::uint64_t* mv = state.data() + state_words;
  std::fill(pv, pv + state_words, ~0ULL);

  const std::size_t last_chunk = chunks - 1;
  alignas(32) std::uint64_t last_probe[kLaneWords] = {0, 0, 0, 0};
  last_probe[(blocks - 1) % kLaneWords] = 1ULL << ((m - 1) & 63);
  const __m256i vlast =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(last_probe));
  const __m256i vones = _mm256_set1_epi64x(-1);
  const __m256i vboundary = _mm256_set_epi64x(0, 0, 0, 1);

  std::int64_t score = m;
  std::uint64_t words = 0;

  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t* eq_row = masks.row(b[static_cast<std::size_t>(j)]);
    std::uint64_t add_carry = 0;  // into the next stripe's lowest word
    // Shift carries live in lane 0 of these vectors (see shift1_lanes).
    __m256i ph_carry = vboundary;  // top boundary row: d[0][j] = j, so +1
    __m256i mh_carry = _mm256_setzero_si256();
    int hout = 0;

    for (std::size_t chunk0 = 0; chunk0 < chunks; chunk0 += kStripeChunks) {
      const std::size_t chunk_end = std::min(chunks, chunk0 + kStripeChunks);
      // Pass 1: lane adds; gather per-word generate/propagate bits.  Only
      // the bits leave this pass — sums are recomputed in pass 2 from the
      // same inputs, which is cheaper than a store/reload round trip.
      std::uint64_t g = 0;
      std::uint64_t p = 0;
#pragma GCC unroll 4
      for (std::size_t c = chunk0; c < chunk_end; ++c) {
        const std::size_t w = c * kLaneWords;
        const std::size_t sh = (c - chunk0) * kLaneWords;
        const __m256i eq = loadu(eq_row + w);
        const __m256i vpv = loadu(pv + w);
        const __m256i t = _mm256_and_si256(eq, vpv);
        const __m256i s = _mm256_add_epi64(t, vpv);
        // Carry-out of t + pv: (t & pv) | ((t | pv) & ~s), which collapses
        // to t | (pv & ~s) because t ⊆ pv — the sign bit is the carry.
        const __m256i ovf =
            _mm256_or_si256(t, _mm256_andnot_si256(s, vpv));
        const __m256i prop = _mm256_cmpeq_epi64(s, vones);
        g |= static_cast<std::uint64_t>(top_bits(ovf)) << sh;
        p |= static_cast<std::uint64_t>(top_bits(prop)) << sh;
      }
      // Resolve the whole stripe's carry chain in O(1): carry-in bits
      // c = ((g << 1 | cin) + p) ^ p (ripple through propagate runs).
      const std::uint64_t carries = (((g << 1) | add_carry) + p) ^ p;
      const std::size_t top = (chunk_end - chunk0) * kLaneWords - 1;
      add_carry = ((g >> top) & 1) |
                  (((p >> top) & 1) & ((carries >> top) & 1));

      // Pass 2: recompute the sums, inject carries, finish the column.
#pragma GCC unroll 4
      for (std::size_t c = chunk0; c < chunk_end; ++c) {
        const std::size_t w = c * kLaneWords;
        const std::size_t sh = (c - chunk0) * kLaneWords;
        const __m256i eq = loadu(eq_row + w);
        const __m256i vpv = loadu(pv + w);
        const __m256i vmv = loadu(mv + w);
        const __m256i xv = _mm256_or_si256(eq, vmv);
        const __m256i t = _mm256_and_si256(eq, vpv);
        const __m256i s = _mm256_add_epi64(_mm256_add_epi64(t, vpv),
                                           bit0_lanes(carries >> sh));
        const __m256i xh =
            _mm256_or_si256(_mm256_xor_si256(s, vpv), eq);
        const __m256i ph = _mm256_or_si256(
            vmv, _mm256_xor_si256(_mm256_or_si256(xh, vpv), vones));
        const __m256i mh = _mm256_and_si256(vpv, xh);
        if (c == last_chunk) {
          if (!_mm256_testz_si256(ph, vlast)) {
            hout = 1;
          } else if (!_mm256_testz_si256(mh, vlast)) {
            hout = -1;
          }
        }
        const __m256i ph2 = shift1_lanes(ph, &ph_carry);
        const __m256i mh2 = shift1_lanes(mh, &mh_carry);
        storeu(pv + w,
               _mm256_or_si256(mh2, _mm256_xor_si256(
                                        _mm256_or_si256(xv, ph2), vones)));
        storeu(mv + w, _mm256_and_si256(ph2, xv));
      }
    }

    score += hout;
    words += blocks;
    // Same abort rule (and thus word count) as every other kernel.
    if (bound >= 0 && score - (n - j - 1) > bound) {
      if (work != nullptr) *work += words;
      return std::nullopt;
    }
  }
  if (work != nullptr) *work += words;
  return score;
}

}  // namespace

MyersRunFn myers_run_avx2() { return &run; }

}  // namespace mpcsd::seq::detail

#else  // toolchain cannot target AVX2: register no kernel

namespace mpcsd::seq::detail {
MyersRunFn myers_run_avx2() { return nullptr; }
}  // namespace mpcsd::seq::detail

#endif
