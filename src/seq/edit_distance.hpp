// Exact edit-distance algorithms (the classic sequential substrate).
//
//  * `edit_distance`          — two-row DP, O(|a||b|) time, O(min) space.
//  * `edit_distance_banded`   — Ukkonen band of half-width k, O((|a|+|b|)k);
//                               returns nullopt when the distance exceeds k.
//  * `edit_distance_bounded`  — doubling driver over the band: exact distance
//                               in O((|a|+|b|)·d) where d is the answer.
// All three agree exactly (pinned by property tests).  The optional `work`
// meter counts DP cells touched; the MPC simulator charges machine work with
// it so that the Table 1 "total running time" columns are measurable.
#pragma once

#include <cstdint>
#include <optional>

#include "seq/types.hpp"

namespace mpcsd::seq {

/// Classic Wagner–Fischer DP (unit costs, substitutions allowed).
std::int64_t edit_distance(SymView a, SymView b, std::uint64_t* work = nullptr);

/// Exact distance if it is <= k, std::nullopt otherwise.  O((|a|+|b|)·k).
std::optional<std::int64_t> edit_distance_banded(SymView a, SymView b,
                                                 std::int64_t k,
                                                 std::uint64_t* work = nullptr);

/// Exact distance with band doubling; `limit` (if set) caps the search and
/// yields nullopt for distances beyond it.
std::optional<std::int64_t> edit_distance_bounded(SymView a, SymView b,
                                                  std::int64_t limit,
                                                  std::uint64_t* work = nullptr);

/// Exact distance via band doubling with no cap: O((|a|+|b|)·d).
std::int64_t edit_distance_doubling(SymView a, SymView b,
                                    std::uint64_t* work = nullptr);

}  // namespace mpcsd::seq
