// The single-machine combine DP (Algorithms 2 and 4 of the paper).
//
// Round 1 of both MPC algorithms produces tuples <[l, r), [gamma, kappa), d>
// — a block of s, a candidate substring of s̄, and their (Ulam or edit)
// distance.  The combine round selects a monotone subset of tuples covering
// a transformation of s into s̄:
//
//   D[a] = min( gap(origin -> a) + d_a,
//               min over b with r_b <= l_a, kappa_b <= gamma_a of
//                   D[b] + gap(b -> a) + d_a )
//   answer = min(gap(whole), min_a D[a] + gap(a -> end)),
//
// where gap(b -> a) charges the uncovered stretch between consecutive
// tuples.  The paper uses two gap models:
//   * GapCost::kMax — max(l_a - r_b, gamma_a - kappa_b): substitute the
//     paired part, indel the rest (Algorithm 2, Ulam).
//   * GapCost::kSum — (l_a - r_b) + (gamma_a - kappa_b): delete + insert
//     (Algorithm 4, edit distance).
//
// Both a naive O(T²) reference and fast solvers are provided:
//   * kSum: event-ordered Fenwick sweep, O(T log T);
//   * kMax: the same diagonal split as the sparse Ulam DP (the max cost
//     splits on r_b - kappa_b vs l_a - gamma_a) via divide-and-conquer,
//     O(T log² T) — the "suitable data structure" the paper alludes to in
//     Section 5.2.3.
//
// `allow_overlap` (naive, kSum only) implements the Section 5.2.3 remark:
// two tuples whose windows intersect may both be chosen if gamma_b <=
// gamma_a, paying the cost of removing the common part.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {

/// A (block, candidate substring, distance) tuple.  Intervals half-open.
struct Tuple {
  std::int64_t block_begin = 0;
  std::int64_t block_end = 0;
  std::int64_t window_begin = 0;
  std::int64_t window_end = 0;
  std::int64_t distance = 0;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

enum class GapCost : std::uint8_t {
  kMax,  ///< substitute-then-indel gap charging (Ulam, Algorithm 2)
  kSum,  ///< delete-plus-insert gap charging (edit distance, Algorithm 4)
};

struct CombineOptions {
  GapCost gap = GapCost::kMax;
  bool use_fast = true;       ///< Fenwick/CDQ solver instead of O(T²)
  bool allow_overlap = false; ///< Section 5.2.3 overlap remark (naive+kSum only)
};

/// Combines tuples into a full transformation cost of s (length n) into s̄
/// (length n_bar).  The result is always the cost of a realizable
/// transformation, hence an upper bound on the true distance.
std::int64_t combine_tuples(std::vector<Tuple> tuples, std::int64_t n,
                            std::int64_t n_bar, const CombineOptions& options = {},
                            std::uint64_t* work = nullptr);

/// O(T²) reference (used by tests to pin the fast solvers).
std::int64_t combine_tuples_naive(std::vector<Tuple> tuples, std::int64_t n,
                                  std::int64_t n_bar,
                                  const CombineOptions& options = {},
                                  std::uint64_t* work = nullptr);

/// Serialises a length-prefixed batch of tuples onto a message.
void write_tuples(ByteWriter& writer, std::span<const Tuple> tuples);

/// Reads every tuple batch from a concatenated mailbox payload.
std::vector<Tuple> read_all_tuples(const Bytes& payload);

/// Zero-copy variant: reads every tuple batch straight out of a mailbox
/// view (one fragment per sender payload) without concatenating.
std::vector<Tuple> read_all_tuples(const ByteChain& payload);

}  // namespace mpcsd::seq
