// Myers' bit-parallel edit distance (Myers 1999, blocked form after
// Hyyrö 2003): exact Levenshtein distance in O(|a|·|b|/64) word operations.
//
// Used as an ablation unit in the benches — it is the fastest exact engine
// for moderate distances and large alphabets, and a strong baseline for
// the work-metering of the DP engines.  Symbols are arbitrary 32-bit
// values (the pattern's equality bitmasks live in a hash map).
#pragma once

#include <cstdint>

#include "seq/types.hpp"

namespace mpcsd::seq {

/// Exact edit distance via the blocked bit-parallel recurrence.
/// O(ceil(|a|/64) * |b|) word ops, O(ceil(|a|/64) * distinct(a)) memory.
std::int64_t edit_distance_myers(SymView a, SymView b, std::uint64_t* work = nullptr);

}  // namespace mpcsd::seq
