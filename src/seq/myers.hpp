// Myers' bit-parallel edit distance (Myers 1999, blocked form after
// Hyyrö 2003): exact Levenshtein distance in O(|a|·|b|/64) word operations.
//
// This is the fast exact engine behind `edit_distance_fast` (see
// edit_distance_fast.hpp for the dispatch rules): ~w-fold fewer operations
// than the scalar row DP for moderate-to-large distances, independent of
// the answer.  Symbols are arbitrary 32-bit values; the pattern's alphabet
// is remapped to dense ids so the equality bitmasks live in one flat,
// cache-friendly table regardless of alphabet size.  The table is cached
// per pattern (thread-local LRU), so guess-ladder rungs and window oracles
// that re-probe one pattern pay the O(|a|) build once.
//
// Multi-word patterns additionally dispatch to SIMD kernels (AVX2/AVX-512
// lane-parallel stripes, see myers_kernel.hpp) picked at runtime from the
// CPU's capabilities (common/cpu.hpp) — same values, same metering, wider
// columns per cycle.  One binary runs everywhere; `MPCSD_FORCE_ISA` and
// `force_isa()` clamp the choice for tests and benches.
//
// The `work` meter counts 64-bit words processed (columns × blocks), the
// bit-parallel analogue of DP cells; `edit_distance_fast` converts this to
// modelled DP cells so Table 1 metering stays cell-based.  Every kernel
// charges identically, so golden traces and `structural_hash()` are
// ISA-independent.
#pragma once

#include <cstdint>
#include <optional>

#include "common/cpu.hpp"
#include "seq/types.hpp"

namespace mpcsd::seq {

/// Exact edit distance via the blocked bit-parallel recurrence.
/// O(ceil(|a|/64) * |b|) word ops, O(ceil(|a|/64) * distinct(a)) memory.
std::int64_t edit_distance_myers(SymView a, SymView b, std::uint64_t* work = nullptr);

/// k-bounded variant: the exact distance when it is <= k, std::nullopt
/// otherwise.  Runs the same blocked recurrence but aborts as soon as the
/// running score certifies distance > k (score at column j lower-bounds the
/// final distance by score - (|b| - j)).  Cost never exceeds the unbounded
/// run and the early abort makes censored pairs cheap; unlike the scalar
/// band, cost does not grow with k, so no doubling driver is needed.
std::optional<std::int64_t> edit_distance_myers_bounded(SymView a, SymView b,
                                                        std::int64_t k,
                                                        std::uint64_t* work = nullptr);

/// Banded variant: the exact distance when it is <= k, std::nullopt
/// otherwise, touching only the word blocks that cover the Ukkonen band
/// |i - j| <= k — O((|b| + 1) * (2k/64 + 2)) word ops instead of the full
/// ceil(|a|/64) per column.  This is what makes the output-sensitive
/// doubling driver (edit_distance_os.hpp) O(n + k*n/w) rather than
/// O(n*m/w) per attempt.
///
/// The kernel slides a block window [first, last] down the pattern as the
/// text column advances.  Out-of-window state is replaced by cellwise
/// *upper bounds*: the window's top boundary feeds a +1 horizontal delta
/// (the largest the DP admits), and a block entering at the bottom is
/// initialised to all-+1 vertical deltas (D[i+1][j] <= D[i][j] + 1).  The
/// recurrence is the min-DP, monotone in its inputs, so every computed
/// value is >= the true one; and any cell with true value <= k has an
/// optimal path confined to the band (|i - j| <= value), which the window
/// always covers, so such cells compute exactly.  Hence final score <= k
/// iff the true distance is <= k, and then they are equal — the same
/// argument as Ukkonen's band, run on blocks.
///
/// Shares the thread-local pattern mask cache with the full-width kernels;
/// the window walk itself is scalar (the SIMD stripes want all blocks of a
/// column, exactly what the band avoids touching).  `work` accumulates
/// words processed: window width per column, a pure function of
/// (|a|, |b|, k) — deterministic across hosts and ISA levels.
std::optional<std::int64_t> edit_distance_myers_banded(SymView a, SymView b,
                                                       std::int64_t k,
                                                       std::uint64_t* work = nullptr);

/// The ISA level the blocked engine dispatches to for a pattern of
/// `pattern_len` symbols under the current `active_isa()`.  Introspection
/// for tests and benches; a pure function of (active level, pattern size).
[[nodiscard]] Isa myers_dispatch_isa(std::size_t pattern_len);

}  // namespace mpcsd::seq
