#include "seq/approx_edit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"

namespace mpcsd::seq {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

struct Window {
  std::int64_t start = 0;
  std::int64_t len = 0;
};

/// Per-guess window-cover state: a-windows, deduped candidate b-windows, and
/// the per-a-window candidate lists with running distance estimates.
struct Cover {
  std::vector<Window> awin;
  std::vector<Window> bwin;
  std::vector<std::vector<std::int32_t>> cand;  ///< per a-window: bwin ids
  std::vector<std::vector<std::int64_t>> est;   ///< parallel to cand; kInf = unknown
};

/// Candidate lengths w +- g*(1+eps)^k: end slack below the start-grid
/// granularity g is already inside the cover budget, so the length grid
/// starts there.
std::vector<std::int64_t> candidate_lengths(std::int64_t w, std::int64_t t,
                                            std::int64_t g, double eps) {
  std::vector<std::int64_t> lens;
  lens.push_back(w);
  const std::int64_t max_delta = std::min(w - 1, t);
  double delta = static_cast<double>(std::max<std::int64_t>(g, 1));
  while (static_cast<std::int64_t>(delta) <= max_delta) {
    const auto d = static_cast<std::int64_t>(delta);
    lens.push_back(w - d);
    lens.push_back(w + d);
    delta *= (1.0 + eps);
  }
  std::sort(lens.begin(), lens.end());
  lens.erase(std::unique(lens.begin(), lens.end()), lens.end());
  while (!lens.empty() && lens.front() <= 0) lens.erase(lens.begin());
  return lens;
}

Cover build_cover(std::int64_t na, std::int64_t nb, std::int64_t w,
                  std::int64_t t, double eps) {
  Cover cover;
  for (std::int64_t s = 0; s < na; s += w) {
    cover.awin.push_back(Window{s, std::min(w, na - s)});
  }
  const auto d = static_cast<std::int64_t>(cover.awin.size());
  const std::int64_t g =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(eps * static_cast<double>(t) /
                                                          static_cast<double>(d)));
  const auto lens = candidate_lengths(w, t, g, eps);

  std::unordered_map<std::uint64_t, std::int32_t> ids;
  cover.cand.resize(cover.awin.size());
  cover.est.resize(cover.awin.size());
  for (std::size_t i = 0; i < cover.awin.size(); ++i) {
    const std::int64_t diag = cover.awin[i].start;
    std::int64_t s0 = diag - t;
    if (s0 < 0) s0 = 0;
    s0 = (s0 / g) * g;  // align to the grid
    for (std::int64_t s = s0; s <= diag + t && s < nb; s += g) {
      for (std::int64_t len : lens) {
        if (s + len > nb) len = nb - s;
        if (len <= 0) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(s) << 32U) | static_cast<std::uint64_t>(len);
        auto [it, inserted] = ids.emplace(key, static_cast<std::int32_t>(cover.bwin.size()));
        if (inserted) cover.bwin.push_back(Window{s, len});
        cover.cand[i].push_back(it->second);
      }
    }
    auto& cands = cover.cand[i];
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    cover.est[i].assign(cands.size(), kInf);
  }
  return cover;
}

/// Memoized bounded-distance oracle over the cover's nodes (a-windows then
/// b-windows).  A miss at cap c records the lower bound "distance > c" and
/// the pair is not re-attempted until the cap doubles past it, so the total
/// cost per pair telescopes to O(w * final_cap) with the early-abort band.
class PairOracle {
 public:
  PairOracle(SymView a, SymView b, const Cover& cover, std::uint64_t* work)
      : a_(a), b_(b), cover_(cover), work_(work) {}

  [[nodiscard]] SymView node_view(std::size_t v) const {
    const std::size_t d = cover_.awin.size();
    if (v < d) {
      const Window& w = cover_.awin[v];
      return subview(a_, {w.start, w.start + w.len});
    }
    const Window& w = cover_.bwin[v - d];
    return subview(b_, {w.start, w.start + w.len});
  }

  /// Exact distance when <= cap, nullopt otherwise.  May also return
  /// nullopt when only a lower bound lb with cap < 2*lb is known (the pair
  /// resolves at a later, larger cap) — callers treat nullopt as
  /// "unresolved at this threshold".
  std::optional<std::int64_t> query(std::size_t u, std::size_t v, std::int64_t cap) {
    if (u == v) return 0;
    const std::uint64_t key = (static_cast<std::uint64_t>(std::min(u, v)) << 32U) |
                              static_cast<std::uint64_t>(std::max(u, v));
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      const Entry& e = it->second;
      if (e.exact) return e.value <= cap ? std::optional<std::int64_t>(e.value) : std::nullopt;
      if (cap < 2 * std::max<std::int64_t>(e.value, 1)) return std::nullopt;
    }
    const auto d = edit_distance_banded_fast(node_view(u), node_view(v), cap, work_);
    Entry e;
    if (d.has_value()) {
      e.exact = true;
      e.value = *d;
    } else {
      e.exact = false;
      e.value = cap;  // certified lower bound: distance > cap
    }
    memo_[key] = e;
    return d;
  }

 private:
  struct Entry {
    bool exact = false;
    std::int64_t value = 0;  ///< exact distance, or a certified lower bound
  };

  SymView a_;
  SymView b_;
  const Cover& cover_;
  std::uint64_t* work_;
  std::unordered_map<std::uint64_t, Entry> memo_;
};

bool all_resolved(const Cover& cover) {
  for (const auto& row : cover.est) {
    for (const std::int64_t e : row) {
      if (e >= kInf) return false;
    }
  }
  return true;
}

/// Shortest-path combine over (a-window index, b-position): pair edges use
/// the estimates, skip edges delete a whole window, insert edges advance the
/// b-position.  Unresolved pairs are simply absent.  Returns an upper bound
/// on ed(a, b).
std::int64_t combine(const Cover& cover, std::int64_t nb, std::uint64_t* work) {
  std::vector<std::int64_t> positions;
  positions.push_back(0);
  positions.push_back(nb);
  for (const Window& bw : cover.bwin) {
    positions.push_back(bw.start);
    positions.push_back(bw.start + bw.len);
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()), positions.end());
  std::unordered_map<std::int64_t, std::size_t> pos_index;
  pos_index.reserve(positions.size() * 2);
  for (std::size_t k = 0; k < positions.size(); ++k) pos_index.emplace(positions[k], k);

  const std::size_t np = positions.size();
  std::vector<std::int64_t> dp(np);
  for (std::size_t k = 0; k < np; ++k) dp[k] = positions[k];  // insert prefix

  std::vector<std::int64_t> next(np);
  for (std::size_t i = 0; i < cover.awin.size(); ++i) {
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t k = 0; k < np; ++k) {
      const std::int64_t v = dp[k] + cover.awin[i].len;  // delete window
      if (v < next[k]) next[k] = v;
    }
    for (std::size_t k = 0; k < cover.cand[i].size(); ++k) {
      const std::int64_t e = cover.est[i][k];
      if (e >= kInf) continue;
      const Window& bw = cover.bwin[static_cast<std::size_t>(cover.cand[i][k])];
      const std::size_t ks = pos_index.at(bw.start);
      const std::size_t ke = pos_index.at(bw.start + bw.len);
      const std::int64_t v = dp[ks] + e;
      if (v < next[ke]) next[ke] = v;
    }
    for (std::size_t k = 1; k < np; ++k) {  // insert relaxation
      const std::int64_t v = next[k - 1] + (positions[k] - positions[k - 1]);
      if (v < next[k]) next[k] = v;
    }
    std::swap(dp, next);
  }
  if (work != nullptr) *work += cover.awin.size() * np;
  return dp[pos_index.at(nb)];
}

}  // namespace

ApproxEditResult approx_edit_distance(SymView a, SymView b,
                                      const ApproxEditParams& params) {
  MPCSD_EXPECTS(params.epsilon > 0.0);
  ApproxEditResult out;
  const auto na = static_cast<std::int64_t>(a.size());
  const auto nb = static_cast<std::int64_t>(b.size());
  if (na == 0 || nb == 0) {
    out.distance = std::max(na, nb);
    out.exact = true;
    return out;
  }
  if (na <= params.exact_cutoff && nb <= params.exact_cutoff) {
    if (params.guess_limit > 0) {
      // Censored callers never use distances above ~guess_limit; the band
      // with early abort keeps this path at O(n·guess_limit) instead of
      // O(n²) per pair.
      const auto lim = std::min<std::int64_t>(na + nb, 2 * params.guess_limit + 2);
      if (const auto d = edit_distance_banded_fast(a, b, lim, &out.work)) {
        out.distance = *d;
        out.exact = true;
        return out;
      }
      // The true distance exceeds lim > guess_limit: return the trivial
      // upper bound, which also exceeds it, so the caller censors the pair.
      out.distance = std::max(na, nb);
      out.exact = false;
      return out;
    }
    out.distance = edit_distance_fast(a, b, &out.work);
    out.exact = true;
    return out;
  }

  const std::int64_t w = std::max<std::int64_t>(
      16, std::min(na, ipow_ceil(na, params.window_exponent)));
  const double eps = params.epsilon;
  std::int64_t best = std::max(na, nb);  // trivial transformation
  const auto guesses = geometric_grid(std::max(na, nb), eps);

  std::size_t guess_index = 0;
  for (const std::int64_t t : guesses) {
    ++guess_index;
    if (params.guess_limit > 0 && t > params.guess_limit) break;
    if (t == 0) {
      if (na == nb && std::equal(a.begin(), a.end(), b.begin())) {
        out.distance = 0;
        out.exact = true;
        return out;
      }
      continue;
    }
    const auto accept = static_cast<std::int64_t>(
        std::ceil(3.0 * (1.0 + 2.0 * eps) * static_cast<double>(t))) + 8;

    if (t <= w) {
      // Exact band: certifies the distance exactly when <= t.
      if (const auto d = edit_distance_banded_fast(a, b, t, &out.work)) {
        out.distance = std::min(best, *d);
        out.accepted_guess = t;
        out.exact = true;
        return out;
      }
      continue;
    }

    // Window cover for this guess.
    Cover cover = build_cover(na, nb, w, t, eps);
    PairOracle oracle(a, b, cover, &out.work);
    const std::size_t num_a = cover.awin.size();
    const std::size_t num_nodes = num_a + cover.bwin.size();

    // Representative certification only pays off at scale; below the
    // threshold every pair is resolved directly.
    const bool use_reps = num_nodes >= params.rep_min_nodes;
    std::vector<std::size_t> reps;
    if (use_reps) {
      const auto budget = static_cast<std::size_t>(
          params.rep_log_budget * std::log2(static_cast<double>(num_nodes) + 2.0));
      Pcg32 rng = derive_stream(params.seed, guess_index);
      for (std::size_t picked = 0; picked < budget; ++picked) {
        reps.push_back(rng.below(static_cast<std::uint32_t>(num_nodes)));
      }
      std::sort(reps.begin(), reps.end());
      reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
    }

    std::int64_t guess_result = kInf;
    std::vector<std::int64_t> dz(num_nodes, -1);
    for (const std::int64_t tau : geometric_grid(2 * w, eps)) {
      if (tau == 0) continue;
      if (use_reps) {
        for (const std::size_t z : reps) {
          for (std::size_t v = 0; v < num_nodes; ++v) {
            dz[v] = oracle.query(z, v, 2 * tau).value_or(-1);
          }
          // Certify: a-windows within tau pair with candidates within 2tau
          // at cost d(i,z) + d(z,j) <= 3*tau.
          for (std::size_t i = 0; i < num_a; ++i) {
            if (dz[i] < 0 || dz[i] > tau) continue;
            for (std::size_t k = 0; k < cover.cand[i].size(); ++k) {
              const auto j = static_cast<std::size_t>(cover.cand[i][k]) + num_a;
              if (dz[j] < 0) continue;
              const std::int64_t bound = dz[i] + dz[j];
              if (bound < cover.est[i][k]) cover.est[i][k] = bound;
            }
          }
        }
      }
      // Direct resolution of still-unknown pairs at this threshold (the
      // oracle's doubling memo keeps re-attempts cheap).
      for (std::size_t i = 0; i < num_a; ++i) {
        for (std::size_t k = 0; k < cover.cand[i].size(); ++k) {
          if (cover.est[i][k] < kInf) continue;
          const auto j = static_cast<std::size_t>(cover.cand[i][k]) + num_a;
          if (const auto e = oracle.query(i, j, tau)) cover.est[i][k] = *e;
        }
      }

      guess_result = std::min(guess_result, combine(cover, nb, &out.work));
      if (guess_result <= accept) break;
      if (all_resolved(cover)) break;
    }

    if (guess_result < best) best = guess_result;
    if (guess_result <= accept) {
      out.distance = best;
      out.accepted_guess = t;
      return out;
    }
  }
  out.distance = best;
  out.accepted_guess = guesses.empty() ? 0 : guesses.back();
  return out;
}

}  // namespace mpcsd::seq
