// Internal interface between the Myers bit-parallel driver (myers.cpp) and
// its per-ISA kernel translation units (myers_simd_avx2.cpp,
// myers_simd_avx512.cpp).
//
// The bit-vector recurrence (Myers 1999) is defined over the full m-bit
// pattern width; word size is an implementation detail.  Every kernel here
// evaluates that one recurrence exactly:
//
//   * the scalar kernel (myers.cpp) uses Hyyrö's blocked form, threading a
//     per-block horizontal delta `hin` through the column;
//   * the SIMD kernels evaluate the multi-word form directly: all blocks of
//     a column in parallel lanes, with the two genuinely sequential parts —
//     the big-integer addition's carry chain and the 1-bit cross-word
//     shifts of Ph/Mh — resolved lane-parallel.  Per-word generate (sum
//     overflowed) and propagate (sum == ~0) bits are gathered into scalar
//     masks, the whole carry chain is solved in O(1) with the same
//     bit-trick the recurrence itself uses (`((g << 1 | cin) + p) ^ p`),
//     and the resolved carry bits are re-injected per lane.  Shift carries
//     are the lanes' top bits, moved one lane up as a mask.
//
// All kernels return identical scores and charge identical modelled work
// (`blocks` words per text column, aborting on the same column under a
// bound), so ISA dispatch can never perturb metering, golden traces, or
// `structural_hash()` — pinned by tests/test_seq_simd.cpp and the
// determinism suite.
//
// This header is included by scalar TUs and must stay free of intrinsics;
// the intrinsics headers live only in src/seq/*_simd*.cpp and
// src/common/cpu.* (enforced by scripts/lint.sh).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "seq/types.hpp"

namespace mpcsd::seq::detail {

/// State/mask rows are padded to this many words so 256- and 512-bit lane
/// loads never read past a row.  Padding words are zero in the mask table;
/// all cross-word flows (addition carries, shift carries) move upward only,
/// so padding can never feed back into real blocks.
inline constexpr std::size_t kStrideWords = 8;

/// Pattern preprocessing shared by every kernel: the pattern alphabet
/// remapped to dense ids, one row of `stride` equality words per id.  Id
/// `distinct` is an all-zero row for text symbols that do not occur in the
/// pattern, so lookups never branch.  Build cost is O(|a|) and the result
/// is immutable — the driver caches it per pattern so repeated rungs of a
/// guess ladder (same pattern, different bounds/texts) reuse one table.
struct MyersMasks {
  std::int64_t m = 0;         ///< pattern length (score starts here)
  std::size_t blocks = 0;     ///< ceil(m / 64) real words per row
  std::size_t stride = 0;     ///< blocks rounded up to kStrideWords
  std::vector<std::uint64_t> eq;  ///< (distinct + 1) rows of `stride` words
  std::unordered_map<Symbol, std::uint32_t> ids;
  // Direct-mapped symbol translation for compact alphabets: dense[s -
  // dense_min] is the row id, zero-row for gaps.  The hash find it replaces
  // costs a hardware modulo per text column — measurable against kernels
  // that spend ~3ns/word.  Built only when the pattern's symbol range is
  // O(m), so the table never dominates the O(m * sigma / 64) mask memory.
  std::vector<std::uint32_t> dense;
  std::int64_t dense_min = 0;

  explicit MyersMasks(SymView a)
      : m(static_cast<std::int64_t>(a.size())),
        blocks(static_cast<std::size_t>((m + 63) / 64)),
        stride((blocks + kStrideWords - 1) / kStrideWords * kStrideWords) {
    ids.reserve(a.size() * 2);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto [it, inserted] =
          ids.try_emplace(a[i], static_cast<std::uint32_t>(ids.size()));
      if (inserted) eq.resize(eq.size() + stride, 0);
      eq[static_cast<std::size_t>(it->second) * stride + (i >> 6)] |=
          1ULL << (i & 63);
    }
    eq.resize(eq.size() + stride, 0);  // the zero row
    if (!a.empty()) {
      const auto [lo, hi] = std::minmax_element(a.begin(), a.end());
      const std::int64_t span = static_cast<std::int64_t>(*hi) -
                                static_cast<std::int64_t>(*lo) + 1;
      if (span <= std::max<std::int64_t>(4 * m, 1024)) {
        dense_min = *lo;
        dense.assign(static_cast<std::size_t>(span),
                     static_cast<std::uint32_t>(ids.size()));
        for (const auto& [sym, id] : ids) {
          dense[static_cast<std::size_t>(sym - dense_min)] = id;
        }
      }
    }
  }

  [[nodiscard]] const std::uint64_t* row(Symbol s) const {
    std::size_t id;
    if (!dense.empty()) {
      const auto off =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(s) - dense_min);
      id = off < dense.size() ? dense[off] : ids.size();
    } else {
      const auto it = ids.find(s);
      id = it == ids.end() ? ids.size() : it->second;
    }
    return eq.data() + id * stride;
  }
};

/// One column-loop kernel: runs the recurrence over all of `b` (or until
/// the running score provably exceeds `bound` when `bound >= 0`), returns
/// the final score or nullopt on early abort.  `work` accumulates words
/// processed: `blocks` per completed column, identically in every kernel.
using MyersRunFn = std::optional<std::int64_t> (*)(const MyersMasks& masks,
                                                   SymView b,
                                                   std::int64_t bound,
                                                   std::uint64_t* work);

/// Per-ISA kernels, each defined in its own TU compiled with that ISA's
/// flags.  Returns nullptr when the toolchain could not build the kernel
/// (non-x86 target, missing compiler support) — the dispatcher then falls
/// through to the next narrower level.  Running the returned function is
/// only legal when `cpu::detected_isa()` reports the level.
MyersRunFn myers_run_avx2();
MyersRunFn myers_run_avx512();

/// Lane-parallel kernels pay per-column fixed costs (mask gathers, carry
/// resolution), so they only dispatch at and above these block counts;
/// below them the scalar blocked loop wins.  Thresholds are functions of
/// the pattern length only — deterministic across hosts.
inline constexpr std::size_t kAvx2MinBlocks = 2;
inline constexpr std::size_t kAvx512MinBlocks = 8;

}  // namespace mpcsd::seq::detail
