// Longest increasing subsequence and longest common subsequence.
//
// LIS is the classical dual of Ulam distance: for repeat-free strings, the
// common characters form a point set whose increasing chains are exactly the
// common subsequences.  `lis_length` (patience sorting, O(n log n)) is used
// by tests and by the Hunt–Szymanski LCS for repeat-free strings.
#pragma once

#include <cstdint>

#include "seq/types.hpp"

namespace mpcsd::seq {

/// Length of the longest strictly increasing subsequence.  O(n log n).
std::int64_t lis_length(SymView values);

/// Length of the longest common subsequence; classic O(|a||b|) DP.
/// Intended as a test oracle for moderate sizes.
std::int64_t lcs_length(SymView a, SymView b);

/// LCS length for strings in which no symbol repeats (Hunt–Szymanski
/// degenerates to LIS): O((|a|+|b|) log).  Preconditions checked.
std::int64_t lcs_length_repeat_free(SymView a, SymView b);

/// True iff no symbol occurs twice in `s` (the Ulam-distance precondition).
bool is_repeat_free(SymView s);

/// Indel-only edit distance (no substitutions): |a| + |b| - 2*LCS(a, b).
/// This is the relaxed Ulam notion of [17]/[18] the paper contrasts with
/// the substitution-allowing formulation; for repeat-free strings it is
/// computed via the LIS duality in O((|a|+|b|) log).
std::int64_t indel_distance_repeat_free(SymView a, SymView b);

}  // namespace mpcsd::seq
