// AVX-512 multi-word Myers kernel: 8 pattern words per 512-bit lane group.
//
// Same lane-parallel scheme as the AVX2 TU (see myers_kernel.hpp), with
// the scalar/vector boundary crossed through mask registers instead of
// movemask/LUT round-trips: compares yield per-word bits directly, and
// `_mm512_maskz_set1_epi64` re-injects resolved carry and shift bits.
// Compiled with -mavx512f/bw/dq/vl per-TU; selected only after the runtime
// CPU probe reports all four extensions.
#include "seq/myers_kernel.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mpcsd::seq::detail {

namespace {

/// Words per 512-bit chunk and chunks per carry stripe (64 words).
constexpr std::size_t kLaneWords = 8;
constexpr std::size_t kStripeChunks = 8;

inline __m512i loadu(const std::uint64_t* p) { return _mm512_loadu_si512(p); }

std::optional<std::int64_t> run(const MyersMasks& masks, SymView b,
                                std::int64_t bound, std::uint64_t* work) {
  const std::int64_t m = masks.m;
  const auto n = static_cast<std::int64_t>(b.size());
  const std::size_t blocks = masks.blocks;
  const std::size_t chunks = (blocks + kLaneWords - 1) / kLaneWords;
  const std::size_t state_words = chunks * kLaneWords;  // == masks.stride

  std::vector<std::uint64_t> state(2 * state_words, 0);
  std::uint64_t* pv = state.data();
  std::uint64_t* mv = state.data() + state_words;
  std::fill(pv, pv + state_words, ~0ULL);

  const std::size_t last_chunk = chunks - 1;
  alignas(64) std::uint64_t last_probe[kLaneWords] = {0};
  last_probe[(blocks - 1) % kLaneWords] = 1ULL << ((m - 1) & 63);
  const __m512i vlast = _mm512_load_si512(last_probe);
  const __m512i vones = _mm512_set1_epi64(-1);
  const __m512i vone = _mm512_set1_epi64(1);
  const __m512i vtop = _mm512_set1_epi64(INT64_MIN);  // bit 63 probe

  std::int64_t score = m;
  std::uint64_t words = 0;

  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t* eq_row = masks.row(b[static_cast<std::size_t>(j)]);
    std::uint64_t add_carry = 0;
    unsigned ph_carry = 1;  // top boundary row: d[0][j] = j, so +1
    unsigned mh_carry = 0;
    int hout = 0;

    for (std::size_t chunk0 = 0; chunk0 < chunks; chunk0 += kStripeChunks) {
      const std::size_t chunk_end = std::min(chunks, chunk0 + kStripeChunks);
      std::uint64_t g = 0;
      std::uint64_t p = 0;
      // Sums are recomputed in pass 2 from the same inputs — cheaper than
      // a store/reload round trip; only the g/p bits leave this pass.
      for (std::size_t c = chunk0; c < chunk_end; ++c) {
        const std::size_t w = c * kLaneWords;
        const std::size_t sh = (c - chunk0) * kLaneWords;
        const __m512i eq = loadu(eq_row + w);
        const __m512i vpv = loadu(pv + w);
        const __m512i t = _mm512_and_si512(eq, vpv);
        const __m512i s = _mm512_add_epi64(t, vpv);
        const __mmask8 ovf = _mm512_cmplt_epu64_mask(s, t);
        const __mmask8 prop = _mm512_cmpeq_epi64_mask(s, vones);
        g |= static_cast<std::uint64_t>(ovf) << sh;
        p |= static_cast<std::uint64_t>(prop) << sh;
      }
      const std::uint64_t carries = (((g << 1) | add_carry) + p) ^ p;
      const std::size_t top = (chunk_end - chunk0) * kLaneWords - 1;
      add_carry = ((g >> top) & 1) |
                  (((p >> top) & 1) & ((carries >> top) & 1));

      for (std::size_t c = chunk0; c < chunk_end; ++c) {
        const std::size_t w = c * kLaneWords;
        const std::size_t sh = (c - chunk0) * kLaneWords;
        const __m512i eq = loadu(eq_row + w);
        const __m512i vpv = loadu(pv + w);
        const __m512i vmv = loadu(mv + w);
        const __m512i xv = _mm512_or_si512(eq, vmv);
        const __m512i t = _mm512_and_si512(eq, vpv);
        const __m512i s = _mm512_add_epi64(
            _mm512_add_epi64(t, vpv),
            _mm512_maskz_mov_epi64(
                static_cast<__mmask8>(carries >> sh), vone));
        const __m512i xh = _mm512_or_si512(_mm512_xor_si512(s, vpv), eq);
        const __m512i ph = _mm512_or_si512(
            vmv, _mm512_xor_si512(_mm512_or_si512(xh, vpv), vones));
        const __m512i mh = _mm512_and_si512(vpv, xh);
        if (c == last_chunk) {
          if (_mm512_test_epi64_mask(ph, vlast) != 0) {
            hout = 1;
          } else if (_mm512_test_epi64_mask(mh, vlast) != 0) {
            hout = -1;
          }
        }
        const unsigned ph_tops = _mm512_test_epi64_mask(ph, vtop);
        const unsigned mh_tops = _mm512_test_epi64_mask(mh, vtop);
        // v + v == v << 1; GCC12's unmasked _mm512_slli_epi64 trips a
        // -Wmaybe-uninitialized false positive via _mm512_undefined_epi32.
        const __m512i ph2 = _mm512_or_si512(
            _mm512_add_epi64(ph, ph),
            _mm512_maskz_mov_epi64(
                static_cast<__mmask8>((ph_tops << 1) | ph_carry), vone));
        const __m512i mh2 = _mm512_or_si512(
            _mm512_add_epi64(mh, mh),
            _mm512_maskz_mov_epi64(
                static_cast<__mmask8>((mh_tops << 1) | mh_carry), vone));
        ph_carry = ph_tops >> 7;
        mh_carry = mh_tops >> 7;
        _mm512_storeu_si512(
            pv + w, _mm512_or_si512(
                        mh2, _mm512_xor_si512(_mm512_or_si512(xv, ph2), vones)));
        _mm512_storeu_si512(mv + w, _mm512_and_si512(ph2, xv));
      }
    }

    score += hout;
    words += blocks;
    if (bound >= 0 && score - (n - j - 1) > bound) {
      if (work != nullptr) *work += words;
      return std::nullopt;
    }
  }
  if (work != nullptr) *work += words;
  return score;
}

}  // namespace

MyersRunFn myers_run_avx512() { return &run; }

}  // namespace mpcsd::seq::detail

#else  // toolchain cannot target AVX-512: register no kernel

namespace mpcsd::seq::detail {
MyersRunFn myers_run_avx512() { return nullptr; }
}  // namespace mpcsd::seq::detail

#endif
