// Dispatching fast edit-distance kernels.
//
// `edit_distance_fast` and friends compute exactly the same values as the
// scalar engines in edit_distance.hpp (pinned by differential tests) but
// route each call to the cheapest kernel:
//
//   * Myers/Hyyrö bit-parallel (myers.hpp) — processes 64 DP cells per
//     word op; wins whenever the scalar would touch >= ~kCellsPerWord
//     cells per pattern word, i.e. full DPs and wide bands.
//   * scalar banded DP — wins for narrow bands (small k on long strings),
//     where the bit-vector still pays ceil(m/64) words per column.
//   * scalar row DP — wins for tiny inputs where mask setup dominates.
//
// Work metering stays in *modelled DP cells*, exactly the unit the scalar
// kernels charge and Table 1 counts: the dispatcher converts bit-parallel
// word counts back to the cells the modelled band/full DP would touch, so
// swapping kernels changes wall-clock, never the work model.  (On censored
// pairs the modelled band area is a deterministic piecewise-linear estimate
// of the scalar's data-dependent early-abort count; see docs/ALGORITHMS.md
// "Kernel selection & performance".)
#pragma once

#include <cstdint>
#include <optional>

#include "seq/types.hpp"

namespace mpcsd::seq {

/// Which kernel a fast entry point routes to (introspection for tests,
/// benches, and the docs' dispatch table).
enum class EditKernel : std::uint8_t {
  kScalar,        ///< Wagner–Fischer row DP
  kScalarBanded,  ///< Ukkonen band (with doubling in the bounded driver)
  kMyers,         ///< blocked bit-parallel, unbounded
  kMyersBounded,  ///< blocked bit-parallel with early abort at the cap
};

/// A Myers word op covers 64 cells but costs ~this many scalar cell updates;
/// the dispatcher picks Myers when the modelled cells per word exceed it.
inline constexpr std::int64_t kCellsPerWord = 8;

/// Below this many DP cells the scalar row DP beats any mask setup.
inline constexpr std::int64_t kTinyCells = 1024;

/// Exact edit distance; value-identical to `edit_distance`.  Charges
/// |a|·|b| modelled cells (as the scalar does) regardless of kernel.
std::int64_t edit_distance_fast(SymView a, SymView b, std::uint64_t* work = nullptr);

/// Exact distance if <= k, nullopt otherwise; value-identical to
/// `edit_distance_banded`.
std::optional<std::int64_t> edit_distance_banded_fast(SymView a, SymView b,
                                                      std::int64_t k,
                                                      std::uint64_t* work = nullptr);

/// Exact distance with cap `limit`; value-identical to
/// `edit_distance_bounded`.  Scalar band-doubling while bands are narrow,
/// then one bit-parallel bounded run instead of ever-wider scalar bands
/// (Myers' cost does not grow with the cap).
std::optional<std::int64_t> edit_distance_bounded_fast(SymView a, SymView b,
                                                       std::int64_t limit,
                                                       std::uint64_t* work = nullptr);

/// Modelled cells of a half-width-k Ukkonen band over a rows x cols DP:
/// sum over i = 1..rows of |[max(0, i-k), min(cols, i+k)]|.  The charge
/// unit every bit-parallel entry point converts its word counts back to;
/// shared with the output-sensitive driver (edit_distance_os.hpp).
std::uint64_t band_cells(std::int64_t rows, std::int64_t cols, std::int64_t k);

/// The kernel `edit_distance_fast(a, b)` would run.
EditKernel edit_distance_fast_kernel(SymView a, SymView b);

/// The kernel `edit_distance_banded_fast(a, b, k)` would run.
EditKernel edit_distance_banded_fast_kernel(SymView a, SymView b, std::int64_t k);

}  // namespace mpcsd::seq
