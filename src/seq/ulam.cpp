#include "seq/ulam.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/fenwick.hpp"
#include "seq/combine.hpp"
#include "seq/lis.hpp"

namespace mpcsd::seq {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/// Chain boundary handling: `Global` pays max(prefix, suffix) gaps on both
/// strings; `Local` pays only the block-side gaps (the substring endpoints
/// gamma/kappa are chosen optimally for free).
enum class Boundary { kGlobal, kLocal };

std::int64_t start_cost(Boundary mode, const MatchPoint& m) {
  return mode == Boundary::kGlobal ? std::max(m.p, m.q) : m.p;
}

std::int64_t end_cost(Boundary mode, const MatchPoint& m, std::int64_t na,
                      std::int64_t nb) {
  return mode == Boundary::kGlobal
             ? std::max(na - 1 - m.p, nb - 1 - m.q)
             : na - 1 - m.p;
}

std::int64_t empty_chain_cost(Boundary mode, std::int64_t na, std::int64_t nb) {
  return mode == Boundary::kGlobal ? std::max(na, nb) : na;
}

/// Fenwick payload: DP value plus the first match index of the chain that
/// achieves it (needed to recover gamma for local Ulam).
struct Entry {
  std::int64_t val = kInf;
  std::int32_t first = -1;
  std::int32_t src = -1;  ///< the match-point index this value came from

  friend bool operator<(const Entry& a, const Entry& b) { return a.val < b.val; }
};

struct ChainDp {
  std::vector<std::int64_t> dp;
  std::vector<std::int32_t> first;
  std::vector<std::int32_t> pred;  ///< predecessor in the optimal chain (-1 = start)
};

/// Dense O(m²) chain DP.  Points must be sorted by p (strictly increasing).
ChainDp chain_dp_dense(const std::vector<MatchPoint>& pts, Boundary mode,
                       std::uint64_t* work) {
  const auto m = pts.size();
  ChainDp out;
  out.dp.resize(m);
  out.first.resize(m);
  out.pred.assign(m, -1);
  for (std::size_t i = 0; i < m; ++i) {
    out.dp[i] = start_cost(mode, pts[i]);
    out.first[i] = static_cast<std::int32_t>(i);
    for (std::size_t j = 0; j < i; ++j) {
      if (pts[j].q >= pts[i].q) continue;  // p order is implicit
      const std::int64_t cand =
          out.dp[j] + std::max(pts[i].p - pts[j].p - 1, pts[i].q - pts[j].q - 1);
      if (cand < out.dp[i]) {
        out.dp[i] = cand;
        out.first[i] = out.first[j];
        out.pred[i] = static_cast<std::int32_t>(j);
      }
    }
  }
  if (work != nullptr) *work += static_cast<std::uint64_t>(m) * m;
  return out;
}

/// Sparse O(m log² m) chain DP via divide-and-conquer on the p-order.
///
/// The transition cost max(p_i-p_j-1, q_i-q_j-1) splits on the diagonal
/// d = p - q:
///   case A (d_j <= d_i): cost = (p_i - 1) + (dp_j - p_j), needs q_j < q_i;
///   case B (d_j >  d_i): cost = (q_i - 1) + (dp_j - q_j), needs p_j < p_i.
/// In each cross step (finalised left half -> right half) case B's p
/// condition is structural and case A's p condition is implied by q and d,
/// so A reduces to a merge by q with a prefix-min Fenwick over d-ranks and
/// B to a suffix-min Fenwick over d-ranks.
class SparseChainSolver {
 public:
  SparseChainSolver(const std::vector<MatchPoint>& pts, Boundary mode,
                    std::uint64_t* work)
      : pts_(pts), work_(work) {
    const auto m = pts_.size();
    out_.dp.resize(m);
    out_.first.resize(m);
    out_.pred.assign(m, -1);
    for (std::size_t i = 0; i < m; ++i) {
      out_.dp[i] = start_cost(mode, pts_[i]);
      out_.first[i] = static_cast<std::int32_t>(i);
    }
    if (m > 0) solve(0, m);
  }

  ChainDp take() && { return std::move(out_); }

 private:
  void solve(std::size_t lo, std::size_t hi) {
    if (hi - lo <= 1) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    solve(lo, mid);
    cross(lo, mid, hi);
    solve(mid, hi);
  }

  void cross(std::size_t lo, std::size_t mid, std::size_t hi) {
    const std::size_t len = hi - lo;
    if (work_ != nullptr) *work_ += len * 8;

    // Local d-rank compression for this segment.
    std::vector<std::int64_t> ds;
    ds.reserve(len);
    for (std::size_t i = lo; i < hi; ++i) ds.push_back(pts_[i].p - pts_[i].q);
    std::sort(ds.begin(), ds.end());
    ds.erase(std::unique(ds.begin(), ds.end()), ds.end());
    const std::size_t ranks = ds.size();
    auto rank_of = [&](std::size_t i) {
      return static_cast<std::size_t>(
          std::lower_bound(ds.begin(), ds.end(), pts_[i].p - pts_[i].q) -
          ds.begin());
    };

    // ---- Case A: merge by q, prefix-min Fenwick over d-rank. ----
    std::vector<std::size_t> left(mid - lo);
    std::vector<std::size_t> right(hi - mid);
    for (std::size_t i = 0; i < left.size(); ++i) left[i] = lo + i;
    for (std::size_t i = 0; i < right.size(); ++i) right[i] = mid + i;
    auto by_q = [&](std::size_t a, std::size_t b) { return pts_[a].q < pts_[b].q; };
    std::sort(left.begin(), left.end(), by_q);
    std::sort(right.begin(), right.end(), by_q);

    FenwickMin<Entry> fen_a(ranks, Entry{});
    std::size_t li = 0;
    for (const std::size_t i : right) {
      while (li < left.size() && pts_[left[li]].q < pts_[i].q) {
        const std::size_t j = left[li++];
        fen_a.update(rank_of(j), Entry{out_.dp[j] - pts_[j].p, out_.first[j],
                                       static_cast<std::int32_t>(j)});
      }
      const Entry e = fen_a.prefix_min(rank_of(i));
      if (e.val < kInf) {
        const std::int64_t cand = (pts_[i].p - 1) + e.val;
        if (cand < out_.dp[i]) {
          out_.dp[i] = cand;
          out_.first[i] = e.first;
          out_.pred[i] = e.src;
        }
      }
    }

    // ---- Case B: all left inserted, suffix-min via reversed d-rank. ----
    FenwickMin<Entry> fen_b(ranks, Entry{});
    for (std::size_t j = lo; j < mid; ++j) {
      fen_b.update(ranks - 1 - rank_of(j), Entry{out_.dp[j] - pts_[j].q, out_.first[j],
                                                 static_cast<std::int32_t>(j)});
    }
    for (std::size_t i = mid; i < hi; ++i) {
      const std::size_t r = rank_of(i);
      if (r + 1 >= ranks) continue;  // nothing with strictly larger d
      // reversed ranks [0, ranks-1-r-1] correspond to d-ranks > r
      const Entry e = fen_b.prefix_min(ranks - 2 - r);
      if (e.val < kInf) {
        const std::int64_t cand = (pts_[i].q - 1) + e.val;
        if (cand < out_.dp[i]) {
          out_.dp[i] = cand;
          out_.first[i] = e.first;
          out_.pred[i] = e.src;
        }
      }
    }
  }

  const std::vector<MatchPoint>& pts_;
  std::uint64_t* work_;
  ChainDp out_;
};

struct FinishResult {
  std::int64_t distance = 0;
  std::int32_t best_last = -1;   // -1 == empty chain
  std::int32_t best_first = -1;
};

FinishResult finish(const std::vector<MatchPoint>& pts, const ChainDp& chains,
                    Boundary mode, std::int64_t na, std::int64_t nb) {
  FinishResult best;
  best.distance = empty_chain_cost(mode, na, nb);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::int64_t total = chains.dp[i] + end_cost(mode, pts[i], na, nb);
    if (total < best.distance) {
      best.distance = total;
      best.best_last = static_cast<std::int32_t>(i);
      best.best_first = chains.first[i];
    }
  }
  return best;
}

LocalUlamResult recover_local(const std::vector<MatchPoint>& pts,
                              const FinishResult& fin, std::int64_t na,
                              std::int64_t nb) {
  LocalUlamResult out;
  out.distance = fin.distance;
  if (fin.best_last < 0) {
    out.window = Interval{0, 0};
    return out;
  }
  const MatchPoint& f = pts[static_cast<std::size_t>(fin.best_first)];
  const MatchPoint& l = pts[static_cast<std::size_t>(fin.best_last)];
  std::int64_t gamma = f.q - f.p;
  if (gamma < 0) gamma = 0;
  std::int64_t kappa = l.q + (na - l.p);  // exclusive end
  if (kappa > nb) kappa = nb;
  out.window = Interval{gamma, kappa};
  return out;
}

}  // namespace

std::vector<MatchPoint> match_points(SymView a, SymView b) {
  std::unordered_map<Symbol, std::int64_t> pos_in_b;
  pos_in_b.reserve(b.size() * 2);
  for (std::size_t j = 0; j < b.size(); ++j) {
    pos_in_b.emplace(b[j], static_cast<std::int64_t>(j));
  }
  std::vector<MatchPoint> pts;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (auto it = pos_in_b.find(a[i]); it != pos_in_b.end()) {
      pts.push_back(MatchPoint{static_cast<std::int64_t>(i), it->second});
    }
  }
  return pts;  // sorted by p by construction
}

std::int64_t ulam_distance(SymView a, SymView b, std::uint64_t* work) {
  MPCSD_EXPECTS(is_repeat_free(a));
  MPCSD_EXPECTS(is_repeat_free(b));
  return ulam_from_match_points(match_points(a, b),
                                static_cast<std::int64_t>(a.size()),
                                static_cast<std::int64_t>(b.size()), work);
}

std::int64_t ulam_distance_dense(SymView a, SymView b, std::uint64_t* work) {
  MPCSD_EXPECTS(is_repeat_free(a));
  MPCSD_EXPECTS(is_repeat_free(b));
  const auto pts = match_points(a, b);
  const auto chains = chain_dp_dense(pts, Boundary::kGlobal, work);
  return finish(pts, chains, Boundary::kGlobal,
                static_cast<std::int64_t>(a.size()),
                static_cast<std::int64_t>(b.size()))
      .distance;
}

LocalUlamResult local_ulam(SymView block, SymView t, std::uint64_t* work) {
  MPCSD_EXPECTS(is_repeat_free(block));
  MPCSD_EXPECTS(is_repeat_free(t));
  const auto pts = match_points(block, t);
  const auto chains = SparseChainSolver(pts, Boundary::kLocal, work).take();
  const auto fin = finish(pts, chains, Boundary::kLocal,
                          static_cast<std::int64_t>(block.size()),
                          static_cast<std::int64_t>(t.size()));
  return recover_local(pts, fin, static_cast<std::int64_t>(block.size()),
                       static_cast<std::int64_t>(t.size()));
}

LocalUlamResult local_ulam_dense(SymView block, SymView t, std::uint64_t* work) {
  MPCSD_EXPECTS(is_repeat_free(block));
  MPCSD_EXPECTS(is_repeat_free(t));
  const auto pts = match_points(block, t);
  const auto chains = chain_dp_dense(pts, Boundary::kLocal, work);
  const auto fin = finish(pts, chains, Boundary::kLocal,
                          static_cast<std::int64_t>(block.size()),
                          static_cast<std::int64_t>(t.size()));
  return recover_local(pts, fin, static_cast<std::int64_t>(block.size()),
                       static_cast<std::int64_t>(t.size()));
}

namespace {

/// Compresses match points (sorted by p) into maximal diagonal runs,
/// expressed as zero-distance combine tuples: [p_s, p_e+1) x [q_s, q_e+1).
/// An exchange argument shows some optimal chain always uses maximal runs
/// in full, so the chain DP may operate on runs — for similar strings this
/// shrinks the instance from ~n points to ~d runs.
std::vector<Tuple> runs_as_tuples(const std::vector<MatchPoint>& pts) {
  std::vector<Tuple> runs;
  std::size_t i = 0;
  while (i < pts.size()) {
    std::size_t j = i + 1;
    while (j < pts.size() && pts[j].p == pts[j - 1].p + 1 &&
           pts[j].q == pts[j - 1].q + 1) {
      ++j;
    }
    runs.push_back(Tuple{pts[i].p, pts[j - 1].p + 1, pts[i].q, pts[j - 1].q + 1, 0});
    i = j;
  }
  return runs;
}

}  // namespace

std::int64_t ulam_from_match_points(const std::vector<MatchPoint>& pts,
                                    std::int64_t na, std::int64_t nb,
                                    std::uint64_t* work) {
  // Run-compressed chain DP: the max-gap combine over zero-distance run
  // tuples computes exactly the chain formula (start gap + max-gaps + end
  // gap), in O(R log^2 R) for R runs.
  CombineOptions options;
  options.gap = GapCost::kMax;
  options.use_fast = true;
  return combine_tuples(runs_as_tuples(pts), na, nb, options, work);
}

std::optional<std::int64_t> bounded_ulam_from_match_points(
    const std::vector<MatchPoint>& pts, std::int64_t na, std::int64_t nb,
    std::int64_t cap, std::uint64_t* work) {
  MPCSD_EXPECTS(cap >= 0);
  if (std::abs(na - nb) > cap) return std::nullopt;
  // Any alignment of cost <= cap only visits DP cells (i, j) with
  // |i - j| <= cap, so match points outside the band cannot participate in
  // an optimal chain of a distance-<=cap transformation.
  std::vector<MatchPoint> band;
  band.reserve(pts.size());
  for (const MatchPoint& m : pts) {
    if (std::abs(m.p - m.q) <= cap) band.push_back(m);
  }
  if (work != nullptr) *work += pts.size();
  const std::int64_t d = ulam_from_match_points(band, na, nb, work);
  if (d > cap) return std::nullopt;
  return d;
}

LocalUlamResult local_ulam_from_match_points(const std::vector<MatchPoint>& pts,
                                             std::int64_t na, std::int64_t nb,
                                             std::uint64_t* work) {
  const auto chains = SparseChainSolver(pts, Boundary::kLocal, work).take();
  const auto fin = finish(pts, chains, Boundary::kLocal, na, nb);
  return recover_local(pts, fin, na, nb);
}

UlamAlignment ulam_alignment(SymView a, SymView b, std::uint64_t* work) {
  MPCSD_EXPECTS(is_repeat_free(a));
  MPCSD_EXPECTS(is_repeat_free(b));
  const auto pts = match_points(a, b);
  const auto chains = SparseChainSolver(pts, Boundary::kGlobal, work).take();
  const auto fin = finish(pts, chains, Boundary::kGlobal,
                          static_cast<std::int64_t>(a.size()),
                          static_cast<std::int64_t>(b.size()));
  UlamAlignment out;
  out.distance = fin.distance;
  for (std::int32_t i = fin.best_last; i >= 0;
       i = chains.pred[static_cast<std::size_t>(i)]) {
    out.chain.push_back(pts[static_cast<std::size_t>(i)]);
  }
  std::reverse(out.chain.begin(), out.chain.end());
  return out;
}

LocalUlamResult local_ulam_bruteforce(SymView block, SymView t) {
  LocalUlamResult best;
  best.distance = static_cast<std::int64_t>(block.size());
  best.window = Interval{0, 0};
  const auto nb = static_cast<std::int64_t>(t.size());
  for (std::int64_t g = 0; g < nb; ++g) {
    for (std::int64_t k = g + 1; k <= nb; ++k) {
      const std::int64_t d = ulam_distance_dense(block, subview(t, {g, k}));
      if (d < best.distance) {
        best.distance = d;
        best.window = Interval{g, k};
      }
    }
  }
  return best;
}

}  // namespace mpcsd::seq
