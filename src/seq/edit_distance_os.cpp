#include "seq/edit_distance_os.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"
#include "seq/myers.hpp"

namespace mpcsd::seq {

namespace {

/// Longest common prefix of a and b.
std::size_t common_prefix(SymView a, SymView b) {
  const std::size_t lim = std::min(a.size(), b.size());
  std::size_t p = 0;
  while (p < lim && a[p] == b[p]) ++p;
  return p;
}

/// Longest common suffix of a and b.
std::size_t common_suffix(SymView a, SymView b) {
  const std::size_t lim = std::min(a.size(), b.size());
  std::size_t s = 0;
  while (s < lim && a[a.size() - 1 - s] == b[b.size() - 1 - s]) ++s;
  return s;
}

/// The banded walk stops paying once the window covers this fraction of
/// the pattern's blocks; a full-width bounded run (SIMD-dispatched, cost
/// independent of the cap) resolves the remainder.
bool band_still_narrow(std::int64_t pattern_len, std::int64_t k) {
  return 4 * (2 * k + 1) < pattern_len;
}

/// Core solve after trim: a is the pattern (|a| <= |b|), both non-empty,
/// limit >= |b| - |a|.
std::optional<std::int64_t> solve_core(SymView a, SymView b,
                                       std::int64_t limit,
                                       std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (m * n <= kTinyCells) return edit_distance_bounded(a, b, limit, work);

  std::int64_t k = std::min(std::max<std::int64_t>(1, n - m), limit);
  while (band_still_narrow(m, k)) {
    const auto d = edit_distance_myers_banded(a, b, k, nullptr);
    // Same modelled charge as the scalar doubling driver: the attempted
    // band's area, succeed or fail.
    if (work != nullptr) *work += band_cells(n, m, k);
    if (d.has_value()) return d;
    if (k == limit) return std::nullopt;
    k = std::min(2 * k, limit);
  }

  // Wide-band regime: one full-width bounded run (the runtime-dispatched
  // kernel family), charged as the band the ladder would have finished at.
  std::uint64_t words = 0;
  const auto d = edit_distance_myers_bounded(a, b, limit, &words);
  if (work != nullptr) {
    const auto blocks = static_cast<std::uint64_t>((m + 63) / 64);
    const auto charge_k =
        d.has_value() ? std::min(limit, std::max<std::int64_t>(2 * *d, 1))
                      : limit;
    const auto rows = d.has_value()
                          ? n
                          : static_cast<std::int64_t>(words / blocks);
    *work += band_cells(rows, m, charge_k);
  }
  return d;
}

}  // namespace

std::optional<std::int64_t> edit_distance_output_sensitive_bounded(
    SymView a, SymView b, std::int64_t limit, std::uint64_t* work) {
  MPCSD_EXPECTS(limit >= 0);
  if (a.size() > b.size()) std::swap(a, b);  // a = pattern (fewer blocks)
  const std::size_t prefix = common_prefix(a, b);
  a = a.subspan(prefix);
  b = b.subspan(prefix);
  const std::size_t suffix = common_suffix(a, b);
  a = a.subspan(0, a.size() - suffix);
  b = b.subspan(0, b.size() - suffix);

  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (n - m > limit) return std::nullopt;  // length gap lower bound
  if (m == 0) return n;                    // includes the equal-strings case
  return solve_core(a, b, limit, work);
}

std::int64_t edit_distance_output_sensitive(SymView a, SymView b,
                                            std::uint64_t* work) {
  // d <= max(|a|, |b|) always, so the capped driver never censors.
  const auto limit = static_cast<std::int64_t>(std::max(a.size(), b.size()));
  return *edit_distance_output_sensitive_bounded(a, b, limit, work);
}

}  // namespace mpcsd::seq
