#include "seq/alignment.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"

namespace mpcsd::seq {

namespace {

/// Last row of the edit-distance DP between a and b: out[j] = ed(a, b[0, j)).
std::vector<std::int64_t> nw_last_row(SymView a, SymView b) {
  const auto m = static_cast<std::int64_t>(b.size());
  std::vector<std::int64_t> prev(static_cast<std::size_t>(m) + 1);
  std::vector<std::int64_t> cur(static_cast<std::size_t>(m) + 1);
  for (std::int64_t j = 0; j <= m; ++j) prev[static_cast<std::size_t>(j)] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<std::int64_t>(i);
    for (std::int64_t j = 1; j <= m; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const std::int64_t sub = prev[ju - 1] + (a[i - 1] == b[ju - 1] ? 0 : 1);
      cur[ju] = std::min({sub, prev[ju] + 1, cur[ju - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev;
}

SymString reversed(SymView v) { return SymString(v.rbegin(), v.rend()); }

void hirschberg(SymView a, SymView b, std::vector<EditOp>& out) {
  const auto n = a.size();
  const auto m = b.size();
  if (n == 0) {
    out.insert(out.end(), m, EditOp::kInsert);
    return;
  }
  if (m == 0) {
    out.insert(out.end(), n, EditOp::kDelete);
    return;
  }
  if (n == 1) {
    // One symbol of a against b: match it at the first occurrence if any
    // (cost m-1), otherwise substitute at the front (cost m).
    for (std::size_t j = 0; j < m; ++j) {
      if (b[j] == a[0]) {
        out.insert(out.end(), j, EditOp::kInsert);
        out.push_back(EditOp::kMatch);
        out.insert(out.end(), m - j - 1, EditOp::kInsert);
        return;
      }
    }
    out.push_back(EditOp::kSubstitute);
    out.insert(out.end(), m - 1, EditOp::kInsert);
    return;
  }

  const std::size_t mid = n / 2;
  const auto left = a.subspan(0, mid);
  const auto right = a.subspan(mid);
  const auto score_l = nw_last_row(left, b);

  const SymString right_rev = reversed(right);
  const SymString b_rev = reversed(b);
  const auto score_r = nw_last_row(right_rev, b_rev);

  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::size_t split = 0;
  for (std::size_t j = 0; j <= m; ++j) {
    const std::int64_t total = score_l[j] + score_r[m - j];
    if (total < best) {
      best = total;
      split = j;
    }
  }
  hirschberg(left, b.subspan(0, split), out);
  hirschberg(right, b.subspan(split), out);
}

}  // namespace

std::vector<EditOp> edit_script(SymView a, SymView b) {
  std::vector<EditOp> out;
  out.reserve(a.size() + b.size());
  hirschberg(a, b, out);

  // Script sanity: consumes exactly |a| and |b|.
  std::int64_t ca = 0;
  std::int64_t cb = 0;
  for (const EditOp op : out) {
    if (op != EditOp::kInsert) ++ca;
    if (op != EditOp::kDelete) ++cb;
  }
  MPCSD_ENSURES(ca == static_cast<std::int64_t>(a.size()));
  MPCSD_ENSURES(cb == static_cast<std::int64_t>(b.size()));
  return out;
}

std::int64_t script_cost(const std::vector<EditOp>& script) {
  std::int64_t cost = 0;
  for (const EditOp op : script) {
    if (op != EditOp::kMatch) ++cost;
  }
  return cost;
}

std::vector<std::int64_t> alignment_cuts(const std::vector<EditOp>& script,
                                         std::int64_t a_len, std::int64_t b_len) {
  std::vector<std::int64_t> cuts(static_cast<std::size_t>(a_len) + 1, 0);
  std::int64_t i = 0;
  std::int64_t j = 0;
  for (const EditOp op : script) {
    switch (op) {
      case EditOp::kMatch:
      case EditOp::kSubstitute:
        ++i;
        ++j;
        cuts[static_cast<std::size_t>(i)] = j;
        break;
      case EditOp::kDelete:
        ++i;
        cuts[static_cast<std::size_t>(i)] = j;
        break;
      case EditOp::kInsert:
        ++j;
        break;
    }
  }
  MPCSD_ENSURES(i == a_len);
  MPCSD_ENSURES(j == b_len);
  cuts[static_cast<std::size_t>(a_len)] = b_len;  // attribute trailing inserts
  return cuts;
}

std::vector<Interval> block_images(SymView a, SymView b,
                                   const std::vector<Interval>& blocks) {
  const auto script = edit_script(a, b);
  const auto cuts = alignment_cuts(script, static_cast<std::int64_t>(a.size()),
                                   static_cast<std::int64_t>(b.size()));
  std::vector<Interval> images;
  images.reserve(blocks.size());
  for (const Interval& blk : blocks) {
    MPCSD_EXPECTS(blk.begin >= 0 &&
                  blk.end <= static_cast<std::int64_t>(a.size()) &&
                  blk.begin <= blk.end);
    images.push_back(Interval{cuts[static_cast<std::size_t>(blk.begin)],
                              cuts[static_cast<std::size_t>(blk.end)]});
  }
  return images;
}

}  // namespace mpcsd::seq
