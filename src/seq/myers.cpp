#include "seq/myers.hpp"

#include <cstdlib>
#include <unordered_map>
#include <vector>

namespace mpcsd::seq {

namespace {

/// Pattern preprocessing shared by the bounded and unbounded drivers: the
/// pattern alphabet remapped to dense ids, with one flat row of `blocks`
/// equality words per id.  Id `distinct` is an all-zero row for text
/// symbols that do not occur in the pattern, so lookups never branch.
struct PatternMasks {
  std::size_t blocks = 0;
  std::vector<std::uint64_t> eq;  ///< (distinct + 1) rows of `blocks` words
  std::unordered_map<Symbol, std::uint32_t> ids;

  PatternMasks(SymView a, std::size_t blocks_) : blocks(blocks_) {
    ids.reserve(a.size() * 2);
    for (std::size_t i = 0; i < a.size(); ++i) {
      const auto [it, inserted] =
          ids.try_emplace(a[i], static_cast<std::uint32_t>(ids.size()));
      if (inserted) eq.resize(eq.size() + blocks, 0);
      eq[static_cast<std::size_t>(it->second) * blocks + (i >> 6)] |=
          1ULL << (i & 63);
    }
    eq.resize(eq.size() + blocks, 0);  // the zero row
  }

  [[nodiscard]] const std::uint64_t* row(Symbol s) const {
    const auto it = ids.find(s);
    const std::size_t id = it == ids.end() ? ids.size() : it->second;
    return eq.data() + id * blocks;
  }
};

/// Core blocked Hyyrö recurrence.  Processes columns of `b` until done or
/// (when `bound >= 0`) the score provably exceeds `bound`; returns the
/// final score, or nullopt on early abort.  `work` counts words processed.
std::optional<std::int64_t> myers_run(SymView a, SymView b, std::int64_t bound,
                                      std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  const auto blocks = static_cast<std::size_t>((m + 63) / 64);
  const PatternMasks masks(a, blocks);

  // Vertical delta encoding (Hyyrö 2003): Pv bit set = +1, Mv bit set = -1.
  // Bits above m-1 in the last block are garbage but harmless: all carries
  // propagate upward only, and the score is read at bit (m-1).
  std::vector<std::uint64_t> pv(blocks, ~0ULL);
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::uint64_t last_bit = 1ULL << ((m - 1) & 63);
  std::int64_t score = m;
  std::uint64_t words = 0;

  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t* eqv = masks.row(b[static_cast<std::size_t>(j)]);
    int hin = 1;  // top boundary row: d[0][j] = j
    for (std::size_t k = 0; k < blocks; ++k) {
      std::uint64_t eq = eqv[k];
      const std::uint64_t pvk = pv[k];
      const std::uint64_t mvk = mv[k];
      const std::uint64_t xv = eq | mvk;
      if (hin < 0) eq |= 1ULL;
      const std::uint64_t xh = (((eq & pvk) + pvk) ^ pvk) | eq;
      std::uint64_t ph = mvk | ~(xh | pvk);
      std::uint64_t mh = pvk & xh;

      const std::uint64_t top = (k + 1 == blocks) ? last_bit : (1ULL << 63U);
      int hout = 0;
      if (ph & top) {
        hout = 1;
      } else if (mh & top) {
        hout = -1;
      }

      ph <<= 1U;
      mh <<= 1U;
      if (hin > 0) {
        ph |= 1ULL;
      } else if (hin < 0) {
        mh |= 1ULL;
      }
      pv[k] = mh | ~(xv | ph);
      mv[k] = ph & xv;
      hin = hout;
    }
    score += hin;
    words += blocks;
    // score = d[m][j+1]; the remaining n-j-1 columns each lower the final
    // value by at most 1, so score - (n-j-1) <= d[m][n].
    if (bound >= 0 && score - (n - j - 1) > bound) {
      if (work != nullptr) *work += words;
      return std::nullopt;
    }
  }
  if (work != nullptr) *work += words;
  return score;
}

}  // namespace

std::int64_t edit_distance_myers(SymView a, SymView b, std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (m == 0) return n;
  if (n == 0) return m;
  return *myers_run(a, b, -1, work);
}

std::optional<std::int64_t> edit_distance_myers_bounded(SymView a, SymView b,
                                                        std::int64_t k,
                                                        std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (k < 0) return std::nullopt;
  if (std::abs(n - m) > k) return std::nullopt;  // length gap lower bound
  if (m == 0) return n;
  if (n == 0) return m;
  const auto d = myers_run(a, b, k, work);
  if (!d.has_value() || *d > k) return std::nullopt;
  return d;
}

}  // namespace mpcsd::seq
