#include "seq/myers.hpp"

#include <array>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "seq/myers_kernel.hpp"

namespace mpcsd::seq {

namespace {

using detail::MyersMasks;
using detail::MyersRunFn;

/// Scalar kernel: Hyyrö's blocked form of the recurrence, threading the
/// per-block horizontal delta `hin` through each column.  Always compiled,
/// always selectable; the SIMD kernels must match it bit for bit.
std::optional<std::int64_t> scalar_run(const MyersMasks& masks, SymView b,
                                       std::int64_t bound,
                                       std::uint64_t* work) {
  const std::int64_t m = masks.m;
  const auto n = static_cast<std::int64_t>(b.size());
  const std::size_t blocks = masks.blocks;

  // Vertical delta encoding (Hyyrö 2003): Pv bit set = +1, Mv bit set = -1.
  // Bits above m-1 in the last block are garbage but harmless: all carries
  // propagate upward only, and the score is read at bit (m-1).
  std::vector<std::uint64_t> pv(blocks, ~0ULL);
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::uint64_t last_bit = 1ULL << ((m - 1) & 63);
  std::int64_t score = m;
  std::uint64_t words = 0;

  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t* eqv = masks.row(b[static_cast<std::size_t>(j)]);
    int hin = 1;  // top boundary row: d[0][j] = j
    for (std::size_t k = 0; k < blocks; ++k) {
      std::uint64_t eq = eqv[k];
      const std::uint64_t pvk = pv[k];
      const std::uint64_t mvk = mv[k];
      const std::uint64_t xv = eq | mvk;
      if (hin < 0) eq |= 1ULL;
      const std::uint64_t xh = (((eq & pvk) + pvk) ^ pvk) | eq;
      std::uint64_t ph = mvk | ~(xh | pvk);
      std::uint64_t mh = pvk & xh;

      const std::uint64_t top = (k + 1 == blocks) ? last_bit : (1ULL << 63U);
      int hout = 0;
      if (ph & top) {
        hout = 1;
      } else if (mh & top) {
        hout = -1;
      }

      ph <<= 1U;
      mh <<= 1U;
      if (hin > 0) {
        ph |= 1ULL;
      } else if (hin < 0) {
        mh |= 1ULL;
      }
      pv[k] = mh | ~(xv | ph);
      mv[k] = ph & xv;
      hin = hout;
    }
    score += hin;
    words += blocks;
    // score = d[m][j+1]; the remaining n-j-1 columns each lower the final
    // value by at most 1, so score - (n-j-1) <= d[m][n].
    if (bound >= 0 && score - (n - j - 1) > bound) {
      if (work != nullptr) *work += words;
      return std::nullopt;
    }
  }
  if (work != nullptr) *work += words;
  return score;
}

/// Banded form of the blocked recurrence: processes only the blocks whose
/// rows intersect [j+1-k, j+1+k] at text column j+1.  See the contract and
/// exactness argument in myers.hpp.  The score is anchored at the bottom
/// row of the window's last block and re-anchored (+64 per block, all-+1
/// deltas) as the window extends downward; the window moves by at most one
/// block per column, so the anchor never skips a block.
std::int64_t scalar_banded_run(const MyersMasks& masks, SymView b,
                               std::int64_t k, std::uint64_t* work) {
  const std::int64_t m = masks.m;
  const auto n = static_cast<std::int64_t>(b.size());
  const std::size_t blocks = masks.blocks;

  std::vector<std::uint64_t> pv(blocks, 0);
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::uint64_t last_bit = 1ULL << ((m - 1) & 63);

  // Initial window: the blocks covering rows [1, min(m, 1+k)] at column 1.
  std::size_t last = std::min<std::size_t>(
      blocks - 1,
      static_cast<std::size_t>((std::min(m, 1 + k) - 1) / 64));
  for (std::size_t t = 0; t <= last; ++t) pv[t] = ~0ULL;
  std::int64_t anchor = std::min<std::int64_t>(m, 64 * static_cast<std::int64_t>(last + 1));
  std::int64_t score = anchor;  // D[anchor][0] = anchor
  std::uint64_t words = 0;

  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t col = j + 1;
    const std::int64_t bot_row = std::min<std::int64_t>(m, col + k);
    const auto nl = static_cast<std::size_t>((bot_row - 1) / 64);
    if (nl > last) {
      // One new block enters at the bottom; all-+1 vertical deltas are the
      // Lipschitz upper bound on its column-(j) values.
      pv[nl] = ~0ULL;
      mv[nl] = 0;
      const std::int64_t next_anchor =
          std::min<std::int64_t>(m, 64 * static_cast<std::int64_t>(nl + 1));
      score += next_anchor - anchor;
      anchor = next_anchor;
      last = nl;
    }
    const std::int64_t top_row = std::max<std::int64_t>(1, col - k);
    const auto first = static_cast<std::size_t>((top_row - 1) / 64);

    const std::uint64_t* eqv = masks.row(b[static_cast<std::size_t>(j)]);
    int hin = 1;  // window-top boundary: +1 is exact at row 0, an upper
                  // bound (the max horizontal delta) below it
    for (std::size_t t = first; t <= last; ++t) {
      std::uint64_t eq = eqv[t];
      const std::uint64_t pvk = pv[t];
      const std::uint64_t mvk = mv[t];
      const std::uint64_t xv = eq | mvk;
      if (hin < 0) eq |= 1ULL;
      const std::uint64_t xh = (((eq & pvk) + pvk) ^ pvk) | eq;
      std::uint64_t ph = mvk | ~(xh | pvk);
      std::uint64_t mh = pvk & xh;

      const std::uint64_t top = (t + 1 == blocks) ? last_bit : (1ULL << 63U);
      int hout = 0;
      if (ph & top) {
        hout = 1;
      } else if (mh & top) {
        hout = -1;
      }

      ph <<= 1U;
      mh <<= 1U;
      if (hin > 0) {
        ph |= 1ULL;
      } else if (hin < 0) {
        mh |= 1ULL;
      }
      pv[t] = mh | ~(xv | ph);
      mv[t] = ph & xv;
      hin = hout;
    }
    score += hin;
    words += last - first + 1;
  }
  if (work != nullptr) *work += words;
  // m <= n + k (caller-checked gap), so the window bottom reached row m and
  // the anchor is m: score is the (upper-bounded) value at cell (m, n).
  return score;
}

/// Kernel selection: the widest compiled + host-supported + profitable
/// level.  A pure function of (active_isa(), blocks); every kernel returns
/// identical values and charges identical work, so the choice can never
/// perturb results or metering.
MyersRunFn pick_kernel(std::size_t blocks) {
  static const MyersRunFn avx512 = detail::myers_run_avx512();
  static const MyersRunFn avx2 = detail::myers_run_avx2();
  const Isa isa = active_isa();
  if (isa >= Isa::kAvx512 && avx512 != nullptr &&
      blocks >= detail::kAvx512MinBlocks) {
    return avx512;
  }
  if (isa >= Isa::kAvx2 && avx2 != nullptr &&
      blocks >= detail::kAvx2MinBlocks) {
    return avx2;
  }
  return &scalar_run;
}

/// Thread-local Peq table cache.  The guess ladder, the batch escalation
/// loop, and the window oracles all re-run kernels against one pattern with
/// varying texts/bounds; rebuilding the O(|a|) mask table per call showed
/// up once kernel columns got cheap.  Keyed on full pattern content (hash
/// prefilter, then exact compare — a collision can slow us down, never
/// change a result).  Thread-local so simulator machine bodies on the pool
/// never share it.
struct CacheSlot {
  std::uint64_t hash = 0;
  SymString pattern;
  std::shared_ptr<const MyersMasks> masks;
  std::uint64_t stamp = 0;
};

constexpr std::size_t kCacheSlots = 4;

std::shared_ptr<const MyersMasks> masks_for(SymView a) {
  thread_local std::array<CacheSlot, kCacheSlots> cache;
  thread_local std::uint64_t clock = 0;
  const std::uint64_t h =
      hash_bytes(a.data(), a.size_bytes(), hash_mix(kFnvOffset, a.size()));
  CacheSlot* victim = &cache[0];
  for (CacheSlot& slot : cache) {
    if (slot.masks != nullptr && slot.hash == h &&
        slot.pattern.size() == a.size() &&
        std::equal(a.begin(), a.end(), slot.pattern.begin())) {
      slot.stamp = ++clock;
      return slot.masks;
    }
    if (slot.stamp < victim->stamp) victim = &slot;
  }
  victim->hash = h;
  victim->pattern.assign(a.begin(), a.end());
  victim->masks = std::make_shared<MyersMasks>(a);
  victim->stamp = ++clock;
  return victim->masks;
}

std::optional<std::int64_t> myers_run(SymView a, SymView b, std::int64_t bound,
                                      std::uint64_t* work) {
  // Keep the masks shared_ptr alive across the run: the kernel borrows the
  // table, and a recursive/other use of the cache could otherwise evict it.
  const std::shared_ptr<const MyersMasks> masks = masks_for(a);
  return pick_kernel(masks->blocks)(*masks, b, bound, work);
}

}  // namespace

Isa myers_dispatch_isa(std::size_t pattern_len) {
  const std::size_t blocks = (pattern_len + 63) / 64;
  const MyersRunFn fn = pick_kernel(blocks);
  if (fn == detail::myers_run_avx512()) return Isa::kAvx512;
  if (fn == detail::myers_run_avx2()) return Isa::kAvx2;
  return Isa::kScalar;
}

std::int64_t edit_distance_myers(SymView a, SymView b, std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (m == 0) return n;
  if (n == 0) return m;
  return *myers_run(a, b, -1, work);
}

std::optional<std::int64_t> edit_distance_myers_bounded(SymView a, SymView b,
                                                        std::int64_t k,
                                                        std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (k < 0) return std::nullopt;
  if (std::abs(n - m) > k) return std::nullopt;  // length gap lower bound
  if (m == 0) return n;
  if (n == 0) return m;
  const auto d = myers_run(a, b, k, work);
  if (!d.has_value() || *d > k) return std::nullopt;
  return d;
}

std::optional<std::int64_t> edit_distance_myers_banded(SymView a, SymView b,
                                                       std::int64_t k,
                                                       std::uint64_t* work) {
  if (a.size() > b.size()) std::swap(a, b);  // a = pattern (fewer blocks)
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (k < 0) return std::nullopt;
  if (n - m > k) return std::nullopt;  // length gap lower bound
  if (m == 0) return n;
  const std::shared_ptr<const MyersMasks> masks = masks_for(a);
  const std::int64_t score = scalar_banded_run(*masks, b, k, work);
  if (score > k) return std::nullopt;
  return score;
}

}  // namespace mpcsd::seq
