#include "seq/myers.hpp"

#include <unordered_map>
#include <vector>

namespace mpcsd::seq {

std::int64_t edit_distance_myers(SymView a, SymView b, std::uint64_t* work) {
  const auto m = static_cast<std::int64_t>(a.size());
  const auto n = static_cast<std::int64_t>(b.size());
  if (m == 0) return n;
  if (n == 0) return m;

  const auto blocks = static_cast<std::size_t>((m + 63) / 64);

  // Equality masks of the pattern, one 64-bit word per block per symbol.
  std::unordered_map<Symbol, std::vector<std::uint64_t>> peq;
  peq.reserve(a.size() * 2);
  for (std::int64_t i = 0; i < m; ++i) {
    auto& masks = peq.try_emplace(a[static_cast<std::size_t>(i)],
                                  std::vector<std::uint64_t>(blocks, 0))
                      .first->second;
    masks[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
  }
  const std::vector<std::uint64_t> zero(blocks, 0);

  // Vertical delta encoding (Hyyrö 2003): Pv bit set = +1, Mv bit set = -1.
  // Bits above m-1 in the last block are garbage but harmless: all carries
  // propagate upward only, and the score is read at bit (m-1).
  std::vector<std::uint64_t> pv(blocks, ~0ULL);
  std::vector<std::uint64_t> mv(blocks, 0);
  const std::uint64_t last_bit = 1ULL << ((m - 1) & 63);
  std::int64_t score = m;

  for (std::int64_t j = 0; j < n; ++j) {
    const auto it = peq.find(b[static_cast<std::size_t>(j)]);
    const std::vector<std::uint64_t>& eqv = it == peq.end() ? zero : it->second;
    int hin = 1;  // top boundary row: d[0][j] = j
    for (std::size_t k = 0; k < blocks; ++k) {
      std::uint64_t eq = eqv[k];
      const std::uint64_t pvk = pv[k];
      const std::uint64_t mvk = mv[k];
      const std::uint64_t xv = eq | mvk;
      if (hin < 0) eq |= 1ULL;
      const std::uint64_t xh = (((eq & pvk) + pvk) ^ pvk) | eq;
      std::uint64_t ph = mvk | ~(xh | pvk);
      std::uint64_t mh = pvk & xh;

      const std::uint64_t top = (k + 1 == blocks) ? last_bit : (1ULL << 63U);
      int hout = 0;
      if (ph & top) {
        hout = 1;
      } else if (mh & top) {
        hout = -1;
      }

      ph <<= 1U;
      mh <<= 1U;
      if (hin > 0) {
        ph |= 1ULL;
      } else if (hin < 0) {
        mh |= 1ULL;
      }
      pv[k] = mh | ~(xv | ph);
      mv[k] = ph & xv;
      hin = hout;
    }
    score += hin;
  }
  if (work != nullptr) *work += static_cast<std::uint64_t>(n) * blocks;
  return score;
}

}  // namespace mpcsd::seq
