// Output-sensitive exact edit distance (the sequential fast path behind
// the core::distance_batch query router).
//
// Ukkonen-style k-doubling in the spirit of Dong–Gu–Liu–Sun's
// output-sensitive formulation, run over the blocked bit-parallel Myers
// stripes instead of the scalar band: each attempt evaluates only the word
// blocks covering the band |i - j| <= k (edit_distance_myers_banded), so
// attempt k costs O(|b| * (k/w + 1)) word ops and the doubled ladder totals
// O(n + d*n/w) for answer d — w-fold cheaper than the scalar doubling
// driver, and output-sensitive where the full-width engine is not.
//
// Dispatch within the driver (all value-identical, pinned by differential
// tests and the fuzz harness):
//   * exact-equality / common prefix+suffix trim first — near-duplicate
//     pairs shrink to their differing core before any DP runs;
//   * tiny cores (<= kTinyCells DP cells) go to the scalar doubling driver
//     (mask setup would dominate);
//   * narrow bands walk the banded blocked kernel, doubling k from
//     max(1, length gap);
//   * once the band covers a constant fraction of the pattern the banded
//     walk stops paying for itself and one full-width bounded run — the
//     SIMD-dispatched kernel family with the shared pattern-mask cache
//     (myers_kernel.hpp) — resolves the remainder.
//
// Work metering stays in modelled DP cells (band area per attempt, exactly
// the unit the scalar doubling driver charges); the charge is a pure
// function of (|a|, |b|, limit, answer), never of ISA or host.
#pragma once

#include <cstdint>
#include <optional>

#include "seq/types.hpp"

namespace mpcsd::seq {

/// Exact edit distance; value-identical to `edit_distance`.  O(n + d*n/w)
/// word ops for answer d after O(n) trim.
std::int64_t edit_distance_output_sensitive(SymView a, SymView b,
                                            std::uint64_t* work = nullptr);

/// Exact distance when it is <= limit, std::nullopt otherwise (the capped
/// probe the router uses: a nullopt *proves* ed(a, b) > limit, which the
/// batch driver turns into a starting rung).  Value-identical to
/// `edit_distance_bounded`.
std::optional<std::int64_t> edit_distance_output_sensitive_bounded(
    SymView a, SymView b, std::int64_t limit, std::uint64_t* work = nullptr);

}  // namespace mpcsd::seq
