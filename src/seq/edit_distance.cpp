#include "seq/edit_distance.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/contracts.hpp"

namespace mpcsd::seq {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

std::int64_t edit_distance(SymView a, SymView b, std::uint64_t* work) {
  // Keep the shorter string on the inner dimension to minimise memory.
  if (a.size() < b.size()) std::swap(a, b);
  const auto n = static_cast<std::int64_t>(a.size());
  const auto m = static_cast<std::int64_t>(b.size());
  if (m == 0) return n;

  std::vector<std::int64_t> prev(static_cast<std::size_t>(m) + 1);
  std::vector<std::int64_t> cur(static_cast<std::size_t>(m) + 1);
  for (std::int64_t j = 0; j <= m; ++j) prev[static_cast<std::size_t>(j)] = j;

  for (std::int64_t i = 1; i <= n; ++i) {
    cur[0] = i;
    const Symbol ai = a[static_cast<std::size_t>(i - 1)];
    for (std::int64_t j = 1; j <= m; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      const std::int64_t sub = prev[ju - 1] + (ai == b[ju - 1] ? 0 : 1);
      const std::int64_t del = prev[ju] + 1;
      const std::int64_t ins = cur[ju - 1] + 1;
      cur[ju] = std::min({sub, del, ins});
    }
    std::swap(prev, cur);
  }
  if (work != nullptr) *work += static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);
  return prev[static_cast<std::size_t>(m)];
}

std::optional<std::int64_t> edit_distance_banded(SymView a, SymView b,
                                                 std::int64_t k,
                                                 std::uint64_t* work) {
  MPCSD_EXPECTS(k >= 0);
  const auto n = static_cast<std::int64_t>(a.size());
  const auto m = static_cast<std::int64_t>(b.size());
  if (std::abs(n - m) > k) return std::nullopt;
  if (n == 0) return m <= k ? std::optional<std::int64_t>(m) : std::nullopt;
  if (m == 0) return n <= k ? std::optional<std::int64_t>(n) : std::nullopt;

  // Any cell (i, j) reachable with cost <= k satisfies |i - j| <= k, so we
  // only materialise the band j in [i-k, i+k].  Rows are stored densely with
  // an index offset; cells outside the band act as +infinity.
  const std::int64_t width = 2 * k + 1;
  std::vector<std::int64_t> prev(static_cast<std::size_t>(width), kInf);
  std::vector<std::int64_t> cur(static_cast<std::size_t>(width), kInf);
  std::uint64_t cells = 0;

  // Row 0: d[0][j] = j for j in [0, k].
  for (std::int64_t j = 0; j <= std::min(k, m); ++j) {
    prev[static_cast<std::size_t>(j - 0 + k)] = j;  // offset: column j maps to j - i + k
  }

  for (std::int64_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const std::int64_t jlo = std::max<std::int64_t>(0, i - k);
    const std::int64_t jhi = std::min(m, i + k);
    const Symbol ai = a[static_cast<std::size_t>(i - 1)];
    std::int64_t row_min = kInf;
    for (std::int64_t j = jlo; j <= jhi; ++j) {
      const std::int64_t off = j - i + k;  // position of column j in row i
      std::int64_t best = kInf;
      if (j == 0) {
        best = i;
      } else {
        // diag (i-1, j-1): offset in prev row = (j-1) - (i-1) + k = off
        const std::int64_t diag = prev[static_cast<std::size_t>(off)];
        if (diag < kInf) {
          best = diag + (ai == b[static_cast<std::size_t>(j - 1)] ? 0 : 1);
        }
        // up (i-1, j): offset in prev row = j - (i-1) + k = off + 1
        if (off + 1 < width) {
          const std::int64_t up = prev[static_cast<std::size_t>(off + 1)];
          if (up < kInf) best = std::min(best, up + 1);
        }
        // left (i, j-1): offset in cur row = off - 1
        if (off - 1 >= 0) {
          const std::int64_t left = cur[static_cast<std::size_t>(off - 1)];
          if (left < kInf) best = std::min(best, left + 1);
        }
      }
      cur[static_cast<std::size_t>(off)] = best;
      if (best < row_min) row_min = best;
      ++cells;
    }
    std::swap(prev, cur);
    // Row minima are non-decreasing (every cell of the next row derives
    // from this row with +0/+1 costs), so once the whole band exceeds k
    // the final value must too: abort early.
    if (row_min > k) {
      if (work != nullptr) *work += cells;
      return std::nullopt;
    }
  }
  if (work != nullptr) *work += cells;

  const std::int64_t off_final = m - n + k;
  if (off_final < 0 || off_final >= width) return std::nullopt;
  const std::int64_t d = prev[static_cast<std::size_t>(off_final)];
  if (d > k) return std::nullopt;
  return d;
}

std::optional<std::int64_t> edit_distance_bounded(SymView a, SymView b,
                                                  std::int64_t limit,
                                                  std::uint64_t* work) {
  MPCSD_EXPECTS(limit >= 0);
  std::int64_t k = 1;
  for (;;) {
    const std::int64_t cap = std::min(k, limit);
    if (auto d = edit_distance_banded(a, b, cap, work)) return d;
    if (cap == limit) return std::nullopt;
    k *= 2;
  }
}

std::int64_t edit_distance_doubling(SymView a, SymView b, std::uint64_t* work) {
  const auto limit =
      static_cast<std::int64_t>(std::max(a.size(), b.size()));
  if (limit == 0) return 0;
  const auto d = edit_distance_bounded(a, b, limit, work);
  MPCSD_ENSURES(d.has_value());
  return *d;
}

}  // namespace mpcsd::seq
