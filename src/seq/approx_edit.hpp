// Constant-factor approximate edit distance in linear memory — the
// per-machine distance unit the paper's small-distance pipeline borrows
// from Chakraborty et al. [12].
//
// Scheme (a CGKKS-style window cover; see DESIGN.md for the substitution
// rationale):
//
//   Guess loop.  For t = 1, (1+eps), (1+eps)^2, ... up to max(|a|,|b|):
//     * t <= window size:  run the exact Ukkonen band of width t; if it
//       certifies a distance <= t we are done (exact answer).
//     * t >  window size:  window cover.  Partition a into windows of size
//       w ~ |a|^{5/6}.  Candidate windows of b start on a grid of gap
//       g = max(1, eps*t/d) within offset t of each window's diagonal (an
//       opt of cost <= t keeps images within offset t) with lengths
//       w +- g*(1+eps)^k.  Pair distances are resolved threshold by
//       threshold (tau ascending) through a memoized bounded-distance
//       oracle that only re-attempts a pair once the cap has doubled past
//       its known lower bound; above `rep_min_nodes` nodes, sampled
//       representatives certify dense pairs through the triangle
//       inequality (d(i,z)+d(z,j) <= 3*tau — the same Lemma 7 trick the
//       MPC algorithm uses) so sparse exact work stays subquadratic.  A
//       shortest-path combine DP runs after every threshold and the guess
//       is accepted as soon as the combined bound certifies itself
//       (<= 3(1+2eps)t).
//
// Every pair estimate upper-bounds the true pair distance, so the returned
// value always upper-bounds ed(a, b); the cover argument bounds it by
// 3(1+O(eps))·ed(a, b) on covered workloads (verified empirically by tests
// and by bench/approx_quality).  Work is metered in DP cells.
#pragma once

#include <cstdint>

#include "seq/types.hpp"

namespace mpcsd::seq {

struct ApproxEditParams {
  double epsilon = 0.25;            ///< grid / threshold resolution
  double window_exponent = 5.0 / 6; ///< w = ceil(|a|^window_exponent)
  /// Inputs with |a|,|b| below this run plain exact DP — the subquadratic
  /// machinery only pays off at scale (any practical implementation
  /// dispatches the same way).
  std::int64_t exact_cutoff = 512;
  /// Stop the guess loop once t exceeds this (0 = run to max(|a|,|b|)).
  /// Callers that censor distances above a cap set it to ~the cap: if no
  /// guess up to the limit certifies, the distance provably exceeds it.
  std::int64_t guess_limit = 0;
  std::size_t rep_min_nodes = 1500; ///< enable representative certification
                                    ///< above this node count
  double rep_log_budget = 3.0;      ///< |R| ~ rep_log_budget * log2(N)
  std::uint64_t seed = 17;          ///< representative-sampling seed
};

struct ApproxEditResult {
  std::int64_t distance = 0;  ///< upper bound on ed(a, b)
  std::uint64_t work = 0;     ///< DP cells + bookkeeping operations
  std::int64_t accepted_guess = 0;  ///< the guess t that produced the answer
  bool exact = false;         ///< true when the answer is provably exact
};

/// 3+O(eps)-approximate edit distance; see file comment.
ApproxEditResult approx_edit_distance(SymView a, SymView b,
                                      const ApproxEditParams& params = {});

}  // namespace mpcsd::seq
