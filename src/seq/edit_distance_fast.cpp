#include "seq/edit_distance_fast.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/contracts.hpp"
#include "seq/edit_distance.hpp"
#include "seq/myers.hpp"

namespace mpcsd::seq {

/// Piecewise linear in i, so the sum has a closed form.
std::uint64_t band_cells(std::int64_t rows, std::int64_t cols, std::int64_t k) {
  if (rows <= 0 || cols < 0) return 0;
  const std::int64_t c1 = std::clamp<std::int64_t>(cols - k, 0, rows);
  const std::int64_t sum_hi = c1 * (c1 + 1) / 2 + k * c1 + (rows - c1) * cols;
  const std::int64_t c2 = std::clamp<std::int64_t>(rows - k, 0, rows);
  const std::int64_t sum_lo = c2 * (c2 + 1) / 2;
  return static_cast<std::uint64_t>(sum_hi - sum_lo + rows);
}

namespace {

std::int64_t cell_product(SymView a, SymView b) {
  return static_cast<std::int64_t>(a.size()) * static_cast<std::int64_t>(b.size());
}

/// Myers pays ceil(pattern/64) words per text column no matter how narrow
/// the band; it wins only when the band itself is at least ~kCellsPerWord
/// cells per pattern word.
bool myers_band_profitable(std::size_t pattern_len, std::int64_t k) {
  const auto blocks = static_cast<std::int64_t>((pattern_len + 63) / 64);
  return 2 * k + 1 >= kCellsPerWord * blocks;
}

/// Runs the bounded bit-parallel kernel with the shorter string as the
/// pattern and charges `work` the modelled band cells: the full band on
/// success, the processed-column prefix of it on early abort.
std::optional<std::int64_t> myers_banded_charged(SymView a, SymView b,
                                                 std::int64_t k,
                                                 std::int64_t charge_k,
                                                 std::uint64_t* work) {
  if (a.size() > b.size()) std::swap(a, b);  // a = pattern (fewer blocks)
  std::uint64_t words = 0;
  const auto d = edit_distance_myers_bounded(a, b, k, &words);
  if (work != nullptr) {
    const auto blocks = static_cast<std::uint64_t>((a.size() + 63) / 64);
    const auto cols_done =
        blocks == 0 ? 0 : static_cast<std::int64_t>(words / blocks);
    const auto rows = d.has_value() ? static_cast<std::int64_t>(b.size())
                                    : cols_done;
    *work += band_cells(rows, static_cast<std::int64_t>(a.size()), charge_k);
  }
  return d;
}

}  // namespace

EditKernel edit_distance_fast_kernel(SymView a, SymView b) {
  if (a.empty() || b.empty()) return EditKernel::kScalar;
  if (cell_product(a, b) <= kTinyCells) return EditKernel::kScalar;
  return EditKernel::kMyers;
}

EditKernel edit_distance_banded_fast_kernel(SymView a, SymView b, std::int64_t k) {
  if (a.empty() || b.empty() || cell_product(a, b) <= kTinyCells) {
    return EditKernel::kScalarBanded;
  }
  return myers_band_profitable(std::min(a.size(), b.size()), k)
             ? EditKernel::kMyersBounded
             : EditKernel::kScalarBanded;
}

std::int64_t edit_distance_fast(SymView a, SymView b, std::uint64_t* work) {
  if (edit_distance_fast_kernel(a, b) == EditKernel::kScalar) {
    return edit_distance(a, b, work);
  }
  if (a.size() > b.size()) std::swap(a, b);  // a = pattern (fewer blocks)
  const auto d = edit_distance_myers(a, b, nullptr);
  // Same modelled charge as the scalar row DP: every cell of the table.
  if (work != nullptr) *work += static_cast<std::uint64_t>(cell_product(a, b));
  return d;
}

std::optional<std::int64_t> edit_distance_banded_fast(SymView a, SymView b,
                                                      std::int64_t k,
                                                      std::uint64_t* work) {
  MPCSD_EXPECTS(k >= 0);
  if (edit_distance_banded_fast_kernel(a, b, k) == EditKernel::kScalarBanded) {
    return edit_distance_banded(a, b, k, work);
  }
  return myers_banded_charged(a, b, k, k, work);
}

std::optional<std::int64_t> edit_distance_bounded_fast(SymView a, SymView b,
                                                       std::int64_t limit,
                                                       std::uint64_t* work) {
  MPCSD_EXPECTS(limit >= 0);
  const auto gap = std::abs(static_cast<std::int64_t>(a.size()) -
                            static_cast<std::int64_t>(b.size()));
  if (gap > limit) return std::nullopt;
  const std::size_t pattern_len = std::min(a.size(), b.size());
  std::int64_t k = 1;
  for (;;) {
    const std::int64_t cap = std::min(k, limit);
    if (cell_product(a, b) > kTinyCells &&
        myers_band_profitable(pattern_len, cap)) {
      // The bit-parallel cost is independent of the cap, so skip the rest
      // of the doubling ladder and resolve at the full limit in one shot.
      // Model the charge as the band the scalar ladder would have finished
      // at: half-width < 2d on success, the full capped band when censored.
      std::uint64_t words = 0;
      SymView p = a.size() <= b.size() ? a : b;
      SymView t = a.size() <= b.size() ? b : a;
      const auto d = edit_distance_myers_bounded(p, t, limit, &words);
      if (work != nullptr) {
        const auto blocks = static_cast<std::uint64_t>((p.size() + 63) / 64);
        const auto charge_k =
            d.has_value() ? std::min(limit, std::max<std::int64_t>(2 * *d, 1))
                          : limit;
        const auto rows =
            d.has_value() ? static_cast<std::int64_t>(t.size())
                          : static_cast<std::int64_t>(words / blocks);
        *work += band_cells(rows, static_cast<std::int64_t>(p.size()), charge_k);
      }
      return d;
    }
    if (auto d = edit_distance_banded(a, b, cap, work)) return d;
    if (cap == limit) return std::nullopt;
    k *= 2;
  }
}

}  // namespace mpcsd::seq
