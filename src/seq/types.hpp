// Core string types shared by the whole library.
//
// Strings are sequences of 32-bit symbols: large alphabets are first-class
// because Ulam-distance inputs are (w.l.o.g.) permutations of [n], which do
// not fit in char.  All algorithms take non-owning `SymView`s (Core
// Guidelines F.24: prefer span over pointer+size).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mpcsd {

using Symbol = std::int32_t;
using SymString = std::vector<Symbol>;
using SymView = std::span<const Symbol>;

/// Converts an ASCII string into a symbol string (for examples and tests).
inline SymString to_symbols(std::string_view text) {
  SymString out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(static_cast<Symbol>(static_cast<unsigned char>(c)));
  return out;
}

/// A half-open index interval [begin, end) into a string; `empty()` when
/// begin == end.  All public interval APIs in the library are half-open and
/// 0-based (the paper uses 1-based closed intervals; the conversion is
/// confined to the documentation).
struct Interval {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t length() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin >= end; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// View of `s` restricted to interval `iv` (clamped to the string bounds).
inline SymView subview(SymView s, Interval iv) {
  const auto n = static_cast<std::int64_t>(s.size());
  std::int64_t b = iv.begin < 0 ? 0 : iv.begin;
  std::int64_t e = iv.end > n ? n : iv.end;
  if (b >= e) return {};
  return s.subspan(static_cast<std::size_t>(b), static_cast<std::size_t>(e - b));
}

}  // namespace mpcsd
