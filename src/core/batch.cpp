#include "core/batch.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "edit_mpc/small_distance.hpp"
#include "mpc/plan.hpp"
#include "seq/combine.hpp"
#include "seq/lis.hpp"
#include "ulam_mpc/candidates.hpp"

namespace mpcsd::core {

namespace {

/// Attributes one shared round to one query: sums/maxima over the machines
/// the query owns, with violations re-checked against the query's own cap.
mpc::RoundReport attribute_round(const std::string& label,
                                 const std::vector<mpc::MachineReport>& reports,
                                 const std::vector<std::uint32_t>& owner,
                                 std::uint32_t query, std::uint64_t cap) {
  mpc::RoundReport rr;
  rr.label = label;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (owner[i] != query) continue;
    const mpc::MachineReport& m = reports[i];
    ++rr.machines;
    rr.max_machine_memory = std::max(rr.max_machine_memory, m.memory_footprint());
    rr.total_comm_bytes += m.output_bytes;
    rr.total_input_bytes += m.input_bytes;
    rr.total_work += m.work;
    rr.max_machine_work = std::max(rr.max_machine_work, m.work);
    if (m.memory_footprint() > cap) ++rr.memory_violations;
  }
  return rr;
}

struct QueryMeta {
  std::int64_t n = 0;
  std::int64_t n_bar = 0;
  std::uint64_t cap = 0;
  bool degenerate = false;  ///< answered driver-side, owns no machines
};

/// Emits one attributed span on the query's own track (query id + 1)
/// covering [pass_ts, now]: the query's share of a shared round-pair.  The
/// interval is shared with every co-scheduled query; the args (machines,
/// work, comm) are the query's alone, aggregated from machine reports.
void emit_query_span(obs::Recorder* rec, const char* name,
                     std::uint64_t pass_ts, std::uint32_t query,
                     std::vector<obs::Arg> args) {
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kSpan;
  ev.name = name;
  ev.category = "batch";
  ev.ts_us = pass_ts;
  ev.dur_us = rec->now_us() - pass_ts;
  ev.track = query + 1;
  ev.args = std::move(args);
  rec->emit(std::move(ev));
}

// ---------------------------------------------------------------------
// Ulam batch: every query's block machines share round 1, every query's
// combine machine shares round 2.  Mailbox = query id.  There is no guess
// ladder, so BatchMode does not change the execution.
// ---------------------------------------------------------------------

/// Round-1 machine input: one block of one query.
struct UlamBatchTask {
  std::uint32_t query = 0;
  std::int64_t begin = 0;
  std::vector<std::int64_t> positions;

  static constexpr auto fields() {
    return std::make_tuple(&UlamBatchTask::query, &UlamBatchTask::begin,
                           &UlamBatchTask::positions);
  }
};

BatchResult run_ulam_batch(const BatchRequest& request) {
  const auto& params = request.ulam;
  BatchResult result;
  result.queries.resize(request.queries.size());

  mpc::ClusterConfig config;
  config.memory_limit_bytes = UINT64_MAX;  // per-machine limits carry the caps
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  config.backend = params.backend;
  config.audit = params.audit;
  config.recorder = request.recorder;
  mpc::Driver driver(
      mpc::Plan{"batch:ulam",
                {
                    {"batch:ulam:candidates", "UlamBatchTask (sharded input)",
                     "tuples@query"},
                    {"batch:ulam:combine", "Inbox<tuples>@query", "answer@query"},
                }},
      config);
  const std::uint64_t pass_ts =
      (request.recorder != nullptr && request.recorder->enabled())
          ? request.recorder->now_us()
          : 0;
  obs::Span pass_span(request.recorder, "batch:ulam:pass", "batch");
  pass_span.arg("queries", static_cast<double>(request.queries.size()));

  // Per-query input construction (position map + block tasks) runs on the
  // round worker pool: queries are independent, and the serial flatten
  // below keeps the machine order deterministic.
  std::vector<QueryMeta> meta(request.queries.size());
  std::vector<std::vector<UlamBatchTask>> builds(request.queries.size());
  driver.cluster().pool().parallel_for(
      request.queries.size(),
      [&](std::size_t qi) {
        const auto q = static_cast<std::uint32_t>(qi);
        const BatchQuery& query = request.queries[q];
        MPCSD_EXPECTS(seq::is_repeat_free(SymView(query.s)));
        MPCSD_EXPECTS(seq::is_repeat_free(SymView(query.t)));
        QueryMeta& m = meta[q];
        m.n = static_cast<std::int64_t>(query.s.size());
        m.n_bar = static_cast<std::int64_t>(query.t.size());
        if (m.n == 0) {
          m.degenerate = true;
          result.queries[q].distance = m.n_bar;
          return;
        }
        m.cap = ulam_mpc::ulam_memory_cap_bytes(m.n, params);
        result.queries[q].memory_cap_bytes = m.cap;

        std::unordered_map<Symbol, std::int64_t> pos_in_t;
        pos_in_t.reserve(query.t.size() * 2);
        for (std::size_t j = 0; j < query.t.size(); ++j) {
          pos_in_t.emplace(query.t[j], static_cast<std::int64_t>(j));
        }
        const std::int64_t block =
            std::max<std::int64_t>(1, ipow_ceil(m.n, 1.0 - params.x));
        for (std::int64_t begin = 0; begin < m.n; begin += block) {
          const std::int64_t end = std::min(m.n, begin + block);
          UlamBatchTask task;
          task.query = q;
          task.begin = begin;
          task.positions.reserve(static_cast<std::size_t>(end - begin));
          for (std::int64_t i = begin; i < end; ++i) {
            const auto it = pos_in_t.find(query.s[static_cast<std::size_t>(i)]);
            task.positions.push_back(it == pos_in_t.end() ? -1 : it->second);
          }
          builds[q].push_back(std::move(task));
        }
      },
      /*grain=*/1);

  std::vector<UlamBatchTask> tasks;
  std::vector<std::uint64_t> task_limits;
  std::vector<std::uint32_t> task_owner;
  for (std::uint32_t q = 0; q < builds.size(); ++q) {
    for (UlamBatchTask& task : builds[q]) {
      tasks.push_back(std::move(task));
      task_limits.push_back(meta[q].cap);
      task_owner.push_back(q);
    }
  }

  const double eps_prime = params.epsilon / 2.0;
  const mpc::Stage<UlamBatchTask> candidates_stage{
      "batch:ulam:candidates",
      [meta, eps_prime, theta_constant = params.theta_constant](
          mpc::StageContext<UlamBatchTask>& ctx) {
        const QueryMeta& m = meta[ctx.in().query];
        ulam_mpc::CandidateParams cp;
        cp.eps_prime = eps_prime;
        cp.theta_constant = theta_constant;
        cp.n = m.n;
        cp.n_bar = m.n_bar;
        ulam_mpc::CandidateStats st;
        const auto tuples = ulam_mpc::build_block_candidates(
            ctx.in().begin, ctx.in().positions, cp, ctx.rng(), &st);
        ctx.charge_work(st.work);
        ctx.charge_scratch(ctx.in().positions.size() * 32);
        ctx.send(mpc::Channel<std::vector<seq::Tuple>>(ctx.in().query), tuples);
      }};
  std::vector<mpc::MachineReport> reports1;
  mpc::RoundOptions options1;
  options1.machine_memory_limits = &task_limits;
  options1.machine_reports = &reports1;
  const auto mail =
      driver.run(candidates_stage, driver.shard_parallel(tasks), options1);

  // One combine machine per live query.
  std::vector<std::uint32_t> combine_query;
  std::vector<ByteChain> combine_inputs;
  std::vector<std::uint64_t> combine_limits;
  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    if (meta[q].degenerate) continue;
    combine_query.push_back(q);
    combine_inputs.push_back(mpc::gather_view(mail, q));
    combine_limits.push_back(meta[q].cap);
  }

  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  const mpc::Stage<TupleInbox> combine_stage{
      "batch:ulam:combine",
      [meta, combine_query,
       combine_gap = params.combine_gap](mpc::StageContext<TupleInbox>& ctx) {
        const std::uint32_t q = combine_query[ctx.machine_id()];
        const QueryMeta& m = meta[q];
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const std::size_t tuple_count = tuples.size();
        seq::CombineOptions copts;
        copts.gap = combine_gap;
        const std::int64_t answer =
            seq::combine_tuples(std::move(tuples), m.n, m.n_bar, copts, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(mpc::Channel<std::int64_t>(q), answer);
      }};
  std::vector<mpc::MachineReport> reports2;
  mpc::RoundOptions options2;
  options2.machine_memory_limits = &combine_limits;
  options2.machine_reports = &reports2;
  const auto mail2 = driver.run_views(combine_stage, combine_inputs, options2);
  driver.finish();

  // Answers come back out of the routed mail (mailbox = query id), not out
  // of shared host memory: combine bodies may have run in forked workers.
  std::vector<std::int64_t> answers(meta.size(), 0);
  for (const std::uint32_t q : combine_query) {
    answers[q] = driver.receive(mail2, mpc::Channel<std::int64_t>(q)).at(0);
  }

  // Per-query trace attribution from the machine reports.
  obs::Recorder* rec = request.recorder;
  const bool tracing = rec != nullptr && rec->enabled();
  std::vector<std::uint32_t> combine_owner = combine_query;
  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    if (meta[q].degenerate) continue;
    result.queries[q].distance = answers[q];
    mpc::RoundReport r1 = attribute_round("batch:ulam:candidates", reports1,
                                          task_owner, q, meta[q].cap);
    mpc::RoundReport r2 = attribute_round("batch:ulam:combine", reports2,
                                          combine_owner, q, meta[q].cap);
    if (tracing) {
      emit_query_span(
          rec, "batch:ulam:query", pass_ts, q,
          {{"query", static_cast<double>(q)},
           {"machines", static_cast<double>(r1.machines + r2.machines)},
           {"work", static_cast<double>(r1.total_work + r2.total_work)},
           {"comm_bytes",
            static_cast<double>(r1.total_comm_bytes + r2.total_comm_bytes)}});
    }
    result.queries[q].trace.add_round(std::move(r1));
    result.queries[q].trace.add_round(std::move(r2));
  }
  result.trace = driver.take_trace();
  result.passes = driver.passes();
  MPCSD_ENSURES(result.trace.round_count() == 2);
  return result;
}

// ---------------------------------------------------------------------
// Edit batch.  A (query, guess) pipeline instance is a *cell*; cell
// machines share a distances round, cell combine machines share a combine
// round.  Mailbox = cell id (within the round-pair).
//
//   kParallelGuess: every cell of every query runs in one round-pair.
//   kThroughput:    one round-pair per escalation pass; pass p runs the
//                   p-th unaccepted rung of every unresolved query.
// ---------------------------------------------------------------------

/// One (query, guess) pipeline instance.
struct EditCell {
  std::uint32_t query = 0;
  std::int64_t guess = 0;
  edit_mpc::SmallDistanceParams params;
  edit_mpc::CandidateGeometry geo;
};

/// Round-1 machine input: one small-distance task of one cell.
struct EditBatchTask {
  std::uint32_t cell = 0;
  edit_mpc::SmallTask task;

  static constexpr auto fields() {
    return std::make_tuple(&EditBatchTask::cell, &EditBatchTask::task);
  }
};

/// Per-query precomputation: the clipped guess ladder and the per-rung
/// seeds.  Seeds chain along the ladder exactly as the parallel-guess mode
/// (and the sequential solver) derive them, so a kThroughput run executes
/// byte-identical cells for every rung it shares with kParallelGuess.
struct EditQueryPlan {
  std::vector<std::int64_t> guesses;
  std::vector<std::uint64_t> seeds;
};

EditCell make_edit_cell(std::uint32_t q, const EditQueryPlan& plan,
                        std::size_t rung, const QueryMeta& m,
                        const edit_mpc::EditMpcParams& params,
                        double eps_prime) {
  EditCell cell;
  cell.query = q;
  cell.guess = plan.guesses[rung];
  cell.params.eps_prime = eps_prime;
  cell.params.x = params.x;
  cell.params.delta_guess = cell.guess;
  cell.params.unit = params.unit;
  cell.params.approx = params.approx;
  cell.params.seed = plan.seeds[rung];
  cell.params.strict_memory = params.strict_memory;
  cell.params.memory_cap_bytes = m.cap;
  cell.geo = edit_mpc::small_geometry(m.n, m.n_bar, cell.params);
  return cell;
}

/// One shared round-pair over `cells`: builds the tasks (parallel, on the
/// round worker pool), runs the distances and combine stages with per-query
/// caps, attributes both rounds to every query in `attribute_queries`
/// (queries without a cell get zero-machine rounds), and returns one
/// combined answer per cell.
std::vector<std::int64_t> run_edit_round_pair(
    mpc::Driver& driver, const BatchRequest& request,
    const std::vector<QueryMeta>& meta, const std::vector<EditCell>& cells,
    const std::vector<std::uint32_t>& attribute_queries,
    std::vector<QueryResult>& queries) {
  obs::Recorder* rec = driver.cluster().recorder();
  const bool tracing = rec != nullptr && rec->enabled();
  const std::uint64_t pass_ts = tracing ? rec->now_us() : 0;
  obs::Span pass_span(rec, "batch:edit:pass", "batch");
  pass_span.arg("cells", static_cast<double>(cells.size()));

  // Per-cell task construction is independent; flatten serially in cell
  // order so machine ids stay deterministic.
  std::vector<std::vector<EditBatchTask>> builds(cells.size());
  driver.cluster().pool().parallel_for(
      cells.size(),
      [&](std::size_t c) {
        const EditCell& cell = cells[c];
        const BatchQuery& query = request.queries[cell.query];
        for (auto& task : edit_mpc::make_small_tasks(
                 SymView(query.s), SymView(query.t), cell.params, cell.geo)) {
          builds[c].push_back(
              EditBatchTask{static_cast<std::uint32_t>(c), std::move(task)});
        }
      },
      /*grain=*/1);

  std::vector<EditBatchTask> tasks;
  std::vector<std::uint64_t> task_limits;
  std::vector<std::uint32_t> task_owner;
  std::vector<std::uint32_t> task_cell;
  for (std::size_t c = 0; c < builds.size(); ++c) {
    for (EditBatchTask& task : builds[c]) {
      tasks.push_back(std::move(task));
      task_limits.push_back(meta[cells[c].query].cap);
      task_owner.push_back(cells[c].query);
      task_cell.push_back(static_cast<std::uint32_t>(c));
    }
  }

  const mpc::Stage<EditBatchTask> distances_stage{
      "batch:edit:distances", [&cells](mpc::StageContext<EditBatchTask>& ctx) {
        const EditCell& cell = cells[ctx.in().cell];
        std::uint64_t work = 0;
        const auto tuples = edit_mpc::small_task_tuples(ctx.in().task, cell.params,
                                                        cell.geo, &work);
        ctx.charge_work(work);
        ctx.charge_scratch((ctx.in().task.block.size() + ctx.in().task.chunk.size()) *
                           sizeof(Symbol));
        ctx.send(mpc::Channel<std::vector<seq::Tuple>>(ctx.in().cell), tuples);
      }};
  std::vector<mpc::MachineReport> reports1;
  mpc::RoundOptions options1;
  options1.machine_memory_limits = &task_limits;
  options1.machine_reports = &reports1;
  const auto mail =
      driver.run(distances_stage, driver.shard_parallel(tasks), options1);

  // One combine machine per cell.
  std::vector<ByteChain> combine_inputs;
  std::vector<std::uint64_t> combine_limits;
  std::vector<std::uint32_t> combine_owner;
  for (std::uint32_t c = 0; c < cells.size(); ++c) {
    combine_inputs.push_back(mpc::gather_view(mail, c));
    combine_limits.push_back(meta[cells[c].query].cap);
    combine_owner.push_back(cells[c].query);
  }

  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  const mpc::Stage<TupleInbox> combine_stage{
      "batch:edit:combine", [&meta, &cells](mpc::StageContext<TupleInbox>& ctx) {
        const auto c = static_cast<std::uint32_t>(ctx.machine_id());
        const QueryMeta& m = meta[cells[c].query];
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const std::size_t tuple_count = tuples.size();
        seq::CombineOptions copts;
        copts.gap = seq::GapCost::kSum;
        const std::int64_t answer =
            seq::combine_tuples(std::move(tuples), m.n, m.n_bar, copts, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(mpc::Channel<std::int64_t>(c), answer);
      }};
  std::vector<mpc::MachineReport> reports2;
  mpc::RoundOptions options2;
  options2.machine_memory_limits = &combine_limits;
  options2.machine_reports = &reports2;
  const auto mail2 = driver.run_views(combine_stage, combine_inputs, options2);

  // Per-cell answers return through the routed mail (mailbox = cell id):
  // combine bodies may have run in forked workers whose host writes vanish.
  std::vector<std::int64_t> cell_answers(cells.size(), 0);
  for (std::uint32_t c = 0; c < cells.size(); ++c) {
    cell_answers[c] = driver.receive(mail2, mpc::Channel<std::int64_t>(c)).at(0);
  }

  for (const std::uint32_t q : attribute_queries) {
    queries[q].trace.add_round(attribute_round("batch:edit:distances", reports1,
                                               task_owner, q, meta[q].cap));
    queries[q].trace.add_round(attribute_round("batch:edit:combine", reports2,
                                               combine_owner, q, meta[q].cap));
  }
  if (tracing) {
    // One attributed span per (query, guess rung): the cell's share of this
    // shared round-pair, on the owning query's track.
    for (std::uint32_t c = 0; c < cells.size(); ++c) {
      std::uint64_t work = reports2[c].work;
      std::uint64_t comm = reports2[c].output_bytes;
      std::size_t machines = 1;  // the cell's combine machine
      for (std::size_t i = 0; i < task_cell.size(); ++i) {
        if (task_cell[i] != c) continue;
        work += reports1[i].work;
        comm += reports1[i].output_bytes;
        ++machines;
      }
      emit_query_span(rec, "batch:edit:rung", pass_ts, cells[c].query,
                      {{"query", static_cast<double>(cells[c].query)},
                       {"guess", static_cast<double>(cells[c].guess)},
                       {"machines", static_cast<double>(machines)},
                       {"work", static_cast<double>(work)},
                       {"comm_bytes", static_cast<double>(comm)}});
    }
  }
  return cell_answers;
}

BatchResult run_edit_batch(const BatchRequest& request) {
  const auto& params = request.edit;
  BatchResult result;
  result.queries.resize(request.queries.size());

  mpc::ClusterConfig config;
  config.memory_limit_bytes = UINT64_MAX;  // per-machine limits carry the caps
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  config.backend = params.backend;
  config.audit = params.audit;
  config.recorder = request.recorder;
  mpc::Driver driver(
      mpc::Plan{"batch:edit",
                {
                    {"batch:edit:distances", "EditBatchTask (sharded input)",
                     "tuples@cell"},
                    {"batch:edit:combine", "Inbox<tuples>@cell", "answer@cell"},
                },
                /*repeating=*/request.mode == BatchMode::kThroughput},
      config);

  // Per-query prep: degenerate detection (the equality scan is O(n)) and
  // the clipped guess ladder with chained per-rung seeds.
  const double eps_prime = edit_mpc::edit_eps_prime(params);
  std::vector<QueryMeta> meta(request.queries.size());
  std::vector<EditQueryPlan> plans(request.queries.size());
  driver.cluster().pool().parallel_for(
      request.queries.size(),
      [&](std::size_t qi) {
        const auto q = static_cast<std::uint32_t>(qi);
        const BatchQuery& query = request.queries[q];
        QueryMeta& m = meta[q];
        m.n = static_cast<std::int64_t>(query.s.size());
        m.n_bar = static_cast<std::int64_t>(query.t.size());
        if (m.n == m.n_bar &&
            std::equal(query.s.begin(), query.s.end(), query.t.begin())) {
          m.degenerate = true;
          return;
        }
        if (m.n == 0 || m.n_bar == 0) {
          m.degenerate = true;
          result.queries[q].distance = std::max(m.n, m.n_bar);
          return;
        }
        m.cap = edit_mpc::edit_memory_cap_bytes(m.n, params);
        result.queries[q].memory_cap_bytes = m.cap;

        // The guess ladder, clipped to the small-distance regime.
        const std::int64_t small_limit =
            edit_mpc::small_distance_limit(m.n, params.x);
        std::uint64_t guess_seed = params.seed + q * 0x9e3779b97f4a7c15ULL;
        for (const std::int64_t guess :
             geometric_grid(std::max(m.n, m.n_bar), params.epsilon)) {
          if (guess == 0 || guess > small_limit) continue;
          guess_seed = splitmix64(guess_seed + static_cast<std::uint64_t>(guess));
          plans[q].guesses.push_back(guess);
          plans[q].seeds.push_back(guess_seed);
        }
      },
      /*grain=*/1);

  // Trivial delete-all/insert-all bound; also the answer for a live query
  // whose clipped ladder is empty.
  std::vector<std::int64_t> best(meta.size(), 0);
  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    best[q] = meta[q].n + meta[q].n_bar;
  }

  if (request.mode == BatchMode::kParallelGuess) {
    // Every cell of every query side by side in one round-pair.
    std::vector<EditCell> cells;
    std::vector<std::vector<std::uint32_t>> query_cells(meta.size());
    std::vector<std::uint32_t> live;
    for (std::uint32_t q = 0; q < meta.size(); ++q) {
      if (meta[q].degenerate) continue;
      live.push_back(q);
      for (std::size_t rung = 0; rung < plans[q].guesses.size(); ++rung) {
        query_cells[q].push_back(static_cast<std::uint32_t>(cells.size()));
        cells.push_back(make_edit_cell(q, plans[q], rung, meta[q], params,
                                       eps_prime));
      }
    }
    const auto cell_answers =
        run_edit_round_pair(driver, request, meta, cells, live, result.queries);
    driver.finish();

    for (std::uint32_t q = 0; q < meta.size(); ++q) {
      if (meta[q].degenerate) continue;
      // The guesses ran side by side; pick the best answer and record the
      // first self-certifying guess (the solver's accept condition).
      std::int64_t accepted = 0;
      for (const std::uint32_t c : query_cells[q]) {
        best[q] = std::min(best[q], cell_answers[c]);
        if (accepted == 0 &&
            cell_answers[c] <=
                edit_mpc::accept_threshold(cells[c].guess, params.epsilon)) {
          accepted = cells[c].guess;
        }
      }
      result.queries[q].distance = best[q];
      result.queries[q].accepted_guess = accepted;
      result.queries[q].rungs_run = query_cells[q].size();
    }
    result.trace = driver.take_trace();
    result.passes = driver.passes();
    MPCSD_ENSURES(result.trace.round_count() == 2);
    return result;
  }

  // ---- BatchMode::kThroughput: adaptive guess escalation. ----
  // The router triages live queries before pass 1 (core/router.hpp): under
  // kAuto the prefilters + capped sequential probe either retire a query
  // with its exact distance or prove a lower bound that picks its starting
  // rung; kOff leaves every query exactly where the pre-router engine
  // started it.  Decisions depend only on query content, batch occupancy,
  // and the worker count — never on the execution backend — so the batch
  // trace hash stays backend-independent under every policy.
  const RouterPolicy policy = resolved_router_policy(request.router);
  std::vector<RouteDecision> decisions(meta.size());
  if (policy == RouterPolicy::kAuto || policy == RouterPolicy::kAlwaysSeq) {
    std::vector<std::uint32_t> live;
    for (std::uint32_t q = 0; q < meta.size(); ++q) {
      if (!meta[q].degenerate) live.push_back(q);
    }
    obs::Recorder* rec = request.recorder;
    const bool tracing = rec != nullptr && rec->enabled();
    obs::Span router_span(rec, "batch:edit:router", "router");
    router_span.arg("live", static_cast<double>(live.size()));
    const std::size_t workers = driver.cluster().pool().worker_count();
    driver.cluster().pool().parallel_for(
        live.size(),
        [&](std::size_t i) {
          const std::uint32_t q = live[i];
          const BatchQuery& query = request.queries[q];
          decisions[q] = route_query(SymView(query.s), SymView(query.t),
                                     policy, live.size(), workers);
        },
        /*grain=*/1);
    std::uint64_t retired = 0;
    std::uint64_t probed = 0;
    std::uint64_t lower_bounded = 0;
    for (const std::uint32_t q : live) {
      const RouteDecision& d = decisions[q];
      retired += d.retire ? 1 : 0;
      probed += d.probed ? 1 : 0;
      lower_bounded += (!d.retire && d.lower_bound > 0) ? 1 : 0;
      if (tracing) {
        rec->instant("router:decision", "router",
                     {{"query", static_cast<double>(q)},
                      {"retired", d.retire ? 1.0 : 0.0},
                      {"probed", d.probed ? 1.0 : 0.0},
                      {"k_cap", static_cast<double>(d.k_cap)},
                      {"lower_bound", static_cast<double>(d.lower_bound)}},
                     q + 1);
      }
    }
    if (tracing) {
      rec->counter("router.examined", "router", static_cast<double>(live.size()));
      rec->counter("router.retired_seq", "router", static_cast<double>(retired));
      rec->counter("router.probed", "router", static_cast<double>(probed));
      rec->counter("router.lower_bounded", "router",
                   static_cast<double>(lower_bounded));
      rec->counter("router.to_plan", "router",
                   static_cast<double>(live.size() - retired));
    }
    router_span.arg("retired", static_cast<double>(retired));
  }

  std::vector<std::uint32_t> unresolved;
  std::vector<std::size_t> rung(meta.size(), 0);
  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    if (meta[q].degenerate) continue;
    if (decisions[q].retire) {
      // Routed to the sequential fast path: exact distance, no rungs, no
      // share of any shared round (accepted_guess stays 0, like a query the
      // ladder could not certify — exactness is the stronger guarantee).
      result.queries[q].distance = decisions[q].distance;
      continue;
    }
    if (plans[q].guesses.empty()) {
      result.queries[q].distance = best[q];  // no rung in regime: trivial bound
      continue;
    }
    // A routed lower bound skips rungs that could never self-certify:
    // answer >= ed >= lb, so a rung with accept_threshold(guess) < lb
    // cannot satisfy the accept condition.  Clamp to the last rung.
    std::size_t start = 0;
    while (start + 1 < plans[q].guesses.size() &&
           edit_mpc::accept_threshold(plans[q].guesses[start], params.epsilon) <
               decisions[q].lower_bound) {
      ++start;
    }
    rung[q] = start;
    unresolved.push_back(q);
  }

  while (!unresolved.empty()) {
    std::vector<EditCell> cells;
    cells.reserve(unresolved.size());
    for (const std::uint32_t q : unresolved) {
      cells.push_back(
          make_edit_cell(q, plans[q], rung[q], meta[q], params, eps_prime));
    }
    const auto cell_answers = run_edit_round_pair(driver, request, meta, cells,
                                                  unresolved, result.queries);

    std::vector<std::uint32_t> survivors;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::uint32_t q = cells[c].query;
      best[q] = std::min(best[q], cell_answers[c]);
      ++result.queries[q].rungs_run;
      if (cell_answers[c] <=
          edit_mpc::accept_threshold(cells[c].guess, params.epsilon)) {
        // Self-certified: this rung is >= ed(s, t) whp, later rungs cannot
        // improve the guarantee — retire the query.
        result.queries[q].accepted_guess = cells[c].guess;
        result.queries[q].distance = best[q];
      } else if (++rung[q] == plans[q].guesses.size()) {
        // Ladder exhausted inside the small-distance regime without
        // certification (the large-distance territory): keep the best
        // realizable bound, as the parallel mode does.
        result.queries[q].distance = best[q];
      } else {
        survivors.push_back(q);
      }
    }
    unresolved = std::move(survivors);
  }
  driver.finish();
  result.trace = driver.take_trace();
  result.passes = driver.passes();
  MPCSD_ENSURES(result.trace.round_count() == 2 * result.passes);
  return result;
}

}  // namespace

BatchResult distance_batch(const BatchRequest& request) {
  if (request.queries.empty()) return BatchResult{};
  switch (request.algorithm) {
    case BatchAlgorithm::kUlam:
      return run_ulam_batch(request);
    case BatchAlgorithm::kEdit:
      return run_edit_batch(request);
  }
  throw std::invalid_argument("distance_batch: unknown algorithm");
}

}  // namespace mpcsd::core
