#include "core/batch.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "edit_mpc/small_distance.hpp"
#include "mpc/plan.hpp"
#include "seq/combine.hpp"
#include "seq/lis.hpp"
#include "ulam_mpc/candidates.hpp"

namespace mpcsd::core {

namespace {

/// Attributes one shared round to one query: sums/maxima over the machines
/// the query owns, with violations re-checked against the query's own cap.
mpc::RoundReport attribute_round(const std::string& label,
                                 const std::vector<mpc::MachineReport>& reports,
                                 const std::vector<std::uint32_t>& owner,
                                 std::uint32_t query, std::uint64_t cap) {
  mpc::RoundReport rr;
  rr.label = label;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (owner[i] != query) continue;
    const mpc::MachineReport& m = reports[i];
    ++rr.machines;
    rr.max_machine_memory = std::max(rr.max_machine_memory, m.memory_footprint());
    rr.total_comm_bytes += m.output_bytes;
    rr.total_input_bytes += m.input_bytes;
    rr.total_work += m.work;
    rr.max_machine_work = std::max(rr.max_machine_work, m.work);
    if (m.memory_footprint() > cap) ++rr.memory_violations;
  }
  return rr;
}

// ---------------------------------------------------------------------
// Ulam batch: every query's block machines share round 1, every query's
// combine machine shares round 2.  Mailbox = query id.
// ---------------------------------------------------------------------

/// Round-1 machine input: one block of one query.
struct UlamBatchTask {
  std::uint32_t query = 0;
  std::int64_t begin = 0;
  std::vector<std::int64_t> positions;

  static constexpr auto fields() {
    return std::make_tuple(&UlamBatchTask::query, &UlamBatchTask::begin,
                           &UlamBatchTask::positions);
  }
};

struct QueryMeta {
  std::int64_t n = 0;
  std::int64_t n_bar = 0;
  std::uint64_t cap = 0;
  bool degenerate = false;  ///< answered driver-side, owns no machines
};

BatchResult run_ulam_batch(const BatchRequest& request) {
  const auto& params = request.ulam;
  BatchResult result;
  result.queries.resize(request.queries.size());

  std::vector<QueryMeta> meta(request.queries.size());
  std::vector<UlamBatchTask> tasks;
  std::vector<std::uint64_t> task_limits;
  std::vector<std::uint32_t> task_owner;
  for (std::uint32_t q = 0; q < request.queries.size(); ++q) {
    const BatchQuery& query = request.queries[q];
    MPCSD_EXPECTS(seq::is_repeat_free(SymView(query.s)));
    MPCSD_EXPECTS(seq::is_repeat_free(SymView(query.t)));
    QueryMeta& m = meta[q];
    m.n = static_cast<std::int64_t>(query.s.size());
    m.n_bar = static_cast<std::int64_t>(query.t.size());
    if (m.n == 0) {
      m.degenerate = true;
      result.queries[q].distance = m.n_bar;
      continue;
    }
    m.cap = ulam_mpc::ulam_memory_cap_bytes(m.n, params);
    result.queries[q].memory_cap_bytes = m.cap;

    std::unordered_map<Symbol, std::int64_t> pos_in_t;
    pos_in_t.reserve(query.t.size() * 2);
    for (std::size_t j = 0; j < query.t.size(); ++j) {
      pos_in_t.emplace(query.t[j], static_cast<std::int64_t>(j));
    }
    const std::int64_t block =
        std::max<std::int64_t>(1, ipow_ceil(m.n, 1.0 - params.x));
    for (std::int64_t begin = 0; begin < m.n; begin += block) {
      const std::int64_t end = std::min(m.n, begin + block);
      UlamBatchTask task;
      task.query = q;
      task.begin = begin;
      task.positions.reserve(static_cast<std::size_t>(end - begin));
      for (std::int64_t i = begin; i < end; ++i) {
        const auto it = pos_in_t.find(query.s[static_cast<std::size_t>(i)]);
        task.positions.push_back(it == pos_in_t.end() ? -1 : it->second);
      }
      tasks.push_back(std::move(task));
      task_limits.push_back(m.cap);
      task_owner.push_back(q);
    }
  }

  mpc::ClusterConfig config;
  config.memory_limit_bytes = UINT64_MAX;  // per-machine limits carry the caps
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  mpc::Driver driver(
      mpc::Plan{"batch:ulam",
                {
                    {"batch:ulam:candidates", "UlamBatchTask (sharded input)",
                     "tuples@query"},
                    {"batch:ulam:combine", "Inbox<tuples>@query", "answer@query"},
                }},
      config);

  const double eps_prime = params.epsilon / 2.0;
  const mpc::Stage<UlamBatchTask> candidates_stage{
      "batch:ulam:candidates", [&](mpc::StageContext<UlamBatchTask>& ctx) {
        const QueryMeta& m = meta[ctx.in().query];
        ulam_mpc::CandidateParams cp;
        cp.eps_prime = eps_prime;
        cp.theta_constant = params.theta_constant;
        cp.n = m.n;
        cp.n_bar = m.n_bar;
        ulam_mpc::CandidateStats st;
        const auto tuples = ulam_mpc::build_block_candidates(
            ctx.in().begin, ctx.in().positions, cp, ctx.rng(), &st);
        ctx.charge_work(st.work);
        ctx.charge_scratch(ctx.in().positions.size() * 32);
        ctx.send(mpc::Channel<std::vector<seq::Tuple>>(ctx.in().query), tuples);
      }};
  std::vector<mpc::MachineReport> reports1;
  mpc::RoundOptions options1;
  options1.machine_memory_limits = &task_limits;
  options1.machine_reports = &reports1;
  const auto mail =
      driver.run(candidates_stage, mpc::Driver::shard(tasks), options1);

  // One combine machine per live query.
  std::vector<std::uint32_t> combine_query;
  std::vector<ByteChain> combine_inputs;
  std::vector<std::uint64_t> combine_limits;
  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    if (meta[q].degenerate) continue;
    combine_query.push_back(q);
    combine_inputs.push_back(mpc::gather_view(mail, q));
    combine_limits.push_back(meta[q].cap);
  }

  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  std::vector<std::int64_t> answers(meta.size(), 0);
  const mpc::Stage<TupleInbox> combine_stage{
      "batch:ulam:combine", [&](mpc::StageContext<TupleInbox>& ctx) {
        const std::uint32_t q = combine_query[ctx.machine_id()];
        const QueryMeta& m = meta[q];
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const std::size_t tuple_count = tuples.size();
        seq::CombineOptions copts;
        copts.gap = params.combine_gap;
        answers[q] =
            seq::combine_tuples(std::move(tuples), m.n, m.n_bar, copts, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(mpc::Channel<std::int64_t>(q), answers[q]);
      }};
  std::vector<mpc::MachineReport> reports2;
  mpc::RoundOptions options2;
  options2.machine_memory_limits = &combine_limits;
  options2.machine_reports = &reports2;
  driver.run_views(combine_stage, combine_inputs, options2);
  driver.finish();

  // Per-query trace attribution from the machine reports.
  std::vector<std::uint32_t> combine_owner = combine_query;
  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    if (meta[q].degenerate) continue;
    result.queries[q].distance = answers[q];
    result.queries[q].trace.add_round(attribute_round(
        "batch:ulam:candidates", reports1, task_owner, q, meta[q].cap));
    result.queries[q].trace.add_round(attribute_round(
        "batch:ulam:combine", reports2, combine_owner, q, meta[q].cap));
  }
  result.trace = driver.take_trace();
  MPCSD_ENSURES(result.trace.round_count() == 2);
  return result;
}

// ---------------------------------------------------------------------
// Edit batch: every (query, guess) cell of the small-distance regime runs
// side by side — cell machines share round 1, cell combine machines share
// round 2.  Mailbox = cell id.
// ---------------------------------------------------------------------

/// One (query, guess) pipeline instance.
struct EditCell {
  std::uint32_t query = 0;
  std::int64_t guess = 0;
  edit_mpc::SmallDistanceParams params;
  edit_mpc::CandidateGeometry geo;
};

/// Round-1 machine input: one small-distance task of one cell.
struct EditBatchTask {
  std::uint32_t cell = 0;
  edit_mpc::SmallTask task;

  static constexpr auto fields() {
    return std::make_tuple(&EditBatchTask::cell, &EditBatchTask::task);
  }
};

BatchResult run_edit_batch(const BatchRequest& request) {
  const auto& params = request.edit;
  BatchResult result;
  result.queries.resize(request.queries.size());

  const double eps_prime = edit_mpc::edit_eps_prime(params);
  std::vector<QueryMeta> meta(request.queries.size());
  std::vector<EditCell> cells;
  std::vector<std::vector<std::uint32_t>> query_cells(request.queries.size());
  std::vector<EditBatchTask> tasks;
  std::vector<std::uint64_t> task_limits;
  std::vector<std::uint32_t> task_owner;

  for (std::uint32_t q = 0; q < request.queries.size(); ++q) {
    const BatchQuery& query = request.queries[q];
    QueryMeta& m = meta[q];
    m.n = static_cast<std::int64_t>(query.s.size());
    m.n_bar = static_cast<std::int64_t>(query.t.size());
    if (m.n == m.n_bar &&
        std::equal(query.s.begin(), query.s.end(), query.t.begin())) {
      m.degenerate = true;
      continue;
    }
    if (m.n == 0 || m.n_bar == 0) {
      m.degenerate = true;
      result.queries[q].distance = std::max(m.n, m.n_bar);
      continue;
    }
    m.cap = edit_mpc::edit_memory_cap_bytes(m.n, params);
    result.queries[q].memory_cap_bytes = m.cap;

    // The guess ladder, clipped to the small-distance regime.
    const std::int64_t small_limit = edit_mpc::small_distance_limit(m.n, params.x);
    std::uint64_t guess_seed = params.seed + q * 0x9e3779b97f4a7c15ULL;
    for (const std::int64_t guess :
         geometric_grid(std::max(m.n, m.n_bar), params.epsilon)) {
      if (guess == 0 || guess > small_limit) continue;
      guess_seed = splitmix64(guess_seed + static_cast<std::uint64_t>(guess));
      EditCell cell;
      cell.query = q;
      cell.guess = guess;
      cell.params.eps_prime = eps_prime;
      cell.params.x = params.x;
      cell.params.delta_guess = guess;
      cell.params.unit = params.unit;
      cell.params.approx = params.approx;
      cell.params.seed = guess_seed;
      cell.params.strict_memory = params.strict_memory;
      cell.params.memory_cap_bytes = m.cap;
      cell.geo = edit_mpc::small_geometry(m.n, m.n_bar, cell.params);

      const auto cell_id = static_cast<std::uint32_t>(cells.size());
      for (auto& task : edit_mpc::make_small_tasks(SymView(query.s),
                                                   SymView(query.t),
                                                   cell.params, cell.geo)) {
        tasks.push_back(EditBatchTask{cell_id, std::move(task)});
        task_limits.push_back(m.cap);
        task_owner.push_back(q);
      }
      query_cells[q].push_back(cell_id);
      cells.push_back(std::move(cell));
    }
  }

  mpc::ClusterConfig config;
  config.memory_limit_bytes = UINT64_MAX;  // per-machine limits carry the caps
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  mpc::Driver driver(
      mpc::Plan{"batch:edit",
                {
                    {"batch:edit:distances", "EditBatchTask (sharded input)",
                     "tuples@cell"},
                    {"batch:edit:combine", "Inbox<tuples>@cell", "answer@cell"},
                }},
      config);

  const mpc::Stage<EditBatchTask> distances_stage{
      "batch:edit:distances", [&](mpc::StageContext<EditBatchTask>& ctx) {
        const EditCell& cell = cells[ctx.in().cell];
        std::uint64_t work = 0;
        const auto tuples = edit_mpc::small_task_tuples(ctx.in().task, cell.params,
                                                        cell.geo, &work);
        ctx.charge_work(work);
        ctx.charge_scratch((ctx.in().task.block.size() + ctx.in().task.chunk.size()) *
                           sizeof(Symbol));
        ctx.send(mpc::Channel<std::vector<seq::Tuple>>(ctx.in().cell), tuples);
      }};
  std::vector<mpc::MachineReport> reports1;
  mpc::RoundOptions options1;
  options1.machine_memory_limits = &task_limits;
  options1.machine_reports = &reports1;
  const auto mail =
      driver.run(distances_stage, mpc::Driver::shard(tasks), options1);

  // One combine machine per cell.
  std::vector<ByteChain> combine_inputs;
  std::vector<std::uint64_t> combine_limits;
  std::vector<std::uint32_t> combine_owner;
  for (std::uint32_t c = 0; c < cells.size(); ++c) {
    combine_inputs.push_back(mpc::gather_view(mail, c));
    combine_limits.push_back(meta[cells[c].query].cap);
    combine_owner.push_back(cells[c].query);
  }

  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  std::vector<std::int64_t> cell_answers(cells.size(), 0);
  const mpc::Stage<TupleInbox> combine_stage{
      "batch:edit:combine", [&](mpc::StageContext<TupleInbox>& ctx) {
        const auto c = static_cast<std::uint32_t>(ctx.machine_id());
        const QueryMeta& m = meta[cells[c].query];
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const std::size_t tuple_count = tuples.size();
        seq::CombineOptions copts;
        copts.gap = seq::GapCost::kSum;
        cell_answers[c] =
            seq::combine_tuples(std::move(tuples), m.n, m.n_bar, copts, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(mpc::Channel<std::int64_t>(c), cell_answers[c]);
      }};
  std::vector<mpc::MachineReport> reports2;
  mpc::RoundOptions options2;
  options2.machine_memory_limits = &combine_limits;
  options2.machine_reports = &reports2;
  driver.run_views(combine_stage, combine_inputs, options2);
  driver.finish();

  for (std::uint32_t q = 0; q < meta.size(); ++q) {
    if (meta[q].degenerate) continue;
    // The guesses ran side by side; pick the best answer and record the
    // first self-certifying guess (the solver's accept condition).
    std::int64_t best = meta[q].n + meta[q].n_bar;
    std::int64_t accepted = 0;
    for (const std::uint32_t c : query_cells[q]) {
      best = std::min(best, cell_answers[c]);
      if (accepted == 0) {
        const auto accept = static_cast<std::int64_t>(std::ceil(
                                (3.0 + params.epsilon) *
                                static_cast<double>(cells[c].guess))) + 2;
        if (cell_answers[c] <= accept) accepted = cells[c].guess;
      }
    }
    result.queries[q].distance = best;
    result.queries[q].accepted_guess = accepted;
    result.queries[q].trace.add_round(attribute_round(
        "batch:edit:distances", reports1, task_owner, q, meta[q].cap));
    result.queries[q].trace.add_round(attribute_round(
        "batch:edit:combine", reports2, combine_owner, q, meta[q].cap));
  }
  result.trace = driver.take_trace();
  MPCSD_ENSURES(result.trace.round_count() == 2);
  return result;
}

}  // namespace

BatchResult distance_batch(const BatchRequest& request) {
  if (request.queries.empty()) return BatchResult{};
  switch (request.algorithm) {
    case BatchAlgorithm::kUlam:
      return run_ulam_batch(request);
    case BatchAlgorithm::kEdit:
      return run_edit_batch(request);
  }
  throw std::invalid_argument("distance_batch: unknown algorithm");
}

}  // namespace mpcsd::core
