#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mpcsd::core {

SymString random_string(std::int64_t n, Symbol alphabet, std::uint64_t seed) {
  MPCSD_EXPECTS(n >= 0 && alphabet > 0);
  Pcg32 rng = derive_stream(seed, 0xA11CE);
  SymString out(static_cast<std::size_t>(n));
  for (auto& v : out) v = static_cast<Symbol>(rng.below(static_cast<std::uint32_t>(alphabet)));
  return out;
}

SymString random_permutation(std::int64_t n, std::uint64_t seed) {
  MPCSD_EXPECTS(n >= 0);
  SymString out(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), 0);
  Pcg32 rng = derive_stream(seed, 0x9E12);
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.below(static_cast<std::uint32_t>(i))]);
  }
  return out;
}

SymString random_dna(std::int64_t n, std::uint64_t seed) {
  return random_string(n, 4, seed);
}

PlantedResult plant_edits(SymView base, std::int64_t k, std::uint64_t seed,
                          bool repeat_free, Symbol alphabet) {
  MPCSD_EXPECTS(k >= 0);
  PlantedResult out;
  out.text.assign(base.begin(), base.end());
  Pcg32 rng = derive_stream(seed, 0xED17);

  // Fresh-symbol counter for repeat-free edits.
  Symbol next_fresh = 0;
  if (repeat_free) {
    for (const Symbol v : base) next_fresh = std::max(next_fresh, v);
    ++next_fresh;
  }
  auto draw_symbol = [&]() -> Symbol {
    if (repeat_free) return next_fresh++;
    return static_cast<Symbol>(rng.below(static_cast<std::uint32_t>(alphabet)));
  };

  for (std::int64_t i = 0; i < k; ++i) {
    const std::uint32_t op = rng.below(3);
    const auto size = static_cast<std::uint32_t>(out.text.size());
    if (op == 0 || out.text.empty()) {
      // insert
      const std::uint32_t pos = rng.below(size + 1);
      out.text.insert(out.text.begin() + pos, draw_symbol());
    } else if (op == 1) {
      // delete
      const std::uint32_t pos = rng.below(size);
      out.text.erase(out.text.begin() + pos);
    } else {
      // substitute
      const std::uint32_t pos = rng.below(size);
      out.text[pos] = draw_symbol();
    }
    ++out.edits_applied;
  }
  return out;
}

SymString rotate_by(SymView base, std::int64_t shift) {
  SymString out(base.begin(), base.end());
  if (out.empty()) return out;
  const auto n = static_cast<std::int64_t>(out.size());
  shift = ((shift % n) + n) % n;
  std::rotate(out.begin(), out.begin() + shift, out.end());
  return out;
}

SymString zipf_text(std::int64_t n, Symbol vocabulary, double skew,
                    std::uint64_t seed) {
  MPCSD_EXPECTS(n >= 0 && vocabulary > 0 && skew >= 0.0);
  // Inverse-CDF sampling over rank probabilities 1/rank^skew.
  std::vector<double> cdf(static_cast<std::size_t>(vocabulary));
  double total = 0.0;
  for (Symbol r = 0; r < vocabulary; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf[static_cast<std::size_t>(r)] = total;
  }
  Pcg32 rng = derive_stream(seed, 0x21FF);
  SymString out(static_cast<std::size_t>(n));
  for (auto& v : out) {
    const double u = rng.uniform01() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    v = static_cast<Symbol>(it - cdf.begin());
  }
  return out;
}

PlantedResult burst_edits(SymView base, std::int64_t bursts,
                          std::int64_t per_burst, std::uint64_t seed,
                          bool repeat_free, Symbol alphabet) {
  MPCSD_EXPECTS(bursts >= 0 && per_burst >= 0);
  PlantedResult out;
  out.text.assign(base.begin(), base.end());
  Pcg32 rng = derive_stream(seed, 0xB57);
  Symbol next_fresh = 0;
  if (repeat_free) {
    for (const Symbol v : base) next_fresh = std::max(next_fresh, v);
    ++next_fresh;
  }
  for (std::int64_t b = 0; b < bursts; ++b) {
    if (out.text.empty()) break;
    // A hotspot: per_burst consecutive substitutions/indels near one spot.
    std::uint32_t pos = rng.below(static_cast<std::uint32_t>(out.text.size()));
    for (std::int64_t e = 0; e < per_burst; ++e) {
      const auto size = static_cast<std::uint32_t>(out.text.size());
      if (pos >= size) pos = size == 0 ? 0 : size - 1;
      const std::uint32_t op = rng.below(3);
      const Symbol fresh = repeat_free
                               ? next_fresh++
                               : static_cast<Symbol>(rng.below(
                                     static_cast<std::uint32_t>(alphabet)));
      if (op == 0 || out.text.empty()) {
        out.text.insert(out.text.begin() + pos, fresh);
      } else if (op == 1 && !out.text.empty()) {
        out.text.erase(out.text.begin() + pos);
      } else {
        out.text[pos] = fresh;
      }
      ++out.edits_applied;
      if (pos + 1 < out.text.size()) ++pos;
    }
  }
  return out;
}

std::vector<QueryPair> near_duplicate_pairs(std::int64_t n, std::size_t count,
                                            double near_fraction,
                                            std::int64_t tail_edits,
                                            std::uint64_t seed,
                                            Symbol alphabet) {
  MPCSD_EXPECTS(n >= 0 && near_fraction >= 0.0 && near_fraction <= 1.0);
  MPCSD_EXPECTS(tail_edits >= 0);
  // The four planted distances the near-duplicate mass cycles through:
  // exact hits, single-character fixes, and small touch-ups.
  constexpr std::int64_t kNearEdits[] = {0, 1, 2, 8};
  std::vector<QueryPair> out;
  out.reserve(count);
  // Fractional accumulation interleaves near and tail pairs at the exact
  // requested ratio with no RNG in the schedule: pair i is near iff the
  // running near-quota crosses the next integer at i.
  double quota = 0.0;
  std::size_t near_emitted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    quota += near_fraction;
    const bool near = quota >= static_cast<double>(near_emitted + 1);
    if (near) ++near_emitted;
    const std::uint64_t pair_seed =
        seed + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    QueryPair pair;
    pair.s = random_string(n, alphabet, pair_seed);
    // Cycle the near ladder by near-pair ordinal, not global index, so the
    // {0, 1, 2, 8} mix stays uniform at every near_fraction.
    const std::int64_t edits =
        near ? kNearEdits[(near_emitted - 1) % std::size(kNearEdits)]
             : tail_edits;
    if (edits == 0) {
      pair.t = pair.s;
    } else {
      auto planted = plant_edits(pair.s, edits, pair_seed + 1, false, alphabet);
      pair.t = std::move(planted.text);
      pair.planted = planted.edits_applied;
    }
    out.push_back(std::move(pair));
  }
  return out;
}

SymString block_shuffle(SymView base, std::int64_t block, std::uint64_t seed) {
  MPCSD_EXPECTS(block > 0);
  const auto n = static_cast<std::int64_t>(base.size());
  std::vector<std::int64_t> order;
  for (std::int64_t b = 0; b < n; b += block) order.push_back(b);
  Pcg32 rng = derive_stream(seed, 0xB10C);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(static_cast<std::uint32_t>(i))]);
  }
  SymString out;
  out.reserve(base.size());
  for (const std::int64_t b : order) {
    const std::int64_t e = std::min(n, b + block);
    out.insert(out.end(), base.begin() + b, base.begin() + e);
  }
  return out;
}

}  // namespace mpcsd::core
