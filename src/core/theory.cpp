#include "core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace mpcsd::core {

double ulam_machines_exponent(double x) { return x; }
double ulam_work_exponent(double /*x*/) { return 1.0; }

double edit_machines_exponent(double x) { return 9.0 / 5.0 * x; }

double edit_work_exponent(double x) {
  return 2.0 - std::min((1.0 - x) / 6.0, 2.0 * x / 5.0);
}

double edit_parallel_exponent(double x) {
  return 2.0 - std::min((5.0 + 49.0 * x) / 30.0, 11.0 * x / 5.0);
}

double hss_machines_exponent(double x) { return 2.0 * x; }

std::vector<TheoryRow> table1_rows(double x) {
  return {
      TheoryRow{"Ulam (Theorem 4)", "1+eps", 2, 1.0 - x, ulam_machines_exponent(x),
                ulam_work_exponent(x)},
      TheoryRow{"Edit (Theorem 9)", "3+eps", 4, 1.0 - x, edit_machines_exponent(x),
                edit_work_exponent(x)},
      TheoryRow{"Edit [20] baseline", "1+eps", 2, 1.0 - x,
                hss_machines_exponent(x), 2.0},
  };
}

double fit_exponent(const std::vector<double>& n, const std::vector<double>& y) {
  MPCSD_EXPECTS(n.size() == y.size());
  MPCSD_EXPECTS(n.size() >= 2);
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  const auto m = static_cast<double>(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) {
    MPCSD_EXPECTS(n[i] > 0.0 && y[i] > 0.0);
    const double lx = std::log(n[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = m * sxx - sx * sx;
  MPCSD_EXPECTS(std::abs(denom) > 1e-12);
  return (m * sxy - sx * sy) / denom;
}

}  // namespace mpcsd::core
