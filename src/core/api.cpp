#include "core/api.hpp"

// The facade is header-only; this translation unit exists to give the core
// library an object file and to guarantee the umbrella header compiles
// stand-alone.
