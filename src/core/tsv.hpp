// The batch TSV wire format of the CLI (`mpcsd_cli batch`): one
// TAB-separated (s, t) pair per line, blank lines skipped.  Each side is
// parsed with the CLI symbol rule — numeric mode when every
// whitespace-separated token is an integer, byte-wise text mode otherwise.
//
// The parser lives in the library (not the CLI) so it is a fuzzable attack
// surface: `fuzz/fuzz_batch_tsv.cpp` drives it with arbitrary bytes, and
// the CLI shares the exact code path the fuzzer certifies.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch.hpp"

namespace mpcsd::core {

/// The CLI symbol rule: integers if every token parses as one, else bytes.
[[nodiscard]] SymString parse_symbols(std::string_view text);

struct TsvError {
  std::size_t line = 0;  ///< 1-based line number, 0 for whole-input errors
  std::string message;
};

/// Parses batch TSV into queries.  Returns std::nullopt and fills `*error`
/// (when non-null) on a malformed line — no TAB, or, for `kUlam`, a side
/// that is not repeat-free.  An input with no pairs is an error: the CLI
/// treats an empty batch as operator error, and the parser owns that rule.
[[nodiscard]] std::optional<std::vector<BatchQuery>> parse_batch_tsv(
    std::string_view text, BatchAlgorithm algorithm, TsvError* error = nullptr);

}  // namespace mpcsd::core
