#include "core/router.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "seq/edit_distance_os.hpp"

namespace mpcsd::core {

namespace {

// ---------------------------------------------------------------------------
// Cost-model constants.  Calibrated against BENCH_PR8 on the reference
// machine; scripts/lint.sh (rule 9) confines every kRouter* identifier to
// this translation unit and its header so re-calibration never touches the
// engine.  All figures are nanoseconds unless noted.

/// Per-pass driver overhead of one kThroughput rung (plan build, routing
/// tables, round barriers), amortised over the live queries sharing it.
constexpr double kRouterPassSharedNs = 200e3;

/// Per-query fixed cost of one rung: cell construction, seed derivation,
/// result combine.
constexpr double kRouterQueryPassNs = 100e3;

/// Per-symbol cost of one rung's machine work, parallelised over the
/// workers the plan runs on.
constexpr double kRouterQueryPassPerSymNs = 150.0;

/// Fixed cost of the sequential fast path (trim scans, mask-cache build).
constexpr double kRouterSeqSetupNs = 2e3;

/// Cost per 64-cell word of the banded bit-parallel kernel.
constexpr double kRouterSeqWordNs = 2.5;

/// The probe must undercut the predicted rung share by this factor before
/// the router spends sequential time on it (the doubling ladder's failed
/// attempts and model error live in the slack).
constexpr double kRouterMargin = 0.75;

/// Histogram lower bound only for compact alphabets: a span wider than
/// this would make the dense count array cost more than it saves.
constexpr std::int64_t kRouterHistSpanMax = 4096;

// ---------------------------------------------------------------------------

std::size_t common_prefix(SymView a, SymView b) {
  const std::size_t lim = std::min(a.size(), b.size());
  std::size_t p = 0;
  while (p < lim && a[p] == b[p]) ++p;
  return p;
}

std::size_t common_suffix(SymView a, SymView b) {
  const std::size_t lim = std::min(a.size(), b.size());
  std::size_t s = 0;
  while (s < lim && a[a.size() - 1 - s] == b[b.size() - 1 - s]) ++s;
  return s;
}

/// ed >= ceil(sum_c |count_a(c) - count_b(c)| / 2): a substitution moves
/// two counts by one, an indel moves one.  0 when the alphabet span is too
/// wide to histogram cheaply.
std::int64_t histogram_lower_bound(SymView a, SymView b) {
  if (a.empty() && b.empty()) return 0;
  Symbol lo = a.empty() ? b.front() : a.front();
  Symbol hi = lo;
  for (const Symbol c : a) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  for (const Symbol c : b) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  const auto span = static_cast<std::int64_t>(hi) - lo + 1;
  if (span > kRouterHistSpanMax) return 0;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(span), 0);
  for (const Symbol c : a) ++counts[static_cast<std::size_t>(c - lo)];
  for (const Symbol c : b) --counts[static_cast<std::size_t>(c - lo)];
  std::int64_t mismatch = 0;
  for (const std::int64_t d : counts) mismatch += std::abs(d);
  return (mismatch + 1) / 2;
}

}  // namespace

std::optional<RouterPolicy> router_policy_from_string(std::string_view name) {
  if (name == "off") return RouterPolicy::kOff;
  if (name == "auto") return RouterPolicy::kAuto;
  if (name == "always-seq") return RouterPolicy::kAlwaysSeq;
  return std::nullopt;
}

const char* router_policy_name(RouterPolicy policy) noexcept {
  switch (policy) {
    case RouterPolicy::kDefault:
      return "default";
    case RouterPolicy::kOff:
      return "off";
    case RouterPolicy::kAuto:
      return "auto";
    case RouterPolicy::kAlwaysSeq:
      return "always-seq";
  }
  return "off";
}

RouterPolicyResolution resolve_router_policy(RouterPolicy requested,
                                             const char* env) noexcept {
  if (requested != RouterPolicy::kDefault) return {requested, true};
  if (env == nullptr) return {RouterPolicy::kOff, true};
  if (const auto parsed = router_policy_from_string(env)) {
    return {*parsed, true};
  }
  return {RouterPolicy::kOff, false};
}

RouterPolicy resolved_router_policy(RouterPolicy requested) {
  const char* env = std::getenv("MPCSD_ROUTER");
  const RouterPolicyResolution resolved = resolve_router_policy(requested, env);
  if (!resolved.recognised) {
    static std::atomic<bool> warned{false};
    warn_env_once(warned, "MPCSD_ROUTER", env, "off|auto|always-seq",
                  "router disabled");
  }
  return resolved.policy;
}

QueryPrefilter prefilter_query(SymView s, SymView t) {
  QueryPrefilter out;
  if (s.size() > t.size()) std::swap(s, t);
  out.prefix = static_cast<std::int64_t>(common_prefix(s, t));
  SymView a = s.subspan(static_cast<std::size_t>(out.prefix));
  SymView b = t.subspan(static_cast<std::size_t>(out.prefix));
  out.suffix = static_cast<std::int64_t>(common_suffix(a, b));
  a = a.subspan(0, a.size() - static_cast<std::size_t>(out.suffix));
  b = b.subspan(0, b.size() - static_cast<std::size_t>(out.suffix));
  out.core_n = static_cast<std::int64_t>(a.size());
  out.core_n_bar = static_cast<std::int64_t>(b.size());
  if (out.core_n_bar == 0) {
    out.equal = true;
    return out;
  }
  // Unequal strings: at least one edit, at least the length gap, at least
  // the histogram mismatch on the differing cores.
  out.lower_bound = std::max<std::int64_t>(
      {1, out.core_n_bar - out.core_n, histogram_lower_bound(a, b)});
  return out;
}

RouterBudget router_budget(std::int64_t core_n, std::int64_t core_n_bar,
                           std::size_t batch_live, std::size_t workers) {
  MPCSD_EXPECTS(core_n >= 0 && core_n_bar >= core_n);
  RouterBudget out;
  const double live = static_cast<double>(std::max<std::size_t>(1, batch_live));
  const double w = static_cast<double>(std::max<std::size_t>(1, workers));
  out.plan_ns = kRouterPassSharedNs / live + kRouterQueryPassNs +
                static_cast<double>(core_n_bar) * kRouterQueryPassPerSymNs / w;

  // Invert seq_ns(k) = setup + (n_bar + 1) * (2k/64 + 2) * word_ns for the
  // largest k still under margin * plan_ns.
  const double word_budget =
      (kRouterMargin * out.plan_ns - kRouterSeqSetupNs) / kRouterSeqWordNs;
  const double cols = static_cast<double>(core_n_bar + 1);
  const double k_real = (word_budget / cols - 2.0) * 32.0;
  const auto k_cap = static_cast<std::int64_t>(std::floor(
      std::clamp(k_real, 0.0, static_cast<double>(core_n_bar))));
  out.k_cap = k_cap;
  const double words = cols * (2.0 * static_cast<double>(k_cap) / 64.0 + 2.0);
  out.seq_ns = kRouterSeqSetupNs + words * kRouterSeqWordNs;
  return out;
}

RouteDecision route_query(SymView s, SymView t, RouterPolicy policy,
                          std::size_t batch_live, std::size_t workers) {
  RouteDecision out;
  if (policy == RouterPolicy::kOff || policy == RouterPolicy::kDefault) {
    return out;  // untouched: the plan sees the query exactly as before
  }

  const QueryPrefilter pf = prefilter_query(s, t);
  if (pf.equal) {
    out.retire = true;
    out.distance = 0;
    return out;
  }
  if (pf.core_n == 0) {
    // One core empty after trim: distance is the surviving length, free.
    out.retire = true;
    out.distance = pf.core_n_bar;
    return out;
  }

  if (policy == RouterPolicy::kAlwaysSeq) {
    out.retire = true;
    out.probed = true;
    out.k_cap = pf.core_n_bar;
    out.distance = seq::edit_distance_output_sensitive(s, t, nullptr);
    return out;
  }

  MPCSD_EXPECTS(policy == RouterPolicy::kAuto);
  const RouterBudget budget =
      router_budget(pf.core_n, pf.core_n_bar, batch_live, workers);
  out.k_cap = budget.k_cap;
  out.lower_bound = pf.lower_bound;
  if (pf.lower_bound > budget.k_cap) {
    // The prefilters already prove the probe would censor; skip it and let
    // the driver start the ladder at the first certifiable rung.
    return out;
  }
  const auto probe =
      seq::edit_distance_output_sensitive_bounded(s, t, budget.k_cap, nullptr);
  out.probed = true;
  if (probe.has_value()) {
    out.retire = true;
    out.distance = *probe;
    return out;
  }
  // Censored: the capped probe proves ed > k_cap.
  out.lower_bound = std::max(pf.lower_bound, budget.k_cap + 1);
  return out;
}

}  // namespace mpcsd::core
