// Synthetic workload generators (DESIGN.md substitution for the paper's
// genome-scale motivating inputs).
//
// All generators are deterministic in their seed.  `plant_edits` is the
// workhorse: it applies k random edit operations to a base string and
// reports the number actually applied, which upper-bounds the true distance
// (benchmarks compute the exact distance where feasible and use the bound
// as the scale knob elsewhere).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "seq/types.hpp"

namespace mpcsd::core {

/// Uniform random string of length n over an alphabet of `alphabet` symbols.
SymString random_string(std::int64_t n, Symbol alphabet, std::uint64_t seed);

/// Uniform random permutation of {0, ..., n-1} (repeat-free by
/// construction — the canonical Ulam-distance input).
SymString random_permutation(std::int64_t n, std::uint64_t seed);

/// Random string over the DNA alphabet {A, C, G, T} (as symbol codes).
SymString random_dna(std::int64_t n, std::uint64_t seed);

struct PlantedResult {
  SymString text;               ///< the edited string
  std::int64_t edits_applied = 0;  ///< number of edit operations performed
};

/// Applies `k` random edits (insert / delete / substitute, equally likely)
/// to `base`.  When `repeat_free` is set, inserted/substituted symbols are
/// fresh (never seen), so the result stays repeat-free.
/// ed(base, result) <= edits_applied.
PlantedResult plant_edits(SymView base, std::int64_t k, std::uint64_t seed,
                          bool repeat_free, Symbol alphabet = 4);

/// Cuts `base` into blocks of the given size and permutes the blocks — the
/// adversarial input family for the large-distance regime (every block is
/// far from its original position).
SymString block_shuffle(SymView base, std::int64_t block, std::uint64_t seed);

/// Rotation by `shift` positions — the canonical "everything moved, nothing
/// changed" workload for the hitting-set/extension machinery.
SymString rotate_by(SymView base, std::int64_t shift);

/// Zipf-distributed token stream over `vocabulary` symbols with the given
/// skew (s ~ 1.0 mimics natural-language token frequencies) — a repetitive
/// workload family (hard for alignment heuristics, unlike uniform noise).
SymString zipf_text(std::int64_t n, Symbol vocabulary, double skew,
                    std::uint64_t seed);

/// Burst edits: `bursts` clusters of `per_burst` consecutive edit
/// operations each (mutation hotspots), instead of uniformly spread edits.
/// Returns the edited string; ed(base, result) <= bursts * per_burst.
PlantedResult burst_edits(SymView base, std::int64_t bursts,
                          std::int64_t per_burst, std::uint64_t seed,
                          bool repeat_free, Symbol alphabet = 4);

/// One query pair of a skewed batch workload.
struct QueryPair {
  SymString s;
  SymString t;
  std::int64_t planted = 0;  ///< edits applied; ed(s, t) <= planted
};

/// The serving-system workload the query router targets: `count` pairs of
/// which a `near_fraction` are near-duplicates (planted distance drawn
/// uniformly from {0, 1, 2, 8}) and the rest form a heavy tail of
/// `tail_edits` planted edits each.  Near and tail pairs are interleaved
/// deterministically (fractional accumulation, no RNG in the schedule), and
/// each pair derives its own stream from `seed` — dropping or reordering
/// pairs never changes the others.
std::vector<QueryPair> near_duplicate_pairs(std::int64_t n, std::size_t count,
                                            double near_fraction,
                                            std::int64_t tail_edits,
                                            std::uint64_t seed,
                                            Symbol alphabet = 4);

}  // namespace mpcsd::core
