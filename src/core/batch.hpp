// Batched multi-query execution on the round-plan layer.
//
// `distance_batch` runs B independent (s, t) queries through a SINGLE plan
// execution: machines of different queries coexist in the same simulated
// rounds, so a batch of 64 Ulam queries still costs 2 rounds, and a batch
// of edit queries costs 2 rounds (every query's distance guesses run side
// by side, the paper's parallel-guess semantics made literal).  Mailboxes
// are partitioned per query, per-machine memory caps are enforced at each
// query's own Õ_eps(n^{1-x}) budget (RoundOptions), and every query gets
// its own attributed ExecutionTrace built from the machine-level reports.
//
// Edit batches run the guess ladder restricted to the small-distance regime
// (n^delta <= n^{1-x/5}, Lemma 6).  The returned distance is always the
// cost of a realizable transformation (an upper bound on ed); the 3+eps
// guarantee holds whp when the true distance lies in that regime — the
// serving-system sweet spot the batching exists for.  Queries needing the
// large-distance pipeline should go through `edit_distance_mpc`.
#pragma once

#include <cstdint>
#include <vector>

#include "edit_mpc/solver.hpp"
#include "mpc/stats.hpp"
#include "seq/types.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd::core {

enum class BatchAlgorithm : std::uint8_t {
  kUlam,  ///< Theorem 4 (strings must be repeat-free)
  kEdit,  ///< Theorem 9, small-distance regime
};

struct BatchQuery {
  std::vector<Symbol> s;
  std::vector<Symbol> t;
};

struct BatchRequest {
  BatchAlgorithm algorithm = BatchAlgorithm::kUlam;
  std::vector<BatchQuery> queries;
  /// Solver settings for kUlam batches (x, epsilon, seed, workers,
  /// strict_memory, memory_slack, combine_gap).
  ulam_mpc::UlamMpcParams ulam;
  /// Solver settings for kEdit batches (x, epsilon, unit, seed, ...).
  edit_mpc::EditMpcParams edit;
};

struct QueryResult {
  std::int64_t distance = 0;
  /// First guess whose answer certified itself (kEdit; 0 for kUlam).
  std::int64_t accepted_guess = 0;
  /// This query's own per-machine cap, enforced on its machines only.
  std::uint64_t memory_cap_bytes = 0;
  /// This query's share of the shared rounds: labels, machine counts,
  /// work, comm bytes, memory maxima — attributed from machine reports.
  mpc::ExecutionTrace trace;
};

struct BatchResult {
  std::vector<QueryResult> queries;
  /// The shared physical execution: 2 rounds regardless of batch size.
  mpc::ExecutionTrace trace;
};

/// Runs every query of `request` in one shared plan execution.
BatchResult distance_batch(const BatchRequest& request);

}  // namespace mpcsd::core
