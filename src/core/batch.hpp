// Batched multi-query execution on the round-plan layer.
//
// `distance_batch` runs B independent (s, t) queries through a SINGLE plan
// execution: machines of different queries coexist in the same simulated
// rounds.  Mailboxes are partitioned per query, per-machine memory caps are
// enforced at each query's own Õ_eps(n^{1-x}) budget (RoundOptions), and
// every query gets its own attributed ExecutionTrace built from the
// machine-level reports.
//
// Edit batches run the guess ladder restricted to the small-distance regime
// (n^delta <= n^{1-x/5}, Lemma 6), in one of two modes:
//
//   * kParallelGuess — the paper's semantics made literal: every (query,
//     guess) pipeline instance runs side by side in 2 shared rounds.  Total
//     work is Σ over ALL rungs of every query — the right model quantity,
//     but on a real host most of that work belongs to rungs the sequential
//     early-exit solver never runs.
//   * kThroughput   — adaptive guess escalation (the output-sensitivity
//     idea of Ding et al. 2023 applied to the ladder): every live query
//     starts at its cheapest rung; one shared round-pair runs the current
//     rung of every unresolved query; queries whose answer certifies itself
//     (answer <= (3+eps)·guess + 2, the same monotone accept condition the
//     sequential solver uses) retire, and only the survivors re-enter the
//     plan at their next rung.  Expected work drops from Σ(all rungs) to
//     Σ(rungs up to the accepted one) per query, at the cost of extra —
//     metered and reported — simulated rounds: the shared trace carries
//     2 rounds per escalation pass instead of 2 total.  The 3+eps guarantee
//     is unchanged whp: retirement only happens on the self-certifying
//     condition, which fires no later than the first rung >= ed(s, t).
//
// Ulam has no guess ladder (Theorem 4 is a single two-round pipeline), so
// both modes execute identically for kUlam.
//
// The returned edit distance is always the cost of a realizable
// transformation (an upper bound on ed); the 3+eps guarantee holds whp when
// the true distance lies in the small-distance regime — the serving-system
// sweet spot the batching exists for.  Queries needing the large-distance
// pipeline should go through `edit_distance_mpc`.
#pragma once

#include <cstdint>
#include <vector>

#include "core/router.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/stats.hpp"
#include "obs/recorder.hpp"
#include "seq/types.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd::core {

enum class BatchAlgorithm : std::uint8_t {
  kUlam,  ///< Theorem 4 (strings must be repeat-free)
  kEdit,  ///< Theorem 9, small-distance regime
};

enum class BatchMode : std::uint8_t {
  /// All guess rungs of every query side by side in 2 shared rounds (the
  /// paper-literal semantics; work is worst-case, rounds are minimal).
  kParallelGuess,
  /// Adaptive guess escalation: cheapest rung first, retire queries whose
  /// answer certifies itself, re-enter the plan with the survivors.  Work
  /// is output-sensitive; the shared trace has 2 rounds per pass.
  kThroughput,
};

struct BatchQuery {
  std::vector<Symbol> s;
  std::vector<Symbol> t;
};

struct BatchRequest {
  BatchAlgorithm algorithm = BatchAlgorithm::kUlam;
  BatchMode mode = BatchMode::kParallelGuess;
  std::vector<BatchQuery> queries;
  /// Solver settings for kUlam batches (x, epsilon, seed, workers,
  /// strict_memory, memory_slack, combine_gap).
  ulam_mpc::UlamMpcParams ulam;
  /// Solver settings for kEdit batches (x, epsilon, unit, seed, ...).
  edit_mpc::EditMpcParams edit;
  /// Query-router policy (kEdit + kThroughput only; other combinations
  /// ignore it).  `kOff` keeps the engine byte-identical to the pre-router
  /// behavior.  Under `kAuto`/`kAlwaysSeq` a routed-away query *retires*
  /// with its exact sequential distance: accepted_guess = 0, rungs_run = 0,
  /// an empty per-query trace, and no share of any shared round; a routed
  /// lower bound instead makes the query enter the ladder at the first
  /// rung whose accept threshold it could certify (skipped rungs are never
  /// executed and do not count in rungs_run).  `kDefault` resolves
  /// MPCSD_ROUTER (unset = off).  See core/router.hpp.
  RouterPolicy router = RouterPolicy::kDefault;
  /// Observability recorder (null = detached).  The shared rounds emit
  /// round/stage spans through the cluster; the batch driver additionally
  /// emits one span per escalation pass and, on track `query id + 1`, one
  /// attributed span per (query, guess rung) built from the machine-level
  /// reports of the shared round-pair.
  obs::Recorder* recorder = nullptr;
};

struct QueryResult {
  std::int64_t distance = 0;
  /// First guess whose answer certified itself (kEdit; 0 for kUlam, and 0
  /// when the clipped ladder was exhausted without certification).
  std::int64_t accepted_guess = 0;
  /// Guess rungs this query executed: the full clipped ladder in
  /// kParallelGuess, the escalation prefix in kThroughput (0 for kUlam).
  std::size_t rungs_run = 0;
  /// This query's own per-machine cap, enforced on its machines only.
  std::uint64_t memory_cap_bytes = 0;
  /// This query's share of the shared rounds: labels, machine counts,
  /// work, comm bytes, memory maxima — attributed from machine reports.
  /// kThroughput traces carry one round-pair per rung the query ran.
  mpc::ExecutionTrace trace;
};

struct BatchResult {
  std::vector<QueryResult> queries;
  /// The shared physical execution: 2 rounds in kParallelGuess (and for
  /// kUlam), 2 rounds per escalation pass in kThroughput.
  mpc::ExecutionTrace trace;
  /// Escalation passes executed (1 for kParallelGuess / kUlam batches with
  /// live queries, 0 for an all-degenerate batch).
  std::size_t passes = 0;
};

/// Runs every query of `request` in one shared plan execution.
BatchResult distance_batch(const BatchRequest& request);

}  // namespace mpcsd::core
