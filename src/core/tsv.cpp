#include "core/tsv.hpp"

#include <cstdlib>
#include <sstream>

#include "seq/lis.hpp"

namespace mpcsd::core {

SymString parse_symbols(std::string_view text) {
  // Numeric mode: every whitespace-separated token is an integer.
  std::istringstream tokens{std::string(text)};
  SymString numeric;
  std::string tok;
  bool all_numeric = true;
  while (tokens >> tok) {
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
      all_numeric = false;
      break;
    }
    numeric.push_back(static_cast<Symbol>(v));
  }
  if (all_numeric && !numeric.empty()) return numeric;
  return to_symbols(text);
}

std::optional<std::vector<BatchQuery>> parse_batch_tsv(std::string_view text,
                                                       BatchAlgorithm algorithm,
                                                       TsvError* error) {
  const auto fail = [&](std::size_t line, std::string message)
      -> std::optional<std::vector<BatchQuery>> {
    if (error != nullptr) *error = TsvError{line, std::move(message)};
    return std::nullopt;
  };

  std::vector<BatchQuery> queries;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (nl == std::string_view::npos && line.empty()) break;  // trailing EOF
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return fail(line_no, "expected TAB-separated pair");
    }
    BatchQuery query;
    query.s = parse_symbols(line.substr(0, tab));
    query.t = parse_symbols(line.substr(tab + 1));
    if (algorithm == BatchAlgorithm::kUlam &&
        (!seq::is_repeat_free(query.s) || !seq::is_repeat_free(query.t))) {
      return fail(line_no, "ulam requires repeat-free inputs");
    }
    queries.push_back(std::move(query));
  }
  if (queries.empty()) return fail(0, "input contains no (s, t) pairs");
  return queries;
}

}  // namespace mpcsd::core
