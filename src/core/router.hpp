// Per-query cost-model router in front of the batch engine.
//
// Real distance traffic is dominated by near-duplicate pairs, yet every
// live query of a kThroughput batch climbs the MPC guess ladder from the
// cheapest rung, paying plan construction, routing, and simulated-round
// overhead even when a sequential k-bounded kernel finishes in
// microseconds.  The router triages each query before pass 1:
//
//   1. zero-cost prefilters — exact equality, common prefix/suffix trim,
//      the length-difference lower bound, and a compact-alphabet histogram
//      lower bound (every edit op changes at most two symbol counts by one,
//      so ed >= ceil(sum |count_s - count_t| / 2));
//   2. a calibrated cost model predicting the sequential fast path's wall
//      time against one plan rung's from (core length, predicted k, batch
//      occupancy, worker count), granting the query a sequential budget
//      k_cap;
//   3. a capped output-sensitive probe (edit_distance_os.hpp): solved means
//      the query *retires* with the exact distance (strictly stronger than
//      the ladder's 3+eps guarantee); censored *proves* ed > k_cap, which
//      the batch driver converts into a starting rung — rungs whose accept
//      threshold lies below a proven lower bound can never self-certify,
//      so they are skipped, never run.
//
// Policies: `off` leaves the batch engine byte-identical to the pre-router
// behavior (goldens, structural hashes); `auto` applies the cost model;
// `always-seq` retires every query sequentially (the portfolio's all-fast-
// path corner, and the bench baseline).  The default resolves the
// MPCSD_ROUTER environment variable (unset -> off) through the shared
// warn-once override policy (common/env.hpp).
//
// Every decision lands on the PR 5 observability spine: the batch driver
// emits one router span per batch plus decision counters and per-query
// instants (see core/batch.cpp).
//
// The cost-model constants (kRouter*) are calibrated against BENCH_PR8 and
// confined to src/core/router.* by scripts/lint.sh — heuristics must not
// leak into the engine.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "seq/types.hpp"

namespace mpcsd::core {

enum class RouterPolicy : std::uint8_t {
  kDefault = 0,  ///< resolve from MPCSD_ROUTER (default: off)
  kOff,          ///< never route: byte-identical to the pre-router engine
  kAuto,         ///< prefilters + cost model + capped sequential probe
  kAlwaysSeq,    ///< retire every query on the sequential fast path
};

/// Parses a `MPCSD_ROUTER` / `--router` value ("off" | "auto" |
/// "always-seq"); nullopt for anything unrecognised.
[[nodiscard]] std::optional<RouterPolicy> router_policy_from_string(
    std::string_view name);

/// Lower-case policy name, for logs/flags ("default" for kDefault).
[[nodiscard]] const char* router_policy_name(RouterPolicy policy) noexcept;

/// Pure resolution of a requested policy against an environment override —
/// testable without touching the real environment.  `kDefault` resolves
/// through `env` (the MPCSD_ROUTER value, null when unset); anything else
/// wins outright.  `recognised` is false only when `env` was consulted and
/// named no known policy (the caller warns once and routing stays off).
struct RouterPolicyResolution {
  RouterPolicy policy = RouterPolicy::kOff;
  bool recognised = true;
};
[[nodiscard]] RouterPolicyResolution resolve_router_policy(
    RouterPolicy requested, const char* env) noexcept;

/// `resolve_router_policy` against the live MPCSD_ROUTER variable, warning
/// once per process on an unrecognised value (common/env.hpp).
[[nodiscard]] RouterPolicy resolved_router_policy(RouterPolicy requested);

/// Zero-cost evidence about one (s, t) pair: O(n) scans, no DP.
struct QueryPrefilter {
  std::int64_t prefix = 0;      ///< common prefix trimmed
  std::int64_t suffix = 0;      ///< common suffix trimmed (after prefix)
  std::int64_t core_n = 0;      ///< shorter side after trim
  std::int64_t core_n_bar = 0;  ///< longer side after trim
  /// Proven ed(s, t) >= lower_bound: max of the length-difference bound,
  /// the compact-alphabet histogram bound, and 1 for unequal strings.
  std::int64_t lower_bound = 0;
  bool equal = false;  ///< s == t (lower_bound is then 0 and exact)
};
[[nodiscard]] QueryPrefilter prefilter_query(SymView s, SymView t);

/// The calibrated cost model's verdict for one query: predicted walls and
/// the sequential budget k_cap (the largest bound whose capped probe still
/// undercuts one plan rung by the safety margin; >= the core length means
/// "solve outright").  Inputs: trimmed core lengths, live queries sharing
/// the batch (amortising per-pass overhead), and the worker count the plan
/// would parallelise over.
struct RouterBudget {
  double seq_ns = 0.0;   ///< predicted sequential wall at k_cap
  double plan_ns = 0.0;  ///< predicted per-query share of one plan rung
  std::int64_t k_cap = 0;
};
[[nodiscard]] RouterBudget router_budget(std::int64_t core_n,
                                         std::int64_t core_n_bar,
                                         std::size_t batch_live,
                                         std::size_t workers);

/// One query's routing decision.  `retire` carries an *exact* distance
/// (equality, empty core, or a solved sequential probe); otherwise the
/// query goes to the plan and `lower_bound` is a proven floor on ed(s, t)
/// the driver may skip un-certifiable rungs with.
struct RouteDecision {
  bool retire = false;
  std::int64_t distance = 0;     ///< valid when `retire`
  std::int64_t lower_bound = 0;  ///< proven ed >= this (when !retire)
  std::int64_t k_cap = 0;        ///< sequential budget the model granted
  bool probed = false;           ///< ran the capped sequential probe
};
[[nodiscard]] RouteDecision route_query(SymView s, SymView t,
                                        RouterPolicy policy,
                                        std::size_t batch_live,
                                        std::size_t workers);

}  // namespace mpcsd::core
