// mpcsd — public API.
//
// Single-include facade for the library: exact sequential distances, the
// two MPC solvers of the paper (Theorem 4 Ulam, Theorem 9 edit distance),
// the [20] baseline, workload generators, and the Table 1 theory rows.
//
// Quickstart:
//
//   #include "core/api.hpp"
//   using namespace mpcsd;
//
//   auto s = core::random_permutation(100'000, 1);
//   auto t = core::plant_edits(s, 500, 2, /*repeat_free=*/true).text;
//
//   auto mpc = ulam_mpc::ulam_distance_mpc(s, t);          // 1+eps, 2 rounds
//   auto exact = seq::ulam_distance(s, t);                  // ground truth
//   // mpc.distance in [exact, (1+eps)*exact] whp; mpc.trace has the
//   // machine/memory/work metrics of Table 1.
#pragma once

#include "common/bytes.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/theory.hpp"
#include "core/workload.hpp"
#include "edit_mpc/hss_baseline.hpp"
#include "edit_mpc/large_distance.hpp"
#include "edit_mpc/small_distance.hpp"
#include "edit_mpc/solver.hpp"
#include "mpc/cluster.hpp"
#include "mpc/plan.hpp"
#include "mpc/stats.hpp"
#include "seq/alignment.hpp"
#include "seq/approx_edit.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/lis.hpp"
#include "seq/types.hpp"
#include "seq/ulam.hpp"
#include "ulam_mpc/solver.hpp"

namespace mpcsd {

/// Library version (semver).
constexpr const char* kVersion = "1.0.0";

}  // namespace mpcsd
