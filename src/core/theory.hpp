// Table 1 of the paper as code: the theoretical exponents each benchmark
// compares its measurements against.
//
//   Problem        Approx   Rounds  Memory/machine  #Machines      Total time
//   Ulam (Thm 4)   1+eps    2       Õ(n^{1-x})      Õ(n^x)         Õ(n)
//   Edit (Thm 9)   3+eps    4       Õ(n^{1-x})      Õ(n^{(9/5)x})  Õ(n^{2-min((1-x)/6, 2x/5)})
//   Edit [20]      1+eps    2       Õ(n^{1-x})      Õ(n^{2x})      Õ(n^2)
#pragma once

#include <string>
#include <vector>

namespace mpcsd::core {

struct TheoryRow {
  std::string problem;
  std::string approx;
  int rounds = 0;
  double memory_exponent = 0.0;    ///< per-machine memory ~ n^this
  double machines_exponent = 0.0;  ///< #machines ~ n^this
  double work_exponent = 0.0;      ///< total running time ~ n^this
};

/// The rows of Table 1 instantiated at a given memory exponent x.
std::vector<TheoryRow> table1_rows(double x);

/// #machines exponent of Theorem 4 (Ulam): x.
double ulam_machines_exponent(double x);
/// Total-work exponent of Theorem 4 (Ulam): 1 (linear).
double ulam_work_exponent(double x);

/// #machines exponent of Theorem 9 (edit distance): (9/5)x.
double edit_machines_exponent(double x);
/// Total-work exponent of Theorem 9: 2 - min((1-x)/6, 2x/5).
double edit_work_exponent(double x);
/// Parallel-time exponent of Theorem 9: 2 - min((5+49x)/30, 11x/5).
double edit_parallel_exponent(double x);

/// #machines exponent of the [20] baseline: 2x.
double hss_machines_exponent(double x);

/// Least-squares slope of log(y) against log(n) — the measured exponent
/// benchmarks report next to the theoretical one.
double fit_exponent(const std::vector<double>& n, const std::vector<double>& y);

}  // namespace mpcsd::core
