#include "edit_mpc/graph_tau.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/grid.hpp"

namespace mpcsd::edit_mpc {

NodeUniverse build_universe(const CandidateGeometry& geo) {
  NodeUniverse universe;
  universe.blocks = make_blocks(geo.n, geo.block_size);
  universe.block_cands.resize(universe.blocks.size());

  std::unordered_map<std::uint64_t, std::int32_t> ids;
  for (std::size_t b = 0; b < universe.blocks.size(); ++b) {
    const Interval& blk = universe.blocks[b];
    for (const Interval& win : candidate_windows(blk.begin, blk.length(), geo)) {
      const std::uint64_t key = (static_cast<std::uint64_t>(win.begin) << 32U) |
                                static_cast<std::uint64_t>(win.end - win.begin);
      auto [it, inserted] = ids.emplace(key, static_cast<std::int32_t>(universe.cs.size()));
      if (inserted) universe.cs.push_back(win);
      universe.block_cands[b].push_back(it->second);
    }
    // Keep per-block candidate lists deduped.
    auto& cands = universe.block_cands[b];
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  }
  return universe;
}

std::vector<std::int64_t> tau_grid(std::int64_t limit, double eps_prime) {
  return geometric_grid(limit, eps_prime);
}

std::size_t min_tau_index(const std::vector<std::int64_t>& grid, std::int64_t v) {
  const auto it = std::lower_bound(grid.begin(), grid.end(), v);
  return static_cast<std::size_t>(it - grid.begin());
}

}  // namespace mpcsd::edit_mpc
