#include "edit_mpc/candidates.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/grid.hpp"

namespace mpcsd::edit_mpc {

std::int64_t start_gap(const CandidateGeometry& geo) {
  MPCSD_EXPECTS(geo.n > 0 && geo.block_size > 0);
  // n^{delta - y} = delta_guess * B / n.
  const double fine = geo.eps_prime * static_cast<double>(geo.delta_guess) *
                      static_cast<double>(geo.block_size) / static_cast<double>(geo.n);
  return std::max<std::int64_t>(static_cast<std::int64_t>(fine), 1);
}

std::vector<std::int64_t> candidate_starts(std::int64_t block_begin,
                                           const CandidateGeometry& geo) {
  const std::int64_t gap = start_gap(geo);
  std::vector<std::int64_t> starts;
  std::int64_t lo = block_begin - geo.delta_guess;
  // One extra gap above l + guess so that every alpha in the range has a
  // grid point in [alpha, alpha + gap] (the Lemma 5 cover at the boundary).
  const std::int64_t hi =
      std::min(block_begin + geo.delta_guess + gap, geo.n_bar - 1);
  if (lo < 0) lo = 0;
  // Grid alignment: indices divisible by the gap, as in Fig. 4.
  lo = ceil_div(lo, gap) * gap;
  for (std::int64_t sp = lo; sp <= hi; sp += gap) starts.push_back(sp);
  if (starts.empty() && geo.n_bar > 0) {
    starts.push_back(std::clamp<std::int64_t>(block_begin, 0, geo.n_bar - 1));
  }
  return starts;
}

std::vector<std::int64_t> candidate_ends(std::int64_t start,
                                         std::int64_t block_len,
                                         const CandidateGeometry& geo) {
  MPCSD_EXPECTS(block_len > 0);
  const std::int64_t max_len = std::min(
      static_cast<std::int64_t>(std::ceil(static_cast<double>(block_len) / geo.eps_prime)),
      block_len + geo.delta_guess);
  const std::int64_t kappa = start + block_len;
  std::vector<std::int64_t> ends;
  ends.push_back(kappa);
  if (geo.canonical_ends) {
    ends.front() = std::clamp<std::int64_t>(kappa, start, geo.n_bar);
    if (ends.front() == start && geo.n_bar > start) ends.front() = geo.n_bar;
    return ends;
  }
  const std::int64_t max_delta = std::min(
      static_cast<std::int64_t>(std::ceil(static_cast<double>(block_len) / geo.eps_prime)),
      geo.delta_guess);
  for (const std::int64_t delta : geometric_grid(std::max<std::int64_t>(max_delta, 0),
                                                 geo.eps_prime)) {
    if (delta == 0) continue;
    ends.push_back(kappa - delta);
    ends.push_back(kappa + delta);
  }
  for (auto& e : ends) {
    e = std::clamp<std::int64_t>(e, start, std::min(start + max_len, geo.n_bar));
  }
  std::sort(ends.begin(), ends.end());
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  // Drop the degenerate empty window unless it is the only option.
  if (ends.size() > 1 && ends.front() == start) ends.erase(ends.begin());
  return ends;
}

std::vector<Interval> candidate_windows(std::int64_t block_begin,
                                        std::int64_t block_len,
                                        const CandidateGeometry& geo) {
  std::vector<Interval> windows;
  for (const std::int64_t sp : candidate_starts(block_begin, geo)) {
    for (const std::int64_t ep : candidate_ends(sp, block_len, geo)) {
      windows.push_back(Interval{sp, ep});
    }
  }
  return windows;
}

std::vector<Interval> make_blocks(std::int64_t n, std::int64_t block_size) {
  MPCSD_EXPECTS(block_size > 0);
  std::vector<Interval> blocks;
  for (std::int64_t b = 0; b < n; b += block_size) {
    blocks.push_back(Interval{b, std::min(n, b + block_size)});
  }
  return blocks;
}

}  // namespace mpcsd::edit_mpc
