#include "edit_mpc/small_distance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "mpc/cluster.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"

namespace mpcsd::edit_mpc {

std::optional<std::int64_t> unit_distance(SymView a, SymView b, DistanceUnit unit,
                                          const seq::ApproxEditParams& approx,
                                          std::int64_t cap, std::uint64_t* work) {
  const auto limit = std::min<std::int64_t>(
      cap, static_cast<std::int64_t>(a.size() + b.size()));
  // Length difference lower-bounds the distance: filter before any DP.
  const auto len_diff = std::abs(static_cast<std::int64_t>(a.size()) -
                                 static_cast<std::int64_t>(b.size()));
  if (len_diff > limit) return std::nullopt;
  if (a.empty() || b.empty()) {
    const auto d = static_cast<std::int64_t>(std::max(a.size(), b.size()));
    return d <= limit ? std::optional<std::int64_t>(d) : std::nullopt;
  }
  if (unit == DistanceUnit::kExactBanded) {
    return seq::edit_distance_bounded_fast(a, b, std::max<std::int64_t>(limit, 0), work);
  }
  // Bound the unit's internal guess loop: if no guess up to ~limit
  // certifies, the true distance exceeds limit/(3+O(eps)) and the censored
  // pair could never join an accepted solution at this guess anyway.
  seq::ApproxEditParams bounded = approx;
  bounded.guess_limit = 2 * limit + 4;
  auto result = seq::approx_edit_distance(a, b, bounded);
  if (work != nullptr) *work += result.work;
  if (result.distance > limit) return std::nullopt;
  return result.distance;
}

PipelineResult run_small_distance(SymView s, SymView t,
                                  const SmallDistanceParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.eps_prime > 0.0);
  MPCSD_EXPECTS(params.delta_guess >= 0);

  PipelineResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  if (n == 0 || n_bar == 0) {
    result.distance = std::max(n, n_bar);
    return result;
  }

  const std::int64_t block = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - params.x));
  CandidateGeometry geo;
  geo.eps_prime = params.eps_prime;
  geo.n = n;
  geo.n_bar = n_bar;
  geo.block_size = block;
  geo.delta_guess = params.delta_guess;

  const auto blocks = make_blocks(n, block);
  const std::int64_t max_len = std::min(
      static_cast<std::int64_t>(std::ceil(static_cast<double>(block) / params.eps_prime)),
      block + params.delta_guess);

  // Build round-1 machine inputs: one machine per (block, start batch); a
  // batch spans at most B so the s̄ chunk stays within Õ(n^{1-x}).
  std::vector<Bytes> inputs;
  for (const Interval& blk : blocks) {
    const auto starts = candidate_starts(blk.begin, geo);
    std::size_t i = 0;
    while (i < starts.size()) {
      std::size_t j = i;
      while (params.batch_starts && j + 1 < starts.size() &&
             starts[j + 1] - starts[i] <= block) {
        ++j;
      }
      const std::int64_t chunk_begin = starts[i];
      const std::int64_t chunk_end = std::min(n_bar, starts[j] + max_len);
      ByteWriter w;
      w.put<std::int64_t>(blk.begin);
      std::vector<Symbol> block_syms(s.begin() + blk.begin, s.begin() + blk.end);
      w.put_vector(block_syms);
      std::vector<std::int64_t> batch(starts.begin() + static_cast<std::ptrdiff_t>(i),
                                      starts.begin() + static_cast<std::ptrdiff_t>(j + 1));
      w.put_vector(batch);
      w.put<std::int64_t>(chunk_begin);
      std::vector<Symbol> chunk_syms(t.begin() + chunk_begin, t.begin() + chunk_end);
      w.put_vector(chunk_syms);
      inputs.push_back(std::move(w).take());
      i = j + 1;
    }
  }
  result.machines_round1 = inputs.size();

  mpc::ClusterConfig config;
  config.memory_limit_bytes = params.memory_cap_bytes;
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  mpc::Cluster cluster(config);

  // ---- Round 1 (Algorithm 3): block-vs-candidate distances. ----
  const auto mail = cluster.run_round(
      "edit:small:distances", inputs, [&](mpc::MachineContext& ctx) {
        auto r = ctx.reader();
        const auto block_begin = r.get<std::int64_t>();
        const auto block_syms = r.get_vector<Symbol>();
        const auto batch = r.get_vector<std::int64_t>();
        const auto chunk_begin = r.get<std::int64_t>();
        const auto chunk_syms = r.get_vector<Symbol>();
        const SymView block_view(block_syms);
        const SymView chunk_view(chunk_syms);
        const auto block_len = static_cast<std::int64_t>(block_syms.size());

        std::uint64_t work = 0;
        // Censoring cap: a useful tuple's distance is at most the block's
        // share of the optimum (<= (1+eps)*guess); the approx unit may
        // overshoot by its 3x factor, so it gets more headroom.
        const std::int64_t cap = params.unit == DistanceUnit::kExactBanded
                                     ? 2 * params.delta_guess + 2
                                     : 4 * params.delta_guess + 8;
        std::vector<seq::Tuple> tuples;
        for (const std::int64_t sp : batch) {
          for (const std::int64_t ep : candidate_ends(sp, block_len, geo)) {
            const SymView window = subview(
                chunk_view, {sp - chunk_begin, ep - chunk_begin});
            const auto e = unit_distance(block_view, window, params.unit,
                                         params.approx, cap, &work);
            if (!e.has_value()) continue;
            tuples.push_back(seq::Tuple{block_begin, block_begin + block_len, sp,
                                        ep, *e});
          }
        }
        ctx.charge_work(work);
        ctx.charge_scratch((block_syms.size() + chunk_syms.size()) * sizeof(Symbol));
        ByteWriter w;
        seq::write_tuples(w, tuples);
        ctx.emit(0, std::move(w).take());
      });

  // ---- Round 2 (Algorithm 4): combine on one machine (zero-copy inbox). ----
  const ByteChain all_tuples = mpc::gather_view(mail, 0);
  std::int64_t answer = n + n_bar;
  std::size_t tuple_count = 0;
  cluster.run_round_views("edit:small:combine", {all_tuples}, [&](mpc::MachineContext& ctx) {
    std::uint64_t work = 0;
    auto tuples = seq::read_all_tuples(ctx.input());
    tuple_count = tuples.size();
    seq::CombineOptions options;
    options.gap = seq::GapCost::kSum;
    answer = seq::combine_tuples(std::move(tuples), n, n_bar, options, &work);
    ctx.charge_work(work);
    ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
    ByteWriter w;
    w.put<std::int64_t>(answer);
    ctx.emit(0, std::move(w).take());
  });

  result.distance = answer;
  result.tuple_count = tuple_count;
  result.trace = cluster.take_trace();
  MPCSD_ENSURES(result.trace.round_count() == 2);
  return result;
}

}  // namespace mpcsd::edit_mpc
