#include "edit_mpc/small_distance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "mpc/plan.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"

namespace mpcsd::edit_mpc {

namespace {

constexpr mpc::Channel<std::vector<seq::Tuple>> kTuples{0, "tuples"};
constexpr mpc::Channel<std::int64_t> kAnswer{0, "answer"};

mpc::Plan small_plan() {
  return mpc::Plan{
      "edit:small",
      {
          {"edit:small:distances", "SmallTask (sharded input)", "tuples"},
          {"edit:small:combine", "Inbox<tuples>", "answer"},
      }};
}

}  // namespace

std::optional<std::int64_t> unit_distance(SymView a, SymView b, DistanceUnit unit,
                                          const seq::ApproxEditParams& approx,
                                          std::int64_t cap, std::uint64_t* work) {
  const auto limit = std::min<std::int64_t>(
      cap, static_cast<std::int64_t>(a.size() + b.size()));
  // Length difference lower-bounds the distance: filter before any DP.
  const auto len_diff = std::abs(static_cast<std::int64_t>(a.size()) -
                                 static_cast<std::int64_t>(b.size()));
  if (len_diff > limit) return std::nullopt;
  if (a.empty() || b.empty()) {
    const auto d = static_cast<std::int64_t>(std::max(a.size(), b.size()));
    return d <= limit ? std::optional<std::int64_t>(d) : std::nullopt;
  }
  if (unit == DistanceUnit::kExactBanded) {
    return seq::edit_distance_bounded_fast(a, b, std::max<std::int64_t>(limit, 0), work);
  }
  // Bound the unit's internal guess loop: if no guess up to ~limit
  // certifies, the true distance exceeds limit/(3+O(eps)) and the censored
  // pair could never join an accepted solution at this guess anyway.
  seq::ApproxEditParams bounded = approx;
  bounded.guess_limit = 2 * limit + 4;
  auto result = seq::approx_edit_distance(a, b, bounded);
  if (work != nullptr) *work += result.work;
  if (result.distance > limit) return std::nullopt;
  return result.distance;
}

CandidateGeometry small_geometry(std::int64_t n, std::int64_t n_bar,
                                 const SmallDistanceParams& params) {
  CandidateGeometry geo;
  geo.eps_prime = params.eps_prime;
  geo.n = n;
  geo.n_bar = n_bar;
  geo.block_size = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - params.x));
  geo.delta_guess = params.delta_guess;
  return geo;
}

std::vector<SmallTask> make_small_tasks(SymView s, SymView t,
                                        const SmallDistanceParams& params,
                                        const CandidateGeometry& geo) {
  const auto n = geo.n;
  const auto n_bar = geo.n_bar;
  const std::int64_t block = geo.block_size;
  const auto blocks = make_blocks(n, block);
  const std::int64_t max_len = std::min(
      static_cast<std::int64_t>(std::ceil(static_cast<double>(block) / params.eps_prime)),
      block + params.delta_guess);

  // One task per (block, start batch); a batch spans at most B so the s̄
  // chunk stays within Õ(n^{1-x}).
  std::vector<SmallTask> tasks;
  for (const Interval& blk : blocks) {
    const auto starts = candidate_starts(blk.begin, geo);
    std::size_t i = 0;
    while (i < starts.size()) {
      std::size_t j = i;
      while (params.batch_starts && j + 1 < starts.size() &&
             starts[j + 1] - starts[i] <= block) {
        ++j;
      }
      const std::int64_t chunk_begin = starts[i];
      const std::int64_t chunk_end = std::min(n_bar, starts[j] + max_len);
      SmallTask task;
      task.block_begin = blk.begin;
      task.block.assign(s.begin() + blk.begin, s.begin() + blk.end);
      task.starts.assign(starts.begin() + static_cast<std::ptrdiff_t>(i),
                         starts.begin() + static_cast<std::ptrdiff_t>(j + 1));
      task.chunk_begin = chunk_begin;
      task.chunk.assign(t.begin() + chunk_begin, t.begin() + chunk_end);
      tasks.push_back(std::move(task));
      i = j + 1;
    }
  }
  return tasks;
}

std::vector<seq::Tuple> small_task_tuples(const SmallTask& task,
                                          const SmallDistanceParams& params,
                                          const CandidateGeometry& geo,
                                          std::uint64_t* work) {
  const SymView block_view(task.block);
  const SymView chunk_view(task.chunk);
  const auto block_len = static_cast<std::int64_t>(task.block.size());

  // Censoring cap: a useful tuple's distance is at most the block's share
  // of the optimum (<= (1+eps)*guess); the approx unit may overshoot by its
  // 3x factor, so it gets more headroom.
  const std::int64_t cap = params.unit == DistanceUnit::kExactBanded
                               ? 2 * params.delta_guess + 2
                               : 4 * params.delta_guess + 8;
  std::vector<seq::Tuple> tuples;
  for (const std::int64_t sp : task.starts) {
    for (const std::int64_t ep : candidate_ends(sp, block_len, geo)) {
      const SymView window = subview(
          chunk_view, {sp - task.chunk_begin, ep - task.chunk_begin});
      const auto e = unit_distance(block_view, window, params.unit,
                                   params.approx, cap, work);
      if (!e.has_value()) continue;
      tuples.push_back(seq::Tuple{task.block_begin, task.block_begin + block_len,
                                  sp, ep, *e});
    }
  }
  return tuples;
}

PipelineResult run_small_distance(SymView s, SymView t,
                                  const SmallDistanceParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.eps_prime > 0.0);
  MPCSD_EXPECTS(params.delta_guess >= 0);

  PipelineResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  if (n == 0 || n_bar == 0) {
    result.distance = std::max(n, n_bar);
    return result;
  }

  const CandidateGeometry geo = small_geometry(n, n_bar, params);

  mpc::ClusterConfig config;
  config.memory_limit_bytes = params.memory_cap_bytes;
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  config.backend = params.backend;
  config.audit = params.audit;
  config.recorder = params.recorder;
  mpc::Driver driver(small_plan(), config);
  obs::Span pipeline_span(params.recorder, "edit:small", "pipeline");
  pipeline_span.arg("guess", static_cast<double>(params.delta_guess));

  const std::vector<Bytes> inputs =
      driver.shard_parallel(make_small_tasks(s, t, params, geo));
  result.machines_round1 = inputs.size();

  // ---- Stage 1 (Algorithm 3): block-vs-candidate distances. ----
  const mpc::Stage<SmallTask> distances_stage{
      "edit:small:distances", [params, geo](mpc::StageContext<SmallTask>& ctx) {
        std::uint64_t work = 0;
        const auto tuples = small_task_tuples(ctx.in(), params, geo, &work);
        ctx.charge_work(work);
        ctx.charge_scratch((ctx.in().block.size() + ctx.in().chunk.size()) *
                           sizeof(Symbol));
        ctx.send(kTuples, tuples);
      }};
  const auto mail = driver.run(distances_stage, inputs);

  // ---- Stage 2 (Algorithm 4): combine on one machine (zero-copy inbox). ----
  // The answer returns through the mailbox, the tuple count through the
  // unmetered stash: bodies may run in forked worker processes whose host
  // writes are invisible (mpc/backend.hpp).
  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  const mpc::Stage<TupleInbox> combine_stage{
      "edit:small:combine", [n, n_bar](mpc::StageContext<TupleInbox>& ctx) {
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const auto tuple_count = static_cast<std::uint64_t>(tuples.size());
        seq::CombineOptions options;
        options.gap = seq::GapCost::kSum;
        const std::int64_t answer =
            seq::combine_tuples(std::move(tuples), n, n_bar, options, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(kAnswer, answer);
        ctx.stash(tuple_count);
      }};
  std::vector<Bytes> combine_stash;
  mpc::RoundOptions combine_options;
  combine_options.machine_stash = &combine_stash;
  const auto mail2 = driver.run_views(
      combine_stage, {mpc::gather_view(mail, kTuples.mailbox)}, combine_options);
  driver.finish();

  const auto answers = driver.receive(mail2, kAnswer);
  MPCSD_ENSURES(answers.size() == 1);
  result.distance = answers.front();
  result.tuple_count =
      static_cast<std::size_t>(mpc::unstash<std::uint64_t>(combine_stash.at(0)));
  result.trace = driver.take_trace();
  MPCSD_ENSURES(result.trace.round_count() == 2);
  return result;
}

}  // namespace mpcsd::edit_mpc
