// Candidate-substring geometry for the edit-distance MPC algorithm
// (Figures 4 and 5 of the paper).
//
// For a distance guess n^delta (written `delta_guess` as an absolute value)
// and blocks of size B = n^{1-y}:
//   * start points of a block at position l lie in [l - delta_guess,
//     l + delta_guess] and are divisible by the gap
//     G = max(floor(eps' * delta_guess * B / n), 1)  (= eps' * n^{delta-y});
//   * end points for a start gamma cluster geometrically around
//     kappa = gamma + B: kappa +- ceil((1+eps')^a), with candidate lengths
//     capped at B/eps' and at the guess.
// The same geometry drives the small-distance pipeline, the G_tau node set
// of the large-distance pipeline, and the HSS [20] baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/types.hpp"

namespace mpcsd::edit_mpc {

struct CandidateGeometry {
  double eps_prime = 0.05;     ///< eps' (paper: eps/22)
  std::int64_t n = 0;          ///< |s|
  std::int64_t n_bar = 0;      ///< |s̄|
  std::int64_t block_size = 0; ///< B = n^{1-y}
  std::int64_t delta_guess = 0;///< the distance guess n^delta
  /// Canonical ends only (kappa = gamma + B): used for the G_tau node
  /// universe, where the Õ(1) end multiplicity would otherwise multiply
  /// the node count; the length-variant windows are still evaluated by the
  /// low-degree exact path.
  bool canonical_ends = false;
};

/// The start-point grid gap G = max(floor(eps' * delta_guess / n^y), 1).
std::int64_t start_gap(const CandidateGeometry& geo);

/// Start points for the block beginning at `block_begin` (clamped to s̄).
std::vector<std::int64_t> candidate_starts(std::int64_t block_begin,
                                           const CandidateGeometry& geo);

/// Candidate end points (exclusive) for a given start; sorted, deduped,
/// clamped to s̄.  Lengths range over {B} ∪ {B ± ceil((1+eps')^a)} capped at
/// min(B/eps', B + delta_guess).
std::vector<std::int64_t> candidate_ends(std::int64_t start,
                                         std::int64_t block_len,
                                         const CandidateGeometry& geo);

/// All candidate windows (start, end) pairs of one block.
std::vector<Interval> candidate_windows(std::int64_t block_begin,
                                        std::int64_t block_len,
                                        const CandidateGeometry& geo);

/// Block decomposition of s: consecutive [kB, (k+1)B) intervals.
std::vector<Interval> make_blocks(std::int64_t n, std::int64_t block_size);

}  // namespace mpcsd::edit_mpc
