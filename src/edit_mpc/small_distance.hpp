// Lemma 6: the two-round small-distance pipeline (n^delta <= n^{1-x/5}).
//
// Round 1 (Algorithm 3): each machine holds one block of s plus a
//   contiguous chunk of s̄ covering a batch of candidate start points (the
//   batching is the paper's improvement over [20]: starts of one block are
//   close together when the guess is small, so several candidates share a
//   machine).  The machine computes the block-to-candidate distance for
//   every (start, end) candidate with a pluggable unit:
//     * kApprox3     — the CGKKS-style 3+eps' unit (the paper's choice,
//                      giving the overall 3+eps factor);
//     * kExactBanded — exact band doubling (1+eps overall; the unit the
//                      HSS [20] baseline uses).
// Round 2 (Algorithm 4): a single machine combines all tuples with the
//   delete+insert gap DP.
#pragma once

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "edit_mpc/candidates.hpp"
#include "mpc/audit.hpp"
#include "mpc/backend.hpp"
#include "mpc/stats.hpp"
#include "obs/recorder.hpp"
#include "seq/approx_edit.hpp"
#include "seq/combine.hpp"
#include "seq/types.hpp"

namespace mpcsd::edit_mpc {

enum class DistanceUnit : std::uint8_t {
  kExactBanded,  ///< exact band doubling: O(B·d) per pair
  kApprox3,      ///< CGKKS-style 3+eps' unit: Õ(B^{2-1/6}) per pair
};

struct SmallDistanceParams {
  double eps_prime = 0.05;           ///< eps' = eps/22
  double x = 0.25;                   ///< memory exponent (y = x here)
  std::int64_t delta_guess = 0;      ///< the distance guess n^delta
  DistanceUnit unit = DistanceUnit::kApprox3;
  seq::ApproxEditParams approx;      ///< settings for the kApprox3 unit
  /// Batch several candidate starts per machine (the paper's improvement
  /// over [20]); false = one machine per start (the HSS baseline layout).
  bool batch_starts = true;
  std::uint64_t seed = 11;
  std::size_t workers = 0;
  bool strict_memory = false;
  std::uint64_t memory_cap_bytes = UINT64_MAX;
  mpc::BackendKind backend = mpc::BackendKind::kAuto;  ///< see mpc/backend.hpp
  mpc::AuditOptions audit{};  ///< conformance auditing (see mpc/audit.hpp)
  obs::Recorder* recorder = nullptr;  ///< observability (null = detached)
};

struct PipelineResult {
  std::int64_t distance = 0;   ///< cost of a realizable transformation
  std::size_t tuple_count = 0;
  std::size_t machines_round1 = 0;
  mpc::ExecutionTrace trace;
};

/// Round-1 machine input of the plan-layer pipeline: one block of s plus
/// the s̄ chunk covering a batch of candidate start points.  A wire struct
/// (see mpc::Codec): members encode in declaration order, byte-identical to
/// the hand-rolled seed layout.
struct SmallTask {
  std::int64_t block_begin = 0;
  std::vector<Symbol> block;
  std::vector<std::int64_t> starts;
  std::int64_t chunk_begin = 0;
  std::vector<Symbol> chunk;

  static constexpr auto fields() {
    return std::make_tuple(&SmallTask::block_begin, &SmallTask::block,
                           &SmallTask::starts, &SmallTask::chunk_begin,
                           &SmallTask::chunk);
  }
};

/// Candidate geometry for one (s, s̄) pair under `params`.
CandidateGeometry small_geometry(std::int64_t n, std::int64_t n_bar,
                                 const SmallDistanceParams& params);

/// Builds the round-1 tasks: one per (block, start batch), with the batch
/// spanning at most B so the s̄ chunk stays within Õ(n^{1-x}).
std::vector<SmallTask> make_small_tasks(SymView s, SymView t,
                                        const SmallDistanceParams& params,
                                        const CandidateGeometry& geo);

/// The round-1 machine computation (Algorithm 3): block-vs-candidate
/// distances for every (start, end) candidate of the task, censored at the
/// guess-derived cap.  Shared by the single-query pipeline and the batch
/// driver.
std::vector<seq::Tuple> small_task_tuples(const SmallTask& task,
                                          const SmallDistanceParams& params,
                                          const CandidateGeometry& geo,
                                          std::uint64_t* work);

/// Runs the small-distance pipeline for one guess.  The result is a valid
/// upper bound on ed(s, t) regardless of the guess; when the guess is
/// >= ed(s, t) it is within 3+eps (kApprox3) or 1+eps (kExactBanded).
PipelineResult run_small_distance(SymView s, SymView t,
                                  const SmallDistanceParams& params);

/// Block-vs-candidate distance through the selected unit, censored at
/// `cap`: returns nullopt when the (possibly approximate) distance exceeds
/// it.  Censoring is sound — a tuple costing more than the accepted guess
/// can never participate in an accepted solution — and keeps the per-pair
/// cost at O(B·cap) instead of O(B·d).  Values returned are upper bounds on
/// ed(a, b); exact for kExactBanded.
std::optional<std::int64_t> unit_distance(SymView a, SymView b, DistanceUnit unit,
                                          const seq::ApproxEditParams& approx,
                                          std::int64_t cap, std::uint64_t* work);

}  // namespace mpcsd::edit_mpc
