#include "edit_mpc/large_distance.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "mpc/plan.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"

namespace mpcsd::edit_mpc {

namespace {

/// A deduplicated extension request: evaluate ed(block, window) in round 3.
/// Also the round-2 -> driver wire record (4 raw int64, no padding).
struct ExtendRequest {
  std::int64_t block_begin = 0;
  std::int64_t block_end = 0;
  std::int64_t window_begin = 0;
  std::int64_t window_end = 0;
};

struct CsObservation {
  std::int32_t cs = 0;
  std::int64_t distance = 0;
};

struct BlockObservation {
  std::int32_t rep = 0;
  std::int64_t distance = 0;
};

std::vector<Symbol> copy_syms(SymView v, Interval iv) {
  const SymView sub = subview(v, iv);
  return std::vector<Symbol>(sub.begin(), sub.end());
}

// ---- typed stage messages (wire layouts identical to the seed driver) ----

/// One node shipped to a round-1 machine: global id + its symbols.
struct IdSyms {
  std::int32_t id = 0;
  std::vector<Symbol> syms;

  static constexpr auto fields() {
    return std::make_tuple(&IdSyms::id, &IdSyms::syms);
  }
};

/// Round-1 machine input: a batch of representatives vs a batch of nodes.
struct RepVsNodes {
  std::vector<IdSyms> reps;
  std::vector<IdSyms> nodes;

  static constexpr auto fields() {
    return std::make_tuple(&RepVsNodes::reps, &RepVsNodes::nodes);
  }
};

/// One block's representative observations, shipped to a pairing machine.
struct BlockObsList {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::vector<BlockObservation> obs;

  static constexpr auto fields() {
    return std::make_tuple(&BlockObsList::begin, &BlockObsList::end,
                           &BlockObsList::obs);
  }
};

/// One candidate window a representative covers: interval + ed(z, window).
struct CsWindow {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t distance = 0;
};

/// One representative's candidate-substring observations.
struct RepCsList {
  std::int32_t rep = 0;
  std::vector<CsWindow> entries;

  static constexpr auto fields() {
    return std::make_tuple(&RepCsList::rep, &RepCsList::entries);
  }
};

/// Round-2 pairing-machine input: join blocks with reps on the shared rep.
struct PairingInput {
  std::vector<BlockObsList> blocks;
  std::vector<RepCsList> reps;

  static constexpr auto fields() {
    return std::make_tuple(&PairingInput::blocks, &PairingInput::reps);
  }
};

/// Round-2 sampled low-degree machine input: one block + its chunk of s̄.
struct SampledInput {
  std::int64_t block_begin = 0;
  std::vector<Symbol> block;
  std::uint64_t jb = 0;  ///< block's coverage level in the tau grid
  std::vector<std::int64_t> starts;
  std::int64_t chunk_begin = 0;
  std::vector<Symbol> chunk;

  static constexpr auto fields() {
    return std::make_tuple(&SampledInput::block_begin, &SampledInput::block,
                           &SampledInput::jb, &SampledInput::starts,
                           &SampledInput::chunk_begin, &SampledInput::chunk);
  }
};

/// The two machine families of Algorithm 6, tagged on the wire by the
/// variant index (0 = pairing, 1 = sampled — the seed driver's tag byte).
using ClassifyInput = std::variant<PairingInput, SampledInput>;

/// Round-3 machine input: a memory-capped batch of extension evaluations.
struct ExtendJob {
  std::int64_t block_begin = 0;
  std::int64_t block_end = 0;
  std::int64_t window_begin = 0;
  std::int64_t window_end = 0;
  std::vector<Symbol> block;
  std::vector<Symbol> window;

  static constexpr auto fields() {
    return std::make_tuple(&ExtendJob::block_begin, &ExtendJob::block_end,
                           &ExtendJob::window_begin, &ExtendJob::window_end,
                           &ExtendJob::block, &ExtendJob::window);
  }
};

struct ExtendBatch {
  std::vector<ExtendJob> jobs;

  static constexpr auto fields() {
    return std::make_tuple(&ExtendBatch::jobs);
  }
};

constexpr mpc::Channel<std::vector<RepTuple>> kRepTuples{0, "rep-tuples"};
constexpr mpc::Channel<std::vector<seq::Tuple>> kTuples{0, "tuples"};
constexpr mpc::Channel<std::vector<ExtendRequest>> kExtendRequests{1, "extend-requests"};
constexpr mpc::Channel<std::int64_t> kAnswer{0, "answer"};

mpc::Plan large_plan() {
  return mpc::Plan{
      "edit:large",
      {
          {"edit:large:representatives", "RepVsNodes (sharded input)", "rep-tuples"},
          {"edit:large:classify", "PairingInput | SampledInput",
           "tuples, extend-requests"},
          {"edit:large:extend", "ExtendBatch", "tuples"},
          {"edit:large:combine", "Inbox<tuples> (classify + extend)", "answer"},
      }};
}

}  // namespace

LargeDistanceResult run_large_distance(SymView s, SymView t,
                                       const LargeDistanceParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.eps_prime > 0.0);
  MPCSD_EXPECTS(params.delta_guess > 0);

  LargeDistanceResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  if (n == 0 || n_bar == 0) {
    result.distance = std::max(n, n_bar);
    return result;
  }

  const double x = params.x;
  const double y = params.y_scale * x;
  const std::int64_t block = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - y));
  const std::int64_t larger_block =
      std::max(block, ipow_ceil(n, 1.0 - params.y_prime_scale * x));

  CandidateGeometry geo;
  geo.eps_prime = params.eps_prime;
  geo.n = n;
  geo.n_bar = n_bar;
  geo.block_size = block;
  geo.delta_guess = params.delta_guess;

  // G_tau nodes use canonical window lengths (one node per start); the
  // sampled low-degree path evaluates the full length-variant candidates.
  CandidateGeometry node_geo = geo;
  node_geo.canonical_ends = true;
  const NodeUniverse universe = build_universe(node_geo);
  const auto nb = universe.blocks.size();

  // Distances beyond the cap cannot participate in a solution of size
  // ~delta_guess, so all bounded computations stop there.
  const std::int64_t cap =
      std::max<std::int64_t>(params.distance_cap_factor * params.delta_guess, 4);
  const auto taus = tau_grid(cap, params.eps_prime);

  mpc::ClusterConfig config;
  config.memory_limit_bytes = params.memory_cap_bytes;
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  config.backend = params.backend;
  config.audit = params.audit;
  config.recorder = params.recorder;
  mpc::Driver driver(large_plan(), config);
  obs::Span pipeline_span(params.recorder, "edit:large", "pipeline");
  pipeline_span.arg("guess", static_cast<double>(params.delta_guess));

  // ------------------------------------------------------------------
  // Stage 1 (Algorithm 5): representatives vs all nodes.
  // ------------------------------------------------------------------
  const double alpha_n = std::pow(static_cast<double>(n), params.alpha_scale * x);
  const double rho = std::min(
      1.0, params.rep_constant * std::log(static_cast<double>(std::max<std::int64_t>(n, 3))) /
               std::max(1.0, alpha_n));
  Pcg32 rep_rng = derive_stream(params.seed, 1001);
  std::vector<std::int32_t> reps;
  for (std::size_t v = 0; v < universe.node_count(); ++v) {
    if (rep_rng.bernoulli(rho)) reps.push_back(static_cast<std::int32_t>(v));
  }
  // At toy scales n^alpha is O(1) and the rate saturates; cap the
  // representative set (a uniform subsample) so round-1 work stays sane.
  if (params.max_representatives > 0 && reps.size() > params.max_representatives) {
    for (std::size_t i = 0; i < params.max_representatives; ++i) {
      const std::size_t j =
          i + rep_rng.below(static_cast<std::uint32_t>(reps.size() - i));
      std::swap(reps[i], reps[j]);
    }
    reps.resize(params.max_representatives);
    std::sort(reps.begin(), reps.end());
  }
  result.representative_count = reps.size();

  // Batch (rep group) x (node group) so that each machine holds at most
  // ~memory_cap worth of strings on each side.
  const std::int64_t max_node_len = [&] {
    std::int64_t m = block;
    for (const Interval& c : universe.cs) m = std::max(m, c.length());
    return m;
  }();
  const auto bytes_per_node = static_cast<std::uint64_t>(max_node_len) * sizeof(Symbol) + 64;
  const std::size_t per_side = static_cast<std::size_t>(std::max<std::uint64_t>(
      1, params.memory_cap_bytes / (2 * bytes_per_node)));

  std::vector<RepVsNodes> round1_tasks;
  for (std::size_t rb = 0; rb < reps.size(); rb += per_side) {
    const std::size_t rhi = std::min(reps.size(), rb + per_side);
    for (std::size_t vb = 0; vb < universe.node_count(); vb += per_side) {
      const std::size_t vhi = std::min(universe.node_count(), vb + per_side);
      RepVsNodes task;
      task.reps.reserve(rhi - rb);
      for (std::size_t i = rb; i < rhi; ++i) {
        const auto z = static_cast<std::size_t>(reps[i]);
        task.reps.push_back(IdSyms{
            reps[i],
            copy_syms(universe.is_block(z) ? s : t, universe.node_interval(z))});
      }
      task.nodes.reserve(vhi - vb);
      for (std::size_t v = vb; v < vhi; ++v) {
        task.nodes.push_back(IdSyms{
            static_cast<std::int32_t>(v),
            copy_syms(universe.is_block(v) ? s : t, universe.node_interval(v))});
      }
      round1_tasks.push_back(std::move(task));
    }
  }

  const mpc::Stage<RepVsNodes> representatives_stage{
      "edit:large:representatives", [taus, nb](mpc::StageContext<RepVsNodes>& ctx) {
        std::uint64_t work = 0;
        std::vector<RepTuple> tuples;
        for (const IdSyms& z : ctx.in().reps) {
          for (const IdSyms& v : ctx.in().nodes) {
            const auto limit = std::min<std::int64_t>(
                2 * taus.back(),
                static_cast<std::int64_t>(z.syms.size() + v.syms.size()));
            const auto d = seq::edit_distance_bounded_fast(SymView(z.syms), SymView(v.syms),
                                                      std::max<std::int64_t>(limit, 1),
                                                      &work);
            if (!d.has_value()) continue;
            const bool v_is_block = static_cast<std::size_t>(v.id) < nb;
            // Blocks need d <= tau; candidate substrings need d <= 2*tau.
            const std::int64_t needed = v_is_block ? *d : ceil_div(*d, 2);
            const std::size_t j = min_tau_index(taus, needed);
            if (j >= taus.size()) continue;
            tuples.push_back(RepTuple{v.id, z.id, static_cast<std::int32_t>(j), *d});
          }
        }
        ctx.charge_work(work);
        ctx.send(kRepTuples, tuples);
      }};
  const auto mail1 =
      driver.run(representatives_stage, mpc::Driver::shard(round1_tasks));

  // Driver-side routing: index RepTuples by block and by representative.
  std::vector<std::vector<BlockObservation>> btups(nb);
  std::unordered_map<std::int32_t, std::vector<CsObservation>> cstups;
  for (const std::vector<RepTuple>& batch : driver.receive(mail1, kRepTuples)) {
    for (const RepTuple& tu : batch) {
      if (static_cast<std::size_t>(tu.node) < nb) {
        btups[static_cast<std::size_t>(tu.node)].push_back(
            BlockObservation{tu.rep, tu.rep_distance});
      } else {
        cstups[tu.rep].push_back(CsObservation{
            static_cast<std::int32_t>(static_cast<std::size_t>(tu.node) - nb),
            tu.rep_distance});
      }
    }
  }

  // jb_min[b]: smallest tau index at which block b is covered by some
  // representative (taus.size() if never).  Blocks are low degree below it.
  std::vector<std::size_t> jb_min(nb, taus.size());
  for (std::size_t b = 0; b < nb; ++b) {
    for (const BlockObservation& o : btups[b]) {
      jb_min[b] = std::min(jb_min[b], min_tau_index(taus, o.distance));
    }
  }

  // ------------------------------------------------------------------
  // Stage 2 (Algorithm 6): pairing machines + sampled low-degree machines.
  // ------------------------------------------------------------------
  // Common-seed sampling of low-degree blocks: p = C/eps'^2 * ln^2 n /
  // n^{(y-y') - (1-delta)}.
  const double logn = std::log(static_cast<double>(std::max<std::int64_t>(n, 3)));
  const double denom = std::pow(static_cast<double>(n),
                                (params.y_scale - params.y_prime_scale) * x) *
                       (static_cast<double>(params.delta_guess) / static_cast<double>(n));
  const double p_low = std::min(
      1.0, params.sample_constant * logn * logn /
               (params.eps_prime * params.eps_prime * std::max(denom, 1e-12)));

  const std::size_t max_extend =
      params.max_extend_per_block > 0
          ? params.max_extend_per_block
          : static_cast<std::size_t>(std::max(1.0, alpha_n));

  const std::size_t blocks_per_pairing_machine = static_cast<std::size_t>(
      std::max<std::int64_t>(1, ipow(n, (params.y_scale - 1.0) * x)));

  std::vector<ClassifyInput> round2_tasks;
  // (a) pairing machines.
  for (std::size_t b0 = 0; b0 < nb; b0 += blocks_per_pairing_machine) {
    const std::size_t b1 = std::min(nb, b0 + blocks_per_pairing_machine);
    PairingInput input;
    input.blocks.reserve(b1 - b0);
    // Sorted dedupe (not a hash set): a bucket-order sweep would shard the
    // rep lists in hash order and shift the golden trace across libraries.
    std::vector<std::int32_t> reps_needed;
    for (std::size_t b = b0; b < b1; ++b) {
      input.blocks.push_back(BlockObsList{universe.blocks[b].begin,
                                          universe.blocks[b].end, btups[b]});
      for (const BlockObservation& o : btups[b]) reps_needed.push_back(o.rep);
    }
    std::sort(reps_needed.begin(), reps_needed.end());
    reps_needed.erase(std::unique(reps_needed.begin(), reps_needed.end()),
                      reps_needed.end());
    input.reps.reserve(reps_needed.size());
    for (const std::int32_t z : reps_needed) {
      RepCsList list;
      list.rep = z;
      const auto it = cstups.find(z);
      if (it != cstups.end()) {
        list.entries.reserve(it->second.size());
        for (const CsObservation& o : it->second) {
          const Interval& win = universe.cs[static_cast<std::size_t>(o.cs)];
          list.entries.push_back(CsWindow{win.begin, win.end, o.distance});
        }
      }
      input.reps.push_back(std::move(list));
    }
    round2_tasks.emplace_back(std::move(input));
  }

  // (b) sampled low-degree blocks, one machine per (block, start batch).
  const std::int64_t max_len = std::min(
      static_cast<std::int64_t>(std::ceil(static_cast<double>(block) / params.eps_prime)),
      block + params.delta_guess);
  std::size_t sampled_blocks = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    Pcg32 coin = derive_stream(params.seed, 2001, b);
    if (!coin.bernoulli(p_low)) continue;
    ++sampled_blocks;
    const Interval& blk = universe.blocks[b];
    const auto starts = candidate_starts(blk.begin, geo);
    std::size_t i = 0;
    while (i < starts.size()) {
      std::size_t j = i;
      while (j + 1 < starts.size() && starts[j + 1] - starts[i] <= block) ++j;
      const std::int64_t chunk_begin = starts[i];
      const std::int64_t chunk_end = std::min(n_bar, starts[j] + max_len);
      SampledInput input;
      input.block_begin = blk.begin;
      input.block = copy_syms(s, blk);
      input.jb = jb_min[b];
      input.starts.assign(starts.begin() + static_cast<std::ptrdiff_t>(i),
                          starts.begin() + static_cast<std::ptrdiff_t>(j + 1));
      input.chunk_begin = chunk_begin;
      input.chunk.assign(t.begin() + chunk_begin, t.begin() + chunk_end);
      round2_tasks.emplace_back(std::move(input));
      i = j + 1;
    }
  }
  result.sampled_blocks = sampled_blocks;

  const mpc::Stage<ClassifyInput> classify_stage{
      "edit:large:classify",
      [taus, geo, cap, max_extend, block, larger_block, n,
       n_bar](mpc::StageContext<ClassifyInput>& ctx) {
        std::uint64_t work = 0;
        if (const auto* pairing = std::get_if<PairingInput>(&ctx.in())) {
          // Pairing machine: join b-tuples with cs-tuples on the rep.
          std::unordered_map<std::int32_t, const std::vector<CsWindow>*> cs_by_rep;
          for (const RepCsList& list : pairing->reps) {
            cs_by_rep.emplace(list.rep, &list.entries);
          }
          std::vector<seq::Tuple> tuples;
          for (const BlockObsList& info : pairing->blocks) {
            // Keep the best estimate per window.  Sorted sweep (not a hash
            // map): the tuple stream feeds metered mailboxes, so its byte
            // order must not depend on the standard library's hash layout.
            std::vector<std::pair<std::uint64_t, std::int64_t>> bounds;
            for (const BlockObservation& o : info.obs) {
              const auto it = cs_by_rep.find(o.rep);
              if (it == cs_by_rep.end()) continue;
              for (const CsWindow& e : *it->second) {
                ++work;
                const std::int64_t bound = o.distance + e.distance;
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(e.begin) << 32U) |
                    static_cast<std::uint64_t>(e.end - e.begin);
                bounds.emplace_back(key, bound);
              }
            }
            std::sort(bounds.begin(), bounds.end());
            for (std::size_t i = 0; i < bounds.size(); ++i) {
              if (i > 0 && bounds[i].first == bounds[i - 1].first) continue;
              const auto [key, bound] = bounds[i];  // min: sorted pair order
              const auto begin = static_cast<std::int64_t>(key >> 32U);
              const auto len = static_cast<std::int64_t>(key & 0xffffffffULL);
              tuples.push_back(
                  seq::Tuple{info.begin, info.end, begin, begin + len, bound});
            }
          }
          ctx.charge_work(work + 1);
          ctx.send(kTuples, tuples);
        } else {
          // Sampled low-degree block: exact distances + extension requests.
          const SampledInput& in = std::get<SampledInput>(ctx.in());
          const SymView block_view(in.block);
          const SymView chunk_view(in.chunk);
          const auto block_len = static_cast<std::int64_t>(in.block.size());
          const std::int64_t block_end = in.block_begin + block_len;

          // Largest threshold below the block's coverage level: candidates
          // this close get extended (the block is low degree there).
          const std::int64_t extend_threshold = in.jb == 0 ? -1 : taus[in.jb - 1];

          std::vector<seq::Tuple> tuples;
          std::vector<std::pair<std::int64_t, Interval>> extendable;  // (e, window)
          for (const std::int64_t sp : in.starts) {
            for (const std::int64_t ep : candidate_ends(sp, block_len, geo)) {
              const SymView window =
                  subview(chunk_view, {sp - in.chunk_begin, ep - in.chunk_begin});
              // Distances beyond the guess cap cannot enter an accepted
              // solution; censor them (keeps per-pair cost O(B·cap)).
              const auto limit = std::min<std::int64_t>(
                  cap,
                  std::max<std::int64_t>(
                      1, block_len + static_cast<std::int64_t>(window.size())));
              const auto e =
                  seq::edit_distance_bounded_fast(block_view, window, limit, &work);
              if (!e.has_value()) continue;
              tuples.push_back(seq::Tuple{in.block_begin, block_end, sp, ep, *e});
              if (*e <= extend_threshold) extendable.emplace_back(*e, Interval{sp, ep});
            }
          }
          // Low-degree nodes have at most n^alpha close candidates; cap.
          std::sort(extendable.begin(), extendable.end(),
                    [](const auto& a, const auto& b) { return a.first < b.first; });
          if (extendable.size() > max_extend) extendable.resize(max_extend);

          // Extension requests for every sibling block in the same larger
          // block (the machine derives sibling intervals from n, B, B').
          std::vector<ExtendRequest> requests;
          const std::int64_t lb = in.block_begin / larger_block;
          for (std::int64_t pos = 0; pos < n; pos += block) {
            if (pos / larger_block != lb || pos == in.block_begin) continue;
            const std::int64_t sib_end = std::min(n, pos + block);
            for (const auto& [e, win] : extendable) {
              const std::int64_t wb =
                  std::clamp<std::int64_t>(win.begin + (pos - in.block_begin), 0, n_bar);
              const std::int64_t we = std::clamp<std::int64_t>(
                  win.end + (sib_end - block_end), wb, n_bar);
              requests.push_back(ExtendRequest{pos, sib_end, wb, we});
            }
          }

          ctx.charge_work(work + 1);
          ctx.charge_scratch((in.block.size() + in.chunk.size()) * sizeof(Symbol));
          ctx.send(kTuples, tuples);
          ctx.send(kExtendRequests, requests);
        }
      }};
  const auto mail2 = driver.run(classify_stage, mpc::Driver::shard(round2_tasks));

  // Driver: dedupe extension requests and pack round-3 machines.
  std::vector<ExtendRequest> requests;
  {
    std::unordered_set<std::uint64_t> seen;
    for (const auto& batch : driver.receive(mail2, kExtendRequests)) {
      for (const ExtendRequest& req : batch) {
        const std::uint64_t key =
            splitmix64(static_cast<std::uint64_t>(req.block_begin) * 0x9e3779b9U +
                       static_cast<std::uint64_t>(req.window_begin)) ^
            splitmix64(static_cast<std::uint64_t>(req.window_end) * 31 +
                       static_cast<std::uint64_t>(req.block_end));
        if (seen.insert(key).second) requests.push_back(req);
      }
    }
  }
  result.extension_requests = requests.size();

  std::vector<ExtendBatch> round3_tasks;
  {
    std::size_t i = 0;
    while (i < requests.size()) {
      ExtendBatch task;
      std::uint64_t bytes = 0;
      while (i < requests.size()) {
        const ExtendRequest& req = requests[i];
        const auto req_bytes = static_cast<std::uint64_t>(
            (req.block_end - req.block_begin) + (req.window_end - req.window_begin)) *
                sizeof(Symbol) + 64;
        if (!task.jobs.empty() && bytes + req_bytes > params.memory_cap_bytes / 2) break;
        task.jobs.push_back(ExtendJob{
            req.block_begin, req.block_end, req.window_begin, req.window_end,
            copy_syms(s, {req.block_begin, req.block_end}),
            copy_syms(t, {req.window_begin, req.window_end})});
        bytes += req_bytes;
        ++i;
      }
      round3_tasks.push_back(std::move(task));
    }
    if (round3_tasks.empty()) round3_tasks.emplace_back();
  }

  // ------------------------------------------------------------------
  // Stage 3 (Algorithm 7): evaluate extension requests exactly.
  // ------------------------------------------------------------------
  const mpc::Stage<ExtendBatch> extend_stage{
      "edit:large:extend", [cap](mpc::StageContext<ExtendBatch>& ctx) {
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (const ExtendJob& job : ctx.in().jobs) {
          const auto limit = std::min<std::int64_t>(
              cap, std::max<std::int64_t>(
                       1, static_cast<std::int64_t>(job.block.size() +
                                                    job.window.size())));
          const auto e = seq::edit_distance_bounded_fast(SymView(job.block),
                                                    SymView(job.window), limit, &work);
          if (!e.has_value()) continue;
          tuples.push_back(seq::Tuple{job.block_begin, job.block_end,
                                      job.window_begin, job.window_end, *e});
        }
        ctx.charge_work(work + 1);
        ctx.send(kTuples, tuples);
      }};
  const auto mail3 = driver.run(extend_stage, mpc::Driver::shard(round3_tasks));

  // ------------------------------------------------------------------
  // Stage 4: combine everything (round-2 and round-3 tuple payloads are
  // chained in place; nothing is concatenated).
  // ------------------------------------------------------------------
  ByteChain all_tuples = mpc::gather_view(mail2, kTuples.mailbox);
  all_tuples.add(mpc::gather_view(mail3, kTuples.mailbox));
  using TupleInbox = mpc::Inbox<std::vector<seq::Tuple>>;
  const mpc::Stage<TupleInbox> combine_stage{
      "edit:large:combine", [n, n_bar](mpc::StageContext<TupleInbox>& ctx) {
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (auto& batch : ctx.in().messages) {
          tuples.insert(tuples.end(), batch.begin(), batch.end());
        }
        const auto tuple_count = static_cast<std::uint64_t>(tuples.size());
        seq::CombineOptions options;
        options.gap = seq::GapCost::kSum;
        const std::int64_t answer =
            seq::combine_tuples(std::move(tuples), n, n_bar, options, &work);
        ctx.charge_work(work);
        ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
        ctx.send(kAnswer, answer);
        ctx.stash(tuple_count);
      }};
  std::vector<Bytes> combine_stash;
  mpc::RoundOptions combine_options;
  combine_options.machine_stash = &combine_stash;
  const auto mail4 = driver.run_views(combine_stage, {all_tuples}, combine_options);
  driver.finish();

  const auto answers = driver.receive(mail4, kAnswer);
  MPCSD_ENSURES(answers.size() == 1);
  result.distance = answers.front();
  result.tuple_count =
      static_cast<std::size_t>(mpc::unstash<std::uint64_t>(combine_stash.at(0)));
  result.trace = driver.take_trace();
  MPCSD_ENSURES(result.trace.round_count() == 4);
  return result;
}

}  // namespace mpcsd::edit_mpc
