#include "edit_mpc/large_distance.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "mpc/cluster.hpp"
#include "seq/combine.hpp"
#include "seq/edit_distance.hpp"
#include "seq/edit_distance_fast.hpp"

namespace mpcsd::edit_mpc {

namespace {

/// A deduplicated extension request: evaluate ed(block, window) in round 3.
struct ExtendRequest {
  std::int64_t block_begin = 0;
  std::int64_t block_end = 0;
  std::int64_t window_begin = 0;
  std::int64_t window_end = 0;
};

struct CsObservation {
  std::int32_t cs = 0;
  std::int64_t distance = 0;
};

struct BlockObservation {
  std::int32_t rep = 0;
  std::int64_t distance = 0;
};

std::vector<Symbol> copy_syms(SymView v, Interval iv) {
  const SymView sub = subview(v, iv);
  return std::vector<Symbol>(sub.begin(), sub.end());
}

}  // namespace

LargeDistanceResult run_large_distance(SymView s, SymView t,
                                       const LargeDistanceParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.eps_prime > 0.0);
  MPCSD_EXPECTS(params.delta_guess > 0);

  LargeDistanceResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  if (n == 0 || n_bar == 0) {
    result.distance = std::max(n, n_bar);
    return result;
  }

  const double x = params.x;
  const double y = params.y_scale * x;
  const std::int64_t block = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - y));
  const std::int64_t larger_block =
      std::max(block, ipow_ceil(n, 1.0 - params.y_prime_scale * x));

  CandidateGeometry geo;
  geo.eps_prime = params.eps_prime;
  geo.n = n;
  geo.n_bar = n_bar;
  geo.block_size = block;
  geo.delta_guess = params.delta_guess;

  // G_tau nodes use canonical window lengths (one node per start); the
  // sampled low-degree path evaluates the full length-variant candidates.
  CandidateGeometry node_geo = geo;
  node_geo.canonical_ends = true;
  const NodeUniverse universe = build_universe(node_geo);
  const auto nb = universe.blocks.size();

  // Distances beyond the cap cannot participate in a solution of size
  // ~delta_guess, so all bounded computations stop there.
  const std::int64_t cap =
      std::max<std::int64_t>(params.distance_cap_factor * params.delta_guess, 4);
  const auto taus = tau_grid(cap, params.eps_prime);

  mpc::ClusterConfig config;
  config.memory_limit_bytes = params.memory_cap_bytes;
  config.strict_memory = params.strict_memory;
  config.workers = params.workers;
  config.seed = params.seed;
  mpc::Cluster cluster(config);

  // ------------------------------------------------------------------
  // Round 1 (Algorithm 5): representatives vs all nodes.
  // ------------------------------------------------------------------
  const double alpha_n = std::pow(static_cast<double>(n), params.alpha_scale * x);
  const double rho = std::min(
      1.0, params.rep_constant * std::log(static_cast<double>(std::max<std::int64_t>(n, 3))) /
               std::max(1.0, alpha_n));
  Pcg32 rep_rng = derive_stream(params.seed, 1001);
  std::vector<std::int32_t> reps;
  for (std::size_t v = 0; v < universe.node_count(); ++v) {
    if (rep_rng.bernoulli(rho)) reps.push_back(static_cast<std::int32_t>(v));
  }
  // At toy scales n^alpha is O(1) and the rate saturates; cap the
  // representative set (a uniform subsample) so round-1 work stays sane.
  if (params.max_representatives > 0 && reps.size() > params.max_representatives) {
    for (std::size_t i = 0; i < params.max_representatives; ++i) {
      const std::size_t j =
          i + rep_rng.below(static_cast<std::uint32_t>(reps.size() - i));
      std::swap(reps[i], reps[j]);
    }
    reps.resize(params.max_representatives);
    std::sort(reps.begin(), reps.end());
  }
  result.representative_count = reps.size();

  // Batch (rep group) x (node group) so that each machine holds at most
  // ~memory_cap worth of strings on each side.
  const std::int64_t max_node_len = [&] {
    std::int64_t m = block;
    for (const Interval& c : universe.cs) m = std::max(m, c.length());
    return m;
  }();
  const auto bytes_per_node = static_cast<std::uint64_t>(max_node_len) * sizeof(Symbol) + 64;
  const std::size_t per_side = static_cast<std::size_t>(std::max<std::uint64_t>(
      1, params.memory_cap_bytes / (2 * bytes_per_node)));

  std::vector<Bytes> round1_inputs;
  for (std::size_t rb = 0; rb < reps.size(); rb += per_side) {
    const std::size_t rhi = std::min(reps.size(), rb + per_side);
    for (std::size_t vb = 0; vb < universe.node_count(); vb += per_side) {
      const std::size_t vhi = std::min(universe.node_count(), vb + per_side);
      ByteWriter w;
      w.put<std::uint64_t>(rhi - rb);
      for (std::size_t i = rb; i < rhi; ++i) {
        const auto z = static_cast<std::size_t>(reps[i]);
        w.put<std::int32_t>(reps[i]);
        w.put_vector(copy_syms(universe.is_block(z) ? s : t, universe.node_interval(z)));
      }
      w.put<std::uint64_t>(vhi - vb);
      for (std::size_t v = vb; v < vhi; ++v) {
        w.put<std::int32_t>(static_cast<std::int32_t>(v));
        w.put_vector(copy_syms(universe.is_block(v) ? s : t, universe.node_interval(v)));
      }
      round1_inputs.push_back(std::move(w).take());
    }
  }

  const auto mail1 = cluster.run_round(
      "edit:large:representatives", round1_inputs, [&](mpc::MachineContext& ctx) {
        auto r = ctx.reader();
        const auto rep_count = r.get<std::uint64_t>();
        std::vector<std::pair<std::int32_t, std::vector<Symbol>>> zs(rep_count);
        for (auto& [id, syms] : zs) {
          id = r.get<std::int32_t>();
          syms = r.get_vector<Symbol>();
        }
        const auto node_count = r.get<std::uint64_t>();
        std::vector<std::pair<std::int32_t, std::vector<Symbol>>> vs(node_count);
        for (auto& [id, syms] : vs) {
          id = r.get<std::int32_t>();
          syms = r.get_vector<Symbol>();
        }

        std::uint64_t work = 0;
        std::vector<RepTuple> tuples;
        for (const auto& [zid, zsyms] : zs) {
          for (const auto& [vid, vsyms] : vs) {
            const auto limit = std::min<std::int64_t>(
                2 * taus.back(),
                static_cast<std::int64_t>(zsyms.size() + vsyms.size()));
            const auto d = seq::edit_distance_bounded_fast(SymView(zsyms), SymView(vsyms),
                                                      std::max<std::int64_t>(limit, 1),
                                                      &work);
            if (!d.has_value()) continue;
            const bool v_is_block = static_cast<std::size_t>(vid) < nb;
            // Blocks need d <= tau; candidate substrings need d <= 2*tau.
            const std::int64_t needed = v_is_block ? *d : ceil_div(*d, 2);
            const std::size_t j = min_tau_index(taus, needed);
            if (j >= taus.size()) continue;
            tuples.push_back(RepTuple{vid, zid, static_cast<std::int32_t>(j), *d});
          }
        }
        ctx.charge_work(work);
        ByteWriter w;
        w.put<std::uint64_t>(tuples.size());
        for (const RepTuple& tu : tuples) w.put(tu);
        ctx.emit(0, std::move(w).take());
      });

  // Driver-side routing: index RepTuples by block and by representative.
  std::vector<std::vector<BlockObservation>> btups(nb);
  std::unordered_map<std::int32_t, std::vector<CsObservation>> cstups;
  {
    const ByteChain payload = mpc::gather_view(mail1, 0);
    ChainReader r(payload);
    while (!r.exhausted()) {
      const auto count = r.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto tu = r.get<RepTuple>();
        if (static_cast<std::size_t>(tu.node) < nb) {
          btups[static_cast<std::size_t>(tu.node)].push_back(
              BlockObservation{tu.rep, tu.rep_distance});
        } else {
          cstups[tu.rep].push_back(CsObservation{
              static_cast<std::int32_t>(static_cast<std::size_t>(tu.node) - nb),
              tu.rep_distance});
        }
      }
    }
  }

  // jb_min[b]: smallest tau index at which block b is covered by some
  // representative (taus.size() if never).  Blocks are low degree below it.
  std::vector<std::size_t> jb_min(nb, taus.size());
  for (std::size_t b = 0; b < nb; ++b) {
    for (const BlockObservation& o : btups[b]) {
      jb_min[b] = std::min(jb_min[b], min_tau_index(taus, o.distance));
    }
  }

  // ------------------------------------------------------------------
  // Round 2 (Algorithm 6): pairing machines + sampled low-degree machines.
  // ------------------------------------------------------------------
  // Common-seed sampling of low-degree blocks: p = C/eps'^2 * ln^2 n /
  // n^{(y-y') - (1-delta)}.
  const double logn = std::log(static_cast<double>(std::max<std::int64_t>(n, 3)));
  const double denom = std::pow(static_cast<double>(n),
                                (params.y_scale - params.y_prime_scale) * x) *
                       (static_cast<double>(params.delta_guess) / static_cast<double>(n));
  const double p_low = std::min(
      1.0, params.sample_constant * logn * logn /
               (params.eps_prime * params.eps_prime * std::max(denom, 1e-12)));

  const std::size_t max_extend =
      params.max_extend_per_block > 0
          ? params.max_extend_per_block
          : static_cast<std::size_t>(std::max(1.0, alpha_n));

  const std::size_t blocks_per_pairing_machine = static_cast<std::size_t>(
      std::max<std::int64_t>(1, ipow(n, (params.y_scale - 1.0) * x)));

  std::vector<Bytes> round2_inputs;
  // (a) pairing machines.
  for (std::size_t b0 = 0; b0 < nb; b0 += blocks_per_pairing_machine) {
    const std::size_t b1 = std::min(nb, b0 + blocks_per_pairing_machine);
    ByteWriter w;
    w.put<std::uint8_t>(0);  // tag: pairing
    w.put<std::uint64_t>(b1 - b0);
    std::unordered_set<std::int32_t> reps_needed;
    for (std::size_t b = b0; b < b1; ++b) {
      w.put<std::int64_t>(universe.blocks[b].begin);
      w.put<std::int64_t>(universe.blocks[b].end);
      w.put<std::uint64_t>(btups[b].size());
      for (const BlockObservation& o : btups[b]) {
        w.put(o);
        reps_needed.insert(o.rep);
      }
    }
    w.put<std::uint64_t>(reps_needed.size());
    for (const std::int32_t z : reps_needed) {
      w.put<std::int32_t>(z);
      const auto it = cstups.find(z);
      const std::size_t count = it == cstups.end() ? 0 : it->second.size();
      w.put<std::uint64_t>(count);
      if (it != cstups.end()) {
        for (const CsObservation& o : it->second) {
          const Interval& win = universe.cs[static_cast<std::size_t>(o.cs)];
          w.put<std::int64_t>(win.begin);
          w.put<std::int64_t>(win.end);
          w.put<std::int64_t>(o.distance);
        }
      }
    }
    round2_inputs.push_back(std::move(w).take());
  }

  // (b) sampled low-degree blocks, one machine per (block, start batch).
  const std::int64_t max_len = std::min(
      static_cast<std::int64_t>(std::ceil(static_cast<double>(block) / params.eps_prime)),
      block + params.delta_guess);
  std::size_t sampled_blocks = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    Pcg32 coin = derive_stream(params.seed, 2001, b);
    if (!coin.bernoulli(p_low)) continue;
    ++sampled_blocks;
    const Interval& blk = universe.blocks[b];
    const auto starts = candidate_starts(blk.begin, geo);
    std::size_t i = 0;
    while (i < starts.size()) {
      std::size_t j = i;
      while (j + 1 < starts.size() && starts[j + 1] - starts[i] <= block) ++j;
      const std::int64_t chunk_begin = starts[i];
      const std::int64_t chunk_end = std::min(n_bar, starts[j] + max_len);
      ByteWriter w;
      w.put<std::uint8_t>(1);  // tag: sampled block
      w.put<std::int64_t>(blk.begin);
      w.put_vector(copy_syms(s, blk));
      w.put<std::uint64_t>(jb_min[b]);
      std::vector<std::int64_t> batch(starts.begin() + static_cast<std::ptrdiff_t>(i),
                                      starts.begin() + static_cast<std::ptrdiff_t>(j + 1));
      w.put_vector(batch);
      w.put<std::int64_t>(chunk_begin);
      std::vector<Symbol> chunk_syms(t.begin() + chunk_begin, t.begin() + chunk_end);
      w.put_vector(chunk_syms);
      round2_inputs.push_back(std::move(w).take());
      i = j + 1;
    }
  }
  result.sampled_blocks = sampled_blocks;

  const auto mail2 = cluster.run_round(
      "edit:large:classify", round2_inputs, [&](mpc::MachineContext& ctx) {
        auto r = ctx.reader();
        const auto tag = r.get<std::uint8_t>();
        std::uint64_t work = 0;
        if (tag == 0) {
          // Pairing machine: join b-tuples with cs-tuples on the rep.
          const auto block_count = r.get<std::uint64_t>();
          struct BlockInfo {
            std::int64_t begin, end;
            std::vector<BlockObservation> obs;
          };
          std::vector<BlockInfo> infos(block_count);
          for (auto& info : infos) {
            info.begin = r.get<std::int64_t>();
            info.end = r.get<std::int64_t>();
            const auto c = r.get<std::uint64_t>();
            info.obs.resize(c);
            for (auto& o : info.obs) o = r.get<BlockObservation>();
          }
          struct CsEntry {
            std::int64_t begin, end, distance;
          };
          std::unordered_map<std::int32_t, std::vector<CsEntry>> cs_by_rep;
          const auto rep_count = r.get<std::uint64_t>();
          for (std::uint64_t i = 0; i < rep_count; ++i) {
            const auto z = r.get<std::int32_t>();
            const auto c = r.get<std::uint64_t>();
            auto& list = cs_by_rep[z];
            list.resize(c);
            for (auto& e : list) {
              e.begin = r.get<std::int64_t>();
              e.end = r.get<std::int64_t>();
              e.distance = r.get<std::int64_t>();
            }
          }
          std::vector<seq::Tuple> tuples;
          for (const BlockInfo& info : infos) {
            // Keep the best estimate per window.
            std::unordered_map<std::uint64_t, std::int64_t> best;
            for (const BlockObservation& o : info.obs) {
              const auto it = cs_by_rep.find(o.rep);
              if (it == cs_by_rep.end()) continue;
              for (const CsEntry& e : it->second) {
                ++work;
                const std::int64_t bound = o.distance + e.distance;
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(e.begin) << 32U) |
                    static_cast<std::uint64_t>(e.end - e.begin);
                auto [bit, inserted] = best.emplace(key, bound);
                if (!inserted && bound < bit->second) bit->second = bound;
              }
            }
            for (const auto& [key, bound] : best) {
              const auto begin = static_cast<std::int64_t>(key >> 32U);
              const auto len = static_cast<std::int64_t>(key & 0xffffffffULL);
              tuples.push_back(
                  seq::Tuple{info.begin, info.end, begin, begin + len, bound});
            }
          }
          ctx.charge_work(work + 1);
          ByteWriter w;
          seq::write_tuples(w, tuples);
          ctx.emit(0, std::move(w).take());
        } else {
          // Sampled low-degree block: exact distances + extension requests.
          const auto block_begin = r.get<std::int64_t>();
          const auto block_syms = r.get_vector<Symbol>();
          const auto jb = r.get<std::uint64_t>();
          const auto batch = r.get_vector<std::int64_t>();
          const auto chunk_begin = r.get<std::int64_t>();
          const auto chunk_syms = r.get_vector<Symbol>();
          const SymView block_view(block_syms);
          const SymView chunk_view(chunk_syms);
          const auto block_len = static_cast<std::int64_t>(block_syms.size());
          const std::int64_t block_end = block_begin + block_len;

          // Largest threshold below the block's coverage level: candidates
          // this close get extended (the block is low degree there).
          const std::int64_t extend_threshold = jb == 0 ? -1 : taus[jb - 1];

          std::vector<seq::Tuple> tuples;
          std::vector<std::pair<std::int64_t, Interval>> extendable;  // (e, window)
          for (const std::int64_t sp : batch) {
            for (const std::int64_t ep : candidate_ends(sp, block_len, geo)) {
              const SymView window =
                  subview(chunk_view, {sp - chunk_begin, ep - chunk_begin});
              // Distances beyond the guess cap cannot enter an accepted
              // solution; censor them (keeps per-pair cost O(B·cap)).
              const auto limit = std::min<std::int64_t>(
                  cap,
                  std::max<std::int64_t>(
                      1, block_len + static_cast<std::int64_t>(window.size())));
              const auto e =
                  seq::edit_distance_bounded_fast(block_view, window, limit, &work);
              if (!e.has_value()) continue;
              tuples.push_back(seq::Tuple{block_begin, block_end, sp, ep, *e});
              if (*e <= extend_threshold) extendable.emplace_back(*e, Interval{sp, ep});
            }
          }
          // Low-degree nodes have at most n^alpha close candidates; cap.
          std::sort(extendable.begin(), extendable.end(),
                    [](const auto& a, const auto& b) { return a.first < b.first; });
          if (extendable.size() > max_extend) extendable.resize(max_extend);

          // Extension requests for every sibling block in the same larger
          // block (the machine derives sibling intervals from n, B, B').
          ByteWriter ext;
          std::uint64_t ext_count = 0;
          ByteWriter ext_body;
          const std::int64_t lb = block_begin / larger_block;
          for (std::int64_t pos = 0; pos < n; pos += block) {
            if (pos / larger_block != lb || pos == block_begin) continue;
            const std::int64_t sib_end = std::min(n, pos + block);
            for (const auto& [e, win] : extendable) {
              const std::int64_t wb =
                  std::clamp<std::int64_t>(win.begin + (pos - block_begin), 0, n_bar);
              const std::int64_t we = std::clamp<std::int64_t>(
                  win.end + (sib_end - block_end), wb, n_bar);
              ext_body.put<std::int64_t>(pos);
              ext_body.put<std::int64_t>(sib_end);
              ext_body.put<std::int64_t>(wb);
              ext_body.put<std::int64_t>(we);
              ++ext_count;
            }
          }
          ext.put<std::uint64_t>(ext_count);
          Bytes body = std::move(ext_body).take();
          Bytes head = std::move(ext).take();
          head.insert(head.end(), body.begin(), body.end());

          ctx.charge_work(work + 1);
          ctx.charge_scratch((block_syms.size() + chunk_syms.size()) * sizeof(Symbol));
          ByteWriter w;
          seq::write_tuples(w, tuples);
          ctx.emit(0, std::move(w).take());
          ctx.emit(1, std::move(head));
        }
      });

  // Driver: dedupe extension requests and pack round-3 machines.
  std::vector<ExtendRequest> requests;
  {
    std::unordered_set<std::uint64_t> seen;
    const ByteChain payload = mpc::gather_view(mail2, 1);
    ChainReader r(payload);
    while (!r.exhausted()) {
      const auto count = r.get<std::uint64_t>();
      for (std::uint64_t i = 0; i < count; ++i) {
        ExtendRequest req;
        req.block_begin = r.get<std::int64_t>();
        req.block_end = r.get<std::int64_t>();
        req.window_begin = r.get<std::int64_t>();
        req.window_end = r.get<std::int64_t>();
        const std::uint64_t key =
            splitmix64(static_cast<std::uint64_t>(req.block_begin) * 0x9e3779b9U +
                       static_cast<std::uint64_t>(req.window_begin)) ^
            splitmix64(static_cast<std::uint64_t>(req.window_end) * 31 +
                       static_cast<std::uint64_t>(req.block_end));
        if (seen.insert(key).second) requests.push_back(req);
      }
    }
  }
  result.extension_requests = requests.size();

  std::vector<Bytes> round3_inputs;
  {
    std::size_t i = 0;
    while (i < requests.size()) {
      ByteWriter w;
      std::uint64_t bytes = 0;
      std::uint64_t count = 0;
      ByteWriter body;
      while (i < requests.size()) {
        const ExtendRequest& req = requests[i];
        const auto req_bytes = static_cast<std::uint64_t>(
            (req.block_end - req.block_begin) + (req.window_end - req.window_begin)) *
                sizeof(Symbol) + 64;
        if (count > 0 && bytes + req_bytes > params.memory_cap_bytes / 2) break;
        body.put<std::int64_t>(req.block_begin);
        body.put<std::int64_t>(req.block_end);
        body.put<std::int64_t>(req.window_begin);
        body.put<std::int64_t>(req.window_end);
        body.put_vector(copy_syms(s, {req.block_begin, req.block_end}));
        body.put_vector(copy_syms(t, {req.window_begin, req.window_end}));
        bytes += req_bytes;
        ++count;
        ++i;
      }
      w.put<std::uint64_t>(count);
      Bytes head = std::move(w).take();
      const Bytes body_bytes = std::move(body).take();
      head.insert(head.end(), body_bytes.begin(), body_bytes.end());
      round3_inputs.push_back(std::move(head));
    }
    if (round3_inputs.empty()) {
      ByteWriter w;
      w.put<std::uint64_t>(0);
      round3_inputs.push_back(std::move(w).take());
    }
  }

  // ------------------------------------------------------------------
  // Round 3 (Algorithm 7): evaluate extension requests exactly.
  // ------------------------------------------------------------------
  const auto mail3 = cluster.run_round(
      "edit:large:extend", round3_inputs, [&](mpc::MachineContext& ctx) {
        auto r = ctx.reader();
        const auto count = r.get<std::uint64_t>();
        std::uint64_t work = 0;
        std::vector<seq::Tuple> tuples;
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto bb = r.get<std::int64_t>();
          const auto be = r.get<std::int64_t>();
          const auto wb = r.get<std::int64_t>();
          const auto we = r.get<std::int64_t>();
          const auto block_syms = r.get_vector<Symbol>();
          const auto window_syms = r.get_vector<Symbol>();
          const auto limit = std::min<std::int64_t>(
              cap, std::max<std::int64_t>(
                       1, static_cast<std::int64_t>(block_syms.size() +
                                                    window_syms.size())));
          const auto e = seq::edit_distance_bounded_fast(SymView(block_syms),
                                                    SymView(window_syms), limit, &work);
          if (!e.has_value()) continue;
          tuples.push_back(seq::Tuple{bb, be, wb, we, *e});
        }
        ctx.charge_work(work + 1);
        ByteWriter w;
        seq::write_tuples(w, tuples);
        ctx.emit(0, std::move(w).take());
      });

  // ------------------------------------------------------------------
  // Round 4: combine everything (round-2 and round-3 tuple payloads are
  // chained in place; nothing is concatenated).
  // ------------------------------------------------------------------
  ByteChain all_tuples = mpc::gather_view(mail2, 0);
  all_tuples.add(mpc::gather_view(mail3, 0));
  std::int64_t answer = n + n_bar;
  std::size_t tuple_count = 0;
  cluster.run_round_views("edit:large:combine", {all_tuples}, [&](mpc::MachineContext& ctx) {
    std::uint64_t work = 0;
    auto tuples = seq::read_all_tuples(ctx.input());
    tuple_count = tuples.size();
    seq::CombineOptions options;
    options.gap = seq::GapCost::kSum;
    answer = seq::combine_tuples(std::move(tuples), n, n_bar, options, &work);
    ctx.charge_work(work);
    ctx.charge_scratch(tuple_count * sizeof(seq::Tuple) * 2);
    ByteWriter w;
    w.put<std::int64_t>(answer);
    ctx.emit(0, std::move(w).take());
  });

  result.distance = answer;
  result.tuple_count = tuple_count;
  result.trace = cluster.take_trace();
  MPCSD_ENSURES(result.trace.round_count() == 4);
  return result;
}

}  // namespace mpcsd::edit_mpc
