#include "edit_mpc/hss_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"
#include "edit_mpc/solver.hpp"

namespace mpcsd::edit_mpc {

HssBaselineResult hss_edit_distance_mpc(SymView s, SymView t,
                                        const HssBaselineParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.epsilon > 0.0);

  HssBaselineResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  if (n == n_bar && std::equal(s.begin(), s.end(), t.begin())) return result;
  if (n == 0 || n_bar == 0) {
    result.distance = std::max(n, n_bar);
    return result;
  }

  EditMpcParams cap_params;
  cap_params.x = params.x;
  cap_params.epsilon = params.epsilon;
  cap_params.memory_slack = params.memory_slack;
  const std::uint64_t cap = edit_memory_cap_bytes(n, cap_params);

  const double eps_prime = params.epsilon / 4.0;
  obs::Span solve_span(params.recorder, "hss:solve", "solver");
  solve_span.arg("n", static_cast<double>(n));
  std::int64_t best = n + n_bar;
  std::uint64_t guess_seed = params.seed;
  for (const std::int64_t guess : geometric_grid(std::max(n, n_bar), params.epsilon)) {
    if (guess == 0) continue;
    ++result.guesses_run;
    guess_seed = splitmix64(guess_seed + static_cast<std::uint64_t>(guess));

    SmallDistanceParams sp;
    sp.eps_prime = eps_prime;
    sp.x = params.x;
    sp.delta_guess = guess;
    sp.unit = DistanceUnit::kExactBanded;
    sp.batch_starts = false;  // [20]: one machine per block/candidate pair
    sp.seed = guess_seed;
    sp.workers = params.workers;
    sp.strict_memory = params.strict_memory;
    sp.memory_cap_bytes = cap;
    sp.recorder = params.recorder;
    auto pipeline = run_small_distance(s, t, sp);
    result.trace.merge_parallel(pipeline.trace);

    if (pipeline.distance < best) {
      best = pipeline.distance;
      result.accepted_guess = guess;
    }
    const auto accept = static_cast<std::int64_t>(
        std::ceil((1.0 + params.epsilon) * static_cast<double>(guess))) + 2;
    if (params.early_exit && pipeline.distance <= accept) break;
  }

  result.distance = best;
  MPCSD_ENSURES(result.trace.round_count() == 2);
  return result;
}

}  // namespace mpcsd::edit_mpc
