// The threshold graph G_tau of Section 5.2.
//
// Nodes are the n^y blocks of s plus the (deduplicated) candidate
// substrings of s̄ over all blocks; two nodes are adjacent in G_tau when
// their edit distance is at most tau.  The pipeline never materialises
// G_tau: round 1 computes representative-to-all distances (Algorithm 5) and
// every later consumer reconstructs the edges it needs from the emitted
// `RepTuple`s, exactly as Lemma 7 prescribes.
//
// Thresholds are discretised as tau in {0} ∪ {(1+eps')^j}; a RepTuple
// records the *smallest* tau index at which its node enters N_tau(z)
// (blocks) or N_2tau(z) (candidate substrings), which encodes membership
// for every larger threshold at once.
#pragma once

#include <cstdint>
#include <vector>

#include "edit_mpc/candidates.hpp"
#include "seq/types.hpp"

namespace mpcsd::edit_mpc {

/// Blocks + deduplicated candidate-substring nodes.
struct NodeUniverse {
  std::vector<Interval> blocks;                   ///< in s
  std::vector<Interval> cs;                       ///< in s̄ (deduped)
  std::vector<std::vector<std::int32_t>> block_cands;  ///< per block: cs ids

  [[nodiscard]] std::size_t node_count() const noexcept {
    return blocks.size() + cs.size();
  }
  /// Global node id layout: [0, blocks) then [blocks, blocks+cs).
  [[nodiscard]] bool is_block(std::size_t node) const noexcept {
    return node < blocks.size();
  }
  [[nodiscard]] Interval node_interval(std::size_t node) const {
    return is_block(node) ? blocks[node] : cs[node - blocks.size()];
  }
};

/// Builds the node universe for a given guess geometry.
NodeUniverse build_universe(const CandidateGeometry& geo);

/// One representative observation: ed(node, rep) == rep_distance, hence
/// node ∈ N_tau(rep) for every tau >= rep_distance (blocks) or
/// N_2tau(rep) for every 2*tau >= rep_distance (candidate substrings).
struct RepTuple {
  std::int32_t node = 0;          ///< global node id
  std::int32_t rep = 0;           ///< global node id of the representative
  std::int32_t min_tau_index = 0; ///< smallest index j in the tau grid s.t.
                                  ///< the membership condition holds
  std::int64_t rep_distance = 0;  ///< exact ed(node, rep)

  friend bool operator==(const RepTuple&, const RepTuple&) = default;
};

/// Threshold grid {0, 1, ceil((1+eps')^j), ...} capped at `limit`.
std::vector<std::int64_t> tau_grid(std::int64_t limit, double eps_prime);

/// Smallest index j with grid[j] >= v (grid.size() if none).
std::size_t min_tau_index(const std::vector<std::int64_t>& grid, std::int64_t v);

}  // namespace mpcsd::edit_mpc
