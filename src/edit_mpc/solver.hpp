// Theorem 9: the complete MPC edit-distance algorithm.
//
// The driver guesses the distance on the grid n^delta = (1+eps)^i, runs the
// two-round small-distance pipeline (Lemma 6) when n^delta <= n^{1-x/5} and
// the four-round large-distance pipeline (Lemma 8) otherwise, and takes the
// smallest valid answer.  Every pipeline returns the cost of a realizable
// transformation, so the minimum over guesses is always an upper bound on
// ed(s, s̄); for the first guess >= ed(s, s̄) it is within 3+eps, hence so
// is the final answer.
//
// In the MPC model the guesses execute side by side in the same <= 4
// rounds; the simulator can either do that (GuessMode::kAll) or exploit
// the monotone accept condition and stop at the first accepted guess
// (kEarlyExit, the default — the reported trace is the parallel merge of
// the executed guesses either way).
#pragma once

#include <cstdint>
#include <vector>

#include "edit_mpc/large_distance.hpp"
#include "edit_mpc/small_distance.hpp"
#include "mpc/audit.hpp"
#include "mpc/stats.hpp"
#include "seq/types.hpp"

namespace mpcsd::edit_mpc {

enum class GuessMode : std::uint8_t {
  kEarlyExit,  ///< ascending guesses; stop at the first accepted one
  kAll,        ///< run every guess (the literal parallel execution)
};

struct EditMpcParams {
  double x = 0.25;                 ///< memory exponent (Theorem 9: x <= 5/17)
  double epsilon = 1.0;            ///< approximation slack; eps' = eps/22
  /// Implementation floor on eps' (the paper's eps/22 is proof
  /// bookkeeping; tiny eps' only inflates the hidden poly(1/eps) factors).
  double eps_prime_floor = 0.15;
  DistanceUnit unit = DistanceUnit::kApprox3;
  seq::ApproxEditParams approx;    ///< kApprox3 unit settings
  double rep_constant = 2.0;
  double sample_constant = 3.0;
  std::int64_t distance_cap_factor = 4;
  std::size_t max_extend_per_block = 0;
  GuessMode guess_mode = GuessMode::kEarlyExit;
  std::uint64_t seed = 19;
  std::size_t workers = 0;
  bool strict_memory = false;
  double memory_slack = 8.0;       ///< constant inside the Õ_eps(n^{1-x}) cap
  /// Execution backend for every guess pipeline (see mpc/backend.hpp).
  mpc::BackendKind backend = mpc::BackendKind::kAuto;
  /// Model-conformance auditing of every guess pipeline (see mpc/audit.hpp).
  mpc::AuditOptions audit{};
  /// Observability recorder passed to every guess pipeline (null = detached).
  obs::Recorder* recorder = nullptr;
};

struct GuessOutcome {
  std::int64_t guess = 0;
  std::int64_t distance = 0;
  bool large_pipeline = false;
  std::size_t machines = 0;        ///< max machines over the guess's rounds
};

struct EditMpcResult {
  std::int64_t distance = 0;
  std::int64_t accepted_guess = 0; ///< 0 when the strings were equal
  std::size_t guesses_run = 0;
  std::uint64_t memory_cap_bytes = 0;
  mpc::ExecutionTrace trace;       ///< parallel merge over executed guesses
  std::vector<GuessOutcome> per_guess;
};

/// Approximates ed(s, t) within 3+eps (kApprox3 unit) with <= 4 rounds.
EditMpcResult edit_distance_mpc(SymView s, SymView t,
                                const EditMpcParams& params = {});

/// Per-machine memory budget: Õ_eps(n^{1-x}).
std::uint64_t edit_memory_cap_bytes(std::int64_t n, const EditMpcParams& params);

/// The implementation's eps' = max(eps/22, eps_prime_floor).
double edit_eps_prime(const EditMpcParams& params);

/// The self-certification bound of one guess: for any guess >= ed(s, t) the
/// small-distance pipeline answers <= (3+eps)·ed <= (3+eps)·guess, so an
/// answer within this threshold proves the ladder has reached the true
/// distance and later rungs cannot be needed (the monotone accept condition
/// shared by the sequential early-exit and the batch escalation mode).
std::int64_t accept_threshold(std::int64_t guess, double epsilon);

/// The small/large regime boundary n^{1-x/5}.
std::int64_t small_distance_limit(std::int64_t n, double x);

}  // namespace mpcsd::edit_mpc
