// The Hajiaghayi–Seddighin–Sun [20] baseline: 1+eps approximate MPC edit
// distance in 2 rounds with Õ_eps(n^{2x}) machines.
//
// Structurally it is the small-distance pipeline run for *every* guess with
//   * the exact distance unit (band doubling) instead of the 3+eps' unit,
//   * one machine per candidate start (no start batching — the batching is
//     exactly this paper's improvement over [20]).
// Table 1's machine comparison (ours n^{(9/5)x} vs [20] n^{2x}) is measured
// against this implementation.
#pragma once

#include <cstdint>

#include "edit_mpc/small_distance.hpp"
#include "mpc/stats.hpp"
#include "obs/recorder.hpp"
#include "seq/types.hpp"

namespace mpcsd::edit_mpc {

struct HssBaselineParams {
  double x = 0.25;
  double epsilon = 1.0;          ///< eps' = eps/4 internally (1+eps overall)
  std::uint64_t seed = 23;
  std::size_t workers = 0;
  bool strict_memory = false;
  double memory_slack = 8.0;
  bool early_exit = true;        ///< stop at the first self-certifying guess
  obs::Recorder* recorder = nullptr;  ///< observability (null = detached)
};

struct HssBaselineResult {
  std::int64_t distance = 0;
  std::int64_t accepted_guess = 0;
  std::size_t guesses_run = 0;
  mpc::ExecutionTrace trace;     ///< parallel merge over executed guesses
};

/// Approximates ed(s, t) within 1+eps in 2 rounds, Õ_eps(n^{2x}) machines.
HssBaselineResult hss_edit_distance_mpc(SymView s, SymView t,
                                        const HssBaselineParams& params = {});

}  // namespace mpcsd::edit_mpc
