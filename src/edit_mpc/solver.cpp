#include "edit_mpc/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"

namespace mpcsd::edit_mpc {

std::int64_t small_distance_limit(std::int64_t n, double x) {
  return ipow(n, 1.0 - x / 5.0);
}

double edit_eps_prime(const EditMpcParams& params) {
  // The paper's eps' = eps/22 is proof bookkeeping; as an implementation
  // constant it multiplies candidate counts by poly(22/eps), so the solver
  // floors it (the floor only affects the hidden constants, not the
  // guarantee shape, and benches verify the achieved ratios directly).
  return std::max(params.epsilon / 22.0, params.eps_prime_floor);
}

std::int64_t accept_threshold(std::int64_t guess, double epsilon) {
  return static_cast<std::int64_t>(
             std::ceil((3.0 + epsilon) * static_cast<double>(guess))) +
         2;
}

std::uint64_t edit_memory_cap_bytes(std::int64_t n, const EditMpcParams& params) {
  const std::int64_t block = std::max<std::int64_t>(1, ipow_ceil(n, 1.0 - params.x));
  const double eps_prime = edit_eps_prime(params);
  const double logn = std::log2(static_cast<double>(std::max<std::int64_t>(n, 4)));
  // A machine's feed is a block plus an s̄ chunk of <= B(1 + 1/eps')
  // symbols (small pipeline) or a batch of node strings (large pipeline);
  // the combine machine additionally holds all tuples, whose multiplicity
  // carries a (1/eps')^2 · log factor (starts grid x geometric ends).  All
  // of it is Õ_eps(n^{1-x}).
  const double cap = params.memory_slack * static_cast<double>(sizeof(Symbol)) *
                     (static_cast<double>(block) + 64.0) * (logn + 2.0) *
                     (2.0 + 1.0 / eps_prime) * (2.0 + 1.0 / eps_prime);
  return static_cast<std::uint64_t>(cap);
}

EditMpcResult edit_distance_mpc(SymView s, SymView t, const EditMpcParams& params) {
  MPCSD_EXPECTS(params.x > 0.0 && params.x < 1.0);
  MPCSD_EXPECTS(params.epsilon > 0.0);

  EditMpcResult result;
  const auto n = static_cast<std::int64_t>(s.size());
  const auto n_bar = static_cast<std::int64_t>(t.size());
  result.memory_cap_bytes = edit_memory_cap_bytes(std::max<std::int64_t>(n, 1), params);

  // The ed == 0 case is detected separately (one linear scan).
  if (n == n_bar && std::equal(s.begin(), s.end(), t.begin())) {
    result.distance = 0;
    return result;
  }
  if (n == 0 || n_bar == 0) {
    result.distance = std::max(n, n_bar);
    return result;
  }

  const double eps_prime = edit_eps_prime(params);
  const std::int64_t small_limit = small_distance_limit(n, params.x);
  const auto guesses = geometric_grid(std::max(n, n_bar), params.epsilon);

  obs::Span solve_span(params.recorder, "edit:solve", "solver");
  solve_span.arg("n", static_cast<double>(n));

  std::int64_t best = n + n_bar;  // trivial delete-all/insert-all bound
  std::uint64_t guess_seed = params.seed;
  for (const std::int64_t guess : guesses) {
    if (guess == 0) continue;  // ed == 0 already handled
    ++result.guesses_run;
    guess_seed = splitmix64(guess_seed + static_cast<std::uint64_t>(guess));

    obs::Span guess_span(params.recorder, "edit:guess", "solver");
    guess_span.arg("guess", static_cast<double>(guess));

    GuessOutcome outcome;
    outcome.guess = guess;
    mpc::ExecutionTrace guess_trace;
    if (guess <= small_limit) {
      SmallDistanceParams sp;
      sp.eps_prime = eps_prime;
      sp.x = params.x;
      sp.delta_guess = guess;
      sp.unit = params.unit;
      sp.approx = params.approx;
      sp.seed = guess_seed;
      sp.workers = params.workers;
      sp.strict_memory = params.strict_memory;
      sp.memory_cap_bytes = result.memory_cap_bytes;
      sp.backend = params.backend;
      sp.audit = params.audit;
      sp.recorder = params.recorder;
      auto pipeline = run_small_distance(s, t, sp);
      outcome.distance = pipeline.distance;
      guess_trace = std::move(pipeline.trace);
    } else {
      LargeDistanceParams lp;
      lp.eps_prime = eps_prime;
      lp.x = params.x;
      lp.delta_guess = guess;
      lp.rep_constant = params.rep_constant;
      lp.sample_constant = params.sample_constant;
      lp.distance_cap_factor = params.distance_cap_factor;
      lp.max_extend_per_block = params.max_extend_per_block;
      lp.seed = guess_seed;
      lp.workers = params.workers;
      lp.strict_memory = params.strict_memory;
      lp.memory_cap_bytes = result.memory_cap_bytes;
      lp.backend = params.backend;
      lp.audit = params.audit;
      lp.recorder = params.recorder;
      auto pipeline = run_large_distance(s, t, lp);
      outcome.distance = pipeline.distance;
      outcome.large_pipeline = true;
      guess_trace = std::move(pipeline.trace);
    }
    outcome.machines = guess_trace.max_machines();
    result.per_guess.push_back(outcome);
    result.trace.merge_parallel(guess_trace);

    if (outcome.distance < best) {
      best = outcome.distance;
      result.accepted_guess = guess;
    }
    // Accept once the answer certifies itself against the guess: for a
    // guess >= ed(s, t) the pipeline output is <= (3+eps)·ed <= (3+eps)·
    // guess, so this fires no later than that guess.
    if (params.guess_mode == GuessMode::kEarlyExit &&
        outcome.distance <= accept_threshold(guess, params.epsilon)) {
      break;
    }
  }

  result.distance = best;
  MPCSD_ENSURES(result.distance >= 0);
  MPCSD_ENSURES(result.trace.round_count() <= 4);
  return result;
}

}  // namespace mpcsd::edit_mpc
