// Lemma 8: the four-round large-distance pipeline (n^delta > n^{1-x/5}).
//
// Round 1 (Algorithm 5):  sample representative nodes of G_tau at rate
//   ~2 ln n / n^alpha and compute representative-to-all bounded edit
//   distances; emit RepTuples (one per (node, rep) pair within range, which
//   encodes N_tau/N_2tau membership for every threshold at once).
// Round 2 (Algorithm 6):  two machine families in one round —
//   * pairing machines join "b" and "cs" RepTuples on the shared
//     representative: every dense block obtains tuples to all candidate
//     substrings at cost d(block,z) + d(z,u) <= 3*tau (Lemma 7);
//   * sampled low-degree machines (selected by the common-seed coin of
//     Algorithm 6 line 9) compute exact distances to their own candidates,
//     emit those tuples, and issue extension requests to every sibling
//     block inside the same larger block of size n^{1-y'} (Fig. 7).
// Round 3 (Algorithm 7):  evaluate the extension requests exactly.
// Round 4:  the combine DP over all tuples (Algorithm 4 with sum gaps).
#pragma once

#include <cstdint>

#include "edit_mpc/graph_tau.hpp"
#include "edit_mpc/small_distance.hpp"
#include "seq/types.hpp"

namespace mpcsd::edit_mpc {

struct LargeDistanceParams {
  double eps_prime = 0.05;          ///< eps' = eps/22
  double x = 0.25;                  ///< memory exponent
  std::int64_t delta_guess = 0;     ///< the distance guess n^delta
  double alpha_scale = 3.0 / 5.0;   ///< alpha = alpha_scale * x (Theorem 9)
  double y_scale = 6.0 / 5.0;       ///< y = y_scale * x
  double y_prime_scale = 4.0 / 5.0; ///< y' = y_prime_scale * x
  double rep_constant = 2.0;        ///< representative rate: c * ln n / n^alpha
  double sample_constant = 3.0;     ///< low-degree rate constant (paper: 3/eps'^2 * log^2 n)
  std::int64_t distance_cap_factor = 4;  ///< bounded-distance cap = factor * guess
  std::size_t max_extend_per_block = 0;  ///< 0 = floor(n^alpha) (the paper's bound)
  std::size_t max_representatives = 48;  ///< hard cap on |R| (0 = uncapped)
  std::uint64_t seed = 13;
  std::size_t workers = 0;
  bool strict_memory = false;
  std::uint64_t memory_cap_bytes = UINT64_MAX;
  mpc::BackendKind backend = mpc::BackendKind::kAuto;  ///< see mpc/backend.hpp
  mpc::AuditOptions audit{};  ///< conformance auditing (see mpc/audit.hpp)
  obs::Recorder* recorder = nullptr;  ///< observability (null = detached)
};

struct LargeDistanceResult {
  std::int64_t distance = 0;
  std::size_t tuple_count = 0;       ///< tuples reaching the combine round
  std::size_t representative_count = 0;
  std::size_t sampled_blocks = 0;
  std::size_t extension_requests = 0;
  mpc::ExecutionTrace trace;
};

/// Runs the large-distance pipeline for one guess.  The result is always
/// the cost of a realizable transformation (>= ed(s, t)); when the guess is
/// >= ed(s, t) it is <= (3+eps)·ed(s, t) with high probability.
LargeDistanceResult run_large_distance(SymView s, SymView t,
                                       const LargeDistanceParams& params);

}  // namespace mpcsd::edit_mpc
