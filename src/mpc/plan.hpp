// The declarative round-plan layer over the MPC cluster simulator.
//
// The four pipeline drivers (Theorem 4 Ulam, Lemma 6 small-distance,
// Lemma 8 large-distance, and the [20] baseline) are all the same shape: a
// short sequence of *stages*, each of which shards typed records onto
// machines, runs one simulated round, and routes typed messages through
// named mailboxes to the next stage.  This header makes that shape a
// first-class object:
//
//   * `Codec<T>`        — the wire format of a message type.  Trivially
//     copyable types and vectors of them reuse the exact ByteWriter /
//     ChainReader encodings the hand-rolled drivers used, so porting a
//     driver onto the plan layer is byte-identical on the wire (proven by
//     the golden-trace test).  Aggregate message structs declare a
//     `fields()` tuple of member pointers; `std::variant` encodes a uint8
//     tag (heterogeneous machine families in one round, e.g. Algorithm 6's
//     pairing + sampled machines).
//   * `Channel<T>`      — a named, typed mailbox: `send` only accepts `T`,
//     `Driver::receive` only decodes `T`.  Stage IO is type-checked at
//     compile time instead of being an untyped byte soup.
//   * `Stage<In>`       — a labelled machine body over decoded inputs.
//   * `Plan`            — the declared stage graph (labels + channel
//     wiring), validated against execution order by the driver.
//   * `Driver`          — owns the cluster: shards typed inputs, executes
//     stages through the zero-copy `run_round_views` path, enforces the
//     declared stage order, and stamps per-stage driver-glue wall time into
//     the ExecutionTrace.
//
// Batched multi-query execution (core::distance_batch) builds on the same
// layer: machines of B independent queries share the simulated rounds, with
// per-query channels (mailbox = query id) and per-machine memory caps
// (RoundOptions) keeping attribution and the Õ(n^{1-x}) guarantee per query.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "mpc/cluster.hpp"

namespace mpcsd::mpc {

// ---------------------------------------------------------------------------
// Wire codecs.
// ---------------------------------------------------------------------------

template <typename T>
struct Codec;

/// Aggregate message structs opt in by declaring
///   static constexpr auto fields() { return std::make_tuple(&T::a, &T::b); }
/// members are encoded in declaration order with their own codecs.
template <typename T>
concept WireStruct = requires { T::fields(); };

/// Trivially copyable scalars/structs without a fields() override go over
/// the wire as raw bytes — exactly `ByteWriter::put`.
template <typename T>
concept WirePod = std::is_trivially_copyable_v<T> && !WireStruct<T>;

template <WirePod T>
struct Codec<T> {
  static void encode(ByteWriter& w, const T& value) { w.put(value); }
  template <typename Reader>
  static T decode(Reader& r) {
    return r.template get<T>();
  }
};

/// Vectors of trivially copyable elements use the length-prefixed
/// `put_vector` layout (the format every seed driver used for symbol
/// blocks, position maps, and tuple batches).
template <WirePod T>
struct Codec<std::vector<T>> {
  static void encode(ByteWriter& w, const std::vector<T>& v) { w.put_vector(v); }
  template <typename Reader>
  static std::vector<T> decode(Reader& r) {
    return r.template get_vector<T>();
  }
};

/// Vectors of composite messages: uint64 count + element-wise encoding.
template <typename T>
  requires(!WirePod<T>)
struct Codec<std::vector<T>> {
  static void encode(ByteWriter& w, const std::vector<T>& v) {
    w.put<std::uint64_t>(v.size());
    for (const T& e : v) Codec<T>::encode(w, e);
  }
  template <typename Reader>
  static std::vector<T> decode(Reader& r) {
    const auto n = r.template get<std::uint64_t>();
    std::vector<T> out;
    // No reserve: `n` comes off the wire; element decodes throw on overread.
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(Codec<T>::decode(r));
    return out;
  }
};

template <>
struct Codec<std::string> {
  static void encode(ByteWriter& w, const std::string& s) { w.put_string(s); }
  template <typename Reader>
  static std::string decode(Reader& r) {
    return r.get_string();
  }
};

template <WireStruct T>
struct Codec<T> {
  static void encode(ByteWriter& w, const T& value) {
    std::apply(
        [&](auto... member) {
          (Codec<std::decay_t<decltype(value.*member)>>::encode(w, value.*member),
           ...);
        },
        T::fields());
  }
  template <typename Reader>
  static T decode(Reader& r) {
    T value{};
    std::apply(
        [&](auto... member) {
          ((value.*member =
                Codec<std::decay_t<decltype(value.*member)>>::decode(r)),
           ...);
        },
        T::fields());
    return value;
  }
};

/// Tagged union: uint8 alternative index + the alternative's encoding.  The
/// seed drivers' hand-written `tag` bytes (Algorithm 6's pairing=0 /
/// sampled=1 machines) map onto alternative order.
template <typename... Ts>
struct Codec<std::variant<Ts...>> {
  using V = std::variant<Ts...>;

  static void encode(ByteWriter& w, const V& value) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(value.index()));
    std::visit(
        [&](const auto& alt) {
          Codec<std::decay_t<decltype(alt)>>::encode(w, alt);
        },
        value);
  }
  template <typename Reader>
  static V decode(Reader& r) {
    const auto tag = r.template get<std::uint8_t>();
    MPCSD_EXPECTS(tag < sizeof...(Ts));
    return decode_at<0>(r, tag);
  }

 private:
  template <std::size_t I, typename Reader>
  static V decode_at(Reader& r, std::uint8_t tag) {
    if constexpr (I == sizeof...(Ts)) {
      throw std::logic_error("variant codec: unreachable tag");
    } else {
      if (tag == I) {
        return V{std::in_place_index<I>,
                 Codec<std::variant_alternative_t<I, V>>::decode(r)};
      }
      return decode_at<I + 1>(r, tag);
    }
  }
};

/// A whole mailbox decoded message-by-message: combine-style stages receive
/// one `Inbox<T>` holding every `T` the previous stage sent to the channel.
template <typename T>
struct Inbox {
  std::vector<T> messages;
};

template <typename T>
struct Codec<Inbox<T>> {
  // Inboxes are produced by mail routing, never encoded by a sender.
  static void encode(ByteWriter&, const Inbox<T>&) = delete;
  template <typename Reader>
  static Inbox<T> decode(Reader& r) {
    Inbox<T> in;
    while (!r.exhausted()) in.messages.push_back(Codec<T>::decode(r));
    return in;
  }
};

// ---------------------------------------------------------------------------
// Channels, stages, plans.
// ---------------------------------------------------------------------------

/// A named, typed mailbox.  The type parameter is the only thing that can
/// be sent into or received out of the channel.
template <typename T>
struct Channel {
  constexpr explicit Channel(std::uint32_t mailbox, const char* name = "")
      : mailbox(mailbox), name(name) {}

  std::uint32_t mailbox = 0;
  const char* name = "";
};

/// The typed per-machine execution context of one stage: the decoded input
/// message plus typed sends.  `machine()` exposes the raw context for
/// metering escapes (none of the ported drivers need it for IO).
template <typename In>
class StageContext {
 public:
  StageContext(MachineContext& machine, In input)
      : machine_(machine), input_(std::move(input)) {}

  [[nodiscard]] const In& in() const noexcept { return input_; }
  [[nodiscard]] In& in() noexcept { return input_; }
  [[nodiscard]] std::size_t machine_id() const noexcept {
    return machine_.machine_id();
  }
  [[nodiscard]] Pcg32& rng() noexcept { return machine_.rng(); }
  void charge_work(std::uint64_t ops) noexcept { machine_.charge_work(ops); }
  void charge_scratch(std::uint64_t bytes) noexcept {
    machine_.charge_scratch(bytes);
  }

  /// Type-checked emit: encodes `msg` as one payload on `ch`.
  template <typename T>
  void send(const Channel<T>& ch, const T& msg) {
    ByteWriter w;
    Codec<T>::encode(w, msg);
    machine_.emit(ch.mailbox, std::move(w).take());
  }

  /// Encodes `value` onto the machine's unmetered diagnostics stash (see
  /// `MachineContext::stash_append`): the driver reads it back per machine
  /// through `RoundOptions::machine_stash` + `unstash`.  For results that
  /// are host-side bookkeeping rather than machine-to-machine traffic —
  /// mailbox channels stay the only metered communication.
  template <typename T>
  void stash(const T& value) {
    ByteWriter w;
    Codec<T>::encode(w, value);
    machine_.stash_append(std::move(w).take());
  }

  [[nodiscard]] MachineContext& machine() noexcept { return machine_; }

 private:
  MachineContext& machine_;
  In input_;
};

/// Decodes one value a stage body stashed via `StageContext::stash` from a
/// machine's `RoundOptions::machine_stash` slot.  Successive stashed values
/// decode with successive calls on one reader; this helper covers the
/// common one-value-per-machine case.
template <typename T>
[[nodiscard]] T unstash(const Bytes& stash) {
  ByteReader r(stash);
  return Codec<T>::decode(r);
}

/// One labelled round: a machine body over decoded `In` messages.
template <typename In>
struct Stage {
  std::string label;
  std::function<void(StageContext<In>&)> body;
};

/// Declared wiring of one stage: the label the executed stage must carry
/// plus human-readable channel descriptions (rendered by `Plan::describe`).
struct StageSpec {
  std::string label;
  std::string consumes;
  std::string produces;
};

/// The declarative stage graph of a pipeline.  The driver enforces that
/// stages execute in exactly the declared order with the declared labels —
/// the declaration cannot silently drift from the execution.
struct Plan {
  std::string name;
  std::vector<StageSpec> stages;
  /// When true, the declared stage sequence may execute any whole number of
  /// times (adaptive escalation re-enters the plan once per guess rung with
  /// the unresolved survivors); `finish()` then accepts any number of
  /// complete passes but still rejects a partially executed pass.
  bool repeating = false;

  [[nodiscard]] std::string describe() const;
};

class PlanError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Executes a `Plan` stage by stage on an owned cluster.  All rounds go
/// through the zero-copy `run_round_views` path; per-stage driver-glue wall
/// time (input building between rounds) is stamped into the trace.
class Driver {
 public:
  Driver(Plan plan, ClusterConfig config);

  /// Encodes one machine input per record (the sharding step every seed
  /// driver hand-rolled).
  template <typename In>
  [[nodiscard]] static std::vector<Bytes> shard(const std::vector<In>& records) {
    std::vector<Bytes> inputs;
    inputs.reserve(records.size());
    for (const In& record : records) {
      ByteWriter w;
      Codec<In>::encode(w, record);
      inputs.push_back(std::move(w).take());
    }
    return inputs;
  }

  /// Parallel sharding on the cluster's worker pool: records encode
  /// independently into their slots, so the result is byte-identical to
  /// `shard` while the encode plane scales with the round workers.
  template <typename In>
  [[nodiscard]] std::vector<Bytes> shard_parallel(const std::vector<In>& records) {
    std::vector<Bytes> inputs(records.size());
    cluster_.pool().parallel_for(
        records.size(),
        [&](std::size_t i) {
          ByteWriter w;
          Codec<In>::encode(w, records[i]);
          inputs[i] = std::move(w).take();
        },
        /*grain=*/8);
    return inputs;
  }

  /// Runs the next declared stage with one machine per input buffer.
  template <typename In>
  Mail run(const Stage<In>& stage, const std::vector<Bytes>& inputs,
           const RoundOptions& options = {}) {
    // `chains_` is a driver arena: escalation loops run many rounds of
    // similar shape, and the fragment lists keep their capacity across them.
    chains_.resize(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      chains_[i].clear();
      chains_[i].add(ByteSpan(inputs[i]));
    }
    return run_views(stage, chains_, options);
  }

  /// Zero-copy variant: inputs are chains over routed mail fragments.
  template <typename In>
  Mail run_views(const Stage<In>& stage, const std::vector<ByteChain>& inputs,
                 const RoundOptions& options = {}) {
    // Stamp the driver-glue seconds forward into the round's report (via a
    // copy of the caller's options) instead of back-annotating the trace
    // after the round — the report is immutable once created.
    RoundOptions staged = options;
    staged.driver_seconds = begin_stage(stage.label);
    obs::Span stage_span(cluster_.recorder(), stage.label, "stage");
    Mail mail = cluster_.run_round_views(
        stage.label, inputs,
        [&stage](MachineContext& machine) {
          ChainReader r(machine.input());
          StageContext<In> ctx(machine, Codec<In>::decode(r));
          stage.body(ctx);
        },
        staged);
    if (stage_span) {
      stage_span.arg("glue_seconds", staged.driver_seconds)
          .arg("machines", static_cast<double>(inputs.size()));
      stage_span.finish();
    }
    glue_clock_.reset();
    return mail;
  }

  /// Decodes every message of `ch` (deterministic routing order).
  template <typename T>
  [[nodiscard]] std::vector<T> receive(const Mail& mail,
                                       const Channel<T>& ch) const {
    const ByteChain view = gather_view(mail, ch.mailbox);
    ChainReader r(view);
    std::vector<T> out;
    while (!r.exhausted()) out.push_back(Codec<T>::decode(r));
    return out;
  }

  /// Checks that every declared stage ran (for repeating plans: that the
  /// execution stopped on a whole pass).  Throws PlanError otherwise.
  void finish() const;

  /// Completed passes over a repeating plan (1 for a non-repeating plan
  /// that ran to completion).
  [[nodiscard]] std::size_t passes() const noexcept { return passes_; }

  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] Cluster& cluster() noexcept { return cluster_; }
  /// The backend executing this driver's rounds ("thread" | "process").
  [[nodiscard]] const ExecutionBackend& backend() const noexcept {
    return cluster_.backend();
  }
  /// Conformance findings of the owned cluster (see mpc/audit.hpp).
  [[nodiscard]] const AuditReport& audit_report() const noexcept {
    return cluster_.audit_report();
  }
  [[nodiscard]] const ExecutionTrace& trace() const noexcept {
    return cluster_.trace();
  }
  [[nodiscard]] ExecutionTrace take_trace() { return cluster_.take_trace(); }

 private:
  /// Validates stage order; returns the driver-glue seconds accumulated
  /// since the previous stage ended (sharding, routing, request packing).
  double begin_stage(const std::string& label);

  Plan plan_;
  Cluster cluster_;
  std::size_t next_stage_ = 0;
  std::size_t passes_ = 0;
  Stopwatch glue_clock_;
  std::vector<ByteChain> chains_;
};

}  // namespace mpcsd::mpc
