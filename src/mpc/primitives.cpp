#include "mpc/primitives.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mpcsd::mpc {

namespace {

/// Splits `records` into `machines` nearly equal chunks, serialized.
std::vector<Bytes> chunk_records(const std::vector<KeyValue>& records,
                                 std::size_t machines) {
  std::vector<Bytes> inputs;
  const std::size_t per = (records.size() + machines - 1) / std::max<std::size_t>(machines, 1);
  for (std::size_t i = 0; i < records.size(); i += std::max<std::size_t>(per, 1)) {
    const std::size_t hi = std::min(records.size(), i + per);
    ByteWriter w;
    w.reserve(sizeof(std::uint64_t) + (hi - i) * sizeof(KeyValue));
    w.put_vector(std::vector<KeyValue>(records.begin() + static_cast<std::ptrdiff_t>(i),
                                       records.begin() + static_cast<std::ptrdiff_t>(hi)));
    inputs.push_back(std::move(w).take());
  }
  if (inputs.empty()) {
    ByteWriter w;
    w.put_vector(std::vector<KeyValue>{});
    inputs.push_back(std::move(w).take());
  }
  return inputs;
}

bool kv_less(const KeyValue& a, const KeyValue& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.value < b.value;
}

}  // namespace

SortResult mpc_sort(Cluster& cluster, std::vector<KeyValue> records,
                    std::size_t machines) {
  MPCSD_EXPECTS(machines >= 1);
  SortResult result;
  result.machines = machines;

  const double n = static_cast<double>(std::max<std::size_t>(records.size(), 2));
  const double rate =
      std::min(1.0, 8.0 * static_cast<double>(machines) * std::log(n) / n);

  // ---- Round 1: sample candidate splitters. ----
  const auto chunks = chunk_records(records, machines);
  const auto mail1 = cluster.run_round("sort:sample", chunks, [rate](MachineContext& ctx) {
    auto r = ctx.reader();
    const auto recs = r.get_vector<KeyValue>();
    std::vector<KeyValue> sample;
    for (const KeyValue& kv : recs) {
      if (ctx.rng().bernoulli(rate)) sample.push_back(kv);
    }
    ctx.charge_work(recs.size());
    ByteWriter w;
    w.put_vector(sample);
    ctx.emit(0, std::move(w).take());
  });

  // ---- Round 2: one coordinator picks machines-1 splitters. ----
  const auto mail2 = cluster.run_round_views("sort:splitters", {gather_view(mail1, 0)}, [machines](MachineContext& ctx) {
    std::vector<KeyValue> sample;
    auto r = ctx.reader();
    while (!r.exhausted()) {
      const auto part = r.get_vector<KeyValue>();
      sample.insert(sample.end(), part.begin(), part.end());
    }
    std::sort(sample.begin(), sample.end(), kv_less);
    ctx.charge_work(sample.size() + 1);
    std::vector<KeyValue> picks;
    if (!sample.empty()) {
      for (std::size_t p = 1; p < machines; ++p) {
        picks.push_back(sample[p * sample.size() / machines]);
      }
    }
    ByteWriter w;
    w.put_vector(picks);
    ctx.emit(0, std::move(w).take());
  });
  // The driver reads the splitter broadcast back out of the routed mail —
  // never out of the machine body's address space — so the round behaves
  // identically under process isolation.
  std::vector<KeyValue> splitters;
  {
    const ByteChain broadcast = gather_view(mail2, 0);
    ChainReader r(broadcast);
    if (!r.exhausted()) splitters = r.get_vector<KeyValue>();
  }

  // ---- Round 3: partition records by splitter. ----
  // Each input is "splitter broadcast + original chunk": chain the two
  // fragments instead of materialising the concatenation per machine.
  ByteWriter splitter_msg;
  splitter_msg.put_vector(splitters);
  const Bytes splitter_bytes = std::move(splitter_msg).take();
  std::vector<ByteChain> round3_inputs(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    round3_inputs[i].add(ByteSpan(splitter_bytes));
    round3_inputs[i].add(ByteSpan(chunks[i]));
  }
  const auto mail3 =
      cluster.run_round_views("sort:partition", round3_inputs, [machines](MachineContext& ctx) {
        auto r = ctx.reader();
        const auto splits = r.get_vector<KeyValue>();
        const auto recs = r.get_vector<KeyValue>();
        std::vector<std::vector<KeyValue>> parts(machines);
        for (const KeyValue& kv : recs) {
          const auto it = std::upper_bound(splits.begin(), splits.end(), kv, kv_less);
          parts[static_cast<std::size_t>(it - splits.begin())].push_back(kv);
        }
        ctx.charge_work(recs.size() * 2 + 1);
        for (std::size_t p = 0; p < machines; ++p) {
          if (parts[p].empty()) continue;
          ByteWriter w;
          w.put_vector(parts[p]);
          ctx.emit(static_cast<std::uint32_t>(p), std::move(w).take());
        }
      });

  // ---- Round 4: sort each partition locally; concatenation is sorted. ----
  std::vector<ByteChain> round4_inputs;
  for (std::size_t p = 0; p < machines; ++p) {
    round4_inputs.push_back(gather_view(mail3, static_cast<std::uint32_t>(p)));
  }
  const auto mail4 =
      cluster.run_round_views("sort:local", round4_inputs, [](MachineContext& ctx) {
        std::vector<KeyValue> recs;
        auto r = ctx.reader();
        while (!r.exhausted()) {
          const auto part = r.get_vector<KeyValue>();
          recs.insert(recs.end(), part.begin(), part.end());
        }
        std::sort(recs.begin(), recs.end(), kv_less);
        ctx.charge_work(recs.size() + 1);
        ByteWriter w;
        w.put_vector(recs);
        // Mailbox id = machine id keeps partition order on the driver side.
        ctx.emit(static_cast<std::uint32_t>(ctx.machine_id()), std::move(w).take());
      });

  for (std::size_t p = 0; p < machines; ++p) {
    const ByteChain view = gather_view(mail4, static_cast<std::uint32_t>(p));
    ChainReader r(view);
    while (!r.exhausted()) {
      const auto part = r.get_vector<KeyValue>();
      result.records.insert(result.records.end(), part.begin(), part.end());
    }
  }
  MPCSD_ENSURES(result.records.size() == records.size());
  return result;
}

std::vector<JoinedRecord> mpc_hash_join(Cluster& cluster,
                                        const std::vector<KeyValue>& left,
                                        const std::vector<KeyValue>& right,
                                        std::size_t machines) {
  MPCSD_EXPECTS(machines >= 1);

  // ---- Round 1: hash-partition both sides (tagged mailboxes). ----
  auto tag_inputs = [&](const std::vector<KeyValue>& side, std::uint8_t tag) {
    auto chunks = chunk_records(side, machines);
    for (auto& c : chunks) {
      Bytes tagged;
      tagged.push_back(static_cast<std::byte>(tag));
      tagged.insert(tagged.end(), c.begin(), c.end());
      c = std::move(tagged);
    }
    return chunks;
  };
  std::vector<Bytes> inputs = tag_inputs(left, 0);
  const auto right_inputs = tag_inputs(right, 1);
  inputs.insert(inputs.end(), right_inputs.begin(), right_inputs.end());

  const auto mail1 = cluster.run_round("join:partition", inputs, [machines](MachineContext& ctx) {
    auto r = ctx.reader();
    const auto tag = static_cast<std::uint8_t>(r.get<std::byte>());
    const auto recs = r.get_vector<KeyValue>();
    std::vector<std::vector<KeyValue>> parts(machines);
    for (const KeyValue& kv : recs) {
      parts[splitmix64(static_cast<std::uint64_t>(kv.key)) % machines].push_back(kv);
    }
    ctx.charge_work(recs.size() + 1);
    for (std::size_t p = 0; p < machines; ++p) {
      if (parts[p].empty()) continue;
      ByteWriter w;
      w.put<std::uint8_t>(tag);
      w.put_vector(parts[p]);
      ctx.emit(static_cast<std::uint32_t>(p), std::move(w).take());
    }
  });

  // ---- Round 2: per-partition hash join. ----
  std::vector<ByteChain> round2_inputs;
  for (std::size_t p = 0; p < machines; ++p) {
    round2_inputs.push_back(gather_view(mail1, static_cast<std::uint32_t>(p)));
  }
  const auto mail2 = cluster.run_round_views("join:match", round2_inputs, [](MachineContext& ctx) {
    std::vector<KeyValue> lefts;
    std::unordered_map<std::int64_t, std::int64_t> rights;
    auto r = ctx.reader();
    while (!r.exhausted()) {
      const auto tag = r.get<std::uint8_t>();
      const auto recs = r.get_vector<KeyValue>();
      if (tag == 0) {
        lefts.insert(lefts.end(), recs.begin(), recs.end());
      } else {
        for (const KeyValue& kv : recs) rights.emplace(kv.key, kv.value);
      }
    }
    std::vector<JoinedRecord> out;
    for (const KeyValue& kv : lefts) {
      if (const auto it = rights.find(kv.key); it != rights.end()) {
        out.push_back(JoinedRecord{kv.key, kv.value, it->second});
      }
    }
    ctx.charge_work(lefts.size() + rights.size() + 1);
    ByteWriter w;
    w.put<std::uint64_t>(out.size());
    for (const JoinedRecord& j : out) w.put(j);
    ctx.emit(0, std::move(w).take());
  });

  std::vector<JoinedRecord> joined;
  const ByteChain payload = gather_view(mail2, 0);
  ChainReader r(payload);
  while (!r.exhausted()) {
    const auto count = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < count; ++i) joined.push_back(r.get<JoinedRecord>());
  }
  return joined;
}

std::vector<std::int64_t> position_map_round(Cluster& cluster, SymView s,
                                             SymView t, std::size_t machines) {
  std::vector<KeyValue> left;
  left.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    left.push_back(KeyValue{s[i], static_cast<std::int64_t>(i)});
  }
  std::vector<KeyValue> right;
  right.reserve(t.size());
  for (std::size_t j = 0; j < t.size(); ++j) {
    right.push_back(KeyValue{t[j], static_cast<std::int64_t>(j)});
  }
  std::vector<std::int64_t> positions(s.size(), -1);
  for (const JoinedRecord& j : mpc_hash_join(cluster, left, right, machines)) {
    positions[static_cast<std::size_t>(j.left_value)] = j.right_value;
  }
  return positions;
}

}  // namespace mpcsd::mpc
