// Execution metrics for the MPC simulator.
//
// The MPC model is judged on four quantities — rounds, number of machines,
// per-machine memory, and total computation (plus communication volume).
// Every `Cluster::run_round` produces a `RoundReport`; traces compose
// sequentially (pipeline stages) or in parallel (the paper runs all guesses
// of n^delta, and all thresholds tau, side by side in the same rounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mpcsd::mpc {

/// Metrics of a single simulated machine within one round.
struct MachineReport {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t scratch_bytes = 0;
  std::uint64_t work = 0;  ///< algorithmic operations charged by the machine

  [[nodiscard]] std::uint64_t memory_footprint() const noexcept {
    return input_bytes + output_bytes + scratch_bytes;
  }
};

/// Aggregated metrics of one communication round.
struct RoundReport {
  std::string label;
  std::size_t machines = 0;
  std::uint64_t max_machine_memory = 0;  ///< max footprint over machines
  std::uint64_t total_comm_bytes = 0;    ///< sum of outputs (next-round traffic)
  std::uint64_t total_input_bytes = 0;
  std::uint64_t total_work = 0;
  std::uint64_t max_machine_work = 0;    ///< parallel-time proxy for the round
  double wall_seconds = 0.0;
  double driver_seconds = 0.0;           ///< host-side glue time before the round
  std::size_t memory_violations = 0;     ///< machines exceeding the configured cap
};

/// A full execution: an ordered list of rounds.
class ExecutionTrace {
 public:
  void add_round(RoundReport round) { rounds_.push_back(std::move(round)); }

  [[nodiscard]] const std::vector<RoundReport>& rounds() const noexcept {
    return rounds_;
  }

  [[nodiscard]] std::size_t round_count() const noexcept { return rounds_.size(); }

  /// Max over rounds of the machine count (the "# machines" column).
  [[nodiscard]] std::size_t max_machines() const noexcept;

  /// Max over all machines in all rounds of the memory footprint.
  [[nodiscard]] std::uint64_t max_machine_memory() const noexcept;

  /// Sum of all machines' charged work (the "total running time" column).
  [[nodiscard]] std::uint64_t total_work() const noexcept;

  /// Sum over rounds of the per-round max machine work (the "parallel
  /// running time" of the paper).
  [[nodiscard]] std::uint64_t critical_path_work() const noexcept;

  [[nodiscard]] std::uint64_t total_comm_bytes() const noexcept;

  [[nodiscard]] std::size_t memory_violations() const noexcept;

  /// Order-sensitive hash of the model-relevant content of every round:
  /// labels, machine counts, byte and work accounting, violations.  The
  /// wall-clock fields are excluded, so two executions of the same
  /// algorithm hash identically iff they made the same model-level
  /// decisions — regardless of worker count, schedule, or auditing.  This
  /// is the quantity the determinism regression gate and the auditor's
  /// transparency check compare.
  [[nodiscard]] std::uint64_t structural_hash() const noexcept;

  /// Appends `other`'s rounds after this trace's rounds (sequential stages).
  void append_sequential(const ExecutionTrace& other);

  /// Zips `other`'s rounds with this trace's rounds (side-by-side parallel
  /// execution, e.g. one pipeline per guess of n^delta): machine counts,
  /// work, and communication add; maxima combine by max.  Traces of unequal
  /// length pad with empty rounds.
  void merge_parallel(const ExecutionTrace& other);

  /// Human-readable multi-line summary (used by benches and examples).
  [[nodiscard]] std::string summary() const;

  /// Machine-readable CSV (one row per round, with a header) for plotting.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<RoundReport> rounds_;
};

}  // namespace mpcsd::mpc
