// The shared-address-space execution backend: machine bodies of one round
// run concurrently on the cluster's thread pool, writing straight into the
// cluster's outbox/report/stash arenas.  This is the seed execution path
// extracted verbatim from `Cluster::run_round_views`; the golden traces pin
// it byte-identical.
#pragma once

#include <memory>

#include "common/thread_pool.hpp"
#include "mpc/backend.hpp"

namespace mpcsd::mpc {

class ThreadBackend final : public ExecutionBackend {
 public:
  explicit ThreadBackend(std::shared_ptr<ThreadPool> pool)
      : pool_(std::move(pool)) {}

  void execute(const RoundWork& work) override;

  /// Threads share one address space: a stray write in a machine body can
  /// land anywhere, so the auditor's canary copies stay armed.
  [[nodiscard]] bool isolates_machine_memory() const noexcept override {
    return false;
  }

  [[nodiscard]] const char* name() const noexcept override { return "thread"; }

  /// In-process "wire": a frame is one envelope handed to the router, a
  /// flush is the round's arena handoff, the barrier is the pool join.
  [[nodiscard]] const Transport& transport() const noexcept override {
    return transport_;
  }

 private:
  std::shared_ptr<ThreadPool> pool_;
  CountingTransport transport_{"inproc"};
};

}  // namespace mpcsd::mpc
