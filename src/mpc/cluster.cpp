#include "mpc/cluster.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace mpcsd::mpc {

void MachineContext::emit(std::uint32_t dest, Bytes payload) {
  report_.output_bytes += payload.size();
  outbox_.push_back(Envelope{dest, std::move(payload)});
}

std::span<const Envelope> Mail::at(std::uint32_t dest) const noexcept {
  const auto lo = std::lower_bound(
      msgs_.begin(), msgs_.end(), dest,
      [](const Envelope& e, std::uint32_t d) { return e.dest < d; });
  auto hi = lo;
  while (hi != msgs_.end() && hi->dest == dest) ++hi;
  return std::span<const Envelope>(msgs_).subspan(
      static_cast<std::size_t>(lo - msgs_.begin()),
      static_cast<std::size_t>(hi - lo));
}

Cluster::Cluster(ClusterConfig config)
    : config_(config), pool_(std::make_shared<ThreadPool>(config.workers)) {}

Mail Cluster::run_round(const std::string& label, const std::vector<Bytes>& inputs,
                        const std::function<void(MachineContext&)>& body,
                        const RoundOptions& options) {
  // Wrap each contiguous input as a single-fragment chain (no copy).
  std::vector<ByteChain> chains(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) chains[i].add(ByteSpan(inputs[i]));
  return run_round_views(label, chains, body, options);
}

Mail Cluster::run_round_views(const std::string& label,
                              const std::vector<ByteChain>& inputs,
                              const std::function<void(MachineContext&)>& body,
                              const RoundOptions& options) {
  const std::size_t round = round_index_++;
  const std::size_t machines = inputs.size();
  if (options.machine_memory_limits != nullptr &&
      options.machine_memory_limits->size() != machines) {
    throw std::invalid_argument(
        "round '" + label + "': " +
        std::to_string(options.machine_memory_limits->size()) +
        " per-machine memory limits for " + std::to_string(machines) +
        " machines");
  }

  std::vector<MachineReport> reports(machines);
  std::vector<std::vector<Envelope>> outboxes(machines);

  // Auto grain: ~8 chunks per worker keeps balancing slack while tiny
  // machine bodies stop paying one contended RMW each.
  std::size_t grain = config_.grain;
  if (grain == 0) {
    grain = std::clamp<std::size_t>(machines / (pool_->worker_count() * 8 + 1),
                                    1, 64);
  }

  Stopwatch wall;
  pool_->parallel_for(
      machines,
      [&](std::size_t i) {
        MachineContext ctx(i, &inputs[i], derive_stream(config_.seed, round, i));
        ctx.report_.input_bytes = inputs[i].total_bytes();
        body(ctx);
        reports[i] = ctx.report_;
        outboxes[i] = std::move(ctx.outbox_);
      },
      grain);

  RoundReport rr;
  rr.label = label;
  rr.machines = machines;
  rr.wall_seconds = wall.seconds();
  for (std::size_t i = 0; i < machines; ++i) {
    const MachineReport& m = reports[i];
    rr.max_machine_memory = std::max(rr.max_machine_memory, m.memory_footprint());
    rr.total_comm_bytes += m.output_bytes;
    rr.total_input_bytes += m.input_bytes;
    rr.total_work += m.work;
    rr.max_machine_work = std::max(rr.max_machine_work, m.work);
    const std::uint64_t limit = options.machine_memory_limits != nullptr
                                    ? (*options.machine_memory_limits)[i]
                                    : config_.memory_limit_bytes;
    if (m.memory_footprint() > limit) {
      ++rr.memory_violations;
      if (config_.strict_memory) {
        throw MemoryLimitExceeded(
            "machine " + std::to_string(i) + " in round '" + label + "' used " +
            std::to_string(m.memory_footprint()) + "B > limit " +
            std::to_string(limit) + "B");
      }
    }
  }
  trace_.add_round(rr);
  if (options.machine_reports != nullptr) {
    *options.machine_reports = std::move(reports);
  }

  // Deterministic flat merge: move every envelope (payloads are never
  // copied), then stable-sort by destination — within a mailbox the order
  // stays (machine id, emission index), exactly as the old per-mailbox
  // vectors were filled.
  Mail mail;
  std::size_t total = 0;
  for (const auto& outbox : outboxes) total += outbox.size();
  mail.msgs_.reserve(total);
  for (auto& outbox : outboxes) {
    for (Envelope& env : outbox) mail.msgs_.push_back(std::move(env));
  }
  std::stable_sort(mail.msgs_.begin(), mail.msgs_.end(),
                   [](const Envelope& a, const Envelope& b) { return a.dest < b.dest; });
  return mail;
}

ByteChain gather_view(const Mail& mail, std::uint32_t dest) {
  ByteChain chain;
  for (const Envelope& env : mail.at(dest)) chain.add(ByteSpan(env.payload));
  return chain;
}

}  // namespace mpcsd::mpc
