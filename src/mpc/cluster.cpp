#include "mpc/cluster.hpp"

#include <algorithm>
#include <iterator>

#include "common/timer.hpp"

namespace mpcsd::mpc {

namespace {

/// Below this many envelopes a serial stable sort beats the fork/merge
/// overhead of the parallel router.
constexpr std::size_t kParallelRouteMin = 512;
/// Minimum envelopes per router chunk, so tiny mails don't over-fork.
constexpr std::size_t kRouteChunkMin = 256;

bool by_dest(const Envelope& a, const Envelope& b) { return a.dest < b.dest; }

}  // namespace

void MachineContext::emit(std::uint32_t dest, Bytes payload) {
  report_.output_bytes += payload.size();
  outbox_->push_back(Envelope{dest, std::move(payload)});
}

std::span<const Envelope> Mail::at(std::uint32_t dest) const noexcept {
  const auto lo = std::lower_bound(
      msgs_.begin(), msgs_.end(), dest,
      [](const Envelope& e, std::uint32_t d) { return e.dest < d; });
  auto hi = lo;
  while (hi != msgs_.end() && hi->dest == dest) ++hi;
  return std::span<const Envelope>(msgs_).subspan(
      static_cast<std::size_t>(lo - msgs_.begin()),
      static_cast<std::size_t>(hi - lo));
}

Cluster::Cluster(ClusterConfig config)
    : config_(config), pool_(std::make_shared<ThreadPool>(config.workers)) {}

Mail Cluster::run_round(const std::string& label, const std::vector<Bytes>& inputs,
                        const std::function<void(MachineContext&)>& body,
                        const RoundOptions& options) {
  // Wrap each contiguous input as a single-fragment chain (no copy).  The
  // chain vector is an arena: fragment lists keep their capacity across
  // rounds.
  input_chains_.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_chains_[i].clear();
    input_chains_[i].add(ByteSpan(inputs[i]));
  }
  return run_round_views(label, input_chains_, body, options);
}

void Cluster::sort_mail(std::vector<Envelope>& msgs) {
  const std::size_t n = msgs.size();
  const std::size_t workers = pool_->worker_count();
  if (workers <= 1 || n < kParallelRouteMin) {
    std::stable_sort(msgs.begin(), msgs.end(), by_dest);
    return;
  }

  // Per-worker buckets: each worker stable-sorts one contiguous range of
  // the (machine id, emission index)-ordered envelopes by destination.
  const std::size_t chunks =
      std::max<std::size_t>(2, std::min(workers, n / kRouteChunkMin));
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = c * n / chunks;
  pool_->parallel_for(
      chunks,
      [&](std::size_t c) {
        std::stable_sort(msgs.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                         msgs.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]),
                         by_dest);
      },
      1);

  // Pairwise parallel merge of adjacent runs.  std::merge keeps left-run
  // elements first on equal destinations, and runs are adjacent in machine
  // order, so every level preserves the (machine id, emission index) order
  // within a mailbox — the result is exactly the global stable sort.
  route_scratch_.resize(n);
  std::vector<Envelope>* src = &msgs;
  std::vector<Envelope>* dst = &route_scratch_;
  while (bounds.size() > 2) {
    const std::size_t runs = bounds.size() - 1;
    const std::size_t pairs = runs / 2;
    pool_->parallel_for(
        pairs + runs % 2,
        [&](std::size_t p) {
          const std::size_t lo = bounds[2 * p];
          if (2 * p + 1 < runs) {
            const std::size_t mid = bounds[2 * p + 1];
            const std::size_t hi = bounds[2 * p + 2];
            std::merge(std::make_move_iterator(src->begin() + static_cast<std::ptrdiff_t>(lo)),
                       std::make_move_iterator(src->begin() + static_cast<std::ptrdiff_t>(mid)),
                       std::make_move_iterator(src->begin() + static_cast<std::ptrdiff_t>(mid)),
                       std::make_move_iterator(src->begin() + static_cast<std::ptrdiff_t>(hi)),
                       dst->begin() + static_cast<std::ptrdiff_t>(lo), by_dest);
          } else {
            // Odd tail run: carry it to the next level unchanged.
            std::move(src->begin() + static_cast<std::ptrdiff_t>(lo), src->end(),
                      dst->begin() + static_cast<std::ptrdiff_t>(lo));
          }
        },
        1);
    std::vector<std::size_t> next_bounds;
    next_bounds.reserve(pairs + runs % 2 + 1);
    next_bounds.push_back(0);
    for (std::size_t p = 0; p < pairs; ++p) next_bounds.push_back(bounds[2 * p + 2]);
    if (runs % 2 != 0) next_bounds.push_back(bounds.back());
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != &msgs) msgs.swap(route_scratch_);
  route_scratch_.clear();
}

Mail Cluster::run_round_views(const std::string& label,
                              const std::vector<ByteChain>& inputs,
                              const std::function<void(MachineContext&)>& body,
                              const RoundOptions& options) {
  const std::size_t round = round_index_++;
  const std::size_t machines = inputs.size();
  // Observability span covering the whole round (machine bodies + routing).
  // Inert (no strings, no clock reads) unless a recorder with sinks is
  // attached, so the metered path is unchanged when detached.
  obs::Span round_span(config_.recorder, label, "round");
  if (options.machine_memory_limits != nullptr &&
      options.machine_memory_limits->size() != machines) {
    throw std::invalid_argument(
        "round '" + label + "': " +
        std::to_string(options.machine_memory_limits->size()) +
        " per-machine memory limits for " + std::to_string(machines) +
        " machines");
  }

  // Arena slots: report entries reset, outbox slots keep their capacity.
  reports_.assign(machines, MachineReport{});
  if (outboxes_.size() < machines) outboxes_.resize(machines);

  // Audited execution swaps the zero-copy inputs for canary-padded private
  // copies.  The previous round's poisoned buffers stay alive through this
  // round (audit_poison retires them at round end), so a view a machine
  // retained across one round boundary reads 0xA5 instead of dangling.
  const AuditOptions& audit = config_.audit;
  AuditGuards guards;
  const std::vector<ByteChain>* exec_inputs = &inputs;
  if (audit.enabled && audit.guard_inputs) {
    guards = audit_guard_inputs(inputs);
    exec_inputs = &guards.chains;
  }

  // Auto grain: ~8 chunks per worker keeps balancing slack while tiny
  // machine bodies stop paying one contended RMW each.
  std::size_t grain = config_.grain;
  if (grain == 0) {
    grain = std::clamp<std::size_t>(machines / (pool_->worker_count() * 8 + 1),
                                    1, 64);
  }

  Stopwatch wall;
  pool_->parallel_for(
      machines,
      [&](std::size_t i) {
        outboxes_[i].clear();
        MachineContext ctx(i, &(*exec_inputs)[i],
                           derive_stream(config_.seed, round, i), &outboxes_[i]);
        ctx.report_.input_bytes = (*exec_inputs)[i].total_bytes();
        body(ctx);
        reports_[i] = ctx.report_;
      },
      grain);
  const double wall_seconds = wall.seconds();

  if (audit.enabled) {
    ++audit_report_.rounds_audited;
    if (audit.guard_inputs) audit_check_guards(label, round, guards);
    if (audit.replay) audit_replay(label, round, *exec_inputs, body);
    if (audit.inject_after_round) audit_inject(round);
    if (audit.guard_inputs) audit_poison(std::move(guards));
  }

  RoundReport rr;
  rr.label = label;
  rr.machines = machines;
  rr.wall_seconds = wall_seconds;
  rr.driver_seconds = options.driver_seconds;
  for (std::size_t i = 0; i < machines; ++i) {
    const MachineReport& m = reports_[i];
    rr.max_machine_memory = std::max(rr.max_machine_memory, m.memory_footprint());
    rr.total_comm_bytes += m.output_bytes;
    rr.total_input_bytes += m.input_bytes;
    rr.total_work += m.work;
    rr.max_machine_work = std::max(rr.max_machine_work, m.work);
    const std::uint64_t limit = options.machine_memory_limits != nullptr
                                    ? (*options.machine_memory_limits)[i]
                                    : config_.memory_limit_bytes;
    if (m.memory_footprint() > limit) {
      ++rr.memory_violations;
      if (config_.strict_memory) {
        throw MemoryLimitExceeded(
            "machine " + std::to_string(i) + " in round '" + label + "' used " +
            std::to_string(m.memory_footprint()) + "B > limit " +
            std::to_string(limit) + "B");
      }
    }
  }
  trace_.add_round(rr);
  if (options.machine_reports != nullptr) {
    *options.machine_reports = reports_;
  }

  // Deterministic flat merge: move every envelope (payloads are never
  // copied), then sort by destination — within a mailbox the order stays
  // (machine id, emission index), exactly as the old per-mailbox vectors
  // were filled.  The sort itself runs on the worker pool for large mails.
  Mail mail;
  std::size_t total = 0;
  for (std::size_t i = 0; i < machines; ++i) total += outboxes_[i].size();
  mail.msgs_.reserve(total);
  for (std::size_t i = 0; i < machines; ++i) {
    for (Envelope& env : outboxes_[i]) mail.msgs_.push_back(std::move(env));
  }
  sort_mail(mail.msgs_);
  if (audit.enabled && audit.verify_comm_bytes) {
    audit_verify_comm(label, round, mail, rr.total_comm_bytes);
  }
  if (round_span) {
    round_span.arg("machines", static_cast<double>(rr.machines))
        .arg("total_work", static_cast<double>(rr.total_work))
        .arg("total_comm_bytes", static_cast<double>(rr.total_comm_bytes))
        .arg("max_machine_memory", static_cast<double>(rr.max_machine_memory))
        .arg("memory_violations", static_cast<double>(rr.memory_violations));
    round_span.finish();
    obs::Recorder& rec = *config_.recorder;
    rec.counter("mpc.comm_bytes", "mpc", static_cast<double>(rr.total_comm_bytes));
    rec.counter("mpc.work", "mpc", static_cast<double>(rr.total_work));
    const PoolCounters pc = pool_->counters();
    rec.counter("pool.parallel_for_calls", "pool",
                static_cast<double>(pc.parallel_for_calls));
    rec.counter("pool.inline_calls", "pool", static_cast<double>(pc.inline_calls));
    rec.counter("pool.tasks_enqueued", "pool",
                static_cast<double>(pc.tasks_enqueued));
    rec.counter("pool.indices_claimed", "pool",
                static_cast<double>(pc.indices_claimed));
    rec.counter("pool.peak_queue_depth", "pool",
                static_cast<double>(pc.peak_queue_depth));
  }
  return mail;
}

ByteChain gather_view(const Mail& mail, std::uint32_t dest) {
  ByteChain chain;
  for (const Envelope& env : mail.at(dest)) chain.add(ByteSpan(env.payload));
  return chain;
}

}  // namespace mpcsd::mpc
