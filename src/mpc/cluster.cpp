#include "mpc/cluster.hpp"

#include <algorithm>
#include <bit>
#include <iterator>

#include "common/timer.hpp"

namespace mpcsd::mpc {

namespace {

/// Below this many envelopes a serial stable sort beats the radix router's
/// histogram setup.
constexpr std::size_t kRadixRouteMin = 512;
/// Minimum envelopes per router chunk, so tiny mails don't over-fork.
constexpr std::size_t kRouteChunkMin = 256;
/// Cap on per-pass router chunks: each chunk owns one histogram slice, and
/// the serial prefix walk costs chunks x buckets.
constexpr std::size_t kRouteChunkMax = 8;
/// Payload bytes that weigh like one extra envelope when balancing router
/// chunks.  Scatter moves are O(1) per envelope, but a machine that emitted
/// megabytes clusters its envelopes (and the cache lines their payload
/// headers own) into one chunk; weighting by bytes spreads that burst.
constexpr std::uint64_t kRouteBytesPerEnvelope = 256;
/// Destination bits resolved per radix pass (two passes cover uint32).
constexpr unsigned kRadixBits = 16;

/// Consecutive rounds using under 1/kArenaDecayFactor of the retained
/// arena capacity before the arenas are released (see maybe_decay_arenas).
constexpr std::size_t kArenaDecayRounds = 8;
constexpr std::size_t kArenaDecayFactor = 4;
/// Retained arena bytes always tolerated; decay never fires below this, so
/// small steady workloads keep their warm arenas.
constexpr std::size_t kArenaFloorBytes = std::size_t{1} << 16;

bool by_dest(const Envelope& a, const Envelope& b) { return a.dest < b.dest; }

}  // namespace

void MachineContext::emit(std::uint32_t dest, Bytes payload) {
  report_.output_bytes += payload.size();
  outbox_->push_back(Envelope{dest, std::move(payload)});
}

void MachineContext::stash_append(Bytes bytes) {
  stash_->insert(stash_->end(), bytes.begin(), bytes.end());
}

std::span<const Envelope> Mail::at(std::uint32_t dest) const noexcept {
  const auto lo = std::lower_bound(
      msgs_.begin(), msgs_.end(), dest,
      [](const Envelope& e, std::uint32_t d) { return e.dest < d; });
  auto hi = lo;
  while (hi != msgs_.end() && hi->dest == dest) ++hi;
  return std::span<const Envelope>(msgs_).subspan(
      static_cast<std::size_t>(lo - msgs_.begin()),
      static_cast<std::size_t>(hi - lo));
}

Cluster::Cluster(ClusterConfig config)
    : config_(config), pool_(std::make_shared<ThreadPool>(config.workers)) {
  backend_ = make_backend(config_.backend, pool_, config_.recorder);
}

Mail Cluster::run_round(const std::string& label, const std::vector<Bytes>& inputs,
                        const std::function<void(MachineContext&)>& body,
                        const RoundOptions& options) {
  // Wrap each contiguous input as a single-fragment chain (no copy).  The
  // chain vector is an arena: fragment lists keep their capacity across
  // rounds.
  input_chains_.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_chains_[i].clear();
    input_chains_[i].add(ByteSpan(inputs[i]));
  }
  return run_round_views(label, input_chains_, body, options);
}

void Cluster::route_mail(std::size_t machines, std::vector<Envelope>& out) {
  std::size_t total = 0;
  std::uint32_t dest_or = 0;
  for (std::size_t i = 0; i < machines; ++i) {
    total += outboxes_[i].size();
    for (const Envelope& env : outboxes_[i]) dest_or |= env.dest;
  }
  out.clear();

  // Tiny mails: one flat move + serial stable sort beats histogram setup.
  if (total < kRadixRouteMin) {
    out.reserve(total);
    for (std::size_t i = 0; i < machines; ++i) {
      for (Envelope& env : outboxes_[i]) out.push_back(std::move(env));
    }
    std::stable_sort(out.begin(), out.end(), by_dest);
    return;
  }

  // Counting/radix bucket-by-destination.  Histograms are sized to the
  // bits destinations actually use, so a round with 64 mailboxes pays a
  // 64-bucket prefix walk, not a 65536-bucket one; dests past 16 bits get
  // a second (high-bits) pass — LSD radix, stable in both passes.
  const unsigned dest_bits =
      std::max(1U, static_cast<unsigned>(std::bit_width(dest_or)));
  const unsigned low_bits = std::min(dest_bits, kRadixBits);
  const std::size_t low_buckets = std::size_t{1} << low_bits;
  const std::uint32_t low_mask = static_cast<std::uint32_t>(low_buckets - 1);

  // Chunk machines by cost, not count: a machine's envelopes weigh their
  // count plus their payload bytes (already aggregated in reports_), so a
  // few machines with huge emissions no longer serialize onto one chunk.
  const std::size_t workers = pool_->worker_count();
  const std::size_t chunks = std::clamp<std::size_t>(
      std::min(workers, total / kRouteChunkMin), 1, kRouteChunkMax);
  std::vector<std::size_t> machine_bounds(chunks + 1, machines);
  machine_bounds[0] = 0;
  {
    std::uint64_t total_weight = 0;
    for (std::size_t i = 0; i < machines; ++i) {
      total_weight += outboxes_[i].size() +
                      reports_[i].output_bytes / kRouteBytesPerEnvelope;
    }
    std::uint64_t acc = 0;
    std::size_t next = 1;
    for (std::size_t i = 0; i < machines && next < chunks; ++i) {
      acc += outboxes_[i].size() +
             reports_[i].output_bytes / kRouteBytesPerEnvelope;
      while (next < chunks && acc * chunks >= next * total_weight) {
        machine_bounds[next++] = i + 1;
      }
    }
  }

  // Pass 1 histogram: per-chunk counts of the low destination bits.
  radix_counts_.assign(chunks * low_buckets, 0);
  pool_->parallel_for(
      chunks,
      [&](std::size_t c) {
        std::uint32_t* counts = radix_counts_.data() + c * low_buckets;
        for (std::size_t i = machine_bounds[c]; i < machine_bounds[c + 1]; ++i) {
          for (const Envelope& env : outboxes_[i]) ++counts[env.dest & low_mask];
        }
      },
      1);

  // Exclusive prefix in (bucket, chunk) order: bucket b's region holds
  // chunk 0's envelopes before chunk 1's, and each chunk scans its
  // machines in (machine id, emission index) order — exactly the global
  // stable order within every bucket.
  std::uint32_t running = 0;
  for (std::size_t b = 0; b < low_buckets; ++b) {
    for (std::size_t c = 0; c < chunks; ++c) {
      std::uint32_t& slot = radix_counts_[c * low_buckets + b];
      const std::uint32_t count = slot;
      slot = running;
      running += count;
    }
  }

  const bool two_pass = dest_bits > kRadixBits;
  std::vector<Envelope>& pass1_out = two_pass ? route_scratch_ : out;
  pass1_out.resize(total);
  pool_->parallel_for(
      chunks,
      [&](std::size_t c) {
        std::uint32_t* offsets = radix_counts_.data() + c * low_buckets;
        for (std::size_t i = machine_bounds[c]; i < machine_bounds[c + 1]; ++i) {
          for (Envelope& env : outboxes_[i]) {
            pass1_out[offsets[env.dest & low_mask]++] = std::move(env);
          }
        }
      },
      1);
  if (!two_pass) return;

  // Pass 2: scatter by the high bits; stability over the pass-1 order
  // completes the LSD radix sort.  Chunks are equal envelope ranges of the
  // flat intermediate — payload skew was dissolved by pass 1.
  const std::size_t high_buckets = std::size_t{1} << (dest_bits - kRadixBits);
  radix_counts_.assign(chunks * high_buckets, 0);
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) bounds[c] = c * total / chunks;
  pool_->parallel_for(
      chunks,
      [&](std::size_t c) {
        std::uint32_t* counts = radix_counts_.data() + c * high_buckets;
        for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
          ++counts[route_scratch_[i].dest >> kRadixBits];
        }
      },
      1);
  running = 0;
  for (std::size_t b = 0; b < high_buckets; ++b) {
    for (std::size_t c = 0; c < chunks; ++c) {
      std::uint32_t& slot = radix_counts_[c * high_buckets + b];
      const std::uint32_t count = slot;
      slot = running;
      running += count;
    }
  }
  out.resize(total);
  pool_->parallel_for(
      chunks,
      [&](std::size_t c) {
        std::uint32_t* offsets = radix_counts_.data() + c * high_buckets;
        for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
          Envelope& env = route_scratch_[i];
          out[offsets[env.dest >> kRadixBits]++] = std::move(env);
        }
      },
      1);
  route_scratch_.clear();
}

Mail Cluster::run_round_views(const std::string& label,
                              const std::vector<ByteChain>& inputs,
                              const std::function<void(MachineContext&)>& body,
                              const RoundOptions& options) {
  const std::size_t round = round_index_++;
  const std::size_t machines = inputs.size();
  // Observability span covering the whole round (machine bodies + routing).
  // Inert (no strings, no clock reads) unless a recorder with sinks is
  // attached, so the metered path is unchanged when detached.
  obs::Span round_span(config_.recorder, label, "round");
  if (options.machine_memory_limits != nullptr &&
      options.machine_memory_limits->size() != machines) {
    throw std::invalid_argument(
        "round '" + label + "': " +
        std::to_string(options.machine_memory_limits->size()) +
        " per-machine memory limits for " + std::to_string(machines) +
        " machines");
  }

  // Arena slots: report entries reset, outbox slots keep their capacity.
  reports_.assign(machines, MachineReport{});
  if (outboxes_.size() < machines) outboxes_.resize(machines);
  if (stashes_.size() < machines) stashes_.resize(machines);

  // Audited execution swaps the zero-copy inputs for canary-padded private
  // copies.  The previous round's poisoned buffers stay alive through this
  // round (audit_poison retires them at round end), so a view a machine
  // retained across one round boundary reads 0xA5 instead of dangling.
  // A backend that isolates machine memory (separate address spaces)
  // discharges the canary detectors physically — the copies are skipped;
  // schedule replay and byte accounting stay armed.
  const AuditOptions& audit = config_.audit;
  const bool guard_inputs = audit.enabled && audit.guard_inputs &&
                            !backend_->isolates_machine_memory();
  AuditGuards guards;
  const std::vector<ByteChain>* exec_inputs = &inputs;
  if (guard_inputs) {
    guards = audit_guard_inputs(inputs);
    exec_inputs = &guards.chains;
  }

  // Auto grain: ~8 chunks per worker keeps balancing slack while tiny
  // machine bodies stop paying one contended RMW each.
  std::size_t grain = config_.grain;
  if (grain == 0) {
    grain = std::clamp<std::size_t>(machines / (pool_->worker_count() * 8 + 1),
                                    1, 64);
  }

  RoundWork work;
  work.round = round;
  work.seed = config_.seed;
  work.grain = grain;
  work.machines = machines;
  work.inputs = exec_inputs;
  work.body = &body;
  work.outboxes = &outboxes_;
  work.reports = &reports_;
  work.stashes = &stashes_;
  Stopwatch wall;
  backend_->execute(work);
  const double wall_seconds = wall.seconds();

  if (audit.enabled) {
    ++audit_report_.rounds_audited;
    if (guard_inputs) audit_check_guards(label, round, guards);
    if (audit.replay) audit_replay(label, round, *exec_inputs, body);
    if (audit.inject_after_round) audit_inject(round);
    if (guard_inputs) audit_poison(std::move(guards));
  }

  RoundReport rr;
  rr.label = label;
  rr.machines = machines;
  rr.wall_seconds = wall_seconds;
  rr.driver_seconds = options.driver_seconds;
  for (std::size_t i = 0; i < machines; ++i) {
    const MachineReport& m = reports_[i];
    rr.max_machine_memory = std::max(rr.max_machine_memory, m.memory_footprint());
    rr.total_comm_bytes += m.output_bytes;
    rr.total_input_bytes += m.input_bytes;
    rr.total_work += m.work;
    rr.max_machine_work = std::max(rr.max_machine_work, m.work);
    const std::uint64_t limit = options.machine_memory_limits != nullptr
                                    ? (*options.machine_memory_limits)[i]
                                    : config_.memory_limit_bytes;
    if (m.memory_footprint() > limit) {
      ++rr.memory_violations;
      if (config_.strict_memory) {
        throw MemoryLimitExceeded(
            "machine " + std::to_string(i) + " in round '" + label + "' used " +
            std::to_string(m.memory_footprint()) + "B > limit " +
            std::to_string(limit) + "B");
      }
    }
  }
  trace_.add_round(rr);
  if (options.machine_reports != nullptr) {
    *options.machine_reports = reports_;
  }
  if (options.machine_stash != nullptr) {
    options.machine_stash->assign(stashes_.begin(),
                                  stashes_.begin() +
                                      static_cast<std::ptrdiff_t>(machines));
  }

  // Deterministic routing: envelopes move (payloads are never copied)
  // straight from the outbox arenas into destination buckets — within a
  // mailbox the order stays (machine id, emission index), exactly as the
  // old per-mailbox vectors were filled.  Large mails scatter in parallel
  // on the worker pool.
  Mail mail;
  route_mail(machines, mail.msgs_);
  if (audit.enabled && audit.verify_comm_bytes) {
    audit_verify_comm(label, round, mail, rr.total_comm_bytes);
  }
  if (round_span) {
    round_span.arg("machines", static_cast<double>(rr.machines))
        .arg("total_work", static_cast<double>(rr.total_work))
        .arg("total_comm_bytes", static_cast<double>(rr.total_comm_bytes))
        .arg("max_machine_memory", static_cast<double>(rr.max_machine_memory))
        .arg("memory_violations", static_cast<double>(rr.memory_violations));
    round_span.finish();
    obs::Recorder& rec = *config_.recorder;
    rec.counter("mpc.comm_bytes", "mpc", static_cast<double>(rr.total_comm_bytes));
    rec.counter("mpc.work", "mpc", static_cast<double>(rr.total_work));
    const PoolCounters pc = pool_->counters();
    rec.counter("pool.parallel_for_calls", "pool",
                static_cast<double>(pc.parallel_for_calls));
    rec.counter("pool.inline_calls", "pool", static_cast<double>(pc.inline_calls));
    rec.counter("pool.tasks_enqueued", "pool",
                static_cast<double>(pc.tasks_enqueued));
    rec.counter("pool.indices_claimed", "pool",
                static_cast<double>(pc.indices_claimed));
    rec.counter("pool.peak_queue_depth", "pool",
                static_cast<double>(pc.peak_queue_depth));
    // Per-transport counters (cumulative, like the pool's): what one
    // "frame" means per backend is documented in docs/BACKENDS.md.
    const TransportCounters& tc = backend_->transport().counters();
    rec.counter("transport.frames_sent", "transport",
                static_cast<double>(tc.frames_sent));
    rec.counter("transport.frames_received", "transport",
                static_cast<double>(tc.frames_received));
    rec.counter("transport.bytes_sent", "transport",
                static_cast<double>(tc.bytes_sent));
    rec.counter("transport.bytes_received", "transport",
                static_cast<double>(tc.bytes_received));
    rec.counter("transport.flushes", "transport",
                static_cast<double>(tc.flushes));
    rec.counter("transport.barrier_waits", "transport",
                static_cast<double>(tc.barrier_waits));
  }
  maybe_decay_arenas(machines, mail.msgs_.size());
  return mail;
}

std::size_t Cluster::arena_footprint_bytes() const noexcept {
  std::size_t total = route_scratch_.capacity() * sizeof(Envelope) +
                      radix_counts_.capacity() * sizeof(std::uint32_t) +
                      outboxes_.capacity() * sizeof(std::vector<Envelope>) +
                      reports_.capacity() * sizeof(MachineReport) +
                      stashes_.capacity() * sizeof(Bytes) +
                      input_chains_.capacity() * sizeof(ByteChain);
  for (const std::vector<Envelope>& box : outboxes_) {
    total += box.capacity() * sizeof(Envelope);
  }
  for (const Bytes& stash : stashes_) total += stash.capacity();
  for (const ByteChain& chain : input_chains_) {
    total += chain.parts().capacity() * sizeof(ByteSpan);
  }
  return total;
}

void Cluster::maybe_decay_arenas(std::size_t machines, std::size_t envelopes) {
  // Retained envelope-slot capacity vs what this round actually used: the
  // envelope structs pinned by the outbox slots and the two-pass scratch
  // dominate after a skewed burst (payload bytes themselves are moved out
  // to the caller with the Mail).
  std::size_t retained = route_scratch_.capacity();
  for (const std::vector<Envelope>& box : outboxes_) retained += box.capacity();
  const std::size_t need = std::max(envelopes, machines);
  if (retained * sizeof(Envelope) <= kArenaFloorBytes ||
      retained <= kArenaDecayFactor * need) {
    arena_low_rounds_ = 0;
    return;
  }
  if (++arena_low_rounds_ < kArenaDecayRounds) return;
  arena_low_rounds_ = 0;
  // Sustained low usage: release everything and let the following rounds
  // regrow to their own high-water mark.  Results are unaffected — only
  // the next round's first allocations.
  outboxes_.clear();
  outboxes_.shrink_to_fit();
  stashes_.clear();
  stashes_.shrink_to_fit();
  route_scratch_.clear();
  route_scratch_.shrink_to_fit();
  radix_counts_.clear();
  radix_counts_.shrink_to_fit();
  input_chains_.clear();
  input_chains_.shrink_to_fit();
}

ByteChain gather_view(const Mail& mail, std::uint32_t dest) {
  ByteChain chain;
  for (const Envelope& env : mail.at(dest)) chain.add(ByteSpan(env.payload));
  return chain;
}

}  // namespace mpcsd::mpc
