#include "mpc/cluster.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace mpcsd::mpc {

void MachineContext::emit(std::uint32_t dest, Bytes payload) {
  report_.output_bytes += payload.size();
  outbox_.emplace_back(dest, std::move(payload));
}

Cluster::Cluster(ClusterConfig config)
    : config_(config), pool_(std::make_shared<ThreadPool>(config.workers)) {}

Mail Cluster::run_round(const std::string& label, const std::vector<Bytes>& inputs,
                        const std::function<void(MachineContext&)>& body) {
  const std::size_t round = round_index_++;
  const std::size_t machines = inputs.size();

  std::vector<MachineReport> reports(machines);
  std::vector<std::vector<std::pair<std::uint32_t, Bytes>>> outboxes(machines);

  Stopwatch wall;
  pool_->parallel_for(machines, [&](std::size_t i) {
    MachineContext ctx(i, &inputs[i],
                       derive_stream(config_.seed, round, i));
    ctx.report_.input_bytes = inputs[i].size();
    body(ctx);
    reports[i] = ctx.report_;
    outboxes[i] = std::move(ctx.outbox_);
  });

  RoundReport rr;
  rr.label = label;
  rr.machines = machines;
  rr.wall_seconds = wall.seconds();
  for (std::size_t i = 0; i < machines; ++i) {
    const MachineReport& m = reports[i];
    rr.max_machine_memory = std::max(rr.max_machine_memory, m.memory_footprint());
    rr.total_comm_bytes += m.output_bytes;
    rr.total_input_bytes += m.input_bytes;
    rr.total_work += m.work;
    rr.max_machine_work = std::max(rr.max_machine_work, m.work);
    if (m.memory_footprint() > config_.memory_limit_bytes) {
      ++rr.memory_violations;
      if (config_.strict_memory) {
        throw MemoryLimitExceeded(
            "machine " + std::to_string(i) + " in round '" + label + "' used " +
            std::to_string(m.memory_footprint()) + "B > limit " +
            std::to_string(config_.memory_limit_bytes) + "B");
      }
    }
  }
  trace_.add_round(rr);

  // Deterministic mail merge: machine id order, then emission order.
  Mail mail;
  for (auto& outbox : outboxes) {
    for (auto& [dest, payload] : outbox) {
      mail[dest].push_back(std::move(payload));
    }
  }
  return mail;
}

Bytes gather(const Mail& mail, std::uint32_t dest) {
  const auto it = mail.find(dest);
  if (it == mail.end()) return {};
  return concat(it->second);
}

}  // namespace mpcsd::mpc
