#include "mpc/stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/hash.hpp"

namespace mpcsd::mpc {

std::size_t ExecutionTrace::max_machines() const noexcept {
  std::size_t best = 0;
  for (const auto& r : rounds_) best = std::max(best, r.machines);
  return best;
}

std::uint64_t ExecutionTrace::max_machine_memory() const noexcept {
  std::uint64_t best = 0;
  for (const auto& r : rounds_) best = std::max(best, r.max_machine_memory);
  return best;
}

std::uint64_t ExecutionTrace::total_work() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds_) total += r.total_work;
  return total;
}

std::uint64_t ExecutionTrace::critical_path_work() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds_) total += r.max_machine_work;
  return total;
}

std::uint64_t ExecutionTrace::total_comm_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds_) total += r.total_comm_bytes;
  return total;
}

std::size_t ExecutionTrace::memory_violations() const noexcept {
  std::size_t total = 0;
  for (const auto& r : rounds_) total += r.memory_violations;
  return total;
}

std::uint64_t ExecutionTrace::structural_hash() const noexcept {
  std::uint64_t h = hash_mix(kFnvOffset, rounds_.size());
  for (const RoundReport& r : rounds_) {
    h = hash_bytes(r.label.data(), r.label.size(), h);
    h = hash_mix(h, r.machines);
    h = hash_mix(h, r.max_machine_memory);
    h = hash_mix(h, r.total_comm_bytes);
    h = hash_mix(h, r.total_input_bytes);
    h = hash_mix(h, r.total_work);
    h = hash_mix(h, r.max_machine_work);
    h = hash_mix(h, r.memory_violations);
  }
  return h;
}

void ExecutionTrace::append_sequential(const ExecutionTrace& other) {
  rounds_.insert(rounds_.end(), other.rounds_.begin(), other.rounds_.end());
}

void ExecutionTrace::merge_parallel(const ExecutionTrace& other) {
  if (other.rounds_.size() > rounds_.size()) {
    rounds_.resize(other.rounds_.size());
  }
  for (std::size_t i = 0; i < other.rounds_.size(); ++i) {
    RoundReport& mine = rounds_[i];
    const RoundReport& theirs = other.rounds_[i];
    if (mine.label.empty()) {
      mine.label = theirs.label;
    } else if (!theirs.label.empty() && mine.label != theirs.label) {
      mine.label += "|" + theirs.label;
    }
    mine.machines += theirs.machines;
    mine.max_machine_memory = std::max(mine.max_machine_memory, theirs.max_machine_memory);
    mine.total_comm_bytes += theirs.total_comm_bytes;
    mine.total_input_bytes += theirs.total_input_bytes;
    mine.total_work += theirs.total_work;
    mine.max_machine_work = std::max(mine.max_machine_work, theirs.max_machine_work);
    mine.wall_seconds = std::max(mine.wall_seconds, theirs.wall_seconds);
    mine.driver_seconds = std::max(mine.driver_seconds, theirs.driver_seconds);
    mine.memory_violations += theirs.memory_violations;
  }
}

std::string ExecutionTrace::to_csv() const {
  std::ostringstream os;
  os << "round,label,machines,max_machine_memory,total_comm_bytes,"
        "total_input_bytes,total_work,max_machine_work,wall_seconds,"
        "memory_violations\n";
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    const RoundReport& r = rounds_[i];
    os << (i + 1) << ',' << r.label << ',' << r.machines << ','
       << r.max_machine_memory << ',' << r.total_comm_bytes << ','
       << r.total_input_bytes << ',' << r.total_work << ','
       << r.max_machine_work << ',' << r.wall_seconds << ','
       << r.memory_violations << '\n';
  }
  return os.str();
}

std::string ExecutionTrace::summary() const {
  std::ostringstream os;
  os << "rounds=" << round_count() << " max_machines=" << max_machines()
     << " max_machine_memory=" << max_machine_memory()
     << "B total_work=" << total_work()
     << " critical_path_work=" << critical_path_work()
     << " comm=" << total_comm_bytes() << "B";
  if (memory_violations() > 0) {
    os << " MEMORY_VIOLATIONS=" << memory_violations();
  }
  os << '\n';
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    const RoundReport& r = rounds_[i];
    os << "  round " << (i + 1) << " [" << r.label << "]: machines=" << r.machines
       << " max_mem=" << r.max_machine_memory << "B work=" << r.total_work
       << " max_work=" << r.max_machine_work << " comm=" << r.total_comm_bytes
       << "B\n";
  }
  return os.str();
}

}  // namespace mpcsd::mpc
