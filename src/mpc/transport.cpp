#include "mpc/transport.hpp"

#include <algorithm>
#include <array>

#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mpc/backend.hpp"
#include "mpc/cluster.hpp"

namespace mpcsd::mpc {

// --- frame protocol ---------------------------------------------------

void encode_frame_header(ByteWriter& w, FrameTag tag,
                         std::uint64_t payload_bytes) {
  w.put<std::uint32_t>(kFrameMagic);
  w.put<std::uint8_t>(kFrameVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(tag));
  w.put<std::uint64_t>(payload_bytes);
}

FrameHeader decode_frame_header(const std::byte* data, std::size_t size) {
  if (size < kFrameHeaderBytes) {
    throw FrameError("truncated frame header: " + std::to_string(size) +
                     " of " + std::to_string(kFrameHeaderBytes) + " bytes");
  }
  ByteReader r(data, kFrameHeaderBytes);
  const auto magic = r.get<std::uint32_t>();
  if (magic != kFrameMagic) {
    throw FrameError("bad frame magic " + std::to_string(magic));
  }
  const auto version = r.get<std::uint8_t>();
  if (version != kFrameVersion) {
    throw FrameError("unsupported frame version " + std::to_string(version));
  }
  const auto tag = r.get<std::uint8_t>();
  if (tag < static_cast<std::uint8_t>(FrameTag::kHello) ||
      tag > static_cast<std::uint8_t>(FrameTag::kPong)) {
    throw FrameError("unknown frame tag " + std::to_string(tag));
  }
  const auto payload_bytes = r.get<std::uint64_t>();
  if (payload_bytes > kMaxFramePayload) {
    throw FrameError("oversized frame payload: " +
                     std::to_string(payload_bytes) + " > " +
                     std::to_string(kMaxFramePayload) + " bytes");
  }
  return FrameHeader{static_cast<FrameTag>(tag), payload_bytes};
}

bool FrameStream::send(FrameTag tag, ByteSpan payload) {
  ByteWriter header;
  header.reserve(kFrameHeaderBytes);
  encode_frame_header(header, tag, payload.size());
  const bool ok =
      medium_ == Medium::kSocket
          ? io::write_full_nosignal(fd_, header.bytes().data(),
                                    header.bytes().size()) &&
                io::write_full_nosignal(fd_, payload.data(), payload.size())
          : io::write_full(fd_, header.bytes().data(),
                           header.bytes().size()) &&
                io::write_full(fd_, payload.data(), payload.size());
  if (ok && counters_ != nullptr) {
    ++counters_->frames_sent;
    counters_->bytes_sent += kFrameHeaderBytes + payload.size();
    ++counters_->flushes;  // one kernel handoff per frame (unbuffered)
  }
  return ok;
}

std::optional<Frame> FrameStream::recv() {
  std::array<std::byte, kFrameHeaderBytes> header{};
  if (!io::read_full(fd_, header.data(), header.size())) {
    return std::nullopt;  // peer closed before (or mid) header
  }
  const FrameHeader h = decode_frame_header(header.data(), header.size());
  Frame frame;
  frame.tag = h.tag;
  frame.payload.resize(h.payload_bytes);
  if (h.payload_bytes > 0 &&
      !io::read_full(fd_, frame.payload.data(), frame.payload.size())) {
    throw FrameError("frame payload cut short: peer closed mid-message");
  }
  if (counters_ != nullptr) {
    ++counters_->frames_received;
    counters_->bytes_received += kFrameHeaderBytes + h.payload_bytes;
  }
  return frame;
}

// --- wire records ------------------------------------------------------

void encode_barrier(ByteWriter& w, const BarrierRecord& record) {
  w.put<std::uint8_t>(record.status);
  w.put<std::uint64_t>(record.result_bytes);
  w.put<double>(record.body_seconds);
}

BarrierRecord decode_barrier(ByteReader& r) {
  BarrierRecord record;
  record.status = r.get<std::uint8_t>();
  if (record.status > kWorkerPublishFailed) {
    throw FrameError("unknown worker status " +
                     std::to_string(record.status) + " in barrier record");
  }
  record.result_bytes = r.get<std::uint64_t>();
  record.body_seconds = r.get<double>();
  return record;
}

void encode_hello(ByteWriter& w, const HelloRecord& record) {
  w.put<std::uint32_t>(record.slot);
  w.put<std::uint8_t>(record.body_affinity);
  w.put<std::uint64_t>(record.round);
}

HelloRecord decode_hello(ByteReader& r) {
  HelloRecord record;
  record.slot = r.get<std::uint32_t>();
  record.body_affinity = r.get<std::uint8_t>();
  if (record.body_affinity > 1) {
    throw FrameError("bad body-affinity flag " +
                     std::to_string(record.body_affinity) + " in hello");
  }
  record.round = r.get<std::uint64_t>();
  return record;
}

void encode_assign(ByteWriter& w, const AssignRecord& record) {
  w.put<std::uint64_t>(record.round);
  w.put<std::uint64_t>(record.seed);
  w.put<std::uint64_t>(record.begin);
  w.put<std::uint64_t>(record.end);
}

AssignRecord decode_assign(ByteReader& r) {
  AssignRecord record;
  record.round = r.get<std::uint64_t>();
  record.seed = r.get<std::uint64_t>();
  record.begin = r.get<std::uint64_t>();
  record.end = r.get<std::uint64_t>();
  if (record.begin > record.end) {
    throw FrameError("inverted machine range [" +
                     std::to_string(record.begin) + ", " +
                     std::to_string(record.end) + ") in assign record");
  }
  return record;
}

void encode_machine_result(ByteWriter& w, const MachineReport& report,
                           const Bytes& stash,
                           const std::vector<Envelope>& outbox) {
  w.put(report);
  w.put_vector(stash);
  w.put<std::uint64_t>(outbox.size());
  for (const Envelope& env : outbox) {
    w.put<std::uint32_t>(env.dest);
    w.put_vector(env.payload);
  }
}

void decode_machine_result(ByteReader& r, MachineReport* report, Bytes* stash,
                           std::vector<Envelope>* outbox) {
  *report = r.get<MachineReport>();
  *stash = r.get_vector<std::byte>();
  outbox->clear();
  const auto count = r.get<std::uint64_t>();
  // Cap the speculative reserve: a corrupt count cannot force a huge
  // allocation — each envelope costs >= 12 wire bytes, so the reader will
  // underflow (ContractViolation) long before a capped vector regrows.
  constexpr std::uint64_t kReserveCap = 1u << 16;
  outbox->reserve(static_cast<std::size_t>(std::min(count, kReserveCap)));
  for (std::uint64_t e = 0; e < count; ++e) {
    const auto dest = r.get<std::uint32_t>();
    outbox->push_back(Envelope{dest, r.get_vector<std::byte>()});
  }
}

// --- worker-side round execution ---------------------------------------

BarrierRecord run_round_partition(const RoundWork& work, std::size_t begin,
                                  std::size_t end, ByteWriter& out) {
  BarrierRecord record;
  const Stopwatch body_wall;
  try {
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<Envelope> outbox;
      Bytes stash;
      MachineContext ctx(i, &(*work.inputs)[i],
                         derive_stream(work.seed, work.round, i), &outbox,
                         &stash);
      ctx.report_.input_bytes = (*work.inputs)[i].total_bytes();
      (*work.body)(ctx);
      encode_machine_result(out, ctx.report_, stash, outbox);
    }
  } catch (const std::exception& e) {
    record.status = kWorkerBodyThrew;
    out = ByteWriter{};
    out.put_string(e.what());
  } catch (...) {
    record.status = kWorkerBodyThrew;
    out = ByteWriter{};
    out.put_string("non-standard exception in machine body");
  }
  record.body_seconds = body_wall.seconds();
  record.result_bytes = out.bytes().size();
  return record;
}

void decode_partition_results(ByteReader& r, const RoundWork& work,
                              std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    decode_machine_result(r, &(*work.reports)[i], &(*work.stashes)[i],
                          &(*work.outboxes)[i]);
  }
}

}  // namespace mpcsd::mpc
