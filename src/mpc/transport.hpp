// The transport layer: every byte that crosses a machine boundary.
//
// The data plane is three layers, each defined exactly once:
//
//   payload codecs (plan.hpp)       typed values <-> payload bytes
//   records + frames (this file)    envelopes, machine results, barriers,
//                                   control records, framed messages
//   byte streams (common/io.hpp)    EINTR-safe fd reads/writes
//
// Before this layer existed the middle tier was smeared across three
// ad-hoc copies: the in-process router moved `Envelope`s directly, the
// process backend hand-rolled the same record layout into its memfd
// arenas plus a bespoke 17-byte pipe barrier, and a socket backend would
// have been a fourth copy.  Now every backend speaks the same records:
//
//   * `Envelope`            one routed message (the unit of communication
//                           metering) — moved here from cluster.hpp, since
//                           it *is* the transport's data unit;
//   * machine-result record the (report, stash, outbox) triple one machine
//                           produced, in the exact byte layout the process
//                           backend's arenas pinned in PR 7;
//   * `BarrierRecord`       the end-of-round worker status (the former
//                           17-byte pipe barrier, now a frame payload);
//   * control records       hello / assign handshakes for remote workers.
//
// Frames wrap records for fd-based transports: a fixed 14-byte header
// (magic, version, tag, payload length — all length-prefixed, validated
// strictly on decode) followed by the payload.  `FrameStream` moves whole
// frames over an fd; `TransportCounters` meters them uniformly so the obs
// spine can report frames/bytes/flushes/barrier-waits per backend.
//
// Determinism contract: records are pure functions of machine outputs —
// byte-identical across {thread, process, socket} backends and worker
// counts, pinned by test_determinism.cpp and the golden traces.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mpc/stats.hpp"

namespace mpcsd::mpc {

struct RoundWork;  // backend.hpp

/// One routed message: destination mailbox and its (owned) payload.
struct Envelope {
  std::uint32_t dest = 0;
  Bytes payload;
};

// --- frame protocol ---------------------------------------------------

/// Malformed frame or record: bad magic/version/tag, oversized or
/// truncated payload.  Distinct from ContractViolation so transports can
/// separate "peer speaks garbage" from "library bug".
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Message kinds carried on a frame stream.
enum class FrameTag : std::uint8_t {
  kHello = 1,     ///< worker -> coordinator: slot, body affinity, round
  kAssign = 2,    ///< coordinator -> worker: round, seed, machine range
  kResults = 3,   ///< worker -> coordinator: machine-result records
  kBarrier = 4,   ///< worker -> coordinator: end-of-round BarrierRecord
  kError = 5,     ///< worker -> coordinator: failure message (string)
  kShutdown = 6,  ///< coordinator -> worker: disconnect, reason (string)
  kPing = 7,      ///< liveness probe (payload echoed back)
  kPong = 8,      ///< liveness reply
};

/// "MPCF" little-endian; the first 4 bytes of every frame.
inline constexpr std::uint32_t kFrameMagic = 0x4643504Du;
inline constexpr std::uint8_t kFrameVersion = 1;
/// magic u32 + version u8 + tag u8 + payload length u64.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 1 + 8;
/// Hard cap on one frame's payload; a length past this is rejected before
/// any allocation (a corrupt peer cannot OOM the coordinator).
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

struct FrameHeader {
  FrameTag tag = FrameTag::kHello;
  std::uint64_t payload_bytes = 0;
};

struct Frame {
  FrameTag tag = FrameTag::kHello;
  Bytes payload;
};

/// Appends the 14-byte header for (tag, payload_bytes) to `w`.
void encode_frame_header(ByteWriter& w, FrameTag tag,
                         std::uint64_t payload_bytes);

/// Validates and decodes a header from the first `size` bytes of `data`.
/// Throws FrameError on: truncated header (size < kFrameHeaderBytes), bad
/// magic, unsupported version, unknown tag, payload length past
/// kMaxFramePayload.
[[nodiscard]] FrameHeader decode_frame_header(const std::byte* data,
                                              std::size_t size);

// --- per-transport metering -------------------------------------------

/// Uniform counters every transport maintains; surfaced on the obs spine
/// as `transport.*` after each round.  What a "frame" is depends on the
/// transport (see docs/BACKENDS.md): an envelope handed to the in-process
/// router, one published arena for shm, one wire frame for tcp.
struct TransportCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t flushes = 0;        ///< kernel/router handoff points
  std::uint64_t barrier_waits = 0;  ///< end-of-round barriers awaited
};

/// A transport owns the counters for one backend's boundary crossings.
class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] const TransportCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] TransportCounters& counters() noexcept { return counters_; }

 private:
  TransportCounters counters_;
};

/// Counter-only transport for backends whose wire is a memory move (the
/// in-process router) or a shared-memory arena (the process backend).
class CountingTransport final : public Transport {
 public:
  explicit CountingTransport(const char* name) noexcept : name_(name) {}
  [[nodiscard]] const char* name() const noexcept override { return name_; }

 private:
  const char* name_;
};

/// Framed messages over an fd (round-barrier pipes, TCP sockets).  Does
/// not own the fd.  `counters` (optional) meters every frame moved.
class FrameStream {
 public:
  enum class Medium : std::uint8_t {
    kPipe,    ///< plain write()
    kSocket,  ///< send(MSG_NOSIGNAL): peer loss is an error, not SIGPIPE
  };

  explicit FrameStream(int fd, TransportCounters* counters = nullptr,
                       Medium medium = Medium::kPipe) noexcept
      : fd_(fd), counters_(counters), medium_(medium) {}

  /// Sends one frame (header + payload).  False on a write failure.
  [[nodiscard]] bool send(FrameTag tag, ByteSpan payload);

  /// Receives one frame.  nullopt when the peer closed before a header
  /// arrived (clean EOF); FrameError on a malformed header or a payload
  /// cut short (the peer died mid-message).
  [[nodiscard]] std::optional<Frame> recv();

 private:
  int fd_;
  TransportCounters* counters_;
  Medium medium_;
};

// --- wire records ------------------------------------------------------

/// Worker status carried in a BarrierRecord.
inline constexpr std::uint8_t kWorkerOk = 0;
inline constexpr std::uint8_t kWorkerBodyThrew = 1;
inline constexpr std::uint8_t kWorkerPublishFailed = 2;

/// End-of-round worker report: status byte, result byte count, body wall
/// seconds.  Exactly the process backend's original 17-byte pipe barrier
/// (u8 + u64 + double, packed by ByteWriter — no struct padding).
struct BarrierRecord {
  std::uint8_t status = kWorkerOk;
  std::uint64_t result_bytes = 0;
  double body_seconds = 0.0;
};
inline constexpr std::size_t kBarrierRecordBytes = 1 + 8 + 8;

void encode_barrier(ByteWriter& w, const BarrierRecord& record);
/// Throws FrameError on an unknown status byte (reader underflow raises
/// ContractViolation as everywhere else).
[[nodiscard]] BarrierRecord decode_barrier(ByteReader& r);

/// Worker slot of a connection with no machine partition (an external
/// `mpcsd_cli --worker` joining for control traffic only).
inline constexpr std::uint32_t kWorkerSlotNone = 0xFFFFFFFFu;

/// Worker -> coordinator handshake.
struct HelloRecord {
  std::uint32_t slot = kWorkerSlotNone;
  std::uint8_t body_affinity = 0;  ///< 1: forked from this round's host
  std::uint64_t round = 0;
};

/// Coordinator -> worker round assignment (echoes the partition so both
/// sides agree before any body runs).
struct AssignRecord {
  std::uint64_t round = 0;
  std::uint64_t seed = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

void encode_hello(ByteWriter& w, const HelloRecord& record);
[[nodiscard]] HelloRecord decode_hello(ByteReader& r);
void encode_assign(ByteWriter& w, const AssignRecord& record);
[[nodiscard]] AssignRecord decode_assign(ByteReader& r);

/// Appends one machine-result record — report, stash, then the outbox as
/// a count plus (dest, payload) pairs.  This is the PR 7 arena layout,
/// byte for byte; docs/BACKENDS.md documents it as the wire contract.
void encode_machine_result(ByteWriter& w, const MachineReport& report,
                           const Bytes& stash,
                           const std::vector<Envelope>& outbox);

/// Decodes one machine-result record into the given slots (outbox is
/// cleared first; its capacity is kept).  Truncated input raises
/// ContractViolation from the reader.
void decode_machine_result(ByteReader& r, MachineReport* report, Bytes* stash,
                           std::vector<Envelope>* outbox);

// --- worker-side round execution (shared by isolating backends) --------

/// Runs machines [begin, end) of `work` serially — the worker side of the
/// process and socket backends, where pool threads did not survive the
/// fork — appending one machine-result record per machine to `out`.  On a
/// body exception `out` is replaced by the exception message (put_string)
/// and the returned status says kWorkerBodyThrew.  The returned
/// result_bytes is out's final size; body_seconds covers the body loop.
[[nodiscard]] BarrierRecord run_round_partition(const RoundWork& work,
                                                std::size_t begin,
                                                std::size_t end,
                                                ByteWriter& out);

/// Host-side inverse: decodes the records for machines [begin, end) from
/// `r` into the round arenas of `work`, in machine order.
void decode_partition_results(ByteReader& r, const RoundWork& work,
                              std::size_t begin, std::size_t end);

}  // namespace mpcsd::mpc
