#include "mpc/transport_socket.hpp"

#include <stdexcept>
#include <string>

namespace mpcsd::mpc {

std::vector<HostPort> parse_host_port_list(std::string_view text) {
  std::vector<HostPort> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    std::string_view entry = text.substr(pos, comma - pos);
    while (!entry.empty() && entry.front() == ' ') entry.remove_prefix(1);
    while (!entry.empty() && entry.back() == ' ') entry.remove_suffix(1);
    if (entry.empty()) {
      throw std::invalid_argument("empty host:port entry in '" +
                                  std::string(text) + "'");
    }
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      throw std::invalid_argument("expected host:port, got '" +
                                  std::string(entry) + "'");
    }
    std::uint32_t port = 0;
    for (const char c : entry.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        throw std::invalid_argument("non-numeric port in '" +
                                    std::string(entry) + "'");
      }
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
      if (port > 65535) {
        throw std::invalid_argument("port out of range in '" +
                                    std::string(entry) + "'");
      }
    }
    out.push_back(HostPort{std::string(entry.substr(0, colon)),
                           static_cast<std::uint16_t>(port)});
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty host:port list");
  return out;
}

}  // namespace mpcsd::mpc

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/env.hpp"
#include "common/io.hpp"
#include "obs/trace.hpp"

namespace mpcsd::mpc {

namespace {

/// Covers the widest pool fan-out plus stray external workers queueing
/// between rounds.
constexpr int kListenBacklog = 64;
/// Poll slice between dead-child checks while waiting for connect-backs.
constexpr int kAcceptPollMs = 200;
/// Total wait for a forked worker to connect before the round fails.
constexpr int kAcceptTimeoutMs = 30000;
/// Child exit codes (diagnostic; failures are detected via the stream).
constexpr int kChildConnectFailed = 3;
constexpr int kChildBadAssign = 4;

std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// The sockaddr aliasing every socket call requires, via void* so the
/// pointer-punning casts stay confined to the byte-serialization layer.
sockaddr* as_sockaddr(sockaddr_in& sa) {
  return static_cast<sockaddr*>(static_cast<void*>(&sa));
}

/// Numeric IPv4 only (plus the "localhost" spelling) — the transport is
/// localhost-first; DNS stays out of the round path.
bool resolve_ipv4(const std::string& host, in_addr* out) {
  const char* name =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, name, out) == 1;
}

void set_nodelay(int fd) {
  // Frames are request/response sized; Nagle would add round-trip lag.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// MPCSD_SOCKET_LISTEN override for the coordinator's listen address;
/// malformed values warn once and fall back to an ephemeral loopback port.
HostPort listen_address_from_env() {
  const HostPort fallback{"127.0.0.1", 0};
  const char* env = std::getenv("MPCSD_SOCKET_LISTEN");
  if (env == nullptr || *env == '\0') return fallback;
  try {
    return parse_host_port_list(env).front();
  } catch (const std::invalid_argument&) {
    static std::atomic<bool> warned{false};
    warn_env_once(warned, "MPCSD_SOCKET_LISTEN", env, "host:port",
                  "listening on 127.0.0.1 with an ephemeral port");
    return fallback;
  }
}

}  // namespace

SocketTransport::SocketTransport(HostPort listen) : bound_(std::move(listen)) {}

SocketTransport::~SocketTransport() { io::close_fd(listen_fd_); }

void SocketTransport::ensure_listening() {
  if (listen_fd_ >= 0) return;
  in_addr addr{};
  if (!resolve_ipv4(bound_.host, &addr)) {
    throw std::runtime_error(
        "socket transport: cannot resolve listen host '" + bound_.host +
        "' (numeric IPv4 or 'localhost')");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error(errno_detail("socket transport: socket"));
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr;
  sa.sin_port = htons(bound_.port);
  if (::bind(fd, as_sockaddr(sa), sizeof(sa)) != 0) {
    const std::string detail = errno_detail("socket transport: bind");
    io::close_fd(fd);
    throw std::runtime_error(detail + " (" + bound_.host + ":" +
                             std::to_string(bound_.port) + ")");
  }
  if (::listen(fd, kListenBacklog) != 0) {
    const std::string detail = errno_detail("socket transport: listen");
    io::close_fd(fd);
    throw std::runtime_error(detail);
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, as_sockaddr(sa), &len) == 0) {
    bound_.port = ntohs(sa.sin_port);  // resolve an ephemeral bind
  }
  listen_fd_ = fd;
}

int SocketTransport::accept_connection(int timeout_ms) {
  ensure_listening();
  pollfd p{listen_fd_, POLLIN, 0};
  int rc = 0;
  while ((rc = ::poll(&p, 1, timeout_ms)) < 0 && errno == EINTR) {
  }
  if (rc < 0) throw std::runtime_error(errno_detail("socket transport: poll"));
  if (rc == 0) return -1;
  int fd = -1;
  while ((fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC)) < 0 &&
         errno == EINTR) {
  }
  if (fd < 0) throw std::runtime_error(errno_detail("socket transport: accept"));
  set_nodelay(fd);
  return fd;
}

int SocketTransport::connect_to(const HostPort& target) {
  in_addr addr{};
  if (!resolve_ipv4(target.host, &addr)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr;
  sa.sin_port = htons(target.port);
  int rc = ::connect(fd, as_sockaddr(sa), sizeof(sa));
  if (rc < 0 && errno == EINTR) {
    // The connect continues in the background after EINTR; wait for it and
    // read the outcome — re-calling connect() would report EALREADY.
    pollfd p{fd, POLLOUT, 0};
    while (::poll(&p, 1, -1) < 0 && errno == EINTR) {
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    rc = (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) == 0 && err == 0)
             ? 0
             : -1;
  }
  if (rc < 0) {
    io::close_fd(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

SocketBackend::SocketBackend(std::shared_ptr<ThreadPool> pool,
                             obs::Recorder* recorder)
    : pool_(std::move(pool)),
      recorder_(recorder),
      transport_(std::make_unique<SocketTransport>(listen_address_from_env())) {
}

void SocketBackend::run_worker(const RoundWork& work, std::uint32_t slot,
                               std::size_t begin, std::size_t end,
                               const HostPort& coordinator) {
  // The forked child: same copy-on-write snapshot semantics as the process
  // backend's workers; only the result wire differs (TCP frames instead of
  // a shared-memory arena).
  int fd = SocketTransport::connect_to(coordinator);
  if (fd < 0) ::_exit(kChildConnectFailed);
  FrameStream stream(fd, nullptr, FrameStream::Medium::kSocket);
  ByteWriter hello;
  encode_hello(hello, HelloRecord{slot, /*body_affinity=*/1, work.round});
  if (!stream.send(FrameTag::kHello, ByteSpan(hello.bytes()))) {
    ::_exit(kChildConnectFailed);
  }
  try {
    const auto frame = stream.recv();
    if (!frame.has_value() || frame->tag != FrameTag::kAssign) {
      ::_exit(kChildBadAssign);
    }
    ByteReader r(frame->payload);
    const AssignRecord assign = decode_assign(r);
    if (assign.round != work.round || assign.begin != begin ||
        assign.end != end) {
      ::_exit(kChildBadAssign);
    }
  } catch (const std::exception&) {
    ::_exit(kChildBadAssign);
  }
  ByteWriter out;
  const BarrierRecord barrier = run_round_partition(work, begin, end, out);
  (void)stream.send(
      barrier.status == kWorkerOk ? FrameTag::kResults : FrameTag::kError,
      ByteSpan(out.bytes()));
  ByteWriter record;
  encode_barrier(record, barrier);
  (void)stream.send(FrameTag::kBarrier, ByteSpan(record.bytes()));
  io::close_fd(fd);
}

void SocketBackend::execute(const RoundWork& work) {
  const std::size_t machines = work.machines;
  if (machines == 0) return;
  transport_->ensure_listening();
  const std::size_t workers =
      std::clamp<std::size_t>(pool_->worker_count(), 1, machines);
  // Children connect back over loopback even when the coordinator listens
  // on a wildcard address.
  HostPort coordinator = transport_->address();
  if (coordinator.host == "0.0.0.0") coordinator.host = "127.0.0.1";

  struct Slot {
    pid_t pid = -1;
    std::size_t begin = 0;
    std::size_t end = 0;
    int fd = -1;
    std::unique_ptr<FrameStream> stream;
  };
  std::vector<Slot> slots(workers);
  const bool traced = recorder_ != nullptr && recorder_->enabled();
  const std::uint64_t round_start_us = traced ? recorder_->now_us() : 0;

  std::string failure;
  std::size_t forked = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    Slot& s = slots[w];
    s.begin = w * machines / workers;
    s.end = (w + 1) * machines / workers;
    const pid_t pid = ::fork();
    if (pid < 0) {
      failure = errno_detail("socket backend: fork");
      break;
    }
    if (pid == 0) {
      // Child: connect back, stream the partition, and _exit — never
      // unwind into the host's destructors.
      run_worker(work, static_cast<std::uint32_t>(w), s.begin, s.end,
                 coordinator);
      ::_exit(0);
    }
    s.pid = pid;
    ++forked;
  }

  // Connect-back phase: accept until every forked worker has checked in.
  // External protocol workers (body_affinity=0) may also arrive here; they
  // cannot run closure rounds, so they are sent a reasoned shutdown.
  TransportCounters& counters = transport_->counters();
  std::size_t connected = 0;
  int waited_ms = 0;
  while (failure.empty() && connected < forked) {
    int fd = -1;
    try {
      fd = transport_->accept_connection(kAcceptPollMs);
    } catch (const std::exception& e) {
      failure = e.what();
      break;
    }
    if (fd < 0) {
      waited_ms += kAcceptPollMs;
      for (Slot& s : slots) {
        if (s.pid > 0 && s.stream == nullptr) {
          int wait_status = 0;
          if (::waitpid(s.pid, &wait_status, WNOHANG) == s.pid) {
            s.pid = -1;  // reaped
            failure = "socket backend: worker for machines [" +
                      std::to_string(s.begin) + ", " + std::to_string(s.end) +
                      ") died before connecting";
            break;
          }
        }
      }
      if (failure.empty() && waited_ms >= kAcceptTimeoutMs) {
        failure = "socket backend: timed out waiting for workers to connect";
      }
      continue;
    }
    auto stream = std::make_unique<FrameStream>(fd, &counters,
                                                FrameStream::Medium::kSocket);
    try {
      const auto frame = stream->recv();
      if (!frame.has_value() || frame->tag != FrameTag::kHello) {
        io::close_fd(fd);
        continue;
      }
      ByteReader r(frame->payload);
      const HelloRecord hello = decode_hello(r);
      if (hello.body_affinity == 0) {
        ByteWriter reason;
        reason.put_string(
            "coordinator runs closure rounds; only forked body-affine "
            "workers can serve them (see docs/BACKENDS.md)");
        (void)stream->send(FrameTag::kShutdown, ByteSpan(reason.bytes()));
        io::close_fd(fd);
        continue;
      }
      if (hello.slot >= workers || hello.round != work.round ||
          slots[hello.slot].stream != nullptr) {
        io::close_fd(fd);
        failure = "socket backend: unexpected hello (slot " +
                  std::to_string(hello.slot) + ", round " +
                  std::to_string(hello.round) + ")";
        continue;
      }
      Slot& s = slots[hello.slot];
      ByteWriter assign;
      encode_assign(assign, AssignRecord{work.round, work.seed, s.begin,
                                         s.end});
      if (!stream->send(FrameTag::kAssign, ByteSpan(assign.bytes()))) {
        io::close_fd(fd);
        failure = "socket backend: failed to send assignment for machines [" +
                  std::to_string(s.begin) + ", " + std::to_string(s.end) + ")";
        continue;
      }
      s.fd = fd;
      s.stream = std::move(stream);
      ++connected;
    } catch (const std::exception& e) {
      io::close_fd(fd);
      failure = std::string("socket backend: handshake failed: ") + e.what();
    }
  }

  // Collection: read each worker's results + barrier in slot order (the
  // decode writes by machine index, so arrival order cannot perturb
  // results), then reap.  On a failure, un-connected children blocked in
  // their handshake are killed so the reap below cannot deadlock.
  for (std::size_t w = 0; w < slots.size(); ++w) {
    Slot& s = slots[w];
    BarrierRecord barrier;
    bool got_barrier = false;
    if (s.stream != nullptr && failure.empty()) {
      try {
        while (auto frame = s.stream->recv()) {
          if (frame->tag == FrameTag::kResults) {
            ByteReader r(frame->payload);
            decode_partition_results(r, work, s.begin, s.end);
          } else if (frame->tag == FrameTag::kError) {
            ByteReader r(frame->payload);
            failure = "machine body failed in worker process: " +
                      r.get_string();
          } else if (frame->tag == FrameTag::kBarrier) {
            ByteReader r(frame->payload);
            barrier = decode_barrier(r);
            got_barrier = true;
            break;
          } else {
            failure = "socket backend: unexpected frame tag " +
                      std::to_string(static_cast<unsigned>(frame->tag)) +
                      " from worker " + std::to_string(w);
            break;
          }
        }
      } catch (const std::exception& e) {
        failure = std::string("socket backend: corrupt worker stream: ") +
                  e.what();
      }
      if (!got_barrier && failure.empty()) {
        failure = "socket backend: worker for machines [" +
                  std::to_string(s.begin) + ", " + std::to_string(s.end) +
                  ") died before the round barrier";
      }
      if (got_barrier) ++counters.barrier_waits;
    }
    io::close_fd(s.fd);
    s.stream.reset();
    if (s.pid > 0) {
      if (!failure.empty() && !got_barrier) (void)::kill(s.pid, SIGKILL);
      int wait_status = 0;
      while (::waitpid(s.pid, &wait_status, 0) < 0 && errno == EINTR) {
      }
    }
    if (got_barrier && failure.empty() &&
        barrier.status == kWorkerPublishFailed) {
      failure = "socket backend: worker could not publish its results";
    }
    if (traced && got_barrier) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kSpan;
      ev.name = "backend:worker:" + std::to_string(w);
      ev.category = "backend";
      ev.track = w + 1;  // per-worker tracks, merged into one trace
      ev.ts_us = round_start_us;
      ev.dur_us = static_cast<std::uint64_t>(barrier.body_seconds * 1e6);
      ev.args = {{"machines", static_cast<double>(s.end - s.begin)},
                 {"pid", static_cast<double>(s.pid)}};
      recorder_->emit(std::move(ev));
    }
  }

  if (!failure.empty()) throw std::runtime_error(failure);
}

int run_socket_worker(const std::vector<HostPort>& coordinators,
                      std::FILE* log) {
  int fd = -1;
  const HostPort* picked = nullptr;
  for (const HostPort& target : coordinators) {
    fd = SocketTransport::connect_to(target);
    if (fd >= 0) {
      picked = &target;
      break;
    }
    std::fprintf(log, "mpcsd worker: %s:%u unreachable\n", target.host.c_str(),
                 static_cast<unsigned>(target.port));
  }
  if (fd < 0) {
    std::fprintf(log, "mpcsd worker: no reachable coordinator\n");
    return 1;
  }
  std::fprintf(log, "mpcsd worker: connected to %s:%u\n", picked->host.c_str(),
               static_cast<unsigned>(picked->port));
  FrameStream stream(fd, nullptr, FrameStream::Medium::kSocket);
  ByteWriter hello;
  encode_hello(hello, HelloRecord{kWorkerSlotNone, /*body_affinity=*/0, 0});
  if (!stream.send(FrameTag::kHello, ByteSpan(hello.bytes()))) {
    std::fprintf(log, "mpcsd worker: handshake write failed\n");
    io::close_fd(fd);
    return 1;
  }
  try {
    while (auto frame = stream.recv()) {
      switch (frame->tag) {
        case FrameTag::kPing:
          if (!stream.send(FrameTag::kPong, ByteSpan(frame->payload))) {
            std::fprintf(log, "mpcsd worker: pong write failed\n");
            io::close_fd(fd);
            return 1;
          }
          break;
        case FrameTag::kShutdown: {
          std::string reason;
          if (!frame->payload.empty()) {
            ByteReader r(frame->payload);
            reason = r.get_string();
          }
          std::fprintf(log, "mpcsd worker: shutdown%s%s\n",
                       reason.empty() ? "" : ": ", reason.c_str());
          io::close_fd(fd);
          return 0;
        }
        case FrameTag::kAssign: {
          // No body affinity: closure rounds cannot be shipped here (the
          // registered-plan protocol is the ROADMAP's next step).
          ByteWriter msg;
          msg.put_string(
              "worker has no body affinity; cannot run closure rounds");
          (void)stream.send(FrameTag::kError, ByteSpan(msg.bytes()));
          break;
        }
        default:
          break;  // tolerate other valid control frames
      }
    }
    std::fprintf(log, "mpcsd worker: coordinator closed the connection\n");
    io::close_fd(fd);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(log, "mpcsd worker: protocol error: %s\n", e.what());
    io::close_fd(fd);
    return 1;
  }
}

}  // namespace mpcsd::mpc

#endif  // defined(__linux__)
