// The MPC cluster simulator.
//
// Semantics (matching the model in Section 1 of the paper):
//   * An algorithm is a sequence of rounds.  `run_round` executes one round:
//     machine i receives exactly its input bytes, computes locally (no view
//     of any other machine's state), and emits messages addressed to named
//     mailboxes that the driver routes into the next round's inputs.
//   * Per-machine memory is input + emitted output + declared scratch; a
//     configurable cap models the Õ(n^{1-x}) per-machine limit.  Violations
//     are either recorded (default, so benches can report them) or fatal
//     (`strict_memory`, used by tests to prove compliance).
//   * Machines of a round execute concurrently on a thread pool; each gets
//     a deterministic private RNG stream derived from (seed, round,
//     machine), so results are reproducible regardless of scheduling.
//   * Work is charged explicitly by the machine body (DP cells etc.), which
//     is what the "total running time" column of Table 1 counts.
//
// Mail routing is zero-copy: emitted payloads are moved (never re-copied)
// from the outbox arenas into a flat `Mail` ordered by destination via a
// stable counting/radix scatter, and `gather_view` hands the next round's
// machines a `ByteChain` over the payloads in place — the old
// map-of-vectors merge plus `gather`/`concat` copied every inter-machine
// byte twice per round.  The routing order is unchanged: ascending mailbox
// id, and within a mailbox ascending (machine id, emission index).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "mpc/audit.hpp"
#include "mpc/backend.hpp"
#include "mpc/stats.hpp"
#include "obs/recorder.hpp"

namespace mpcsd::mpc {

struct ClusterConfig {
  /// Per-machine memory cap in bytes; default unlimited.
  std::uint64_t memory_limit_bytes = UINT64_MAX;
  /// Throw MemoryLimitExceeded instead of recording a violation.
  bool strict_memory = false;
  /// Thread-pool size; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Root seed for all machine RNG streams.
  std::uint64_t seed = 0;
  /// parallel_for grain: consecutive machines one worker claims per atomic
  /// fetch.  0 = auto (scales with machines per worker, capped at 64) so
  /// rounds with thousands of tiny machine bodies don't pay one contended
  /// RMW per machine; rounds with few machines keep perfect balancing.
  std::size_t grain = 0;
  /// How machine bodies execute: the shared thread pool (seed semantics)
  /// or forked worker processes with shared-memory result arenas (physical
  /// isolation).  kAuto resolves through MPCSD_BACKEND and defaults to
  /// thread.  Results and metering are backend-invariant; see backend.hpp.
  BackendKind backend = BackendKind::kAuto;
  /// Model-conformance auditing (opt-in, metering-neutral); see audit.hpp.
  AuditOptions audit{};
  /// Observability spine (opt-in, metering-neutral): when non-null, every
  /// round emits a span plus comm/work/memory and pool counters through the
  /// recorder's sinks.  Null or sink-less recorders cost one inlined check
  /// on the round path (see obs/recorder.hpp).
  obs::Recorder* recorder = nullptr;
};

class MemoryLimitExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// `Envelope` — one routed message — lives in mpc/transport.hpp now: it is
// the transport layer's data unit (included here via mpc/backend.hpp).

/// The merged mail of one round: a flat vector of envelopes, stable-sorted
/// by destination (within a mailbox: machine id order, then emission order —
/// exactly the order the old map-of-vectors produced).
class Mail {
 public:
  Mail() = default;

  [[nodiscard]] bool empty() const noexcept { return msgs_.empty(); }
  [[nodiscard]] std::size_t message_count() const noexcept { return msgs_.size(); }

  /// All envelopes for `dest`, in deterministic order (empty span if none).
  [[nodiscard]] std::span<const Envelope> at(std::uint32_t dest) const noexcept;

  /// Every envelope, sorted by (dest, machine id, emission index).
  [[nodiscard]] const std::vector<Envelope>& all() const noexcept { return msgs_; }

 private:
  friend class Cluster;
  std::vector<Envelope> msgs_;
};

class Cluster;

/// The per-machine execution context handed to the round body.  A machine's
/// input is a `ByteChain` — one fragment per routed payload — read in place.
class MachineContext {
 public:
  [[nodiscard]] const ByteChain& input() const noexcept { return *input_; }
  [[nodiscard]] ChainReader reader() const { return ChainReader(*input_); }
  [[nodiscard]] std::size_t machine_id() const noexcept { return id_; }

  /// Sends `payload` to mailbox `dest` for the next round.
  void emit(std::uint32_t dest, Bytes payload);

  /// Charges `ops` units of local computation.
  void charge_work(std::uint64_t ops) noexcept { report_.work += ops; }

  /// Declares peak scratch memory beyond input/output.
  void charge_scratch(std::uint64_t bytes) noexcept {
    if (bytes > report_.scratch_bytes) report_.scratch_bytes = bytes;
  }

  /// Deterministic private random stream for this (round, machine).
  [[nodiscard]] Pcg32& rng() noexcept { return rng_; }

  /// Appends bytes to this machine's *stash* — an unmetered per-machine
  /// diagnostics side channel returned to the driver through
  /// `RoundOptions::machine_stash`.  Unlike `emit`, stashed bytes are not
  /// communication: they never route, never count against memory or comm
  /// metering, and exist so drivers can read back per-machine results
  /// (answers, counters) without the body writing captured host state —
  /// which the process backend makes physically impossible.  Stash content
  /// must be deterministic; the audit replay fingerprints it.
  void stash_append(Bytes bytes);

 private:
  friend class Cluster;
  friend class ThreadBackend;
  /// The worker side of the isolating backends (process, socket) builds
  /// contexts through the shared partition runner in transport.cpp.
  friend BarrierRecord run_round_partition(const RoundWork& work,
                                           std::size_t begin, std::size_t end,
                                           ByteWriter& out);
  MachineContext(std::size_t id, const ByteChain* input, Pcg32 rng,
                 std::vector<Envelope>* outbox, Bytes* stash)
      : id_(id), input_(input), rng_(rng), outbox_(outbox), stash_(stash) {}

  std::size_t id_;
  const ByteChain* input_;
  Pcg32 rng_;
  MachineReport report_;
  /// Borrowed slot in the cluster's per-machine outbox arena; its capacity
  /// survives across rounds so steady-state rounds emit without allocating.
  std::vector<Envelope>* outbox_;
  /// Borrowed slot in the per-machine stash arena (see `stash_append`).
  Bytes* stash_;
};

/// Per-round execution overrides, used by the batch driver: queries of
/// different sizes co-scheduled in one round carry different Õ(n^{1-x})
/// caps, and per-query trace attribution needs the machine-level reports.
struct RoundOptions {
  /// Per-machine memory caps (bytes), parallel to the round's inputs.
  /// Overrides the cluster-wide `memory_limit_bytes` when non-null.
  const std::vector<std::uint64_t>* machine_memory_limits = nullptr;
  /// When non-null, receives every machine's report after the round (in
  /// machine-id order), for per-query aggregation.
  std::vector<MachineReport>* machine_reports = nullptr;
  /// When non-null, receives every machine's stash bytes after the round
  /// (in machine-id order); see `MachineContext::stash_append`.
  std::vector<Bytes>* machine_stash = nullptr;
  /// Host-side glue seconds spent preparing this round (sharding, routing,
  /// request packing); stamped into the RoundReport at creation.  The plan
  /// Driver fills this from its glue clock — forward, at submission, not by
  /// back-annotating the trace after the fact.
  double driver_seconds = 0.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Executes one round with `inputs.size()` machines.  Returns the merged
  /// mail for the next round.  Round metrics are appended to the trace.
  Mail run_round(const std::string& label, const std::vector<Bytes>& inputs,
                 const std::function<void(MachineContext&)>& body,
                 const RoundOptions& options = {});

  /// Zero-copy variant: each machine's input is a chain of byte fragments
  /// (typically `gather_view` of the previous round's mail) read in place.
  /// The storage the chains reference must stay alive for the call.
  /// Metering is byte-identical to feeding the concatenated buffers.
  Mail run_round_views(const std::string& label, const std::vector<ByteChain>& inputs,
                       const std::function<void(MachineContext&)>& body,
                       const RoundOptions& options = {});

  [[nodiscard]] const ExecutionTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] ExecutionTrace take_trace() { return std::move(trace_); }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  /// The attached observability recorder (null when detached).
  [[nodiscard]] obs::Recorder* recorder() const noexcept {
    return config_.recorder;
  }

  /// The worker pool executing machine bodies.  Drivers reuse it for the
  /// host-side plane between rounds (shard encode, input construction) so
  /// driver glue scales with the same worker budget as the rounds.
  [[nodiscard]] ThreadPool& pool() noexcept { return *pool_; }

  /// The execution backend running machine bodies ("thread" | "process").
  [[nodiscard]] const ExecutionBackend& backend() const noexcept {
    return *backend_;
  }

  /// Bytes currently pinned by the round-scoped arenas (outbox slots, sort
  /// scratch, radix histograms, input chains, stash slots).  Observable so
  /// tests can pin the high-water-mark decay; not part of machine metering.
  [[nodiscard]] std::size_t arena_footprint_bytes() const noexcept;

  /// Conformance findings of the audited rounds (empty unless
  /// `config.audit.enabled`; always empty with `audit.fail_fast`, which
  /// throws AuditError at the first violation instead).
  [[nodiscard]] const AuditReport& audit_report() const noexcept {
    return audit_report_;
  }

 private:
  /// Routes the first `machines` outboxes into `out`, ordered by (dest,
  /// machine id, emission index).  Large mails take a counting/LSD-radix
  /// bucket-by-destination path — parallel per-chunk histograms, a serial
  /// prefix walk, then contiguous parallel scatters — byte-identical to a
  /// global stable sort by dest (pinned by test), without its serial wall
  /// time or comparator overhead.  Chunks are balanced by envelope count
  /// plus payload bytes so emission skew doesn't serialize one chunk.
  void route_mail(std::size_t machines, std::vector<Envelope>& out);

  /// High-water-mark decay for the round-scoped arenas: after enough
  /// consecutive rounds using a small fraction of the retained capacity,
  /// releases it so one skewed round (a 1MB-payload burst) doesn't pin
  /// peak memory for the life of a long-running batch process.
  void maybe_decay_arenas(std::size_t machines, std::size_t envelopes);

  // --- audited execution path (implemented in audit.cpp) ---------------

  /// Canary-padded private copies of one round's machine inputs.
  struct AuditGuards {
    std::vector<Bytes> buffers;                ///< [canary][data][canary]
    std::vector<ByteChain> chains;             ///< views over the data regions
    std::vector<std::uint64_t> interior_hash;  ///< data-region fingerprints
  };

  [[nodiscard]] AuditGuards audit_guard_inputs(const std::vector<ByteChain>& inputs);
  void audit_check_guards(const std::string& label, std::size_t round,
                          const AuditGuards& guards);
  void audit_replay(const std::string& label, std::size_t round,
                    const std::vector<ByteChain>& exec_inputs,
                    const std::function<void(MachineContext&)>& body);
  void audit_inject(std::size_t round);
  void audit_verify_comm(const std::string& label, std::size_t round,
                         const Mail& mail, std::uint64_t reported_bytes);
  void audit_poison(AuditGuards guards);
  void audit_record(AuditViolation violation);

  ClusterConfig config_;
  std::shared_ptr<ThreadPool> pool_;
  std::unique_ptr<ExecutionBackend> backend_;
  ExecutionTrace trace_;
  std::size_t round_index_ = 0;

  // Round-scoped arenas, reused across rounds (escalation loops run many
  // structurally similar rounds; reallocating these every round showed up
  // in the batch-serving driver plane).  `maybe_decay_arenas` releases them
  // after sustained low usage.
  std::vector<std::vector<Envelope>> outboxes_;
  std::vector<MachineReport> reports_;
  std::vector<Bytes> stashes_;
  std::vector<Envelope> route_scratch_;
  std::vector<std::uint32_t> radix_counts_;
  std::vector<ByteChain> input_chains_;
  std::size_t arena_low_rounds_ = 0;

  // Audit state: findings, the differently-sized replay pool (lazy), and
  // the previous round's guard buffers — poisoned and kept alive one extra
  // round so stale inbox views read 0xA5 garbage instead of dangling.
  AuditReport audit_report_;
  std::unique_ptr<ThreadPool> replay_pool_;
  std::vector<Bytes> audit_poisoned_;
};

/// Zero-copy gather: a chain over the mailbox payloads in place.  The
/// returned chain borrows from `mail`, which must outlive it.  (The old
/// copying `gather` is retired from the library surface; every library
/// call site reads mailboxes through views.)
ByteChain gather_view(const Mail& mail, std::uint32_t dest);

}  // namespace mpcsd::mpc
