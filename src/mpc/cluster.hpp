// The MPC cluster simulator.
//
// Semantics (matching the model in Section 1 of the paper):
//   * An algorithm is a sequence of rounds.  `run_round` executes one round:
//     machine i receives exactly its input bytes, computes locally (no view
//     of any other machine's state), and emits messages addressed to named
//     mailboxes that the driver routes into the next round's inputs.
//   * Per-machine memory is input + emitted output + declared scratch; a
//     configurable cap models the Õ(n^{1-x}) per-machine limit.  Violations
//     are either recorded (default, so benches can report them) or fatal
//     (`strict_memory`, used by tests to prove compliance).
//   * Machines of a round execute concurrently on a thread pool; each gets
//     a deterministic private RNG stream derived from (seed, round,
//     machine), so results are reproducible regardless of scheduling.
//   * Work is charged explicitly by the machine body (DP cells etc.), which
//     is what the "total running time" column of Table 1 counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "mpc/stats.hpp"

namespace mpcsd::mpc {

struct ClusterConfig {
  /// Per-machine memory cap in bytes; default unlimited.
  std::uint64_t memory_limit_bytes = UINT64_MAX;
  /// Throw MemoryLimitExceeded instead of recording a violation.
  bool strict_memory = false;
  /// Thread-pool size; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Root seed for all machine RNG streams.
  std::uint64_t seed = 0;
};

class MemoryLimitExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Mailbox id -> payloads, in deterministic (machine id, emission) order.
using Mail = std::map<std::uint32_t, std::vector<Bytes>>;

class Cluster;

/// The per-machine execution context handed to the round body.
class MachineContext {
 public:
  [[nodiscard]] const Bytes& input() const noexcept { return *input_; }
  [[nodiscard]] ByteReader reader() const { return ByteReader(*input_); }
  [[nodiscard]] std::size_t machine_id() const noexcept { return id_; }

  /// Sends `payload` to mailbox `dest` for the next round.
  void emit(std::uint32_t dest, Bytes payload);

  /// Charges `ops` units of local computation.
  void charge_work(std::uint64_t ops) noexcept { report_.work += ops; }

  /// Declares peak scratch memory beyond input/output.
  void charge_scratch(std::uint64_t bytes) noexcept {
    if (bytes > report_.scratch_bytes) report_.scratch_bytes = bytes;
  }

  /// Deterministic private random stream for this (round, machine).
  [[nodiscard]] Pcg32& rng() noexcept { return rng_; }

 private:
  friend class Cluster;
  MachineContext(std::size_t id, const Bytes* input, Pcg32 rng)
      : id_(id), input_(input), rng_(rng) {}

  std::size_t id_;
  const Bytes* input_;
  Pcg32 rng_;
  MachineReport report_;
  std::vector<std::pair<std::uint32_t, Bytes>> outbox_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Executes one round with `inputs.size()` machines.  Returns the merged
  /// mail for the next round.  Round metrics are appended to the trace.
  Mail run_round(const std::string& label, const std::vector<Bytes>& inputs,
                 const std::function<void(MachineContext&)>& body);

  [[nodiscard]] const ExecutionTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] ExecutionTrace take_trace() { return std::move(trace_); }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<ThreadPool> pool_;
  ExecutionTrace trace_;
  std::size_t round_index_ = 0;
};

/// Concatenates all payloads of one mailbox (common "single machine reads
/// everything" pattern for combine rounds).
Bytes gather(const Mail& mail, std::uint32_t dest);

}  // namespace mpcsd::mpc
