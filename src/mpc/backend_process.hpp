// The multi-process execution backend: machine bodies run in forked worker
// processes, so a machine body's writes are physically confined to its own
// address space — the MPC model's no-shared-state guarantee enforced by the
// kernel instead of approximated by the auditor's canary copies.
//
// Per round:
//   * the host forks one worker per pool slot (capped at the machine
//     count); worker w owns the contiguous machine partition
//     [w*M/W, (w+1)*M/W) and runs its bodies serially (forked children
//     do not inherit pool threads);
//   * each worker serializes its machines' outboxes/reports/stashes as the
//     shared machine-result records (mpc/transport.hpp) into a long-lived
//     per-worker shared-memory arena (memfd, one per slot, created on
//     first use and remapped to the round's size), then sends a framed
//     `BarrierRecord` — status, arena byte count, body wall seconds —
//     over a pipe;
//   * the host maps each arena read-only, decodes the records back into
//     the cluster's arenas in machine order (decode_partition_results),
//     reaps the worker, and (with a recorder attached) emits one span per
//     worker process on its own track id, merged into the one trace.
//
// A body exception inside a worker serializes its message into the arena
// (status byte distinguishes it) and is rethrown host-side; a crashed
// worker is detected as pipe EOF + nonzero wait status.  Determinism:
// machine i's RNG stream, inputs, and outputs are identical to the thread
// backend's — partitioning only changes *where* a body runs, never what it
// computes — pinned by the backend axis of test_determinism.cpp.
//
// Linux-only (memfd + fork); `make_backend` refuses the kind elsewhere.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "mpc/backend.hpp"

namespace mpcsd::mpc {

class ProcessBackend final : public ExecutionBackend {
 public:
  ProcessBackend(std::shared_ptr<ThreadPool> pool, obs::Recorder* recorder);
  ~ProcessBackend() override;

  ProcessBackend(const ProcessBackend&) = delete;
  ProcessBackend& operator=(const ProcessBackend&) = delete;

  void execute(const RoundWork& work) override;

  /// Forked bodies write copy-on-write pages; nothing they do can reach
  /// the host's or a sibling machine's memory.
  [[nodiscard]] bool isolates_machine_memory() const noexcept override {
    return true;
  }

  [[nodiscard]] const char* name() const noexcept override { return "process"; }

  /// Shared-memory wire: a frame is one published result arena; the
  /// barrier frames travel over the per-worker pipes.
  [[nodiscard]] const Transport& transport() const noexcept override {
    return transport_;
  }

 private:
  /// Child-side: runs machines [begin, end) serially (run_round_partition),
  /// publishes the result records into the arena fd, sends the framed
  /// round barrier over the pipe.  Never returns control to the cluster —
  /// the caller `_exit`s.
  static void run_worker(const RoundWork& work, std::size_t begin,
                         std::size_t end, int arena_fd, int pipe_fd);

  std::shared_ptr<ThreadPool> pool_;
  obs::Recorder* recorder_;
  CountingTransport transport_{"shm"};
  /// One memfd per worker slot, created lazily and kept across rounds so
  /// steady-state rounds reuse the same shared-memory object.
  std::vector<int> arena_fds_;
};

}  // namespace mpcsd::mpc
