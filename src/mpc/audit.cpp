// Implementation of the model-conformance auditor.  The audited execution
// hooks (`Cluster::audit_*`) live here rather than in cluster.cpp so the
// simulator's fast path stays readable; they are members of Cluster because
// they verify its round-scoped arenas (outboxes, reports) in place.
#include "mpc/audit.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "common/hash.hpp"
#include "mpc/cluster.hpp"

namespace mpcsd::mpc {

namespace {

/// Canary pad size on each side of a guarded input buffer.
constexpr std::size_t kGuardPad = 32;
/// Canary fill; also the poison value stale views read after the round.
constexpr std::byte kGuardByte{0xA5};

/// Fingerprint of one machine's observable effect: every emitted envelope
/// (destination + payload bytes, in emission order), the stash bytes, and
/// the metering report minus input bytes (which are fixed by construction).
std::uint64_t fingerprint(const std::vector<Envelope>& outbox,
                          const Bytes& stash, const MachineReport& report) {
  std::uint64_t h = kFnvOffset;
  for (const Envelope& env : outbox) {
    h = hash_mix(h, env.dest);
    h = hash_mix(h, env.payload.size());
    h = hash_bytes(env.payload.data(), env.payload.size(), h);
  }
  h = hash_mix(h, stash.size());
  h = hash_bytes(stash.data(), stash.size(), h);
  h = hash_mix(h, report.output_bytes);
  h = hash_mix(h, report.scratch_bytes);
  h = hash_mix(h, report.work);
  return h;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

const char* to_string(AuditViolationKind kind) noexcept {
  switch (kind) {
    case AuditViolationKind::kInputMutation:
      return "input-mutation";
    case AuditViolationKind::kGuardBreach:
      return "guard-breach";
    case AuditViolationKind::kCommAccounting:
      return "comm-accounting";
    case AuditViolationKind::kScheduleDependence:
      return "schedule-dependence";
  }
  return "unknown";
}

std::string AuditViolation::describe() const {
  std::ostringstream os;
  os << "audit violation [" << to_string(kind) << "] round " << round << " '"
     << round_label << "'";
  if (machine != kNoMachine) os << " machine " << machine;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

AuditError::AuditError(AuditViolation violation)
    : std::runtime_error(violation.describe()), violation_(std::move(violation)) {}

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << "audit: " << rounds_audited << " rounds audited, " << replays_run
     << " replays, " << violations.size() << " violations\n";
  for (const AuditViolation& v : violations) os << "  " << v.describe() << '\n';
  return os.str();
}

void Cluster::audit_record(AuditViolation violation) {
  if (config_.audit.fail_fast) throw AuditError(std::move(violation));
  audit_report_.violations.push_back(std::move(violation));
}

Cluster::AuditGuards Cluster::audit_guard_inputs(
    const std::vector<ByteChain>& inputs) {
  AuditGuards guards;
  const std::size_t machines = inputs.size();
  guards.buffers.resize(machines);
  guards.chains.resize(machines);
  guards.interior_hash.resize(machines);
  pool_->parallel_for(
      machines,
      [&](std::size_t i) {
        const ByteChain& in = inputs[i];
        Bytes& buf = guards.buffers[i];
        buf.assign(in.total_bytes() + 2 * kGuardPad, kGuardByte);
        std::size_t off = kGuardPad;
        for (const ByteSpan part : in.parts()) {
          std::memcpy(buf.data() + off, part.data(), part.size());
          off += part.size();
        }
        guards.chains[i].add(
            ByteSpan(buf.data() + kGuardPad, in.total_bytes()));
        guards.interior_hash[i] =
            hash_bytes(buf.data() + kGuardPad, in.total_bytes());
      },
      /*grain=*/8);
  return guards;
}

void Cluster::audit_check_guards(const std::string& label, std::size_t round,
                                 const AuditGuards& guards) {
  for (std::size_t i = 0; i < guards.buffers.size(); ++i) {
    const Bytes& buf = guards.buffers[i];
    const std::size_t interior = buf.size() - 2 * kGuardPad;
    const auto canary_intact = [&](std::size_t begin) {
      for (std::size_t k = 0; k < kGuardPad; ++k) {
        if (buf[begin + k] != kGuardByte) return false;
      }
      return true;
    };
    if (!canary_intact(0) || !canary_intact(kGuardPad + interior)) {
      audit_record(AuditViolation{
          AuditViolationKind::kGuardBreach, label, round, i,
          "machine body wrote outside its input fragments (canary overwritten)"});
      continue;  // the interior hash is meaningless once the pads are gone
    }
    if (hash_bytes(buf.data() + kGuardPad, interior) != guards.interior_hash[i]) {
      audit_record(AuditViolation{
          AuditViolationKind::kInputMutation, label, round, i,
          "machine body mutated its inbox view (input fingerprint changed)"});
    }
  }
}

void Cluster::audit_replay(const std::string& label, std::size_t round,
                           const std::vector<ByteChain>& exec_inputs,
                           const std::function<void(MachineContext&)>& body) {
  const std::size_t machines = exec_inputs.size();
  ++audit_report_.replays_run;

  std::vector<std::uint64_t> main_print(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    main_print[i] = fingerprint(outboxes_[i], stashes_[i], reports_[i]);
  }

  // Permuted execution order, deterministic per (seed, round).
  std::vector<std::size_t> perm(machines);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Pcg32 rng = derive_stream(config_.audit.replay_permutation_seed ^ config_.seed,
                            round);
  for (std::size_t i = machines; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(static_cast<std::uint32_t>(i))]);
  }

  std::size_t replay_workers = config_.audit.replay_workers;
  if (replay_workers == 0) replay_workers = pool_->worker_count() > 1 ? 1 : 2;

  std::vector<std::vector<Envelope>> replay_out(machines);
  std::vector<Bytes> replay_stash(machines);
  std::vector<MachineReport> replay_reports(machines);
  std::vector<std::string> replay_errors(machines);
  const auto run_one = [&](std::size_t slot) {
    const std::size_t i = perm[slot];
    MachineContext ctx(i, &exec_inputs[i], derive_stream(config_.seed, round, i),
                       &replay_out[i], &replay_stash[i]);
    ctx.report_.input_bytes = exec_inputs[i].total_bytes();
    try {
      body(ctx);
    } catch (const std::exception& e) {
      replay_errors[i] = e.what();
    }
    replay_reports[i] = ctx.report_;
  };
  if (replay_workers <= 1) {
    for (std::size_t slot = 0; slot < machines; ++slot) run_one(slot);
  } else {
    if (!replay_pool_ || replay_pool_->worker_count() != replay_workers) {
      replay_pool_ = std::make_unique<ThreadPool>(replay_workers);
    }
    replay_pool_->parallel_for(machines, run_one, /*grain=*/1);
  }

  for (std::size_t i = 0; i < machines; ++i) {
    if (!replay_errors[i].empty()) {
      audit_record(AuditViolation{
          AuditViolationKind::kScheduleDependence, label, round, i,
          "machine body threw only under replay: " + replay_errors[i]});
      continue;
    }
    const std::uint64_t replayed =
        fingerprint(replay_out[i], replay_stash[i], replay_reports[i]);
    if (replayed != main_print[i]) {
      audit_record(AuditViolation{
          AuditViolationKind::kScheduleDependence, label, round, i,
          "outbox/report fingerprint diverged under permuted-order replay (" +
              hex(main_print[i]) + " with " +
              std::to_string(pool_->worker_count()) + " workers vs " +
              hex(replayed) + " with " + std::to_string(replay_workers) + ")"});
    }
  }
}

void Cluster::audit_inject(std::size_t round) {
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    config_.audit.inject_after_round(round, i, outboxes_[i]);
  }
}

void Cluster::audit_verify_comm(const std::string& label, std::size_t round,
                                const Mail& mail, std::uint64_t reported_bytes) {
  std::uint64_t actual = 0;
  for (const Envelope& env : mail.all()) actual += env.payload.size();
  if (actual != reported_bytes) {
    audit_record(AuditViolation{
        AuditViolationKind::kCommAccounting, label, round,
        AuditViolation::kNoMachine,
        "routed mail carries " + std::to_string(actual) +
            " bytes but machines accounted " + std::to_string(reported_bytes)});
  }
}

void Cluster::audit_poison(AuditGuards guards) {
  // The previous round's poison retires here — after this round's body and
  // replay have run — so a view retained across one round boundary reads
  // 0xA5 deterministically instead of dangling into recycled storage.
  audit_poisoned_.clear();
  audit_poisoned_.reserve(guards.buffers.size());
  for (Bytes& buf : guards.buffers) {
    std::fill(buf.begin(), buf.end(), kGuardByte);
    audit_poisoned_.push_back(std::move(buf));
  }
}

}  // namespace mpcsd::mpc
