// The TCP socket transport and its execution backend.
//
// `SocketTransport` is the coordinator side: one listening TCP socket
// (localhost by default, `MPCSD_SOCKET_LISTEN=host:port` to override,
// port 0 = ephemeral) accepting workers that speak the framed protocol of
// mpc/transport.hpp.  Every socket/bind/listen/accept/connect syscall in
// the codebase lives in transport_socket.cpp — one reviewable boundary,
// enforced by lint Rule 8 and mpcsd_verify.
//
// `SocketBackend` runs a round as: fork one worker per pool slot (machine
// bodies are C++ closures, so workers must share the host's address-space
// snapshot — the same copy-on-write affinity the process backend uses);
// each worker connects back to the coordinator and the two sides speak
// frames end to end:
//
//   worker -> kHello   {slot, body_affinity=1, round}
//   host   -> kAssign  {round, seed, begin, end}   (echo-validated)
//   worker -> kResults machine-result records for [begin, end)
//             (or kError with the body's exception message)
//   worker -> kBarrier {status, result bytes, body wall seconds}
//
// Results and metering are byte-identical to the thread and process
// backends (same records, same decode path); only the wire differs.
//
// `mpcsd_cli --worker host:port[,host:port...]` runs `run_socket_worker`:
// a standalone protocol worker that connects to a coordinator, announces
// body_affinity=0, and serves control frames (ping/pong, shutdown).  A
// coordinator turns such workers away from closure rounds — shipping
// registered plans to remote workers is the ROADMAP's next step; the
// handshake, framing, and host:port plumbing here are its scaffolding.
// See docs/BACKENDS.md.
//
// Linux-only (fork + TCP loopback); `make_backend` refuses the kind
// elsewhere.  `parse_host_port_list` is portable and always available.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "mpc/backend.hpp"
#include "mpc/transport.hpp"
#include "obs/recorder.hpp"

namespace mpcsd::mpc {

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" or a comma-separated list of them ("127.0.0.1:7000,
/// 10.0.0.2:7000").  Throws std::invalid_argument on an empty list, a
/// missing colon, or a port outside [0, 65535].
[[nodiscard]] std::vector<HostPort> parse_host_port_list(
    std::string_view text);

#if defined(__linux__)

/// Coordinator side of the TCP transport: owns the listening socket and
/// the frame/byte counters for everything that crosses it.
class SocketTransport final : public Transport {
 public:
  /// Remembers the listen address; no syscalls until `ensure_listening`.
  explicit SocketTransport(HostPort listen);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] const char* name() const noexcept override { return "tcp"; }

  /// Binds and listens on first call (resolving an ephemeral port); no-op
  /// after.  Throws std::runtime_error on bind/listen failure.
  void ensure_listening();

  /// The bound address; port is the resolved one once listening.
  [[nodiscard]] const HostPort& address() const noexcept { return bound_; }

  /// Waits up to `timeout_ms` for one inbound connection; returns the
  /// accepted fd or -1 on timeout.  Throws on poll/accept errors.
  [[nodiscard]] int accept_connection(int timeout_ms);

  /// Client side: blocking TCP connect to `target` ("localhost" maps to
  /// 127.0.0.1).  Returns the connected fd, or -1 on failure.
  [[nodiscard]] static int connect_to(const HostPort& target);

 private:
  HostPort bound_;
  int listen_fd_ = -1;
};

/// Execution backend running machine bodies in forked workers that stream
/// their results back over the coordinator's TCP socket.
class SocketBackend final : public ExecutionBackend {
 public:
  SocketBackend(std::shared_ptr<ThreadPool> pool, obs::Recorder* recorder);

  SocketBackend(const SocketBackend&) = delete;
  SocketBackend& operator=(const SocketBackend&) = delete;

  void execute(const RoundWork& work) override;

  /// Forked bodies write copy-on-write pages, exactly like the process
  /// backend; the TCP hop changes the wire, not the isolation.
  [[nodiscard]] bool isolates_machine_memory() const noexcept override {
    return true;
  }

  [[nodiscard]] const char* name() const noexcept override { return "socket"; }

  [[nodiscard]] const Transport& transport() const noexcept override {
    return *transport_;
  }

 private:
  /// Child-side: connect back, handshake, run machines [begin, end)
  /// (run_round_partition), stream results + barrier.  Caller `_exit`s.
  static void run_worker(const RoundWork& work, std::uint32_t slot,
                         std::size_t begin, std::size_t end,
                         const HostPort& coordinator);

  std::shared_ptr<ThreadPool> pool_;
  obs::Recorder* recorder_;
  std::unique_ptr<SocketTransport> transport_;
};

/// Standalone protocol worker (`mpcsd_cli --worker`): connects to the
/// first reachable coordinator in `coordinators`, announces itself with
/// body_affinity=0, then serves control frames until kShutdown or the
/// coordinator disconnects.  Progress goes to `log` (e.g. stderr).
/// Returns a process exit code (0 on an orderly shutdown/disconnect).
int run_socket_worker(const std::vector<HostPort>& coordinators,
                      std::FILE* log);

#endif  // defined(__linux__)

}  // namespace mpcsd::mpc
