// Standard one-round MPC primitives.
//
// The paper (like most MPC literature) assumes sorting/joining as a
// constant-round black box: e.g., the Ulam algorithm's round-1 machines
// receive "the location of each character of s[l_i, r_i) in s̄", which is a
// distributed hash join of s-characters against s̄-characters.  The solvers
// perform that routing driver-side for speed; this module implements the
// primitives as *actual* MPC rounds — with the same simulator, memory caps
// and metering — so the claim "this is a constant-round MPC step" is itself
// testable and measurable.
//
//   * `mpc_sort`      — TeraSort-style: one sampling round to pick
//                       splitters, one partition round, one local-sort
//                       round (3 rounds, Õ(n^{1-x}) per machine whp).
//   * `mpc_hash_join` — symbol join of two key/value collections by hash
//                       partitioning (2 rounds).
//   * `position_map_round` — the exact primitive the Ulam solver needs:
//                       annotate every (block, offset, symbol) of s with
//                       the symbol's position in s̄ (built on the join).
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/cluster.hpp"
#include "seq/types.hpp"

namespace mpcsd::mpc {

/// A keyed 64-bit record (key = symbol or rank, value = payload).
struct KeyValue {
  std::int64_t key = 0;
  std::int64_t value = 0;

  friend bool operator==(const KeyValue&, const KeyValue&) = default;
};

struct SortResult {
  std::vector<KeyValue> records;  ///< globally sorted by (key, value)
  std::size_t machines = 0;       ///< machines used per round
};

/// Distributed sort of `records` using `machines` machines (TeraSort:
/// sample splitters, partition, sort locally).  Appends 3 rounds to the
/// cluster's trace.  Deterministic given the cluster seed.
SortResult mpc_sort(Cluster& cluster, std::vector<KeyValue> records,
                    std::size_t machines);

/// Distributed hash join: for every left record (k, v) that has at least
/// one right record (k, w), emits (k, v, w) for one such w (right keys are
/// unique in our use).  2 rounds.  Left/right are distributed over
/// `machines` hash-partitions.
struct JoinedRecord {
  std::int64_t key = 0;
  std::int64_t left_value = 0;
  std::int64_t right_value = 0;

  friend bool operator==(const JoinedRecord&, const JoinedRecord&) = default;
};

std::vector<JoinedRecord> mpc_hash_join(Cluster& cluster,
                                        const std::vector<KeyValue>& left,
                                        const std::vector<KeyValue>& right,
                                        std::size_t machines);

/// The Ulam round-0 primitive: positions[i] = index of s[i] in t, or -1.
/// Implemented as an MPC hash join of (symbol -> position-in-s) against
/// (symbol -> position-in-t).  2 rounds on the given cluster.
std::vector<std::int64_t> position_map_round(Cluster& cluster, SymView s,
                                             SymView t, std::size_t machines);

}  // namespace mpcsd::mpc
