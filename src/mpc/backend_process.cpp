#if defined(__linux__) && !defined(_GNU_SOURCE)
#define _GNU_SOURCE  // memfd_create, pipe2
#endif

#include "mpc/backend_process.hpp"

#if defined(__linux__)

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/io.hpp"
#include "mpc/cluster.hpp"
#include "mpc/transport.hpp"
#include "obs/trace.hpp"

namespace mpcsd::mpc {

namespace {

std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

ProcessBackend::ProcessBackend(std::shared_ptr<ThreadPool> pool,
                               obs::Recorder* recorder)
    : pool_(std::move(pool)), recorder_(recorder) {}

ProcessBackend::~ProcessBackend() {
  for (int& fd : arena_fds_) io::close_fd(fd);
}

void ProcessBackend::run_worker(const RoundWork& work, std::size_t begin,
                                std::size_t end, int arena_fd, int pipe_fd) {
  // The forked child: pool threads did not survive the fork, so the
  // partition runs serially (run_round_partition, shared with the socket
  // backend's workers).  Everything the bodies read (inputs, captured
  // driver state) is a copy-on-write snapshot of the host at fork time;
  // everything they produce leaves only through the arena below.
  ByteWriter out;
  BarrierRecord barrier = run_round_partition(work, begin, end, out);

  // Publish the results through the shared-memory arena: size it to this
  // round, map, copy, unmap.  The fd (and so the shm object) outlives the
  // worker — the host maps the same object to read the bytes back.
  const Bytes& payload = out.bytes();
  if (::ftruncate(arena_fd, static_cast<off_t>(payload.size())) != 0) {
    barrier.status = kWorkerPublishFailed;
  } else if (!payload.empty()) {
    void* map = ::mmap(nullptr, payload.size(), PROT_READ | PROT_WRITE,
                       MAP_SHARED, arena_fd, 0);
    if (map == MAP_FAILED) {
      barrier.status = kWorkerPublishFailed;
    } else {
      std::memcpy(map, payload.data(), payload.size());
      ::munmap(map, payload.size());
    }
  }
  if (barrier.status == kWorkerPublishFailed) barrier.result_bytes = 0;

  ByteWriter record;
  encode_barrier(record, barrier);
  FrameStream stream(pipe_fd);
  (void)stream.send(FrameTag::kBarrier, ByteSpan(record.bytes()));
}

void ProcessBackend::execute(const RoundWork& work) {
  const std::size_t machines = work.machines;
  if (machines == 0) return;
  const std::size_t workers =
      std::clamp<std::size_t>(pool_->worker_count(), 1, machines);

  if (arena_fds_.size() < workers) arena_fds_.resize(workers, -1);
  for (std::size_t w = 0; w < workers; ++w) {
    if (arena_fds_[w] < 0) {
      arena_fds_[w] = ::memfd_create("mpcsd-round-arena", MFD_CLOEXEC);
      if (arena_fds_[w] < 0) {
        throw std::runtime_error(
            errno_detail("process backend: memfd_create"));
      }
    }
  }

  struct Worker {
    pid_t pid = -1;
    int pipe_fd = -1;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Worker> live;
  live.reserve(workers);
  const bool traced = recorder_ != nullptr && recorder_->enabled();
  const std::uint64_t round_start_us = traced ? recorder_->now_us() : 0;

  std::string failure;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * machines / workers;
    const std::size_t end = (w + 1) * machines / workers;
    int fds[2] = {-1, -1};
    if (::pipe2(fds, O_CLOEXEC) != 0) {
      failure = errno_detail("process backend: pipe2");
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      failure = errno_detail("process backend: fork");
      io::close_fd(fds[0]);
      io::close_fd(fds[1]);
      break;
    }
    if (pid == 0) {
      // Child: run the partition, publish, and _exit — never unwind into
      // the host's destructors (the inherited pool object has no threads).
      io::close_fd(fds[0]);
      run_worker(work, begin, end, arena_fds_[w], fds[1]);
      ::_exit(0);
    }
    // Host: drop the write end now, so a worker that dies before the
    // barrier turns into pipe EOF instead of a hang.
    io::close_fd(fds[1]);
    live.push_back(Worker{pid, fds[0], begin, end});
  }

  // Round barrier: collect every forked worker (even after a failure, so
  // no zombies or dangling pipes survive the throw below).
  TransportCounters& counters = transport_.counters();
  for (std::size_t w = 0; w < live.size(); ++w) {
    Worker& worker = live[w];
    FrameStream stream(worker.pipe_fd, &counters);
    BarrierRecord barrier;
    bool got_barrier = false;
    std::string frame_error;
    try {
      const auto frame = stream.recv();
      if (frame.has_value() && frame->tag == FrameTag::kBarrier) {
        ByteReader r(frame->payload);
        barrier = decode_barrier(r);
        got_barrier = true;
      }
    } catch (const std::exception& e) {
      frame_error = e.what();
    }
    io::close_fd(worker.pipe_fd);
    int wait_status = 0;
    while (::waitpid(worker.pid, &wait_status, 0) < 0 && errno == EINTR) {
    }
    if (!failure.empty()) continue;  // already failing; just reap
    if (!frame_error.empty()) {
      failure = "process backend: corrupt round barrier: " + frame_error;
      continue;
    }
    if (!got_barrier) {
      failure = "process backend: worker for machines [" +
                std::to_string(worker.begin) + ", " +
                std::to_string(worker.end) + ") died before the round barrier" +
                (WIFSIGNALED(wait_status)
                     ? " (signal " + std::to_string(WTERMSIG(wait_status)) + ")"
                     : "");
      continue;
    }
    ++counters.barrier_waits;
    if (barrier.status == kWorkerPublishFailed) {
      failure = "process backend: worker could not publish its result arena";
      continue;
    }

    // Map the worker's arena and parse the shared machine-result records
    // back into the cluster's round arenas, in machine order.
    const std::uint64_t arena_bytes = barrier.result_bytes;
    void* map = nullptr;
    if (arena_bytes > 0) {
      map = ::mmap(nullptr, arena_bytes, PROT_READ, MAP_SHARED, arena_fds_[w],
                   0);
      if (map == MAP_FAILED) {
        failure = errno_detail("process backend: mmap result arena");
        continue;
      }
    }
    try {
      ByteReader r(static_cast<const std::byte*>(map), arena_bytes);
      if (barrier.status == kWorkerBodyThrew) {
        failure = "machine body failed in worker process: " + r.get_string();
      } else {
        decode_partition_results(r, work, worker.begin, worker.end);
        ++counters.frames_received;  // one published arena of records
        counters.bytes_received += arena_bytes;
        ++counters.flushes;
      }
    } catch (const std::exception& e) {
      failure = std::string("process backend: corrupt result arena: ") +
                e.what();
    }
    if (map != nullptr) ::munmap(map, arena_bytes);
    if (traced) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kSpan;
      ev.name = "backend:worker:" + std::to_string(w);
      ev.category = "backend";
      ev.track = w + 1;  // per-worker-process tracks, merged into one trace
      ev.ts_us = round_start_us;
      ev.dur_us = static_cast<std::uint64_t>(barrier.body_seconds * 1e6);
      ev.args = {{"machines", static_cast<double>(worker.end - worker.begin)},
                 {"pid", static_cast<double>(worker.pid)}};
      recorder_->emit(std::move(ev));
    }
  }

  if (!failure.empty()) throw std::runtime_error(failure);
}

}  // namespace mpcsd::mpc

#endif  // defined(__linux__)
