#if defined(__linux__) && !defined(_GNU_SOURCE)
#define _GNU_SOURCE  // memfd_create, pipe2
#endif

#include "mpc/backend_process.hpp"

#if defined(__linux__)

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mpc/cluster.hpp"
#include "obs/trace.hpp"

namespace mpcsd::mpc {

namespace {

/// Fixed-size round barrier each worker writes to its pipe: status byte,
/// arena byte count, body wall seconds (u8 + u64 + double, packed by
/// ByteWriter — no struct padding on the wire).
constexpr std::size_t kBarrierBytes = 1 + 8 + 8;

/// Worker status values carried in the barrier.
constexpr std::uint8_t kWorkerOk = 0;
constexpr std::uint8_t kWorkerBodyThrew = 1;
constexpr std::uint8_t kWorkerArenaFailed = 2;

bool write_all(int fd, const std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF: the worker died before the barrier
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

ProcessBackend::ProcessBackend(std::shared_ptr<ThreadPool> pool,
                               obs::Recorder* recorder)
    : pool_(std::move(pool)), recorder_(recorder) {}

ProcessBackend::~ProcessBackend() {
  for (const int fd : arena_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void ProcessBackend::run_worker(const RoundWork& work, std::size_t begin,
                                std::size_t end, int arena_fd, int pipe_fd) {
  // The forked child: pool threads did not survive the fork, so the
  // partition runs serially.  Everything the bodies read (inputs, captured
  // driver state) is a copy-on-write snapshot of the host at fork time;
  // everything they produce leaves only through the arena below.
  ByteWriter out;
  std::uint8_t status = kWorkerOk;
  const Stopwatch body_wall;
  try {
    for (std::size_t i = begin; i < end; ++i) {
      std::vector<Envelope> outbox;
      Bytes stash;
      MachineContext ctx(i, &(*work.inputs)[i],
                         derive_stream(work.seed, work.round, i), &outbox,
                         &stash);
      ctx.report_.input_bytes = (*work.inputs)[i].total_bytes();
      (*work.body)(ctx);
      out.put(ctx.report_);
      out.put_vector(stash);
      out.put<std::uint64_t>(outbox.size());
      for (const Envelope& env : outbox) {
        out.put<std::uint32_t>(env.dest);
        out.put_vector(env.payload);
      }
    }
  } catch (const std::exception& e) {
    status = kWorkerBodyThrew;
    out = ByteWriter{};
    out.put_string(e.what());
  } catch (...) {
    status = kWorkerBodyThrew;
    out = ByteWriter{};
    out.put_string("non-standard exception in machine body");
  }
  const double seconds = body_wall.seconds();

  // Publish the results through the shared-memory arena: size it to this
  // round, map, copy, unmap.  The fd (and so the shm object) outlives the
  // worker — the host maps the same object to read the bytes back.
  const Bytes& payload = out.bytes();
  if (::ftruncate(arena_fd, static_cast<off_t>(payload.size())) != 0) {
    status = kWorkerArenaFailed;
  } else if (!payload.empty()) {
    void* map = ::mmap(nullptr, payload.size(), PROT_READ | PROT_WRITE,
                       MAP_SHARED, arena_fd, 0);
    if (map == MAP_FAILED) {
      status = kWorkerArenaFailed;
    } else {
      std::memcpy(map, payload.data(), payload.size());
      ::munmap(map, payload.size());
    }
  }

  ByteWriter barrier;
  barrier.put<std::uint8_t>(status);
  barrier.put<std::uint64_t>(status == kWorkerArenaFailed ? 0 : payload.size());
  barrier.put<double>(seconds);
  (void)write_all(pipe_fd, barrier.bytes().data(), barrier.bytes().size());
}

void ProcessBackend::execute(const RoundWork& work) {
  const std::size_t machines = work.machines;
  if (machines == 0) return;
  const std::size_t workers =
      std::clamp<std::size_t>(pool_->worker_count(), 1, machines);

  if (arena_fds_.size() < workers) arena_fds_.resize(workers, -1);
  for (std::size_t w = 0; w < workers; ++w) {
    if (arena_fds_[w] < 0) {
      arena_fds_[w] = ::memfd_create("mpcsd-round-arena", MFD_CLOEXEC);
      if (arena_fds_[w] < 0) {
        throw std::runtime_error(
            errno_detail("process backend: memfd_create"));
      }
    }
  }

  struct Worker {
    pid_t pid = -1;
    int pipe_fd = -1;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Worker> live;
  live.reserve(workers);
  const bool traced = recorder_ != nullptr && recorder_->enabled();
  const std::uint64_t round_start_us = traced ? recorder_->now_us() : 0;

  std::string failure;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * machines / workers;
    const std::size_t end = (w + 1) * machines / workers;
    int fds[2] = {-1, -1};
    if (::pipe2(fds, O_CLOEXEC) != 0) {
      failure = errno_detail("process backend: pipe2");
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      failure = errno_detail("process backend: fork");
      ::close(fds[0]);
      ::close(fds[1]);
      break;
    }
    if (pid == 0) {
      // Child: run the partition, publish, and _exit — never unwind into
      // the host's destructors (the inherited pool object has no threads).
      ::close(fds[0]);
      run_worker(work, begin, end, arena_fds_[w], fds[1]);
      ::_exit(0);
    }
    // Host: drop the write end now, so a worker that dies before the
    // barrier turns into pipe EOF instead of a hang.
    ::close(fds[1]);
    live.push_back(Worker{pid, fds[0], begin, end});
  }

  // Round barrier: collect every forked worker (even after a failure, so
  // no zombies or dangling pipes survive the throw below).
  for (std::size_t w = 0; w < live.size(); ++w) {
    const Worker& worker = live[w];
    std::array<std::byte, kBarrierBytes> barrier_buf{};
    const bool got_barrier =
        read_all(worker.pipe_fd, barrier_buf.data(), barrier_buf.size());
    ::close(worker.pipe_fd);
    int wait_status = 0;
    while (::waitpid(worker.pid, &wait_status, 0) < 0 && errno == EINTR) {
    }
    if (!failure.empty()) continue;  // already failing; just reap
    if (!got_barrier) {
      failure = "process backend: worker for machines [" +
                std::to_string(worker.begin) + ", " +
                std::to_string(worker.end) + ") died before the round barrier" +
                (WIFSIGNALED(wait_status)
                     ? " (signal " + std::to_string(WTERMSIG(wait_status)) + ")"
                     : "");
      continue;
    }
    ByteReader barrier(barrier_buf.data(), barrier_buf.size());
    const auto status = barrier.get<std::uint8_t>();
    const auto arena_bytes = barrier.get<std::uint64_t>();
    const double body_seconds = barrier.get<double>();
    if (status == kWorkerArenaFailed) {
      failure = "process backend: worker could not publish its result arena";
      continue;
    }

    // Map the worker's arena and parse results back into the cluster's
    // round arenas, in machine order.
    void* map = nullptr;
    if (arena_bytes > 0) {
      map = ::mmap(nullptr, arena_bytes, PROT_READ, MAP_SHARED, arena_fds_[w],
                   0);
      if (map == MAP_FAILED) {
        failure = errno_detail("process backend: mmap result arena");
        continue;
      }
    }
    try {
      ByteReader r(static_cast<const std::byte*>(map), arena_bytes);
      if (status == kWorkerBodyThrew) {
        failure = "machine body failed in worker process: " + r.get_string();
      } else {
        for (std::size_t i = worker.begin; i < worker.end; ++i) {
          (*work.reports)[i] = r.get<MachineReport>();
          (*work.stashes)[i] = r.get_vector<std::byte>();
          std::vector<Envelope>& outbox = (*work.outboxes)[i];
          outbox.clear();
          const auto count = r.get<std::uint64_t>();
          outbox.reserve(count);
          for (std::uint64_t e = 0; e < count; ++e) {
            const auto dest = r.get<std::uint32_t>();
            outbox.push_back(Envelope{dest, r.get_vector<std::byte>()});
          }
        }
      }
    } catch (const std::exception& e) {
      failure = std::string("process backend: corrupt result arena: ") +
                e.what();
    }
    if (map != nullptr) ::munmap(map, arena_bytes);
    if (traced) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kSpan;
      ev.name = "backend:worker:" + std::to_string(w);
      ev.category = "backend";
      ev.track = w + 1;  // per-worker-process tracks, merged into one trace
      ev.ts_us = round_start_us;
      ev.dur_us = static_cast<std::uint64_t>(body_seconds * 1e6);
      ev.args = {{"machines", static_cast<double>(worker.end - worker.begin)},
                 {"pid", static_cast<double>(worker.pid)}};
      recorder_->emit(std::move(ev));
    }
  }

  if (!failure.empty()) throw std::runtime_error(failure);
}

}  // namespace mpcsd::mpc

#endif  // defined(__linux__)
