// MPC model-conformance auditing.
//
// The simulator promises the model of Section 1 of the paper: within a
// round every machine sees exactly its routed input bytes, shares no state
// with any other machine, and the trace's communication columns count
// exactly the bytes that crossed machines.  The concurrent execution plane
// (thread-pool machine bodies, chunked parallel routing, arena reuse) makes
// those promises easy to break silently — a body that stashes a span into
// its inbox view, reads a neighbour's slot, or emits bytes the accounting
// never saw would still produce plausible-looking results while voiding the
// Table 1 claims.  `AuditOptions` turns on an instrumented execution mode
// that mechanically checks conformance on every round:
//
//   * Guarded inbox handout (`guard_inputs`): each machine receives a
//     private copy of its routed input inside a canary-padded buffer.
//     After the body returns, the canaries and an interior fingerprint are
//     verified — a body that writes through its (const) inbox view or past
//     a fragment boundary is reported with its round and machine id.  The
//     buffer is then poisoned (0xA5) and kept alive one extra round, so a
//     stale view retained across rounds reads loud garbage instead of
//     silently aliasing live mail.
//   * Communication accounting (`verify_comm_bytes`): after routing, the
//     bytes physically present in the round's mail must equal the sum of
//     byte-metered `emit` calls — the `total_comm_bytes` column is certified
//     against the actual traffic.
//   * Dual-schedule replay (`replay`): every round is re-executed with a
//     permuted machine order on a different worker count, and each
//     machine's outbox bytes + metering report must be identical to the
//     first execution.  Any dependence on schedule — shared mutable
//     captures, cross-machine reads, order-sensitive side effects — shows
//     up as a fingerprint mismatch on the offending machine.
//
// Auditing is opt-in (`ClusterConfig::audit.enabled`) and metering-neutral:
// an audited execution produces a byte-identical `ExecutionTrace` (checked
// by `ExecutionTrace::structural_hash`).  Machine bodies must be idempotent
// per (round, machine) — exactly what the MPC model requires of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpcsd::mpc {

struct Envelope;

enum class AuditViolationKind : std::uint8_t {
  /// A machine body wrote through its (shared-storage) inbox view.
  kInputMutation,
  /// A machine body wrote outside its input fragments (canary breach).
  kGuardBreach,
  /// Reported communication bytes differ from the bytes actually routed.
  kCommAccounting,
  /// Permuted-order / different-worker replay produced a different outbox
  /// or metering report: the result depends on the schedule.
  kScheduleDependence,
};

[[nodiscard]] const char* to_string(AuditViolationKind kind) noexcept;

struct AuditViolation {
  AuditViolationKind kind = AuditViolationKind::kInputMutation;
  std::string round_label;
  std::size_t round = 0;    ///< round index within the cluster's execution
  /// Offending machine id; `kNoMachine` for round-level violations.
  std::size_t machine = kNoMachine;
  std::string detail;

  static constexpr std::size_t kNoMachine = static_cast<std::size_t>(-1);

  [[nodiscard]] std::string describe() const;
};

/// Thrown on the first violation when `AuditOptions::fail_fast` is set.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(AuditViolation violation);

  [[nodiscard]] const AuditViolation& violation() const noexcept {
    return violation_;
  }

 private:
  AuditViolation violation_;
};

struct AuditOptions {
  /// Master switch; when false the simulator runs the plain fast path.
  bool enabled = false;
  /// Hand every machine a canary-padded private copy of its inbox, verify
  /// it after the body returns, and poison it afterwards.
  bool guard_inputs = true;
  /// Certify Σ emitted bytes == bytes present in the routed mail.
  bool verify_comm_bytes = true;
  /// Re-execute each round in a permuted order on a different worker count
  /// and require byte-identical outboxes and metering reports.
  bool replay = true;
  /// Worker count of the replay execution; 0 = auto (1 when the main pool
  /// is concurrent, 2 when the main pool is serial — always different).
  std::size_t replay_workers = 0;
  /// Seed of the per-round machine-order permutation used by the replay.
  std::uint64_t replay_permutation_seed = 0x5eedULL;
  /// Throw AuditError at the first violation (default); when false,
  /// violations accumulate in `Cluster::audit_report()` instead.
  bool fail_fast = true;
  /// Test-only fault injection: invoked once per machine after the round's
  /// bodies (and the replay comparison) have finished, with mutable access
  /// to that machine's outbox.  Lets the negative tests seed an unaccounted
  /// emission and prove the accounting check fires.  Never set in
  /// production configurations.
  std::function<void(std::size_t round, std::size_t machine,
                     std::vector<Envelope>& outbox)>
      inject_after_round;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  std::size_t rounds_audited = 0;
  std::size_t replays_run = 0;

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

}  // namespace mpcsd::mpc
