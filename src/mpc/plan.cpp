#include "mpc/plan.hpp"

#include <sstream>

namespace mpcsd::mpc {

std::string Plan::describe() const {
  std::ostringstream os;
  os << "plan " << name << " (" << stages.size() << " stages)\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageSpec& s = stages[i];
    os << "  stage " << (i + 1) << " [" << s.label << "]: " << s.consumes
       << " -> " << s.produces << '\n';
  }
  return os.str();
}

Driver::Driver(Plan plan, ClusterConfig config)
    : plan_(std::move(plan)), cluster_(config) {}

double Driver::begin_stage(const std::string& label) {
  if (next_stage_ >= plan_.stages.size()) {
    if (!plan_.repeating) {
      throw PlanError("plan '" + plan_.name + "': stage '" + label +
                      "' executed past the end of the declared plan");
    }
    next_stage_ = 0;  // re-enter the declared sequence for the next pass
  }
  const StageSpec& spec = plan_.stages[next_stage_];
  if (spec.label != label) {
    throw PlanError("plan '" + plan_.name + "': expected stage '" + spec.label +
                    "' but '" + label + "' was executed");
  }
  ++next_stage_;
  if (next_stage_ == plan_.stages.size()) ++passes_;
  return glue_clock_.seconds();
}

void Driver::finish() const {
  if (plan_.repeating) {
    // Any whole number of passes is complete; a pass stopped mid-way is not.
    if (next_stage_ != 0 && next_stage_ != plan_.stages.size()) {
      throw PlanError("plan '" + plan_.name + "': pass " +
                      std::to_string(passes_ + 1) + " stopped after stage " +
                      std::to_string(next_stage_) + " of " +
                      std::to_string(plan_.stages.size()));
    }
    return;
  }
  if (next_stage_ != plan_.stages.size()) {
    throw PlanError("plan '" + plan_.name + "': only " +
                    std::to_string(next_stage_) + " of " +
                    std::to_string(plan_.stages.size()) + " stages executed");
  }
}

}  // namespace mpcsd::mpc
