// Pluggable execution backends for the MPC cluster simulator.
//
// `Cluster` is split into two halves:
//   * round orchestration (cluster.cpp) — input wrapping, metering, audit
//     hooks, obs spans, mail routing — backend-agnostic;
//   * machine-body execution (this layer) — how the per-machine bodies of
//     one round actually run and how their outputs come back.
//
// Three backends implement the contract:
//   * `ThreadBackend`  — the seed path: bodies run on the cluster's shared
//     thread pool inside one address space.  Extracted verbatim; pinned
//     byte-identical by the golden traces.
//   * `ProcessBackend` — bodies run in forked worker processes.  A machine
//     body gets a copy-on-write snapshot of the host state; its writes are
//     invisible to the host and to sibling machines, so a stray pointer
//     physically cannot corrupt another machine's fragment.  Results travel
//     back through per-worker shared-memory arenas (memfd) carrying the
//     shared machine-result records, with framed round barriers over pipes.
//   * `SocketBackend`  — bodies run in forked workers that connect back to
//     the host's TCP coordinator and stream the same records as
//     length-prefixed frames (transport_socket.hpp).  See docs/BACKENDS.md.
//
// Every backend owns a `Transport` (mpc/transport.hpp): the one framed
// record layer all cross-machine bytes go through, with uniform
// frames/bytes/flushes/barrier counters the cluster surfaces on the obs
// spine after each round.
//
// The determinism contract every backend must satisfy: given the same
// (inputs, body, seed, round), the per-machine outboxes (envelope order,
// destinations, payload bytes), reports, and stash bytes are identical —
// `ExecutionTrace::structural_hash()` and all metering cannot depend on the
// backend or on worker counts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/thread_pool.hpp"
#include "mpc/stats.hpp"
#include "mpc/transport.hpp"
#include "obs/recorder.hpp"

namespace mpcsd::mpc {

class MachineContext;

enum class BackendKind : std::uint8_t {
  kAuto = 0,     ///< resolve from MPCSD_BACKEND (default: thread)
  kThread = 1,   ///< shared-address-space thread pool (seed semantics)
  kProcess = 2,  ///< forked worker processes + shared-memory result arenas
  kSocket = 3,   ///< forked workers streaming frames over localhost TCP
};

/// Parses a `MPCSD_BACKEND` / `--backend` value; nullopt if unrecognised.
[[nodiscard]] std::optional<BackendKind> backend_from_string(
    std::string_view name);

/// Lower-case kind name ("auto" | "thread" | "process" | "socket"), for
/// logs/flags.
[[nodiscard]] const char* backend_kind_name(BackendKind kind) noexcept;

/// Pure resolution of a requested kind against an environment override —
/// split out so the fallback policy is testable without touching the real
/// environment.  `kAuto` resolves through `env` (the MPCSD_BACKEND value,
/// null when unset); anything else wins outright.  `recognised` is false
/// only when `env` was consulted and named no known backend (the caller
/// warns once and falls back to the thread backend).
struct BackendResolution {
  BackendKind kind = BackendKind::kThread;
  bool recognised = true;
};
[[nodiscard]] BackendResolution resolve_backend(BackendKind requested,
                                                const char* env) noexcept;

/// Everything one round's machine bodies need, passed by pointer into the
/// cluster's round-scoped arenas: the backend fills `outboxes`, `reports`,
/// and `stashes` for machines [0, machines); orchestration (metering,
/// routing, audit) stays in the cluster.
struct RoundWork {
  std::size_t round = 0;
  std::uint64_t seed = 0;
  /// parallel_for grain, already auto-resolved by the cluster.
  std::size_t grain = 1;
  std::size_t machines = 0;
  const std::vector<ByteChain>* inputs = nullptr;
  const std::function<void(MachineContext&)>* body = nullptr;
  std::vector<std::vector<Envelope>>* outboxes = nullptr;
  std::vector<MachineReport>* reports = nullptr;
  std::vector<Bytes>* stashes = nullptr;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs the bodies of one round and fills the output arenas.  Must be
  /// deterministic in everything metered (see header comment); only wall
  /// time may differ across backends and worker counts.
  virtual void execute(const RoundWork& work) = 0;

  /// True when machine bodies cannot write the host's or a sibling's
  /// memory (separate address spaces).  The auditor uses this to discharge
  /// the canary-copy detectors that exist only to approximate it.
  [[nodiscard]] virtual bool isolates_machine_memory() const noexcept = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// The transport carrying this backend's cross-machine bytes; its
  /// counters feed the `transport.*` obs counters after every round.
  [[nodiscard]] virtual const Transport& transport() const noexcept = 0;
};

/// Builds the backend for `kind` (resolving kAuto through MPCSD_BACKEND,
/// warning once on an unrecognised value and falling back to the thread
/// backend).  `pool` sizes the execution: thread workers or forked worker
/// processes.  `recorder` feeds per-worker spans (process backend) into the
/// one merged trace; may be null.
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               std::shared_ptr<ThreadPool> pool,
                                               obs::Recorder* recorder);

}  // namespace mpcsd::mpc
