#include "mpc/backend_thread.hpp"

#include "common/rng.hpp"
#include "mpc/cluster.hpp"

namespace mpcsd::mpc {

void ThreadBackend::execute(const RoundWork& work) {
  pool_->parallel_for(
      work.machines,
      [&](std::size_t i) {
        (*work.outboxes)[i].clear();
        (*work.stashes)[i].clear();
        MachineContext ctx(i, &(*work.inputs)[i],
                           derive_stream(work.seed, work.round, i),
                           &(*work.outboxes)[i], &(*work.stashes)[i]);
        ctx.report_.input_bytes = (*work.inputs)[i].total_bytes();
        (*work.body)(ctx);
        (*work.reports)[i] = ctx.report_;
      },
      work.grain);

  // Transport accounting after the join (reads only; results untouched):
  // in-process, every envelope is "sent" and "received" in the same move,
  // and the parallel_for join is the round barrier.
  TransportCounters& c = transport_.counters();
  std::uint64_t envelopes = 0;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < work.machines; ++i) {
    envelopes += (*work.outboxes)[i].size();
    bytes += (*work.reports)[i].output_bytes;
  }
  c.frames_sent += envelopes;
  c.frames_received += envelopes;
  c.bytes_sent += bytes;
  c.bytes_received += bytes;
  ++c.flushes;
  ++c.barrier_waits;
}

}  // namespace mpcsd::mpc
