#include "mpc/backend_thread.hpp"

#include "common/rng.hpp"
#include "mpc/cluster.hpp"

namespace mpcsd::mpc {

void ThreadBackend::execute(const RoundWork& work) {
  pool_->parallel_for(
      work.machines,
      [&](std::size_t i) {
        (*work.outboxes)[i].clear();
        (*work.stashes)[i].clear();
        MachineContext ctx(i, &(*work.inputs)[i],
                           derive_stream(work.seed, work.round, i),
                           &(*work.outboxes)[i], &(*work.stashes)[i]);
        ctx.report_.input_bytes = (*work.inputs)[i].total_bytes();
        (*work.body)(ctx);
        (*work.reports)[i] = ctx.report_;
      },
      work.grain);
}

}  // namespace mpcsd::mpc
