#include "mpc/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "common/env.hpp"
#include "mpc/backend_process.hpp"
#include "mpc/backend_thread.hpp"
#include "mpc/transport_socket.hpp"

namespace mpcsd::mpc {

std::optional<BackendKind> backend_from_string(std::string_view name) {
  if (name == "auto") return BackendKind::kAuto;
  if (name == "thread") return BackendKind::kThread;
  if (name == "process") return BackendKind::kProcess;
  if (name == "socket") return BackendKind::kSocket;
  return std::nullopt;
}

const char* backend_kind_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kThread:
      return "thread";
    case BackendKind::kProcess:
      return "process";
    case BackendKind::kSocket:
      return "socket";
    case BackendKind::kAuto:
      break;
  }
  return "auto";
}

BackendResolution resolve_backend(BackendKind requested,
                                  const char* env) noexcept {
  if (requested != BackendKind::kAuto) return {requested, true};
  if (env == nullptr) return {BackendKind::kThread, true};
  const auto parsed = backend_from_string(env);
  if (!parsed.has_value() || *parsed == BackendKind::kAuto) {
    return {BackendKind::kThread, parsed.has_value()};
  }
  return {*parsed, true};
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               std::shared_ptr<ThreadPool> pool,
                                               obs::Recorder* recorder) {
  const char* env = std::getenv("MPCSD_BACKEND");
  const BackendResolution resolved = resolve_backend(kind, env);
  if (!resolved.recognised) {
    // Fail loudly, once per process: a typo'd override silently running the
    // thread backend would fake a process-isolation CI leg.
    static std::atomic<bool> warned{false};
    warn_env_once(warned, "MPCSD_BACKEND", env, "thread|process|socket",
                  "using the thread backend");
  }
  if (resolved.kind == BackendKind::kProcess) {
#if defined(__linux__)
    return std::make_unique<ProcessBackend>(std::move(pool), recorder);
#else
    throw std::runtime_error(
        "the process execution backend requires Linux (fork + memfd)");
#endif
  }
  if (resolved.kind == BackendKind::kSocket) {
#if defined(__linux__)
    return std::make_unique<SocketBackend>(std::move(pool), recorder);
#else
    throw std::runtime_error(
        "the socket execution backend requires Linux (fork + TCP loopback)");
#endif
  }
  (void)recorder;
  return std::make_unique<ThreadBackend>(std::move(pool));
}

}  // namespace mpcsd::mpc
